(* bench_diff — compare two BENCH.json files (written by bench/main.exe)
   and fail on regressions.

   Usage:
     bench_diff OLD.json NEW.json [--threshold PCT] [--min-value V]

   For every experiment entry present in both files with both values at
   least --min-value (noise floor, default 50), the relative change
   (new - old) / old is computed; any entry above --threshold percent
   (default 25) is a regression.  Exit status: 0 when clean, 1 when any
   regression was found, 2 on usage or parse errors — so a CI step can
   gate merges on `bench_diff baseline.json current.json`. *)

module J = Ssd.Json

let usage () =
  prerr_endline
    "usage: bench_diff OLD.json NEW.json [--threshold PCT] [--min-value V]";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_diff: " ^ m); exit 2) fmt

let read_file path =
  if not (Sys.file_exists path) then fail "no such file %s" path;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let doc = try J.parse (read_file path) with e ->
    fail "%s: %s" path (Printexc.to_string e)
  in
  let field name =
    match doc with
    | J.Obj kvs -> List.assoc_opt name kvs
    | _ -> None
  in
  (match field "version" with
  | Some (J.Int 1) -> ()
  | Some v -> fail "%s: unsupported version %s" path (J.to_string v)
  | None -> fail "%s: missing \"version\"" path);
  match field "experiments" with
  | Some (J.Obj exps) ->
    List.map
      (fun (name, entries) ->
        match entries with
        | J.Obj kvs ->
          ( name,
            List.filter_map
              (fun (k, v) ->
                match v with
                | J.Float f -> Some (k, f)
                | J.Int i -> Some (k, float_of_int i)
                | _ -> None)
              kvs )
        | _ -> fail "%s: experiment %s is not an object" path name)
      exps
  | _ -> fail "%s: missing \"experiments\"" path

let () =
  let threshold = ref 25.0 in
  let min_value = ref 50.0 in
  let files = ref [] in
  let rec parse_args = function
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> threshold := f; parse_args rest
      | None -> usage ())
    | "--min-value" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> min_value := f; parse_args rest
      | None -> usage ())
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest -> files := a :: !files; parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let old_exps = load old_path and new_exps = load new_path in
  let compared = ref 0 in
  let regressions = ref 0 in
  let improvements = ref 0 in
  List.iter
    (fun (exp_name, old_entries) ->
      match List.assoc_opt exp_name new_exps with
      | None -> Printf.printf "~ %s: missing from %s, skipped\n" exp_name new_path
      | Some new_entries ->
        List.iter
          (fun (key, old_v) ->
            match List.assoc_opt key new_entries with
            | None -> ()
            | Some new_v ->
              if old_v >= !min_value && new_v >= !min_value then begin
                incr compared;
                let change = 100. *. (new_v -. old_v) /. old_v in
                if change > !threshold then begin
                  incr regressions;
                  Printf.printf "REGRESSION %s/%s: %.0f -> %.0f (+%.1f%%)\n" exp_name
                    key old_v new_v change
                end
                else if change < -. !threshold then begin
                  incr improvements;
                  Printf.printf "improved   %s/%s: %.0f -> %.0f (%.1f%%)\n" exp_name
                    key old_v new_v change
                end
              end)
          old_entries)
    old_exps;
  Printf.printf "%d entries compared, %d regressions, %d improvements (threshold %.0f%%)\n"
    !compared !regressions !improvements !threshold;
  exit (if !regressions > 0 then 1 else 0)
