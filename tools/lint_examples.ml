(* Self-lint: run the static analyzer over every query literal in the
   example programs (the [@lint-self] alias, part of [runtest]).

   Each [{| ... |}] raw literal in the given .ml files is classified by
   keyword — datalog ([:-]), WebSQL ([such that], skipped: no analyzer),
   Lorel ([select ... from]), UnQL ([select]/[sfun]) — and checked
   structurally (no database, so path satisfiability is not in play;
   this is the hygiene + safety surface).  Names bound with
   [~name:"..."] in the same file are treated as view definitions and
   pre-bound.  Any Error-severity finding fails the build. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ?(lower = false) hay needle =
  let hay = if lower then String.lowercase_ascii hay else hay in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* All [{| ... |}] literals of [src], with their start offsets. *)
let raw_literals src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  while !i + 1 < n do
    if src.[!i] = '{' && src.[!i + 1] = '|' then begin
      let start = !i + 2 in
      let j = ref start in
      while !j + 1 < n && not (src.[!j] = '|' && src.[!j + 1] = '}') do
        incr j
      done;
      out := (start, String.sub src start (!j - start)) :: !out;
      i := !j + 2
    end
    else incr i
  done;
  List.rev !out

(* Names bound via [~name:"..."] (the view-registry convention). *)
let defined_names src =
  let n = String.length src in
  let key = "~name:\"" in
  let k = String.length key in
  let out = ref [] in
  let i = ref 0 in
  while !i + k < n do
    if String.sub src !i k = key then begin
      let j = ref (!i + k) in
      while !j < n && src.[!j] <> '"' do
        incr j
      done;
      out := String.sub src (!i + k) (!j - !i - k) :: !out;
      i := !j
    end
    else incr i
  done;
  !out

(* Serve-protocol frame literals ("QUERY lang=lorel <body>") are linted
   on their body, with the language taken from the lang= option (default
   unql, matching the protocol).  UPDATE frames carry Lorel update
   statements, which have no analyzer yet. *)
let strip_frame src =
  let s = String.trim src in
  let after prefix =
    let np = String.length prefix in
    if String.length s > np && String.sub s 0 np = prefix then
      Some (String.sub s np (String.length s - np))
    else None
  in
  match after "QUERY " with
  | Some rest -> (
    let rest = String.trim rest in
    match String.index_opt rest ' ' with
    | None -> Some (None, None)
    | Some sp ->
      let opts = String.sub rest 0 sp in
      let body = String.sub rest (sp + 1) (String.length rest - sp - 1) in
      let lang =
        List.find_map
          (fun kv ->
            match String.index_opt kv '=' with
            | Some e when String.sub kv 0 e = "lang" ->
              Some (String.sub kv (e + 1) (String.length kv - e - 1))
            | _ -> None)
          (String.split_on_char ',' opts)
      in
      Some (lang, Some body))
  | None -> (
    match after "UPDATE " with Some _ -> Some (None, None) | None -> None)

(* The query language of a literal and the text to lint (the literal
   itself, or a protocol frame's body). *)
let classify src =
  (* sprintf templates are not complete queries *)
  if contains src "%s" || contains src "%S" || contains src "%d" then None
  else
    match strip_frame src with
    | Some (lang, body) -> (
      match (lang, body) with
      | _, None -> None
      | (Some "unql" | None), Some b -> Some (Ssd_lint.Unql, b)
      | Some "lorel", Some b -> Some (Ssd_lint.Lorel, b)
      | Some "datalog", Some b -> Some (Ssd_lint.Datalog, b)
      | Some _, Some _ -> None)
    | None ->
      if contains src ":-" then Some (Ssd_lint.Datalog, src)
      else if contains ~lower:true src "such that" then None
      else if contains src "select" && contains src "from " then
        Some (Ssd_lint.Lorel, src)
      else if contains src "select" || contains src "sfun" then
        Some (Ssd_lint.Unql, src)
      else None

let line_of src off =
  let line = ref 1 in
  for i = 0 to min off (String.length src - 1) - 1 do
    if src.[i] = '\n' then incr line
  done;
  !line

let () =
  let failures = ref 0 and checked = ref 0 in
  Array.iteri
    (fun i path ->
      if i > 0 then begin
        let src = read_file path in
        let defined = defined_names src in
        List.iter
          (fun (off, lit) ->
            match classify lit with
            | None -> ()
            | Some (lang, text) ->
              incr checked;
              let r = Ssd_lint.check_src ~lang ~defined text in
              if Ssd_lint.errors r > 0 then begin
                incr failures;
                Printf.printf "%s:%d: %s query fails lint:\n%s" path (line_of src off)
                  (Ssd_lint.lang_name lang)
                  (Ssd_diag.render r.Ssd_lint.diags)
              end)
          (raw_literals src)
      end)
    Sys.argv;
  Printf.printf "lint-self: %d query literal(s) checked, %d with errors\n" !checked
    !failures;
  if !failures > 0 then exit 1
