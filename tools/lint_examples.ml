(* Self-lint: run the static analyzer over every query literal in the
   example programs (the [@lint-self] alias, part of [runtest]).

   Each [{| ... |}] raw literal in the given .ml files is classified by
   keyword — datalog ([:-]), WebSQL ([such that], skipped: no analyzer),
   Lorel ([select ... from]), UnQL ([select]/[sfun]) — and checked
   structurally (no database, so path satisfiability is not in play;
   this is the hygiene + safety surface).  Names bound with
   [~name:"..."] in the same file are treated as view definitions and
   pre-bound.  Any Error-severity finding fails the build. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ?(lower = false) hay needle =
  let hay = if lower then String.lowercase_ascii hay else hay in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* All [{| ... |}] literals of [src], with their start offsets. *)
let raw_literals src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  while !i + 1 < n do
    if src.[!i] = '{' && src.[!i + 1] = '|' then begin
      let start = !i + 2 in
      let j = ref start in
      while !j + 1 < n && not (src.[!j] = '|' && src.[!j + 1] = '}') do
        incr j
      done;
      out := (start, String.sub src start (!j - start)) :: !out;
      i := !j + 2
    end
    else incr i
  done;
  List.rev !out

(* Names bound via [~name:"..."] (the view-registry convention). *)
let defined_names src =
  let n = String.length src in
  let key = "~name:\"" in
  let k = String.length key in
  let out = ref [] in
  let i = ref 0 in
  while !i + k < n do
    if String.sub src !i k = key then begin
      let j = ref (!i + k) in
      while !j < n && src.[!j] <> '"' do
        incr j
      done;
      out := String.sub src (!i + k) (!j - !i - k) :: !out;
      i := !j
    end
    else incr i
  done;
  !out

let classify src =
  (* sprintf templates are not complete queries *)
  if contains src "%s" || contains src "%d" then None
  else if contains src ":-" then Some Ssd_lint.Datalog
  else if contains ~lower:true src "such that" then None
  else if contains src "select" && contains src "from " then Some Ssd_lint.Lorel
  else if contains src "select" || contains src "sfun" then Some Ssd_lint.Unql
  else None

let line_of src off =
  let line = ref 1 in
  for i = 0 to min off (String.length src - 1) - 1 do
    if src.[i] = '\n' then incr line
  done;
  !line

let () =
  let failures = ref 0 and checked = ref 0 in
  Array.iteri
    (fun i path ->
      if i > 0 then begin
        let src = read_file path in
        let defined = defined_names src in
        List.iter
          (fun (off, lit) ->
            match classify lit with
            | None -> ()
            | Some lang ->
              incr checked;
              let r = Ssd_lint.check_src ~lang ~defined lit in
              if Ssd_lint.errors r > 0 then begin
                incr failures;
                Printf.printf "%s:%d: %s query fails lint:\n%s" path (line_of src off)
                  (Ssd_lint.lang_name lang)
                  (Ssd_diag.render r.Ssd_lint.diags)
              end)
          (raw_literals src)
      end)
    Sys.argv;
  Printf.printf "lint-self: %d query literal(s) checked, %d with errors\n" !checked
    !failures;
  if !failures > 0 then exit 1
