(* ssdql — command-line front end to the semistructured data library.

   Subcommands:
     query      run an UnQL / Lorel / WebSQL / datalog query
     dist       distributed regular-path-query evaluation (fault injection)
     convert    convert between ssd syntax, JSON, OEM and triples
     dataguide  build and print the strong DataGuide of a data file
     validate   check a data file against a graph schema
     update     apply insert/delete/rename statements
     stats      print graph statistics
     gen        emit a synthetic workload in ssd syntax *)

module Graph = Ssd.Graph
module Label = Ssd.Label

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* [builtin:KIND[:N]] names a generated workload instead of a file, so
   self-contained invocations (smoke tests, demos) need no data on disk. *)
let load_builtin spec =
  let kind, n =
    match String.index_opt spec ':' with
    | Some i -> (
      let kind = String.sub spec 0 i in
      let num = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt num with
      | Some n -> (kind, n)
      | None ->
        Printf.eprintf "bad builtin size %s\n" num;
        exit 2)
    | None -> (spec, 200)
  in
  match kind with
  | "figure1" -> Ssd_workload.Movies.figure1 ()
  | "movies" -> Ssd_workload.Movies.generate ~seed:42 ~n_entries:n ()
  | "web" -> Ssd_workload.Webgraph.generate ~seed:42 ~n_pages:n ()
  | "bio" -> Ssd_workload.Biodb.generate ~seed:42 ~n_taxa:n ()
  | "bib" -> Ssd_workload.Bibdb.generate ~seed:42 ~n_papers:n ()
  | "randtree" -> Ssd_workload.Randtree.generate ~seed:42 ~regularity:0.5 ~n_edges:n ()
  | other ->
    Printf.eprintf "unknown builtin %s (figure1|movies|web|bio|bib|randtree)[:N]\n" other;
    exit 2

let load_data path =
  if String.length path > 8 && String.sub path 0 8 = "builtin:" then
    load_builtin (String.sub path 8 (String.length path - 8))
  else begin
    if not (Sys.file_exists path) then begin
      Printf.eprintf "no such data file %s\n" path;
      exit 2
    end;
    let src = read_file path in
    if Filename.check_suffix path ".json" then
      Graph.of_tree (Ssd.Json.to_tree (Ssd.Json.parse src))
    else if Filename.check_suffix path ".oem" then Ssd.Oem.to_graph (Ssd.Oem.parse src)
    else if Filename.check_suffix path ".bin" then Ssd_storage.Codec.read_file path
    else Ssd.Syntax.parse_graph src
  end

let print_graph g = print_endline (Graph.to_string g)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

(* --explain: show the plan-level view of an UnQL query — the normalized
   (condition-pushed) form, regex automaton sizes over the data's label
   alphabet, and what a DataGuide prune would eliminate. *)
let explain_unql db q =
  let normalized = Unql.Optimize.reorder q in
  print_endline "== explain ==";
  Printf.printf "query:\n  %s\n" (Unql.Pretty.expr_to_string q);
  Printf.printf "normalized (conditions pushed down):\n  %s\n"
    (Unql.Pretty.expr_to_string normalized);
  let alphabet = Ssd_automata.Product.alphabet db in
  (match Unql.Optimize.automaton_sizes ~alphabet normalized with
  | [] -> ()
  | sizes ->
    List.iter
      (fun (r, n_nfa, n_dfa) ->
        Printf.printf "regex %s: %d NFA states, %d min-DFA states\n" r n_nfa n_dfa)
      sizes);
  let guide = Ssd_schema.Dataguide.build db in
  let _, pruned = Unql.Optimize.prune_with_guide guide normalized in
  Printf.printf "dataguide: %d guide nodes over %d data nodes; selects pruned: %d\n"
    (Ssd_schema.Dataguide.n_nodes guide) (Graph.n_nodes db) pruned;
  Printf.printf "cache key: %S @ fp=%x\n"
    (Unql.Pretty.expr_to_string normalized)
    (Unql.Cache.fingerprint db);
  print_endline "== result =="

let dump_stats fmt =
  match fmt with
  | "json" -> print_endline (Ssd_obs.Metrics.dump_json Ssd_obs.Metrics.default)
  | _ -> print_string (Ssd_obs.Metrics.dump_text Ssd_obs.Metrics.default)

(* --lint[=warn|error]: run the static analyzer before evaluating.
   Findings go to stderr; in error mode an Error-severity finding stops
   the query (exit 1) before evaluation starts. *)
let lint_gate mode lang db query_text =
  if mode <> "off" then
    match
      match lang with
      | "unql" -> Some Ssd_lint.Unql
      | "lorel" -> Some Ssd_lint.Lorel
      | "datalog" -> Some Ssd_lint.Datalog
      | _ -> None
    with
    | None -> Printf.eprintf "--lint is not available for %s queries\n" lang
    | Some llang ->
      let r = Ssd_lint.check_src ~lang:llang ~db query_text in
      if r.Ssd_lint.diags <> [] then prerr_string (Ssd_diag.render r.Ssd_lint.diags);
      if mode = "error" && Ssd_lint.errors r > 0 then begin
        Printf.eprintf "query rejected (--lint=error)\n";
        exit 1
      end

(* --deadline-ms / --max-steps: evaluate under a Ssd.Budget.  A fresh
   budget is created per evaluation (so --repeat runs are comparable);
   the last run's verdict is printed as a "status:" line.  Partial
   results are sound lower bounds of the complete answer. *)
let status_of = function
  | None -> "complete"
  | Some why -> Printf.sprintf "partial (%s)" (Ssd.Budget.exhaustion_to_string why)

(* Resolve --data/--store into a database: exactly one source.  A store
   open runs recovery if the store needs it (reported on stderr), and
   the returned closer writes the clean-shutdown checkpoint. *)
let open_db ~what data store_path =
  match (data, store_path) with
  | Some _, Some _ ->
    Printf.eprintf "%s: --data and --store are mutually exclusive\n" what;
    exit 2
  | None, None ->
    Printf.eprintf "%s: one of --data or --store is required\n" what;
    exit 2
  | Some d, None -> (load_data d, fun () -> ())
  | None, Some dir ->
    let st = Ssd_store.Store.open_ (Ssd_store.Vfs.real dir) in
    let r = Ssd_store.Store.recovery st in
    if r.Ssd_store.Store.was_clean then
      Printf.eprintf "%s: store clean open (no recovery)\n%!" what
    else
      Printf.eprintf "%s: store recovered (%d txns replayed, %d torn bytes discarded)\n%!"
        what r.Ssd_store.Store.recovered_txns r.Ssd_store.Store.torn_bytes;
    (Ssd_store.Store.graph st, fun () -> Ssd_store.Store.close st)

let query_cmd jobs data store_path lang lint explain use_cache repeat quiet stats
    stats_format trace trace_out deadline_ms max_steps query_text =
  Ssd_par.Pool.set_default_jobs jobs;
  let db, close_db = open_db ~what:"ssdql query" data store_path in
  at_exit close_db;
  lint_gate lint lang db query_text;
  if trace || trace_out <> None then begin
    Ssd_obs.Trace.enable ();
    Ssd_obs.Trace.name_lane 0 "main"
  end;
  let repeat = max 1 repeat in
  let budgeted = deadline_ms <> None || max_steps <> None in
  let budget () = Ssd.Budget.create ?deadline_ms ?max_steps () in
  let run_repeated eval =
    let r = ref (eval ()) in
    for _ = 2 to repeat do
      r := eval ()
    done;
    !r
  in
  let split = function
    | Ssd.Budget.Complete v -> (v, None)
    | Ssd.Budget.Partial (v, why) -> (v, Some why)
  in
  let print_status why = if budgeted then Printf.printf "status: %s\n" (status_of why) in
  (match lang with
  | "unql" ->
    let q = Unql.Parser.parse query_text in
    if explain then explain_unql db q;
    if budgeted && use_cache then
      Printf.eprintf "--cache ignores budgets; evaluating uncached\n";
    let result, why =
      run_repeated (fun () ->
          if budgeted then split (Unql.Eval.eval_outcome ~budget:(budget ()) ~db q)
          else if use_cache then (Unql.Cache.eval ~cache:Unql.Cache.shared ~db q, None)
          else (Unql.Eval.eval ~db q, None))
    in
    if use_cache && not budgeted then begin
      let s = Unql.Cache.stats Unql.Cache.shared in
      Printf.eprintf "cache: %d hits, %d misses, %d evictions, %d entries\n"
        s.Unql.Cache.hits s.Unql.Cache.misses s.Unql.Cache.evictions s.Unql.Cache.size
    end;
    print_status why;
    if not quiet then print_graph result
  | "lorel" ->
    if explain then Printf.eprintf "--explain is only available for unql queries\n";
    if use_cache then Printf.eprintf "--cache is only available for unql queries\n";
    let q = Lorel.Parser.parse query_text in
    let result, why =
      run_repeated (fun () ->
          if budgeted then split (Lorel.Eval.eval_outcome ~budget:(budget ()) ~db q)
          else (Lorel.Eval.eval ~db q, None))
    in
    print_status why;
    if not quiet then print_graph result
  | "websql" ->
    if budgeted then Printf.eprintf "--deadline-ms/--max-steps are not supported for websql\n";
    let result = run_repeated (fun () -> Websql.Eval.run ~db query_text) in
    if not quiet then print_endline (Relstore.Relation.to_string result)
  | "datalog" ->
    let program = Relstore.Datalog.parse query_text in
    let edb = Relstore.Triple.edb db in
    let results, why =
      run_repeated (fun () ->
          if budgeted then
            split (Relstore.Datalog.eval_outcome ~budget:(budget ()) ~edb program)
          else (Relstore.Datalog.eval ~edb program, None))
    in
    print_status why;
    if not quiet then
      List.iter
        (fun (pred, tuples) ->
          Printf.printf "%s: %d tuples\n" pred (List.length tuples);
          List.iter
            (fun t ->
              Printf.printf "  %s(%s)\n" pred
                (String.concat ", " (List.map Label.to_string t)))
            tuples)
        results
  | other ->
    Printf.eprintf "unknown language %s (use unql, lorel, websql or datalog)\n" other;
    exit 2);
  if trace then prerr_string (Ssd_obs.Trace.render ());
  Option.iter
    (fun path ->
      Ssd_obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (load in chrome://tracing or Perfetto)\n" path)
    trace_out;
  if stats then dump_stats stats_format

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd data lang schema_path format list_codes stats cost query_text =
  if list_codes then begin
    List.iter
      (fun (code, sev, desc) ->
        Printf.printf "%s  %-7s  %s\n" code (Ssd_diag.severity_to_string sev) desc)
      Ssd_diag.codes;
    exit 0
  end;
  let query_text =
    match query_text with
    | Some q -> q
    | None ->
      Printf.eprintf "missing QUERY (or use --codes)\n";
      exit 2
  in
  let lang =
    match lang with
    | "unql" -> Ssd_lint.Unql
    | "lorel" -> Ssd_lint.Lorel
    | "datalog" -> Ssd_lint.Datalog
    | other ->
      Printf.eprintf "check supports unql, lorel and datalog queries (got %s)\n" other;
      exit 2
  in
  let db = Option.map load_data data in
  let target =
    Option.map
      (fun p -> Ssd_lint.Schema (Ssd_schema.Gschema.parse (read_file p)))
      schema_path
  in
  let r = Ssd_lint.check_src ~lang ?db ?target query_text in
  let card =
    if not cost then None
    else
      match db with
      | None ->
        Printf.eprintf "--cost needs --data (statistics come from the database)\n";
        exit 2
      | Some db ->
        let annotated = Ssd_schema.Annotated.build db in
        let declared =
          match (target, lang) with
          | Some (Ssd_lint.Schema s), Ssd_lint.Unql -> Some s
          | _ -> None
        in
        Some (Ssd_lint.check_cost ~lang ~annotated ?declared query_text)
  in
  let all_diags =
    r.Ssd_lint.diags
    @ match card with None -> [] | Some c -> c.Ssd_lint.Card.diags
  in
  (match format with
  | "json" -> print_endline (Ssd_diag.render_json all_diags)
  | _ ->
    print_string (Ssd_diag.render all_diags);
    if r.Ssd_lint.paths_checked > 0 then
      Printf.printf "paths checked: %d, dead: %d\n" r.Ssd_lint.paths_checked
        r.Ssd_lint.dead_paths;
    if r.Ssd_lint.reachable_labels <> [] then
      Printf.printf "reachable labels: %s\n"
        (String.concat ", " (List.map Label.to_string r.Ssd_lint.reachable_labels));
    Option.iter (Printf.printf "query fingerprint: %x\n") r.Ssd_lint.fingerprint;
    Option.iter
      (fun (c : Ssd_lint.Card.t) ->
        (match c.Ssd_lint.Card.est_total with
        | Some e -> Printf.printf "estimated cardinality: %.0f (upper bound)\n" e
        | None -> print_endline "estimated cardinality: unknown");
        Printf.printf "cost: syntactic order %.0f, planned order %.0f\n"
          c.Ssd_lint.Card.cost_syntax c.Ssd_lint.Card.cost_planned)
      card);
  if stats then
    print_string (Ssd_obs.Metrics.dump_text ~prefix:"lint." Ssd_obs.Metrics.default);
  exit (if Ssd_diag.count Ssd_diag.Error all_diags > 0 then 1 else 0)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

(* Static estimates from the annotated DataGuide next to the actual
   cardinality from one evaluation — the per-operator view of the
   cost-based planner.  The estimate/actual ratio is recorded in the
   [lint.card.est_over] metrics histogram, so a workload's estimation
   error distribution can be dumped with --stats elsewhere. *)
let est_over_histogram = Ssd_obs.Metrics.histogram "lint.card.est_over"

let explain_cmd data lang format query_text =
  let db = load_data data in
  let annotated = Ssd_schema.Annotated.build db in
  let n_rows g = List.length (Graph.labeled_succ g (Graph.root g)) in
  let card, planned_text, actual =
    match lang with
    | "unql" ->
      let q = Unql.Parser.parse query_text in
      let card = Ssd_lint.Card.check_unql annotated q in
      let planned = Unql.Optimize.reorder_generators annotated q in
      let actual = n_rows (Unql.Eval.eval ~db q) in
      (card, Some (Unql.Pretty.expr_to_string planned), actual)
    | "lorel" ->
      let q = Lorel.Parser.parse query_text in
      let card = Ssd_lint.Card.check_lorel annotated q in
      let actual = n_rows (Lorel.Eval.eval ~db q) in
      (card, None, actual)
    | "datalog" ->
      let program = Relstore.Datalog.parse query_text in
      let card = Ssd_lint.Card.check_datalog annotated program in
      let edb = Relstore.Triple.edb db in
      let actual =
        List.fold_left
          (fun a (_, ts) -> a + List.length ts)
          0
          (Relstore.Datalog.eval ~edb program)
      in
      (card, None, actual)
    | other ->
      Printf.eprintf "explain supports unql, lorel and datalog queries (got %s)\n"
        other;
      exit 2
  in
  let ratio =
    Option.map
      (fun e -> e /. float_of_int (max 1 actual))
      card.Ssd_lint.Card.est_total
  in
  Option.iter (Ssd_obs.Metrics.observe est_over_histogram) ratio;
  let fmt_est = function
    | Some e -> Printf.sprintf "%.0f" e
    | None -> "unknown"
  in
  match format with
  | "json" ->
    let op_json (o : Ssd_lint.Card.op_est) =
      Ssd.Json.Obj
        [
          ("op", Ssd.Json.String o.Ssd_lint.Card.op_text);
          ( "est",
            match o.Ssd_lint.Card.op_est with
            | Some e -> Ssd.Json.Float e
            | None -> Ssd.Json.Null );
          ( "access",
            match o.Ssd_lint.Card.op_access with
            | Some a -> Ssd.Json.String a
            | None -> Ssd.Json.Null );
          ("unbounded", Ssd.Json.Bool o.Ssd_lint.Card.op_unbounded);
        ]
    in
    let diag_json (d : Ssd_diag.t) =
      Ssd.Json.Obj
        [
          ("code", Ssd.Json.String d.Ssd_diag.code);
          ("message", Ssd.Json.String d.Ssd_diag.message);
        ]
    in
    print_endline
      (Ssd.Json.to_string
         (Ssd.Json.Obj
            ([ ("lang", Ssd.Json.String lang); ("query", Ssd.Json.String query_text) ]
            @ (match planned_text with
              | Some p -> [ ("planned", Ssd.Json.String p) ]
              | None -> [])
            @ [
                ("operators", Ssd.Json.List (List.map op_json card.Ssd_lint.Card.ops));
                ( "estimated",
                  match card.Ssd_lint.Card.est_total with
                  | Some e -> Ssd.Json.Float e
                  | None -> Ssd.Json.Null );
                ("actual", Ssd.Json.Int actual);
                ( "est_over",
                  match ratio with Some r -> Ssd.Json.Float r | None -> Ssd.Json.Null );
                ("cost_syntax", Ssd.Json.Float card.Ssd_lint.Card.cost_syntax);
                ("cost_planned", Ssd.Json.Float card.Ssd_lint.Card.cost_planned);
                ( "diagnostics",
                  Ssd.Json.List (List.map diag_json card.Ssd_lint.Card.diags) );
              ])))
  | _ ->
    Printf.printf "== explain (%s) ==\n" lang;
    Printf.printf "query:\n  %s\n" query_text;
    Option.iter (Printf.printf "planned:\n  %s\n") planned_text;
    if card.Ssd_lint.Card.ops <> [] then begin
      print_endline "operators:";
      List.iter
        (fun (o : Ssd_lint.Card.op_est) ->
          Printf.printf "  %-40s est=%-8s%s%s\n" o.Ssd_lint.Card.op_text
            (fmt_est o.Ssd_lint.Card.op_est)
            (match o.Ssd_lint.Card.op_access with
            | Some a -> Printf.sprintf " access=%s" a
            | None -> "")
            (if o.Ssd_lint.Card.op_unbounded then " (unbounded)" else ""))
        card.Ssd_lint.Card.ops
    end;
    Printf.printf "estimated cardinality: %s (upper bound)\n"
      (fmt_est card.Ssd_lint.Card.est_total);
    Printf.printf "actual cardinality: %d\n" actual;
    Option.iter (Printf.printf "estimate/actual: %.2f\n") ratio;
    Printf.printf "cost: syntactic order %.0f, planned order %.0f\n"
      card.Ssd_lint.Card.cost_syntax card.Ssd_lint.Card.cost_planned;
    if card.Ssd_lint.Card.diags <> [] then
      print_string (Ssd_diag.render card.Ssd_lint.Card.diags)

(* ------------------------------------------------------------------ *)
(* convert                                                             *)
(* ------------------------------------------------------------------ *)

let convert_cmd data target =
  let g = load_data data in
  match target with
  | "ssd" -> print_graph g
  | "json" -> print_endline (Ssd.Json.to_string (Ssd.Json.of_tree (Graph.to_tree g)))
  | "triples" ->
    print_endline (Relstore.Relation.to_string (Relstore.Triple.edges g));
    print_endline (Relstore.Relation.to_string (Relstore.Triple.root g))
  | "oem" -> print_endline (Ssd.Oem.to_string (Ssd.Oem.of_graph g))
  | other -> Printf.eprintf "unknown target %s (use ssd, json, oem or triples)\n" other

(* ------------------------------------------------------------------ *)
(* dataguide                                                           *)
(* ------------------------------------------------------------------ *)

let dataguide_cmd data max_len =
  let g = load_data data in
  let guide = Ssd_schema.Dataguide.build g in
  Printf.printf "data nodes: %d, guide nodes: %d\n" (Graph.n_nodes g)
    (Ssd_schema.Dataguide.n_nodes guide);
  List.iter
    (fun path ->
      if path <> [] then
        print_endline (String.concat "." (List.map Label.to_string path)))
    (Ssd_schema.Dataguide.paths guide ~max_len)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_cmd data schema_path =
  let g = load_data data in
  let schema = Ssd_schema.Gschema.parse (read_file schema_path) in
  if Ssd_schema.Gschema.conforms g schema then begin
    print_endline "conforms";
    exit 0
  end
  else begin
    let bad = Ssd_schema.Gschema.violations g schema in
    Printf.printf "does NOT conform: %d violating nodes (showing up to 10)\n"
      (List.length bad);
    List.iteri (fun i u -> if i < 10 then Printf.printf "  node %d\n" u) bad;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* update                                                              *)
(* ------------------------------------------------------------------ *)

let update_cmd data store_path stmts =
  match (data, store_path) with
  | Some _, Some _ ->
    Printf.eprintf "ssdql update: --data and --store are mutually exclusive\n";
    exit 2
  | None, None ->
    Printf.eprintf "ssdql update: one of --data or --store is required\n";
    exit 2
  | Some d, None -> print_graph (Lorel.Update.run ~db:(load_data d) stmts)
  | None, Some dir ->
    (* In-place durable update: the new graph is committed (WAL fsync)
       before anything is printed, then the store is closed cleanly. *)
    let st = Ssd_store.Store.open_ (Ssd_store.Vfs.real dir) in
    let r = Ssd_store.Store.recovery st in
    if not r.Ssd_store.Store.was_clean then
      Printf.eprintf "ssdql update: store recovered (%d txns replayed, %d torn bytes discarded)\n%!"
        r.Ssd_store.Store.recovered_txns r.Ssd_store.Store.torn_bytes;
    let g = Lorel.Update.run ~db:(Ssd_store.Store.graph st) stmts in
    Ssd_store.Store.commit st g;
    Ssd_store.Store.close st;
    print_graph g

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd data =
  let g = load_data data in
  Format.printf "%a@." Ssd_index.Stats.pp (Ssd_index.Stats.compute g);
  Format.printf "top labels:@.";
  List.iter
    (fun (l, c) -> Format.printf "  %s: %d@." (Label.to_string l) c)
    (Ssd_index.Stats.top_labels g ~k:10)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cmd kind n seed =
  let g =
    match kind with
    | "movies" -> Ssd_workload.Movies.generate ~seed ~n_entries:n ()
    | "figure1" -> Ssd_workload.Movies.figure1 ()
    | "web" -> Ssd_workload.Webgraph.generate ~seed ~n_pages:n ()
    | "bio" -> Ssd_workload.Biodb.generate ~seed ~n_taxa:n ()
    | "bib" -> Ssd_workload.Bibdb.generate ~seed ~n_papers:n ()
    | "randtree" -> Ssd_workload.Randtree.generate ~seed ~regularity:0.5 ~n_edges:n ()
    | other ->
      Printf.eprintf "unknown workload %s (movies|figure1|web|bio|bib|randtree)\n" other;
      exit 2
  in
  print_graph g

(* ------------------------------------------------------------------ *)
(* dist                                                                *)
(* ------------------------------------------------------------------ *)

(* Distributed evaluation of a regular path query, optionally under an
   injected fault schedule and/or a budget.  Output is line-oriented:
     accepting: <sorted node ids>
     status: complete | partial (<reason>)
     stats: <one-line JSON>
   or, with --format json, a single JSON object with those fields.
   Same --faults spec => identical accepting set AND identical stats. *)
let dist_cmd jobs data sites partition_kind seed faults deadline_ms max_steps format quiet
    trace_out query_text =
  Ssd_par.Pool.set_default_jobs jobs;
  let db = load_data data in
  if trace_out <> None then begin
    Ssd_obs.Trace.enable ();
    Ssd_obs.Trace.name_lane 0 "coordinator"
  end;
  let nfa =
    try Ssd_automata.Nfa.of_string query_text
    with e ->
      Printf.eprintf "bad path query: %s\n" (Printexc.to_string e);
      exit 2
  in
  let diag_exit f =
    try f ()
    with Ssd_diag.Fail d ->
      prerr_endline (Ssd_diag.to_string d);
      exit 2
  in
  let part =
    match partition_kind with
    | "bfs" -> diag_exit (fun () -> Ssd_dist.Decompose.partition_bfs ~k:sites db)
    | "random" ->
      diag_exit (fun () -> Ssd_dist.Decompose.partition_random ~seed ~k:sites db)
    | other ->
      Printf.eprintf "unknown partition %s (use bfs or random)\n" other;
      exit 2
  in
  let plan =
    match faults with
    | None -> Ssd_fault.Plan.none
    | Some spec -> diag_exit (fun () -> Ssd_fault.Plan.parse spec)
  in
  let budget =
    if deadline_ms <> None || max_steps <> None then
      Some (Ssd.Budget.create ?deadline_ms ?max_steps ())
    else None
  in
  let outcome, st = Ssd_dist.Decompose.run ~plan ?budget db part nfa in
  let answers, why =
    match outcome with
    | Ssd.Budget.Complete a -> (a, None)
    | Ssd.Budget.Partial (a, why) -> (a, Some why)
  in
  let stats_json = Ssd_dist.Decompose.stats_to_json st in
  Option.iter
    (fun path ->
      Ssd_obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (load in chrome://tracing or Perfetto)\n" path)
    trace_out;
  match format with
  | "json" ->
    print_endline
      (Ssd.Json.to_string
         (Ssd.Json.Obj
            [
              ("accepting", Ssd.Json.List (List.map (fun u -> Ssd.Json.Int u) answers));
              ("status", Ssd.Json.String (status_of why));
              ("stats", stats_json);
            ]))
  | _ ->
    Printf.printf "accepting: %s\n" (String.concat " " (List.map string_of_int answers));
    Printf.printf "status: %s\n" (status_of why);
    if not quiet then Printf.printf "stats: %s\n" (Ssd.Json.to_string stats_json)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

(* Evaluate a query with tracing on and print per-operator inclusive /
   exclusive time aggregated from the span stream (a sorted flame
   table).  The result itself is discarded: profile answers "where did
   the time go", query answers "what is the answer". *)
let profile_cmd jobs data lang repeat format trace_out query_text =
  Ssd_par.Pool.set_default_jobs jobs;
  let db = load_data data in
  Ssd_obs.Trace.enable ();
  Ssd_obs.Trace.name_lane 0 "main";
  let eval =
    match lang with
    | "unql" ->
      let q = Unql.Parser.parse query_text in
      fun () -> ignore (Unql.Eval.eval ~db q)
    | "lorel" ->
      let q = Lorel.Parser.parse query_text in
      fun () -> ignore (Lorel.Eval.eval ~db q)
    | "websql" -> fun () -> ignore (Websql.Eval.run ~db query_text)
    | "datalog" ->
      let program = Relstore.Datalog.parse query_text in
      let edb = Relstore.Triple.edb db in
      fun () -> ignore (Relstore.Datalog.eval ~edb program)
    | other ->
      Printf.eprintf "unknown language %s (use unql, lorel, websql or datalog)\n" other;
      exit 2
  in
  for _ = 1 to max 1 repeat do
    eval ()
  done;
  let roots = Ssd_obs.Trace.spans () in
  let rows = Ssd_obs.Profile.of_spans roots in
  let total = Ssd_obs.Profile.total_ns roots in
  (match format with
  | "json" -> print_endline (Ssd.Json.to_string (Ssd_obs.Profile.to_json ~total rows))
  | _ -> print_string (Ssd_obs.Profile.render ~total rows));
  Option.iter
    (fun path ->
      Ssd_obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (load in chrome://tracing or Perfetto)\n" path)
    trace_out

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

(* Long-running multi-tenant query service over a Unix or TCP socket.
   The line protocol, admission control and partial-answer semantics
   live in lib/serve (see README "Serving"); this command only wires
   data loading, the socket address, config knobs and shutdown. *)
let serve_cmd data store_path socket_path tcp_port host workers shed_at pressure_at
    pressure_max_steps max_frame cache_capacity max_requests trace_out stats
    stats_format admin_addr slow_query_ms events_out =
  let persistent =
    match (data, store_path) with
    | Some _, Some _ ->
      Printf.eprintf "ssdql serve: --data and --store are mutually exclusive\n";
      exit 2
    | None, None ->
      Printf.eprintf "ssdql serve: one of --data or --store is required\n";
      exit 2
    | Some _, None -> None
    | None, Some dir ->
      let st = Ssd_store.Store.open_ (Ssd_store.Vfs.real dir) in
      let r = Ssd_store.Store.recovery st in
      if r.Ssd_store.Store.was_clean then
        Printf.eprintf "ssdql serve: store clean open (no recovery)\n%!"
      else
        Printf.eprintf
          "ssdql serve: store recovered (%d txns replayed, %d torn bytes discarded)\n%!"
          r.Ssd_store.Store.recovered_txns r.Ssd_store.Store.torn_bytes;
      Some st
  in
  let db =
    match persistent with
    | Some st -> Ssd_store.Store.graph st
    | None -> load_data (Option.get data)
  in
  if trace_out <> None then begin
    Ssd_obs.Trace.enable ();
    Ssd_obs.Trace.name_lane 0 "acceptor"
  end;
  let store = Ssd_serve.Engine.store ~cache_capacity ~db () in
  let config =
    {
      Ssd_serve.Engine.max_frame;
      shed_at;
      pressure_at;
      pressure_max_steps;
      slow_query_ms;
    }
  in
  Option.iter
    (fun path ->
      Ssd_obs.Events.set_sink Ssd_obs.Events.default
        (Some (Ssd_obs.Events.file_sink path)))
    events_out;
  (* Every acknowledged UPDATE goes through the WAL before the swap:
     commit appends + fsyncs, so kill -9 after the response cannot lose
     it (restart replays the log). *)
  (match persistent with
  | Some st -> Ssd_serve.Engine.set_persist store (fun g -> Ssd_store.Store.commit st g)
  | None -> ());
  let engine = Ssd_serve.Engine.create ~config store in
  let addr =
    match tcp_port with
    | Some port -> Ssd_serve.Server.Tcp (host, port)
    | None -> Ssd_serve.Server.Unix_sock socket_path
  in
  let server = Ssd_serve.Server.start ~workers ~engine addr in
  (match Ssd_serve.Server.bound server with
  | Ssd_serve.Server.Unix_sock path ->
    Printf.eprintf "ssdql serve: listening on unix:%s (workers=%d)\n%!" path workers
  | Ssd_serve.Server.Tcp (host, port) ->
    Printf.eprintf "ssdql serve: listening on tcp:%s:%d (workers=%d)\n%!" host port
      workers);
  (* The admin plane reads durability state through the metrics gauges
     (atomic snapshot), never the store record itself — its callbacks
     run on the admin domain, concurrently with commits. *)
  let started_at = Unix.gettimeofday () in
  let module J = Ssd.Json in
  let healthz () =
    let snap = Ssd_obs.Metrics.snapshot ~prefix:"store." Ssd_obs.Metrics.default in
    let g name = List.assoc_opt name snap.Ssd_obs.Metrics.snap_gauges in
    let store_doc =
      match persistent with
      | None -> [ ("store", J.Null) ]
      | Some st ->
        let r = Ssd_store.Store.recovery st in
        let num name = J.Float (Option.value ~default:0. (g name)) in
        [
          ( "store",
            J.Obj
              [
                ("clean", J.Bool (g "store.clean" = Some 1.));
                ("wal_backlog_bytes", num "store.wal_backlog_bytes");
                ("dirty_pages", num "store.dirty_pages");
                ("pages", num "store.pages");
                ( "last_recovery",
                  J.Obj
                    [
                      ("recovered_txns", J.Int r.Ssd_store.Store.recovered_txns);
                      ("torn_bytes", J.Int r.Ssd_store.Store.torn_bytes);
                      ("was_clean", J.Bool r.Ssd_store.Store.was_clean);
                    ] );
              ] );
        ]
    in
    ( J.Obj
        ([
           ("status", J.String "ok");
           ("uptime_s", J.Float (Unix.gettimeofday () -. started_at));
         ]
        @ store_doc),
      true )
  in
  let varz () =
    J.Obj
      [
        ("name", J.String "ssdql serve");
        ("version", J.String "1.0.0");
        ("pid", J.Int (Unix.getpid ()));
        ("started_at", J.Float started_at);
        ("uptime_s", J.Float (Unix.gettimeofday () -. started_at));
        ( "listen",
          J.String
            (match Ssd_serve.Server.bound server with
            | Ssd_serve.Server.Unix_sock p -> "unix:" ^ p
            | Ssd_serve.Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p) );
        ( "store",
          match store_path with Some d -> J.String d | None -> J.Null );
        ( "config",
          J.Obj
            [
              ("workers", J.Int workers);
              ("shed_at", J.Int shed_at);
              ("pressure_at", J.Int pressure_at);
              ("pressure_max_steps", J.Int pressure_max_steps);
              ("max_frame", J.Int max_frame);
              ("cache_capacity", J.Int cache_capacity);
              ("slow_query_ms", J.Float slow_query_ms);
            ] );
      ]
  in
  let admin =
    match admin_addr with
    | None -> None
    | Some s -> (
      match Ssd_serve.Admin.addr_of_string s with
      | Result.Error e ->
        Printf.eprintf "ssdql serve: %s\n" e;
        Ssd_serve.Server.stop server;
        exit 2
      | Result.Ok addr ->
        let a = Ssd_serve.Admin.start ~healthz ~varz addr in
        Printf.eprintf "ssdql serve: admin plane on %s\n%!"
          (Ssd_serve.Admin.addr_to_string (Ssd_serve.Admin.bound a));
        Some a)
  in
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let done_ () =
    Atomic.get stop_requested
    ||
    match max_requests with
    | None -> false
    | Some n -> (Ssd_serve.Engine.stats engine).Ssd_serve.Engine.requests >= n
  in
  while not (done_ ()) do
    Unix.sleepf 0.05
  done;
  (match admin with Some a -> Ssd_serve.Admin.stop a | None -> ());
  Ssd_serve.Server.stop server;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  (* Graceful shutdown: flush the WAL into the data file and set the
     clean flag, so the next open skips recovery. *)
  (match persistent with
  | Some st ->
    Ssd_store.Store.close st;
    Printf.eprintf "ssdql serve: store closed cleanly (checkpoint written)\n%!"
  | None -> ());
  let s = Ssd_serve.Engine.stats engine in
  Printf.eprintf
    "ssdql serve: stopped after %d requests (%d accepted, %d shed, %d partial, %d errors, %d updates)\n%!"
    s.Ssd_serve.Engine.requests s.Ssd_serve.Engine.accepted s.Ssd_serve.Engine.shed
    s.Ssd_serve.Engine.partial s.Ssd_serve.Engine.errors s.Ssd_serve.Engine.updates;
  Option.iter
    (fun path ->
      Ssd_obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (load in chrome://tracing or Perfetto)\n" path)
    trace_out;
  if stats then dump_stats stats_format

(* ------------------------------------------------------------------ *)
(* subscribe                                                           *)
(* ------------------------------------------------------------------ *)

(* A long-lived protocol client: SUBSCRIBE once, then stream the pushed
   delta frames.  Each frame is printed as one "== STATUS DETAIL" line
   followed by its body, flushed — line-oriented enough for scripts and
   the smoke tests to consume. *)
let subscribe_cmd socket_path tcp_port host lang count q =
  let module Proto = Ssd_serve.Proto in
  let domain, sockaddr =
    match tcp_port with
    | Some port ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    | None -> (Unix.PF_UNIX, Unix.ADDR_UNIX socket_path)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sockaddr;
      let opts = { Proto.default_options with Proto.lang } in
      let req =
        Proto.render_request { Proto.verb = Proto.Subscribe; opts; body = q } ^ "\n"
      in
      let b = Bytes.unsafe_of_string req in
      let rec send off =
        if off < Bytes.length b then
          send (off + Unix.write fd b off (Bytes.length b - off))
      in
      send 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let pos = ref 0 in
      let deltas = ref 0 in
      let stop = ref false in
      let print_frame (r : Proto.response) =
        Printf.printf "== %s %s\n%s%!" (Proto.status_to_string r.Proto.status)
          r.Proto.detail r.Proto.body
      in
      let rec pump () =
        if !stop then ()
        else
          match Proto.parse_response (Buffer.contents buf) !pos with
          | Result.Ok (r, next) ->
            pos := next;
            print_frame r;
            (match r.Proto.status with
            | Proto.Error ->
              stop := true;
              exit 1
            | Proto.Delta ->
              incr deltas;
              if count > 0 && !deltas >= count then stop := true
            | _ -> ());
            pump ()
          | Result.Error `Incomplete -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> stop := true
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              pump ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ())
          | Result.Error (`Malformed reason) ->
            Printf.eprintf "ssdql subscribe: malformed frame: %s\n%!" reason;
            exit 1
      in
      pump ())

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* Polling terminal dashboard over the admin plane's /metrics endpoint —
   the same exposition Prometheus would scrape, parsed with the same
   parser the round-trip tests use. *)

let admin_http_get addr path =
  let domain, sockaddr =
    match addr with
    | Ssd_serve.Admin.Unix_sock p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Ssd_serve.Admin.Tcp (h, p) ->
      let inet =
        try (Unix.gethostbyname h).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, p))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sockaddr;
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let b = Bytes.unsafe_of_string req in
      let rec send off =
        if off < Bytes.length b then send (off + Unix.write fd b off (Bytes.length b - off))
      in
      send 0;
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 8192 in
      let rec recv () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
      in
      recv ();
      let raw = Buffer.contents buf in
      (* Split headers from body at the blank line. *)
      let rec find_body i =
        if i + 3 >= String.length raw then None
        else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
        else if String.sub raw i 2 = "\n\n" then Some (i + 2)
        else find_body (i + 1)
      in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt code)
        | _ -> 0
      in
      match find_body 0 with
      | Some i -> (status, String.sub raw i (String.length raw - i))
      | None -> (status, ""))

let top_total lines fam = Ssd_obs.Export.counter_total lines fam

let top_percentile lines fam q =
  let buckets =
    List.filter_map
      (function
        | Ssd_obs.Export.Sample s when s.Ssd_obs.Export.family = fam ^ "_bucket" -> (
          match List.assoc_opt "le" s.Ssd_obs.Export.labels with
          | Some "+Inf" | None -> None
          | Some le -> (
            match float_of_string_opt le with
            | Some ub -> Some (ub, s.Ssd_obs.Export.value)
            | None -> None))
        | _ -> None)
      lines
    |> List.sort compare
  in
  let total = top_total lines (fam ^ "_count") in
  if total <= 0. then 0.
  else begin
    let rank = q *. total in
    let rec go last = function
      | [] -> last
      | (ub, cum) :: rest -> if cum >= rank then ub else go ub rest
    in
    go 0. buckets
  end

let top_fmt_ns ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let top_fmt_bytes b =
  if b < 1024. then Printf.sprintf "%.0fB" b
  else if b < 1024. *. 1024. then Printf.sprintf "%.1fKiB" (b /. 1024.)
  else Printf.sprintf "%.2fMiB" (b /. (1024. *. 1024.))

let top_pct num den = if den <= 0. then 0. else 100. *. num /. den

let top_cmd addr_str interval iterations raw =
  let addr =
    match Ssd_serve.Admin.addr_of_string addr_str with
    | Result.Ok a -> a
    | Result.Error e ->
      Printf.eprintf "ssdql top: %s\n" e;
      exit 2
  in
  let prev = ref None in
  let sample i =
    match admin_http_get addr "/metrics" with
    | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "ssdql top: %s unreachable: %s\n%!" addr_str
        (Unix.error_message err);
      exit 1
    | 200, body -> (
      match Ssd_obs.Export.parse body with
      | Result.Error e ->
        Printf.eprintf "ssdql top: bad exposition: %s\n%!" e;
        exit 1
      | Result.Ok lines ->
        let now = Unix.gettimeofday () in
        let requests = top_total lines "ssd_serve_requests_total" in
        let qps =
          match !prev with
          | Some (t0, r0) when now > t0 -> (requests -. r0) /. (now -. t0)
          | _ -> 0.
        in
        prev := Some (now, requests);
        let p50 = top_percentile lines "ssd_serve_latency_ns" 0.5 in
        let p99 = top_percentile lines "ssd_serve_latency_ns" 0.99 in
        let accepted = top_total lines "ssd_serve_accepted_total" in
        let hits = top_total lines "ssd_serve_cache_hits_total" in
        let shed = top_total lines "ssd_serve_shed_total" in
        let partial = top_total lines "ssd_serve_partial_total" in
        let conns = top_total lines "ssd_serve_active_connections" in
        let dirty = top_total lines "ssd_store_dirty_pages" in
        let wal = top_total lines "ssd_store_wal_backlog_bytes" in
        let clean = top_total lines "ssd_store_clean" in
        let pool = top_total lines "ssd_store_bufpool_pages" in
        let pool_cap = top_total lines "ssd_store_bufpool_capacity" in
        let tenants =
          List.filter_map
            (function
              | Ssd_obs.Export.Sample s
                when s.Ssd_obs.Export.family = "ssd_serve_tenant_requests_total" ->
                Option.map
                  (fun t -> (t, s.Ssd_obs.Export.value))
                  (List.assoc_opt "tenant" s.Ssd_obs.Export.labels)
              | _ -> None)
            lines
        in
        if raw then begin
          Printf.printf "sample %d qps %.1f requests %.0f p50_ns %.0f p99_ns %.0f\n" i
            qps requests p50 p99;
          Printf.printf
            "sample %d cache_hit_pct %.1f shed_pct %.1f partial_pct %.1f conns %.0f\n"
            i (top_pct hits accepted) (top_pct shed requests)
            (top_pct partial requests) conns;
          Printf.printf "sample %d wal_bytes %.0f dirty_pages %.0f clean %.0f\n%!" i
            wal dirty clean
        end
        else begin
          let tm = Unix.localtime now in
          Printf.printf "ssdql top — %s — %02d:%02d:%02d (sample %d)\n" addr_str
            tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec i;
          Printf.printf "  qps %8.1f   latency p50 %-9s p99 %-9s conns %.0f\n" qps
            (top_fmt_ns p50) (top_fmt_ns p99) conns;
          Printf.printf
            "  requests %.0f   cache hit %.1f%%   shed %.1f%%   partial %.1f%%\n"
            requests (top_pct hits accepted) (top_pct shed requests)
            (top_pct partial requests);
          Printf.printf
            "  store: clean=%s   wal backlog %s   dirty pages %.0f   bufpool %.0f/%.0f\n"
            (if clean >= 1. then "yes" else "no")
            (top_fmt_bytes wal) dirty pool pool_cap;
          (match List.sort (fun (_, a) (_, b) -> compare b a) tenants with
          | [] -> ()
          | ts ->
            Printf.printf "  tenants: %s\n"
              (String.concat "  "
                 (List.map (fun (t, v) -> Printf.sprintf "%s=%.0f" t v) ts)));
          print_newline ();
          flush stdout
        end)
    | status, _ ->
      Printf.eprintf "ssdql top: /metrics answered HTTP %d\n%!" status;
      exit 1
  in
  let i = ref 1 in
  let continue () = iterations = 0 || !i <= iterations in
  while continue () do
    sample !i;
    incr i;
    if continue () then Unix.sleepf interval
  done

(* ------------------------------------------------------------------ *)
(* store init|stat|fsck|compact                                        *)
(* ------------------------------------------------------------------ *)

let print_store_stat st =
  let s = Ssd_store.Store.stat st in
  Printf.printf "page size:   %d bytes\n" s.Ssd_store.Store.stat_page_size;
  Printf.printf "pages:       %d\n" s.Ssd_store.Store.stat_n_pages;
  Printf.printf "wal:         %d bytes pending\n" s.Ssd_store.Store.stat_wal_bytes;
  Printf.printf "clean:       %b\n" s.Ssd_store.Store.stat_clean;
  Printf.printf "graph:       %d nodes, %d edges\n" s.Ssd_store.Store.stat_nodes
    s.Ssd_store.Store.stat_edges;
  List.iter
    (fun (name, len) -> Printf.printf "segment %-6s %d bytes\n" name len)
    s.Ssd_store.Store.stat_segs

let store_init_cmd dir data page_size indexes path_depth =
  let g = load_data data in
  let indexes =
    match indexes with
    | "" | "none" -> []
    | "all" -> Ssd_store.Store.all_indexes
    | spec -> String.split_on_char ',' spec
  in
  let st =
    Ssd_store.Store.create ~page_size ~indexes ~path_depth (Ssd_store.Vfs.real dir) g
  in
  print_store_stat st;
  Ssd_store.Store.close st;
  Printf.printf "store initialized in %s\n" dir

let store_stat_cmd dir =
  let st = Ssd_store.Store.open_ (Ssd_store.Vfs.real dir) in
  let r = Ssd_store.Store.recovery st in
  if not r.Ssd_store.Store.was_clean then
    Printf.eprintf "ssdql store: recovered %d txns (%d torn bytes discarded)\n%!"
      r.Ssd_store.Store.recovered_txns r.Ssd_store.Store.torn_bytes;
  print_store_stat st;
  Ssd_store.Store.close st

let store_fsck_cmd dir =
  let diags = Ssd_store.Store.fsck (Ssd_store.Vfs.real dir) in
  if diags = [] then print_endline "fsck: clean"
  else print_string (Ssd_diag.render diags);
  if Ssd_diag.count Ssd_diag.Error diags > 0 then exit 1

let store_compact_cmd dir =
  let st = Ssd_store.Store.open_ (Ssd_store.Vfs.real dir) in
  Ssd_store.Store.compact st;
  print_store_stat st;
  Ssd_store.Store.close st;
  Printf.printf "store compacted\n"

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let data_doc =
  "Data file (.ssd syntax; .json, .oem and .bin are auto-detected) \
   or builtin:KIND[:N] for a generated workload \
   (figure1|movies|web|bio|bib|randtree)."

let data_arg =
  Arg.(required & opt (some string) None & info [ "d"; "data" ] ~docv:"FILE" ~doc:data_doc)

(* --data made optional, for commands that also accept --store. *)
let data_opt_arg =
  Arg.(value & opt (some string) None & info [ "d"; "data" ] ~docv:"FILE" ~doc:data_doc)

let store_arg =
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
         ~doc:"Persistent store directory (created by $(b,ssdql store init)); \
               mutually exclusive with --data. Opening runs crash recovery if \
               the store was not closed cleanly.")

let store_req_arg =
  Arg.(required & opt (some string) None & info [ "store" ] ~docv:"DIR"
         ~doc:"Persistent store directory.")

let deadline_ms_arg =
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Evaluation deadline in milliseconds of CPU time; on expiry the \
               evaluation stops and reports a partial answer (a sound subset of \
               the complete one).")

let max_steps_arg =
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N"
         ~doc:"Evaluation step budget (frontier expansions / bindings / rule \
               firings); on exhaustion the evaluation stops and reports a \
               partial answer.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Evaluate with a pool of N worker domains (default 1). Answers, \
               stats and cache fingerprints are identical for every N; only \
               wall-clock time changes.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Write the execution trace as Chrome trace-event JSON, loadable \
               in chrome://tracing or Perfetto.")

let query_t =
  let lang =
    Arg.(value & opt string "unql" & info [ "l"; "lang" ] ~docv:"LANG"
           ~doc:"Query language: unql, lorel, websql or datalog.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Print the normalized query, regex automaton sizes and \
                 DataGuide prune opportunities before evaluating (unql only).")
  in
  let cache =
    Arg.(value & flag & info [ "cache" ]
           ~doc:"Evaluate through the shared plan/result cache (unql only); \
                 prints hit/miss counters to stderr.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Evaluate the query N times (exercises the cache).")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ]
           ~doc:"Suppress the query result (useful with --stats).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Dump the metrics registry after evaluation.")
  in
  let stats_format =
    Arg.(value & opt string "text" & info [ "stats-format" ] ~docv:"FMT"
           ~doc:"Metrics dump format: text or json.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print a span tree of the evaluation to stderr.")
  in
  let lint =
    Arg.(value & opt ~vopt:"warn" string "off" & info [ "lint" ] ~docv:"MODE"
           ~doc:"Run the static analyzer before evaluating: warn prints findings \
                 to stderr, error additionally rejects the query if any finding \
                 has Error severity.")
  in
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v (Cmd.info "query" ~doc:"Run a query against a data file or persistent store")
    Term.(const query_cmd $ jobs_arg $ data_opt_arg $ store_arg $ lang $ lint $ explain
          $ cache $ repeat $ quiet
          $ stats $ stats_format $ trace $ trace_out_arg $ deadline_ms_arg
          $ max_steps_arg $ q)

let check_t =
  let data =
    Arg.(value & opt (some string) None & info [ "d"; "data" ] ~docv:"FILE"
           ~doc:"Data file or builtin:KIND[:N]; when given, path expressions are \
                 checked for satisfiability against its DataGuide.")
  in
  let lang =
    Arg.(value & opt string "unql" & info [ "l"; "lang" ] ~docv:"LANG"
           ~doc:"Query language: unql, lorel or datalog.")
  in
  let schema =
    Arg.(value & opt (some file) None & info [ "s"; "schema" ] ~docv:"FILE"
           ~doc:"Check path satisfiability against this graph schema instead of a \
                 DataGuide.")
  in
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Report format: text or json.")
  in
  let codes =
    Arg.(value & flag & info [ "codes" ]
           ~doc:"List every SSDxxx diagnostic code with its severity and exit.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Dump the lint.* counters from the metrics registry.")
  in
  let cost =
    Arg.(value & flag & info [ "cost" ]
           ~doc:"Also run the cardinality/cost analysis over the data's \
                 annotated DataGuide (needs --data): estimated result \
                 cardinality, conjunct-order costs and the SSD25x \
                 diagnostics.  With --schema and unql, the inferred result \
                 schema is checked for subsumption (SSD254).")
  in
  let q = Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically analyze a query without running it (exit 1 on errors)")
    Term.(const check_cmd $ data $ lang $ schema $ format $ codes $ stats $ cost $ q)

let explain_t =
  let lang =
    Arg.(value & opt string "unql" & info [ "l"; "lang" ] ~docv:"LANG"
           ~doc:"Query language: unql, lorel or datalog.")
  in
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: text or json.")
  in
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the planner's view of a query: per-operator cardinality \
             estimates and access paths from the annotated DataGuide, \
             next to the actual cardinality from one evaluation")
    Term.(const explain_cmd $ data_arg $ lang $ format $ q)

let convert_t =
  let target =
    Arg.(value & opt string "ssd" & info [ "t"; "to" ] ~docv:"FMT"
           ~doc:"Target format: ssd, json, oem or triples.")
  in
  Cmd.v (Cmd.info "convert" ~doc:"Convert between data formats")
    Term.(const convert_cmd $ data_arg $ target)

let dataguide_t =
  let max_len =
    Arg.(value & opt int 4 & info [ "max-len" ] ~docv:"N" ~doc:"Path length cutoff.")
  in
  Cmd.v (Cmd.info "dataguide" ~doc:"Print the strong DataGuide")
    Term.(const dataguide_cmd $ data_arg $ max_len)

let validate_t =
  let schema =
    Arg.(required & opt (some file) None & info [ "s"; "schema" ] ~docv:"FILE"
           ~doc:"Graph schema file.")
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate data against a graph schema")
    Term.(const validate_cmd $ data_arg $ schema)

let update_t =
  let stmts = Arg.(required & pos 0 (some string) None & info [] ~docv:"STATEMENTS") in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply insert/delete/rename statements; print the new database. \
             With --store the new database is durably committed in place.")
    Term.(const update_cmd $ data_opt_arg $ store_arg $ stmts)

let stats_t =
  Cmd.v (Cmd.info "stats" ~doc:"Print graph statistics") Term.(const stats_cmd $ data_arg)

let gen_t =
  let kind = Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND") in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Size parameter.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic workload")
    Term.(const gen_cmd $ kind $ n $ seed)

let profile_t =
  let lang =
    Arg.(value & opt string "unql" & info [ "l"; "lang" ] ~docv:"LANG"
           ~doc:"Query language: unql, lorel, websql or datalog.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Evaluate the query N times; the table aggregates all runs.")
  in
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Table format: text or json.")
  in
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Evaluate a query with tracing on and print per-operator \
             inclusive/exclusive time (a sorted flame table)")
    Term.(const profile_cmd $ jobs_arg $ data_arg $ lang $ repeat $ format $ trace_out_arg $ q)

let dist_t =
  let sites =
    Arg.(value & opt int 4 & info [ "sites" ] ~docv:"K" ~doc:"Number of sites.")
  in
  let partition =
    Arg.(value & opt string "bfs" & info [ "partition" ] ~docv:"KIND"
           ~doc:"Graph partition: bfs (contiguous, good locality) or random \
                 (hash, worst-case locality).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for --partition random.")
  in
  let faults =
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Deterministic fault schedule, e.g. \
                 seed:7,drop:0.2,dup:0.05,reorder:0.1,crash:2\\@3+4,slow:0\\@3,\
                 ckpt:2,backoff:exp,rounds:500.  The same SPEC replays the \
                 identical fault history: answers and stats are reproducible.")
  in
  let format =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: text (accepting/status/stats lines) or json.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the stats line (text format).")
  in
  let q =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH_QUERY"
           ~doc:"Regular path query, e.g. 'host.page.(link)*.title._'.")
  in
  Cmd.v
    (Cmd.info "dist"
       ~doc:"Evaluate a regular path query distributed over a partitioned graph, \
             with optional fault injection and deadlines")
    Term.(const dist_cmd $ jobs_arg $ data_arg $ sites $ partition $ seed $ faults
          $ deadline_ms_arg $ max_steps_arg $ format $ quiet $ trace_out_arg $ q)

let serve_t =
  let socket =
    Arg.(value & opt string "/tmp/ssdql.sock" & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket path to listen on (default; ignored with --port).")
  in
  let port =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"N"
           ~doc:"Listen on TCP instead of a Unix socket; 0 picks a free port \
                 (printed on the status line).")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
           ~doc:"Bind address for --port.")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains serving connections concurrently (default 4).")
  in
  let shed_at =
    Arg.(value & opt int Ssd_serve.Engine.default_config.Ssd_serve.Engine.shed_at
         & info [ "shed-at" ] ~docv:"N"
             ~doc:"Load (queued + in-flight requests) above which new queries \
                   are refused with a shed response (SSD554).")
  in
  let pressure_at =
    Arg.(value
         & opt int Ssd_serve.Engine.default_config.Ssd_serve.Engine.pressure_at
         & info [ "pressure-at" ] ~docv:"N"
             ~doc:"Load above which query step budgets are clamped so requests \
                   answer quickly with typed partial results.")
  in
  let pressure_max_steps =
    Arg.(value
         & opt int
             Ssd_serve.Engine.default_config.Ssd_serve.Engine.pressure_max_steps
         & info [ "pressure-max-steps" ] ~docv:"N"
             ~doc:"The clamped step budget applied under pressure.")
  in
  let max_frame =
    Arg.(value & opt int Ssd_serve.Engine.default_config.Ssd_serve.Engine.max_frame
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Request frames longer than this are refused (SSD551).")
  in
  let cache_capacity =
    Arg.(value & opt int 128 & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Entries in the shared query result cache (LRU).")
  in
  let max_requests =
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N"
           ~doc:"Stop gracefully after handling N requests (for scripted runs; \
                 default: run until SIGINT/SIGTERM).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Dump the metrics registry (serve.* counters and the latency \
                 histogram) after shutdown.")
  in
  let stats_format =
    Arg.(value & opt string "text" & info [ "stats-format" ] ~docv:"FMT"
           ~doc:"Metrics dump format: text or json.")
  in
  let admin =
    Arg.(value & opt (some string) None & info [ "admin" ] ~docv:"ADDR"
           ~doc:"Expose the admin plane (GET /metrics, /healthz, /varz, \
                 /events) over minimal HTTP on unix:PATH or tcp:HOST:PORT.")
  in
  let slow_query_ms =
    Arg.(value
         & opt float
             Ssd_serve.Engine.default_config.Ssd_serve.Engine.slow_query_ms
         & info [ "slow-query-ms" ] ~docv:"MS"
             ~doc:"Queries slower than this emit a slow_query event carrying \
                   the plan and est-vs-actual cardinality (default 250).")
  in
  let events_out =
    Arg.(value & opt (some string) None & info [ "events-out" ] ~docv:"PATH"
           ~doc:"Also append every structured event to this JSONL file \
                 (flushed per line).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve queries to concurrent clients over a Unix or TCP socket, \
             with a shared result cache, admission control and load shedding")
    Term.(const serve_cmd $ data_opt_arg $ store_arg $ socket $ port $ host $ workers
          $ shed_at
          $ pressure_at $ pressure_max_steps $ max_frame $ cache_capacity
          $ max_requests $ trace_out_arg $ stats $ stats_format $ admin
          $ slow_query_ms $ events_out)

let subscribe_t =
  let socket =
    Arg.(value & opt string "/tmp/ssdql.sock" & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket of the running ssdql serve (ignored with --port).")
  in
  let port =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"N"
           ~doc:"Connect over TCP instead of a Unix socket.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
           ~doc:"Host for --port.")
  in
  let lang =
    Arg.(value & opt string "unql" & info [ "l"; "lang" ] ~docv:"LANG"
           ~doc:"Subscription language: unql or datalog.")
  in
  let count =
    Arg.(value & opt int 0 & info [ "count"; "n" ] ~docv:"N"
           ~doc:"Exit after N pushed delta frames (default 0: stream until \
                 the server closes the connection).")
  in
  let q = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "subscribe"
       ~doc:"Register a live query on a running ssdql serve and stream the \
             delta frames pushed when committed updates change its result")
    Term.(const subscribe_cmd $ socket $ port $ host $ lang $ count $ q)

let top_t =
  let addr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR"
           ~doc:"The admin-plane address of a running ssdql serve \
                 (unix:PATH or tcp:HOST:PORT, as given to --admin).")
  in
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval"; "i" ] ~docv:"SECONDS"
           ~doc:"Seconds between samples (default 2).")
  in
  let iterations =
    Arg.(value & opt int 0 & info [ "iterations"; "n" ] ~docv:"N"
           ~doc:"Stop after N samples (default 0: run until interrupted).")
  in
  let raw =
    Arg.(value & flag & info [ "raw" ]
           ~doc:"Machine-readable output: one 'sample N key value ...' line \
                 group per sample, no dashboard formatting.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Polling terminal dashboard (qps, p50/p99 latency, cache hit \
             rate, shed rate, WAL backlog, per-tenant traffic) over the \
             admin plane's /metrics endpoint")
    Term.(const top_cmd $ addr $ interval $ iterations $ raw)

let store_t =
  let init =
    let page_size =
      Arg.(value & opt int 4096 & info [ "page-size" ] ~docv:"BYTES"
             ~doc:"Page size of the new store (128..65536; default 4096).")
    in
    let indexes =
      Arg.(value & opt string "all" & info [ "indexes" ] ~docv:"LIST"
             ~doc:"Comma-separated index segments to maintain at every commit: \
                   any of value,text,path,guide; also 'all' (default) or 'none'. \
                   Maintained indexes are checkpointed and a cold open loads \
                   them without rebuilding.")
    in
    let path_depth =
      Arg.(value & opt int 3 & info [ "path-depth" ] ~docv:"N"
             ~doc:"Depth bound of the maintained path index (default 3).")
    in
    Cmd.v
      (Cmd.info "init" ~doc:"Create a persistent store from a data file")
      Term.(const store_init_cmd $ store_req_arg $ data_arg $ page_size $ indexes
            $ path_depth)
  in
  let stat =
    Cmd.v
      (Cmd.info "stat" ~doc:"Show pages, segments, WAL backlog and the clean flag")
      Term.(const store_stat_cmd $ store_req_arg)
  in
  let fsck =
    Cmd.v
      (Cmd.info "fsck"
         ~doc:"Offline structural check (read-only): header and page CRCs, \
               segment directory bounds, segment decode, WAL tail state. \
               Exits 1 if any Error-severity finding (SSD56x) is reported.")
      Term.(const store_fsck_cmd $ store_req_arg)
  in
  let compact =
    Cmd.v
      (Cmd.info "compact" ~doc:"Apply the WAL and trim the data file to its live pages")
      Term.(const store_compact_cmd $ store_req_arg)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Manage crash-safe persistent graph stores (WAL + recovery)")
    [ init; stat; fsck; compact ]

let () =
  let doc = "semistructured data toolbox (Buneman, PODS'97 reproduction)" in
  let info = Cmd.info "ssdql" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            query_t;
            check_t;
            explain_t;
            convert_t;
            dataguide_t;
            validate_t;
            update_t;
            stats_t;
            gen_t;
            dist_t;
            profile_t;
            serve_t;
            subscribe_t;
            top_t;
            store_t;
          ]))
