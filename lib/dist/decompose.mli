(** Distributed evaluation of regular path queries (section 4), with
    fault tolerance.

    Following Suciu (VLDB'96), "an analysis of the query, combined with
    some segmentation of the graph into local sites, can be used to
    decompose a query into independent, parallel sub-queries".  We
    implement the work-efficient multi-round variant as an explicit
    round-driven state machine:

    + the graph is partitioned into [k] sites;
    + in each round, every site — independently, in parallel — expands
      the (node, automaton state) activations it received, staying within
      its own nodes; product pairs crossing to another site become
      {e messages} for the next round;
    + a message stays in its sender's outbox until {e acknowledged}; an
      unacked message is retransmitted with (by default exponential)
      backoff, so drops, duplicate deliveries and reordering — injected
      deterministically by a {!Ssd_fault.Plan} — never lose answers;
    + sites {e checkpoint} their seen-set every [ckpt] rounds and only
      acknowledge messages once a checkpoint covers their effects; a
      crashed site restarts from its last checkpoint and the unacked
      frontier is replayed into it, so recovery re-does only the work
      since the checkpoint, not the whole query;
    + rounds repeat until quiescence: every message acked, every inbox
      empty.

    The answers under {e any} fault plan provably equal centralized
    evaluation (property-tested against {!Ssd_automata.Product}); the
    interesting outputs are the cost-model numbers, which now price
    reliability — retransmissions, recovery work, makespan inflation —
    on top of distribution.

    A {!Ssd.Budget} bounds the run: on exhaustion the engine returns a
    [Partial] answer that is a subset of the complete one (answers only
    accumulate), rather than raising. *)

(** [site.(u)] is the site that owns node [u]. *)
type partition = int array

(** Hash-random partition into [k] sites (worst-case locality).
    @raise Ssd_diag.Fail with code [SSD540] if [k <= 0]. *)
val partition_random : seed:int -> k:int -> Ssd.Graph.t -> partition

(** Partition by contiguous BFS order (good locality — subtrees mostly
    stay on one site).
    @raise Ssd_diag.Fail with code [SSD540] if [k <= 0]. *)
val partition_bfs : k:int -> Ssd.Graph.t -> partition

type stats = {
  sites : int;
  cross_edges : int; (** edges with endpoints on different sites *)
  rounds : int; (** communication rounds until quiescence *)
  messages : int;
      (** distinct cross-site (node, state) activations shipped (first
          transmissions; per-sender deduplicated) *)
  retries : int; (** retransmissions of unacked messages *)
  dropped : int; (** transmissions lost (injected drops + down receivers) *)
  duplicated : int; (** duplicate deliveries injected *)
  crashes : int; (** site crash events *)
  recoveries : int; (** sites restarted from a checkpoint *)
  wasted_work : int;
      (** product pairs whose expansion was lost to a rollback, plus
          duplicate arrivals deduplicated on receipt *)
  checkpoints : int; (** checkpoints taken across all sites *)
  local_work : int array; (** product pairs expanded, per site *)
  makespan : int;
      (** Σ over rounds of the slowest site's work that round (slowdown
          factors applied) *)
  sequential_work : int; (** product pairs of the centralized run *)
}

val stats_to_json : stats -> Ssd.Json.t

(** [run ?plan ?budget g partition nfa] drives the state machine to
    quiescence (or budget exhaustion / the plan's round cap) and returns
    the accepting nodes (sorted) with the cost-model statistics.  The
    same [plan] replays the identical fault history: stats are
    reproducible run-to-run. *)
val run :
  ?plan:Ssd_fault.Plan.t ->
  ?budget:Ssd.Budget.t ->
  Ssd.Graph.t ->
  partition ->
  Ssd_automata.Nfa.t ->
  int list Ssd.Budget.outcome * stats

(** Fault-free, unbudgeted [run]; the answer is always complete. *)
val eval : Ssd.Graph.t -> partition -> Ssd_automata.Nfa.t -> int list * stats
