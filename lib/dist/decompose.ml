module Graph = Ssd.Graph
module Budget = Ssd.Budget
module Lpred = Ssd_automata.Lpred
module Nfa = Ssd_automata.Nfa
module Plan = Ssd_fault.Plan
module Injector = Ssd_fault.Injector
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

type partition = int array

let check_sites k =
  if k <= 0 then
    Ssd_diag.error ~code:"SSD540" "partition: site count must be positive (got %d)" k

let partition_random ~seed ~k g =
  check_sites k;
  Array.init (Graph.n_nodes g) (fun u -> Hashtbl.hash (seed, u) mod k)

let partition_bfs ~k g =
  check_sites k;
  let n = Graph.n_nodes g in
  let order = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let next = ref 0 in
  let visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      Queue.push u queue
    end
  in
  visit (Graph.root g);
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(u) <- !next;
    incr next;
    List.iter (fun (_, v) -> visit v) (Graph.succ g u)
  done;
  (* Unreachable nodes go to site 0; contiguous BFS ranks map to sites. *)
  let per_site = max 1 ((!next + k - 1) / k) in
  Array.map (fun rank -> if rank < 0 then 0 else min (k - 1) (rank / per_site)) order

type stats = {
  sites : int;
  cross_edges : int;
  rounds : int;
  messages : int;
  retries : int;
  dropped : int;
  duplicated : int;
  crashes : int;
  recoveries : int;
  wasted_work : int;
  checkpoints : int;
  local_work : int array;
  makespan : int;
  sequential_work : int;
}

let stats_to_json s =
  let module J = Ssd.Json in
  J.Obj
    [
      ("sites", J.Int s.sites);
      ("cross_edges", J.Int s.cross_edges);
      ("rounds", J.Int s.rounds);
      ("messages", J.Int s.messages);
      ("retries", J.Int s.retries);
      ("dropped", J.Int s.dropped);
      ("duplicated", J.Int s.duplicated);
      ("crashes", J.Int s.crashes);
      ("recoveries", J.Int s.recoveries);
      ("wasted_work", J.Int s.wasted_work);
      ("checkpoints", J.Int s.checkpoints);
      ("local_work", J.List (List.map (fun w -> J.Int w) (Array.to_list s.local_work)));
      ("makespan", J.Int s.makespan);
      ("sequential_work", J.Int s.sequential_work);
    ]

(* Execution counters (lib/obs), reported to [Metrics.default]. *)
let m_runs = Metrics.counter "dist.eval.runs"
let m_rounds = Metrics.counter "dist.eval.rounds"
let m_messages = Metrics.counter "dist.eval.messages"
let m_retries = Metrics.counter "dist.eval.retries"
let m_dropped = Metrics.counter "dist.eval.dropped"
let m_crashes = Metrics.counter "dist.eval.crashes"
let m_recoveries = Metrics.counter "dist.eval.recoveries"
let m_wasted = Metrics.counter "dist.eval.wasted_work"
let m_partial = Metrics.counter "dist.eval.partial_answers"
let t_eval = Metrics.timer "dist.eval.time"

(* ------------------------------------------------------------------ *)
(* The state machine                                                   *)
(* ------------------------------------------------------------------ *)

(* A cross-site activation in flight.  It lives in its sender's outbox
   (keyed by (dst, node, state) — per-sender dedup) until acknowledged;
   [next_send] drives backoff retransmission. *)
type msg = {
  src : int; (* n_sites = the coordinator injecting start activations *)
  dst : int;
  pair : int * int;
  origin : int; (* trace span id of the discovering activation; 0 = untraced *)
  mutable attempts : int;
  mutable next_send : int;
  mutable acked : bool;
}

(* Delivery key: (src, dst, node, state) — what an ack names. *)
type mkey = int * int * int * int

type site = {
  id : int;
  mutable seen : (int * int, unit) Hashtbl.t;
  mutable answers : (int, unit) Hashtbl.t;
  mutable outbox : (int * int * int, msg) Hashtbl.t;
  mutable inbox : (mkey * (int * int)) list;
  mutable deferred : (mkey * (int * int)) list; (* reordered: next round *)
  mutable pending_acks : (mkey, unit) Hashtbl.t; (* processed, not yet acked *)
  mutable ckpt_seen : (int * int, unit) Hashtbl.t;
  mutable ckpt_answers : (int, unit) Hashtbl.t;
  mutable ckpt_outbox : ((int * int * int) * msg) list;
  mutable down_until : int; (* up iff round >= down_until *)
}

let backoff_delay plan attempts =
  match plan.Plan.backoff with
  | Plan.Fixed d -> d
  | Plan.Exponential -> min plan.Plan.retry_cap (1 lsl min 30 (attempts - 1))

let run ?(plan = Plan.none) ?budget g partition nfa =
  Metrics.incr m_runs;
  Metrics.time t_eval @@ fun () ->
  Trace.with_span "dist.run" @@ fun () ->
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let n_sites = 1 + Array.fold_left max 0 partition in
  (* Lane 0 is the coordinator/round barrier; site s renders on lane s+1. *)
  if Trace.enabled () then
    for i = 0 to n_sites - 1 do
      Trace.name_lane (i + 1) (Printf.sprintf "site %d" i)
    done;
  let inj = Injector.create plan in
  let closures = Nfa.closures nfa in
  let cross_edges =
    Graph.fold_labeled_edges
      (fun acc u _ v -> if partition.(u) <> partition.(v) then acc + 1 else acc)
      0 g
  in
  let sites =
    Array.init n_sites (fun id ->
        {
          id;
          seen = Hashtbl.create 64;
          answers = Hashtbl.create 16;
          outbox = Hashtbl.create 32;
          inbox = [];
          deferred = [];
          pending_acks = Hashtbl.create 16;
          ckpt_seen = Hashtbl.create 64;
          ckpt_answers = Hashtbl.create 16;
          ckpt_outbox = [];
          down_until = 0;
        })
  in
  (* The coordinator is a virtual, crash-free site [n_sites] whose outbox
     holds the start activations — so even a root-site crash in round 1
     loses nothing: the unacked starts are simply retransmitted. *)
  let coordinator = Hashtbl.create 4 in
  let outbox_of s = if s = n_sites then coordinator else sites.(s).outbox in
  List.iter
    (fun q ->
      let dst = partition.(Graph.root g) in
      Hashtbl.replace coordinator
        (dst, Graph.root g, q)
        {
          src = n_sites;
          dst;
          pair = (Graph.root g, q);
          origin = Trace.current ();
          attempts = 0;
          next_send = 1;
          acked = false;
        })
    (Nfa.start_set nfa);
  let rounds = ref 0 in
  let messages = ref 0 in
  let retries = ref 0 in
  let dropped = ref 0 in
  let duplicated = ref 0 in
  let crashes = ref 0 in
  let recoveries = ref 0 in
  let wasted = ref 0 in
  let checkpoints = ref 0 in
  let local_work = Array.make n_sites 0 in
  let makespan = ref 0 in
  let unacked tbl = Hashtbl.fold (fun _ m acc -> acc || not m.acked) tbl false in
  let quiescent () =
    (not (unacked coordinator))
    && Array.for_all
         (fun s ->
           (not (unacked s.outbox))
           && s.inbox = [] && s.deferred = []
           && Hashtbl.length s.pending_acks = 0)
         sites
  in
  let r = ref 0 in
  let stop = ref false in
  while (not !stop) && not (quiescent ()) do
    incr r;
    if !r > plan.Plan.max_rounds then begin
      (* No quiescence within the round cap (e.g. drop:1.0): give up
         gracefully with whatever has been computed. *)
      Budget.exhaust budget Budget.Stalled;
      decr r;
      stop := true
    end
    else
      Trace.with_span "dist.round" ~attrs:[ ("round", Trace.Int !r) ]
      @@ fun () ->
      begin
      rounds := !r;
      (* 1. Site-level events: restarts complete, scheduled crashes fire.
         A crash rolls the site back to its last checkpoint; everything
         since is wasted work that retransmission will replay. *)
      Array.iter
        (fun s ->
          if s.down_until = !r then begin
            incr recoveries;
            if Trace.enabled () then
              Trace.instant "dist.recover" ~lane:(s.id + 1)
                ~attrs:[ ("site", Trace.Int s.id); ("round", Trace.Int !r) ]
          end;
          if !r >= s.down_until then
            match Injector.crash_at inj ~site:s.id ~round:!r with
            | None -> ()
            | Some c ->
              incr crashes;
              let rolled_back = Hashtbl.length s.seen - Hashtbl.length s.ckpt_seen in
              if Trace.enabled () then
                Trace.instant "dist.crash" ~lane:(s.id + 1)
                  ~attrs:
                    [
                      ("site", Trace.Int s.id);
                      ("round", Trace.Int !r);
                      ("down_for", Trace.Int c.Plan.down_for);
                      ("rolled_back", Trace.Int rolled_back);
                    ];
              wasted := !wasted + rolled_back;
              s.seen <- Hashtbl.copy s.ckpt_seen;
              s.answers <- Hashtbl.copy s.ckpt_answers;
              let ob = Hashtbl.create 32 in
              List.iter (fun (k, m) -> Hashtbl.replace ob k m) s.ckpt_outbox;
              s.outbox <- ob;
              s.inbox <- [];
              s.deferred <- [];
              s.pending_acks <- Hashtbl.create 16;
              s.down_until <- !r + c.Plan.down_for)
        sites;
      (* 2. Deliveries deferred by reorder faults arrive now. *)
      Array.iter
        (fun s ->
          s.inbox <- s.inbox @ s.deferred;
          s.deferred <- [])
        sites;
      (* 3. Transmission: every up sender ships its due unacked messages,
         in deterministic (site, key) order so the injector's draws
         replay.  Backoff reschedules the next attempt up front; an ack
         cancels it. *)
      for sender = 0 to n_sites do
        let sender_up = sender = n_sites || !r >= sites.(sender).down_until in
        if sender_up then begin
          let due =
            Hashtbl.fold
              (fun key m acc ->
                if (not m.acked) && m.next_send <= !r then (key, m) :: acc else acc)
              (outbox_of sender) []
            |> List.sort compare
          in
          List.iter
            (fun ((dst, u, q), m) ->
              let first = m.attempts = 0 in
              if first then begin
                if sender < n_sites then incr messages
              end
              else incr retries;
              m.attempts <- m.attempts + 1;
              m.next_send <- !r + backoff_delay plan m.attempts;
              let dsite = sites.(dst) in
              let key = (sender, dst, u, q) in
              (* Trace helpers: a send (or retransmission) is an instant
                 on the sender's lane, causally parented on the span that
                 discovered the activation; a successful delivery lands a
                 flow arrow on the receiver's lane. *)
              let sender_lane = if sender = n_sites then 0 else sender + 1 in
              let send_name = if first then "dist.send" else "dist.retransmit" in
              let base_attrs () =
                [
                  ("src", Trace.Int sender);
                  ("dst", Trace.Int dst);
                  ("node", Trace.Int u);
                  ("state", Trace.Int q);
                  ("attempt", Trace.Int m.attempts);
                ]
              in
              let trace_drop reason =
                if Trace.enabled () then begin
                  Trace.instant send_name ~lane:sender_lane ~parent:m.origin
                    ~attrs:(base_attrs ());
                  Trace.instant "dist.drop" ~lane:sender_lane ~parent:m.origin
                    ~attrs:(("reason", Trace.Str reason) :: base_attrs ())
                end
              in
              if !r < dsite.down_until then begin
                incr dropped;
                trace_drop "site_down"
              end
              else
                match Injector.transmit inj with
                | Injector.Lost ->
                  incr dropped;
                  trace_drop "lost"
                | Injector.Delivered { duplicated = dup; deferred = defer } ->
                  if defer then dsite.deferred <- (key, m.pair) :: dsite.deferred
                  else dsite.inbox <- (key, m.pair) :: dsite.inbox;
                  if dup then begin
                    incr duplicated;
                    dsite.inbox <- (key, m.pair) :: dsite.inbox
                  end;
                  if Trace.enabled () then begin
                    let f = Trace.new_flow () in
                    Trace.instant send_name ~lane:sender_lane ~parent:m.origin
                      ~flow:(f, false) ~attrs:(base_attrs ());
                    Trace.instant "dist.deliver" ~lane:(dst + 1) ~parent:m.origin
                      ~flow:(f, true)
                      ~attrs:(("deferred", Trace.Bool defer) :: base_attrs ());
                    if dup then
                      Trace.instant "dist.deliver.dup" ~lane:(dst + 1)
                        ~parent:m.origin ~attrs:(base_attrs ())
                  end)
            due
        end
      done;
      (* 4. Local expansion: each up site drains its inbox and runs BFS
         within its own nodes; discoveries owned elsewhere enter the
         outbox (per-sender dedup'd). *)
      let round_work = Array.make n_sites 0 in
      Array.iter
        (fun s ->
          if !r >= s.down_until && s.inbox <> [] then
            Trace.with_span "dist.site.expand" ~lane:(s.id + 1)
              ~attrs:[ ("site", Trace.Int s.id); ("round", Trace.Int !r) ]
            @@ fun () ->
            begin
            let arrivals = List.sort compare s.inbox in
            s.inbox <- [];
            let queue = Queue.create () in
            List.iter
              (fun (key, pair) ->
                if Hashtbl.mem s.seen pair then begin
                  (* Duplicate arrival: injected dup, retransmission
                     after an ack loss, or two senders discovering the
                     same pair.  Dedup; (re-)ack. *)
                  incr wasted;
                  Hashtbl.replace s.pending_acks key ()
                end
                else begin
                  Hashtbl.add s.seen pair ();
                  Hashtbl.replace s.pending_acks key ();
                  Queue.push pair queue
                end)
              arrivals;
            let continue = ref true in
            while !continue && not (Queue.is_empty queue) do
              if not (Budget.step budget) then begin
                continue := false;
                stop := true
              end
              else begin
                let u, q = Queue.pop queue in
                round_work.(s.id) <- round_work.(s.id) + 1;
                if nfa.Nfa.accept.(q) then Hashtbl.replace s.answers u ();
                if nfa.Nfa.trans.(q) <> [] then
                  List.iter
                    (fun (l, v) ->
                      List.iter
                        (fun (p, q') ->
                          if Lpred.matches p l then
                            List.iter
                              (fun q'' ->
                                if partition.(v) = s.id then begin
                                  if not (Hashtbl.mem s.seen (v, q'')) then begin
                                    Hashtbl.add s.seen (v, q'') ();
                                    Queue.push (v, q'') queue
                                  end
                                end
                                else
                                  let okey = (partition.(v), v, q'') in
                                  if not (Hashtbl.mem s.outbox okey) then
                                    Hashtbl.add s.outbox okey
                                      {
                                        src = s.id;
                                        dst = partition.(v);
                                        pair = (v, q'');
                                        origin = Trace.current ();
                                        attempts = 0;
                                        next_send = !r + 1;
                                        acked = false;
                                      })
                              closures.(q'))
                        nfa.Nfa.trans.(q))
                    (Graph.labeled_succ g u)
              end
            done
          end)
        sites;
      let worst = ref 0 in
      Array.iteri
        (fun i w ->
          local_work.(i) <- local_work.(i) + w;
          worst := max !worst (w * Injector.slowdown inj ~site:i))
        round_work;
      makespan := !makespan + !worst;
      (* 5. Checkpoint, then acknowledge.  A site only acks a delivery
         once a checkpoint covers its effects — so a crash can never
         orphan an acked-but-lost activation; everything a rollback
         forgets is still unacked somewhere and gets retransmitted. *)
      Array.iter
        (fun s ->
          if !r >= s.down_until then begin
            if !r mod plan.Plan.checkpoint_every = 0 then begin
              s.ckpt_seen <- Hashtbl.copy s.seen;
              s.ckpt_answers <- Hashtbl.copy s.answers;
              s.ckpt_outbox <- Hashtbl.fold (fun k m acc -> (k, m) :: acc) s.outbox [];
              incr checkpoints;
              if Trace.enabled () then
                Trace.instant "dist.checkpoint" ~lane:(s.id + 1)
                  ~attrs:
                    [
                      ("site", Trace.Int s.id);
                      ("round", Trace.Int !r);
                      ("seen", Trace.Int (Hashtbl.length s.seen));
                    ]
            end;
            let ready =
              Hashtbl.fold
                (fun ((_, _, u, q) as key) () acc ->
                  if Hashtbl.mem s.ckpt_seen (u, q) then key :: acc else acc)
                s.pending_acks []
              |> List.sort compare
            in
            List.iter
              (fun ((src, _, u, q) as key) ->
                if not (Injector.ack_lost inj) then begin
                  Hashtbl.remove s.pending_acks key;
                  match Hashtbl.find_opt (outbox_of src) (s.id, u, q) with
                  | Some m -> m.acked <- true
                  | None -> () (* sender rolled back; it will rediscover *)
                end)
              ready
          end)
        sites
    end
  done;
  (* Sequential baseline for the speedup column. *)
  let seq_seen = Hashtbl.create 1024 in
  let seq_queue = Queue.create () in
  let seq_push u q =
    if not (Hashtbl.mem seq_seen (u, q)) then begin
      Hashtbl.add seq_seen (u, q) ();
      Queue.push (u, q) seq_queue
    end
  in
  List.iter (seq_push (Graph.root g)) (Nfa.start_set nfa);
  while not (Queue.is_empty seq_queue) do
    let u, q = Queue.pop seq_queue in
    if nfa.Nfa.trans.(q) <> [] then
      List.iter
        (fun (l, v) ->
          List.iter
            (fun (p, q') -> if Lpred.matches p l then List.iter (seq_push v) closures.(q'))
            nfa.Nfa.trans.(q))
        (Graph.labeled_succ g u)
  done;
  let result =
    Array.fold_left
      (fun acc s -> Hashtbl.fold (fun u () acc -> u :: acc) s.answers acc)
      [] sites
    |> List.sort_uniq compare
  in
  Metrics.add m_rounds !rounds;
  Metrics.add m_messages !messages;
  Metrics.add m_retries !retries;
  Metrics.add m_dropped !dropped;
  Metrics.add m_crashes !crashes;
  Metrics.add m_recoveries !recoveries;
  Metrics.add m_wasted !wasted;
  (* Fault statistics as annotations on the dist.run span, mirroring the
     Metrics counters above so a trace file is self-describing. *)
  if Trace.enabled () then begin
    Trace.annotate "sites" (Trace.Int n_sites);
    Trace.annotate "rounds" (Trace.Int !rounds);
    Trace.annotate "messages" (Trace.Int !messages);
    Trace.annotate "retries" (Trace.Int !retries);
    Trace.annotate "dropped" (Trace.Int !dropped);
    Trace.annotate "duplicated" (Trace.Int !duplicated);
    Trace.annotate "crashes" (Trace.Int !crashes);
    Trace.annotate "recoveries" (Trace.Int !recoveries);
    Trace.annotate "wasted_work" (Trace.Int !wasted);
    Trace.annotate "checkpoints" (Trace.Int !checkpoints)
  end;
  if Budget.exhausted budget <> None then Metrics.incr m_partial;
  ( Budget.wrap budget result,
    {
      sites = n_sites;
      cross_edges;
      rounds = !rounds;
      messages = !messages;
      retries = !retries;
      dropped = !dropped;
      duplicated = !duplicated;
      crashes = !crashes;
      recoveries = !recoveries;
      wasted_work = !wasted;
      checkpoints = !checkpoints;
      local_work;
      makespan = !makespan;
      sequential_work = Hashtbl.length seq_seen;
    } )

let eval g partition nfa =
  match run g partition nfa with
  | Budget.Complete answers, stats | Budget.Partial (answers, _), stats -> (answers, stats)
