(* A fixed-size pool of worker domains with chunked work stealing off an
   Atomic cursor.  See pool.mli for the determinism contract.

   Synchronization is a classic generation-stamped barrier: the caller
   publishes a job under the mutex and bumps [generation]; workers wake,
   run the job (which internally drains the chunk cursor), decrement
   [unfinished] and go back to waiting for the next generation.  The
   caller participates in the job itself — a pool of [jobs = n] is n-1
   spawned domains plus the caller — then blocks until [unfinished]
   reaches zero.  The mutex hand-offs give the usual happens-before
   edges, so per-slot results written by workers are visible to the
   caller after the barrier without any per-slot synchronization. *)

let max_jobs = 64
let clamp_jobs n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

type t = {
  n_jobs : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable unfinished : int;
  mutable stop : bool;
  (* True while a region is active.  Read by nested map_range calls
     (possibly from a worker domain) to fall back to inline execution;
     set under the mutex before workers are woken, so workers always
     observe [true] while running a job. *)
  in_region : bool Atomic.t;
}

let rec worker_loop t last_gen =
  Mutex.lock t.m;
  while (not t.stop) && t.generation = last_gen do
    Condition.wait t.work_ready t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let gen = t.generation in
    let job = match t.job with Some f -> f | None -> assert false in
    Mutex.unlock t.m;
    (* Jobs built by this module never raise (exceptions are captured
       into the region's failure slot); the catch-all keeps a buggy job
       from killing the domain and deadlocking the barrier. *)
    (try job () with _ -> ());
    Mutex.lock t.m;
    t.unfinished <- t.unfinished - 1;
    if t.unfinished = 0 then Condition.signal t.work_done;
    Mutex.unlock t.m;
    worker_loop t gen
  end

let create ~jobs =
  let n_jobs = clamp_jobs jobs in
  let t =
    {
      n_jobs;
      workers = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      unfinished = 0;
      stop = false;
      in_region = Atomic.make false;
    }
  in
  t.workers <- Array.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let jobs t = t.n_jobs

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.workers <- [||];
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work_ready
  end;
  Mutex.unlock t.m;
  Array.iter Domain.join ws

(* Run [job] on every pool member (workers + caller); return when all
   are done.  [job] must not raise. *)
let run t job =
  Mutex.lock t.m;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  t.unfinished <- Array.length t.workers;
  Atomic.set t.in_region true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  (try job () with _ -> ());
  Mutex.lock t.m;
  while t.unfinished > 0 do
    Condition.wait t.work_done t.m
  done;
  t.job <- None;
  Atomic.set t.in_region false;
  Mutex.unlock t.m

(* ------------------------------------------------------------------ *)
(* Task pool: async submission for request-level concurrency           *)
(* ------------------------------------------------------------------ *)

(* The region pool above is a barrier: one caller, everyone works on one
   job, caller blocks.  The query server needs the opposite shape — many
   independent long-lived tasks (one per connection) running
   concurrently while the submitter keeps accepting.  A task pool is a
   plain work queue drained by dedicated domains; tasks are expected to
   block (socket reads), which worker domains tolerate and region
   workers must not. *)

type task_pool = {
  mutable tp_workers : unit Domain.t array;
  tp_m : Mutex.t;
  tp_nonempty : Condition.t;
  tp_queue : (unit -> unit) Queue.t;
  mutable tp_stop : bool;
}

let rec task_worker_loop tp =
  Mutex.lock tp.tp_m;
  while (not tp.tp_stop) && Queue.is_empty tp.tp_queue do
    Condition.wait tp.tp_nonempty tp.tp_m
  done;
  if tp.tp_stop then Mutex.unlock tp.tp_m
  else begin
    let task = Queue.pop tp.tp_queue in
    Mutex.unlock tp.tp_m;
    (* A raising task must not kill its domain: the pool would silently
       lose capacity and task_shutdown would still join fine, masking
       the bug.  Swallow; tasks report their own failures. *)
    (try task () with _ -> ());
    task_worker_loop tp
  end

let task_pool ~workers =
  let workers = clamp_jobs workers in
  let tp =
    {
      tp_workers = [||];
      tp_m = Mutex.create ();
      tp_nonempty = Condition.create ();
      tp_queue = Queue.create ();
      tp_stop = false;
    }
  in
  tp.tp_workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> task_worker_loop tp));
  tp

let task_workers tp = Array.length tp.tp_workers

let submit tp task =
  Mutex.lock tp.tp_m;
  let accepted = not tp.tp_stop in
  if accepted then begin
    Queue.push task tp.tp_queue;
    Condition.signal tp.tp_nonempty
  end;
  Mutex.unlock tp.tp_m;
  accepted

let task_pending tp =
  Mutex.lock tp.tp_m;
  let n = Queue.length tp.tp_queue in
  Mutex.unlock tp.tp_m;
  n

let task_shutdown tp =
  Mutex.lock tp.tp_m;
  let fresh = not tp.tp_stop in
  tp.tp_stop <- true;
  Condition.broadcast tp.tp_nonempty;
  Mutex.unlock tp.tp_m;
  if fresh then Array.iter Domain.join tp.tp_workers

(* ------------------------------------------------------------------ *)
(* Shared pool                                                         *)
(* ------------------------------------------------------------------ *)

let default_jobs_cell = Atomic.make 1
let set_default_jobs n = Atomic.set default_jobs_cell (clamp_jobs n)
let default_jobs () = Atomic.get default_jobs_cell

let shared : t option ref = ref None

let shared_pool () =
  let want = default_jobs () in
  match !shared with
  | Some p when p.n_jobs = want && not p.stop -> p
  | prev ->
    Option.iter shutdown prev;
    let p = create ~jobs:want in
    shared := Some p;
    p

let () = at_exit (fun () -> Option.iter shutdown !shared)

(* ------------------------------------------------------------------ *)
(* Parallel regions                                                    *)
(* ------------------------------------------------------------------ *)

(* Sequential fallback: [f] applied in ascending index order. *)
let seq_init n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

(* The pool to use for a region of size [n], or None for inline. *)
let effective_pool pool =
  let p =
    match pool with
    | Some p -> Some p
    | None -> if default_jobs () > 1 then Some (shared_pool ()) else None
  in
  match p with
  | Some p when p.n_jobs > 1 && (not p.stop) && not (Atomic.get p.in_region) -> Some p
  | _ -> None

let map_range ?pool ?(min_par = 32) n f =
  if n = 0 then [||]
  else if n < min_par then seq_init n f
  else
    match effective_pool pool with
    | None -> seq_init n f
    | Some p ->
      let slots = Array.make n None in
      let chunk = max 1 (1 + ((n - 1) / (4 * p.n_jobs))) in
      let n_chunks = 1 + ((n - 1) / chunk) in
      let cursor = Atomic.make 0 in
      let failed = Atomic.make None in
      let body () =
        let continue = ref true in
        while !continue do
          let k = Atomic.fetch_and_add cursor 1 in
          if k >= n_chunks || Atomic.get failed <> None then continue := false
          else begin
            let lo = k * chunk in
            let hi = min n (lo + chunk) in
            try
              for i = lo to hi - 1 do
                slots.(i) <- Some (f i)
              done
            with e -> ignore (Atomic.compare_and_set failed None (Some e))
          end
        done
      in
      run p body;
      (match Atomic.get failed with Some e -> raise e | None -> ());
      Array.map (function Some v -> v | None -> assert false) slots

let parallel_map ?pool f arr = map_range ?pool (Array.length arr) (fun i -> f arr.(i))

let fold_chunks ?pool ~n ~chunk ~combine init =
  if n = 0 then init
  else begin
    let jobs =
      match effective_pool pool with Some p -> p.n_jobs | None -> 1
    in
    if jobs = 1 || n < 32 then combine init (chunk 0 n)
    else begin
      let csize = max 1 (1 + ((n - 1) / (4 * jobs))) in
      let n_chunks = 1 + ((n - 1) / csize) in
      let parts =
        map_range ?pool ~min_par:2 n_chunks (fun k ->
            chunk (k * csize) (min n ((k + 1) * csize)))
      in
      Array.fold_left combine init parts
    end
  end

let parallel_fold ?pool ~map ~combine ~init arr =
  let mapped = parallel_map ?pool map arr in
  Array.fold_left combine init mapped
