(** Fixed-size domain pool for deterministic data-parallel evaluation.

    The evaluators in this codebase are single-threaded by construction;
    this module is the one place that knows about OCaml 5 domains.  A
    pool spawns [jobs - 1] worker domains once and reuses them for every
    parallel region (the calling domain is the remaining member, so
    [jobs = 1] spawns nothing and runs inline).  Work is distributed by
    chunk: a parallel region splits an index range into contiguous
    chunks, workers claim chunks from a shared {!Atomic} cursor, and
    each chunk's result lands in its own slot.

    {2 Determinism contract}

    Parallelism must never be observable in results: [--jobs N] changes
    wall-clock only.  The pool guarantees its part of that contract by
    construction —

    - {!map_range} and {!parallel_map} return element [i]'s result in
      slot [i], so the output is independent of which worker computed
      what and in which order;
    - {!fold_chunks} and {!parallel_fold} combine per-chunk results
      {e on the calling domain, in ascending chunk order}, never in
      completion order.

    Callers supply the other half: worker functions must be pure with
    respect to shared state (read-only graph/store access, no writes
    except {!Atomic} counters whose final value is order-independent).
    Chunk {e boundaries} depend on the pool size, so a [fold_chunks]
    combine must also be chunking-invariant: merging two adjacent
    chunks' results must equal the result of the merged chunk.  All
    in-tree uses (index construction, frontier expansion) satisfy this.

    {2 Exceptions and exhaustion}

    A worker function that raises does not kill its domain: the first
    exception (in completion order) is captured, the region drains, and
    the exception is re-raised on the calling domain.  Workers park on a
    condition variable between regions; {!shutdown} joins them, so pools
    never leak domains. *)

type t

(** [create ~jobs] spawns a pool of [jobs - 1] worker domains ([jobs] is
    clamped to [1 .. 64]).  The pool is ready immediately; workers idle
    on a condition variable until the first parallel region. *)
val create : jobs:int -> t

(** Total parallelism of the pool, including the calling domain. *)
val jobs : t -> int

(** Stop and join every worker domain.  Idempotent.  Must not be called
    from inside a parallel region. *)
val shutdown : t -> unit

(** {2 Task pools}

    The region entry points below are a barrier: one caller, all pool
    members cooperate on one job, the caller blocks until it finishes.
    The query server ({!Ssd_serve}) needs the opposite shape — many
    independent, possibly blocking tasks (one per client connection)
    running concurrently while the submitter keeps accepting new work.
    A task pool is a mutex/condition work queue drained by [workers]
    dedicated domains.  Unlike region workers, task-pool workers may
    block (socket reads); unlike regions, nothing is deterministic about
    task interleaving — determinism is the {e handler's} contract, not
    the pool's. *)

type task_pool

(** [task_pool ~workers] spawns [workers] domains (clamped to 1..64)
    that drain the queue until {!task_shutdown}. *)
val task_pool : workers:int -> task_pool

val task_workers : task_pool -> int

(** Enqueue a task; returns [false] (task dropped) after
    {!task_shutdown}.  A raising task is swallowed — it must report its
    own failures — and never kills its worker domain. *)
val submit : task_pool -> (unit -> unit) -> bool

(** Tasks submitted but not yet started. *)
val task_pending : task_pool -> int

(** Stop accepting tasks, drop the not-yet-started backlog, and join
    every worker after its current task finishes.  Idempotent.  Tasks
    that block forever will block shutdown: the caller must first
    interrupt them (the server shuts down its sockets). *)
val task_shutdown : task_pool -> unit

(** {2 The shared pool}

    Library code does not thread a pool through every call chain;
    instead the CLI sets a process-wide job count and evaluators use the
    shared pool implicitly.  With the default of [1], every parallel
    entry point below runs inline on the calling domain — zero domains,
    zero overhead, byte-identical to the pre-parallel code. *)

(** Set the process-wide job count (the [--jobs] flag).  The shared pool
    is (re)created lazily at the next parallel region.  Call from the
    main domain only. *)
val set_default_jobs : int -> unit

val default_jobs : unit -> int

(** {2 Parallel regions}

    All entry points run inline (sequentially, on the calling domain)
    when the effective pool has [jobs = 1], when the input is smaller
    than [min_par], or when called from inside an active region (nested
    regions do not deadlock; they serialize). *)

(** [map_range ?pool ?min_par n f] is [[| f 0; ...; f (n-1) |]], with
    [f] applied across the pool.  [f] is called exactly once per index
    (ascending within a chunk).  Default [min_par] is 32. *)
val map_range : ?pool:t -> ?min_par:int -> int -> (int -> 'a) -> 'a array

(** [parallel_map ?pool f arr] is [Array.map f arr] across the pool. *)
val parallel_map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array

(** [fold_chunks ?pool ~n ~chunk ~combine init] splits [0 .. n-1] into
    contiguous chunks, computes [chunk lo hi] (half-open) for each in
    parallel, and folds the results with [combine] in ascending chunk
    order on the calling domain.  The sequential case is exactly
    [combine init (chunk 0 n)]. *)
val fold_chunks :
  ?pool:t ->
  n:int ->
  chunk:(int -> int -> 'a) ->
  combine:('acc -> 'a -> 'acc) ->
  'acc ->
  'acc

(** [parallel_fold ?pool ~map ~combine ~init arr] maps each element in
    parallel and folds the mapped values with [combine] in element order
    on the calling domain. *)
val parallel_fold :
  ?pool:t -> map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc
