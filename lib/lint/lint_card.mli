(** Static cardinality and cost analysis over the cardinality-annotated
    DataGuide ({!Ssd_schema.Annotated}) — the abstract interpreter
    behind the SSD25x diagnostics, [ssdql check --cost] and
    [ssdql explain].

    Queries are evaluated abstractly: UnQL generators and Lorel ranges
    walk guide frontiers carrying per-(environment, node) counts, and
    datalog rule bodies are costed against extensional relation sizes.
    Estimates are {e upper bounds} for recursion-free queries (where
    conditions are treated as selectivity 1), which the qcheck property
    in [test/test_lint.ml] checks against actual evaluation.

    Diagnostics emitted:
    - SSD250 — the result is statically empty (estimate 0);
    - SSD251 — a select/query always yields at most one binding (note);
    - SSD252 — the syntactic conjunct order is at least 4x more
      expensive than the planner's order (a cross product);
    - SSD253 — a recursive path ranges over a cyclic region, so
      traversal is unbounded under a step budget;
    - SSD254 — the inferred result schema is not subsumed by a declared
      {!Ssd_schema.Gschema} (checked by {!Ssd.Simulation.maximal};
      unknown subresults are under-approximated as leaves, so there are
      no false positives). *)

(** One operator's estimate: a generator (UnQL), a range (Lorel) or a
    rule (datalog). *)
type op_est = {
  op_text : string; (** the operator, printed *)
  op_est : float option; (** estimated bindings; [None] if unboundable *)
  op_access : string option;
      (** chosen access path ({!Unql.Optimize.access_path}), UnQL only *)
  op_unbounded : bool; (** SSD253 condition holds for this operator *)
}

type t = {
  diags : Ssd_diag.t list;
  ops : op_est list;
  est_total : float option; (** estimated result cardinality *)
  cost_syntax : float; (** cost of the syntactic conjunct order *)
  cost_planned : float; (** cost of the planner's order *)
}

(** [check_unql ann ?declared q] — per-select estimates from
    {!Unql.Optimize.plan_expr}; with [declared], the result schema
    inferred over the guide is checked for subsumption (SSD254). *)
val check_unql :
  Ssd_schema.Annotated.t -> ?declared:Ssd_schema.Gschema.t -> Unql.Ast.expr -> t

(** [check_lorel ann q] — per-range estimates from
    {!Lorel.Optimize.plan}; [est_total] is the product over ranges (the
    number of result rows is bounded by the cartesian product). *)
val check_lorel : Ssd_schema.Annotated.t -> Lorel.Ast.query -> t

(** [check_datalog ann program] — rule bodies costed against the triple
    encoding's relation sizes ([edge] = edge count, [root] = 1); fires
    SSD250 for a body reading an empty relation and SSD252 for join
    orders the greedy planner ({!Relstore.Datalog.reorder}) beats 4x. *)
val check_datalog : Ssd_schema.Annotated.t -> Relstore.Datalog.program -> t
