(** Schema-aware static analysis for the three query languages.

    The analyzer runs before evaluation and reports {!Ssd_diag.t}
    diagnostics with stable [SSDxxx] codes (see {!Ssd_diag.codes}):

    - {e path satisfiability} (SSD10x): each regular path expression in a
      query is compiled to an NFA and intersected with a summary of the
      database — a strong DataGuide or a graph schema; an empty product
      means no data path can ever match, so the generator is dead;
    - {e datalog safety} (SSD2xx): range restriction, negation through
      recursion, unknown predicates, inconsistent arities;
    - {e hygiene} (SSD3xx / SSD40x): unused and shadowed binders, unbound
      variables, marker discipline, and the structural-recursion
      restrictions the evaluator enforces at runtime.

    The hygiene errors over-approximate the evaluators' typed failures:
    a query that lints with zero [Error]-severity diagnostics does not
    raise at evaluation time (property-tested in [test/test_lint.ml]). *)

module Diag = Ssd_diag

(** The per-language analyses, exposed for direct AST-level use. *)
module Unql_lint = Lint_unql

module Lorel_lint = Lint_lorel
module Datalog_lint = Lint_datalog

(** What path expressions are checked against. *)
type target = Lint_unql.target =
  | Guide of Ssd_schema.Dataguide.t
  | Schema of Ssd_schema.Gschema.t

type lang =
  | Unql
  | Lorel
  | Datalog

val lang_name : lang -> string

type report = {
  lang : lang;
  diags : Diag.t list;
  paths_checked : int; (** generators / path expressions traced *)
  dead_paths : int; (** of which provably unsatisfiable *)
  reachable_labels : Ssd.Label.t list;
      (** labels the live products can cross — the statically reachable
          label set {!Unql.Optimize}-style pruning may keep *)
  fingerprint : int option;
      (** {!Unql.Cache.query_fingerprint} of the parsed query (UnQL only),
          so a following cache lookup reuses the lint pass's parse *)
}

val errors : report -> int
val warnings : report -> int

(** [check_src ~lang ?db ?target ?defined src] parses and analyzes [src].
    Parse errors become a single SSD001/SSD002/SSD003 diagnostic rather
    than an exception.  When [target] is absent but [db] is given, a
    DataGuide is built from [db] ([Datalog] needs neither; its extensional
    predicates default to the triple encoding).  [defined] pre-binds tree
    variables — pass {!Unql.Views.names} to lint a query meant to run
    under a view registry.  Updates the [lint.*] counters in
    {!Ssd_obs.Metrics.default}. *)
val check_src :
  lang:lang ->
  ?db:Ssd.Graph.t ->
  ?target:target ->
  ?defined:string list ->
  string ->
  report

(** The cardinality / cost analyzer ({!Lint_card}), exposed for direct
    AST-level use. *)
module Card = Lint_card

(** [check_cost ~lang ~annotated ?declared src] parses [src] and runs the
    cardinality/cost analysis of {!Lint_card} over the annotated
    DataGuide — the engine behind [ssdql check --cost] and
    [ssdql explain].  Parse errors become a single SSD001/002/003
    diagnostic in the result.  [declared] (UnQL only) additionally
    checks the inferred result schema for subsumption (SSD254). *)
val check_cost :
  lang:lang ->
  annotated:Ssd_schema.Annotated.t ->
  ?declared:Ssd_schema.Gschema.t ->
  string ->
  Lint_card.t

(** Marker discipline of an UnCAL value: SSD311 for an output marker with
    no matching input, SSD312 for a non-[&] input never used as an
    output. *)
val check_uncal : Unql.Uncal.t -> Diag.t list

(** [prune target q] replaces every select with a provably dead generator
    by [{}]; returns the rewritten query and the number of selects
    removed.  Sound: a dead generator admits no bindings, so its select
    contributes nothing.  Subsumes guide-based literal-path pruning and
    additionally handles regex and predicate steps. *)
val prune : target -> Unql.Ast.expr -> Unql.Ast.expr * int
