(** Diagnostics core shared by the static analyzer ({!Lint}) and the
    language runtimes.

    A diagnostic is a stable error code ([SSD001]...), a severity, an
    optional source span and a message.  The analyzers in [lib/lint]
    return lists of these; the runtimes (UnQL / Lorel / datalog
    evaluation, the relational store) raise {!Fail} carrying one, so
    every failure mode in the query stack has a grep-able code.

    Codes are grouped by hundreds:
    - [SSD00x] — syntax errors
    - [SSD1xx] — path satisfiability (dead / partially dead paths)
    - [SSD2xx] — datalog safety and stratification
    - [SSD3xx] — UnQL / UnCAL hygiene (binders, markers, recursion)
    - [SSD4xx] — Lorel-specific checks
    - [SSD5xx] — runtime / storage errors with no static counterpart *)

type severity =
  | Error
  | Warning
  | Note

(** A half-open source region, 1-based lines and columns.  [text] is the
    source slice, kept for rendering context. *)
type span = {
  line : int;
  col : int;
  stop_line : int;
  stop_col : int;
  text : string;
}

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
}

(** The typed error the language layers raise instead of
    [failwith]/[invalid_arg]: it carries the full diagnostic, so callers
    can match on [diag.code].  A printer is registered, so an uncaught
    [Fail] renders like [error[SSD520] ...]. *)
exception Fail of t

(** {1 Construction} *)

val make : ?span:span -> severity -> code:string -> string -> t

(** [error ~code fmt ...] raises {!Fail} with severity [Error]. *)
val error : ?span:span -> code:string -> ('a, unit, string, 'b) format4 -> 'a

(** [span_of_offsets src start stop] converts byte offsets into a
    line/column span (used by the parsers, which track offsets). *)
val span_of_offsets : string -> int -> int -> span

(** {1 Rendering} *)

val severity_to_string : severity -> string

(** [error[SSD101] 2:14-2:25: message  (near "entry.movie")] *)
val to_string : t -> string

val to_json : t -> string

(** Render a report: one line per diagnostic, sorted by severity then
    position, followed by a ["N errors, M warnings"] summary line. *)
val render : t list -> string

val render_json : t list -> string

(** Severity-major, then position order. *)
val sort : t list -> t list

val count : severity -> t list -> int

(** {1 The code registry}

    Every stable code with its default severity and a one-line
    description — the table behind [ssdql check --codes] and the README
    section. *)
val codes : (string * severity * string) list

val describe : string -> string option
