(* Static analysis of Lorel queries: range-variable hygiene (SSD40x)
   and path satisfiability against a DataGuide or schema (SSD402).

   Lorel's from-clause binds range variables left to right; every path
   starts either at [DB] or at a previously bound variable.  We thread
   a frontier of summary nodes through each path's components and warn
   when it empties — the same product-emptiness argument as for UnQL
   generators, with [%] = any one edge and [#] = (any edge)*. *)

module A = Lorel.Ast
module P = Lorel.Parser
module Diag = Ssd_diag
module Regex = Ssd_automata.Regex
module Lpred = Ssd_automata.Lpred
module Nfa = Ssd_automata.Nfa
module Product = Ssd_automata.Product
module Dataguide = Ssd_schema.Dataguide
module Gschema = Ssd_schema.Gschema
module SMap = Map.Make (String)

type report = {
  diags : Diag.t list;
  paths_checked : int;
  dead_paths : int;
}

let component_regex = function
  | A.Clabel l -> Regex.Atom (Lpred.Exact l)
  | A.Cany -> Regex.Atom Lpred.Any
  | A.Cpath -> Regex.Star (Regex.Atom Lpred.Any)

let advance target frontier re =
  match target with
  | Lint_unql.Guide g ->
    fst (Product.reach (Dataguide.graph g) (Nfa.of_regex re) ~starts:frontier)
  | Lint_unql.Schema s -> (
    match re with
    | Regex.Atom p -> Gschema.step s frontier p
    | re -> Lint_unql.schema_reach s (Nfa.of_regex re) ~starts:frontier)

type st = {
  mutable diags : Diag.t list;
  marks : (P.mark_kind * int * int) array;
  msrc : string;
  mutable next_mark : int;
  mutable marks_ok : bool;
  target : Lint_unql.target option;
  mutable paths_checked : int;
  mutable dead_paths : int;
}

let diag st ?span sev ~code fmt =
  Printf.ksprintf
    (fun msg -> st.diags <- Diag.make ?span sev ~code msg :: st.diags)
    fmt

let take_mark st kind =
  if (not st.marks_ok) || st.next_mark >= Array.length st.marks then None
  else begin
    let k, a, b = st.marks.(st.next_mark) in
    if k = kind then begin
      st.next_mark <- st.next_mark + 1;
      Some (Diag.span_of_offsets st.msrc a b)
    end
    else begin
      st.marks_ok <- false;
      None
    end
  end

(* Check one path under [env] (var -> frontier option).  Returns the
   frontier its end reaches, [None] when unknown or dead. *)
let check_path st env path =
  let span = take_mark st P.Mpath in
  let start =
    match path.A.start with
    | None -> (
      match st.target with
      | Some t -> Some (Lint_unql.start_frontier t)
      | None -> None)
    | Some x -> (
      match SMap.find_opt x env with
      | Some frontier -> frontier
      | None ->
        diag st ?span Diag.Error ~code:"SSD401" "unbound range variable %s" x;
        None)
  in
  match start, st.target with
  | Some frontier, Some target ->
    st.paths_checked <- st.paths_checked + 1;
    let rec go frontier = function
      | [] -> Some frontier
      | comp :: rest -> (
        match advance target frontier (component_regex comp) with
        | [] ->
          st.dead_paths <- st.dead_paths + 1;
          diag st ?span Diag.Warning ~code:"SSD402"
            "dead path: no database path matches this expression (product with the %s \
             is empty)"
            (match target with Lint_unql.Guide _ -> "DataGuide" | Schema _ -> "schema");
          None
        | next -> go next rest)
    in
    go frontier path.A.comps
  | _ -> None

let check_operand st env = function
  | A.Opath p -> ignore (check_path st env p)
  | A.Olit _ -> ()

let rec check_cond st env = function
  | A.Cmp (_, a, b) ->
    check_operand st env a;
    check_operand st env b
  | A.Exists p -> ignore (check_path st env p)
  | A.And (a, b) | A.Or (a, b) ->
    check_cond st env a;
    check_cond st env b
  | A.Not c -> check_cond st env c

let check ?target ?marks (q : A.query) =
  let marks_arr, msrc =
    match marks with
    | Some m -> (m.P.items, m.P.msrc)
    | None -> ([||], "")
  in
  let st =
    {
      diags = [];
      marks = marks_arr;
      msrc;
      next_mark = 0;
      marks_ok = Array.length marks_arr > 0;
      target;
      paths_checked = 0;
      dead_paths = 0;
    }
  in
  (* The full from-clause environment, for checking select items (they
     are parsed — and marked — before the from clause, but evaluated
     under its bindings).  Frontiers here are computed without marks or
     diagnostics; the real walk below re-checks each range in order. *)
  let full_env =
    List.fold_left
      (fun env (path, var) ->
        let frontier =
          match path.A.start, st.target with
          | None, Some t ->
            let rec go frontier = function
              | [] -> Some frontier
              | comp :: rest -> (
                match advance t frontier (component_regex comp) with
                | [] -> None
                | next -> go next rest)
            in
            go (Lint_unql.start_frontier t) path.A.comps
          | Some x, _ -> Option.join (SMap.find_opt x env)
          | None, None -> None
        in
        SMap.add var frontier env)
      SMap.empty q.A.from
  in
  (* Walk in parse order: select items, from ranges, where. *)
  List.iter (fun item -> ignore (check_path st full_env item.A.item)) q.A.select;
  let env =
    List.fold_left
      (fun env (path, var) ->
        let frontier = check_path st env path in
        let var_span = take_mark st P.Mvar in
        if SMap.mem var env then
          diag st ?span:var_span Diag.Warning ~code:"SSD403"
            "range variable %s is bound twice in the from clause" var;
        SMap.add var frontier env)
      SMap.empty q.A.from
  in
  Option.iter (check_cond st env) q.A.where;
  {
    diags = Diag.sort (List.rev st.diags);
    paths_checked = st.paths_checked;
    dead_paths = st.dead_paths;
  }
