(* Static analysis of UnQL queries: binder hygiene (SSD30x) and path
   satisfiability against a DataGuide or graph schema (SSD10x).

   Hygiene is an abstract interpretation of the evaluator's environment
   discipline: we track, per name, whether it is tree-bound or
   label-bound, and flag exactly the situations in which {!Unql.Eval}
   would raise — so a query with zero lint errors cannot reach any of
   the evaluator's typed failures (property-tested).

   Path satisfiability follows Buneman §4 / the RPQ-emptiness view of
   Angles et al.: each generator anchored at [DB] is a concatenation of
   one-step (or regex) automata; we advance a frontier of summary nodes
   (DataGuide nodes, or schema nodes under predicate compatibility)
   through the product and report the step at which the frontier — and
   with it the product automaton — becomes empty. *)

module A = Unql.Ast
module P = Unql.Parser
module Diag = Ssd_diag
module Graph = Ssd.Graph
module Label = Ssd.Label
module Regex = Ssd_automata.Regex
module Lpred = Ssd_automata.Lpred
module Nfa = Ssd_automata.Nfa
module Product = Ssd_automata.Product
module Dataguide = Ssd_schema.Dataguide
module Gschema = Ssd_schema.Gschema
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type target =
  | Guide of Dataguide.t
  | Schema of Gschema.t

type report = {
  diags : Diag.t list;
  paths_checked : int;
  dead_paths : int;
  reachable_labels : Label.t list;
}

(* ------------------------------------------------------------------ *)
(* Walker state                                                        *)
(* ------------------------------------------------------------------ *)

type kind =
  | Tree
  | Lab

type env = {
  vars : kind SMap.t;
  funs : SSet.t;
}

type st = {
  mutable diags : Diag.t list;
  marks : (P.mark_kind * int * int) array;
  msrc : string;
  mutable next_mark : int;
  mutable marks_ok : bool;
  target : target option;
  cyclic : bool; (* is the database known to be cyclic? gates SSD310 *)
  mutable paths_checked : int;
  mutable dead_paths : int;
  mutable labels : Label.t list;
}

let push st d = st.diags <- d :: st.diags

let diag st ?span sev ~code fmt =
  Printf.ksprintf (fun msg -> push st (Diag.make ?span sev ~code msg)) fmt

(* Marks were recorded in parse order; the walker visits pattern steps
   and binders in the same order, so each occurrence pops the next mark.
   A kind mismatch means the two orders diverged (defensive: should not
   happen) — spans are disabled rather than misattributed. *)
let take_mark st kind =
  if (not st.marks_ok) || st.next_mark >= Array.length st.marks then None
  else begin
    let k, a, b = st.marks.(st.next_mark) in
    if k = kind then begin
      st.next_mark <- st.next_mark + 1;
      Some (Diag.span_of_offsets st.msrc a b)
    end
    else begin
      st.marks_ok <- false;
      None
    end
  end

let underscored x = String.length x > 0 && x.[0] = '_'

(* ------------------------------------------------------------------ *)
(* Use/bind counting (for SSD301 unused binders)                       *)
(* ------------------------------------------------------------------ *)

let bump tbl x = Hashtbl.replace tbl x (1 + Option.value ~default:0 (Hashtbl.find_opt tbl x))

let get tbl x = Option.value ~default:0 (Hashtbl.find_opt tbl x)

(* References and binder occurrences inside one select (recursively,
   nested scopes included — over-approximating "used", so a warning is
   only issued for a name no occurrence could possibly refer to). *)
let use_counts e =
  let uses = Hashtbl.create 16 and binds = Hashtbl.create 16 in
  let label_use = function
    | A.Lname x -> bump uses x
    | A.Llit _ -> ()
  in
  let atom_use = function
    | A.Aname x -> bump uses x
    | A.Alit _ -> ()
  in
  let rec expr = function
    | A.Empty | A.Db -> ()
    | A.Var x -> bump uses x
    | A.Tree es ->
      List.iter
        (fun (le, e) ->
          label_use le;
          expr e)
        es
    | A.Union (a, b) ->
      expr a;
      expr b
    | A.Select (h, cls) ->
      expr h;
      List.iter clause cls
    | A.If (c, a, b) ->
      cond c;
      expr a;
      expr b
    | A.Let (x, a, b) ->
      bump binds x;
      expr a;
      expr b
    | A.Letsfun (d, e) ->
      List.iter case d.A.cases;
      expr e
    | A.App (_, a) -> expr a
  and clause = function
    | A.Gen (p, e) ->
      pat p;
      expr e
    | A.Where c -> cond c
  and pat = function
    | A.Pbind x -> bump binds x
    | A.Pany -> ()
    | A.Pedges es ->
      List.iter
        (fun (steps, sub) ->
          List.iter step steps;
          pat sub)
        es
  and step = function
    | A.Slit le -> label_use le
    | A.Sbind x -> bump binds x
    | A.Spred _ -> ()
    | A.Sregex (_, Some p) -> bump binds p
    | A.Sregex (_, None) -> ()
  and case c =
    (match c.A.cstep with
     | A.Sbind x -> bump binds x
     | _ -> ());
    expr c.A.cbody
  and cond = function
    | A.Ccmp (_, a, b) ->
      atom_use a;
      atom_use b
    | A.Cistype (_, a) | A.Cstarts (a, _) | A.Ccontains (a, _) -> atom_use a
    | A.Cempty e -> expr e
    | A.Cequal (a, b) ->
      expr a;
      expr b
    | A.Cnot c -> cond c
    | A.Cand (a, b) | A.Cor (a, b) ->
      cond a;
      cond b
  in
  expr e;
  (uses, binds)

(* ------------------------------------------------------------------ *)
(* Frontier stepping (path satisfiability)                             *)
(* ------------------------------------------------------------------ *)

(* The regex a step denotes for the product, under the current binding
   kinds: a bare name is an exact symbol unless it is (or may be) a
   label variable, in which case its value is unknown — Any keeps the
   check sound. *)
let step_regex env = function
  | A.Slit (A.Llit l) -> Regex.Atom (Lpred.Exact l)
  | A.Slit (A.Lname x) -> (
    match SMap.find_opt x env.vars with
    | Some Lab -> Regex.Atom Lpred.Any
    | Some Tree | None -> Regex.Atom (Lpred.Exact (Label.Sym x)))
  | A.Sbind _ -> Regex.Atom Lpred.Any
  | A.Spred p -> Regex.Atom p
  | A.Sregex (r, _) -> r

(* Query-NFA × schema product, transitions gated by predicate
   compatibility (both sides are predicates). *)
let schema_reach sch nfa ~starts =
  let closures = Nfa.closures nfa in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push u q =
    if not (Hashtbl.mem seen (u, q)) then begin
      Hashtbl.add seen (u, q) ();
      Queue.push (u, q) queue
    end
  in
  List.iter (fun u -> List.iter (push u) (Nfa.start_set nfa)) starts;
  while not (Queue.is_empty queue) do
    let u, q = Queue.pop queue in
    List.iter
      (fun (pq, q') ->
        List.iter
          (fun (pe, v) ->
            if Lpred.compatible pq pe then List.iter (push v) closures.(q'))
          (Gschema.succ sch u))
      nfa.Nfa.trans.(q)
  done;
  Hashtbl.fold (fun (u, q) () acc -> if nfa.Nfa.accept.(q) then u :: acc else acc) seen []
  |> List.sort_uniq compare

let start_frontier = function
  | Guide g -> [ Graph.root (Dataguide.graph g) ]
  | Schema s -> [ Gschema.root s ]

let advance st target frontier re =
  match target with
  | Guide g ->
    let nodes, crossed = Product.reach (Dataguide.graph g) (Nfa.of_regex re) ~starts:frontier in
    st.labels <- crossed @ st.labels;
    nodes
  | Schema s -> (
    match re with
    | Regex.Atom p -> Gschema.step s frontier p
    | re -> schema_reach s (Nfa.of_regex re) ~starts:frontier)

(* ------------------------------------------------------------------ *)
(* The walker                                                          *)
(* ------------------------------------------------------------------ *)

(* Select-scoped bookkeeping for binder warnings. *)
type scope = {
  uses : (string, int) Hashtbl.t;
  binds : (string, int) Hashtbl.t;
  mutable warned : SSet.t; (* names already warned unused in this scope *)
}

let check_label st env ?span = function
  | A.Llit _ -> ()
  | A.Lname x -> (
    match SMap.find_opt x env.vars with
    | Some Tree ->
      diag st ?span Diag.Error ~code:"SSD304" "tree variable %s used in label position" x
    | Some Lab | None -> ())

let check_atom st env = function
  | A.Alit _ -> ()
  | A.Aname x -> (
    match SMap.find_opt x env.vars with
    | Some Tree ->
      diag st Diag.Error ~code:"SSD304" "tree variable %s used in a condition" x
    | Some Lab | None -> ())

(* Introduce a fresh (non-join) binding of [x]: unused / shadow
   warnings, then extend the environment. *)
let bind_fresh st env scope ?span x kind =
  if not (underscored x) then begin
    (match scope with
     | Some sc when get sc.uses x = 0 && get sc.binds x = 1 && not (SSet.mem x sc.warned) ->
       sc.warned <- SSet.add x sc.warned;
       diag st ?span Diag.Warning ~code:"SSD301" "binder %s is never used" x
     | _ -> ());
    if SMap.mem x env.vars then
      diag st ?span Diag.Warning ~code:"SSD302" "binding of %s shadows an earlier binding"
        x
  end;
  { env with vars = SMap.add x kind env.vars }

(* The binder kinds a clause list will have established once all its
   generators ran — the select head is checked under this environment
   (it is evaluated after the clauses, but parsed before them). *)
let clause_kinds env clauses =
  let rec pat vars = function
    | A.Pbind x -> SMap.add x Tree vars
    | A.Pany -> vars
    | A.Pedges es ->
      List.fold_left
        (fun vars (steps, sub) ->
          let vars =
            List.fold_left
              (fun vars -> function
                | A.Sbind x ->
                  if SMap.find_opt x vars = Some Tree then vars else SMap.add x Lab vars
                | A.Sregex (_, Some p) -> SMap.add p Tree vars
                | A.Slit _ | A.Spred _ | A.Sregex (_, None) -> vars)
              vars steps
          in
          pat vars sub)
        vars es
  in
  List.fold_left
    (fun vars -> function
      | A.Gen (p, _) -> pat vars p
      | A.Where _ -> vars)
    env.vars clauses

let rec walk_expr st env e =
  match e with
  | A.Empty | A.Db -> ()
  | A.Var x ->
    if not (SMap.mem x env.vars) then
      diag st Diag.Error ~code:"SSD303" "unbound tree variable %s" x
  | A.Tree entries ->
    List.iter
      (fun (le, e) ->
        check_label st env le;
        walk_expr st env e)
      entries
  | A.Union (a, b) ->
    walk_expr st env a;
    walk_expr st env b
  | A.Select (head, clauses) -> walk_select st env head clauses
  | A.If (c, a, b) ->
    walk_cond st env c;
    walk_expr st env a;
    walk_expr st env b
  | A.Let (x, a, b) ->
    walk_expr st env a;
    let env = bind_fresh st env None x Tree in
    walk_expr st env b
  | A.Letsfun (def, body) ->
    walk_sfun st env def;
    walk_expr st { env with funs = SSet.add def.A.fname env.funs } body
  | A.App (f, arg) ->
    if not (SSet.mem f env.funs) then
      diag st Diag.Error ~code:"SSD305" "application of unknown function %s" f;
    walk_expr st env arg

and walk_select st env head clauses =
  let uses, binds = use_counts (A.Select (head, clauses)) in
  let scope = Some { uses; binds; warned = SSet.empty } in
  (* Head first: that is parse (and mark) order.  It is evaluated under
     the bindings the clauses will have established. *)
  walk_expr st { env with vars = clause_kinds env clauses } head;
  let cur = ref env in
  List.iter
    (fun clause ->
      match clause with
      | A.Gen (p, e) ->
        let frontier =
          match st.target, e with
          | Some t, A.Db -> Some (start_frontier t)
          | _ -> None
        in
        let env' = walk_pattern st !cur scope frontier p in
        walk_expr st !cur e;
        cur := env'
      | A.Where c -> walk_cond st !cur c)
    clauses

(* Walk a pattern: consume its marks in parse order, do the binder
   checks, and — when a frontier is live — advance it step by step,
   reporting the first step at which it empties. *)
and walk_pattern st env scope frontier p =
  match p with
  | A.Pany -> env
  | A.Pbind x ->
    let span = take_mark st P.Mbind in
    bind_fresh st env scope ?span x Tree
  | A.Pedges entries ->
    List.fold_left
      (fun env (steps, sub) ->
        if frontier <> None then st.paths_checked <- st.paths_checked + 1;
        let env, frontier = walk_steps st env scope frontier 0 steps in
        walk_pattern st env scope frontier sub)
      env entries

and walk_steps st env scope frontier idx = function
  | [] -> (env, frontier)
  | step :: rest ->
    let span = take_mark st P.Mstep in
    (* hygiene, per step form *)
    let env =
      match step with
      | A.Slit le ->
        check_label st env ?span le;
        env
      | A.Sbind x -> (
        match SMap.find_opt x env.vars with
        | Some Tree ->
          diag st ?span Diag.Error ~code:"SSD304"
            "variable %s bound as both tree and label" x;
          { env with vars = SMap.add x Lab env.vars }
        | Some Lab -> env (* a join: constrains, binds nothing new *)
        | None -> bind_fresh st env scope ?span x Lab)
      | A.Spred _ -> env
      | A.Sregex (r, binder) ->
        if Regex.is_void r then
          diag st ?span Diag.Warning ~code:"SSD103"
            "path expression matches no word (contains Void)";
        (match binder with
         | Some p -> bind_fresh st env scope ?span p Tree
         | None -> env)
    in
    (* frontier advance *)
    let frontier =
      match frontier, st.target with
      | Some nodes, Some target ->
        let next = advance st target nodes (step_regex env step) in
        if next = [] then begin
          st.dead_paths <- st.dead_paths + 1;
          let code = if idx = 0 then "SSD101" else "SSD102" in
          let what = if idx = 0 then "dead path" else "partially dead path" in
          diag st ?span Diag.Warning ~code
            "%s: no database path can match this generator past step %d (product with \
             the %s is empty)"
            what (idx + 1)
            (match target with Guide _ -> "DataGuide" | Schema _ -> "schema");
          None (* stop checking, keep consuming marks *)
        end
        else Some next
      | _ -> None
    in
    walk_steps st env scope frontier (idx + 1) rest

and walk_sfun st env def =
  (* Structural restrictions, reusing the evaluator's own check — its
     Ill_formed now carries the matching diagnostic (SSD306/308/309). *)
  (match A.check_sfun def with
   | () -> ()
   | exception A.Ill_formed d -> push st d);
  (* Closed bodies (SSD307), as the evaluator enforces. *)
  List.iter
    (fun c ->
      let allowed =
        c.A.ctree
        ::
        (match c.A.cstep with
         | A.Sbind x -> [ x ]
         | A.Slit _ | A.Spred _ | A.Sregex _ -> [])
      in
      List.iter
        (fun v ->
          if not (List.mem v allowed) then
            diag st Diag.Error ~code:"SSD307" "sfun %s: body mentions free tree variable %s"
              def.A.fname v)
        (A.free_tree_vars c.A.cbody))
    def.A.cases;
  (* Conservative cyclic-result warning (SSD310): a case that re-emits
     the edge it matched around a recursive call copies every cycle of
     the input into the result, so tree extraction will not terminate.
     Only meaningful when the database is known cyclic. *)
  if st.cyclic then
    List.iter
      (fun c ->
        if case_reemits def.A.fname c then
          diag st Diag.Warning ~code:"SSD310"
            "sfun %s re-emits its matched edge around the recursive call; on this \
             cyclic database the result is cyclic (tree extraction would not terminate)"
            def.A.fname)
      def.A.cases;
  (* Case bodies, under the case environment. *)
  let funs = SSet.add def.A.fname env.funs in
  List.iter
    (fun c ->
      let span = take_mark st P.Mstep in
      ignore span;
      let vars =
        match c.A.cstep with
        | A.Sbind x -> SMap.add x Lab (SMap.add c.A.ctree Tree SMap.empty)
        | _ -> SMap.add c.A.ctree Tree SMap.empty
      in
      walk_expr st { vars; funs } c.A.cbody)
    def.A.cases

(* Does a case body contain {l: ... f(T) ...} where l re-emits the label
   the case matched? *)
and case_reemits fname c =
  let reemitting_label le =
    match c.A.cstep, le with
    | A.Slit (A.Llit l), A.Llit l' -> Label.equal l l'
    | A.Slit (A.Lname x), A.Lname y | A.Sbind x, A.Lname y -> x = y
    | _ -> false
  in
  let rec calls_rec = function
    | A.App (f, _) -> f = fname
    | A.Empty | A.Db | A.Var _ -> false
    | A.Tree es -> List.exists (fun (_, e) -> calls_rec e) es
    | A.Union (a, b) | A.Let (_, a, b) -> calls_rec a || calls_rec b
    | A.Select (h, cls) ->
      calls_rec h
      || List.exists (function A.Gen (_, e) -> calls_rec e | A.Where _ -> false) cls
    | A.If (_, a, b) -> calls_rec a || calls_rec b
    | A.Letsfun (_, e) -> calls_rec e
  in
  let rec scan = function
    | A.Tree es ->
      List.exists (fun (le, sub) -> (reemitting_label le && calls_rec sub) || scan sub) es
    | A.Empty | A.Db | A.Var _ -> false
    | A.Union (a, b) | A.Let (_, a, b) -> scan a || scan b
    | A.Select (h, cls) ->
      scan h || List.exists (function A.Gen (_, e) -> scan e | A.Where _ -> false) cls
    | A.If (_, a, b) -> scan a || scan b
    | A.Letsfun (_, e) -> scan e
    | A.App (_, a) -> scan a
  in
  scan c.A.cbody

and walk_cond st env = function
  | A.Ccmp (_, a, b) ->
    check_atom st env a;
    check_atom st env b
  | A.Cistype (_, a) | A.Cstarts (a, _) | A.Ccontains (a, _) -> check_atom st env a
  | A.Cempty e -> walk_expr st env e
  | A.Cequal (a, b) ->
    walk_expr st env a;
    walk_expr st env b
  | A.Cnot c -> walk_cond st env c
  | A.Cand (a, b) | A.Cor (a, b) ->
    walk_cond st env a;
    walk_cond st env b

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let graph_cyclic g = not (Graph.is_acyclic g)

let check ?db ?target ?marks ?(defined = []) e =
  let cyclic =
    match db, target with
    | Some g, _ -> graph_cyclic g
    | None, Some (Guide g) -> graph_cyclic (Dataguide.graph g)
    | None, _ -> false
  in
  let marks_arr, msrc =
    match marks with
    | Some m -> (m.P.items, m.P.msrc)
    | None -> ([||], "")
  in
  let st =
    {
      diags = [];
      marks = marks_arr;
      msrc;
      next_mark = 0;
      marks_ok = Array.length marks_arr > 0;
      target;
      cyclic;
      paths_checked = 0;
      dead_paths = 0;
      labels = [];
    }
  in
  let vars =
    List.fold_left (fun m x -> SMap.add x Tree m) SMap.empty defined
  in
  walk_expr st { vars; funs = SSet.empty } e;
  {
    diags = Diag.sort (List.rev st.diags);
    paths_checked = st.paths_checked;
    dead_paths = st.dead_paths;
    reachable_labels = List.sort_uniq Label.compare st.labels;
  }

(* ------------------------------------------------------------------ *)
(* Lint-informed pruning                                               *)
(* ------------------------------------------------------------------ *)

(* Names that occur as label binders anywhere in the query: a bare name
   step may refer to one of these, in which case its value is statically
   unknown (Any).  Collected once — sound wherever the name is actually
   bound. *)
let sbind_names e =
  let acc = ref SSet.empty in
  let rec expr = function
    | A.Empty | A.Db | A.Var _ -> ()
    | A.Tree es -> List.iter (fun (_, e) -> expr e) es
    | A.Union (a, b) | A.Let (_, a, b) ->
      expr a;
      expr b
    | A.Select (h, cls) ->
      expr h;
      List.iter (function A.Gen (p, e) -> pat p; expr e | A.Where c -> cond c) cls
    | A.If (c, a, b) ->
      cond c;
      expr a;
      expr b
    | A.Letsfun (d, e) ->
      List.iter
        (fun c ->
          (match c.A.cstep with A.Sbind x -> acc := SSet.add x !acc | _ -> ());
          expr c.A.cbody)
        d.A.cases;
      expr e
    | A.App (_, a) -> expr a
  and pat = function
    | A.Pbind _ | A.Pany -> ()
    | A.Pedges es ->
      List.iter
        (fun (steps, sub) ->
          List.iter (function A.Sbind x -> acc := SSet.add x !acc | _ -> ()) steps;
          pat sub)
        es
  and cond = function
    | A.Ccmp _ | A.Cistype _ | A.Cstarts _ | A.Ccontains _ -> ()
    | A.Cempty e -> expr e
    | A.Cequal (a, b) ->
      expr a;
      expr b
    | A.Cnot c -> cond c
    | A.Cand (a, b) | A.Cor (a, b) ->
      cond a;
      cond b
  in
  expr e;
  !acc

let prune target q =
  let sbinds = sbind_names q in
  let dummy = { vars = SMap.empty; funs = SSet.empty } in
  let step_re = function
    | A.Slit (A.Lname x) when SSet.mem x sbinds -> Regex.Atom Lpred.Any
    | s -> step_regex dummy s
  in
  (* no-op state for [advance]'s label accounting *)
  let st =
    {
      diags = [];
      marks = [||];
      msrc = "";
      next_mark = 0;
      marks_ok = false;
      target = Some target;
      cyclic = false;
      paths_checked = 0;
      dead_paths = 0;
      labels = [];
    }
  in
  let rec entry_dead frontier (steps, sub) =
    let rec go frontier = function
      | [] -> Some frontier
      | s :: rest -> (
        match advance st target frontier (step_re s) with
        | [] -> None
        | next -> go next rest)
    in
    match go frontier steps with
    | None -> true
    | Some frontier -> pattern_dead frontier sub
  and pattern_dead frontier = function
    | A.Pbind _ | A.Pany -> false
    | A.Pedges entries -> List.exists (entry_dead frontier) entries
  in
  let count = ref 0 in
  let rec expr e =
    match e with
    | A.Empty | A.Db | A.Var _ -> e
    | A.Tree es -> A.Tree (List.map (fun (le, e) -> (le, expr e)) es)
    | A.Union (a, b) -> A.Union (expr a, expr b)
    | A.Select (head, clauses) ->
      let dead =
        List.exists
          (function
            | A.Gen (p, A.Db) -> pattern_dead (start_frontier target) p
            | A.Gen _ | A.Where _ -> false)
          clauses
      in
      if dead then begin
        incr count;
        A.Empty
      end
      else
        A.Select
          ( expr head,
            List.map
              (function
                | A.Gen (p, e) -> A.Gen (p, expr e)
                | A.Where c -> A.Where (cond c))
              clauses )
    | A.If (c, a, b) -> A.If (cond c, expr a, expr b)
    | A.Let (x, a, b) -> A.Let (x, expr a, expr b)
    | A.Letsfun (d, e) ->
      A.Letsfun
        ({ d with A.cases = List.map (fun c -> { c with A.cbody = expr c.A.cbody }) d.A.cases },
         expr e)
    | A.App (f, a) -> A.App (f, expr a)
  and cond c =
    match c with
    | A.Ccmp _ | A.Cistype _ | A.Cstarts _ | A.Ccontains _ -> c
    | A.Cempty e -> A.Cempty (expr e)
    | A.Cequal (a, b) -> A.Cequal (expr a, expr b)
    | A.Cnot c -> A.Cnot (cond c)
    | A.Cand (a, b) -> A.Cand (cond a, cond b)
    | A.Cor (a, b) -> A.Cor (cond a, cond b)
  in
  let q' = expr q in
  (q', !count)
