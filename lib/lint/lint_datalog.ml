(* Static analysis of datalog programs: safety (SSD20x, the range
   restriction), stratifiability (SSD210), and two consistency checks
   the evaluator does not enforce — references to predicates that are
   neither derived nor extensional (SSD211) and predicates used at
   inconsistent arities (SSD212).

   Safety and stratification are re-run here as {e diagnostics} rather
   than by catching the evaluator's exceptions one at a time: the
   evaluator stops at the first offence, the linter reports all of
   them. *)

module D = Relstore.Datalog
module Diag = Ssd_diag
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type report = {
  diags : Diag.t list;
  n_rules : int;
}

let rule_str r = Format.asprintf "%a" D.pp_rule r

let term_vars acc = function
  | D.Var v -> SSet.add v acc
  | D.Const _ -> acc

let atom_vars acc (a : D.atom) = List.fold_left term_vars acc a.D.args

(* Default extensional predicates: the triple encoding every graph
   program in this repo runs against ({!Relstore.Triple.edb}). *)
let triple_edb_preds = [ ("edge", 3); ("root", 1) ]

let check ?(edb_preds = triple_edb_preds) (program : D.program) =
  let diags = ref [] in
  let diag sev ~code fmt =
    Printf.ksprintf (fun msg -> diags := Diag.make sev ~code msg :: !diags) fmt
  in
  (* --- safety: every head / negated / compared variable must occur in
     a positive body literal of the same rule --- *)
  List.iter
    (fun r ->
      let positive =
        List.fold_left
          (fun acc -> function D.Pos a -> atom_vars acc a | D.Neg _ | D.Cmp _ -> acc)
          SSet.empty r.D.body
      in
      let flag ~code where v =
        if not (SSet.mem v positive) then
          diag Diag.Error ~code "unsafe rule: variable ?%s in %s is not bound by a \
                                 positive body literal  [%s]"
            v where (rule_str r)
      in
      SSet.iter (flag ~code:"SSD201" "the head") (atom_vars SSet.empty r.D.head);
      List.iter
        (function
          | D.Pos _ -> ()
          | D.Neg a ->
            SSet.iter (flag ~code:"SSD202" "a negated literal") (atom_vars SSet.empty a)
          | D.Cmp (_, a, b) ->
            SSet.iter (flag ~code:"SSD203" "a comparison")
              (term_vars (term_vars SSet.empty a) b))
        r.D.body)
    program;
  (* --- stratification --- *)
  (match D.n_strata program with
   | _ -> ()
   | exception D.Not_stratified d -> diags := d :: !diags
   | exception D.Unsafe _ -> () (* already reported above, with more detail *));
  (* --- unknown predicates / inconsistent arities --- *)
  let idb = List.fold_left (fun s r -> SSet.add r.D.head.D.pred s) SSet.empty program in
  let known =
    List.fold_left (fun s (p, _) -> SSet.add p s) idb edb_preds
  in
  let arities = Hashtbl.create 16 in
  let note_arity (a : D.atom) =
    let n = List.length a.D.args in
    match Hashtbl.find_opt arities a.D.pred with
    | None -> Hashtbl.add arities a.D.pred (n, false)
    | Some (m, warned) ->
      if n <> m && not warned then begin
        Hashtbl.replace arities a.D.pred (m, true);
        diag Diag.Warning ~code:"SSD212"
          "predicate %s is used with arity %d and arity %d" a.D.pred n m
      end
  in
  List.iter (fun (p, n) -> Hashtbl.replace arities p (n, false)) edb_preds;
  let warned_unknown = ref SSet.empty in
  List.iter
    (fun r ->
      note_arity r.D.head;
      List.iter
        (function
          | D.Pos a | D.Neg a ->
            note_arity a;
            if (not (SSet.mem a.D.pred known)) && not (SSet.mem a.D.pred !warned_unknown)
            then begin
              warned_unknown := SSet.add a.D.pred !warned_unknown;
              diag Diag.Warning ~code:"SSD211"
                "predicate %s is neither derived by a rule nor extensional" a.D.pred
            end
          | D.Cmp _ -> ())
        r.D.body)
    program;
  { diags = Diag.sort (List.rev !diags); n_rules = List.length program }
