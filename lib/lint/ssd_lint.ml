module Diag = Ssd_diag
module Unql_lint = Lint_unql
module Lorel_lint = Lint_lorel
module Datalog_lint = Lint_datalog
module Metrics = Ssd_obs.Metrics

type target = Lint_unql.target =
  | Guide of Ssd_schema.Dataguide.t
  | Schema of Ssd_schema.Gschema.t

type lang =
  | Unql
  | Lorel
  | Datalog

let lang_name = function
  | Unql -> "unql"
  | Lorel -> "lorel"
  | Datalog -> "datalog"

type report = {
  lang : lang;
  diags : Diag.t list;
  paths_checked : int;
  dead_paths : int;
  reachable_labels : Ssd.Label.t list;
  fingerprint : int option;
}

let errors r = Diag.count Diag.Error r.diags
let warnings r = Diag.count Diag.Warning r.diags

let m_checks = Metrics.counter "lint.checks"
let m_dead = Metrics.counter "lint.dead_paths"
let m_errors = Metrics.counter "lint.errors"
let m_warnings = Metrics.counter "lint.warnings"

let count r =
  Metrics.incr m_checks;
  Metrics.add m_dead r.dead_paths;
  Metrics.add m_errors (errors r);
  Metrics.add m_warnings (warnings r);
  r

let syntax_code = function
  | Unql -> "SSD001"
  | Lorel -> "SSD002"
  | Datalog -> "SSD003"

let parse_failure lang msg =
  count
    {
      lang;
      diags = [ Diag.make Diag.Error ~code:(syntax_code lang) msg ];
      paths_checked = 0;
      dead_paths = 0;
      reachable_labels = [];
      fingerprint = None;
    }

let resolve_target ?db ?target () =
  match target, db with
  | Some t, _ -> Some t
  | None, Some g -> Some (Guide (Ssd_schema.Dataguide.build g))
  | None, None -> None

let check_src ~lang ?db ?target ?(defined = []) src =
  match lang with
  | Unql -> (
    match Unql.Parser.parse_with_marks src with
    | exception Unql.Parser.Parse_error msg -> parse_failure lang msg
    | q, marks ->
      let target = resolve_target ?db ?target () in
      let r = Lint_unql.check ?db ?target ~marks ~defined q in
      count
        {
          lang;
          diags = r.Lint_unql.diags;
          paths_checked = r.Lint_unql.paths_checked;
          dead_paths = r.Lint_unql.dead_paths;
          reachable_labels = r.Lint_unql.reachable_labels;
          fingerprint = Some (Unql.Cache.query_fingerprint q);
        })
  | Lorel -> (
    match Lorel.Parser.parse_with_marks src with
    | exception Lorel.Parser.Parse_error msg -> parse_failure lang msg
    | q, marks ->
      let target = resolve_target ?db ?target () in
      let r = Lint_lorel.check ?target ~marks q in
      count
        {
          lang;
          diags = r.Lint_lorel.diags;
          paths_checked = r.Lint_lorel.paths_checked;
          dead_paths = r.Lint_lorel.dead_paths;
          reachable_labels = [];
          fingerprint = None;
        })
  | Datalog -> (
    match Relstore.Datalog.parse src with
    | exception Relstore.Datalog.Parse_error msg -> parse_failure lang msg
    | program ->
      let r = Lint_datalog.check program in
      count
        {
          lang;
          diags = r.Lint_datalog.diags;
          paths_checked = 0;
          dead_paths = 0;
          reachable_labels = [];
          fingerprint = None;
        })

module Card = Lint_card

let check_cost ~lang ~annotated ?declared src =
  let fail code msg =
    {
      Lint_card.diags = [ Diag.make Diag.Error ~code msg ];
      ops = [];
      est_total = None;
      cost_syntax = 0.0;
      cost_planned = 0.0;
    }
  in
  match lang with
  | Unql -> (
    match Unql.Parser.parse src with
    | exception Unql.Parser.Parse_error msg -> fail (syntax_code lang) msg
    | q -> Lint_card.check_unql annotated ?declared q)
  | Lorel -> (
    match Lorel.Parser.parse src with
    | exception Lorel.Parser.Parse_error msg -> fail (syntax_code lang) msg
    | q -> Lint_card.check_lorel annotated q)
  | Datalog -> (
    match Relstore.Datalog.parse src with
    | exception Relstore.Datalog.Parse_error msg -> fail (syntax_code lang) msg
    | program -> Lint_card.check_datalog annotated program)

let check_uncal u =
  let ins = Unql.Uncal.inputs u and outs = Unql.Uncal.outputs u in
  let undefined =
    List.filter_map
      (fun y ->
        if List.mem y ins then None
        else
          Some
            (Diag.make Diag.Warning ~code:"SSD311"
               (Printf.sprintf
                  "output marker &%s has no matching input (it will be closed to {})" y)))
      outs
  in
  let unused =
    List.filter_map
      (fun y ->
        if y = Unql.Uncal.amp || List.mem y outs then None
        else
          Some
            (Diag.make Diag.Warning ~code:"SSD312"
               (Printf.sprintf "input marker &%s is defined but never used as an output"
                  y)))
      ins
  in
  Diag.sort (undefined @ unused)

let prune = Lint_unql.prune
