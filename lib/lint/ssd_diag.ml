type severity =
  | Error
  | Warning
  | Note

type span = {
  line : int;
  col : int;
  stop_line : int;
  stop_col : int;
  text : string;
}

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
}

exception Fail of t

let make ?span severity ~code message = { code; severity; span; message }

let error ?span ~code fmt =
  Printf.ksprintf (fun message -> raise (Fail (make ?span Error ~code message))) fmt

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let line_col src off =
  let off = max 0 (min off (String.length src)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, off - !bol + 1)

let span_of_offsets src start stop =
  let start = max 0 (min start (String.length src)) in
  let stop = max start (min stop (String.length src)) in
  let line, col = line_col src start in
  let stop_line, stop_col = line_col src stop in
  { line; col; stop_line; stop_col; text = String.sub src start (stop - start) }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let span_to_string s =
  if s.line = s.stop_line then Printf.sprintf "%d:%d-%d" s.line s.col s.stop_col
  else Printf.sprintf "%d:%d-%d:%d" s.line s.col s.stop_line s.stop_col

let to_string d =
  let where = match d.span with None -> "" | Some s -> span_to_string s ^ ": " in
  let near =
    match d.span with
    | Some s when s.text <> "" && String.length s.text <= 40 ->
      Printf.sprintf "  (near %S)" s.text
    | _ -> ""
  in
  Printf.sprintf "%s[%s] %s%s%s" (severity_to_string d.severity) d.code where d.message
    near

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let span_json =
    match d.span with
    | None -> "null"
    | Some s ->
      Printf.sprintf
        {|{"line": %d, "col": %d, "stop_line": %d, "stop_col": %d, "text": "%s"}|}
        s.line s.col s.stop_line s.stop_col (json_escape s.text)
  in
  Printf.sprintf {|{"code": "%s", "severity": "%s", "span": %s, "message": "%s"}|}
    (json_escape d.code)
    (severity_to_string d.severity)
    span_json (json_escape d.message)

let severity_rank = function
  | Error -> 0
  | Warning -> 1
  | Note -> 2

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let pos d = match d.span with None -> (max_int, max_int) | Some s -> (s.line, s.col) in
        compare (pos a) (pos b))
    ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let render ds =
  let ds = sort ds in
  let body = List.map to_string ds in
  let summary =
    Printf.sprintf "%d error(s), %d warning(s)" (count Error ds) (count Warning ds)
  in
  String.concat "\n" (body @ [ summary ]) ^ "\n"

let render_json ds =
  let ds = sort ds in
  Printf.sprintf {|{"diagnostics": [%s], "errors": %d, "warnings": %d}|}
    (String.concat ", " (List.map to_json ds))
    (count Error ds) (count Warning ds)

(* ------------------------------------------------------------------ *)
(* The code registry                                                   *)
(* ------------------------------------------------------------------ *)

let codes =
  [
    ("SSD001", Error, "syntax error in an UnQL query");
    ("SSD002", Error, "syntax error in a Lorel query");
    ("SSD003", Error, "syntax error in a datalog program");
    ("SSD101", Warning, "dead path: no database path from the root can match");
    ("SSD102", Warning, "partially dead path: matching becomes impossible at a later step");
    ("SSD103", Warning, "void path expression: the regex matches no label word at all");
    ("SSD201", Error, "datalog: head variable not bound by a positive body literal");
    ("SSD202", Error, "datalog: variable in a negated literal not positively bound");
    ("SSD203", Error, "datalog: variable in a comparison not positively bound");
    ("SSD210", Error, "datalog: program is not stratifiable (negation through recursion)");
    ("SSD211", Warning, "datalog: predicate used but never defined (and not extensional)");
    ("SSD212", Warning, "datalog: predicate used with inconsistent arities");
    ("SSD213", Error, "datalog: incremental maintenance requires a negation-free program");
    ("SSD250", Warning, "cardinality: result is statically empty (estimate 0)");
    ("SSD251", Note, "cardinality: select is always singleton (estimate <= 1)");
    ("SSD252", Warning, "cardinality: conjunct order builds a cross product (cheaper order exists)");
    ("SSD253", Warning, "cardinality: unbounded recursion over a cyclic region under a step budget");
    ("SSD254", Warning, "cardinality: inferred result schema not subsumed by the declared schema");
    ("SSD301", Warning, "unused binder: variable is bound but never referenced");
    ("SSD302", Warning, "shadowed binding: an enclosing binding of the same name is hidden");
    ("SSD303", Error, "unbound tree variable");
    ("SSD304", Error, "conflicting label/tree use of one variable");
    ("SSD305", Error, "application of an unknown function");
    ("SSD306", Error, "recursive sfun call must apply to the case's tree variable");
    ("SSD307", Error, "sfun body mentions a free tree variable");
    ("SSD308", Error, "regular path expressions are not allowed in sfun case steps");
    ("SSD309", Error, "sfun shadows an enclosing sfun of the same name");
    ("SSD310", Warning, "structural recursion re-emits its traversal edge on cyclic input");
    ("SSD311", Warning, "UnCAL marker used (as output) but never defined (as input)");
    ("SSD312", Warning, "UnCAL marker defined (as input) but never used (as output)");
    ("SSD401", Error, "Lorel: unbound range variable");
    ("SSD402", Warning, "Lorel: dead path against the DataGuide");
    ("SSD403", Warning, "Lorel: duplicate range variable shadows an earlier one");
    ("SSD520", Error, "relational store: arity or attribute mismatch");
    ("SSD521", Error, "triple codec: malformed edge/root relation");
    ("SSD530", Error, "views: duplicate view definition");
    ("SSD540", Error, "distributed evaluation: partition must have a positive site count");
    ("SSD541", Error, "fault plan: malformed fault specification");
    ("SSD542", Error, "storage pager: page or buffer capacity must be positive");
    ("SSD550", Error, "serve: malformed request frame");
    ("SSD551", Error, "serve: request frame exceeds the size limit");
    ("SSD552", Error, "serve: unknown or malformed request option");
    ("SSD553", Error, "serve: request failed during parsing or evaluation");
    ("SSD554", Warning, "serve: server overloaded, request shed (retry later)");
    ("SSD555", Error, "serve: unsupported verb or query language");
    ("SSD560", Error, "store: bad magic or format version");
    ("SSD561", Error, "store: page or segment CRC mismatch");
    ("SSD562", Warning, "store: torn or uncommitted WAL tail");
    ("SSD563", Error, "store: dangling page reference");
    ("SSD564", Error, "store: malformed segment");
    ("SSD565", Note, "store: recovery pending (not closed cleanly)");
  ]

let describe code =
  List.find_map (fun (c, _, d) -> if c = code then Some d else None) codes

let () =
  Printexc.register_printer (function
    | Fail d -> Some (to_string d)
    | _ -> None)
