(* Cardinality and cost analysis over the annotated DataGuide: the
   abstract interpreter behind SSD250–SSD254, `ssdql check --cost` and
   `ssdql explain`.  See lint_card.mli. *)

module Diag = Ssd_diag
module Graph = Ssd.Graph
module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred
module Dataguide = Ssd_schema.Dataguide
module Annotated = Ssd_schema.Annotated
module Gschema = Ssd_schema.Gschema
module A = Unql.Ast
module D = Relstore.Datalog

type op_est = {
  op_text : string;
  op_est : float option;
  op_access : string option;
  op_unbounded : bool;
}

type t = {
  diags : Diag.t list;
  ops : op_est list;
  est_total : float option;
  cost_syntax : float;
  cost_planned : float;
}

let warn ~code fmt = Printf.ksprintf (fun m -> Diag.make Diag.Warning ~code m) fmt
let note ~code fmt = Printf.ksprintf (fun m -> Diag.make Diag.Note ~code m) fmt

(* SSD252 fires when the syntactic conjunct order is estimated at least
   this factor more expensive than the planned one, and the work at
   stake is non-trivial. *)
let cross_product_factor = 4.0
let cross_product_floor = 20.0

let order_diags ~what ~cost_syntax ~cost_planned =
  if
    cost_planned > 0.0
    && cost_syntax >= cross_product_factor *. cost_planned
    && cost_syntax >= cross_product_floor
  then
    [
      warn ~code:"SSD252"
        "%s: conjunct order builds a cross product (estimated cost %.0f, a \
         cheaper order costs %.0f — %.1fx)"
        what cost_syntax cost_planned (cost_syntax /. cost_planned);
    ]
  else []

let card_diags ~what ~est ~unbounded =
  let c =
    match est with
    | Some e when e <= 0.0 ->
      [ warn ~code:"SSD250" "%s: result is statically empty (estimate 0)" what ]
    | Some e when e <= 1.0 ->
      [ note ~code:"SSD251" "%s: always singleton (estimate %.2f <= 1)" what e ]
    | _ -> []
  in
  let u =
    if unbounded then
      [
        warn ~code:"SSD253"
          "%s: recursive path over a cyclic region — traversal is unbounded \
           under a step budget"
          what;
      ]
    else []
  in
  c @ u

(* ------------------------------------------------------------------ *)
(* Result-schema inference (SSD254)                                    *)
(* ------------------------------------------------------------------ *)

(* A growable graph with predicate-labeled edges and ε-edges, presented
   to Ssd.Simulation via an ε-closing successor function.  Unknown
   subresults (sfun applications, unbound variables) become leaf nodes:
   the inference under-approximates rather than over-approximates, so a
   non-simulation verdict — and only that — is reported (no false
   SSD254 positives at the price of missed ones). *)
module Sg = struct
  type t = {
    mutable n : int;
    mutable edges : (int * Lpred.t * int) list;
    mutable eps : (int * int) list;
  }

  let create () = { n = 0; edges = []; eps = [] }

  let node sg =
    let i = sg.n in
    sg.n <- sg.n + 1;
    i

  let edge sg u p v = sg.edges <- (u, p, v) :: sg.edges
  let eps sg u v = sg.eps <- (u, v) :: sg.eps

  let succ_fn sg =
    let out = Array.make (max 1 sg.n) [] in
    List.iter (fun (u, p, v) -> out.(u) <- (p, v) :: out.(u)) sg.edges;
    let eps_adj = Array.make (max 1 sg.n) [] in
    List.iter (fun (u, v) -> eps_adj.(u) <- v :: eps_adj.(u)) sg.eps;
    fun u ->
      let seen = Hashtbl.create 4 in
      let acc = ref [] in
      let rec close u =
        if not (Hashtbl.mem seen u) then begin
          Hashtbl.add seen u ();
          acc := out.(u) @ !acc;
          List.iter close eps_adj.(u)
        end
      in
      close u;
      !acc
end

(* Guide positions a pattern's steps can reach, and the positions each
   tree binder takes — the same walk the planner does, kept here so the
   schema inference can graft guide regions at binder positions. *)
let steps_frontier ann lbound fr steps =
  List.fold_left
    (fun fr s ->
      match s with
      | A.Slit (A.Llit l) -> Annotated.step_pred ann fr (Lpred.Exact l)
      | A.Slit (A.Lname x) ->
        let p =
          if List.mem x lbound then Lpred.Any else Lpred.Exact (Label.Sym x)
        in
        Annotated.step_pred ann fr p
      | A.Sbind _ -> Annotated.step_pred ann fr Lpred.Any
      | A.Spred p -> Annotated.step_pred ann fr p
      | A.Sregex (r, _) -> fst (Annotated.step_regex ann fr r))
    fr steps

let rec pattern_positions ann lbound fr acc = function
  | A.Pany -> acc
  | A.Pbind x -> (x, Annotated.nodes fr) :: acc
  | A.Pedges entries ->
    List.fold_left
      (fun acc (steps, sub) ->
        let fr' = steps_frontier ann lbound fr steps in
        pattern_positions ann lbound fr' acc sub)
      acc entries

let infer_schema ann lbound e =
  let sg = Sg.create () in
  let guide_g = Dataguide.graph (Annotated.guide ann) in
  let guide_memo = Hashtbl.create 16 in
  let rec guide_node v =
    match Hashtbl.find_opt guide_memo v with
    | Some u -> u
    | None ->
      let u = Sg.node sg in
      Hashtbl.add guide_memo v u;
      List.iter
        (fun (l, w) -> Sg.edge sg u (Lpred.Exact l) (guide_node w))
        (Graph.labeled_succ guide_g v);
      u
  in
  (* env: tree variable -> inferred node; spos: tree binder -> guide
     positions (only for select binders, where grafting is exact). *)
  let rec go env spos e =
    match e with
    | A.Empty -> Sg.node sg
    | A.Db -> guide_node (Graph.root guide_g)
    | A.Var x -> (
      match List.assoc_opt x env with
      | Some n -> n
      | None ->
        if List.mem x lbound then begin
          (* A label variable as a tree denotes the leaf {l: {}}. *)
          let u = Sg.node sg in
          let v = Sg.node sg in
          Sg.edge sg u Lpred.Any v;
          u
        end
        else Sg.node sg (* unknown: a leaf, see the module comment *))
    | A.Tree entries ->
      let u = Sg.node sg in
      List.iter
        (fun (le, sub) ->
          let p =
            match le with
            | A.Llit l -> Lpred.Exact l
            | A.Lname x ->
              if List.mem x lbound then Lpred.Any else Lpred.Exact (Label.Sym x)
          in
          Sg.edge sg u p (go env spos sub))
        entries;
      u
    | A.Union (a, b) ->
      let u = Sg.node sg in
      Sg.eps sg u (go env spos a);
      Sg.eps sg u (go env spos b);
      u
    | A.Select (head, clauses) ->
      (* Bind every generator binder to the guide regions its pattern
         reaches, then infer the head once over those bindings. *)
      let env, spos =
        List.fold_left
          (fun (env, spos) clause ->
            match clause with
            | A.Where _ -> (env, spos)
            | A.Gen (p, src) -> (
              let fr0 =
                match src with
                | A.Db -> Some (Annotated.start ann)
                | A.Var x -> (
                  match List.assoc_opt x spos with
                  | Some vs -> Some (List.map (fun v -> (v, 1.0)) vs)
                  | None -> None)
                | _ -> None
              in
              match fr0 with
              | None ->
                (* binders of an unbounded source: unknown leaves *)
                let env =
                  List.fold_left
                    (fun env x -> (x, Sg.node sg) :: env)
                    env (A.pattern_binders p)
                in
                (env, spos)
              | Some fr ->
                let binds = pattern_positions ann lbound fr [] p in
                let env =
                  List.fold_left
                    (fun env (x, vs) ->
                      let u = Sg.node sg in
                      List.iter (fun v -> Sg.eps sg u (guide_node v)) vs;
                      (x, u) :: env)
                    env binds
                in
                (env, binds @ spos)))
          (env, spos) clauses
      in
      let u = Sg.node sg in
      Sg.eps sg u (go env spos head);
      u
    | A.If (_, a, b) ->
      let u = Sg.node sg in
      Sg.eps sg u (go env spos a);
      Sg.eps sg u (go env spos b);
      u
    | A.Let (x, a, b) ->
      let n = go env spos a in
      go ((x, n) :: env) spos b
    | A.Letsfun (_, _) | A.App (_, _) -> Sg.node sg
  in
  let root = go [] [] e in
  (sg, root)

let check_declared ann lbound q declared =
  let sg, root = infer_schema ann lbound q in
  let sim =
    Ssd.Simulation.maximal ~n1:(max 1 sg.Sg.n) ~succ1:(Sg.succ_fn sg)
      ~n2:(Gschema.n_nodes declared) ~succ2:(Gschema.succ declared)
      ~matches:Lpred.compatible
  in
  if List.mem (Gschema.root declared) sim.(root) then []
  else
    [
      warn ~code:"SSD254"
        "inferred result schema is not subsumed by the declared schema";
    ]

(* ------------------------------------------------------------------ *)
(* UnQL                                                                *)
(* ------------------------------------------------------------------ *)

let check_unql ann ?declared q =
  let _, plans = Unql.Optimize.plan_expr ann q in
  let ops =
    List.concat_map
      (fun pl ->
        List.map
          (fun (g : Unql.Optimize.gen_plan) ->
            {
              op_text = g.Unql.Optimize.g_text;
              op_est = g.Unql.Optimize.g_est;
              op_access =
                Some
                  (Unql.Optimize.access_path_to_string g.Unql.Optimize.g_access);
              op_unbounded = g.Unql.Optimize.g_unbounded;
            })
          pl.Unql.Optimize.p_gens)
      plans
  in
  let diags =
    List.concat_map
      (fun pl ->
        let unbounded =
          List.exists
            (fun (g : Unql.Optimize.gen_plan) -> g.Unql.Optimize.g_unbounded)
            pl.Unql.Optimize.p_gens
        in
        card_diags ~what:"select" ~est:pl.Unql.Optimize.p_est ~unbounded
        @ order_diags ~what:"select"
            ~cost_syntax:pl.Unql.Optimize.p_cost_syntax
            ~cost_planned:pl.Unql.Optimize.p_cost_planned)
      plans
  in
  let lbound = Unql.Optimize.sbind_names q in
  let schema_diags =
    match declared with
    | None -> []
    | Some s -> check_declared ann lbound q s
  in
  let outermost = match List.rev plans with [] -> None | pl :: _ -> Some pl in
  {
    diags = diags @ schema_diags;
    ops;
    est_total =
      (match outermost with Some pl -> pl.Unql.Optimize.p_est | None -> None);
    cost_syntax =
      List.fold_left (fun a pl -> a +. pl.Unql.Optimize.p_cost_syntax) 0.0 plans;
    cost_planned =
      List.fold_left (fun a pl -> a +. pl.Unql.Optimize.p_cost_planned) 0.0 plans;
  }

(* ------------------------------------------------------------------ *)
(* Lorel                                                               *)
(* ------------------------------------------------------------------ *)

let lorel_cost ann (q : Lorel.Ast.query) order =
  let ranges = Array.of_list q.Lorel.Ast.from in
  let bound = ref [] and cost = ref 0.0 and envs = ref 1.0 in
  List.iter
    (fun i ->
      let p, x = ranges.(i) in
      let est, _, pos = Lorel.Optimize.est_path ann !bound p in
      let e = match est with Some e -> e | None -> 1e9 in
      cost := !cost +. (!envs *. Float.max 1.0 e);
      envs := !envs *. e;
      bound := (x, pos) :: !bound)
    order;
  !cost

let check_lorel ann (q : Lorel.Ast.query) =
  let rplans, order = Lorel.Optimize.plan ann q in
  let ops =
    List.map
      (fun (r : Lorel.Optimize.range_plan) ->
        {
          op_text =
            Printf.sprintf "%s %s" r.Lorel.Optimize.r_text
              r.Lorel.Optimize.r_var;
          op_est = r.Lorel.Optimize.r_est;
          op_access = None;
          op_unbounded = r.Lorel.Optimize.r_unbounded;
        })
      rplans
  in
  let est_total =
    List.fold_left
      (fun acc (r : Lorel.Optimize.range_plan) ->
        match acc, r.Lorel.Optimize.r_est with
        | Some a, Some e -> Some (a *. e)
        | _ -> None)
      (Some 1.0) rplans
  in
  let unbounded =
    List.exists (fun (r : Lorel.Optimize.range_plan) -> r.Lorel.Optimize.r_unbounded) rplans
  in
  let n = List.length q.Lorel.Ast.from in
  let cost_syntax = lorel_cost ann q (List.init n Fun.id) in
  let cost_planned = lorel_cost ann q order in
  {
    diags =
      card_diags ~what:"query" ~est:est_total ~unbounded
      @ order_diags ~what:"from clause" ~cost_syntax ~cost_planned;
    ops;
    est_total;
    cost_syntax;
    cost_planned;
  }

(* ------------------------------------------------------------------ *)
(* Datalog                                                             *)
(* ------------------------------------------------------------------ *)

(* The catalog for the standard triple encoding: what Triple.edb would
   hold for the annotated graph. *)
let datalog_sizes ann =
  let stats = Annotated.stats ann in
  [ ("edge", stats.Ssd_index.Stats.n_edges); ("root", 1) ]

let term_vars args =
  List.filter_map (function D.Var v -> Some v | D.Const _ -> None) args

let datalog_cost sizes (body : D.literal list) order =
  let lits = Array.of_list body in
  let bound = Hashtbl.create 8 in
  let is_bound = function D.Const _ -> true | D.Var v -> Hashtbl.mem bound v in
  let lit_est = function
    | D.Neg _ | D.Cmp _ -> 1.0
    | D.Pos a -> (
      match List.assoc_opt a.D.pred sizes with
      | None -> 1e6 (* IDB or unknown: no statistics *)
      | Some sz ->
        let b = List.length (List.filter is_bound a.D.args) in
        Float.max 1.0 (float_of_int sz /. (4.0 ** float_of_int b)))
  in
  let cost = ref 0.0 and envs = ref 1.0 in
  List.iter
    (fun i ->
      let e = lit_est lits.(i) in
      cost := !cost +. (!envs *. e);
      envs := !envs *. e;
      (match lits.(i) with
      | D.Pos a ->
        List.iter (fun v -> Hashtbl.replace bound v ()) (term_vars a.D.args)
      | D.Neg _ | D.Cmp _ -> ()))
    order;
  !cost

let rule_text r = Format.asprintf "%a" D.pp_rule r

let check_datalog ann (program : D.program) =
  let sizes = datalog_sizes ann in
  let diags, ops =
    List.fold_left
      (fun (diags, ops) r ->
        let body = r.D.body in
        let n = List.length body in
        let syntax_order = List.init n Fun.id in
        let cost_syntax = datalog_cost sizes body syntax_order in
        (* Greedy order: cheapest-estimate-first among positive
           literals, guards when bound — mirror of Datalog.reorder. *)
        let greedy =
          let picked = Array.make n false in
          let lits = Array.of_list body in
          let bound = Hashtbl.create 8 in
          let is_bound =
            function D.Const _ -> true | D.Var v -> Hashtbl.mem bound v
          in
          let order = ref [] in
          for _ = 1 to n do
            (* guards first when decidable *)
            let guard =
              let found = ref None in
              for j = n - 1 downto 0 do
                if not picked.(j) then
                  match lits.(j) with
                  | D.Neg a
                    when List.for_all
                           (fun v -> Hashtbl.mem bound v)
                           (term_vars a.D.args) ->
                    found := Some j
                  | D.Cmp (_, t1, t2) when is_bound t1 && is_bound t2 ->
                    found := Some j
                  | _ -> ()
              done;
              !found
            in
            let j =
              match guard with
              | Some j -> Some j
              | None ->
                let best = ref None in
                for j = 0 to n - 1 do
                  if not picked.(j) then
                    match lits.(j) with
                    | D.Pos a -> (
                      let e =
                        match List.assoc_opt a.D.pred sizes with
                        | None -> 1e6
                        | Some sz ->
                          let b =
                            List.length (List.filter is_bound a.D.args)
                          in
                          Float.max 1.0
                            (float_of_int sz /. (4.0 ** float_of_int b))
                      in
                      match !best with
                      | Some (_, be) when be <= e -> ()
                      | _ -> best := Some (j, e))
                    | D.Neg _ | D.Cmp _ -> ()
                done;
                (match !best with
                | Some (j, _) -> Some j
                | None ->
                  (* only undecidable guards left: take the first *)
                  let rec first j =
                    if j >= n then None
                    else if not picked.(j) then Some j
                    else first (j + 1)
                  in
                  first 0)
            in
            match j with
            | None -> ()
            | Some j ->
              picked.(j) <- true;
              order := j :: !order;
              (match lits.(j) with
              | D.Pos a ->
                List.iter
                  (fun v -> Hashtbl.replace bound v ())
                  (term_vars a.D.args)
              | D.Neg _ | D.Cmp _ -> ())
          done;
          List.rev !order
        in
        let cost_planned = datalog_cost sizes body greedy in
        let what = Printf.sprintf "rule %s" r.D.head.D.pred in
        let empty =
          List.exists
            (function
              | D.Pos a -> (
                match List.assoc_opt a.D.pred sizes with
                | Some 0 -> true
                | _ -> false)
              | D.Neg _ | D.Cmp _ -> false)
            body
        in
        let d =
          (if empty then
             [
               warn ~code:"SSD250"
                 "%s: body reads an empty extensional relation (estimate 0)"
                 what;
             ]
           else [])
          @ order_diags ~what ~cost_syntax ~cost_planned
        in
        let op =
          {
            op_text = rule_text r;
            op_est = None;
            op_access = None;
            op_unbounded = false;
          }
        in
        (diags @ d, ops @ [ op ]))
      ([], []) program
  in
  let cost_syntax =
    List.fold_left
      (fun a r ->
        a +. datalog_cost sizes r.D.body (List.init (List.length r.D.body) Fun.id))
      0.0 program
  in
  { diags; ops; est_total = None; cost_syntax; cost_planned = cost_syntax }
