module Graph = Ssd.Graph
module Label = Ssd.Label

type t = {
  root : int;
  out : (Ssd_automata.Lpred.t * int) list array;
}

exception Parse_error of string

module Builder = struct
  type t = {
    mutable n : int;
    mutable edges : (int * Ssd_automata.Lpred.t * int) list;
    mutable root : int;
  }

  let create () = { n = 0; edges = []; root = 0 }

  let add_node b =
    let id = b.n in
    b.n <- b.n + 1;
    id

  let add_edge b u p v =
    assert (u >= 0 && u < b.n && v >= 0 && v < b.n);
    b.edges <- (u, p, v) :: b.edges

  let set_root b r =
    assert (r >= 0 && r < b.n);
    b.root <- r

  let finish b =
    if b.n = 0 then invalid_arg "Gschema.Builder.finish: empty builder";
    let out = Array.make b.n [] in
    List.iter (fun (u, p, v) -> out.(u) <- (p, v) :: out.(u)) b.edges;
    { root = b.root; out }
end

let root s = s.root
let n_nodes s = Array.length s.out
let succ s u = s.out.(u)

(* One query-predicate step over the schema automaton: successors along
   edges whose predicate may co-match the query predicate
   (conservative, via Lpred.compatible — never loses a live path). *)
let step s nodes p =
  List.concat_map
    (fun u ->
      List.filter_map
        (fun (q, v) -> if Ssd_automata.Lpred.compatible p q then Some v else None)
        (succ s u))
    nodes
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* A schema document is data syntax whose label positions hold predicate
   expressions.  The node structure is parsed here; the predicate text —
   everything up to the next top-level ':', ',' or '}' — is delegated to
   the regex parser and must denote a single predicate (alternation [p|q]
   is folded into Ssd_automata.Lpred.Or). *)

let rec pred_of_regex = function
  | Ssd_automata.Regex.Atom p -> p
  | Ssd_automata.Regex.Alt (a, b) -> Ssd_automata.Lpred.Or (pred_of_regex a, pred_of_regex b)
  | r ->
    raise
      (Parse_error
         ("schema edges carry label predicates, not path expressions: " ^ Ssd_automata.Regex.to_string r))

let parse_pred text =
  match Ssd_automata.Regex.parse text with
  | r -> pred_of_regex r
  | exception Ssd_automata.Regex.Parse_error msg -> raise (Parse_error msg)

type pstate = {
  src : string;
  mutable pos : int;
  builder : Builder.t;
  names : (string, int) Hashtbl.t;
  bound : (string, unit) Hashtbl.t;
}

let fail st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | Some '#' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '#' ->
    (* '##' starts a comment ('#' alone is a type-test predicate). *)
    while peek st <> None && peek st <> Some '\n' do
      st.pos <- st.pos + 1
    done;
    skip_ws st
  | _ -> ()

let lex_name st =
  let start = st.pos in
  while
    match peek st with
    | Some c -> Label.is_ident_char c
    | None -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

(* Scan predicate text up to the next ':' ',' or '}' outside parentheses
   and string quotes. *)
let lex_pred_text st =
  let start = st.pos in
  let depth = ref 0 in
  let in_string = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | None -> continue := false
    | Some '"' ->
      (* Toggle string state; escaped quotes are handled by the lookback check below. *)
      if !in_string && st.pos > 0 && st.src.[st.pos - 1] = '\\' then ()
      else in_string := not !in_string;
      st.pos <- st.pos + 1
    | Some _ when !in_string -> st.pos <- st.pos + 1
    | Some '(' ->
      incr depth;
      st.pos <- st.pos + 1
    | Some ')' ->
      decr depth;
      st.pos <- st.pos + 1
    | Some (':' | ',' | '}') when !depth = 0 -> continue := false
    | Some _ -> st.pos <- st.pos + 1
  done;
  let text = String.trim (String.sub st.src start (st.pos - start)) in
  if text = "" then fail st "expected a label predicate";
  text

let node_for_name st name =
  match Hashtbl.find_opt st.names name with
  | Some id -> id
  | None ->
    let id = Builder.add_node st.builder in
    Hashtbl.add st.names name id;
    id

let rec parse_node st =
  skip_ws st;
  match peek st with
  | Some '&' ->
    st.pos <- st.pos + 1;
    let name = lex_name st in
    if Hashtbl.mem st.bound name then fail st ("node &" ^ name ^ " bound twice");
    Hashtbl.add st.bound name ();
    let id = node_for_name st name in
    let body = parse_node st in
    (* Schemas have no ε-edges; copy the body's edges onto the named node
       lazily by remembering an alias instead: simplest is to make the
       named node the body by parsing into it. *)
    List.iter (fun (p, v) -> Builder.add_edge st.builder id p v) (alias_edges st body);
    id
  | Some '*' ->
    st.pos <- st.pos + 1;
    let name = lex_name st in
    node_for_name st name
  | Some '{' ->
    st.pos <- st.pos + 1;
    let id = Builder.add_node st.builder in
    let rec entries () =
      skip_ws st;
      match peek st with
      | Some '}' -> st.pos <- st.pos + 1
      | Some _ ->
        parse_entry st id;
        skip_ws st;
        (match peek st with
         | Some ',' ->
           st.pos <- st.pos + 1;
           entries ()
         | Some '}' -> st.pos <- st.pos + 1
         | _ -> fail st "expected ',' or '}'")
      | None -> fail st "unterminated '{'"
    in
    entries ();
    id
  | _ -> fail st "expected '{', '&' or '*'"

and alias_edges st body =
  (* Edges of a just-parsed body node; used to inline it under a '&name'
     binder. *)
  let b = st.builder in
  List.filter_map (fun (u, p, v) -> if u = body then Some (p, v) else None)
    (List.rev b.Builder.edges)

and parse_entry st parent =
  let text = lex_pred_text st in
  let pred = parse_pred text in
  skip_ws st;
  match peek st with
  | Some ':' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    (match peek st with
     | Some ('{' | '&' | '*') ->
       let v = parse_node st in
       Builder.add_edge st.builder parent pred v
     | _ ->
       (* bare predicate value: sugar for {pred: {}} *)
       let text = lex_pred_text st in
       let inner = parse_pred text in
       let v = Builder.add_node st.builder in
       let leafn = Builder.add_node st.builder in
       Builder.add_edge st.builder v inner leafn;
       Builder.add_edge st.builder parent pred v)
  | _ ->
    let leafn = Builder.add_node st.builder in
    Builder.add_edge st.builder parent pred leafn

let parse src =
  let st =
    { src; pos = 0; builder = Builder.create (); names = Hashtbl.create 8; bound = Hashtbl.create 8 }
  in
  let r = parse_node st in
  skip_ws st;
  if peek st <> None then fail st "trailing input after schema";
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem st.bound name) then
        fail st (Printf.sprintf "reference *%s has no &%s binding" name name))
    st.names;
  Builder.set_root st.builder r;
  Builder.finish st.builder

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp fmt s =
  let indegree = Array.make (n_nodes s) 0 in
  Array.iter (List.iter (fun (_, v) -> indegree.(v) <- indegree.(v) + 1)) s.out;
  let printed = Hashtbl.create 8 in
  let rec pp_node fmt u =
    if Hashtbl.mem printed u then Format.fprintf fmt "*%d" u
    else begin
      if indegree.(u) > 1 then begin
        Hashtbl.add printed u ();
        Format.fprintf fmt "&%d " u
      end;
      match s.out.(u) with
      | [] -> Format.pp_print_string fmt "{}"
      | es ->
        Format.fprintf fmt "@[<hv 1>{";
        List.iteri
          (fun i (p, v) ->
            if i > 0 then Format.fprintf fmt ",@ ";
            if s.out.(v) = [] && indegree.(v) <= 1 then Ssd_automata.Lpred.pp fmt p
            else Format.fprintf fmt "%a: %a" Ssd_automata.Lpred.pp p pp_node v)
          es;
        Format.fprintf fmt "}@]"
    end
  in
  pp_node fmt s.root

let to_string s = Format.asprintf "%a" pp s

(* ------------------------------------------------------------------ *)
(* Conformance                                                         *)
(* ------------------------------------------------------------------ *)

let classify g s =
  Ssd.Simulation.maximal
    ~n1:(Graph.n_nodes g)
    ~succ1:(Graph.labeled_succ g)
    ~n2:(n_nodes s)
    ~succ2:(succ s)
    ~matches:(fun l p -> Ssd_automata.Lpred.matches p l)

let conforms g s =
  let sim = classify g s in
  List.mem s.root sim.(Graph.root g)

let violations g s =
  let sim = classify g s in
  let live = Graph.reachable g in
  let out = ref [] in
  for u = Graph.n_nodes g - 1 downto 0 do
    if live.(u) && sim.(u) = [] then out := u :: !out
  done;
  !out
