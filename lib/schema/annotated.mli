(** Cardinality-annotated DataGuides — the optimizer's statistics catalog.

    A strong DataGuide ({!Dataguide}) summarizes {e which} label paths
    exist; this module annotates each guide node with {e how many} data
    nodes its path reaches (target-set size), each guide edge with the
    worst-case per-node fan-out of its label, and the whole guide with a
    per-label edge histogram ({!Ssd_index.Value_index}) and the catalog
    statistics ({!Ssd_index.Stats}).  The annotations form an abstract
    domain: stepping a {e frontier} of (guide node, count) pairs through
    a label predicate or a path regex yields a sound {b upper bound} on
    the number of (environment, data node) pairs a query generator can
    produce — the quantity the cost-based planner orders generators by
    and the lint cardinality pass reports. *)

type t

(** Build the guide and its annotations from the data graph. *)
val build : Ssd.Graph.t -> t

(** Annotate an already-built guide for the same graph. *)
val of_guide : Ssd.Graph.t -> Dataguide.t -> t

(** Like {!of_guide}, but reuse catalog statistics and a value index the
    caller already holds (the incremental maintainer keeps both current
    across updates, so annotating after a commit skips their full
    rebuild). *)
val of_parts :
  Ssd.Graph.t -> Dataguide.t -> stats:Ssd_index.Stats.t ->
  vindex:Ssd_index.Value_index.t -> t

val guide : t -> Dataguide.t
val stats : t -> Ssd_index.Stats.t

(** Target-set size of a guide node: exactly how many data nodes its
    path reaches (DataGuides are accurate, so this one is not a bound). *)
val card : t -> int -> int

(** [fmax t u l] — the maximum number of [l]-labeled edges out of any
    single data node in [u]'s target set (parallel edges counted). *)
val fmax : t -> int -> Ssd.Label.t -> int

(** Number of edges in the data carrying this label (value-index
    histogram). *)
val label_count : t -> Ssd.Label.t -> int

(** Distinct labels in the data, sorted. *)
val labels : t -> Ssd.Label.t list

(** The [k] most frequent labels with edge counts, descending. *)
val top_labels : t -> k:int -> (Ssd.Label.t * int) list

(** Is some guide cycle reachable from these guide nodes?  (A recursive
    path expression over such a region can cross unboundedly many paths
    under a step budget.) *)
val cyclic_from : t -> int list -> bool

(** Does the regex contain a non-void [Star]/[Plus]? *)
val regex_recursive : Ssd_automata.Regex.t -> bool

(** {2 Frontier estimation}

    A frontier maps guide nodes to an upper bound on the number of
    (environment, data node) pairs currently at that node; stepping is
    monotone in these bounds, so any sequence of steps from {!start}
    over-approximates the evaluator. *)

type frontier = (int * float) list

(** The guide root with count 1 (one empty environment at the data root). *)
val start : t -> frontier

(** Step every frontier entry across each guide edge whose label the
    predicate matches; counts multiply by the edge's {!fmax}. *)
val step_pred : t -> frontier -> Ssd_automata.Lpred.t -> frontier

(** Step through a path regex by NFA × guide product.  Each entry
    contributes at most [card v] pairs per accepting guide node [v]
    (the evaluator dedups regex results to node sets).  The flag is
    true when the regex is recursive over a cyclic guide region — the
    estimate is still finite but the traversal is unbounded under a
    step budget. *)
val step_regex : t -> frontier -> Ssd_automata.Regex.t -> frontier * bool

(** Total count of a frontier — the cardinality estimate. *)
val total : frontier -> float

val nodes : frontier -> int list

(** Sum of target-set sizes over all guide nodes reachable from these —
    the work estimate of a regex traversal started there. *)
val region_card : t -> int list -> float
