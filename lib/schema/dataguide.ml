module Graph = Ssd.Graph
module Label = Ssd.Label

module Label_map = Map.Make (struct
  type t = Label.t

  let compare = Label.compare
end)

type t = {
  graph : Graph.t;
  targets : int list array;
}

let build g =
  (* Subset construction over ε-closed labeled successors. *)
  let ids : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let b = Graph.Builder.create () in
  let target_acc = ref [] in
  let intern set =
    match Hashtbl.find_opt ids set with
    | Some id -> (id, false)
    | None ->
      let id = Graph.Builder.add_node b in
      Hashtbl.add ids set id;
      target_acc := (id, set) :: !target_acc;
      (id, true)
  in
  let rec explore set id =
    (* Group successors of the whole set by label. *)
    let by_label =
      List.fold_left
        (fun m u ->
          List.fold_left
            (fun m (l, v) ->
              let old = Option.value ~default:[] (Label_map.find_opt l m) in
              Label_map.add l (v :: old) m)
            m (Graph.labeled_succ g u))
        Label_map.empty set
    in
    Label_map.iter
      (fun l vs ->
        let vs = List.sort_uniq compare vs in
        let vid, fresh = intern vs in
        Graph.Builder.add_edge b id l vid;
        if fresh then explore vs vid)
      by_label
  in
  let root_set = [ Graph.root g ] in
  let root_id, _ = intern root_set in
  Graph.Builder.set_root b root_id;
  explore root_set root_id;
  let guide = Graph.Builder.finish b in
  let targets = Array.make (Graph.n_nodes guide) [] in
  List.iter (fun (id, set) -> targets.(id) <- set) !target_acc;
  { graph = guide; targets }

(* Trusted constructor for the incremental maintainer (lib/incr), which
   re-derives the canonical numbering itself; [build]'s invariants
   (deterministic graph, one target set per node) are the caller's
   responsibility. *)
let make graph targets =
  if Array.length targets <> Graph.n_nodes graph then
    invalid_arg "Dataguide.make: one target set per guide node";
  { graph; targets }

let graph dg = dg.graph
let targets dg u = dg.targets.(u)
let n_nodes dg = Graph.n_nodes dg.graph

let follow dg path =
  let rec go u = function
    | [] -> Some u
    | l :: rest -> (
      match
        List.find_opt (fun (l', _) -> Label.equal l l') (Graph.labeled_succ dg.graph u)
      with
      | Some (_, v) -> go v rest
      | None -> None)
  in
  go (Graph.root dg.graph) path

let find dg path =
  match follow dg path with
  | Some u -> targets dg u
  | None -> []

(* ------------------------------------------------------------------ *)
(* Canonical serialization (persistent store segments)                  *)
(* ------------------------------------------------------------------ *)

module B = Ssd_storage.Bytesio
module Codec = Ssd_storage.Codec

let magic = "SSDU"

(* The guide graph is embedded as a length-prefixed {!Codec} blob
   (deterministic: [build] is), followed by the per-guide-node target
   sets, each sorted. *)
let to_bytes dg =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  let gbytes = Codec.encode dg.graph in
  B.put_varint buf (Bytes.length gbytes);
  Buffer.add_bytes buf gbytes;
  B.put_varint buf (Array.length dg.targets);
  Array.iter
    (fun nodes ->
      let nodes = List.sort_uniq compare nodes in
      B.put_varint buf (List.length nodes);
      List.iter (B.put_varint buf) nodes)
    dg.targets;
  Buffer.to_bytes buf

let of_bytes data =
  let r = B.reader data in
  B.expect_magic r magic;
  let glen = B.get_varint r in
  if glen < 0 || glen > B.remaining r then
    B.corrupt ~offset:r.B.pos
      ~expected:(Printf.sprintf "a guide blob within the %d bytes left" (B.remaining r))
      ~found:(string_of_int glen);
  let graph = Codec.decode (Bytes.sub r.B.data r.B.pos glen) in
  r.B.pos <- r.B.pos + glen;
  let n = B.get_varint r in
  if n <> Graph.n_nodes graph then
    B.corrupt ~offset:r.B.pos
      ~expected:(Printf.sprintf "one target set per guide node (%d)" (Graph.n_nodes graph))
      ~found:(string_of_int n);
  let targets = Array.make n [] in
  for i = 0 to n - 1 do
    let k = B.get_varint r in
    B.check_count r ~what:"a target-set size" ~unit_bytes:1 k;
    let nodes = ref [] in
    for _ = 1 to k do
      nodes := B.get_varint r :: !nodes
    done;
    targets.(i) <- List.rev !nodes
  done;
  B.expect_end r;
  { graph; targets }

let paths dg ~max_len =
  let out = ref [] in
  let rec go u prefix len =
    out := List.rev prefix :: !out;
    if len < max_len then
      List.iter (fun (l, v) -> go v (l :: prefix) (len + 1)) (Graph.labeled_succ dg.graph u)
  in
  go (Graph.root dg.graph) [] 0;
  List.rev !out
