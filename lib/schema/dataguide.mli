(** Strong DataGuides (Goldman & Widom, 1997; section 5 of the paper).

    A DataGuide is a concise, accurate summary of a data graph: every
    label path from the data root occurs exactly once in the guide, and
    every guide path occurs in the data.  It is the determinization
    (subset construction) of the data graph, with each guide node
    annotated by its {e target set} — the data nodes that its path
    reaches.  Guides drive query formulation (browsing the structure
    without a schema) and optimization (pruning regular path queries,
    experiments E2/E8). *)

type t

val build : Ssd.Graph.t -> t

(** Trusted constructor from a deterministic guide graph and its
    per-node target sets (one per guide node, else [Invalid_argument]).
    Used by the incremental maintainer (lib/incr), which reproduces
    [build]'s canonical numbering itself. *)
val make : Ssd.Graph.t -> int list array -> t

(** The guide as a plain graph (deterministic: no node has two equal
    outgoing labels). *)
val graph : t -> Ssd.Graph.t

(** Data nodes reached by the guide node's path. *)
val targets : t -> int -> int list

(** Follow a label path through the guide; [None] if the path does not
    occur in the data, otherwise the guide node. *)
val follow : t -> Ssd.Label.t list -> int option

(** Target set of a path: the answer to an exact path query, by guide
    lookup instead of data traversal. *)
val find : t -> Ssd.Label.t list -> int list

val n_nodes : t -> int

(** All label paths of the guide up to the given length — the structure
    summary shown to a browsing user. *)
val paths : t -> max_len:int -> Ssd.Label.t list list

(** Canonical bytes: the guide graph as a {!Ssd_storage.Codec} blob plus
    sorted target sets.  Guides of the same data serialize identically. *)
val to_bytes : t -> bytes

(** Raises [Ssd_storage.Bytesio.Corrupt] on malformed input. *)
val of_bytes : bytes -> t
