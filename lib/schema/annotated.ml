(* Cardinality-annotated DataGuides: the statistics catalog behind the
   cost-based planner and the lint cardinality pass.  See annotated.mli. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred
module Regex = Ssd_automata.Regex
module Nfa = Ssd_automata.Nfa
module Product = Ssd_automata.Product

module Label_map = Map.Make (struct
  type t = Label.t

  let compare = Label.compare
end)

type t = {
  guide : Dataguide.t;
  card : int array; (* per guide node: |targets| *)
  fmax : int Label_map.t array; (* per guide node, per label: max fan-out *)
  stats : Ssd_index.Stats.t;
  vindex : Ssd_index.Value_index.t; (* per-label edge histogram *)
}

(* Annotate from parts the caller already has — the incremental
   maintainer (lib/incr) keeps the guide and value index current across
   updates, so only the per-node annotations are re-derived here. *)
let of_parts g guide ~stats ~vindex =
  let n = Dataguide.n_nodes guide in
  let card = Array.init n (fun u -> List.length (Dataguide.targets guide u)) in
  let fmax = Array.make n Label_map.empty in
  for u = 0 to n - 1 do
    (* For each data node in the target set, count its outgoing edges per
       label (parallel edges count — the evaluator follows each), then
       keep the per-label maximum over the set. *)
    List.iter
      (fun d ->
        let counts =
          List.fold_left
            (fun m (l, _) ->
              Label_map.update l
                (fun o -> Some (1 + Option.value ~default:0 o))
                m)
            Label_map.empty (Graph.labeled_succ g d)
        in
        fmax.(u) <-
          Label_map.union (fun _ a b -> Some (max a b)) fmax.(u) counts)
      (Dataguide.targets guide u)
  done;
  { guide; card; fmax; stats; vindex }

let of_guide g guide =
  of_parts g guide ~stats:(Ssd_index.Stats.compute g)
    ~vindex:(Ssd_index.Value_index.build g)

let build g = of_guide g (Dataguide.build g)
let guide t = t.guide
let stats t = t.stats
let card t u = t.card.(u)

let fmax t u l =
  Option.value ~default:0 (Label_map.find_opt l t.fmax.(u))

let label_count t l = List.length (Ssd_index.Value_index.find t.vindex l)

let labels t =
  (* Distinct labels present in the guide (= labels present in the data). *)
  let g = Dataguide.graph t.guide in
  let acc = ref [] in
  for u = 0 to Graph.n_nodes g - 1 do
    List.iter (fun (l, _) -> acc := l :: !acc) (Graph.labeled_succ g u)
  done;
  List.sort_uniq Label.compare !acc

let top_labels t ~k =
  (* The histogram lives in the value index; Stats.top_labels would
     rescan the data graph, which we no longer hold. *)
  let all =
    List.filter_map
      (fun l -> match label_count t l with 0 -> None | c -> Some (l, c))
      (labels t)
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k sorted

(* ------------------------------------------------------------------ *)
(* Frontier estimation                                                 *)
(* ------------------------------------------------------------------ *)

type frontier = (int * float) list

let start t =
  let root = Graph.root (Dataguide.graph t.guide) in
  [ (root, 1.0) ]

let normalize acc =
  Hashtbl.fold (fun v c l -> (v, c) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let step_pred t fr p =
  let g = Dataguide.graph t.guide in
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (u, c) ->
      List.iter
        (fun (l, v) ->
          if Lpred.matches p l then begin
            let f = float_of_int (fmax t u l) in
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc v) in
            Hashtbl.replace acc v (prev +. (c *. f))
          end)
        (Graph.labeled_succ g u))
    fr;
  normalize acc

let cyclic_from t starts =
  (* Is any guide cycle reachable from [starts]?  Colored DFS. *)
  let g = Dataguide.graph t.guide in
  let n = Graph.n_nodes g in
  let color = Array.make n 0 in
  (* 0 white, 1 on stack, 2 done *)
  let cyclic = ref false in
  let rec visit u =
    if color.(u) = 1 then cyclic := true
    else if color.(u) = 0 then begin
      color.(u) <- 1;
      List.iter (fun (_, v) -> visit v) (Graph.labeled_succ g u);
      color.(u) <- 2
    end
  in
  List.iter visit starts;
  !cyclic

let rec regex_recursive = function
  | Regex.Star r | Regex.Plus r -> not (Regex.is_void r)
  | Regex.Void | Regex.Eps | Regex.Atom _ -> false
  | Regex.Seq (a, b) | Regex.Alt (a, b) ->
    regex_recursive a || regex_recursive b
  | Regex.Opt r -> regex_recursive r

let step_regex t fr re =
  let g = Dataguide.graph t.guide in
  let nfa = Nfa.of_regex re in
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (u, c) ->
      (* The evaluator dedups regex results to data-node sets per
         environment, so each incoming pair contributes at most
         card(v) pairs at each accepting guide node v. *)
      let accepted = Product.accepting_nodes_from g nfa ~starts:[ u ] in
      List.iter
        (fun v ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc v) in
          Hashtbl.replace acc v (prev +. (c *. float_of_int t.card.(v))))
        accepted)
    fr;
  let unbounded = regex_recursive re && cyclic_from t (List.map fst fr) in
  (normalize acc, unbounded)

let total fr = List.fold_left (fun s (_, c) -> s +. c) 0.0 fr
let nodes fr = List.map fst fr

let region_card t starts =
  (* Sum of target-set sizes over every guide node reachable from
     [starts] — the size of the data region a regex traversal from
     these positions can touch, hence its work estimate. *)
  let g = Dataguide.graph t.guide in
  let n = Graph.n_nodes g in
  let seen = Array.make n false in
  let acc = ref 0.0 in
  let rec visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      acc := !acc +. float_of_int t.card.(u);
      List.iter (fun (_, v) -> visit v) (Graph.labeled_succ g u)
    end
  in
  List.iter visit starts;
  !acc
