(** Graph schemas.

    Section 5, after Buneman–Davidson–Fernandez–Suciu (ICDT'97): "a schema
    is defined as a graph whose edges are labeled with predicates and the
    property of simulation is used to describe the relationship between
    data and schema."  Unlike a conventional schema this only places
    {e loose} constraints: data conforms if every edge it has is allowed,
    not if every allowed edge is present.

    Concrete syntax — the data syntax with predicates for labels:
    {v
      &s {entry: {movie: {title: #string,
                          cast: {_ : *s}},
                  tvshow: {title: #string}}}
    v}
    ([&id]/[*id] create the cyclic schemas that describe recursive data,
    e.g. ACeDB's trees of arbitrary depth.) *)

type t

exception Parse_error of string

(** {1 Construction} *)

module Builder : sig
  type schema := t
  type t

  val create : unit -> t
  val add_node : t -> int
  val add_edge : t -> int -> Ssd_automata.Lpred.t -> int -> unit
  val set_root : t -> int -> unit
  val finish : t -> schema
end

val parse : string -> t

val root : t -> int
val n_nodes : t -> int
val succ : t -> int -> (Ssd_automata.Lpred.t * int) list

(** [step s nodes p] — schema nodes reachable from [nodes] along one
    edge whose predicate is {!Ssd_automata.Lpred.compatible} with the
    query predicate [p].  The frontier-advance primitive of schema-aware
    path satisfiability: an empty result proves the step dead. *)
val step : t -> int list -> Ssd_automata.Lpred.t -> int list
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Conformance} *)

(** [conforms g s]: is the data root simulated by the schema root?  This
    is the paper's data/schema relationship. *)
val conforms : Ssd.Graph.t -> t -> bool

(** The full maximal simulation: for each data node, the schema nodes that
    simulate it.  Used for classification ("which schema class is this
    object?") and for query pruning. *)
val classify : Ssd.Graph.t -> t -> int list array

(** Nodes of the data graph that fail to be simulated by any schema node —
    the diagnostic for non-conforming data. *)
val violations : Ssd.Graph.t -> t -> int list
