module Graph = Ssd.Graph
module Pool = Ssd_par.Pool

(* The product searches below run level-synchronous BFS: expand the whole
   frontier, then merge the discovered pairs, then recurse.  A FIFO queue
   processes pairs in exactly level order, so this visits the same pairs
   as the classic queue loop — and the frontier expansion is pure
   (graph/NFA reads only), so it can run across the domain pool.  The
   merge happens on the calling domain in frontier order, which keeps the
   discovered set independent of scheduling and of the jobs count. *)

(* Expand one level: item [i]'s successor pairs, in the same
   (edge-outer, move-inner) order the sequential loop pushed them. *)
let expand_level g nfa closures frontier =
  Pool.map_range (Array.length frontier) (fun i ->
      let u, q = frontier.(i) in
      let moves = nfa.Nfa.trans.(q) in
      if moves = [] then []
      else
        List.concat_map
          (fun (l, v) ->
            List.concat_map
              (fun (p, q') ->
                if Lpred.matches p l then List.map (fun q'' -> (v, q'')) closures.(q')
                else [])
              moves)
          (Graph.labeled_succ g u))

let run_pairs g nfa ~starts =
  (* BFS over (node, nfa state) pairs, NFA ε-closure applied eagerly
     (closures precomputed once). *)
  let closures = Nfa.closures nfa in
  let seen = Hashtbl.create 256 in
  let next = ref [] in
  let push u q =
    if not (Hashtbl.mem seen (u, q)) then begin
      Hashtbl.add seen (u, q) ();
      next := (u, q) :: !next
    end
  in
  let start_states = Nfa.start_set nfa in
  List.iter (fun u -> List.iter (push u) start_states) starts;
  while !next <> [] do
    let frontier = Array.of_list (List.rev !next) in
    next := [];
    let succs = expand_level g nfa closures frontier in
    Array.iter (List.iter (fun (v, q) -> push v q)) succs
  done;
  seen

let accepting_of_pairs nfa pairs =
  Hashtbl.fold (fun (u, q) () acc -> if nfa.Nfa.accept.(q) then u :: acc else acc) pairs []
  |> List.sort_uniq compare

let accepting_nodes g nfa =
  accepting_of_pairs nfa (run_pairs g nfa ~starts:[ Graph.root g ])

let accepting_nodes_from g nfa ~starts = accepting_of_pairs nfa (run_pairs g nfa ~starts)

let n_pairs g nfa = Hashtbl.length (run_pairs g nfa ~starts:[ Graph.root g ])

(* Like [run_pairs], but also collect the labels of edges the live
   product actually crosses — the statically-reachable label set the
   lint pass hands to the optimizer. *)
let reach g nfa ~starts =
  let closures = Nfa.closures nfa in
  let seen = Hashtbl.create 256 in
  let labels = Hashtbl.create 32 in
  let next = ref [] in
  let push u q =
    if not (Hashtbl.mem seen (u, q)) then begin
      Hashtbl.add seen (u, q) ();
      next := (u, q) :: !next
    end
  in
  let start_states = Nfa.start_set nfa in
  List.iter (fun u -> List.iter (push u) start_states) starts;
  while !next <> [] do
    let frontier = Array.of_list (List.rev !next) in
    next := [];
    (* Workers return (successor pairs, crossed labels) per item; both
       are merged here, on the calling domain, in frontier order. *)
    let expanded =
      Pool.map_range (Array.length frontier) (fun i ->
          let u, q = frontier.(i) in
          let moves = nfa.Nfa.trans.(q) in
          if moves = [] then ([], [])
          else
            List.fold_left
              (fun (pairs, crossed) (l, v) ->
                List.fold_left
                  (fun (pairs, crossed) (p, q') ->
                    if Lpred.matches p l then
                      ( List.rev_append
                          (List.rev_map (fun q'' -> (v, q'')) closures.(q'))
                          pairs,
                        l :: crossed )
                    else (pairs, crossed))
                  (pairs, crossed) moves)
              ([], []) (Graph.labeled_succ g u)
            |> fun (pairs, crossed) -> (List.rev pairs, crossed))
    in
    Array.iter
      (fun (pairs, crossed) ->
        List.iter (fun l -> Hashtbl.replace labels l ()) crossed;
        List.iter (fun (v, q) -> push v q) pairs)
      expanded
  done;
  let accepted =
    Hashtbl.fold (fun (u, q) () acc -> if nfa.Nfa.accept.(q) then u :: acc else acc) seen []
    |> List.sort_uniq compare
  in
  let crossed =
    Hashtbl.fold (fun l () acc -> l :: acc) labels [] |> List.sort_uniq Ssd.Label.compare
  in
  (accepted, crossed)

let witness g nfa target =
  (* BFS with parent pointers; stops at the first accepting pair on
     [target]. *)
  let closures = Nfa.closures nfa in
  let parent = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push key v =
    if not (Hashtbl.mem parent key) then begin
      Hashtbl.add parent key v;
      Queue.push key queue
    end
  in
  List.iter (fun q -> push (Graph.root g, q) None) (Nfa.start_set nfa);
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let ((u, q) as key) = Queue.pop queue in
    if u = target && nfa.Nfa.accept.(q) then found := Some key
    else
      List.iter
        (fun (l, v) ->
          List.iter
            (fun (p, q') ->
              if Lpred.matches p l then
                List.iter (fun q'' -> push (v, q'') (Some (key, l))) closures.(q'))
            nfa.Nfa.trans.(q))
        (Graph.labeled_succ g u)
  done;
  match !found with
  | None -> None
  | Some key ->
    let rec unwind key acc =
      match Hashtbl.find parent key with
      | None -> acc
      | Some (prev, l) -> unwind prev (l :: acc)
    in
    Some (unwind key [])

let alphabet g =
  Graph.fold_labeled_edges (fun acc _ l _ -> l :: acc) [] g
  |> List.sort_uniq Ssd.Label.compare

let accepting_nodes_dfa g dfa =
  let seen = Hashtbl.create 256 in
  let answers = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push u s =
    if not (Hashtbl.mem seen (u, s)) then begin
      Hashtbl.add seen (u, s) ();
      Queue.push (u, s) queue
    end
  in
  push (Graph.root g) (Dfa.start dfa);
  while not (Queue.is_empty queue) do
    let u, s = Queue.pop queue in
    if Dfa.is_accept dfa s then Hashtbl.replace answers u ();
    List.iter
      (fun (l, v) ->
        match Dfa.step dfa s l with
        | Some s' -> push v s'
        | None -> ())
      (Graph.labeled_succ g u)
  done;
  Hashtbl.fold (fun u () acc -> u :: acc) answers [] |> List.sort_uniq compare

let accepting_nodes_deriv g r =
  (* Memoized search over (node, derivative) pairs.  The derivative space
     of a regex is finite up to the similarity rules applied by the smart
     constructors, so this terminates on cyclic graphs. *)
  let seen = Hashtbl.create 256 in
  let answers = Hashtbl.create 64 in
  let rec go u r =
    if r <> Regex.Void && not (Hashtbl.mem seen (u, r)) then begin
      Hashtbl.add seen (u, r) ();
      if Regex.nullable r then Hashtbl.replace answers u ();
      List.iter (fun (l, v) -> go v (Regex.deriv r l)) (Graph.labeled_succ g u)
    end
  in
  go (Graph.root g) r;
  Hashtbl.fold (fun u () acc -> u :: acc) answers [] |> List.sort_uniq compare
