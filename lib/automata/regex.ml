module Label = Ssd.Label

type t =
  | Void
  | Eps
  | Atom of Lpred.t
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

exception Parse_error of string

(* Smart constructors normalize up to associativity, commutativity and
   idempotence of alternation (plus associativity of sequencing).  This is
   Brzozowski's similarity: it guarantees only finitely many distinct
   derivatives exist, which the graph evaluators rely on to terminate on
   cyclic data. *)

let rec seq a b =
  match a, b with
  | Void, _ | _, Void -> Void
  | Eps, r | r, Eps -> r
  | Seq (x, y), b -> seq x (seq y b)
  | a, b -> Seq (a, b)

let alt a b =
  let rec leaves r acc =
    match r with
    | Alt (x, y) -> leaves x (leaves y acc)
    | Void -> acc
    | r -> r :: acc
  in
  match List.sort_uniq Stdlib.compare (leaves a (leaves b [])) with
  | [] -> Void
  | first :: rest -> List.fold_left (fun acc r -> Alt (acc, r)) first rest

let star = function
  | Void | Eps -> Eps
  | Star _ as r -> r
  | r -> Star r

let rec nullable = function
  | Void -> false
  | Eps -> true
  | Atom _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ -> true
  | Plus a -> nullable a
  | Opt _ -> true

(* Structural language emptiness: does the regex match no word at all?
   Atoms are treated as non-empty (predicate satisfiability is the
   product's job), so this only catches uses of Void. *)
let rec is_void = function
  | Void -> true
  | Eps | Atom _ -> false
  | Seq (a, b) -> is_void a || is_void b
  | Alt (a, b) -> is_void a && is_void b
  | Star _ | Opt _ -> false (* match the empty word *)
  | Plus a -> is_void a

let rec deriv r l =
  match r with
  | Void | Eps -> Void
  | Atom p -> if Lpred.matches p l then Eps else Void
  | Seq (a, b) ->
    let da = seq (deriv a l) b in
    if nullable a then alt da (deriv b l) else da
  | Alt (a, b) -> alt (deriv a l) (deriv b l)
  | Star a -> seq (deriv a l) (star a)
  | Plus a -> seq (deriv a l) (star a)
  | Opt a -> deriv a l

let matches r word = nullable (List.fold_left deriv r word)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp fmt = function
  (* no dedicated literals in the concrete syntax; print language-equal
     parseable forms: ~_ matches nothing, (~_)* only the empty word *)
  | Void -> Format.pp_print_string fmt "~_"
  | Eps -> Format.pp_print_string fmt "(~_)*"
  | Atom p -> Lpred.pp fmt p
  | Seq (a, b) -> Format.fprintf fmt "%a.%a" pp_tight a pp_tight b
  | Alt (a, b) -> Format.fprintf fmt "%a | %a" pp a pp b
  | Star a -> Format.fprintf fmt "%a*" pp_tight a
  | Plus a -> Format.fprintf fmt "%a+" pp_tight a
  | Opt a -> Format.fprintf fmt "%a?" pp_tight a

and pp_tight fmt r =
  match r with
  | Alt _ | Seq _ -> Format.fprintf fmt "(%a)" pp r
  | _ -> pp fmt r

let to_string r = Format.asprintf "%a" pp r

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tbar
  | Tdot
  | Tstar
  | Tplus
  | Tquestion
  | Tlparen
  | Trparen
  | Ttilde
  | Tamp
  | Tunderscore
  | Thash of string
  | Tcmp of string (* "<" "<=" ">" ">=" *)
  | Tfun of string (* startswith / contains *)
  | Tlabel of Label.t
  | Teof

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let lex_string () =
    (* cursor on opening quote *)
    incr pos;
    let buf = Buffer.create 8 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' when !pos + 1 < n ->
          (match src.[!pos + 1] with
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | c -> Buffer.add_char buf c);
          pos := !pos + 2;
          loop ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let lex_ident () =
    let start = !pos in
    while !pos < n && Label.is_ident_char src.[!pos] do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '|' ->
      incr pos;
      push Tbar
    | '.' ->
      incr pos;
      push Tdot
    | '*' ->
      incr pos;
      push Tstar
    | '+' ->
      incr pos;
      push Tplus
    | '?' ->
      incr pos;
      push Tquestion
    | '(' ->
      incr pos;
      push Tlparen
    | ')' ->
      incr pos;
      push Trparen
    | '~' ->
      incr pos;
      push Ttilde
    | '&' ->
      incr pos;
      push Tamp
    | '<' ->
      if !pos + 1 < n && src.[!pos + 1] = '=' then begin
        pos := !pos + 2;
        push (Tcmp "<=")
      end
      else begin
        incr pos;
        push (Tcmp "<")
      end
    | '>' ->
      if !pos + 1 < n && src.[!pos + 1] = '=' then begin
        pos := !pos + 2;
        push (Tcmp ">=")
      end
      else begin
        incr pos;
        push (Tcmp ">")
      end
    | '#' ->
      incr pos;
      push (Thash (lex_ident ()))
    | '"' -> push (Tlabel (Label.Str (lex_string ())))
    | '-' | '0' .. '9' ->
      let start = !pos in
      let numchar c = (c >= '0' && c <= '9') || c = '-' || c = 'e' || c = 'E' in
      (* '.' is concatenation, so float literals are not lexable here;
         use a fraction-free mantissa with an exponent if needed. *)
      while !pos < n && numchar src.[!pos] do
        incr pos
      done;
      let s = String.sub src start (!pos - start) in
      (match int_of_string_opt s with
       | Some i -> push (Tlabel (Label.Int i))
       | None ->
         (match float_of_string_opt s with
          | Some f -> push (Tlabel (Label.Float f))
          | None -> fail ("bad number " ^ s)))
    | c when c = '_' && (!pos + 1 >= n || not (Label.is_ident_char src.[!pos + 1])) ->
      incr pos;
      push Tunderscore
    | c when Label.is_ident_start c ->
      let id = lex_ident () in
      (match id with
       | "true" -> push (Tlabel (Label.Bool true))
       | "false" -> push (Tlabel (Label.Bool false))
       | "startswith" | "contains" -> push (Tfun id)
       | _ -> push (Tlabel (Label.Sym id)))
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev (Teof :: !toks)

type parser_state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t

let shift st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok msg =
  if peek st = tok then shift st else raise (Parse_error msg)

let parse_pred_arg st fname =
  expect st Tlparen (fname ^ " expects '('");
  let s =
    match peek st with
    | Tlabel (Label.Str s) ->
      shift st;
      s
    | _ -> raise (Parse_error (fname ^ " expects a string argument"))
  in
  expect st Trparen (fname ^ " expects ')'");
  s

let rec parse_pred_factor st =
  match peek st with
  | Ttilde -> (
    shift st;
    (* ~(p & q) and ~(p) are predicate-level parentheses *)
    match peek st with
    | Tlparen ->
      shift st;
      let p = parse_pred_inner st in
      expect st Trparen "expected ')' closing ~(...)";
      Lpred.Not p
    | _ -> Lpred.Not (parse_pred_factor st))
  | Tunderscore ->
    shift st;
    Lpred.Any
  | Thash t ->
    shift st;
    Lpred.Of_type t
  | Tfun "startswith" ->
    shift st;
    Lpred.Starts_with (parse_pred_arg st "startswith")
  | Tfun "contains" ->
    shift st;
    Lpred.Contains (parse_pred_arg st "contains")
  | Tcmp op ->
    shift st;
    let l =
      match peek st with
      | Tlabel l ->
        shift st;
        l
      | _ -> raise (Parse_error ("comparison " ^ op ^ " expects a label"))
    in
    (match op with
     | "<" -> Lpred.Lt l
     | "<=" -> Lpred.Le l
     | ">" -> Lpred.Gt l
     | _ -> Lpred.Ge l)
  | Tlabel l ->
    shift st;
    Lpred.Exact l
  | _ -> raise (Parse_error "expected a label predicate")

and parse_pred_inner st =
  let rec conj acc =
    if peek st = Tamp then begin
      shift st;
      conj (Lpred.And (acc, parse_pred_factor st))
    end
    else acc
  in
  conj (parse_pred_factor st)

let parse_pred = parse_pred_inner

let rec parse_alt st =
  let left = parse_seq st in
  if peek st = Tbar then begin
    shift st;
    Alt (left, parse_alt st)
  end
  else left

and parse_seq st =
  let left = parse_postfix st in
  if peek st = Tdot then begin
    shift st;
    Seq (left, parse_seq st)
  end
  else left

and parse_postfix st =
  let r = ref (parse_prim st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Tstar ->
      shift st;
      r := Star !r
    | Tplus ->
      shift st;
      r := Plus !r
    | Tquestion ->
      shift st;
      r := Opt !r
    | _ -> continue := false
  done;
  !r

and parse_prim st =
  match peek st with
  | Tlparen ->
    shift st;
    let r = parse_alt st in
    expect st Trparen "expected ')'";
    r
  | _ -> Atom (parse_pred st)

let parse src =
  let st = { toks = tokenize src } in
  let r = parse_alt st in
  expect st Teof "trailing input after regular expression";
  r
