(** Label predicates: the atoms of path regular expressions.

    Section 3 of the paper argues that path constraints need more than
    label equality — e.g. "paths from a Movie edge down to an Allen edge
    {e not} containing another Movie edge", or the browsing queries of
    section 1.3 ("attribute name that starts with "act"", "integers greater
    than 2^16").  Predicates are also what schema edges carry in section 5.

    Concrete syntax (used by the regex and schema parsers):
    {v
      _                 any label
      Movie  "x"  42    exact label
      #int #float #string #bool #symbol     type test
      startswith("act") contains("as")      text tests (on Sym and Str)
      > 65536   >= x   < x   <= x           order tests (numeric labels)
      ~p                negation
      p & q    p | q    conjunction / disjunction
    v} *)

type t =
  | Any
  | Exact of Ssd.Label.t
  | Of_type of string (** one of int, float, string, bool, symbol *)
  | Starts_with of string
  | Contains of string
  | Lt of Ssd.Label.t
  | Le of Ssd.Label.t
  | Gt of Ssd.Label.t
  | Ge of Ssd.Label.t
  | Not of t
  | And of t * t
  | Or of t * t

val matches : t -> Ssd.Label.t -> bool

(** [compatible p q] — may some label satisfy both predicates?
    Conservative: [false] only when the conjunction is provably
    unsatisfiable (e.g. two different exact labels, disjoint type
    tests), [true] whenever unsure.  Used to intersect a query automaton
    with a {e schema} automaton, whose transitions are predicates. *)
val compatible : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Structural equality. *)
val equal : t -> t -> bool
