(** Regular expressions over edge labels.

    These are the "something like regular expressions to constrain paths"
    of section 3.  A regex denotes a set of label words; applied to a data
    graph it constrains root-to-node paths (see {!Product}).

    Concrete syntax, loosest to tightest precedence:
    {v
      r ::= r "|" r            alternation
          | r "." r            concatenation
          | r "*" | r "+" | r "?"
          | atom               a label predicate (see Lpred)
          | "(" r ")"
    v}

    Example from the paper (did "Allen" act in "Casablanca"? — the path
    from the Movie edge must not cross another Movie edge):
    {v  movie . (~movie)* . "Allen"  v} *)

type t =
  | Void (** matches no word *)
  | Eps (** the empty word *)
  | Atom of Lpred.t
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

exception Parse_error of string

val parse : string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Does the regex match a word of labels? (Library-level check used by
    tests; query evaluation goes through {!Nfa}/{!Product}.) *)
val matches : t -> Ssd.Label.t list -> bool

(** Does the regex accept the empty word? *)
val nullable : t -> bool

(** Is the regex's language structurally empty (no word matches,
    whatever the atoms denote)?  True only when [Void] occurs in a
    position that voids the whole language. *)
val is_void : t -> bool

(** Brzozowski derivative by one label — the basis of {!matches} and a
    second, independently-implemented semantics the tests compare the NFA
    against. *)
val deriv : t -> Ssd.Label.t -> t
