module Label = Ssd.Label

type t =
  | Any
  | Exact of Label.t
  | Of_type of string
  | Starts_with of string
  | Contains of string
  | Lt of Label.t
  | Le of Label.t
  | Gt of Label.t
  | Ge of Label.t
  | Not of t
  | And of t * t
  | Or of t * t

let text_of_label = function
  | Label.Sym s | Label.Str s -> Some s
  | Label.Int _ | Label.Float _ | Label.Bool _ -> None

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0

(* Order tests compare within the numeric family only: comparing an Int
   label with 65536 should not accidentally match strings via the label
   total order. *)
let numeric_compare a b =
  match a, b with
  | Label.Int x, Label.Int y -> Some (Stdlib.compare x y)
  | Label.Float x, Label.Float y -> Some (Stdlib.compare x y)
  | Label.Int x, Label.Float y -> Some (Stdlib.compare (float_of_int x) y)
  | Label.Float x, Label.Int y -> Some (Stdlib.compare x (float_of_int y))
  | (Label.Str x, Label.Str y | Label.Sym x, Label.Sym y) -> Some (String.compare x y)
  | _ -> None

let rec matches p l =
  match p with
  | Any -> true
  | Exact l' -> Label.equal l l'
  | Of_type t -> Label.type_name l = t
  | Starts_with prefix ->
    (match text_of_label l with
     | Some s ->
       String.length s >= String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
     | None -> false)
  | Contains needle ->
    (match text_of_label l with
     | Some s -> contains_substring s needle
     | None -> false)
  | Lt bound -> (match numeric_compare l bound with Some c -> c < 0 | None -> false)
  | Le bound -> (match numeric_compare l bound with Some c -> c <= 0 | None -> false)
  | Gt bound -> (match numeric_compare l bound with Some c -> c > 0 | None -> false)
  | Ge bound -> (match numeric_compare l bound with Some c -> c >= 0 | None -> false)
  | Not p -> not (matches p l)
  | And (p, q) -> matches p l && matches q l
  | Or (p, q) -> matches p l || matches q l

(* Conservative satisfiability of a conjunction: [compatible p q] is
   false only when provably no label satisfies both (used when stepping
   a query automaton over a schema, whose edges are predicates, not
   concrete labels).  Any "don't know" answers true, so schema-aware
   dead-path reports never kill a live path. *)
let rec compatible p q =
  match p, q with
  | Any, _ | _, Any -> true
  | Exact l, q -> matches q l
  | p, Exact l -> matches p l
  | Or (a, b), q -> compatible a q || compatible b q
  | p, Or (a, b) -> compatible p a || compatible p b
  | And (a, b), q -> compatible a q && compatible b q
  | p, And (a, b) -> compatible p a && compatible p b
  | Of_type t, Of_type u -> t = u
  | Of_type t, (Starts_with _ | Contains _) | (Starts_with _ | Contains _), Of_type t ->
    t = "string" || t = "symbol"
  | Of_type t, (Lt l | Le l | Gt l | Ge l) | (Lt l | Le l | Gt l | Ge l), Of_type t -> (
    (* order predicates compare within one family (see numeric_compare) *)
    match l with
    | Label.Int _ | Label.Float _ -> t = "int" || t = "float"
    | Label.Str _ -> t = "string"
    | Label.Sym _ -> t = "symbol"
    | Label.Bool _ -> false)
  | Starts_with a, Starts_with b ->
    let n = min (String.length a) (String.length b) in
    String.sub a 0 n = String.sub b 0 n
  | (Lt a | Le a), (Gt b | Ge b) | (Gt b | Ge b), (Lt a | Le a) -> (
    match numeric_compare b a with Some c -> c < 0 | None -> false)
  | Not _, _ | _, Not _ -> true
  | (Starts_with _ | Contains _ | Lt _ | Le _ | Gt _ | Ge _), _ -> true

let rec pp fmt = function
  | Any -> Format.pp_print_string fmt "_"
  | Exact l -> Label.pp fmt l
  | Of_type t -> Format.fprintf fmt "#%s" t
  | Starts_with s -> Format.fprintf fmt "startswith(%s)" (Label.to_string (Label.Str s))
  | Contains s -> Format.fprintf fmt "contains(%s)" (Label.to_string (Label.Str s))
  | Lt l -> Format.fprintf fmt "< %a" Label.pp l
  | Le l -> Format.fprintf fmt "<= %a" Label.pp l
  | Gt l -> Format.fprintf fmt "> %a" Label.pp l
  | Ge l -> Format.fprintf fmt ">= %a" Label.pp l
  | Not p -> Format.fprintf fmt "~(%a)" pp p
  | And (p, q) -> Format.fprintf fmt "(%a & %a)" pp p pp q
  | Or (p, q) -> Format.fprintf fmt "(%a | %a)" pp p pp q

let to_string p = Format.asprintf "%a" pp p

let rec equal a b =
  match a, b with
  | Any, Any -> true
  | Exact x, Exact y -> Label.equal x y
  | Of_type x, Of_type y -> x = y
  | Starts_with x, Starts_with y | Contains x, Contains y -> x = y
  | Lt x, Lt y | Le x, Le y | Gt x, Gt y | Ge x, Ge y -> Label.equal x y
  | Not x, Not y -> equal x y
  | And (x1, x2), And (y1, y2) | Or (x1, x2), Or (y1, y2) -> equal x1 y1 && equal x2 y2
  | ( ( Any | Exact _ | Of_type _ | Starts_with _ | Contains _ | Lt _ | Le _ | Gt _
      | Ge _ | Not _ | And _ | Or _ ),
      _ ) -> false
