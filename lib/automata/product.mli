(** Regular path queries: product traversal of a data graph with an
    automaton.

    This is the standard evaluation strategy for the arbitrary-depth path
    constraints of section 3: explore the reachable pairs (graph node,
    automaton state); a node is an answer iff some reachable pair with it
    is accepting.  Termination on cyclic data is by memoizing the pair
    set — the same idea that makes structural recursion well-defined on
    cycles. *)

(** Nodes of [g] reachable from the root along a path whose label word the
    NFA accepts.  Sorted, duplicate-free. *)
val accepting_nodes : Ssd.Graph.t -> Nfa.t -> int list

(** Same, starting the automaton at each node of [starts] (used by
    decomposed evaluation). *)
val accepting_nodes_from : Ssd.Graph.t -> Nfa.t -> starts:int list -> int list

(** Like {!accepting_nodes_from}, but also return the sorted set of
    labels on edges the live product crosses — the statically-reachable
    label set of the path expression against this graph (used by the
    lint pass and guide-informed pruning). *)
val reach :
  Ssd.Graph.t -> Nfa.t -> starts:int list -> int list * Ssd.Label.t list

(** All reachable (node, closed NFA state-set id) pair count — a size
    diagnostic for the optimization experiments. *)
val n_pairs : Ssd.Graph.t -> Nfa.t -> int

(** [witness g nfa node] is (one of) the accepted label path(s) from the
    root to [node], if any — the answer to "where in the database ...?"
    browsing queries. *)
val witness : Ssd.Graph.t -> Nfa.t -> int -> Ssd.Label.t list option

(** Baseline evaluator for the benchmarks: memoized search over (node,
    regex-derivative) pairs, no precompiled automaton.  Same answers as
    {!accepting_nodes} (property-tested). *)
val accepting_nodes_deriv : Ssd.Graph.t -> Regex.t -> int list

(** Deterministic product: (node, DFA state) pairs — at most one state per
    node per path prefix class, so the pair space is the smallest of the
    three evaluators.  The DFA must have been built over (a superset of)
    the graph's label alphabet; labels outside it reject, which matches
    NFA semantics whenever the alphabet is complete (property-tested). *)
val accepting_nodes_dfa : Ssd.Graph.t -> Dfa.t -> int list

(** The label alphabet of a graph (sorted), for {!Dfa.of_nfa}. *)
val alphabet : Ssd.Graph.t -> Ssd.Label.t list
