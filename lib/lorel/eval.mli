(** Evaluation of Lorel queries over an OEM graph.

    Semantics, following the Lorel description in the tutorial:

    - a path expression denotes a {e set of objects} (graph nodes); [%]
      ranges over any one edge, [#] over any path (evaluated with a
      visited set, so cyclic data terminates);
    - [from p X] ranges [X] over the objects [p] denotes;
    - comparisons are {e existentially} quantified over operand object
      sets and {e coercing}: an object compares through its atomic
      values (the base labels on its outgoing leaf edges, or the edge
      label that reaches it when it is a leaf), strings that look like
      numbers compare numerically, and [like] does substring matching
      after string coercion;
    - [select] builds an OEM result: one [row] object per binding of the
      [from] variables that survives [where], with one edge per select
      item (labeled by its alias or last path label) pointing at the
      {e original} object — object identity is preserved, not copied. *)

(** Runtime failures carry a {!Ssd_diag.t}; the code (SSD401) matches
    the static analyzer's report for the same defect. *)
exception Runtime_error of Ssd_diag.t

(** [eval ?budget ~db q] returns the result graph.  Note the result
    shares no structure with [db] physically (it is re-rooted and gc'd)
    but is bisimilar to the OEM sharing described above.

    A {!Ssd.Budget} is consumed by the [from] range generators only;
    [where] conditions and [select] item paths are always exact.  An
    exhausted budget therefore drops whole rows, never corrupts one: the
    partial result's rows are a subset of the complete result's. *)
val eval : ?budget:Ssd.Budget.t -> db:Ssd.Graph.t -> Ast.query -> Ssd.Graph.t

(** [eval] plus the completeness verdict (see {!Ssd.Budget.outcome}). *)
val eval_outcome :
  budget:Ssd.Budget.t -> db:Ssd.Graph.t -> Ast.query -> Ssd.Graph.t Ssd.Budget.outcome

(** Parse and evaluate. *)
val run : ?budget:Ssd.Budget.t -> db:Ssd.Graph.t -> string -> Ssd.Graph.t

(** The object set a path expression denotes, with [X] etc. resolved from
    the given (variable, node) bindings.  Exposed for tests and the CLI.
    With a budget, the set is a (possibly strict) subset of the denoted
    one. *)
val eval_path :
  ?budget:Ssd.Budget.t ->
  db:Ssd.Graph.t ->
  env:(string * int) list ->
  Ast.path ->
  int list

(** Atomic values of an object: base labels of its leaf edges. *)
val values_of : Ssd.Graph.t -> int -> Ssd.Label.t list
