(** Parser for the Lorel-style concrete syntax.

    {v
      select X.title, X.year as when
      from DB.entry.movie X, X.cast.actor A
      where X.year >= 1942 and A = "Bogart"
    v}

    Path components: identifiers, quoted strings, integers, [%] (any one
    label) and [#] (any path, including the empty one). *)

exception Parse_error of string

(** Byte-offset marks recorded in parse order — one [Mpath] per path
    expression, one [Mvar] per range-variable ident.  {!Lint} walks the
    query in the same order to attach source spans. *)
type mark_kind =
  | Mpath
  | Mvar

type marks = {
  msrc : string;
  items : (mark_kind * int * int) array;
}

val parse : string -> Ast.query

(** [parse] plus the recorded marks. *)
val parse_with_marks : string -> Ast.query * marks

(** Parse a bare path expression (exposed for tests). *)
val parse_path : string -> Ast.path
