(** Cost-based ordering of Lorel [from] ranges.

    Each range's result-set size is bounded over the cardinality-
    annotated DataGuide ({!Ssd_schema.Annotated}); ranges are then
    greedily ordered smallest-first, keeping the relative order of any
    two ranges where one starts at the other's variable or both bind
    the same name (shadowing).  Row {e order} may change; the result
    graph is bisimilar (rows hang off the root under one label). *)

type range_plan = {
  r_index : int; (** position in the original [from] list *)
  r_var : string;
  r_text : string; (** the range's path, printed *)
  r_est : float option;
      (** upper bound on nodes the range binds per environment; [None]
          when the start variable's positions are unknown *)
  r_unbounded : bool; (** a [#] component ranges over a cyclic region *)
}

(** Render a path in concrete syntax ([DB.entry.movie], [X.#.title]). *)
val path_to_string : Ast.path -> string

(** Estimate one path from known guide positions of bound variables:
    (count bound, cyclic-recursion flag, guide frontier reached). *)
val est_path :
  Ssd_schema.Annotated.t ->
  (string * int list) list ->
  Ast.path ->
  float option * bool * int list

(** Per-range plans (in chosen order) and the chosen order as original
    indices. *)
val plan : Ssd_schema.Annotated.t -> Ast.query -> range_plan list * int list

(** The query with its [from] list in the chosen order. *)
val reorder_from : Ssd_schema.Annotated.t -> Ast.query -> Ast.query
