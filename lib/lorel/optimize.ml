(* Statistics-driven ordering of Lorel [from] ranges over the annotated
   DataGuide.  See optimize.mli. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Dataguide = Ssd_schema.Dataguide
module Annotated = Ssd_schema.Annotated
open Ast

module Int_set = Set.Make (Int)

let path_to_string p =
  let comp = function
    | Clabel l -> Label.to_string l
    | Cany -> "%"
    | Cpath -> "#"
  in
  let start = match p.start with None -> "DB" | Some x -> x in
  String.concat "." (start :: List.map comp p.comps)

(* Guide-node sets reachable by a path from known start positions.
   Lorel path evaluation dedups to node sets at every step, so the
   estimate is the total target-set size of the final guide frontier —
   counts never multiply along a path. *)
let est_path ann bound p =
  let g = Dataguide.graph (Annotated.guide ann) in
  let start =
    match p.start with
    | None -> Some [ Graph.root g ]
    | Some x -> List.assoc_opt x bound
  in
  match start with
  | None -> (None, false, [])
  | Some nodes ->
    let fr = ref (Int_set.of_list nodes) in
    let unbounded = ref false in
    List.iter
      (fun comp ->
        match comp with
        | Clabel l ->
          fr :=
            Int_set.fold
              (fun u acc ->
                List.fold_left
                  (fun acc (l', v) ->
                    if Label.equal l l' then Int_set.add v acc else acc)
                  acc (Graph.labeled_succ g u))
              !fr Int_set.empty
        | Cany ->
          fr :=
            Int_set.fold
              (fun u acc ->
                List.fold_left
                  (fun acc (_, v) -> Int_set.add v acc)
                  acc (Graph.labeled_succ g u))
              !fr Int_set.empty
        | Cpath ->
          if Annotated.cyclic_from ann (Int_set.elements !fr) then
            unbounded := true;
          let seen = ref Int_set.empty in
          let rec go u =
            if not (Int_set.mem u !seen) then begin
              seen := Int_set.add u !seen;
              List.iter (fun (_, v) -> go v) (Graph.labeled_succ g u)
            end
          in
          Int_set.iter go !fr;
          fr := !seen)
      p.comps;
    let est =
      Int_set.fold (fun u s -> s +. float_of_int (Annotated.card ann u)) !fr 0.0
    in
    (Some est, !unbounded, Int_set.elements !fr)

type range_plan = {
  r_index : int;
  r_var : string;
  r_text : string;
  r_est : float option;
  r_unbounded : bool;
}

let unknown_mult = 1e9

let plan ann q =
  let ranges = Array.of_list q.from in
  let n = Array.length ranges in
  (* i < j must keep order when j's path starts at i's variable, or they
     bind the same name (the later binding shadows). *)
  let conflict i j =
    let pi, xi = ranges.(i) and pj, xj = ranges.(j) in
    xi = xj || pj.start = Some xi || pi.start = Some xj
  in
  let placed = Array.make n false in
  let bound = ref [] in
  let order = ref [] and plans = ref [] in
  for _ = 1 to n do
    let best = ref None in
    for j = 0 to n - 1 do
      if
        (not placed.(j))
        && not (List.exists (fun i -> i < j && (not placed.(i)) && conflict i j) (List.init n Fun.id))
      then begin
        let p, _ = ranges.(j) in
        let est, _, _ = est_path ann !bound p in
        let key = match est with Some e -> e | None -> unknown_mult in
        match !best with
        | Some (_, bkey) when bkey <= key -> ()
        | _ -> best := Some (j, key)
      end
    done;
    match !best with
    | None -> ()
    | Some (j, _) ->
      placed.(j) <- true;
      let p, x = ranges.(j) in
      let est, ub, positions = est_path ann !bound p in
      bound := (x, positions) :: !bound;
      order := j :: !order;
      plans :=
        {
          r_index = j;
          r_var = x;
          r_text = path_to_string p;
          r_est = est;
          r_unbounded = ub;
        }
        :: !plans
  done;
  (List.rev !plans, List.rev !order)

let reorder_from ann q =
  let _, order = plan ann q in
  let ranges = Array.of_list q.from in
  { q with from = List.map (fun i -> ranges.(i)) order }
