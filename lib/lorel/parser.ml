module Label = Ssd.Label
open Ast

exception Parse_error of string

(* Byte-offset marks recorded in parse order: one [Mpath] per path
   expression, one [Mvar] per range-variable ident.  The lint pass walks
   the query in the same order to attach source spans. *)
type mark_kind =
  | Mpath
  | Mvar

type marks = {
  msrc : string;
  items : (mark_kind * int * int) array;
}

type st = {
  src : string;
  mutable pos : int;
  mutable marks : (mark_kind * int * int) list; (* reversed *)
}

let record st kind start =
  (* trim trailing whitespace the lookahead consumed *)
  let stop = ref st.pos in
  while
    !stop > start
    && match st.src.[!stop - 1] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    decr stop
  done;
  st.marks <- (kind, start, !stop) :: st.marks

let fail st msg =
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < st.pos && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    st.src;
  raise
    (Parse_error
       (Printf.sprintf "line %d, column %d (offset %d): %s" !line
          (st.pos - !bol + 1) st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | _ -> ()

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s msg = if looking_at st s then st.pos <- st.pos + String.length s else fail st msg

let lex_ident st =
  let start = st.pos in
  while
    match peek st with
    | Some c -> Label.is_ident_char c
    | None -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.src start (st.pos - start)

let peek_word st =
  skip_ws st;
  match peek st with
  | Some c when Label.is_ident_start c ->
    let p = st.pos in
    let w = lex_ident st in
    st.pos <- p;
    Some (String.lowercase_ascii w)
  | _ -> None

let eat_keyword st w =
  if peek_word st = Some w then begin
    skip_ws st;
    ignore (lex_ident st);
    true
  end
  else false

let lex_string st =
  eat st "\"" "expected '\"'";
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some c -> Buffer.add_char buf c
       | None -> fail st "unterminated escape");
      st.pos <- st.pos + 1;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let lex_number st =
  let start = st.pos in
  let numchar c = (c >= '0' && c <= '9') || c = '-' || c = 'e' || c = 'E' in
  while (match peek st with Some c -> numchar c | None -> false) do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Label.Int i
  | None -> fail st ("bad integer literal " ^ s)

let keywords = [ "select"; "from"; "where"; "and"; "or"; "not"; "exists"; "as"; "like" ]

let parse_component st =
  skip_ws st;
  match peek st with
  | Some '%' ->
    st.pos <- st.pos + 1;
    Cany
  | Some '#' ->
    st.pos <- st.pos + 1;
    Cpath
  | Some '"' -> Clabel (Label.Str (lex_string st))
  | Some c when c = '-' || (c >= '0' && c <= '9') -> Clabel (lex_number st)
  | Some c when Label.is_ident_start c -> Clabel (Label.Sym (lex_ident st))
  | _ -> fail st "expected a path component"

let parse_path_from st start =
  let comps = ref [] in
  skip_ws st;
  while peek st = Some '.' do
    st.pos <- st.pos + 1;
    comps := parse_component st :: !comps;
    skip_ws st
  done;
  { start; comps = List.rev !comps }

let parse_path_expr st =
  skip_ws st;
  let mark_start = st.pos in
  match peek st with
  | Some c when Label.is_ident_start c ->
    let id = lex_ident st in
    let start = if String.lowercase_ascii id = "db" then None else Some id in
    let path = parse_path_from st start in
    record st Mpath mark_start;
    path
  | _ -> fail st "expected a path expression"

let parse_operand st =
  skip_ws st;
  match peek st with
  | Some '"' -> Olit (Label.Str (lex_string st))
  | Some c when c = '-' || (c >= '0' && c <= '9') ->
    (* numeric literal, possibly float *)
    let start = st.pos in
    let numchar c = (c >= '0' && c <= '9') || c = '-' || c = '.' || c = 'e' || c = 'E' in
    while (match peek st with Some c -> numchar c | None -> false) do
      st.pos <- st.pos + 1
    done;
    let s = String.sub st.src start (st.pos - start) in
    (match int_of_string_opt s with
     | Some i -> Olit (Label.Int i)
     | None ->
       (match float_of_string_opt s with
        | Some f -> Olit (Label.Float f)
        | None -> fail st ("bad numeric literal " ^ s)))
  | Some c when Label.is_ident_start c -> (
    match peek_word st with
    | Some ("true" | "false") ->
      skip_ws st;
      Olit (Label.Bool (lex_ident st = "true"))
    | _ -> Opath (parse_path_expr st))
  | _ -> fail st "expected an operand"

let parse_cmpop st =
  skip_ws st;
  if looking_at st "!=" then (st.pos <- st.pos + 2; Neq)
  else if looking_at st "<>" then (st.pos <- st.pos + 2; Neq)
  else if looking_at st "<=" then (st.pos <- st.pos + 2; Le)
  else if looking_at st ">=" then (st.pos <- st.pos + 2; Ge)
  else if looking_at st "=" then (st.pos <- st.pos + 1; Eq)
  else if looking_at st "<" then (st.pos <- st.pos + 1; Lt)
  else if looking_at st ">" then (st.pos <- st.pos + 1; Gt)
  else if eat_keyword st "like" then Like
  else fail st "expected a comparison operator"

let rec parse_cond st = parse_or st

and parse_or st =
  let left = parse_and st in
  if eat_keyword st "or" then Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_keyword st "and" then And (left, parse_and st) else left

and parse_not st =
  if eat_keyword st "not" then Not (parse_not st) else parse_base st

and parse_base st =
  skip_ws st;
  if eat_keyword st "exists" then Exists (parse_path_expr st)
  else if peek st = Some '(' then begin
    st.pos <- st.pos + 1;
    let c = parse_cond st in
    skip_ws st;
    eat st ")" "expected ')'";
    c
  end
  else begin
    let lhs = parse_operand st in
    let op = parse_cmpop st in
    let rhs = parse_operand st in
    Cmp (op, lhs, rhs)
  end

let parse_select_item st =
  let item = parse_path_expr st in
  let alias = if eat_keyword st "as" then Some (skip_ws st; lex_ident st) else None in
  { item; alias }

let parse_with_marks src =
  let st = { src; pos = 0; marks = [] } in
  if not (eat_keyword st "select") then fail st "query must start with 'select'";
  let select = ref [ parse_select_item st ] in
  skip_ws st;
  while peek st = Some ',' do
    st.pos <- st.pos + 1;
    select := parse_select_item st :: !select;
    skip_ws st
  done;
  let from = ref [] in
  if eat_keyword st "from" then begin
    let range () =
      let p = parse_path_expr st in
      skip_ws st;
      let vstart = st.pos in
      let v = lex_ident st in
      record st Mvar vstart;
      if List.mem (String.lowercase_ascii v) keywords then
        fail st ("range variable clashes with keyword " ^ v);
      (p, v)
    in
    from := [ range () ];
    skip_ws st;
    while peek st = Some ',' do
      st.pos <- st.pos + 1;
      from := range () :: !from;
      skip_ws st
    done
  end;
  let where = if eat_keyword st "where" then Some (parse_cond st) else None in
  skip_ws st;
  if peek st <> None then fail st "trailing input after query";
  ( { select = List.rev !select; from = List.rev !from; where },
    { msrc = src; items = Array.of_list (List.rev st.marks) } )

let parse src = fst (parse_with_marks src)

let parse_path src =
  let st = { src; pos = 0; marks = [] } in
  let p = parse_path_expr st in
  skip_ws st;
  if peek st <> None then fail st "trailing input after path";
  p
