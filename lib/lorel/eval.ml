module Graph = Ssd.Graph
module Label = Ssd.Label
module Budget = Ssd.Budget
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace
open Ast

(* Runtime failures carry a diagnostic under the same code the static
   analyzer reports for the defect (SSD401: unbound range variable). *)
exception Runtime_error of Ssd_diag.t

let runtime_error ~code fmt =
  Printf.ksprintf
    (fun msg -> raise (Runtime_error (Ssd_diag.make Ssd_diag.Error ~code msg)))
    fmt

let () =
  Printexc.register_printer (function
    | Runtime_error d -> Some ("Lorel.Eval.Runtime_error: " ^ Ssd_diag.to_string d)
    | _ -> None)

module Int_set = Set.Make (Int)

(* Execution counters (lib/obs), reported to [Metrics.default]. *)
let m_queries = Metrics.counter "lorel.eval.queries"
let m_path_steps = Metrics.counter "lorel.eval.path_steps"
let m_edges = Metrics.counter "lorel.eval.edges_traversed"
let m_rows = Metrics.counter "lorel.eval.rows_produced"
let t_eval = Metrics.timer "lorel.eval.time"

let succs g u =
  let es = Graph.labeled_succ g u in
  Metrics.add m_edges (List.length es);
  es

(* ------------------------------------------------------------------ *)
(* Path expressions                                                    *)
(* ------------------------------------------------------------------ *)

(* The budget is consumed per node expanded; an exhausted budget makes
   every remaining expansion a no-op, so the denoted object set only
   shrinks — a sound lower bound. *)
let closure b g nodes =
  (* Reflexive-transitive closure over labeled edges (the '#' wildcard);
     visited set makes it total on cycles. *)
  let seen = ref Int_set.empty in
  let rec go u =
    if (not (Int_set.mem u !seen)) && Budget.step b then begin
      seen := Int_set.add u !seen;
      List.iter (fun (_, v) -> go v) (succs g u)
    end
  in
  Int_set.iter go nodes;
  !seen

let step b g nodes comp =
  Metrics.incr m_path_steps;
  match comp with
  | Clabel l ->
    Int_set.fold
      (fun u acc ->
        if Budget.step b then
          List.fold_left
            (fun acc (l', v) -> if Label.equal l l' then Int_set.add v acc else acc)
            acc (succs g u)
        else acc)
      nodes Int_set.empty
  | Cany ->
    Int_set.fold
      (fun u acc ->
        if Budget.step b then
          List.fold_left (fun acc (_, v) -> Int_set.add v acc) acc (succs g u)
        else acc)
      nodes Int_set.empty
  | Cpath -> closure b g nodes

let eval_path ?budget ~db ~env p =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  let start =
    match p.start with
    | None -> Int_set.singleton (Graph.root db)
    | Some x -> (
      match List.assoc_opt x env with
      | Some n -> Int_set.singleton n
      | None -> runtime_error ~code:"SSD401" "unbound range variable %s" x)
  in
  Int_set.elements (List.fold_left (step b db) start p.comps)

let values_of g node =
  List.filter_map
    (fun (l, _) -> if Label.is_sym l then None else Some l)
    (Graph.labeled_succ g node)

(* ------------------------------------------------------------------ *)
(* Coercing comparisons                                                *)
(* ------------------------------------------------------------------ *)

let to_number = function
  | Label.Int i -> Some (float_of_int i)
  | Label.Float f -> Some f
  | Label.Str s -> float_of_string_opt (String.trim s)
  | Label.Bool _ | Label.Sym _ -> None

let to_text = function
  | Label.Str s | Label.Sym s -> s
  | Label.Int i -> string_of_int i
  | Label.Float f -> string_of_float f
  | Label.Bool b -> string_of_bool b

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0

let compare_coerced v1 v2 =
  match to_number v1, to_number v2 with
  | Some f1, Some f2 -> Stdlib.compare f1 f2
  | _ -> String.compare (to_text v1) (to_text v2)

let cmp_values op v1 v2 =
  match op with
  | Eq -> Label.equal v1 v2 || compare_coerced v1 v2 = 0
  | Neq -> not (Label.equal v1 v2 || compare_coerced v1 v2 = 0)
  | Lt -> compare_coerced v1 v2 < 0
  | Le -> compare_coerced v1 v2 <= 0
  | Gt -> compare_coerced v1 v2 > 0
  | Ge -> compare_coerced v1 v2 >= 0
  | Like -> contains_substring (to_text v1) (to_text v2)

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let operand_values ~db ~env = function
  | Olit l -> [ l ]
  | Opath p ->
    let nodes = eval_path ~db ~env p in
    (* An object's comparable values; a node with no atomic value still
       contributes the labels of edges into it?  Lorel compares through
       values only — nodes without atomic values simply never satisfy a
       comparison. *)
    List.concat_map (values_of db) nodes

let rec eval_cond ~db ~env = function
  | Cmp (op, o1, o2) ->
    let vs1 = operand_values ~db ~env o1 in
    let vs2 = operand_values ~db ~env o2 in
    List.exists (fun v1 -> List.exists (fun v2 -> cmp_values op v1 v2) vs2) vs1
  | Exists p -> eval_path ~db ~env p <> []
  | And (c1, c2) -> eval_cond ~db ~env c1 && eval_cond ~db ~env c2
  | Or (c1, c2) -> eval_cond ~db ~env c1 || eval_cond ~db ~env c2
  | Not c -> not (eval_cond ~db ~env c)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let item_label item =
  match item.alias with
  | Some a -> Label.Sym a
  | None -> (
    match List.rev item.item.comps with
    | Clabel l :: _ -> l
    | _ -> (
      match item.item.start with
      | Some x -> Label.Sym x
      | None -> Label.Sym "item"))

let eval ?budget ~db q =
  Metrics.incr m_queries;
  Metrics.time t_eval @@ fun () ->
  Trace.with_span "lorel.eval" @@ fun () ->
  (* Only the [from] generators consume the budget: dropping range
     bindings loses whole rows.  [where] conditions and [select] item
     paths stay exact, so every emitted row is exactly what the
     unbudgeted evaluation would emit for that binding. *)
  let envs =
    Trace.with_span "lorel.from" @@ fun () ->
    List.fold_left
      (fun envs (p, x) ->
        List.concat_map
          (fun env -> List.map (fun n -> (x, n) :: env) (eval_path ?budget ~db ~env p))
          envs)
      [ [] ] q.from
  in
  let envs =
    match q.where with
    | None -> envs
    | Some c ->
      Trace.with_span "lorel.where" @@ fun () ->
      List.filter (fun env -> eval_cond ~db ~env c) envs
  in
  Metrics.add m_rows (List.length envs);
  Trace.annotate "rows" (Trace.Int (List.length envs));
  Trace.with_span "lorel.select" @@ fun () ->
  let b = Graph.Builder.create () in
  let result_root = Graph.Builder.add_node b in
  Graph.Builder.set_root b result_root;
  let db_root = Graph.import_into b db in
  let offset = db_root - Graph.root db in
  let row_sym = Label.Sym "row" in
  List.iter
    (fun env ->
      let row = Graph.Builder.add_node b in
      Graph.Builder.add_edge b result_root row_sym row;
      List.iter
        (fun item ->
          let lbl = item_label item in
          List.iter
            (fun n -> Graph.Builder.add_edge b row lbl (n + offset))
            (eval_path ~db ~env item.item))
        q.select)
    envs;
  Graph.gc (Graph.Builder.finish b)

let eval_outcome ~budget ~db q = Budget.wrap budget (eval ~budget ~db q)

let run ?budget ~db src = eval ?budget ~db (Parser.parse src)
