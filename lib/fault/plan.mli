(** Deterministic fault schedules for the distributed evaluator.

    A plan is a {e seeded, replayable} description of everything that can
    go wrong during a distributed run: message-level faults (drop,
    duplicate, reorder) drawn from a PRNG seeded by [seed], and
    site-level events (crash-restart, slowdown) scheduled explicitly by
    round.  The same plan always injects the same faults into the same
    run — "the network was unlucky" is a reproducible input, not an
    environmental accident.

    Plans parse from the compact CLI spec used by [ssdql dist --faults]:

    {v seed:7,drop:0.2,dup:0.05,reorder:0.1,crash:2@3+4,slow:0@3,ckpt:2 v}

    - [seed:N] — PRNG seed for the probabilistic draws (default 0)
    - [drop:P] — probability a message transmission is lost
    - [dup:P] — probability a delivered message arrives twice
    - [reorder:P] — probability a delivery is deferred one round
    - [ackdrop:P] — probability an acknowledgement is lost (defaults to
      [drop])
    - [crash:S\@R] or [crash:S\@R+D] — site [S] crashes at the start of
      round [R] and restarts [D] rounds later (default [D = 2]) from its
      last checkpoint; repeatable
    - [slow:S\@F] — site [S] does its per-round work [F]× slower
      (inflates the simulated makespan); repeatable
    - [ckpt:C] — sites checkpoint every [C] rounds (default 1)
    - [backoff:exp] or [backoff:fixed\@N] — retransmission backoff policy
      (default exponential, delay doubling per attempt up to {!retry_cap})
    - [rounds:N] — round cap before the run gives up with a
      [Partial (_, Stalled)] answer (default 10000) *)

type backoff =
  | Exponential (** delay doubles per attempt, capped at [retry_cap] *)
  | Fixed of int (** constant delay between retransmissions *)

type crash = {
  site : int;
  at_round : int; (** the site is down from the start of this round... *)
  down_for : int; (** ...for this many rounds, then restarts *)
}

type t = {
  seed : int;
  drop : float;
  duplicate : float;
  reorder : float;
  ack_drop : float;
  crashes : crash list;
  slowdowns : (int * int) list; (** [(site, factor)] *)
  checkpoint_every : int;
  backoff : backoff;
  retry_cap : int; (** maximum backoff delay, in rounds *)
  max_rounds : int;
}

(** The empty plan: no faults, checkpoint every round. *)
val none : t

val is_none : t -> bool

(** [parse spec] parses the comma-separated [key:value] spec above.
    @raise Ssd_diag.Fail with code [SSD541] on a malformed spec. *)
val parse : string -> t

val to_string : t -> string
