type t = {
  plan : Plan.t;
  mutable state : int64;
  mutable drops : int;
  mutable dups : int;
  mutable reorders : int;
  mutable ack_drops : int;
}

let create plan = { plan; state = Int64.of_int (plan.Plan.seed lxor 0x5D15); drops = 0; dups = 0; reorders = 0; ack_drops = 0 }

let plan t = t.plan

(* SplitMix64, same generator family as Ssd_workload.Prng (not depended
   on: fault injection must not entangle with workload generation). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t = Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let draw t p = p > 0. && float t < p

type verdict =
  | Lost
  | Delivered of {
      duplicated : bool;
      deferred : bool;
    }

let transmit t =
  if draw t t.plan.Plan.drop then begin
    t.drops <- t.drops + 1;
    Lost
  end
  else begin
    let duplicated = draw t t.plan.Plan.duplicate in
    let deferred = draw t t.plan.Plan.reorder in
    if duplicated then t.dups <- t.dups + 1;
    if deferred then t.reorders <- t.reorders + 1;
    Delivered { duplicated; deferred }
  end

let ack_lost t =
  let lost = draw t t.plan.Plan.ack_drop in
  if lost then t.ack_drops <- t.ack_drops + 1;
  lost

let crash_at t ~site ~round =
  List.find_opt
    (fun c -> c.Plan.site = site && c.Plan.at_round = round)
    t.plan.Plan.crashes

let slowdown t ~site =
  match List.assoc_opt site t.plan.Plan.slowdowns with
  | Some f -> max 1 f
  | None -> 1

let injected t = (t.drops, t.dups, t.reorders, t.ack_drops)
