type backoff =
  | Exponential
  | Fixed of int

type crash = {
  site : int;
  at_round : int;
  down_for : int;
}

type t = {
  seed : int;
  drop : float;
  duplicate : float;
  reorder : float;
  ack_drop : float;
  crashes : crash list;
  slowdowns : (int * int) list;
  checkpoint_every : int;
  backoff : backoff;
  retry_cap : int;
  max_rounds : int;
}

let none =
  {
    seed = 0;
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    ack_drop = 0.;
    crashes = [];
    slowdowns = [];
    checkpoint_every = 1;
    backoff = Exponential;
    retry_cap = 64;
    max_rounds = 10_000;
  }

let is_none p =
  p.drop = 0. && p.duplicate = 0. && p.reorder = 0. && p.ack_drop = 0.
  && p.crashes = [] && p.slowdowns = []

let bad fmt = Ssd_diag.error ~code:"SSD541" fmt

let prob key s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> p
  | Some _ | None -> bad "fault plan: %s wants a probability in [0,1], got %S" key s

let int_field key s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> bad "fault plan: %s wants an integer, got %S" key s

(* "S@R" or "S@R+D" *)
let parse_crash s =
  let fail () = bad "fault plan: crash wants SITE@ROUND[+DOWN], got %S" s in
  match String.split_on_char '@' s with
  | [ site; rest ] -> (
    let site = match int_of_string_opt site with Some n when n >= 0 -> n | _ -> fail () in
    let at_round, down_for =
      match String.split_on_char '+' rest with
      | [ r ] -> (r, "2")
      | [ r; d ] -> (r, d)
      | _ -> fail ()
    in
    match int_of_string_opt at_round, int_of_string_opt down_for with
    | Some r, Some d when r >= 1 && d >= 1 -> { site; at_round = r; down_for = d }
    | _ -> fail ())
  | _ -> fail ()

let parse_slow s =
  match String.split_on_char '@' s with
  | [ site; factor ] -> (
    match int_of_string_opt site, int_of_string_opt factor with
    | Some s, Some f when s >= 0 && f >= 1 -> (s, f)
    | _ -> bad "fault plan: slow wants SITE@FACTOR, got %S" s)
  | _ -> bad "fault plan: slow wants SITE@FACTOR, got %S" s

let parse_backoff s =
  match String.split_on_char '@' s with
  | [ "exp" ] -> Exponential
  | [ "fixed" ] -> Fixed 1
  | [ "fixed"; d ] -> (
    match int_of_string_opt d with
    | Some d when d >= 1 -> Fixed d
    | _ -> bad "fault plan: backoff:fixed@N wants a positive delay, got %S" d)
  | _ -> bad "fault plan: backoff wants exp or fixed[@N], got %S" s

let parse spec =
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  let explicit_ackdrop = ref false in
  let plan =
    List.fold_left
      (fun p field ->
        match String.index_opt field ':' with
        | None -> bad "fault plan: expected key:value, got %S" field
        | Some i ->
          let key = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          (match key with
          | "seed" -> { p with seed = int_field "seed" v }
          | "drop" -> { p with drop = prob "drop" v }
          | "dup" -> { p with duplicate = prob "dup" v }
          | "reorder" -> { p with reorder = prob "reorder" v }
          | "ackdrop" ->
            explicit_ackdrop := true;
            { p with ack_drop = prob "ackdrop" v }
          | "crash" -> { p with crashes = p.crashes @ [ parse_crash v ] }
          | "slow" -> { p with slowdowns = p.slowdowns @ [ parse_slow v ] }
          | "ckpt" -> (
            match int_of_string_opt v with
            | Some c when c >= 1 -> { p with checkpoint_every = c }
            | _ -> bad "fault plan: ckpt wants a positive interval, got %S" v)
          | "backoff" -> { p with backoff = parse_backoff v }
          | "rounds" -> (
            match int_of_string_opt v with
            | Some n when n >= 1 -> { p with max_rounds = n }
            | _ -> bad "fault plan: rounds wants a positive cap, got %S" v)
          | other -> bad "fault plan: unknown key %S" other))
      none fields
  in
  (* Unless set explicitly, acks are as lossy as the data channel. *)
  if !explicit_ackdrop then plan else { plan with ack_drop = plan.drop }

let to_string p =
  let parts =
    [ Printf.sprintf "seed:%d" p.seed ]
    @ (if p.drop > 0. then [ Printf.sprintf "drop:%g" p.drop ] else [])
    @ (if p.duplicate > 0. then [ Printf.sprintf "dup:%g" p.duplicate ] else [])
    @ (if p.reorder > 0. then [ Printf.sprintf "reorder:%g" p.reorder ] else [])
    @ (if p.ack_drop <> p.drop then [ Printf.sprintf "ackdrop:%g" p.ack_drop ] else [])
    @ List.map
        (fun c -> Printf.sprintf "crash:%d@%d+%d" c.site c.at_round c.down_for)
        p.crashes
    @ List.map (fun (s, f) -> Printf.sprintf "slow:%d@%d" s f) p.slowdowns
    @ (if p.checkpoint_every <> 1 then [ Printf.sprintf "ckpt:%d" p.checkpoint_every ]
       else [])
    @ (match p.backoff with
      | Exponential -> []
      | Fixed d -> [ Printf.sprintf "backoff:fixed@%d" d ])
    @ if p.max_rounds <> none.max_rounds then [ Printf.sprintf "rounds:%d" p.max_rounds ]
      else []
  in
  String.concat "," parts
