(* Seeded storage fault plans — the disk-side sibling of {!Plan} (which
   models the network).  A plan drives the in-memory faulty VFS of the
   persistent store (lib/store): every decision below is drawn from a
   SplitMix64 stream seeded by [seed], so any schedule replays
   bit-for-bit from its spec string.

   Fault model (what a real disk + kernel can do between two fsyncs):
   - [crash_at]: the process dies at the Nth I/O op (pwrite / truncate /
     fsync, counted across all files).  Writes not yet covered by an
     fsync barrier are volatile and may be lost.
   - [torn]: the op the crash lands on, if a write, applies only a
     seeded prefix — a torn sector write.
   - [reorder]: volatile writes survive the crash as an arbitrary seeded
     subset (the drive's write-back cache reordered them within the
     window the missing fsync allowed); without it only a seeded prefix
     of the volatile write sequence survives (an ordered cache losing
     its tail).
   - [bitflip]: each read flips one seeded bit with this probability —
     media corruption that CRCs must catch.
   - [short]: each read/write transfers only a seeded strict prefix with
     this probability — the syscall contract callers must loop over. *)

type t = {
  seed : int;
  crash_at : int option; (* crash at the Nth I/O op, 1-based *)
  torn : bool; (* the crashing write applies a seeded prefix *)
  reorder : bool; (* volatile writes survive as a seeded subset *)
  bitflip : float; (* P(flip one bit) per read *)
  short : float; (* P(short transfer) per read/write *)
}

let none =
  { seed = 0; crash_at = None; torn = false; reorder = false; bitflip = 0.; short = 0. }

let bad fmt = Ssd_diag.error ~code:"SSD541" fmt

let prob key s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> p
  | Some _ | None -> bad "storage fault plan: %s wants a probability in [0,1], got %S" key s

let flag key s =
  match s with
  | "1" | "true" -> true
  | "0" | "false" -> false
  | _ -> bad "storage fault plan: %s wants 0 or 1, got %S" key s

let parse spec =
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  List.fold_left
    (fun p field ->
      match String.index_opt field ':' with
      | None -> bad "storage fault plan: expected key:value, got %S" field
      | Some i -> (
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match key with
        | "seed" -> (
          match int_of_string_opt v with
          | Some n -> { p with seed = n }
          | None -> bad "storage fault plan: seed wants an integer, got %S" v)
        | "crash" -> (
          match int_of_string_opt v with
          | Some n when n >= 1 -> { p with crash_at = Some n }
          | _ -> bad "storage fault plan: crash wants a positive op index, got %S" v)
        | "torn" -> { p with torn = flag "torn" v }
        | "reorder" -> { p with reorder = flag "reorder" v }
        | "bitflip" -> { p with bitflip = prob "bitflip" v }
        | "short" -> { p with short = prob "short" v }
        | other -> bad "storage fault plan: unknown key %S" other))
    none fields

let to_string p =
  String.concat ","
    ([ Printf.sprintf "seed:%d" p.seed ]
    @ (match p.crash_at with Some n -> [ Printf.sprintf "crash:%d" n ] | None -> [])
    @ (if p.torn then [ "torn:1" ] else [])
    @ (if p.reorder then [ "reorder:1" ] else [])
    @ (if p.bitflip > 0. then [ Printf.sprintf "bitflip:%g" p.bitflip ] else [])
    @ if p.short > 0. then [ Printf.sprintf "short:%g" p.short ] else [])

(* ------------------------------------------------------------------ *)
(* Injector: the seeded decision stream                                 *)
(* ------------------------------------------------------------------ *)

type injector = {
  plan : t;
  mutable state : int64;
  mutable ops : int; (* I/O ops seen so far *)
}

let injector plan = { plan; state = Int64.of_int (plan.seed lxor 0xD15C); ops = 0 }

let plan inj = inj.plan
let ops inj = inj.ops

(* SplitMix64, the same generator family as {!Injector} (not shared:
   disk and network schedules must not entangle). *)
let next inj =
  inj.state <- Int64.add inj.state 0x9E3779B97F4A7C15L;
  let z = inj.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float inj = Int64.to_float (Int64.shift_right_logical (next inj) 11) /. 9007199254740992.0

let draw inj p = p > 0. && float inj < p

(* [int inj bound] — uniform in [0, bound). *)
let int inj bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next inj) 1) (Int64.of_int bound))

(* Count one I/O op; [true] iff this op is the crash point. *)
let tick_op inj =
  inj.ops <- inj.ops + 1;
  match inj.plan.crash_at with
  | Some n -> inj.ops = n
  | None -> false

(* Length actually transferred for a request of [len] bytes: a seeded
   strict prefix under a short-transfer fault, else all of it. *)
let transfer_len inj len =
  if len > 1 && draw inj inj.plan.short then 1 + int inj (len - 1) else len

(* Bytes surviving of the write the crash landed on: a seeded prefix
   under [torn], nothing otherwise. *)
let torn_len inj len = if inj.plan.torn then int inj (len + 1) else 0

(* Which of the [n] volatile (un-fsynced) writes pending at the crash
   survive it?  With [reorder] each tosses an independent seeded coin (a
   write-back cache flushing in arbitrary order); otherwise a seeded
   prefix survives (an ordered cache losing its tail). *)
let keep_mask inj ~n =
  if inj.plan.reorder then begin
    (* explicit loop: Array.init's application order is unspecified *)
    let mask = Array.make n false in
    for i = 0 to n - 1 do
      mask.(i) <- draw inj 0.5
    done;
    mask
  end
  else begin
    let cut = int inj (n + 1) in
    Array.init n (fun i -> i < cut)
  end

(* One seeded bit flip on a read of [len] bytes?  Returns the bit index
   to flip, or [None]. *)
let bitflip_at inj len =
  if len > 0 && draw inj inj.plan.bitflip then Some (int inj (len * 8)) else None
