(** The stateful side of a {!Plan}: a seeded PRNG stream plus counters of
    the faults actually injected.

    The distributed round loop consults the injector at every
    transmission and acknowledgement, {e in a deterministic order}
    (sites by index, messages sorted), so a (plan, graph, partition,
    query) quadruple replays to the identical fault history — the basis
    of the determinism property in the test suite. *)

type t

val create : Plan.t -> t

val plan : t -> Plan.t

(** The fate of one message transmission. *)
type verdict =
  | Lost (** dropped in transit; the sender will retransmit *)
  | Delivered of {
      duplicated : bool; (** a second copy arrives alongside the first *)
      deferred : bool; (** delivery slips to the next round (reorder) *)
    }

(** Draw the fate of one transmission (consumes PRNG state). *)
val transmit : t -> verdict

(** Draw the fate of one acknowledgement: [true] = lost. *)
val ack_lost : t -> bool

(** [crash_at t ~site ~round] is the scheduled crash of [site] starting
    exactly at [round], if any (pure; no PRNG state). *)
val crash_at : t -> site:int -> round:int -> Plan.crash option

(** Work multiplier of a site (1 when not slowed). *)
val slowdown : t -> site:int -> int

(** Injected-fault counters so far: drops, duplicates, reorders, lost
    acks. *)
val injected : t -> int * int * int * int
