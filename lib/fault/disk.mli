(** Seeded storage fault plans: crash-at-op, torn final write, volatile
    write reordering, bit-flips on read, and short transfers.  The
    disk-side sibling of {!Plan} (which models the network); drives the
    faulty in-memory VFS behind the persistent store's crash fuzzer.

    Spec strings are comma-separated [key:value] fields:
    [seed:N,crash:N,torn:1,reorder:1,bitflip:P,short:P]. *)

type t = {
  seed : int;
  crash_at : int option;  (** crash at the Nth I/O op, 1-based *)
  torn : bool;  (** the crashing write applies only a seeded prefix *)
  reorder : bool;  (** volatile writes survive as a seeded subset *)
  bitflip : float;  (** probability a read flips one seeded bit *)
  short : float;  (** probability of a short transfer per read/write *)
}

(** No faults at all (seed 0). *)
val none : t

(** Parse a spec string.  Raises [Ssd_diag.Error] (code SSD541) on
    malformed input. *)
val parse : string -> t

(** Round-trips through {!parse}; the replay handle printed on fuzzer
    failures. *)
val to_string : t -> string

(** Deterministic decision stream for one simulated run. *)
type injector

val injector : t -> injector
val plan : injector -> t

(** I/O ops counted so far (monotonic, bumped by {!tick_op}). *)
val ops : injector -> int

(** Count one I/O op; [true] iff this op is the crash point. *)
val tick_op : injector -> bool

(** Bytes actually transferred for a request of [len]: a seeded strict
    prefix under a short-transfer fault, else [len]. *)
val transfer_len : injector -> int -> int

(** Bytes of the crash-point write that reach the medium: a seeded
    prefix under [torn], zero otherwise. *)
val torn_len : injector -> int -> int

(** Survival mask for the [n] volatile writes pending at the crash:
    independent coins under [reorder], a seeded prefix otherwise. *)
val keep_mask : injector -> n:int -> bool array

(** Seeded bit index to flip on a [len]-byte read, if this read is
    selected for corruption. *)
val bitflip_at : injector -> int -> int option
