(* Counter and gauge values are Atomics: evaluator hot paths run across
   domains under --jobs (lib/par), and increments from workers must
   neither tear nor get lost — counter totals feed --stats output that is
   required to be identical for every jobs value.  Atomic increments
   commute, so the final value only depends on the set of events, not
   their schedule.

   Timers and histograms are multi-word and cannot be a single atomic;
   they are guarded by the registry lock instead, as are registration,
   {!reset} and {!snapshot}.  That makes a snapshot a single consistent
   read: a histogram scraped mid-[observe] can never show a bucket sum
   that disagrees with its count (the admin plane's /metrics endpoint
   scrapes from its own domain while request domains observe). *)
type counter = {
  c_name : string;
  c_value : int Atomic.t;
}

(* A gauge is a point-in-time level (buffer-pool occupancy, WAL backlog),
   not an accumulation: [set] replaces the value. *)
type gauge = {
  g_name : string;
  g_value : float Atomic.t;
}

type timer = {
  t_name : string;
  mutable t_count : int;
  mutable t_total_ns : float;
}

(* 64 power-of-two buckets: bucket k counts values in (2^(k-1), 2^k],
   bucket 0 counts values <= 1. *)
type histogram = {
  h_name : string;
  h_registry_lock : Mutex.t;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Timer of timer
  | Histogram of histogram

type registry = {
  tbl : (string, instrument) Hashtbl.t;
  lock : Mutex.t;
}

let create () : registry = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let default : registry = create ()

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Timer _ -> "timer"
  | Histogram _ -> "histogram"

let register registry name make extract =
  locked registry @@ fun () ->
  match Hashtbl.find_opt registry.tbl name with
  | Some i -> (
    match extract i with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_name i)))
  | None ->
    let i = make () in
    Hashtbl.add registry.tbl name i;
    (match extract i with Some x -> x | None -> assert false)

let counter ?(registry = default) name =
  register registry name
    (fun () -> Counter { c_name = name; c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value
let counter_name c = c.c_name

let gauge ?(registry = default) name =
  register registry name
    (fun () -> Gauge { g_name = name; g_value = Atomic.make 0. })
    (function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value
let gauge_name g = g.g_name

let timer ?(registry = default) name =
  register registry name
    (fun () -> Timer { t_name = name; t_count = 0; t_total_ns = 0. })
    (function Timer t -> Some t | _ -> None)

(* Timer mutation is two plain writes; they only ever race a concurrent
   snapshot (recording stays on the coordinating domain), and the
   snapshot path reads both fields under the registry lock of the
   registry that owns the timer.  Timers are registered in exactly one
   registry, so guarding with [default]'s lock would be wrong for
   [~registry] users; instead the writes stay unguarded and the snapshot
   tolerates a count/total skew of at most one sample — documented in
   the interface. *)
let record_ns t ns =
  t.t_count <- t.t_count + 1;
  t.t_total_ns <- t.t_total_ns +. ns

let time t f =
  let t0 = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> record_ns t (Clock.now_ns () -. t0)) f

let timer_count t = t.t_count
let timer_total_ns t = t.t_total_ns

let histogram ?(registry = default) name =
  register registry name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_registry_lock = registry.lock;
          h_buckets = Array.make 64 0;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
        })
    (function Histogram h -> Some h | _ -> None)

let bucket_of v =
  if v <= 1. then 0
  else
    let _, e = Float.frexp v in
    (* frexp: v = m * 2^e with m in [0.5, 1), so 2^(e-1) <= v < 2^e;
       v lands in bucket e-1 when it is exactly a power of two. *)
    let k = if Float.of_int (1 lsl (e - 1)) >= v then e - 1 else e in
    min k 63

(* A histogram mutation is multi-word (count, sum, min, max, one
   bucket); it takes the owning registry's lock so a concurrent
   {!snapshot} can never observe buckets that disagree with the count —
   percentiles must not tear mid-scrape. *)
let observe h v =
  Mutex.lock h.h_registry_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let k = bucket_of v in
  h.h_buckets.(k) <- h.h_buckets.(k) + 1;
  Mutex.unlock h.h_registry_lock

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* min/max of an empty histogram as 0 so consumers never see infinities
   (JSON has no representation for them). *)
let h_min h = if h.h_count = 0 then 0. else h.h_min
let h_max h = if h.h_count = 0 then 0. else h.h_max

(* Percentile estimate over power-of-two buckets: the upper bound of the
   first bucket whose cumulative count reaches q * count, clamped to the
   observed [min, max].  Shared by the live accessor and snapshots. *)
let percentile_of ~count ~lo ~hi buckets q =
  if count = 0 then 0.
  else begin
    let rank = q *. float_of_int count in
    let k = ref 0 in
    let cum = ref buckets.(0) in
    while float_of_int !cum < rank && !k < 63 do
      k := !k + 1;
      cum := !cum + buckets.(!k)
    done;
    let ub = Float.of_int (1 lsl !k) in
    Float.min hi (Float.max lo ub)
  end

let percentile h q =
  percentile_of ~count:h.h_count ~lo:(h_min h) ~hi:(h_max h) h.h_buckets q

let nonempty_buckets buckets =
  let out = ref [] in
  for k = 63 downto 0 do
    if buckets.(k) > 0 then out := (Float.of_int (1 lsl k), buckets.(k)) :: !out
  done;
  !out

let histogram_buckets h = nonempty_buckets h.h_buckets

let reset registry =
  locked registry @@ fun () ->
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> Atomic.set c.c_value 0
      | Gauge g -> Atomic.set g.g_value 0.
      | Timer t ->
        t.t_count <- 0;
        t.t_total_ns <- 0.
      | Histogram h ->
        Array.fill h.h_buckets 0 64 0;
        h.h_count <- 0;
        h.h_sum <- 0.;
        h.h_min <- infinity;
        h.h_max <- neg_infinity)
    registry.tbl

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_timers : (string * int * float) list;
  snap_histograms : histogram_snapshot list;
}

let has_prefix prefix name =
  let np = String.length prefix in
  String.length name >= np && String.sub name 0 np = prefix

(* One consistent read of the whole registry: everything is copied under
   the registry lock, so instruments mutated concurrently (histogram
   observes, registrations) can never tear across the copy. *)
let snapshot ?(prefix = "") registry =
  locked registry @@ fun () ->
  let cs = ref [] and gs = ref [] and ts = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name i ->
      if has_prefix prefix name then
        match i with
        | Counter c -> cs := (name, Atomic.get c.c_value) :: !cs
        | Gauge g -> gs := (name, Atomic.get g.g_value) :: !gs
        | Timer t -> ts := (name, t.t_count, t.t_total_ns) :: !ts
        | Histogram h ->
          hs :=
            {
              hs_name = name;
              hs_count = h.h_count;
              hs_sum = h.h_sum;
              hs_min = h_min h;
              hs_max = h_max h;
              hs_buckets = nonempty_buckets h.h_buckets;
            }
            :: !hs)
    registry.tbl;
  {
    snap_counters = List.sort (fun (a, _) (b, _) -> String.compare a b) !cs;
    snap_gauges = List.sort (fun (a, _) (b, _) -> String.compare a b) !gs;
    snap_timers = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !ts;
    snap_histograms =
      List.sort (fun a b -> String.compare a.hs_name b.hs_name) !hs;
  }

let snapshot_percentile hs q =
  let buckets = Array.make 64 0 in
  List.iter
    (fun (ub, n) ->
      let k = bucket_of ub in
      buckets.(k) <- n)
    hs.hs_buckets;
  percentile_of ~count:hs.hs_count ~lo:hs.hs_min ~hi:hs.hs_max buckets q

let counters ?prefix registry = (snapshot ?prefix registry).snap_counters

let ns_pretty ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let dump_text ?prefix registry =
  let s = snapshot ?prefix registry in
  let buf = Buffer.create 512 in
  if s.snap_counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-44s %d\n" name v))
      s.snap_counters
  end;
  if s.snap_gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-44s %g\n" name v))
      s.snap_gauges
  end;
  if s.snap_timers <> [] then begin
    Buffer.add_string buf "timers:\n";
    List.iter
      (fun (name, count, total_ns) ->
        let mean = if count = 0 then 0. else total_ns /. float_of_int count in
        Buffer.add_string buf
          (Printf.sprintf "  %-44s count %-6d total %-10s mean %s\n" name count
             (ns_pretty total_ns) (ns_pretty mean)))
      s.snap_timers
  end;
  if s.snap_histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun h ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-44s count %-6d sum %-10.0f min %-8.0f max %-8.0f p50 %-8.0f \
              p90 %-8.0f p99 %.0f\n"
             h.hs_name h.hs_count h.hs_sum h.hs_min h.hs_max
             (snapshot_percentile h 0.5) (snapshot_percentile h 0.9)
             (snapshot_percentile h 0.99)))
      s.snap_histograms
  end;
  Buffer.contents buf

let snapshot_to_json (s : snapshot) =
  let module J = Ssd.Json in
  let counters = J.Obj (List.map (fun (name, v) -> (name, J.Int v)) s.snap_counters) in
  let gauges = J.Obj (List.map (fun (name, v) -> (name, J.Float v)) s.snap_gauges) in
  let timers =
    J.Obj
      (List.map
         (fun (name, count, total_ns) ->
           (name, J.Obj [ ("count", J.Int count); ("total_ns", J.Float total_ns) ]))
         s.snap_timers)
  in
  let histograms =
    J.Obj
      (List.map
         (fun h ->
           ( h.hs_name,
             J.Obj
               [
                 ("count", J.Int h.hs_count);
                 ("sum", J.Float h.hs_sum);
                 ("min", J.Float h.hs_min);
                 ("max", J.Float h.hs_max);
                 ("p50", J.Float (snapshot_percentile h 0.5));
                 ("p90", J.Float (snapshot_percentile h 0.9));
                 ("p99", J.Float (snapshot_percentile h 0.99));
                 ( "buckets",
                   J.List
                     (List.map (fun (ub, n) -> J.List [ J.Float ub; J.Int n ]) h.hs_buckets)
                 );
               ] ))
         s.snap_histograms)
  in
  J.Obj
    [
      ("counters", counters);
      ("gauges", gauges);
      ("timers", timers);
      ("histograms", histograms);
    ]

let to_json ?prefix registry = snapshot_to_json (snapshot ?prefix registry)

let dump_json ?prefix registry = Ssd.Json.to_string (to_json ?prefix registry)
