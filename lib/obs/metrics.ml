(* Counter values are Atomics: evaluator hot paths run across domains
   under --jobs (lib/par), and increments from workers must neither tear
   nor get lost — counter totals feed --stats output that is required to
   be identical for every jobs value.  Atomic increments commute, so the
   final value only depends on the set of events, not their schedule.
   Timers and histograms stay plain mutable: they are only touched from
   the coordinating domain (parallel worker code never records time or
   observations directly). *)
type counter = {
  c_name : string;
  c_value : int Atomic.t;
}

type timer = {
  t_name : string;
  mutable t_count : int;
  mutable t_total_ns : float;
}

(* 64 power-of-two buckets: bucket k counts values in (2^(k-1), 2^k],
   bucket 0 counts values <= 1. *)
type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Timer of timer
  | Histogram of histogram

type registry = (string, instrument) Hashtbl.t

let create () : registry = Hashtbl.create 64

let default : registry = create ()

let kind_name = function
  | Counter _ -> "counter"
  | Timer _ -> "timer"
  | Histogram _ -> "histogram"

let register registry name make extract =
  match Hashtbl.find_opt registry name with
  | Some i -> (
    match extract i with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_name i)))
  | None ->
    let i = make () in
    Hashtbl.add registry name i;
    (match extract i with Some x -> x | None -> assert false)

let counter ?(registry = default) name =
  register registry name
    (fun () -> Counter { c_name = name; c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value
let counter_name c = c.c_name

let timer ?(registry = default) name =
  register registry name
    (fun () -> Timer { t_name = name; t_count = 0; t_total_ns = 0. })
    (function Timer t -> Some t | _ -> None)

let record_ns t ns =
  t.t_count <- t.t_count + 1;
  t.t_total_ns <- t.t_total_ns +. ns

let time t f =
  let t0 = Clock.now_ns () in
  Fun.protect ~finally:(fun () -> record_ns t (Clock.now_ns () -. t0)) f

let timer_count t = t.t_count
let timer_total_ns t = t.t_total_ns

let histogram ?(registry = default) name =
  register registry name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_buckets = Array.make 64 0;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
        })
    (function Histogram h -> Some h | _ -> None)

let bucket_of v =
  if v <= 1. then 0
  else
    let _, e = Float.frexp v in
    (* frexp: v = m * 2^e with m in [0.5, 1), so 2^(e-1) <= v < 2^e;
       v lands in bucket e-1 when it is exactly a power of two. *)
    let k = if Float.of_int (1 lsl (e - 1)) >= v then e - 1 else e in
    min k 63

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let k = bucket_of v in
  h.h_buckets.(k) <- h.h_buckets.(k) + 1

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* min/max of an empty histogram as 0 so consumers never see infinities
   (JSON has no representation for them). *)
let h_min h = if h.h_count = 0 then 0. else h.h_min
let h_max h = if h.h_count = 0 then 0. else h.h_max

(* Percentile estimate from the power-of-two buckets: the upper bound of
   the first bucket whose cumulative count reaches q * count, clamped to
   the observed [min, max].  Exact for counts and monotone in q. *)
let percentile h q =
  if h.h_count = 0 then 0.
  else begin
    let rank = q *. float_of_int h.h_count in
    let k = ref 0 in
    let cum = ref h.h_buckets.(0) in
    while float_of_int !cum < rank && !k < 63 do
      k := !k + 1;
      cum := !cum + h.h_buckets.(!k)
    done;
    let ub = Float.of_int (1 lsl !k) in
    Float.min (h_max h) (Float.max (h_min h) ub)
  end

let histogram_buckets h =
  let out = ref [] in
  for k = 63 downto 0 do
    if h.h_buckets.(k) > 0 then
      out := (Float.of_int (1 lsl k), h.h_buckets.(k)) :: !out
  done;
  !out

let reset registry =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> Atomic.set c.c_value 0
      | Timer t ->
        t.t_count <- 0;
        t.t_total_ns <- 0.
      | Histogram h ->
        Array.fill h.h_buckets 0 64 0;
        h.h_count <- 0;
        h.h_sum <- 0.;
        h.h_min <- infinity;
        h.h_max <- neg_infinity)
    registry

let has_prefix prefix name =
  let np = String.length prefix in
  String.length name >= np && String.sub name 0 np = prefix

let partition ?(prefix = "") registry =
  let cs = ref [] and ts = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name i ->
      if has_prefix prefix name then
        match i with
        | Counter c -> cs := (name, c) :: !cs
        | Timer t -> ts := (name, t) :: !ts
        | Histogram h -> hs := (name, h) :: !hs)
    registry;
  let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  (by_name !cs, by_name !ts, by_name !hs)

let counters ?prefix registry =
  let cs, _, _ = partition ?prefix registry in
  List.map (fun (name, c) -> (name, Atomic.get c.c_value)) cs

let ns_pretty ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let dump_text ?prefix registry =
  let cs, ts, hs = partition ?prefix registry in
  let buf = Buffer.create 512 in
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, c) -> Buffer.add_string buf (Printf.sprintf "  %-44s %d\n" name (Atomic.get c.c_value)))
      cs
  end;
  if ts <> [] then begin
    Buffer.add_string buf "timers:\n";
    List.iter
      (fun (name, t) ->
        let mean = if t.t_count = 0 then 0. else t.t_total_ns /. float_of_int t.t_count in
        Buffer.add_string buf
          (Printf.sprintf "  %-44s count %-6d total %-10s mean %s\n" name t.t_count
             (ns_pretty t.t_total_ns) (ns_pretty mean)))
      ts
  end;
  if hs <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-44s count %-6d sum %-10.0f min %-8.0f max %-8.0f p50 %-8.0f \
              p90 %-8.0f p99 %.0f\n"
             name h.h_count h.h_sum (h_min h) (h_max h) (percentile h 0.5)
             (percentile h 0.9) (percentile h 0.99)))
      hs
  end;
  Buffer.contents buf

let to_json ?prefix registry =
  let module J = Ssd.Json in
  let cs, ts, hs = partition ?prefix registry in
  let counters = J.Obj (List.map (fun (name, c) -> (name, J.Int (Atomic.get c.c_value))) cs) in
  let timers =
    J.Obj
      (List.map
         (fun (name, t) ->
           (name, J.Obj [ ("count", J.Int t.t_count); ("total_ns", J.Float t.t_total_ns) ]))
         ts)
  in
  let histograms =
    J.Obj
      (List.map
         (fun (name, h) ->
           ( name,
             J.Obj
               [
                 ("count", J.Int h.h_count);
                 ("sum", J.Float h.h_sum);
                 ("min", J.Float (h_min h));
                 ("max", J.Float (h_max h));
                 ("p50", J.Float (percentile h 0.5));
                 ("p90", J.Float (percentile h 0.9));
                 ("p99", J.Float (percentile h 0.99));
                 ( "buckets",
                   J.List
                     (List.map
                        (fun (ub, n) -> J.List [ J.Float ub; J.Int n ])
                        (histogram_buckets h)) );
               ] ))
         hs)
  in
  J.Obj [ ("counters", counters); ("timers", timers); ("histograms", histograms) ]

let dump_json ?prefix registry = Ssd.Json.to_string (to_json ?prefix registry)
