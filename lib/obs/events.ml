(* A bounded ring of structured events.  Emission must be safe from any
   domain (request workers, the store's commit path, the admin plane all
   emit) and cheap enough to leave on: one mutex acquisition, no
   allocation proportional to history.  Rendering to JSONL happens at
   read time, except for the optional file sink, which renders inline so
   the line hits the OS even if the process later dies. *)

type event = {
  seq : int;
  ts : float;
  kind : string;
  fields : (string * Ssd.Json.t) list;
}

type log = {
  lock : Mutex.t;
  mutable ring : event option array;
  mutable next_seq : int;
  mutable sink : (string -> unit) option;
  emitted : Metrics.counter;
  dropped : Metrics.counter;
}

let create ?(registry = Metrics.default) ?(capacity = 512) () =
  {
    lock = Mutex.create ();
    ring = Array.make (max 1 capacity) None;
    next_seq = 0;
    sink = None;
    emitted = Metrics.counter ~registry "events.emitted";
    dropped = Metrics.counter ~registry "events.dropped";
  }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_capacity t n =
  locked t @@ fun () -> t.ring <- Array.make (max 1 n) None

let set_sink t sink = locked t @@ fun () -> t.sink <- sink

let to_json e =
  let module J = Ssd.Json in
  J.Obj
    (("seq", J.Int e.seq)
    :: ("ts", J.Float e.ts)
    :: ("event", J.String e.kind)
    :: e.fields)

let render_jsonl e = Ssd.Json.to_compact_string (to_json e)

(* The ring is a simple modular overwrite: slot seq mod capacity.  An
   overwritten slot counts as a drop so operators can see the ring is
   too small for their retention needs. *)
let emit t kind fields =
  let line = ref None in
  let sink =
    locked t @@ fun () ->
    let cap = Array.length t.ring in
    let slot = t.next_seq mod cap in
    if t.ring.(slot) <> None then Metrics.incr t.dropped;
    let e = { seq = t.next_seq; ts = Unix.gettimeofday (); kind; fields } in
    t.ring.(slot) <- Some e;
    t.next_seq <- t.next_seq + 1;
    Metrics.incr t.emitted;
    (match t.sink with Some _ -> line := Some (render_jsonl e) | None -> ());
    t.sink
  in
  (* Write outside the lock: a slow disk must not stall emitters on
     other domains longer than one pending line. *)
  match (sink, !line) with
  | Some write, Some l -> ( try write (l ^ "\n") with _ -> ())
  | _ -> ()

(* Last [n] events, oldest first. *)
let tail ?(n = 20) t =
  locked t @@ fun () ->
  let cap = Array.length t.ring in
  let n = min n (min cap t.next_seq) in
  let out = ref [] in
  for i = t.next_seq - n to t.next_seq - 1 do
    match t.ring.(i mod cap) with
    | Some e when e.seq = i -> out := e :: !out
    | _ -> ()
  done;
  List.rev !out

let tail_jsonl ?n t =
  String.concat "" (List.map (fun e -> render_jsonl e ^ "\n") (tail ?n t))

let file_sink path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  fun s ->
    output_string oc s;
    flush oc
