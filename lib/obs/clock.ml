(* The monotonic clock behind every span and timer in lib/obs.

   [Monotonic_clock] is bechamel's clock_gettime(CLOCK_MONOTONIC) stub —
   the same clock bench/ measures with — so durations can never go
   negative under wall-clock adjustment (NTP slew, manual set), which
   [Unix.gettimeofday] could. *)

let now_ns () = Int64.to_float (Monotonic_clock.now ())
