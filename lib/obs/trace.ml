(* Structured trace events: spans with stable ids, parent ids, lanes and
   typed annotations, plus instant events with optional flow links.  The
   collector is process-global; everything is disabled-by-default and
   costs one ref read per instrumentation point when off. *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(* A span under construction.  [dur_ns < 0] means still open. *)
type node = {
  n_id : int;
  n_parent : int; (* 0 = root *)
  n_name : string;
  n_lane : int;
  n_start_ns : float;
  mutable n_dur_ns : float;
  mutable n_attrs : (string * value) list; (* reverse insertion order *)
}

type instant = {
  i_name : string;
  i_lane : int;
  i_parent : int; (* causal origin span id; 0 = none *)
  i_ts_ns : float;
  i_flow : int; (* flow-link id; 0 = none *)
  i_flow_end : bool; (* false: flow starts here; true: it ends here *)
  i_attrs : (string * value) list;
}

type span = {
  id : int;
  parent : int;
  name : string;
  lane : int;
  start_ns : float;
  dur_ns : float;
  attrs : (string * value) list;
  children : span list; (* in execution order *)
}

let flag = ref false
let nodes : node list ref = ref [] (* reverse start order *)
let insts : instant list ref = ref [] (* reverse emission order *)
let next_id = ref 1
let next_flow_id = ref 1
let lane_names : (int, string) Hashtbl.t = Hashtbl.create 8

(* The collector is shared by every domain (the query server handles
   requests on pool domains, each tracing its own request span), so the
   global event lists and id counters are guarded by a mutex.  The span
   *stack* is per-domain state: nesting is a property of one domain's
   call tree, and a worker's spans must never become children of a span
   another domain happens to have open. *)
let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let stack_key : node list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let stack () = Domain.DLS.get stack_key

(* Per-domain default lane: a server worker calls [set_lane] once and
   every span it opens (including evaluator-internal ones that never
   pass [?lane]) lands in its own Chrome thread, keeping B/E pairs
   well-nested per lane even with concurrent requests. *)
let lane_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let set_lane l = Domain.DLS.get lane_key := l
let lane () = !(Domain.DLS.get lane_key)

let enable () = flag := true
let disable () = flag := false
let enabled () = !flag

let clear () =
  locked (fun () ->
      nodes := [];
      insts := [];
      next_id := 1;
      next_flow_id := 1;
      Hashtbl.reset lane_names);
  (stack ()) := [];
  set_lane 0

let current () =
  match !(stack ()) with
  | n :: _ -> n.n_id
  | [] -> 0

let name_lane lane name = if !flag then locked (fun () -> Hashtbl.replace lane_names lane name)

let new_flow () =
  locked (fun () ->
      let f = !next_flow_id in
      incr next_flow_id;
      f)

let with_span ?lane:lane_opt ?(attrs = []) name f =
  if not !flag then f ()
  else begin
    let st = stack () in
    let parent = match !st with n :: _ -> n.n_id | [] -> 0 in
    let lane = match lane_opt with Some l -> l | None -> lane () in
    let n =
      locked (fun () ->
          let id = !next_id in
          incr next_id;
          let n =
            {
              n_id = id;
              n_parent = parent;
              n_name = name;
              n_lane = lane;
              n_start_ns = Clock.now_ns ();
              n_dur_ns = -1.;
              n_attrs = List.rev attrs;
            }
          in
          nodes := n :: !nodes;
          n)
    in
    st := n :: !st;
    Fun.protect
      ~finally:(fun () ->
        n.n_dur_ns <- Float.max 0. (Clock.now_ns () -. n.n_start_ns);
        match !st with
        | top :: rest when top == n -> st := rest
        | _ -> () (* unbalanced exit; leave the stack as-is *))
      f
  end

let annotate key v =
  if !flag then
    match !(stack ()) with
    | n :: _ -> n.n_attrs <- (key, v) :: List.remove_assoc key n.n_attrs
    | [] -> ()

let bump key d =
  if !flag then
    match !(stack ()) with
    | n :: _ ->
      let prev = match List.assoc_opt key n.n_attrs with Some (Int i) -> i | _ -> 0 in
      n.n_attrs <- (key, Int (prev + d)) :: List.remove_assoc key n.n_attrs
    | [] -> ()

let instant ?lane:lane_opt ?parent ?flow ?(attrs = []) name =
  if !flag then begin
    let parent = match parent with Some p -> p | None -> current () in
    let lane = match lane_opt with Some l -> l | None -> lane () in
    let flow_id, flow_end = match flow with Some (f, e) -> (f, e) | None -> (0, false) in
    locked (fun () ->
        insts :=
          {
            i_name = name;
            i_lane = lane;
            i_parent = parent;
            i_ts_ns = Clock.now_ns ();
            i_flow = flow_id;
            i_flow_end = flow_end;
            i_attrs = attrs;
          }
          :: !insts)
  end

let instants () = locked (fun () -> List.rev !insts)

(* ------------------------------------------------------------------ *)
(* Frozen views                                                        *)
(* ------------------------------------------------------------------ *)

(* Duration of a node for export: a still-open span (spans () called
   from inside a traced thunk) reads as "elapsed so far". *)
let node_dur n = if n.n_dur_ns >= 0. then n.n_dur_ns else Float.max 0. (Clock.now_ns () -. n.n_start_ns)

let spans () =
  let ordered = locked (fun () -> List.rev !nodes) in
  (* children of each id, in execution order *)
  let kids : (int, node list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let cell =
        match Hashtbl.find_opt kids n.n_parent with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.add kids n.n_parent c;
          c
      in
      cell := n :: !cell)
    ordered;
  let children_of id =
    match Hashtbl.find_opt kids id with Some c -> List.rev !c | None -> []
  in
  let rec freeze n =
    {
      id = n.n_id;
      parent = n.n_parent;
      name = n.n_name;
      lane = n.n_lane;
      start_ns = n.n_start_ns;
      dur_ns = node_dur n;
      attrs = List.rev n.n_attrs;
      children = List.map freeze (children_of n.n_id);
    }
  in
  List.map freeze (children_of 0)

let ns_pretty ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let render () =
  let buf = Buffer.create 256 in
  let rec go depth s =
    let attrs =
      match s.attrs with
      | [] -> ""
      | kvs ->
        "  ["
        ^ String.concat ", "
            (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) kvs)
        ^ "]"
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %s%s\n" (String.make (2 * depth) ' ')
         (max 1 (40 - (2 * depth)))
         s.name (ns_pretty s.dur_ns) attrs);
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) (spans ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace-event ("catapult") export                              *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Int i -> Ssd.Json.Int i
  | Float f -> Ssd.Json.Float f
  | Str s -> Ssd.Json.String s
  | Bool b -> Ssd.Json.Bool b

(* The earliest timestamp becomes ts = 0 so files are small and stable
   under the arbitrary monotonic epoch. *)
let epoch_ns () =
  locked (fun () ->
      let t0 =
        List.fold_left (fun acc n -> Float.min acc n.n_start_ns) infinity !nodes
      in
      let t0 = List.fold_left (fun acc i -> Float.min acc i.i_ts_ns) t0 !insts in
      if t0 = infinity then 0. else t0)

let to_chrome () =
  let module J = Ssd.Json in
  let t0 = epoch_ns () in
  let us t = J.Float ((t -. t0) /. 1e3) in
  let cat name =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* Lane (thread) names, as metadata events. *)
  Hashtbl.fold (fun lane name acc -> (lane, name) :: acc) lane_names []
  |> List.sort compare
  |> List.iter (fun (lane, name) ->
         emit
           (J.Obj
              [
                ("name", J.String "thread_name");
                ("ph", J.String "M");
                ("pid", J.Int 1);
                ("tid", J.Int lane);
                ("args", J.Obj [ ("name", J.String name) ]);
              ]));
  (* Spans, depth-first: B ... children ... E, so the event list is
     well-nested per lane by construction. *)
  let rec span s =
    let args =
      ("span_id", J.Int s.id)
      :: ("parent_id", J.Int s.parent)
      :: List.map (fun (k, v) -> (k, value_to_json v)) s.attrs
    in
    emit
      (J.Obj
         [
           ("name", J.String s.name);
           ("cat", J.String (cat s.name));
           ("ph", J.String "B");
           ("ts", us s.start_ns);
           ("pid", J.Int 1);
           ("tid", J.Int s.lane);
           ("args", J.Obj args);
         ]);
    List.iter span s.children;
    emit
      (J.Obj
         [
           ("name", J.String s.name);
           ("cat", J.String (cat s.name));
           ("ph", J.String "E");
           ("ts", us (s.start_ns +. s.dur_ns));
           ("pid", J.Int 1);
           ("tid", J.Int s.lane);
         ])
  in
  List.iter span (spans ());
  (* Instants, with flow arrows for causal links across lanes. *)
  List.iter
    (fun i ->
      emit
        (J.Obj
           [
             ("name", J.String i.i_name);
             ("cat", J.String (cat i.i_name));
             ("ph", J.String "i");
             ("s", J.String "t");
             ("ts", us i.i_ts_ns);
             ("pid", J.Int 1);
             ("tid", J.Int i.i_lane);
             ( "args",
               J.Obj
                 (("parent_id", J.Int i.i_parent)
                 :: List.map (fun (k, v) -> (k, value_to_json v)) i.i_attrs) );
           ]);
      if i.i_flow <> 0 then
        emit
          (J.Obj
             ([
                ("name", J.String "msg");
                ("cat", J.String "flow");
                ("ph", J.String (if i.i_flow_end then "f" else "s"));
                ("id", J.Int i.i_flow);
                ("ts", us i.i_ts_ns);
                ("pid", J.Int 1);
                ("tid", J.Int i.i_lane);
              ]
             @ if i.i_flow_end then [ ("bp", J.String "e") ] else [])))
    (instants ());
  J.Obj
    [
      ("traceEvents", J.List (List.rev !events));
      ("displayTimeUnit", J.String "ms");
    ]

let write_chrome path =
  let oc = open_out_bin path in
  output_string oc (Ssd.Json.to_string (to_chrome ()));
  output_char oc '\n';
  close_out oc
