type node = {
  n_name : string;
  mutable n_dur_ns : float;
  mutable n_children : node list; (* reverse execution order *)
}

type span = {
  name : string;
  dur_ns : float;
  children : span list;
}

let flag = ref false
let roots : node list ref = ref [] (* reverse execution order *)
let stack : node list ref = ref []

let enable () = flag := true
let disable () = flag := false
let enabled () = !flag

let clear () =
  roots := [];
  stack := []

let with_span name f =
  if not !flag then f ()
  else begin
    let n = { n_name = name; n_dur_ns = 0.; n_children = [] } in
    (match !stack with
     | parent :: _ -> parent.n_children <- n :: parent.n_children
     | [] -> roots := n :: !roots);
    stack := n :: !stack;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        n.n_dur_ns <- (Unix.gettimeofday () -. t0) *. 1e9;
        match !stack with
        | top :: rest when top == n -> stack := rest
        | _ -> () (* unbalanced exit; leave the stack as-is *))
      f
  end

let rec freeze n =
  { name = n.n_name; dur_ns = n.n_dur_ns; children = List.rev_map freeze n.n_children }

let spans () = List.rev_map freeze !roots

let ns_pretty ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let render () =
  let buf = Buffer.create 256 in
  let rec go depth s =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %s\n" (String.make (2 * depth) ' ')
         (max 1 (40 - (2 * depth)))
         s.name (ns_pretty s.dur_ns));
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) (spans ());
  Buffer.contents buf
