(* Operator profiler over the trace span stream: per-name inclusive and
   exclusive time, rendered as a sorted flame table. *)

type row = {
  name : string;
  count : int;
  inclusive_ns : float;
  exclusive_ns : float;
}

type acc = {
  mutable a_count : int;
  mutable a_incl : float;
  mutable a_excl : float;
}

let of_spans roots =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None ->
      let a = { a_count = 0; a_incl = 0.; a_excl = 0. } in
      Hashtbl.add tbl name a;
      a
  in
  (* Inclusive time only counts spans with no same-named ancestor, so a
     recursive operator is not double-billed; exclusive time is each
     span's duration minus its direct children's. *)
  let rec walk ancestors (s : Trace.span) =
    let a = get s.Trace.name in
    a.a_count <- a.a_count + 1;
    if not (List.mem s.Trace.name ancestors) then
      a.a_incl <- a.a_incl +. s.Trace.dur_ns;
    let child_total =
      List.fold_left (fun t c -> t +. c.Trace.dur_ns) 0. s.Trace.children
    in
    a.a_excl <- a.a_excl +. Float.max 0. (s.Trace.dur_ns -. child_total);
    List.iter (walk (s.Trace.name :: ancestors)) s.Trace.children
  in
  List.iter (walk []) roots;
  Hashtbl.fold
    (fun name a acc ->
      { name; count = a.a_count; inclusive_ns = a.a_incl; exclusive_ns = a.a_excl }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.exclusive_ns a.exclusive_ns with
         | 0 -> String.compare a.name b.name
         | c -> c)

let total_ns roots = List.fold_left (fun t s -> t +. s.Trace.dur_ns) 0. roots

let ns_pretty = Trace.ns_pretty

let render ?total rows =
  let total =
    match total with
    | Some t -> t
    | None -> List.fold_left (fun t r -> t +. r.exclusive_ns) 0. rows
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %8s %12s %12s %7s\n" "operator" "count" "inclusive"
       "exclusive" "excl%");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s %8d %12s %12s %6.1f%%\n" r.name r.count
           (ns_pretty r.inclusive_ns) (ns_pretty r.exclusive_ns)
           (if total > 0. then 100. *. r.exclusive_ns /. total else 0.)))
    rows;
  Buffer.add_string buf (Printf.sprintf "total (roots): %s\n" (ns_pretty total));
  Buffer.contents buf

let to_json ?total rows =
  let module J = Ssd.Json in
  let total =
    match total with
    | Some t -> t
    | None -> List.fold_left (fun t r -> t +. r.exclusive_ns) 0. rows
  in
  J.Obj
    [
      ("total_ns", J.Float total);
      ( "rows",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("name", J.String r.name);
                   ("count", J.Int r.count);
                   ("inclusive_ns", J.Float r.inclusive_ns);
                   ("exclusive_ns", J.Float r.exclusive_ns);
                 ])
             rows) );
    ]
