(* Prometheus exposes one TYPE comment per family followed by its
   samples; our registry names are dot-separated and may carry an inline
   label set ([serve.tenant.requests{tenant="a"}]).  This module maps
   registry snapshots onto that wire format — and parses it back, so the
   round-trip property tests can hold every emitted line to "a scraper
   would accept this". *)

type sample = {
  family : string;
  labels : (string * string) list;
  value : float;
}

type line =
  | Type of string * string
  | Sample of sample
  | Comment of string
  | Eof

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; registry names are
   dot-separated, so dots (and anything else exotic) become underscores.
   Everything is namespaced under ssd_ so a shared Prometheus doesn't
   collide with other exporters. *)
let sanitize name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
    | _ -> Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  let s = if s = "" then "unnamed" else s in
  let s = match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s in
  "ssd_" ^ s

(* An instrument name may end with a Prometheus-style label set; split
   it off (label keys/values pass through verbatim — the emitters build
   them with {!label_set}, which already produces valid syntax). *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i ->
    let base = String.sub name 0 i in
    let rest = String.sub name i (String.length name - i) in
    if String.length rest >= 2 && rest.[String.length rest - 1] = '}' then
      (base, String.sub rest 1 (String.length rest - 2))
    else (name, "")

let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_set = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           kvs)
    ^ "}"

(* Sample values are floats on the wire; integral values print without a
   fraction so counters stay exact (and diffable) up to 2^53. *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Merge instruments that share a family (same base name, different
   label sets) under a single TYPE line, in first-seen (= sorted, since
   snapshots are sorted) order. *)
let group_families entries =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, payload) ->
      let base, labels = split_labels name in
      let fam = sanitize base in
      (match Hashtbl.find_opt seen fam with
      | None ->
        Hashtbl.add seen fam (ref [ (labels, payload) ]);
        order := fam :: !order
      | Some l -> l := (labels, payload) :: !l))
    entries;
  List.rev_map
    (fun fam ->
      let entries = List.rev !(Hashtbl.find seen fam) in
      (fam, entries))
    !order

let add_sample buf name labels value =
  Buffer.add_string buf name;
  if labels <> "" then begin
    Buffer.add_char buf '{';
    Buffer.add_string buf labels;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fmt_value value);
  Buffer.add_char buf '\n'

let add_type buf name kind =
  Buffer.add_string buf "# TYPE ";
  Buffer.add_string buf name;
  Buffer.add_char buf ' ';
  Buffer.add_string buf kind;
  Buffer.add_char buf '\n'

let join_labels a b = if a = "" then b else if b = "" then a else a ^ "," ^ b

let openmetrics (s : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  (* Counters: family name carries the conventional _total suffix. *)
  List.iter
    (fun (fam, entries) ->
      let fam = fam ^ "_total" in
      add_type buf fam "counter";
      List.iter
        (fun (labels, v) -> add_sample buf fam labels (float_of_int v))
        entries)
    (group_families s.Metrics.snap_counters);
  List.iter
    (fun (fam, entries) ->
      add_type buf fam "gauge";
      List.iter (fun (labels, v) -> add_sample buf fam labels v) entries)
    (group_families s.Metrics.snap_gauges);
  (* Timers expose as summaries: _count runs and _sum accumulated ns. *)
  List.iter
    (fun (fam, entries) ->
      add_type buf fam "summary";
      List.iter
        (fun (labels, (count, total_ns)) ->
          add_sample buf (fam ^ "_count") labels (float_of_int count);
          add_sample buf (fam ^ "_sum") labels total_ns)
        entries)
    (group_families
       (List.map (fun (n, c, t) -> (n, (c, t))) s.Metrics.snap_timers));
  (* Histograms: cumulative buckets with explicit exponential bounds. *)
  List.iter
    (fun (fam, entries) ->
      add_type buf fam "histogram";
      List.iter
        (fun (labels, (h : Metrics.histogram_snapshot)) ->
          let cum = ref 0 in
          List.iter
            (fun (ub, n) ->
              cum := !cum + n;
              add_sample buf (fam ^ "_bucket")
                (join_labels (Printf.sprintf "le=\"%s\"" (fmt_value ub)) labels)
                (float_of_int !cum))
            h.Metrics.hs_buckets;
          add_sample buf (fam ^ "_bucket")
            (join_labels "le=\"+Inf\"" labels)
            (float_of_int h.Metrics.hs_count);
          add_sample buf (fam ^ "_sum") labels h.Metrics.hs_sum;
          add_sample buf (fam ^ "_count") labels (float_of_int h.Metrics.hs_count))
        entries)
    (group_families
       (List.map (fun h -> (h.Metrics.hs_name, h)) s.Metrics.snap_histograms));
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let json (s : Metrics.snapshot) = Ssd.Json.to_string (Metrics.snapshot_to_json s)

(* ------------------------------------------------------------------ *)
(* Parsing (the round-trip oracle)                                     *)
(* ------------------------------------------------------------------ *)

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let parse_name s pos =
  let n = String.length s in
  let start = pos in
  let pos = ref pos in
  while !pos < n && is_name_char s.[!pos] do incr pos done;
  if !pos = start then Error (Printf.sprintf "expected metric name at %d" start)
  else Ok (String.sub s start (!pos - start), !pos)

let parse_labels s pos =
  let n = String.length s in
  let rec loop pos acc =
    match parse_name s pos with
    | Error e -> Error e
    | Ok (key, pos) ->
      if pos >= n || s.[pos] <> '=' then Error "expected '=' after label name"
      else if pos + 1 >= n || s.[pos + 1] <> '"' then
        Error "expected '\"' after label '='"
      else begin
        let b = Buffer.create 16 in
        let pos = ref (pos + 2) in
        let err = ref None in
        let closed = ref false in
        while (not !closed) && !err = None && !pos < n do
          (match s.[!pos] with
          | '"' -> closed := true
          | '\\' ->
            if !pos + 1 >= n then err := Some "dangling escape in label value"
            else begin
              (match s.[!pos + 1] with
              | '\\' -> Buffer.add_char b '\\'
              | '"' -> Buffer.add_char b '"'
              | 'n' -> Buffer.add_char b '\n'
              | c -> err := Some (Printf.sprintf "bad escape '\\%c'" c));
              incr pos
            end
          | c -> Buffer.add_char b c);
          incr pos
        done;
        match !err with
        | Some e -> Error e
        | None ->
          if not !closed then Error "unterminated label value"
          else
            let acc = (key, Buffer.contents b) :: acc in
            let pos = !pos in
            if pos < n && s.[pos] = ',' then loop (pos + 1) acc
            else if pos < n && s.[pos] = '}' then Ok (List.rev acc, pos + 1)
            else Error "expected ',' or '}' after label value"
      end
  in
  loop pos []

let parse_line line =
  let line =
    (* Tolerate trailing \r so output read over HTTP re-parses. *)
    if line <> "" && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  if line = "# EOF" then Ok Eof
  else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
    match String.split_on_char ' ' (String.sub line 7 (String.length line - 7)) with
    | [ name; kind ] when name <> "" ->
      if not (List.mem kind [ "counter"; "gauge"; "summary"; "histogram" ]) then
        Error (Printf.sprintf "unknown metric type %S" kind)
      else if String.for_all is_name_char name then Ok (Type (name, kind))
      else Error (Printf.sprintf "invalid family name %S" name)
    | _ -> Error "malformed TYPE line"
  end
  else if String.length line >= 1 && line.[0] = '#' then Ok (Comment line)
  else
    match parse_name line 0 with
    | Error e -> Error e
    | Ok (family, pos) -> (
      let n = String.length line in
      (match family.[0] with
      | '0' .. '9' -> Error "metric name starts with a digit"
      | _ -> Ok ())
      |> function
      | Error e -> Error e
      | Ok () -> (
        let labels_result =
          if pos < n && line.[pos] = '{' then parse_labels line (pos + 1)
          else Ok ([], pos)
        in
        match labels_result with
        | Error e -> Error e
        | Ok (labels, pos) ->
          if pos >= n || line.[pos] <> ' ' then Error "expected ' ' before value"
          else
            let v = String.sub line (pos + 1) (n - pos - 1) in
            let v = if v = "+Inf" then "infinity" else if v = "-Inf" then "-infinity" else v in
            (match float_of_string_opt v with
            | Some value -> Ok (Sample { family; labels; value })
            | None -> Error (Printf.sprintf "bad sample value %S" v))))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec loop acc lineno = function
    | [] -> Ok (List.rev acc)
    | [ "" ] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok l -> loop (l :: acc) (lineno + 1) rest
      | Error e -> Error (Printf.sprintf "line %d (%S): %s" lineno line e))
  in
  loop [] 1 lines

let samples lines =
  List.filter_map (function Sample s -> Some s | _ -> None) lines

(* Sum of all samples of a counter family — the monotonicity oracle used
   by tests and `ssdql top` rate computation. *)
let counter_total lines family =
  List.fold_left
    (fun acc -> function
      | Sample s when s.family = family -> acc +. s.value
      | _ -> acc)
    0. lines
