(** OpenMetrics / Prometheus text exposition of {!Metrics} snapshots.

    The admin plane (`GET /metrics`) and `ssdql top` both read the
    registry through this module, so there is exactly one mapping from
    instruments to wire families:

    - counters → [ssd_<name>_total], type [counter]
    - gauges → [ssd_<name>], type [gauge]
    - timers → type [summary] with [_count] / [_sum] (sum in ns)
    - histograms → type [histogram] with cumulative
      [_bucket{le="2^k"}] samples over the explicit exponential bounds,
      a [le="+Inf"] bucket, [_sum] and [_count]

    Registry names are sanitized (dots → underscores, namespaced under
    [ssd_]); an inline label set on the instrument name
    ([serve.tenant.requests{tenant="a"}]) becomes sample labels, and
    instruments differing only in labels merge into one family under a
    single [# TYPE] line.  Output ends with [# EOF].

    The module also {e parses} the format it emits — the round-trip
    property tests and the `ssdql top` client both use {!parse}, so
    every emitted line is held to "a scraper would accept this". *)

type sample = {
  family : string;
  labels : (string * string) list;
  value : float;
}

type line =
  | Type of string * string  (** family name, one of counter/gauge/summary/histogram *)
  | Sample of sample
  | Comment of string
  | Eof  (** the [# EOF] terminator *)

(** Map a registry name to a wire family name: non-[[a-zA-Z0-9_:]]
    chars become [_], digits can't lead, and everything is prefixed
    with [ssd_]. *)
val sanitize : string -> string

(** Split an instrument name into base name and raw label-set text
    (empty when the name carries no [{…}] suffix). *)
val split_labels : string -> string * string

(** Render a label set, escaping backslash, double-quote and newline. *)
val label_set : (string * string) list -> string

(** Full exposition of a snapshot, terminated by [# EOF]. *)
val openmetrics : Metrics.snapshot -> string

(** The snapshot as a JSON document (same shape as
    {!Metrics.snapshot_to_json}), for [GET /metrics?format=json]. *)
val json : Metrics.snapshot -> string

(** Parse one exposition line (tolerates a trailing [\r]). *)
val parse_line : string -> (line, string) result

(** Parse a full exposition document; [Error] names the first bad line. *)
val parse : string -> (line list, string) result

(** Just the sample lines, in order. *)
val samples : line list -> sample list

(** Sum of all samples of a family (labeled series included) — the
    counter-monotonicity oracle and the rate source for `ssdql top`. *)
val counter_total : line list -> string -> float
