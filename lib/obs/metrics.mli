(** Execution metrics: named counters, gauges, timers and histograms.

    Query evaluation in this codebase was rewrite-only observable — one
    could inspect the optimized AST but not what evaluation actually did.
    This module is the observation layer: the evaluators ({!Unql.Eval},
    {!Lorel.Eval}, {!Relstore.Datalog}), the indexes, the result cache,
    the serve engine and the persistent store register named instruments
    in a {e registry} and bump them on their hot paths.  Instruments are
    monotonic within a process (counters only grow; timers and
    histograms only accumulate) until {!reset} — except gauges, which
    are levels and move both ways.

    Overhead is one hash lookup at registration (module initialization)
    and one unboxed mutation per event afterwards (histograms add a
    short critical section, see below), so instrumentation is left on
    unconditionally.

    {b Concurrency.} Counter and gauge mutations are atomic and may come
    from any domain.  Histogram observations take the registry lock (a
    histogram update is multi-word).  {!snapshot} and {!reset} hold the
    same lock, so a snapshot is a single consistent read: percentiles
    computed from it cannot tear against concurrent observations.
    Timers are the one exception — recording is two plain writes on the
    recording domain, so a concurrent snapshot may skew a timer's
    count/total by at most the in-flight sample.

    Instrument names are dot-separated, [subsystem.component.what] — e.g.
    [unql.eval.edges_traversed], [unql.cache.hits],
    [datalog.seminaive.rounds].  A name may carry a trailing label set in
    Prometheus syntax, e.g. [serve.tenant.requests{tenant="a"}]; the
    {!Export} module splits it back into family name + labels. *)

type registry

(** A fresh, empty registry. *)
val create : unit -> registry

(** The process-wide registry all built-in instrumentation reports to. *)
val default : registry

(** {1 Counters} *)

type counter

(** [counter ?registry name] registers (or retrieves — registration is
    idempotent per name) a monotonic counter.
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : ?registry:registry -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(** {1 Gauges}

    A gauge is a point-in-time level — buffer-pool occupancy, WAL bytes
    since checkpoint, live connections — set, not accumulated. *)

type gauge

val gauge : ?registry:registry -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Timers}

    A timer accumulates wall-clock time over any number of runs. *)

type timer

val timer : ?registry:registry -> string -> timer

(** [time t f] runs [f ()], adding its duration to [t] (also on
    exception).  Measured on the monotonic {!Clock}, so the recorded
    duration is non-negative even if the wall clock steps. *)
val time : timer -> (unit -> 'a) -> 'a

(** Record an externally-measured duration, in nanoseconds. *)
val record_ns : timer -> float -> unit

val timer_count : timer -> int

(** Accumulated nanoseconds. *)
val timer_total_ns : timer -> float

(** {1 Histograms}

    Distribution of a non-negative quantity (e.g. datalog delta sizes,
    bindings per select): power-of-two buckets plus count/sum/min/max. *)

type histogram

val histogram : ?registry:registry -> string -> histogram

(** Domain-safe: takes the owning registry's lock for the update. *)
val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** [(bucket_upper_bound, count)] for each non-empty bucket, ascending.
    A value [v] lands in the bucket with the smallest upper bound
    [2^k >= v]. *)
val histogram_buckets : histogram -> (float * int) list

(** [percentile h q] (with [q] in [0..1]) estimates the q-th percentile
    from the buckets: the upper bound of the first bucket reaching the
    cumulative rank, clamped to the observed min/max.  Monotone in [q];
    0 on an empty histogram. *)
val percentile : histogram -> float -> float

(** {1 Snapshots}

    A snapshot is an immutable copy of every instrument's state, taken
    under the registry lock in one critical section — the only way to
    read multiple instruments consistently while other domains mutate
    them.  All exposition ({!dump_text}, {!to_json}, {!Export}) renders
    from snapshots. *)

type histogram_snapshot = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** 0 when empty *)
  hs_max : float;  (** 0 when empty *)
  hs_buckets : (float * int) list;
      (** [(upper_bound, count)] per non-empty bucket, ascending. *)
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_timers : (string * int * float) list;  (** (name, count, total ns) *)
  snap_histograms : histogram_snapshot list;
}
(** Each section sorted by instrument name. *)

(** One consistent read of the registry, optionally restricted to names
    starting with [prefix]. *)
val snapshot : ?prefix:string -> registry -> snapshot

(** {!percentile} computed from a snapshot's buckets. *)
val snapshot_percentile : histogram_snapshot -> float -> float

(** {1 Registry-wide views} *)

(** All counters as [(name, value)], sorted by name.  [prefix] keeps only
    instruments whose name starts with it (names are dot-separated, so a
    prefix like ["lint."] selects one subsystem). *)
val counters : ?prefix:string -> registry -> (string * int) list

(** Zero every instrument in the registry (instruments stay registered).
    Atomic with respect to {!snapshot}: a concurrent scrape sees either
    pre- or post-reset values, never a mix. *)
val reset : registry -> unit

(** Human-readable dump: counters, gauges, timers, then histograms, each
    section in sorted name order (so dumps are diffable), optionally
    restricted to a name [prefix].  Histogram lines include p50/p90/p99
    summaries. *)
val dump_text : ?prefix:string -> registry -> string

(** The registry as a JSON document
    [{"counters": {...}, "gauges": {...}, "timers": {...},
    "histograms": {...}}] — the machine-readable form checked by the
    [ssdql --stats] smoke test.  Instruments appear in sorted name
    order; histograms carry [p50]/[p90]/[p99] and explicit [buckets]. *)
val to_json : ?prefix:string -> registry -> Ssd.Json.t

(** {!to_json} for a snapshot already taken. *)
val snapshot_to_json : snapshot -> Ssd.Json.t

val dump_json : ?prefix:string -> registry -> string
