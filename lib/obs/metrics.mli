(** Execution metrics: named counters, timers and histograms.

    Query evaluation in this codebase was rewrite-only observable — one
    could inspect the optimized AST but not what evaluation actually did.
    This module is the observation layer: the evaluators ({!Unql.Eval},
    {!Lorel.Eval}, {!Relstore.Datalog}), the indexes and the result cache
    register named instruments in a {e registry} and bump them on their
    hot paths.  Instruments are monotonic within a process (counters only
    grow; timers and histograms only accumulate) until {!reset}.

    Overhead is one hash lookup at registration (module initialization)
    and one unboxed mutation per event afterwards, so instrumentation is
    left on unconditionally.

    Instrument names are dot-separated, [subsystem.component.what] — e.g.
    [unql.eval.edges_traversed], [unql.cache.hits],
    [datalog.seminaive.rounds]. *)

type registry

(** A fresh, empty registry. *)
val create : unit -> registry

(** The process-wide registry all built-in instrumentation reports to. *)
val default : registry

(** {1 Counters} *)

type counter

(** [counter ?registry name] registers (or retrieves — registration is
    idempotent per name) a monotonic counter.
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : ?registry:registry -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(** {1 Timers}

    A timer accumulates wall-clock time over any number of runs. *)

type timer

val timer : ?registry:registry -> string -> timer

(** [time t f] runs [f ()], adding its duration to [t] (also on
    exception).  Measured on the monotonic {!Clock}, so the recorded
    duration is non-negative even if the wall clock steps. *)
val time : timer -> (unit -> 'a) -> 'a

(** Record an externally-measured duration, in nanoseconds. *)
val record_ns : timer -> float -> unit

val timer_count : timer -> int

(** Accumulated nanoseconds. *)
val timer_total_ns : timer -> float

(** {1 Histograms}

    Distribution of a non-negative quantity (e.g. datalog delta sizes,
    bindings per select): power-of-two buckets plus count/sum/min/max. *)

type histogram

val histogram : ?registry:registry -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** [(bucket_upper_bound, count)] for each non-empty bucket, ascending.
    A value [v] lands in the bucket with the smallest upper bound
    [2^k >= v]. *)
val histogram_buckets : histogram -> (float * int) list

(** [percentile h q] (with [q] in [0..1]) estimates the q-th percentile
    from the buckets: the upper bound of the first bucket reaching the
    cumulative rank, clamped to the observed min/max.  Monotone in [q];
    0 on an empty histogram. *)
val percentile : histogram -> float -> float

(** {1 Registry-wide views} *)

(** All counters as [(name, value)], sorted by name.  [prefix] keeps only
    instruments whose name starts with it (names are dot-separated, so a
    prefix like ["lint."] selects one subsystem). *)
val counters : ?prefix:string -> registry -> (string * int) list

(** Zero every instrument in the registry (instruments stay registered). *)
val reset : registry -> unit

(** Human-readable dump: counters, then timers, then histograms, each
    section in sorted name order (so dumps are diffable), optionally
    restricted to a name [prefix].  Histogram lines include p50/p90/p99
    summaries. *)
val dump_text : ?prefix:string -> registry -> string

(** The registry as a JSON document
    [{"counters": {...}, "timers": {...}, "histograms": {...}}] — the
    machine-readable form checked by the [ssdql --stats] smoke test.
    Instruments appear in sorted name order; histograms carry
    [p50]/[p90]/[p99] fields. *)
val to_json : ?prefix:string -> registry -> Ssd.Json.t

val dump_json : ?prefix:string -> registry -> string
