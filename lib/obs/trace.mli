(** Lightweight execution tracing: nested, named, timed spans.

    Complements {!Metrics} (aggregates) with per-execution structure:
    when enabled, instrumented code wraps its phases in {!with_span} and
    the collector records a forest of (name, duration) spans — what
    [ssdql query --trace] prints.

    Disabled by default; [with_span] then costs one ref read and calls
    its thunk directly.  The collector is process-global, like
    {!Metrics.default}. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Drop all recorded spans (keeps the enabled flag). *)
val clear : unit -> unit

(** [with_span name f] runs [f ()]; when tracing is enabled, records a
    span named [name] (child of the innermost active span, or a root)
    with [f]'s wall-clock duration, also on exception. *)
val with_span : string -> (unit -> 'a) -> 'a

type span = {
  name : string;
  dur_ns : float;
  children : span list; (** in execution order *)
}

(** Completed root spans, in execution order. *)
val spans : unit -> span list

(** Indented textual rendering of {!spans}. *)
val render : unit -> string
