(** Structured execution tracing: span {e events} with stable ids, parent
    ids, per-site lanes and typed annotations, plus instant events with
    causal links — exportable as Chrome trace-event ("catapult") JSON
    loadable in [chrome://tracing] / Perfetto.

    Complements {!Metrics} (aggregates) with per-execution structure:
    instrumented code wraps its phases in {!with_span}, attaches typed
    annotations (counter deltas, bytes, cache hit/miss) with {!annotate} /
    {!bump}, and marks point events (message sends, retransmissions,
    crashes) with {!instant}.  Cross-activation causality is explicit:
    {!current} exposes the innermost open span's id, which a message can
    carry to another "site" so the eventual delivery is recorded as a
    causally-linked child of the originating span ({!instant}'s [?parent])
    — and a flow link ({!new_flow}) draws the arrow between lanes in the
    trace viewer.

    Disabled by default; every entry point then costs one ref read.  The
    collector is process-global, like {!Metrics.default}.  All timestamps
    come from the monotonic {!Clock}, so durations are never negative.

    {b Domain safety:} the global event lists and id counters are
    mutex-guarded, and each domain keeps its {e own} span stack (so
    nesting reflects one domain's call tree).  A server worker handling
    a request on its own domain calls {!set_lane} once; all its spans —
    including evaluator-internal ones — then render in its own lane,
    keeping B/E pairs well-nested per lane under concurrency.
    {!annotate}/{!bump} mutate only the calling domain's open span. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Drop all recorded events and reset ids (keeps the enabled flag). *)
val clear : unit -> unit

(** Typed annotation values. *)
type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** [with_span name f] runs [f ()]; when tracing is enabled, records a
    span named [name] (child of the innermost active span, or a root)
    with [f]'s monotonic-clock duration, also on exception.  [lane] is
    the Chrome "thread" the span renders in (default 0, the main lane);
    [attrs] seeds its annotations. *)
val with_span : ?lane:int -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a

(** Id of the innermost open span, or 0 when none (or tracing is off).
    Carry this across an activation boundary to link the far side back. *)
val current : unit -> int

(** Attach (or overwrite) an annotation on the innermost open span. *)
val annotate : string -> value -> unit

(** Add [d] to an integer annotation on the innermost open span
    (creating it at 0) — for counter deltas like page hits/misses. *)
val bump : string -> int -> unit

(** Fresh flow-link id, for tying an {!instant} pair across lanes. *)
val new_flow : unit -> int

(** [instant name] records a point event.  [parent] is the causal origin
    span id (defaults to {!current}); [flow = (id, false)] starts a flow
    arrow here and [(id, true)] lands it. *)
val instant :
  ?lane:int -> ?parent:int -> ?flow:int * bool -> ?attrs:(string * value) list ->
  string -> unit

(** Name a lane (rendered as the Chrome thread name, e.g. "site 3"). *)
val name_lane : int -> string -> unit

(** Set the calling domain's default lane: spans and instants that do not
    pass [?lane] land there.  Fresh domains start at lane 0. *)
val set_lane : int -> unit

(** The calling domain's default lane. *)
val lane : unit -> int

(** {1 Frozen views} *)

type span = {
  id : int;
  parent : int; (** 0 = root *)
  name : string;
  lane : int;
  start_ns : float;
  dur_ns : float;
  attrs : (string * value) list; (** in insertion order *)
  children : span list; (** in execution order *)
}

(** Completed root spans, in execution order. *)
val spans : unit -> span list

type instant = {
  i_name : string;
  i_lane : int;
  i_parent : int;
  i_ts_ns : float;
  i_flow : int;
  i_flow_end : bool;
  i_attrs : (string * value) list;
}

(** Recorded instant events, in emission order. *)
val instants : unit -> instant list

(** Indented textual rendering of {!spans} (what [ssdql --trace] prints). *)
val render : unit -> string

(** Human duration formatting ("1.5us", "2.30ms", ...), shared with
    {!Profile}'s table rendering. *)
val ns_pretty : float -> string

(** {1 Chrome trace-event export}

    The whole event stream as a catapult JSON document:
    [{"traceEvents": [...]}] with ["B"]/["E"] span pairs (well-nested per
    lane), ["i"] instants carrying [parent_id] args, ["s"]/["f"] flow
    pairs, and ["M"] thread-name metadata.  Timestamps are microseconds
    from the earliest recorded event. *)
val to_chrome : unit -> Ssd.Json.t

val write_chrome : string -> unit
