(** Operator profiler: per-operator inclusive/exclusive time aggregated
    from the {!Trace} span stream — what [ssdql profile] prints.

    Inclusive time of an operator name sums the durations of its spans
    that have no same-named ancestor (recursion is billed once);
    exclusive time sums each span's duration minus its direct children's.
    Exclusive times therefore partition the traced wall-clock: summed
    over all operators they equal the root spans' total. *)

type row = {
  name : string;
  count : int;
  inclusive_ns : float;
  exclusive_ns : float;
}

(** Aggregate a span forest into rows, sorted by exclusive time
    (descending, ties by name). *)
val of_spans : Trace.span list -> row list

(** Total duration of the root spans (the traced wall-clock). *)
val total_ns : Trace.span list -> float

(** Sorted flame table in text.  [total] (default: sum of exclusive
    times) is the denominator of the [excl%] column. *)
val render : ?total:float -> row list -> string

(** The same table as JSON:
    [{"total_ns": ..., "rows": [{"name", "count", "inclusive_ns",
    "exclusive_ns"}, ...]}]. *)
val to_json : ?total:float -> row list -> Ssd.Json.t
