(** Monotonic process clock, in nanoseconds.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] (bechamel's stub, the same
    clock the benchmarks use), so differences of two readings are always
    non-negative — unlike [Unix.gettimeofday], which steps backwards under
    clock adjustment.  The epoch is arbitrary (boot time on Linux); only
    differences are meaningful. *)

val now_ns : unit -> float
