(** Structured event log: a bounded in-memory ring of JSONL-renderable
    events with an optional file sink.

    Where {!Metrics} answers "how much, how fast", events answer "what
    happened": slow queries (with plan and cardinality estimate),
    admission clamp/shed decisions, cache invalidations, WAL
    commit/checkpoint/recovery.  The serve layer tails the ring over
    [GET /events?n=K] and the [EVENTS] protocol verb.

    Emission is domain-safe (one mutex, no history-sized allocation) and
    never raises — a broken sink is swallowed, telemetry must not fail
    requests.  The ring overwrites oldest-first; overwrites are counted
    on the [events.dropped] counter ([events.emitted] counts all
    emissions). *)

type event = {
  seq : int;  (** monotonically increasing per log *)
  ts : float;  (** Unix epoch seconds (wall clock, for correlation) *)
  kind : string;  (** e.g. [slow_query], [admission.shed], [wal.commit] *)
  fields : (string * Ssd.Json.t) list;
}

type log

(** [create ?registry ?capacity ()] — ring of [capacity] (default 512)
    events; drop/emit counters register in [registry]. *)
val create : ?registry:Metrics.registry -> ?capacity:int -> unit -> log

(** The process-wide log all built-in emitters report to. *)
val default : log

(** Replace the ring (discards buffered events). *)
val set_capacity : log -> int -> unit

(** Install (or with [None] remove) a sink called with each rendered
    JSONL line (newline included), outside the ring lock.  Sink
    exceptions are swallowed. *)
val set_sink : log -> (string -> unit) option -> unit

(** Append-mode file sink that flushes per line. *)
val file_sink : string -> string -> unit

(** [emit log kind fields] appends an event; timestamps it with the
    wall clock. *)
val emit : log -> string -> (string * Ssd.Json.t) list -> unit

(** Last [n] (default 20) events, oldest first. *)
val tail : ?n:int -> log -> event list

(** {!tail} rendered as JSONL (one object per line). *)
val tail_jsonl : ?n:int -> log -> string

val to_json : event -> Ssd.Json.t
val render_jsonl : event -> string
