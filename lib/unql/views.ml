type t = (string * Ast.expr) list (* definition order *)

let empty = []

let define ~name src reg =
  if List.mem_assoc name reg then
    Ssd_diag.error ~code:"SSD530" "Views.define: %s is already defined" name;
  reg @ [ (name, Parser.parse src) ]

let names reg = List.map fst reg

let desugar reg q =
  List.fold_right (fun (name, def) body -> Ast.Let (name, def, body)) reg q

let run reg ~db src = Eval.eval ~db (desugar reg (Parser.parse src))

let materialize reg ~db name =
  if not (List.mem_assoc name reg) then raise Not_found;
  (* evaluate the prefix of the registry up to [name] *)
  let rec prefix = function
    | [] -> []
    | (n, d) :: _ when n = name -> [ (n, d) ]
    | (n, d) :: rest -> (n, d) :: prefix rest
  in
  Eval.eval ~db (desugar (prefix reg) (Ast.Var name))
