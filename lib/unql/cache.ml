module Graph = Ssd.Graph
module Label = Ssd.Label
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

let m_hits = Metrics.counter "unql.cache.hits"
let m_misses = Metrics.counter "unql.cache.misses"
let m_evictions = Metrics.counter "unql.cache.evictions"
let m_invalidations = Metrics.counter "unql.cache.invalidations"
let m_plan_hits = Metrics.counter "unql.cache.plan_hits"
let m_plan_misses = Metrics.counter "unql.cache.plan_misses"
let m_revalidated = Metrics.counter "incr.cache.revalidated"
let m_reval_dropped = Metrics.counter "incr.cache.dropped"

(* ------------------------------------------------------------------ *)
(* Graph fingerprints                                                  *)
(* ------------------------------------------------------------------ *)

(* FNV-1a-style mixing over the canonical edge listing.  [fold_edges]
   visits nodes in id order and edges in insertion order, both fixed for
   an immutable graph, so the fingerprint is a pure function of the
   graph value. *)
let mix h x = (h * 0x01000193) lxor (x land max_int)

let compute_fingerprint g =
  let h = ref (mix (mix 0x811c9dc5 (Graph.n_nodes g)) (Graph.root g)) in
  Graph.fold_edges
    (fun () u l v ->
      let lh = match l with Graph.Eps -> 17 | Graph.Lab l -> Label.hash l in
      h := mix (mix (mix !h u) lh) v)
    () g;
  !h land max_int

(* Fingerprints are O(edges); repeated queries against one resident
   database are the common case, so memoize the last few graphs by
   physical identity. *)
let fp_memo : (Graph.t * int) list ref = ref []
let fp_memo_capacity = 8

let fingerprint g =
  match List.find_opt (fun (g0, _) -> g0 == g) !fp_memo with
  | Some (_, fp) -> fp
  | None ->
    let fp = compute_fingerprint g in
    let keep = List.filteri (fun i _ -> i < fp_memo_capacity - 1) !fp_memo in
    fp_memo := (g, fp) :: keep;
    fp

(* ------------------------------------------------------------------ *)
(* The cache                                                           *)
(* ------------------------------------------------------------------ *)

type key = {
  qtext : string; (* canonical rendering of the normalized AST *)
  fp : int;
}

type entry = {
  result : Graph.t;
  mutable tick : int; (* last use; larger = more recent *)
}

type t = {
  cache_capacity : int;
  table : (key, entry) Hashtbl.t;
  plans : (key, Ast.expr) Hashtbl.t;
      (* chosen plans, same key space; bounded by cache_capacity with
         drop-all overflow (plans are cheap to recompute, a planned AST
         holds no graph data) *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
}

let create ?(capacity = 128) () =
  {
    cache_capacity = max 1 capacity;
    table = Hashtbl.create 64;
    plans = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let shared = create ()

let capacity c = c.cache_capacity

let stats (c : t) : stats =
  {
    hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    invalidations = c.invalidations;
    size = Hashtbl.length c.table;
  }

let drop_invalidated (c : t) n =
  c.invalidations <- c.invalidations + n;
  Metrics.add m_invalidations n

let clear c =
  let n = Hashtbl.length c.table in
  Hashtbl.reset c.table;
  Hashtbl.reset c.plans;
  drop_invalidated c n

let invalidate c db =
  let fp = fingerprint db in
  let doomed =
    Hashtbl.fold (fun k _ acc -> if k.fp = fp then k :: acc else acc) c.table []
  in
  List.iter (Hashtbl.remove c.table) doomed;
  (* Plans depend on the statistics of the same graph: drop them too. *)
  let doomed_plans =
    Hashtbl.fold (fun k _ acc -> if k.fp = fp then k :: acc else acc) c.plans []
  in
  List.iter (Hashtbl.remove c.plans) doomed_plans;
  let n = List.length doomed in
  drop_invalidated c n;
  n

(* Delta-driven revalidation: instead of dropping every entry of the
   superseded graph wholesale, the caller proves some queries untouched
   (label-footprint disjoint from the update's delta, see {!Footprint})
   and those entries are re-keyed to the new fingerprint — the cached
   result is still the right answer.  Plans move with them: a kept
   query only reads labels the delta did not touch, so the statistics
   its plan was chosen under are unchanged too. *)
let revalidate c ~old_db ~new_db ~keep =
  let old_fp = fingerprint old_db in
  let new_fp = fingerprint new_db in
  if old_fp = new_fp then (0, 0)
  else begin
    let moved =
      Hashtbl.fold
        (fun k e acc -> if k.fp = old_fp then (k, e) :: acc else acc)
        c.table []
    in
    let kept = ref 0 and dropped = ref 0 in
    List.iter
      (fun ((k : key), e) ->
        Hashtbl.remove c.table k;
        if keep k.qtext then begin
          incr kept;
          Hashtbl.replace c.table { k with fp = new_fp } e
        end
        else incr dropped)
      moved;
    let plans =
      Hashtbl.fold
        (fun k p acc -> if k.fp = old_fp then (k, p) :: acc else acc)
        c.plans []
    in
    List.iter
      (fun ((k : key), p) ->
        Hashtbl.remove c.plans k;
        if keep k.qtext then Hashtbl.replace c.plans { k with fp = new_fp } p)
      plans;
    drop_invalidated c !dropped;
    Metrics.add m_revalidated !kept;
    Metrics.add m_reval_dropped !dropped;
    (!kept, !dropped)
  end

let touch c e =
  c.clock <- c.clock + 1;
  e.tick <- c.clock

(* Capacity is small (default 128), so LRU eviction by linear scan is
   cheaper than maintaining an intrusive list. *)
let evict_lru c =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, e0) when e0.tick <= e.tick -> acc
        | _ -> Some (k, e))
      c.table None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove c.table k;
    c.evictions <- c.evictions + 1;
    Metrics.incr m_evictions
  | None -> ()

(* The query half of the cache key, FNV-1a over the canonical rendering
   of the normalized AST.  Shared with the lint pass: [ssdql check] and
   the cache report the same fingerprint for the same query. *)
let query_text q = Pretty.expr_to_string (Optimize.reorder q)

let query_fingerprint q =
  let s = query_text q in
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h land max_int

let key_of ~db q = { qtext = query_text q; fp = fingerprint db }

(* Lookup and insertion halves of [eval], exposed separately so a caller
   that owns its own lock (the query server shares one cache across
   concurrent clients) can consult the cache under the lock but run the
   miss evaluation outside it.  Counting matches [eval]: a [find] is a
   hit or a miss; [add] only evicts/inserts. *)
let find cache ~db q =
  let key = Trace.with_span "unql.cache.key" (fun () -> key_of ~db q) in
  match Hashtbl.find_opt cache.table key with
  | Some e ->
    touch cache e;
    cache.hits <- cache.hits + 1;
    Metrics.incr m_hits;
    Trace.bump "cache_hits" 1;
    Some e.result
  | None ->
    cache.misses <- cache.misses + 1;
    Metrics.incr m_misses;
    Trace.bump "cache_misses" 1;
    None

let add cache ~db q result =
  let key = key_of ~db q in
  if not (Hashtbl.mem cache.table key) then begin
    if Hashtbl.length cache.table >= cache.cache_capacity then evict_lru cache;
    let e = { result; tick = 0 } in
    touch cache e;
    Hashtbl.replace cache.table key e
  end

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

(* Chosen plans are keyed exactly like results: (normalized query text,
   graph fingerprint).  The result key's normalization is [reorder] only
   — planned generator orders must NOT leak into [query_text], or a
   planner change would silently split the result cache. *)
let find_plan cache ~db q =
  let key = key_of ~db q in
  match Hashtbl.find_opt cache.plans key with
  | Some planned ->
    Metrics.incr m_plan_hits;
    Some planned
  | None ->
    Metrics.incr m_plan_misses;
    None

let add_plan cache ~db q planned =
  let key = key_of ~db q in
  if not (Hashtbl.mem cache.plans key) then begin
    if Hashtbl.length cache.plans >= cache.cache_capacity then
      Hashtbl.reset cache.plans;
    Hashtbl.replace cache.plans key planned
  end

(* Find-or-compute the cost-based rewrite of [q] for [db] under the
   annotated guide. *)
let planned cache ~db ~annotated q =
  match find_plan cache ~db q with
  | Some p -> p
  | None ->
    let p =
      Trace.with_span "unql.cache.plan" (fun () ->
          Optimize.reorder_generators annotated q)
    in
    add_plan cache ~db q p;
    p

let eval ?(options = Eval.default_options) ~cache ~db q =
  match find cache ~db q with
  | Some result -> result
  | None ->
    let result =
      Trace.with_span "unql.cache.fill" (fun () -> Eval.eval ~options ~db q)
    in
    add cache ~db q result;
    result

let run ?options ~cache ~db src = eval ?options ~cache ~db (Parser.parse src)
