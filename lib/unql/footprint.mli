(** Static label footprint of a query — the analysis behind delta-driven
    cache revalidation and subscription skipping (lib/incr).

    [of_expr q] computes a set [S] of edge labels such that the result
    of [q] is unchanged by any update whose delta only touches labels
    outside [S] (and touches no ε edge — ε changes alter the ε-closed
    successors of {e every} label, and the delta side reports them as ⊤,
    see {!Ssd_incr.Delta.touched_labels}).  When no finite such set can
    be established the footprint is ⊤ ([Top]) and the query must be
    treated as depending on everything.

    Soundness sketch: a query's value is determined by the edges its
    evaluation can traverse plus anything its result embeds.  Traversal
    from [DB]'s root only follows steps in the query, and every step
    contributes its labels to [S] — or widens to ⊤ when it matches an
    open label set ([\x] binders, non-[Exact] predicates).  Subtree
    binders ([\t]) widen to ⊤ as well: the bound subtree (returned, or
    observed by [isempty]/[==]) exposes every label reachable below the
    match point, which no static set bounds.  Structural recursion
    ([sfun]) walks every edge of its argument — ⊤.  What remains
    (existence-style patterns ending in [_], label-literal and regex
    steps, conditions over literals) reads only [S]-labeled edges, and
    a label-disjoint delta cannot add, remove or retarget any of them —
    even when a non-monotone update renumbers nodes, since a renumbered
    [S]-reachable region would surface renamed [S]-labeled edges in the
    delta. *)

type t =
  | Labels of Set.Make(Ssd.Label).t
  | Top

val of_expr : Ast.expr -> t

(** Parse-and-analyze; ⊤ on a parse error (unknown text depends on
    everything). *)
val of_string : string -> t

(** Sorted labels, or [None] for ⊤. *)
val labels : t -> Ssd.Label.t list option

val is_top : t -> bool

(** [disjoint fp delta_labels] — true only when both sides are finite
    and share no label: the cached result provably survives the update.
    [delta_labels] uses the {!Ssd_incr.Delta.touched_labels} convention
    ([None] = ⊤). *)
val disjoint : t -> Ssd.Label.t list option -> bool
