(** Algebraic query rewrites (section 4).

    The optimizations here are the AST-level ones the tutorial attributes
    to the relational tradition: pushing selections toward the generators
    that bind their variables, and pre-compiling / minimizing the automata
    of regular path expressions.  DataGuide-based pruning lives partly
    here ({!prune_with_guide}) and partly in {!Eval.options}. *)

(** Move every [where] condition as early as possible: right after the
    first generator prefix that binds all the condition's label
    variables.  Semantics-preserving (conditions are pure); evaluated
    earlier, they cut the binding sets sooner. *)
val reorder_clauses : Ast.clause list -> Ast.clause list

(** Apply {!reorder_clauses} to every [select] in an expression. *)
val reorder : Ast.expr -> Ast.expr

(** Replace each regular path step by one with a minimized DFA-equivalent
    regex state space... (not expressible at regex level), so instead:
    report the automaton sizes before/after minimization for each regex
    step of the query — the diagnostic used by experiment E8. *)
val automaton_sizes :
  alphabet:Ssd.Label.t list -> Ast.expr -> (string * int * int) list
(** (regex text, NFA states, minimized DFA states) per regex step. *)

(** Drop generators whose all-literal path provably does not occur in the
    data (the DataGuide rejects it): the whole [select] yields [{}], so
    it is replaced by [Empty].  Returns the rewritten expression and the
    number of selects pruned. *)
val prune_with_guide : Ssd_schema.Dataguide.t -> Ast.expr -> Ast.expr * int

(** {2 Cost-based generator planning}

    Statistics-driven ordering of the generators of each [select],
    estimated over a cardinality-annotated DataGuide
    ({!Ssd_schema.Annotated}).  Only reorderings that provably preserve
    semantics are taken: generators keep their relative order whenever
    one binds a tree variable the other binds or reads, or a label name
    one of them mentions — everything else commutes up to bisimulation
    (label binders unify, conditions are pure). *)

(** How a generator will be answered. *)
type access_path =
  | Scan (** data-graph traversal *)
  | Guide_path (** all-literal path: one DataGuide lookup *)
  | Guide_product (** single regex: automaton x guide product *)
  | Pindex (** all-literal path within the path index's depth *)

val access_path_to_string : access_path -> string

type gen_plan = {
  g_index : int; (** position in the original clause order *)
  g_text : string; (** the generator's pattern, pretty-printed *)
  g_est : float option;
      (** upper bound on environments produced per incoming environment;
          [None] when the source cannot be bounded statically *)
  g_work : float; (** traversal work estimate for one match *)
  g_unbounded : bool;
      (** recursive path expression over a cyclic guide region *)
  g_access : access_path;
}

type plan = {
  p_order : int list; (** chosen order, as original indices *)
  p_gens : gen_plan list; (** per-generator plans, in chosen order *)
  p_est : float option; (** bound on result environments (product) *)
  p_cost_syntax : float; (** cost estimate of the syntactic order *)
  p_cost_planned : float; (** cost estimate of the chosen order *)
}

(** All [Sbind] label-binder names of the expression — the names whose
    [Lname] occurrences may denote any label. *)
val sbind_names : Ast.expr -> string list

(** Plan one [select]'s clause list.  [lbound] is {!sbind_names} of the
    enclosing expression; [pindex_depth] enables the path-index access
    path up to that depth. *)
val plan_clauses :
  Ssd_schema.Annotated.t ->
  ?pindex_depth:int ->
  lbound:string list ->
  Ast.clause list ->
  plan

(** Plan every [select]: returns the rewritten expression (generators in
    planned order, conditions re-pushed) and the plans, outermost-first. *)
val plan_expr :
  Ssd_schema.Annotated.t -> ?pindex_depth:int -> Ast.expr -> Ast.expr * plan list

(** Just the rewrite of {!plan_expr}. *)
val reorder_generators : Ssd_schema.Annotated.t -> Ast.expr -> Ast.expr
