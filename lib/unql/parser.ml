module Label = Ssd.Label
module Regex = Ssd_automata.Regex
module Lpred = Ssd_automata.Lpred
open Ast

exception Parse_error of string

(* Byte-offset marks recorded during the parse, in parse order: one per
   pattern step and one per pattern binder ([\x] at pattern position).
   The lint pass walks the AST in the same order and aligns marks with
   occurrences, giving diagnostics a source span without annotating the
   AST itself. *)
type mark_kind =
  | Mstep
  | Mbind

type marks = {
  msrc : string;
  items : (mark_kind * int * int) array;
}

type st = {
  src : string;
  mutable pos : int;
  mutable marks : (mark_kind * int * int) list; (* reversed *)
}

let record st kind start = st.marks <- (kind, start, st.pos) :: st.marks

let fail st msg =
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < st.pos && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    st.src;
  raise
    (Parse_error
       (Printf.sprintf "line %d, column %d (offset %d): %s" !line
          (st.pos - !bol + 1) st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some '#' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws st
  | _ -> ()

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s msg = if looking_at st s then st.pos <- st.pos + String.length s else fail st msg

let lex_ident st =
  let start = st.pos in
  while
    match peek st with
    | Some c -> Label.is_ident_char c
    | None -> false
  do
    advance st
  done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.src start (st.pos - start)

(* Peek the next identifier without consuming (for keyword dispatch). *)
let peek_word st =
  skip_ws st;
  match peek st with
  | Some c when Label.is_ident_start c ->
    let p = st.pos in
    let w = lex_ident st in
    st.pos <- p;
    Some w
  | _ -> None

let eat_word st w =
  skip_ws st;
  let p = st.pos in
  match peek st with
  | Some c when Label.is_ident_start c ->
    if lex_ident st = w then true
    else begin
      st.pos <- p;
      false
    end
  | _ -> false

let lex_string st =
  eat st "\"" "expected '\"'";
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some 'r' -> Buffer.add_char buf '\r'
       | Some c -> Buffer.add_char buf c
       | None -> fail st "unterminated escape");
      advance st;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let lex_number st =
  let start = st.pos in
  let numchar c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while (match peek st with Some c -> numchar c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Label.Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Label.Float f
     | None -> fail st ("bad numeric literal " ^ s))

(* A label literal in expression context (numbers, strings, booleans). *)
let try_label_literal st =
  skip_ws st;
  match peek st with
  | Some '"' -> Some (Label.Str (lex_string st))
  | Some c when c = '-' || (c >= '0' && c <= '9') -> Some (lex_number st)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pattern steps                                                       *)
(* ------------------------------------------------------------------ *)

(* Scan regex text between '<' and the matching '>' (a '>' inside
   parentheses — comparison predicates — does not close). *)
let lex_regex_text st =
  eat st "<" "expected '<'";
  let start = st.pos in
  let depth = ref 0 in
  let in_string = ref false in
  let closed = ref false in
  while not !closed do
    match peek st with
    | None -> fail st "unterminated <regex>"
    | Some '"' ->
      in_string := not !in_string;
      advance st
    | Some _ when !in_string -> advance st
    | Some '(' ->
      incr depth;
      advance st
    | Some ')' ->
      decr depth;
      advance st
    | Some '>' when !depth = 0 ->
      closed := true
    | Some _ -> advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  advance st;
  (* consume '>' *)
  text

(* Scan single-step predicate text up to a delimiter. *)
let lex_step_text st =
  let start = st.pos in
  let depth = ref 0 in
  let in_string = ref false in
  let stop = ref false in
  while not !stop do
    match peek st with
    | None -> stop := true
    | Some '"' ->
      in_string := not !in_string;
      advance st
    | Some _ when !in_string -> advance st
    | Some '(' ->
      incr depth;
      advance st
    | Some ')' ->
      decr depth;
      advance st
    | Some ('.' | ',' | ':' | '}') when !depth = 0 -> stop := true
    | Some _ -> advance st
  done;
  let text = String.trim (String.sub st.src start (st.pos - start)) in
  if text = "" then fail st "expected a pattern step";
  text

let is_bare_ident s =
  s <> ""
  && Label.is_ident_start s.[0]
  && String.for_all Label.is_ident_char s
  && s <> "true" && s <> "false"

let rec pred_of_regex st = function
  | Regex.Atom p -> p
  | Regex.Alt (a, b) -> Lpred.Or (pred_of_regex st a, pred_of_regex st b)
  | r ->
    fail st
      ("path operators must be wrapped in <...>, got: " ^ Regex.to_string r)

let step_of_text st text =
  if text = "_" then Spred Ssd_automata.Lpred.Any
  else if is_bare_ident text then Slit (Lname text)
  else
    match Regex.parse text with
    | Regex.Atom (Lpred.Exact l) -> Slit (Llit l)
    | r -> Spred (pred_of_regex st r)
    | exception Regex.Parse_error msg -> fail st msg

let parse_step_at st =
  match peek st with
  | Some '\\' ->
    advance st;
    Sbind (lex_ident st)
  | Some '<' -> (
    let text = lex_regex_text st in
    let r =
      match Regex.parse text with
      | r -> r
      | exception Regex.Parse_error msg -> fail st msg
    in
    (* optional path binder: <re> as \p *)
    let saved = st.pos in
    skip_ws st;
    if looking_at st "as" then begin
      st.pos <- st.pos + 2;
      skip_ws st;
      match peek st with
      | Some '\\' ->
        advance st;
        Sregex (r, Some (lex_ident st))
      | _ ->
        st.pos <- saved;
        Sregex (r, None)
    end
    else begin
      st.pos <- saved;
      Sregex (r, None)
    end)
  | _ -> step_of_text st (lex_step_text st)

let parse_step st =
  skip_ws st;
  let step_start = st.pos in
  let step = parse_step_at st in
  record st Mstep step_start;
  step

let parse_steps st =
  let rec go acc =
    let acc = parse_step st :: acc in
    skip_ws st;
    if peek st = Some '.' then begin
      advance st;
      go acc
    end
    else List.rev acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_pattern_at st =
  skip_ws st;
  match peek st with
  | Some '\\' ->
    let start = st.pos in
    advance st;
    let x = lex_ident st in
    record st Mbind start;
    Pbind x
  | Some '_' when (match peek2 st with Some c -> not (Label.is_ident_char c) | None -> true) ->
    advance st;
    Pany
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Pedges []
    end
    else begin
      let entry () =
        let steps = parse_steps st in
        skip_ws st;
        if peek st = Some ':' then begin
          advance st;
          (steps, parse_pattern_at st)
        end
        else (steps, Pany)
      in
      let entries = ref [ entry () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        entries := entry () :: !entries;
        skip_ws st
      done;
      eat st "}" "expected '}' after pattern entries";
      Pedges (List.rev !entries)
    end
  | _ -> fail st "expected a pattern ('\\x', '_' or '{...}')"

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let parse_atom st =
  skip_ws st;
  match try_label_literal st with
  | Some l -> Alit l
  | None -> (
    match peek st with
    | Some '\\' ->
      (* Tolerate the binding-occurrence spelling \l in conditions. *)
      advance st;
      Aname (lex_ident st)
    | Some c when Label.is_ident_start c -> (
      let id = lex_ident st in
      match id with
      | "true" -> Alit (Label.Bool true)
      | "false" -> Alit (Label.Bool false)
      | _ -> Aname id)
    | _ -> fail st "expected a label atom")

let parse_cmpop st =
  skip_ws st;
  if looking_at st "!=" then (st.pos <- st.pos + 2; Neq)
  else if looking_at st "<=" then (st.pos <- st.pos + 2; Le)
  else if looking_at st ">=" then (st.pos <- st.pos + 2; Ge)
  else if looking_at st "=" then (advance st; Eq)
  else if looking_at st "<" then (advance st; Lt)
  else if looking_at st ">" then (advance st; Gt)
  else fail st "expected a comparison operator"

let type_test_name = function
  | "isint" -> Some "int"
  | "isfloat" -> Some "float"
  | "isstring" -> Some "string"
  | "isbool" -> Some "bool"
  | "issymbol" -> Some "symbol"
  | _ -> None

type parsed_case = {
  case_name : string;
  case : Ast.sfun_case;
}

let rec parse_cond st = parse_or st

and parse_or st =
  let left = parse_and st in
  if eat_word st "or" then Cor (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_word st "and" then Cand (left, parse_and st) else left

and parse_not st =
  if eat_word st "not" then Cnot (parse_not st)
  else parse_base_cond st

and parse_base_cond st =
  skip_ws st;
  match peek_word st with
  | Some "isempty" ->
    ignore (eat_word st "isempty");
    skip_ws st;
    eat st "(" "isempty expects '('";
    let e = parse_expr st in
    skip_ws st;
    eat st ")" "isempty expects ')'";
    Cempty e
  | Some "equal" ->
    ignore (eat_word st "equal");
    skip_ws st;
    eat st "(" "equal expects '('";
    let e1 = parse_expr st in
    skip_ws st;
    eat st "," "equal expects ','";
    let e2 = parse_expr st in
    skip_ws st;
    eat st ")" "equal expects ')'";
    Cequal (e1, e2)
  | Some (("startswith" | "contains") as f) ->
    ignore (eat_word st f);
    skip_ws st;
    eat st "(" (f ^ " expects '('");
    let a = parse_atom st in
    skip_ws st;
    eat st "," (f ^ " expects ','");
    skip_ws st;
    let s =
      match try_label_literal st with
      | Some (Label.Str s) -> s
      | _ -> fail st (f ^ " expects a string literal")
    in
    skip_ws st;
    eat st ")" (f ^ " expects ')'");
    if f = "startswith" then Cstarts (a, s) else Ccontains (a, s)
  | Some w when type_test_name w <> None ->
    ignore (eat_word st w);
    let t = Option.get (type_test_name w) in
    skip_ws st;
    eat st "(" (w ^ " expects '('");
    let a = parse_atom st in
    skip_ws st;
    eat st ")" (w ^ " expects ')'");
    Cistype (t, a)
  | _ ->
    skip_ws st;
    if peek st = Some '(' then begin
      advance st;
      let c = parse_cond st in
      skip_ws st;
      eat st ")" "expected ')'";
      c
    end
    else
      let a1 = parse_atom st in
      let op = parse_cmpop st in
      let a2 = parse_atom st in
      Ccmp (op, a1, a2)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and parse_expr st =
  skip_ws st;
  match peek_word st with
  | Some "select" ->
    ignore (eat_word st "select");
    let head = parse_expr st in
    if not (eat_word st "where") then fail st "select expects 'where'";
    let clauses = ref [ parse_clause st ] in
    skip_ws st;
    while peek st = Some ',' do
      advance st;
      clauses := parse_clause st :: !clauses;
      skip_ws st
    done;
    Select (head, List.rev !clauses)
  | Some "let" ->
    ignore (eat_word st "let");
    if eat_word st "sfun" then begin
      let first = parse_case st in
      let cases = ref [ first ] in
      skip_ws st;
      while peek st = Some '|' do
        advance st;
        let c = parse_case st in
        if c.case_name <> first.case_name then
          fail st
            (Printf.sprintf "sfun cases must share one name (%s vs %s)" first.case_name
               c.case_name);
        cases := c :: !cases;
        skip_ws st
      done;
      if not (eat_word st "in") then fail st "let sfun expects 'in'";
      let body = parse_expr st in
      Letsfun
        ( { fname = first.case_name; cases = List.rev_map (fun c -> c.case) !cases },
          body )
    end
    else begin
      let x = lex_ident st in
      skip_ws st;
      eat st "=" "let expects '='";
      let a = parse_expr st in
      if not (eat_word st "in") then fail st "let expects 'in'";
      let b = parse_expr st in
      Let (x, a, b)
    end
  | Some "if" ->
    ignore (eat_word st "if");
    let c = parse_cond st in
    if not (eat_word st "then") then fail st "if expects 'then'";
    let a = parse_expr st in
    if not (eat_word st "else") then fail st "if expects 'else'";
    let b = parse_expr st in
    If (c, a, b)
  | _ ->
    let left = parse_prim st in
    if eat_word st "union" then Union (left, parse_expr st) else left

and parse_clause st =
  skip_ws st;
  match peek st with
  | Some ('\\' | '{' | '_') -> (
    (* '\l <- e' is a generator but '\l = "x"' is a condition; try the
       generator parse and fall back (dropping any marks the attempt
       recorded). *)
    let saved = st.pos in
    let saved_marks = st.marks in
    match
      let p = parse_pattern_at st in
      skip_ws st;
      if looking_at st "<-" then Some p else None
    with
    | Some p ->
      eat st "<-" "pattern clause expects '<-'";
      let e = parse_expr st in
      Gen (p, e)
    | None | (exception Parse_error _) ->
      st.pos <- saved;
      st.marks <- saved_marks;
      Where (parse_cond st))
  | _ -> Where (parse_cond st)

and parse_prim st =
  skip_ws st;
  match try_label_literal st with
  | Some l -> Tree [ (Llit l, Empty) ]
  | None -> (
    match peek st with
    | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Empty
      end
      else begin
        let entry () =
          skip_ws st;
          let le =
            match try_label_literal st with
            | Some l -> Llit l
            | None -> (
              match peek st with
              | Some c when Label.is_ident_start c -> (
                let id = lex_ident st in
                match id with
                | "true" -> Llit (Label.Bool true)
                | "false" -> Llit (Label.Bool false)
                | _ -> Lname id)
              | _ -> fail st "expected a label")
          in
          skip_ws st;
          if peek st = Some ':' then begin
            advance st;
            (le, parse_expr st)
          end
          else (le, Empty)
        in
        let entries = ref [ entry () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          entries := entry () :: !entries;
          skip_ws st
        done;
        eat st "}" "expected '}' after constructor entries";
        Tree (List.rev !entries)
      end
    | Some '(' ->
      advance st;
      let e = parse_expr st in
      skip_ws st;
      eat st ")" "expected ')'";
      e
    | Some '\\' ->
      (* Tolerate the binding-occurrence spelling for variable uses. *)
      advance st;
      Var (lex_ident st)
    | Some c when Label.is_ident_start c -> (
      let id = lex_ident st in
      skip_ws st;
      if peek st = Some '(' then begin
        advance st;
        let arg = parse_expr st in
        skip_ws st;
        eat st ")" ("expected ')' closing call to " ^ id);
        App (id, arg)
      end
      else
        match id with
        | "DB" | "db" -> Db
        | _ -> Var id)
    | _ -> fail st "expected an expression")

and parse_case st =
  skip_ws st;
  let name = lex_ident st in
  skip_ws st;
  eat st "(" "sfun case expects '('";
  skip_ws st;
  eat st "{" "sfun case expects '{'";
  let cstep = parse_step st in
  skip_ws st;
  eat st ":" "sfun case expects ':' before the tree variable";
  skip_ws st;
  let tvar = lex_ident st in
  skip_ws st;
  eat st "}" "sfun case expects '}'";
  skip_ws st;
  eat st ")" "sfun case expects ')'";
  skip_ws st;
  eat st "=" "sfun case expects '='";
  let body = parse_expr st in
  { case_name = name; case = { cstep; ctree = tvar; cbody = body } }

let parse_with_marks src =
  let st = { src; pos = 0; marks = [] } in
  let e = parse_expr st in
  skip_ws st;
  if peek st <> None then fail st "trailing input after expression";
  (e, { msrc = src; items = Array.of_list (List.rev st.marks) })

let parse src = fst (parse_with_marks src)

let parse_pattern src =
  let st = { src; pos = 0; marks = [] } in
  let p = parse_pattern_at st in
  skip_ws st;
  if peek st <> None then fail st "trailing input after pattern";
  p
