module Graph = Ssd.Graph
module Label = Ssd.Label
module Budget = Ssd.Budget
module Lpred = Ssd_automata.Lpred
module Regex = Ssd_automata.Regex
module Nfa = Ssd_automata.Nfa
module Dataguide = Ssd_schema.Dataguide
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace
open Ast

(* Runtime failures carry a full diagnostic under the same stable codes
   the static analyzer predicts them with (SSD303/304/305/307): a query
   that lints clean cannot reach any of these raises. *)
exception Runtime_error of Ssd_diag.t

let runtime_error ~code fmt =
  Printf.ksprintf
    (fun msg -> raise (Runtime_error (Ssd_diag.make Ssd_diag.Error ~code msg)))
    fmt

let () =
  Printexc.register_printer (function
    | Runtime_error d -> Some ("Unql.Eval.Runtime_error: " ^ Ssd_diag.to_string d)
    | _ -> None)

(* Execution counters (lib/obs): what evaluation actually does, as
   opposed to what the optimizer rewrote.  All report to
   [Metrics.default]. *)
let m_queries = Metrics.counter "unql.eval.queries"
let m_nodes = Metrics.counter "unql.eval.nodes_visited"
let m_edges = Metrics.counter "unql.eval.edges_traversed"
let m_bindings = Metrics.counter "unql.eval.bindings_produced"
let m_auto_steps = Metrics.counter "unql.eval.automaton_steps"
let m_sfun_edges = Metrics.counter "unql.eval.sfun_edge_visits"
let t_eval = Metrics.timer "unql.eval.time"
let h_select = Metrics.histogram "unql.eval.bindings_per_select"

type options = {
  reorder_clauses : bool;
  cache_nfa : bool;
  dataguide : Dataguide.t option;
  path_index : Ssd_index.Path_index.t option;
}

let default_options =
  { reorder_clauses = true; cache_nfa = true; dataguide = None; path_index = None }

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (String)

type entry =
  | Enode of int
  | Elabel of Label.t

(* An sfun closure: the definition, the sfuns visible at its definition,
   and the (function, input node) memo realizing the bulk semantics. *)
type closure = {
  def : sfun_def;
  mutable fenv : closure Env.t;
  memo : (int, int) Hashtbl.t;
  queue : int Queue.t;
}

type env = {
  vars : entry Env.t;
  funs : closure Env.t;
}

type ctx = {
  st : Store.t;
  db : Graph.t;
  db_node : int;
  opts : options;
  nfa_cache : (Regex.t, Nfa.t * int list array) Hashtbl.t;
  budget : Budget.t;
      (* Consumed only at generator positions (automaton frontier pops,
         pattern steps, sfun queue pops) — never while deciding a
         condition, so budget exhaustion drops whole bindings and the
         partial result stays a sound lower bound. *)
}

let nfa_of ctx r =
  if ctx.opts.cache_nfa then begin
    match Hashtbl.find_opt ctx.nfa_cache r with
    | Some entry -> entry
    | None ->
      let nfa = Nfa.of_regex r in
      let entry = (nfa, Nfa.closures nfa) in
      Hashtbl.add ctx.nfa_cache r entry;
      entry
  end
  else
    let nfa = Nfa.of_regex r in
    (nfa, Nfa.closures nfa)

(* Instrumented edge listing: every traversal below goes through this. *)
let succs ctx u =
  Metrics.incr m_nodes;
  let es = Store.labeled_succ ctx.st u in
  Metrics.add m_edges (List.length es);
  es

let resolve_label env = function
  | Llit l -> l
  | Lname x -> (
    match Env.find_opt x env.vars with
    | Some (Elabel l) -> l
    | Some (Enode _) ->
      runtime_error ~code:"SSD304" "tree variable %s used in label position" x
    | None -> Label.Sym x)

let resolve_atom env = function
  | Alit l -> l
  | Aname x -> (
    match Env.find_opt x env.vars with
    | Some (Elabel l) -> l
    | Some (Enode _) ->
      runtime_error ~code:"SSD304" "tree variable %s used in a condition" x
    | None -> Label.Sym x)

(* Comparisons promote Int/Float pairs so that "integers greater than
   2^16" style conditions behave numerically. *)
let compare_labels a b =
  match a, b with
  | Label.Int x, Label.Float y -> Stdlib.compare (float_of_int x) y
  | Label.Float x, Label.Int y -> Stdlib.compare x (float_of_int y)
  | a, b -> Label.compare a b

(* ------------------------------------------------------------------ *)
(* Regular path traversal inside the store                             *)
(* ------------------------------------------------------------------ *)

(* The two searches below run level-synchronous BFS over (node, state)
   pairs: a FIFO queue pops in exactly level order, so taking a whole
   level, expanding it, and merging the discovered pairs in frontier
   order visits the same pairs in the same order as the classic queue
   loop — but the expansion is pure (store/NFA reads only), so it can
   run across the domain pool (Ssd_par).  Budget steps are consumed on
   the coordinating domain, one per frontier item exactly as the queue
   loop consumed one per pop, before any expansion: the set of expanded
   items — and therefore the answer, even a Partial one — is identical
   for every --jobs value. *)

(* Take the budgeted prefix of a level: one step per item, stopping at
   the first denial (the remaining items are exactly those the queue
   loop would never have popped). *)
let take_budgeted ctx level =
  let n = Array.length level in
  let taken = ref 0 in
  while !taken < n && Budget.step ctx.budget do
    incr taken
  done;
  !taken

let regex_reach ctx start r =
  let nfa, closures = nfa_of ctx r in
  let seen = Hashtbl.create 64 in
  let answers = Hashtbl.create 16 in
  let next = ref [] in
  let push u q =
    if not (Hashtbl.mem seen (u, q)) then begin
      Hashtbl.add seen (u, q) ();
      next := (u, q) :: !next
    end
  in
  List.iter (push start) (Nfa.start_set nfa);
  let running = ref true in
  while !running && !next <> [] do
    let level = Array.of_list (List.rev !next) in
    next := [];
    let taken = take_budgeted ctx level in
    if taken < Array.length level then running := false;
    Metrics.add m_auto_steps taken;
    for i = 0 to taken - 1 do
      let u, q = level.(i) in
      if nfa.Nfa.accept.(q) then Hashtbl.replace answers u ()
    done;
    let expanded =
      Ssd_par.Pool.map_range taken (fun i ->
          let u, q = level.(i) in
          if nfa.Nfa.trans.(q) = [] then []
          else
            List.concat_map
              (fun (l, v) ->
                List.concat_map
                  (fun (p, q') ->
                    if Lpred.matches p l then
                      List.map (fun q'' -> (v, q'')) closures.(q')
                    else [])
                  nfa.Nfa.trans.(q))
              (succs ctx u))
    in
    Array.iter (List.iter (fun (v, q') -> push v q')) expanded
  done;
  Hashtbl.fold (fun u () acc -> u :: acc) answers [] |> List.sort_uniq compare

(* Like [regex_reach], but also return one (shortest, by BFS order)
   witness path per reached node — the value a path variable binds to. *)
let regex_reach_paths ctx start r =
  let nfa, closures = nfa_of ctx r in
  let parent = Hashtbl.create 64 in
  let answers = Hashtbl.create 16 in
  let next = ref [] in
  let push key prev =
    if not (Hashtbl.mem parent key) then begin
      Hashtbl.add parent key prev;
      next := key :: !next
    end
  in
  List.iter (fun q -> push (start, q) None) (Nfa.start_set nfa);
  let running = ref true in
  while !running && !next <> [] do
    let level = Array.of_list (List.rev !next) in
    next := [];
    let taken = take_budgeted ctx level in
    if taken < Array.length level then running := false;
    Metrics.add m_auto_steps taken;
    for i = 0 to taken - 1 do
      let ((u, q) as key) = level.(i) in
      if nfa.Nfa.accept.(q) && not (Hashtbl.mem answers u) then begin
        let rec unwind key acc =
          match Hashtbl.find parent key with
          | None -> acc
          | Some (prev, l) -> unwind prev (l :: acc)
        in
        Hashtbl.add answers u (unwind key [])
      end
    done;
    (* Workers return ((v, q''), (parent key, label)) per discovery;
       merging in frontier order makes first-discovery — and so each
       witness path — identical to the queue loop's. *)
    let expanded =
      Ssd_par.Pool.map_range taken (fun i ->
          let ((u, q) as key) = level.(i) in
          if nfa.Nfa.trans.(q) = [] then []
          else
            List.concat_map
              (fun (l, v) ->
                List.concat_map
                  (fun (p, q') ->
                    if Lpred.matches p l then
                      List.map (fun q'' -> ((v, q''), (key, l))) closures.(q')
                    else [])
                  nfa.Nfa.trans.(q))
              (succs ctx u))
    in
    Array.iter (List.iter (fun (key, prev) -> push key (Some prev))) expanded
  done;
  Hashtbl.fold (fun u path acc -> (u, path) :: acc) answers []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Reify a label path as the chain tree {l1: {l2: ... {}}}. *)
let chain_of_path ctx path =
  List.fold_right
    (fun l next ->
      let u = Store.add_node ctx.st in
      Store.add_edge ctx.st u l next;
      u)
    path
    (Store.add_node ctx.st)

(* ------------------------------------------------------------------ *)
(* Pattern matching                                                    *)
(* ------------------------------------------------------------------ *)

let bind_label env x l k =
  match Env.find_opt x env.vars with
  | Some (Elabel l0) -> if Label.equal l l0 then k env else []
  | Some (Enode _) ->
    runtime_error ~code:"SSD304" "variable %s bound as both tree and label" x
  | None -> k { env with vars = Env.add x (Elabel l) env.vars }

let rec match_steps ctx env node steps k =
  if not (Budget.step ctx.budget) then []
  else
    match steps with
  | [] -> k env node
  | Slit le :: rest ->
    let l = resolve_label env le in
    List.concat_map
      (fun (l', v) -> if Label.equal l l' then match_steps ctx env v rest k else [])
      (succs ctx node)
  | Sbind x :: rest ->
    List.concat_map
      (fun (l, v) -> bind_label env x l (fun env -> match_steps ctx env v rest k))
      (succs ctx node)
  | Spred p :: rest ->
    List.concat_map
      (fun (l, v) -> if Lpred.matches p l then match_steps ctx env v rest k else [])
      (succs ctx node)
  | Sregex (r, None) :: rest ->
    List.concat_map
      (fun v -> match_steps ctx env v rest k)
      (regex_reach ctx node r)
  | Sregex (r, Some p) :: rest ->
    List.concat_map
      (fun (v, path) ->
        let chain = chain_of_path ctx path in
        let env = { env with vars = Env.add p (Enode chain) env.vars } in
        match_steps ctx env v rest k)
      (regex_reach_paths ctx node r)

let rec match_pattern ctx env node = function
  | Pany -> [ env ]
  | Pbind x -> [ { env with vars = Env.add x (Enode node) env.vars } ]
  | Pedges entries ->
    List.fold_left
      (fun envs (steps, sub) ->
        List.concat_map
          (fun env ->
            match_steps ctx env node steps (fun env v -> match_pattern ctx env v sub))
          envs)
      [ env ] entries

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let all_literal_steps env steps =
  (* Paths answerable from a DataGuide: every step a fixed label. *)
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Slit le :: rest -> go (resolve_label env le :: acc) rest
    | (Sbind _ | Spred _ | Sregex _) :: _ -> None
  in
  go [] steps

(* A pattern is safe to match across worker domains when matching it
   cannot mutate the store: every step form reads only, except a regex
   with a path binder (its witness is reified as a chain of fresh store
   nodes).  Conditions never appear inside patterns, so this is the only
   exclusion. *)
let rec pattern_par_safe = function
  | Pany | Pbind _ -> true
  | Pedges entries ->
    List.for_all
      (fun (steps, sub) ->
        List.for_all
          (function Sregex (_, Some _) -> false | Slit _ | Sbind _ | Spred _ | Sregex (_, None) -> true)
          steps
        && pattern_par_safe sub)
      entries

let rec pattern_regexes p acc =
  match p with
  | Pany | Pbind _ -> acc
  | Pedges entries ->
    List.fold_left
      (fun acc (steps, sub) ->
        let acc =
          List.fold_left
            (fun acc -> function Sregex (r, _) -> r :: acc | Slit _ | Sbind _ | Spred _ -> acc)
            acc steps
        in
        pattern_regexes sub acc)
      acc entries

let rec eval_expr ctx env = function
  | Empty -> Store.add_node ctx.st
  | Db -> ctx.db_node
  | Var x -> (
    match Env.find_opt x env.vars with
    | Some (Enode n) -> n
    | Some (Elabel l) ->
      (* A label variable used as a tree denotes the leaf {l: {}}. *)
      let u = Store.add_node ctx.st in
      let v = Store.add_node ctx.st in
      Store.add_edge ctx.st u l v;
      u
    | None -> runtime_error ~code:"SSD303" "unbound variable %s" x)
  | Tree entries ->
    let u = Store.add_node ctx.st in
    List.iter
      (fun (le, e) ->
        let l = resolve_label env le in
        let v = eval_expr ctx env e in
        Store.add_edge ctx.st u l v)
      entries;
    u
  | Union (a, b) ->
    let u = Store.add_node ctx.st in
    Store.add_eps ctx.st u (eval_expr ctx env a);
    Store.add_eps ctx.st u (eval_expr ctx env b);
    u
  | Select (head, clauses) ->
    let clauses =
      if ctx.opts.reorder_clauses then Optimize.reorder_clauses clauses else clauses
    in
    let envs = eval_clauses ctx [ env ] clauses in
    Metrics.observe h_select (float_of_int (List.length envs));
    let u = Store.add_node ctx.st in
    List.iter (fun env -> Store.add_eps ctx.st u (eval_expr ctx env head)) envs;
    u
  | If (c, a, b) ->
    if eval_cond_exact ctx env c then eval_expr ctx env a else eval_expr ctx env b
  | Let (x, a, b) ->
    let n = eval_expr ctx env a in
    eval_expr ctx { env with vars = Env.add x (Enode n) env.vars } b
  | Letsfun (def, e) ->
    check_sfun def;
    List.iter
      (fun c ->
        let allowed =
          c.ctree :: (match c.cstep with Sbind x -> [ x ] | Slit _ | Spred _ | Sregex _ -> [])
        in
        List.iter
          (fun v ->
            if not (List.mem v allowed) then
              ill_formed ~code:"SSD307" "sfun %s: body mentions free variable %s"
                def.fname v)
          (free_tree_vars c.cbody))
      def.cases;
    let closure = { def; fenv = env.funs; memo = Hashtbl.create 64; queue = Queue.create () } in
    closure.fenv <- Env.add def.fname closure closure.fenv;
    eval_expr ctx { env with funs = Env.add def.fname closure env.funs } e
  | App (f, arg) -> (
    match Env.find_opt f env.funs with
    | None -> runtime_error ~code:"SSD305" "unknown function %s" f
    | Some closure ->
      let node = eval_expr ctx env arg in
      apply ctx closure node)

and eval_clauses ctx envs = function
  | [] -> envs
  | Gen (p, e) :: rest ->
    let envs = gen_envs ctx envs p e in
    Metrics.add m_bindings (List.length envs);
    eval_clauses ctx envs rest
  | Where c :: rest ->
    eval_clauses ctx (List.filter (fun env -> eval_cond_exact ctx env c) envs) rest

(* One generator clause over a list of candidate environments.  When the
   source expression needs no evaluation (Db, or a variable already bound
   to a tree node) and the pattern cannot touch the store (see
   [pattern_par_safe]), each environment's match is independent read-only
   work: fan it out across the pool and concatenate the per-environment
   results in input order, which is byte-identical to the sequential
   scan.  Everything else — DataGuide shortcuts, sources that must be
   evaluated, path-binding regexes — keeps the sequential path. *)
and gen_envs ctx envs p e =
  let sequential () =
    List.concat_map
      (fun env ->
        match guided_generator ctx env p e with
        | Some envs -> envs
        | None ->
          let node = eval_expr ctx env e in
          match_pattern ctx env node p)
      envs
  in
  let source_node env =
    match e with
    | Db -> Some ctx.db_node
    | Var x -> (
      match Env.find_opt x env.vars with Some (Enode n) -> Some n | _ -> None)
    | _ -> None
  in
  match envs with
  | [] | [ _ ] -> sequential ()
  | _ ->
    if
      Ssd_par.Pool.default_jobs () <= 1
      || ctx.opts.dataguide <> None
      || ctx.opts.path_index <> None
      || not (pattern_par_safe p)
    then sequential ()
    else begin
      let nodes = List.map source_node envs in
      if List.mem None nodes then sequential ()
      else begin
        (* Workers must only read the NFA cache: build entries for every
           regex in the pattern before entering the region. *)
        List.iter (fun r -> ignore (nfa_of ctx r)) (pattern_regexes p []);
        let arr =
          Array.of_list
            (List.map2 (fun env node -> (env, Option.get node)) envs nodes)
        in
        let parts =
          Ssd_par.Pool.map_range ~min_par:2 (Array.length arr) (fun i ->
              let env, node = arr.(i) in
              match_pattern ctx env node p)
        in
        List.concat (Array.to_list parts)
      end
    end

(* DataGuide shortcuts for single-entry patterns on DB: an all-literal
   path is answered by one guide lookup; a single regex step is answered
   by running the automaton product over the (usually much smaller) guide
   graph and unioning the accepted guide nodes' target sets — sound
   because a strong DataGuide has exactly the data's root paths. *)
and guided_generator ctx env p e =
  match e, p with
  | Db, Pedges [ (steps, sub) ] -> (
    let offset = ctx.db_node - Graph.root ctx.db in
    let continue_at data_nodes =
      Some
        (List.concat_map
           (fun data_node -> match_pattern ctx env (data_node + offset) sub)
           data_nodes)
    in
    match all_literal_steps env steps with
    | Some path -> (
      (* Prefer the path index (O(1) on a precomputed table) over the
         guide walk when the path is within its depth. *)
      match ctx.opts.path_index with
      | Some pidx when List.length path <= Ssd_index.Path_index.depth pidx -> (
        match Ssd_index.Path_index.find pidx path with
        | Some nodes -> continue_at nodes
        | None -> None)
      | _ -> (
        match ctx.opts.dataguide with
        | Some guide -> continue_at (Dataguide.find guide path)
        | None -> None))
    | None -> (
      match ctx.opts.dataguide, steps with
      | Some guide, [ Sregex (r, None) ] ->
        let nfa, _ = nfa_of ctx r in
        let guide_hits =
          Ssd_automata.Product.accepting_nodes (Dataguide.graph guide) nfa
        in
        continue_at
          (List.sort_uniq compare
             (List.concat_map (Dataguide.targets guide) guide_hits))
      | _ -> None))
  | _ -> None

(* Conditions are always decided exactly, even with an exhausted budget:
   an approximate [where] could let wrong rows through, breaking the
   partial-answers-are-a-lower-bound guarantee. *)
and eval_cond_exact ctx env c = Budget.exempt ctx.budget (fun () -> eval_cond ctx env c)

and eval_cond ctx env = function
  | Ccmp (op, a1, a2) ->
    let c = compare_labels (resolve_atom env a1) (resolve_atom env a2) in
    (match op with
     | Eq -> c = 0
     | Neq -> c <> 0
     | Lt -> c < 0
     | Le -> c <= 0
     | Gt -> c > 0
     | Ge -> c >= 0)
  | Cistype (t, a) -> Label.type_name (resolve_atom env a) = t
  | Cstarts (a, prefix) -> Lpred.matches (Lpred.Starts_with prefix) (resolve_atom env a)
  | Ccontains (a, needle) -> Lpred.matches (Lpred.Contains needle) (resolve_atom env a)
  | Cempty e -> succs ctx (eval_expr ctx env e) = []
  | Cequal (e1, e2) ->
    let g1 = Store.to_graph ctx.st ~root:(eval_expr ctx env e1) in
    let g2 = Store.to_graph ctx.st ~root:(eval_expr ctx env e2) in
    Ssd.Bisim.equal g1 g2
  | Cnot c -> not (eval_cond ctx env c)
  | Cand (c1, c2) -> eval_cond ctx env c1 && eval_cond ctx env c2
  | Cor (c1, c2) -> eval_cond ctx env c1 || eval_cond ctx env c2

(* Bulk semantics of structural recursion.  One result node per input
   node, created on demand; each input node's edges are processed exactly
   once, so the evaluation is linear in the input graph and terminates on
   cycles. *)
and apply ctx closure start =
  let result_of u =
    match Hashtbl.find_opt closure.memo u with
    | Some r -> r
    | None ->
      let r = Store.add_node ctx.st in
      Hashtbl.add closure.memo u r;
      Queue.push u closure.queue;
      r
  in
  let r0 = result_of start in
  while (not (Queue.is_empty closure.queue)) && Budget.step ctx.budget do
    let u = Queue.pop closure.queue in
    let r = Hashtbl.find closure.memo u in
    let edges = succs ctx u in
    (* Case matching per edge is pure (find_case never consults the
       store), so a wide node's edge set is scanned across the pool;
       body evaluation stays on this domain, in edge order, so the store
       is constructed in exactly the same order — and result graphs and
       their printed forms are byte-identical — for every jobs value. *)
    let matched =
      if Ssd_par.Pool.default_jobs () > 1 then begin
        let earr = Array.of_list edges in
        Array.to_list
          (Ssd_par.Pool.map_range (Array.length earr) (fun i ->
               let l, v = earr.(i) in
               (v, find_case closure.def.cases l)))
      end
      else List.map (fun (l, v) -> (v, find_case closure.def.cases l)) edges
    in
    List.iter
      (fun (v, case_match) ->
        Metrics.incr m_sfun_edges;
        match case_match with
        | None -> ()
        | Some (case, label_binding) ->
          let vars =
            List.fold_left
              (fun m (x, entry) -> Env.add x entry m)
              (Env.add case.ctree (Enode v) Env.empty)
              label_binding
          in
          (* A recursive occurrence f(T) in the body re-enters [apply] on
             [v]; the memo makes that a constant-time lookup of v's
             result node (possibly still unpopulated — cycles close
             later, when v is dequeued). *)
          let env = { vars; funs = closure.fenv } in
          let frag = eval_expr ctx env case.cbody in
          Store.add_eps ctx.st r frag)
      matched
  done;
  r0

and find_case cases l =
  List.find_map
    (fun case ->
      match case.cstep with
      | Slit le ->
        let lit =
          match le with
          | Llit l0 -> l0
          | Lname x -> Label.Sym x
        in
        if Label.equal l lit then Some (case, []) else None
      | Sbind x -> Some (case, [ (x, Elabel l) ])
      | Spred p -> if Lpred.matches p l then Some (case, []) else None
      | Sregex _ -> None)
    cases

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let eval ?(options = default_options) ?budget ~db q =
  Metrics.incr m_queries;
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  Metrics.time t_eval (fun () ->
      Trace.with_span "unql.eval" (fun () ->
          let st = Store.create () in
          let db_node =
            Trace.with_span "unql.eval.import" (fun () -> Store.import st db)
          in
          let ctx =
            { st; db; db_node; opts = options; nfa_cache = Hashtbl.create 8; budget }
          in
          let env = { vars = Env.empty; funs = Env.empty } in
          let root =
            Trace.with_span "unql.eval.expr" (fun () -> eval_expr ctx env q)
          in
          Trace.with_span "unql.eval.snapshot" (fun () ->
              Graph.gc (Store.to_graph st ~root))))

let eval_outcome ?options ~budget ~db q = Budget.wrap budget (eval ?options ~budget ~db q)

let eval_tree ?options ?budget ~db q = Graph.to_tree (eval ?options ?budget ~db q)

let run ?options ?budget ~db src = eval ?options ?budget ~db (Parser.parse src)
