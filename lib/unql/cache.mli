(** Memoizing plan/result cache for UnQL evaluation.

    The first step ROADMAP names toward serving heavy repeated traffic: a
    query result is cached under the pair

    - {e normalized query AST} — {!Optimize.reorder} is applied first, so
      a query and any condition-reordering of it share one entry (they
      are semantically equal); the normalized AST is rendered to its
      canonical concrete syntax by {!Pretty} to obtain a hashable key;
    - {e graph fingerprint} — a structural hash of the database's
      canonical edge listing (root, node count, every edge in id order —
      the same listing the storage codec serializes), so two evaluations
      against the same {e value} hit, and any update produces a graph
      whose fingerprint differs with overwhelming probability.

    Entries are evicted LRU beyond a fixed capacity, and can be
    invalidated explicitly when the caller knows a database was
    superseded (e.g. after {!Lorel.Update.run}).  Hits, misses,
    evictions and invalidations are counted both per-cache ({!stats})
    and in the global metrics registry ([unql.cache.*], see
    {!Ssd_obs.Metrics}).

    Results are immutable {!Ssd.Graph.t} values, so a hit returns the
    cached graph without copying. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int; (** entries dropped by {!invalidate} / {!clear} *)
  size : int; (** entries currently cached *)
}

(** [create ?capacity ()] — [capacity] (default 128, minimum 1) bounds
    the number of cached results. *)
val create : ?capacity:int -> unit -> t

(** A process-wide cache instance (capacity 128), used by [ssdql query
    --cache]. *)
val shared : t

val capacity : t -> int
val stats : t -> stats

(** Drop all entries (counted as invalidations; cumulative counters are
    kept). *)
val clear : t -> unit

(** [invalidate c db] drops every entry cached against [db]'s
    fingerprint.  Returns the number of entries dropped. *)
val invalidate : t -> Ssd.Graph.t -> int

(** [revalidate c ~old_db ~new_db ~keep] — delta-driven alternative to
    {!invalidate} after an update [old_db → new_db]: every entry keyed
    to [old_db] whose normalized query text satisfies [keep] is re-keyed
    to [new_db] (its cached result — and its plan — remain valid); the
    rest are dropped and counted as invalidations.  The caller supplies
    [keep] as a footprint/delta disjointness test (see {!Footprint});
    passing [fun _ -> false] degenerates to {!invalidate}.  Returns
    [(kept, dropped)]; also counted on [incr.cache.revalidated] /
    [incr.cache.dropped]. *)
val revalidate :
  t ->
  old_db:Ssd.Graph.t ->
  new_db:Ssd.Graph.t ->
  keep:(string -> bool) ->
  int * int

(** [fingerprint db] — the structural hash used in cache keys.  Exposed
    for tests and diagnostics; memoized on physical identity for the
    most recently seen graphs. *)
val fingerprint : Ssd.Graph.t -> int

(** [query_fingerprint q] — a stable hash of the {e normalized} query
    (reorder + canonical rendering), the query half of the cache key.
    The lint pass stamps its reports with the same fingerprint, so a
    [ssdql check] finding can be correlated with cache entries. *)
val query_fingerprint : Ast.expr -> int

(** [eval ~cache ~db q] is observationally {!Eval.eval} (same value up
    to bisimilarity — equal graphs, on a hit even physically equal to
    the first result), consulting and filling [cache].  [options] is
    passed through to {!Eval.eval} on a miss; since all evaluation
    options are semantics-preserving, hits are shared across option
    settings. *)
val eval : ?options:Eval.options -> cache:t -> db:Ssd.Graph.t -> Ast.expr -> Ssd.Graph.t

(** Parse and evaluate concrete syntax through the cache. *)
val run : ?options:Eval.options -> cache:t -> db:Ssd.Graph.t -> string -> Ssd.Graph.t

(** {2 Split lookup}

    {!eval} holds no lock; callers that share one cache across domains
    (the query server) wrap these two halves in their own mutex and run
    the miss evaluation {e outside} it. *)

(** Consult the cache (counts a hit or a miss, refreshes LRU order). *)
val find : t -> db:Ssd.Graph.t -> Ast.expr -> Ssd.Graph.t option

(** Insert a {e complete} evaluation result (evicting LRU beyond
    capacity).  First writer wins on a duplicate key.  Never insert a
    budget-limited partial result: the cache cannot distinguish it from
    the complete answer. *)
val add : t -> db:Ssd.Graph.t -> Ast.expr -> Ssd.Graph.t -> unit

(** {2 Plan cache}

    Cost-based rewrites ({!Optimize.reorder_generators}) are cached in a
    second table under the same (normalized query, graph fingerprint)
    keys; [invalidate]/[clear] drop them together with results, since a
    plan embodies the statistics of the graph it was chosen for.  Hits
    and misses are counted as [unql.cache.plan_hits]/[plan_misses]. *)

(** Consult the plan table. *)
val find_plan : t -> db:Ssd.Graph.t -> Ast.expr -> Ast.expr option

(** Insert a chosen plan (first writer wins; table reset on overflow —
    plans are cheap to recompute). *)
val add_plan : t -> db:Ssd.Graph.t -> Ast.expr -> Ast.expr -> unit

(** Find-or-compute the cost-based rewrite of a query for this database
    under the given annotated guide. *)
val planned :
  t -> db:Ssd.Graph.t -> annotated:Ssd_schema.Annotated.t -> Ast.expr -> Ast.expr
