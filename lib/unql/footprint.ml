(* Static label footprint of a query: the set of edge labels whose
   change can change the query's result.  See footprint.mli for the
   soundness argument and its limits. *)

module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred
module Regex = Ssd_automata.Regex

module Label_set = Set.Make (Label)

type t =
  | Labels of Label_set.t
  | Top

exception Widen  (* some construct defeats the finite analysis *)

(* A label predicate is finite only when it names one exact label; Any,
   type tests, text tests, order tests and negations all match open
   label sets. *)
let pred acc = function
  | Lpred.Exact l -> Label_set.add l acc
  | _ -> raise Widen

let rec regex acc = function
  | Regex.Void | Regex.Eps -> acc
  | Regex.Atom p -> pred acc p
  | Regex.Seq (a, b) | Regex.Alt (a, b) -> regex (regex acc a) b
  | Regex.Star r | Regex.Plus r | Regex.Opt r -> regex acc r

(* Traversal steps.  [Lname] resolves to a bound label variable when one
   is in scope — but label binders are [Sbind] steps, and any [Sbind]
   widens to ⊤ on its own (it matches every label), so treating [Lname]
   as its symbol-literal reading is sound. *)
let step acc = function
  | Ast.Slit (Ast.Llit l) -> Label_set.add l acc
  | Ast.Slit (Ast.Lname x) -> Label_set.add (Label.sym x) acc
  | Ast.Sbind _ -> raise Widen
  | Ast.Spred p -> pred acc p
  | Ast.Sregex (re, _) -> regex acc re

(* Subtree binders expose every label reachable below the match (the
   result embeds the bound subtree; [isempty]/[==] observe it), which no
   static label set bounds — ⊤.  Only the anonymous [_] is free. *)
let rec pattern acc = function
  | Ast.Pbind _ -> raise Widen
  | Ast.Pany -> acc
  | Ast.Pedges entries ->
    List.fold_left
      (fun acc (steps, sub) -> pattern (List.fold_left step acc steps) sub)
      acc entries

let rec expr acc = function
  | Ast.Empty | Ast.Db | Ast.Var _ -> acc
  | Ast.Tree entries ->
    (* construction: the labels are written, not traversed *)
    List.fold_left (fun acc (_, e) -> expr acc e) acc entries
  | Ast.Union (a, b) -> expr (expr acc a) b
  | Ast.Select (head, clauses) ->
    let acc =
      List.fold_left
        (fun acc -> function
          | Ast.Gen (p, e) -> pattern (expr acc e) p
          | Ast.Where c -> cond acc c)
        acc clauses
    in
    expr acc head
  | Ast.If (c, a, b) -> expr (expr (cond acc c) a) b
  | Ast.Let (_, a, b) -> expr (expr acc a) b
  | Ast.Letsfun _ | Ast.App _ ->
    (* structural recursion walks every edge of its argument *)
    raise Widen

and cond acc = function
  | Ast.Ccmp _ | Ast.Cistype _ | Ast.Cstarts _ | Ast.Ccontains _ -> acc
  | Ast.Cempty e -> expr acc e
  | Ast.Cequal (a, b) -> expr (expr acc a) b
  | Ast.Cnot c -> cond acc c
  | Ast.Cand (a, b) | Ast.Cor (a, b) -> cond (cond acc a) b

let of_expr e =
  match expr Label_set.empty e with
  | s -> Labels s
  | exception Widen -> Top

let of_string src =
  match Parser.parse src with
  | q -> of_expr q
  | exception _ -> Top

let labels = function
  | Top -> None
  | Labels s -> Some (Label_set.elements s)

let is_top = function Top -> true | Labels _ -> false

let disjoint fp delta_labels =
  match (fp, delta_labels) with
  | Top, _ | _, None -> false
  | Labels s, Some ls -> not (List.exists (fun l -> Label_set.mem l s) ls)
