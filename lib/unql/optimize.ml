module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred
module Regex = Ssd_automata.Regex
module Nfa = Ssd_automata.Nfa
module Dfa = Ssd_automata.Dfa
module Dataguide = Ssd_schema.Dataguide
module Annotated = Ssd_schema.Annotated
open Ast

(* Label names a condition reads.  Unbound names resolve to symbol
   literals, so a name that no generator binds is still safe to evaluate
   early. *)
let rec cond_names = function
  | Ccmp (_, a1, a2) -> atom_names a1 @ atom_names a2
  | Cistype (_, a) | Cstarts (a, _) | Ccontains (a, _) -> atom_names a
  | Cempty e -> expr_names e
  | Cequal (e1, e2) -> expr_names e1 @ expr_names e2
  | Cnot c -> cond_names c
  | Cand (c1, c2) | Cor (c1, c2) -> cond_names c1 @ cond_names c2

and atom_names = function
  | Alit _ -> []
  | Aname x -> [ x ]

and expr_names e = free_tree_vars e

let reorder_clauses clauses =
  let generators = List.filter_map (function Gen _ as g -> Some g | Where _ -> None) clauses in
  let conditions = List.filter_map (function Where c -> Some c | Gen _ -> None) clauses in
  (* For each condition find the shortest generator prefix after which all
     the names it mentions that are bound anywhere are available. *)
  let all_bound =
    List.concat_map (function Gen (p, _) -> pattern_binders p | Where _ -> []) clauses
  in
  let placed = Array.make (List.length generators + 1) [] in
  List.iter
    (fun c ->
      let needed = List.filter (fun x -> List.mem x all_bound) (cond_names c) in
      let rec position i bound gens =
        if List.for_all (fun x -> List.mem x bound) needed then i
        else
          match gens with
          | [] -> i
          | Gen (p, _) :: rest -> position (i + 1) (pattern_binders p @ bound) rest
          | Where _ :: _ -> assert false
      in
      let i = position 0 [] generators in
      placed.(i) <- c :: placed.(i))
    conditions;
  let rec weave i gens =
    let here = List.rev_map (fun c -> Where c) placed.(i) in
    match gens with
    | [] -> here
    | g :: rest -> here @ (g :: weave (i + 1) rest)
  in
  weave 0 generators

let rec map_selects f = function
  | (Empty | Db | Var _) as e -> e
  | Tree entries -> Tree (List.map (fun (le, e) -> (le, map_selects f e)) entries)
  | Union (a, b) -> Union (map_selects f a, map_selects f b)
  | Select (head, clauses) ->
    let head = map_selects f head in
    let clauses =
      List.map
        (function
          | Gen (p, e) -> Gen (p, map_selects f e)
          | Where c -> Where (map_selects_cond f c))
        clauses
    in
    f (Select (head, clauses))
  | If (c, a, b) -> If (map_selects_cond f c, map_selects f a, map_selects f b)
  | Let (x, a, b) -> Let (x, map_selects f a, map_selects f b)
  | Letsfun (def, e) ->
    let def =
      { def with cases = List.map (fun c -> { c with cbody = map_selects f c.cbody }) def.cases }
    in
    Letsfun (def, map_selects f e)
  | App (g, arg) -> App (g, map_selects f arg)

and map_selects_cond f = function
  | (Ccmp _ | Cistype _ | Cstarts _ | Ccontains _) as c -> c
  | Cempty e -> Cempty (map_selects f e)
  | Cequal (a, b) -> Cequal (map_selects f a, map_selects f b)
  | Cnot c -> Cnot (map_selects_cond f c)
  | Cand (a, b) -> Cand (map_selects_cond f a, map_selects_cond f b)
  | Cor (a, b) -> Cor (map_selects_cond f a, map_selects_cond f b)

let reorder e =
  map_selects
    (function
      | Select (head, clauses) -> Select (head, reorder_clauses clauses)
      | e -> e)
    e

let automaton_sizes ~alphabet e =
  let out = ref [] in
  let record r =
    let nfa = Nfa.of_regex r in
    let dfa = Dfa.minimize (Dfa.of_nfa ~alphabet nfa) in
    out := (Regex.to_string r, nfa.Nfa.n, Dfa.n_states dfa) :: !out
  in
  let record_steps =
    List.iter (function Sregex (r, _) -> record r | Slit _ | Sbind _ | Spred _ -> ())
  in
  let rec go_pattern = function
    | Pbind _ | Pany -> ()
    | Pedges entries ->
      List.iter
        (fun (steps, sub) ->
          record_steps steps;
          go_pattern sub)
        entries
  in
  ignore
    (map_selects
       (function
         | Select (_, clauses) as s ->
           List.iter (function Gen (p, _) -> go_pattern p | Where _ -> ()) clauses;
           s
         | e -> e)
       e);
  List.rev !out

(* A generator is a provably-empty path when its steps are all literal
   labels (closed: symbol names only) and the guide rejects the path. *)
let literal_path steps =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Slit (Llit l) :: rest -> go (l :: acc) rest
    | Slit (Lname x) :: rest -> go (Label.Sym x :: acc) rest
    | (Sbind _ | Spred _ | Sregex _) :: _ -> None
  in
  go [] steps

(* ------------------------------------------------------------------ *)
(* Cost-based generator planning over the annotated guide              *)
(* ------------------------------------------------------------------ *)

type access_path =
  | Scan
  | Guide_path
  | Guide_product
  | Pindex

let access_path_to_string = function
  | Scan -> "scan"
  | Guide_path -> "guide-lookup"
  | Guide_product -> "guide-product"
  | Pindex -> "path-index"

type gen_plan = {
  g_index : int;
  g_text : string;
  g_est : float option;
  g_work : float;
  g_unbounded : bool;
  g_access : access_path;
}

type plan = {
  p_order : int list;
  p_gens : gen_plan list;
  p_est : float option;
  p_cost_syntax : float;
  p_cost_planned : float;
}

(* All Sbind label binders of an expression: a [Lname x] step with [x] in
   this set may resolve to any label at run time. *)
let sbind_names e =
  let acc = ref [] in
  let rec go_pattern = function
    | Pbind _ | Pany -> ()
    | Pedges entries ->
      List.iter
        (fun (steps, sub) ->
          List.iter
            (function Sbind x -> acc := x :: !acc | Slit _ | Spred _ | Sregex _ -> ())
            steps;
          go_pattern sub)
        entries
  in
  ignore
    (map_selects
       (function
         | Select (_, clauses) as s ->
           List.iter (function Gen (p, _) -> go_pattern p | Where _ -> ()) clauses;
           s
         | e -> e)
       e);
  List.sort_uniq String.compare !acc

(* Tree-valued binders (Pbind and regex path binders): rebinding one
   overrides, so generators sharing a tree binder must keep their
   relative order.  Sbind label binders unify (bind_label checks
   equality), so sharing one is order-independent. *)
let pat_tree_binders p =
  let rec go acc = function
    | Pbind x -> x :: acc
    | Pany -> acc
    | Pedges entries ->
      List.fold_left
        (fun acc (steps, sub) ->
          let acc =
            List.fold_left
              (fun acc -> function
                | Sregex (_, Some x) -> x :: acc
                | Slit _ | Sbind _ | Spred _ | Sregex (_, None) -> acc)
              acc steps
          in
          go acc sub)
        acc entries
  in
  List.sort_uniq String.compare (go [] p)

(* Names a generator reads: its source expression's free variables and
   every [Lname] step (which resolves against label bindings). *)
let gen_uses p e =
  let src = match e with Db -> [] | Var x -> [ x ] | e -> free_tree_vars e in
  let acc = ref src in
  let rec go = function
    | Pbind _ | Pany -> ()
    | Pedges entries ->
      List.iter
        (fun (steps, sub) ->
          List.iter
            (function
              | Slit (Lname x) -> acc := x :: !acc
              | Slit (Llit _) | Sbind _ | Spred _ | Sregex _ -> ())
            steps;
          go sub)
        entries
  in
  go p;
  List.sort_uniq String.compare !acc

let inter a b = List.exists (fun x -> List.mem x b) a

(* Step the estimation frontier through one pattern step.  [lbound] is
   the set of Sbind names anywhere in the query: an [Lname] over one of
   those may be any label. *)
let est_step ann lbound (fr, work, ub) = function
  | Slit (Llit l) ->
    let fr = Annotated.step_pred ann fr (Lpred.Exact l) in
    (fr, work +. Annotated.total fr, ub)
  | Slit (Lname x) ->
    let p = if List.mem x lbound then Lpred.Any else Lpred.Exact (Label.Sym x) in
    let fr = Annotated.step_pred ann fr p in
    (fr, work +. Annotated.total fr, ub)
  | Sbind _ ->
    let fr = Annotated.step_pred ann fr Lpred.Any in
    (fr, work +. Annotated.total fr, ub)
  | Spred p ->
    let fr = Annotated.step_pred ann fr p in
    (fr, work +. Annotated.total fr, ub)
  | Sregex (r, _) ->
    let region = Annotated.region_card ann (Annotated.nodes fr) in
    let fr, u = Annotated.step_regex ann fr r in
    (fr, work +. region, ub || u)

(* Estimate a pattern from a frontier: an upper bound on environments
   produced per incoming environment, the traversal work, the
   unbounded-recursion flag, and guide positions for each tree binder. *)
let rec est_pattern ann lbound fr = function
  | Pany -> (Annotated.total fr, 0.0, false, [])
  | Pbind x -> (Annotated.total fr, 0.0, false, [ (x, Annotated.nodes fr) ])
  | Pedges entries ->
    List.fold_left
      (fun (mult, work, ub, binds) (steps, sub) ->
        let fr', w, ub1 =
          List.fold_left (est_step ann lbound) (fr, 0.0, false) steps
        in
        let m2, w2, ub2, binds2 = est_pattern ann lbound fr' sub in
        (mult *. m2, work +. w +. w2, ub || ub1 || ub2, binds @ binds2))
      (1.0, 0.0, false, []) entries

(* Sentinel multiplier for generators we cannot bound (source is a
   computed expression, or a variable bound outside this select): large
   enough that the greedy order places them last, finite so cost sums
   stay comparable. *)
let unknown_mult = 1e9

let choose_access ~has_guide ~pindex_depth p e =
  match e, p with
  | Db, Pedges [ (steps, _) ] -> (
    match literal_path steps with
    | Some path -> (
      match pindex_depth with
      | Some d when List.length path <= d -> Pindex
      | _ -> if has_guide then Guide_path else Scan)
    | None -> (
      match steps with
      | [ Sregex (_, None) ] when has_guide -> Guide_product
      | _ -> Scan))
  | _ -> Scan

(* Estimate one generator given the guide positions of already-placed
   tree binders.  Returns (per-env multiplier bound or None, work,
   unbounded, tree-binder positions it contributes). *)
let est_gen ann lbound positions p e =
  let fr0 =
    match e with
    | Db -> Some (Annotated.start ann)
    | Var x -> (
      match List.assoc_opt x positions with
      | Some vs -> Some (List.map (fun v -> (v, 1.0)) vs)
      | None -> None)
    | _ -> None
  in
  match fr0 with
  | None -> (None, unknown_mult, false, [])
  | Some fr ->
    let mult, work, ub, binds = est_pattern ann lbound fr p in
    (Some mult, work, ub, binds)

(* Cost of evaluating the generators in the given order: the evaluator
   re-matches each generator once per incoming environment, so the cost
   of generator i is (product of multipliers before it) * its work. *)
let cost_of_order ann lbound gens order =
  let cost = ref 0.0 and envs = ref 1.0 and positions = ref [] in
  List.iter
    (fun i ->
      let p, e = List.nth gens i in
      let mult, work, _, binds = est_gen ann lbound !positions p e in
      cost := !cost +. (!envs *. Float.max 1.0 work);
      let m = match mult with Some m -> m | None -> unknown_mult in
      envs := !envs *. m;
      positions := binds @ !positions)
    order;
  !cost

let plan_clauses ann ?pindex_depth ~lbound clauses =
  let gens =
    List.filter_map (function Gen (p, e) -> Some (p, e) | Where _ -> None) clauses
  in
  let n = List.length gens in
  let garr = Array.of_list gens in
  let binders = Array.map (fun (p, _) -> pattern_binders p) garr in
  let tree_binders = Array.map (fun (p, _) -> pat_tree_binders p) garr in
  let uses = Array.map (fun (p, e) -> gen_uses p e) garr in
  (* i < j must keep their order when reordering could change what a
     name resolves to (uses vs binders) or which binding wins (shared
     tree binders). *)
  let conflict i j =
    inter tree_binders.(i) tree_binders.(j)
    || inter uses.(i) binders.(j)
    || inter uses.(j) binders.(i)
  in
  let placed = Array.make n false in
  let positions = ref [] in
  let order = ref [] and plans = ref [] in
  for _ = 1 to n do
    let best = ref None in
    for j = 0 to n - 1 do
      if (not placed.(j)) && not (List.exists (fun i -> i < j && (not placed.(i)) && conflict i j) (List.init n Fun.id))
      then begin
        let mult, _, _, _ = est_gen ann lbound !positions (fst garr.(j)) (snd garr.(j)) in
        let key = match mult with Some m -> m | None -> unknown_mult in
        match !best with
        | Some (_, bkey) when bkey <= key -> ()
        | _ -> best := Some (j, key)
      end
    done;
    match !best with
    | None -> ()
    | Some (j, _) ->
      placed.(j) <- true;
      let p, e = garr.(j) in
      let mult, work, ub, binds = est_gen ann lbound !positions p e in
      positions := binds @ !positions;
      order := j :: !order;
      plans :=
        {
          g_index = j;
          g_text = Pretty.pattern_to_string p;
          g_est = mult;
          g_work = work;
          g_unbounded = ub;
          g_access =
            choose_access ~has_guide:true ~pindex_depth p e;
        }
        :: !plans
  done;
  let order = List.rev !order and p_gens = List.rev !plans in
  let gens_list = Array.to_list garr in
  let p_est =
    List.fold_left
      (fun acc gp ->
        match acc, gp.g_est with
        | Some a, Some m -> Some (a *. m)
        | _ -> None)
      (Some 1.0) p_gens
  in
  {
    p_order = order;
    p_gens;
    p_est;
    p_cost_syntax = cost_of_order ann lbound gens_list (List.init n Fun.id);
    p_cost_planned = cost_of_order ann lbound gens_list order;
  }

(* Apply a plan's generator order to a clause list, then re-push the
   where-conditions to their earliest sound position. *)
let apply_plan plan clauses =
  let gens = Array.of_list (List.filter (function Gen _ -> true | Where _ -> false) clauses) in
  let wheres = List.filter (function Where _ -> true | Gen _ -> false) clauses in
  let ordered = List.map (fun i -> gens.(i)) plan.p_order in
  reorder_clauses (ordered @ wheres)

let plan_expr ann ?pindex_depth e =
  let lbound = sbind_names e in
  let plans = ref [] in
  let e' =
    map_selects
      (function
        | Select (head, clauses) ->
          let plan = plan_clauses ann ?pindex_depth ~lbound clauses in
          plans := plan :: !plans;
          Select (head, apply_plan plan clauses)
        | e -> e)
      e
  in
  (e', List.rev !plans)

let reorder_generators ann e = fst (plan_expr ann e)

let prune_with_guide guide e =
  let pruned = ref 0 in
  (* Lname steps are only literals if no generator of the select binds
     that name as a label variable. *)
  let impossible bound = function
    | Gen (Pedges entries, Db) ->
      List.exists
        (fun (steps, _) ->
          match literal_path steps with
          | Some path ->
            let closed =
              List.for_all2
                (fun step l ->
                  match step, l with
                  | Slit (Lname x), _ -> not (List.mem x bound)
                  | _ -> true)
                steps path
            in
            closed && Dataguide.follow guide path = None
          | None -> false)
        entries
    | Gen _ | Where _ -> false
  in
  let e =
    map_selects
      (function
        | Select (_, clauses) as s ->
          let bound =
            List.concat_map
              (function Gen (p, _) -> pattern_binders p | Where _ -> [])
              clauses
          in
          if List.exists (impossible bound) clauses then begin
            incr pruned;
            Empty
          end
          else s
        | e -> e)
      e
  in
  (e, !pruned)
