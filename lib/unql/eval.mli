(** Evaluation of UnQL queries over a data graph.

    The two computational components of section 3:

    - {e horizontal}: select–where comprehensions are evaluated by
      enumerating edges of the nodes a pattern reaches; regular path
      steps use the graph × automaton product, so arbitrary-depth path
      constraints terminate on cyclic data;
    - {e vertical}: structural recursion ([sfun]) is evaluated with bulk
      semantics — one result node per (function, input node) pair, bodies
      evaluated once per input {e edge}, recursive occurrences wired to
      the (possibly not yet populated) result node of the subtree.  This
      is what makes [rec] well-defined on cycles: no unfolding ever
      happens.

    Restrictions (checked, raising {!Ast.Ill_formed}):
    - recursive calls inside an [sfun] body apply the function to the
      case's tree variable only;
    - [sfun] bodies are closed: their only free value variables are the
      case bindings (other [sfun]s are visible).  This keeps results
      independent of the calling environment and makes per-function
      memoization sound. *)

(** Runtime failures carry a {!Ssd_diag.t} whose [code] matches the
    static analyzer's prediction for the same defect (SSD303 unbound
    variable, SSD304 label/tree conflict, SSD305 unknown function). *)
exception Runtime_error of Ssd_diag.t

type options = {
  reorder_clauses : bool;
      (** push [where] conditions to the earliest point their variables
          are bound (see {!Optimize.reorder}); applied before evaluation *)
  cache_nfa : bool;
      (** compile each regular path expression to an NFA once per query
          rather than once per use *)
  dataguide : Ssd_schema.Dataguide.t option;
      (** when set, literal-path generators rooted at [DB] are answered
          from the guide's target sets instead of by traversal *)
  path_index : Ssd_index.Path_index.t option;
      (** when set, literal-path generators rooted at [DB] within the
          index's depth are answered by one index probe (preferred over
          the guide walk); deeper paths fall back to guide or scan *)
}

val default_options : options

(** [eval ?options ?budget ~db q] runs [q] with [DB] bound to [db] and
    returns the result graph (already garbage-collected).

    When a {!Ssd.Budget} is supplied, evaluation consumes it at generator
    positions only — automaton frontier expansion, pattern-step
    enumeration, structural-recursion queue pops — and {e never} while
    deciding a [where]/[if] condition.  On exhaustion the generators stop
    producing further bindings, so the result is a sound lower bound of
    the complete answer (the partial result graph is simulated by the
    complete one); no exception is raised.  Use {!eval_outcome} to learn
    whether the budget ran out. *)
val eval : ?options:options -> ?budget:Ssd.Budget.t -> db:Ssd.Graph.t -> Ast.expr -> Ssd.Graph.t

(** [eval] plus the completeness verdict: [Complete g] when the budget
    survived, [Partial (g, why)] when it ran out ([g] still a sound
    lower bound). *)
val eval_outcome :
  ?options:options ->
  budget:Ssd.Budget.t ->
  db:Ssd.Graph.t ->
  Ast.expr ->
  Ssd.Graph.t Ssd.Budget.outcome

(** [eval] followed by tree extraction.
    @raise Ssd.Graph.Cyclic if the result is cyclic. *)
val eval_tree :
  ?options:options -> ?budget:Ssd.Budget.t -> db:Ssd.Graph.t -> Ast.expr -> Ssd.Tree.t

(** Parse and evaluate concrete syntax (see {!Parser}). *)
val run :
  ?options:options -> ?budget:Ssd.Budget.t -> db:Ssd.Graph.t -> string -> Ssd.Graph.t
