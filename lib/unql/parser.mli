(** Parser for the UnQL concrete syntax.

    {v
      expr    ::= "select" expr "where" clause ("," clause)*
                | "let" "sfun" case ("|" case)* "in" expr
                | "let" IDENT "=" expr "in" expr
                | "if" cond "then" expr "else" expr
                | prim ("union" prim)*
      prim    ::= "{" [entry ("," entry)*] "}"      constructor
                | IDENT "(" expr ")"                sfun application
                | "DB" | IDENT                      database / variable
                | STRING | INT | BOOL               leaf {lit: {}}
                | "(" expr ")"
      entry   ::= labelpos [":" expr]               bare label = leaf
      labelpos::= IDENT | STRING | INT | BOOL       IDENT resolves to a
                                                    label var when bound
      clause  ::= pattern "<-" expr | cond
      pattern ::= backslash IDENT | "_"
                | "{" [pentry ("," pentry)*] "}"
      pentry  ::= steps [":" pattern]               no pattern = _
      steps   ::= step ("." step)*
      step    ::= backslash IDENT                         bind edge label
                | "<" regex ">"                     regular path (Regex)
                | label literal or predicate        one edge
      cond    ::= cond ("or"|"and") cond | "not" cond | "(" cond ")"
                | "isempty" "(" expr ")" | "equal" "(" expr "," expr ")"
                | "isint"/"isfloat"/"isstring"/"isbool"/"issymbol" "(" atom ")"
                | "startswith"/"contains" "(" atom "," STRING ")"
                | atom ("="|"!="|"<"|"<="|">"|">=") atom
      case    ::= IDENT "(" "{" step ":" IDENT "}" ")" "=" expr
    v}

    Example — the paper's "did Allen act in Casablanca, not crossing
    another Movie edge":
    {v
      select {answer: t}
      where {<entry.movie>: \m} <- DB,
            {title."Casablanca"} <- m,
            {<(~movie)*."Allen">: \t} <- m
    v} *)

exception Parse_error of string

(** Byte-offset marks recorded in parse order — one [Mstep] per pattern
    step, one [Mbind] per pattern binder.  {!Lint} walks the AST in the
    same order to attach source spans to diagnostics. *)
type mark_kind =
  | Mstep
  | Mbind

type marks = {
  msrc : string;
  items : (mark_kind * int * int) array;
}

val parse : string -> Ast.expr

(** [parse] plus the recorded marks. *)
val parse_with_marks : string -> Ast.expr * marks

(** Parse a single pattern (exposed for tests). *)
val parse_pattern : string -> Ast.pattern
