(** Abstract syntax of the UnQL-style query language (section 3).

    The language has the two components the paper describes: a
    "horizontal" select–where fragment (comprehensions over the edges of a
    node, to a fixed depth from the root, with regular path expressions
    for the unbounded-depth part) and a "vertical" fragment — structural
    recursion [sfun], well-defined on cyclic data through its bulk
    semantics (see {!Eval}). *)

module Label = Ssd.Label
module Lpred = Ssd_automata.Lpred
module Regex = Ssd_automata.Regex

(** A label position: a literal, or a name resolved at evaluation time to
    a bound label variable if one is in scope and to a symbol literal
    otherwise (the convention of UnQL's concrete syntax, where [t] and
    [\t] are binding and bound occurrences). *)
type label_expr =
  | Llit of Label.t
  | Lname of string

(** One step of an edge pattern.  A sequence of steps matches a path:
    single-edge steps consume one edge, a regex step spans any path whose
    word it accepts. *)
type step =
  | Slit of label_expr (** exact label (or bound label variable) *)
  | Sbind of string (** [\x] — binds the edge label *)
  | Spred of Lpred.t (** single edge whose label satisfies a predicate *)
  | Sregex of Regex.t * string option
      (** [<re>] — spans a path whose word [re] accepts; [<re> as \p]
          additionally binds [p] to (one shortest witness of) the matched
          path, reified as the chain tree [{l1: {l2: ... {}}}] *)

type pattern =
  | Pbind of string (** [\t] — binds the subtree *)
  | Pany (** [_] *)
  | Pedges of (step list * pattern) list
      (** [{steps1: p1, ..., stepsN: pN}] — conjunctive: every listed path
          must match, bindings joined consistently *)

type cmpop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

(** A label-valued atom in a condition. *)
type atom =
  | Alit of Label.t
  | Aname of string

type cond =
  | Ccmp of cmpop * atom * atom
  | Cistype of string * atom (** [isint(a)], [isstring(a)], ... *)
  | Cstarts of atom * string (** [startswith(a, "pre")] *)
  | Ccontains of atom * string
  | Cempty of expr (** [isempty(e)] *)
  | Cequal of expr * expr (** extensional tree equality — decided by bisimulation *)
  | Cnot of cond
  | Cand of cond * cond
  | Cor of cond * cond

and clause =
  | Gen of pattern * expr (** [pattern <- e] *)
  | Where of cond

and expr =
  | Empty (** [{}] *)
  | Db (** the database the query runs against *)
  | Var of string (** tree variable (or [\l] label used as a leaf) *)
  | Tree of (label_expr * expr) list (** [{l1: e1, ..., ln: en}] *)
  | Union of expr * expr
  | Select of expr * clause list
  | If of cond * expr * expr
  | Let of string * expr * expr
  | Letsfun of sfun_def * expr
  | App of string * expr (** structural-recursion application [f(e)] *)

(** [sfun f({case1}) = e1 | f({case2}) = e2 | ...] — cases are tried in
    order on each edge; an edge matching no case contributes [{}]. *)
and sfun_def = {
  fname : string;
  cases : sfun_case list;
}

and sfun_case = {
  cstep : step; (** single-edge label pattern (regex steps not allowed) *)
  ctree : string; (** the bound subtree variable *)
  cbody : expr;
}

(* ------------------------------------------------------------------ *)
(* Free-variable and well-formedness helpers                           *)
(* ------------------------------------------------------------------ *)

let pattern_binders p =
  let rec go acc = function
    | Pbind x -> x :: acc
    | Pany -> acc
    | Pedges entries ->
      List.fold_left
        (fun acc (steps, sub) ->
          let acc =
            List.fold_left
              (fun acc -> function
                | Sbind x -> x :: acc
                | Sregex (_, Some p) -> p :: acc
                | Slit _ | Spred _ | Sregex (_, None) -> acc)
              acc steps
          in
          go acc sub)
        acc entries
  in
  List.sort_uniq String.compare (go [] p)

(* Structural restrictions on sfun definitions, carrying the same
   stable codes the static analyzer reports (SSD306/308/309), so a
   runtime rejection and a lint finding for one defect agree. *)
exception Ill_formed of Ssd_diag.t

let ill_formed ~code fmt =
  Printf.ksprintf
    (fun msg -> raise (Ill_formed (Ssd_diag.make Ssd_diag.Error ~code msg)))
    fmt

let () =
  Printexc.register_printer (function
    | Ill_formed d -> Some ("Unql.Ast.Ill_formed: " ^ Ssd_diag.to_string d)
    | _ -> None)

(** Free tree variables of an expression (label names are not included:
    an unbound label name just denotes a symbol literal). *)
let free_tree_vars e =
  let module S = Set.Make (String) in
  let rec go bound acc = function
    | Empty | Db -> acc
    | Var x -> if S.mem x bound then acc else S.add x acc
    | Tree entries -> List.fold_left (fun acc (_, e) -> go bound acc e) acc entries
    | Union (a, b) -> go bound (go bound acc a) b
    | Select (head, clauses) ->
      let bound', acc =
        List.fold_left
          (fun (bound, acc) clause ->
            match clause with
            | Gen (p, e) ->
              let acc = go bound acc e in
              let bound = List.fold_left (fun b x -> S.add x b) bound (pattern_binders p) in
              (bound, acc)
            | Where c -> (bound, go_cond bound acc c))
          (bound, acc) clauses
      in
      go bound' acc head
    | If (c, a, b) -> go bound (go bound (go_cond bound acc c) a) b
    | Let (x, a, b) -> go (S.add x bound) (go bound acc a) b
    | Letsfun (def, e) ->
      let acc =
        List.fold_left (fun acc c -> go (S.add c.ctree bound) acc c.cbody) acc def.cases
      in
      go bound acc e
    | App (_, arg) -> go bound acc arg
  and go_cond bound acc = function
    | Ccmp _ | Cistype _ | Cstarts _ | Ccontains _ -> acc
    | Cempty e -> go bound acc e
    | Cequal (a, b) -> go bound (go bound acc a) b
    | Cnot c -> go_cond bound acc c
    | Cand (a, b) | Cor (a, b) -> go_cond bound (go_cond bound acc a) b
  in
  S.elements (go S.empty S.empty e)

(* Enforce the UnQL restriction that makes structural recursion
   well-defined on cycles: inside the body of [sfun f], recursive
   applications of [f] take exactly the case's tree variable. *)
let check_sfun def =
  let check_case c =
    let rec go = function
      | Empty | Db | Var _ -> ()
      | Tree entries -> List.iter (fun (_, e) -> go e) entries
      | Union (a, b) -> (go a; go b)
      | Select (head, clauses) ->
        go head;
        List.iter (function Gen (_, e) -> go e | Where c -> go_cond c) clauses
      | If (c, a, b) ->
        go_cond c;
        go a;
        go b
      | Let (_, a, b) -> (go a; go b)
      | Letsfun (d, e) ->
        if d.fname = def.fname then
          ill_formed ~code:"SSD309" "sfun %s shadowed inside its own body" def.fname;
        List.iter (fun c -> go c.cbody) d.cases;
        go e
      | App (f, arg) ->
        if f = def.fname then begin
          match arg with
          | Var v when v = c.ctree -> ()
          | _ ->
            ill_formed ~code:"SSD306"
              "recursive call %s(...) must be applied to the case's tree variable %s"
              def.fname c.ctree
        end
        else go arg
    and go_cond = function
      | Ccmp _ | Cistype _ | Cstarts _ | Ccontains _ -> ()
      | Cempty e -> go e
      | Cequal (a, b) -> (go a; go b)
      | Cnot c -> go_cond c
      | Cand (a, b) | Cor (a, b) -> (go_cond a; go_cond b)
    in
    (match c.cstep with
     | Sregex _ ->
       ill_formed ~code:"SSD308" "sfun case patterns match a single edge, not a path"
     | Slit _ | Sbind _ | Spred _ -> ());
    go c.cbody
  in
  List.iter check_case def.cases
