(* O(1) amortized LRU over integer keys: a hash table into an intrusive
   doubly-linked recency list with a sentinel.  Used by {!Pager.replay}
   (which previously scanned the whole buffer per eviction) and by the
   persistent store's buffer pool (lib/store). *)

type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node;
  mutable next : 'a node;
}

type 'a t = {
  table : (int, 'a node) Hashtbl.t;
  (* Sentinel: sentinel.next is most-recently used, sentinel.prev least. *)
  sentinel : 'a node;
}

let create ?(size_hint = 16) () =
  let rec sentinel = { key = min_int; value = Obj.magic 0; prev = sentinel; next = sentinel } in
  { table = Hashtbl.create (2 * size_hint); sentinel }

let size t = Hashtbl.length t.table

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

(* Find and mark most-recently used. *)
let use t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
    unlink n;
    push_front t n;
    Some n.value

let mem t key = Hashtbl.mem t.table key

(* Insert (or overwrite) as most-recently used. *)
let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some n ->
    unlink n;
    Hashtbl.remove t.table key
  | None -> ());
  let n = { key; value; prev = t.sentinel; next = t.sentinel } in
  Hashtbl.replace t.table key n;
  push_front t n

(* Evict the least-recently used entry, if any. *)
let evict_lru t =
  let n = t.sentinel.prev in
  if n == t.sentinel then None
  else begin
    unlink n;
    Hashtbl.remove t.table n.key;
    Some (n.key, n.value)
  end

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some n ->
    unlink n;
    Hashtbl.remove t.table key

let clear t =
  Hashtbl.reset t.table;
  t.sentinel.next <- t.sentinel;
  t.sentinel.prev <- t.sentinel

let iter f t = Hashtbl.iter (fun key n -> f key n.value) t.table
