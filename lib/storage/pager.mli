(** Disk layout, clustering and buffering — simulated.

    Section 4, on representing semistructured data directly: "disk layout
    and clustering, together with appropriate indexing, is also
    important."  This module assigns graph nodes to fixed-capacity pages
    under different clustering orders and replays traversal workloads
    against an LRU buffer pool, counting page faults — the
    machine-independent part of the claim (experiment E11).

    The substitution note (DESIGN.md) applies: we do not spin disks; the
    fault count is the cost model, exactly as in the clustering literature
    the tutorial points at. *)

type clustering =
  | Insertion (** node-id order: whatever order the builder produced *)
  | Bfs (** breadth-first from the root: siblings cluster *)
  | Dfs (** depth-first from the root: root-to-leaf paths cluster *)
  | Scatter of int (** pseudo-random placement (seed) — the worst case *)

val clustering_name : clustering -> string

type t

(** [layout clustering ~page_capacity g]: nodes per page.
    @raise Ssd_diag.Fail with code [SSD542] if [page_capacity <= 0]. *)
val layout : clustering -> page_capacity:int -> Ssd.Graph.t -> t

val n_pages : t -> int
val page_of : t -> int -> int

type sim = {
  accesses : int;
  faults : int;
}

(** [replay t ~buffer_pages accesses]: run the node-access sequence
    ([SSD542] if [buffer_pages <= 0])
    through an LRU buffer of the given size. *)
val replay : t -> buffer_pages:int -> int list -> sim

(** Canned workload: [n_walks] random root-to-descendant walks of at most
    [depth] steps; returns the node access sequence (deterministic in
    [seed]). *)
val random_walks : seed:int -> n_walks:int -> depth:int -> Ssd.Graph.t -> int list
