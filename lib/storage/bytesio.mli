(** Offset-tracking binary readers/writers and CRC32, shared by the graph
    codec ({!Codec}), the index and DataGuide serializers and the
    persistent store's page/segment/WAL formats ([lib/store]).

    Decoders raise only the typed {!Corrupt} on malformed input —
    carrying the byte offset of the defect plus expected/found
    descriptions — and validate every count against the bytes remaining
    before allocating. *)

exception Corrupt of {
  offset : int;
  expected : string;
  found : string;
}

(** Raise {!Corrupt}. *)
val corrupt : offset:int -> expected:string -> found:string -> 'a

(** {1 CRC32} IEEE 802.3 (reflected, the zlib polynomial). *)

val crc32 : bytes -> int
val crc32_sub : bytes -> int -> int -> int
val crc32_string : string -> int

(** [crc32_update crc data pos len] continues a running checksum. *)
val crc32_update : int -> bytes -> int -> int -> int

(** {1 Writer} All integers LEB128 varints; signed ints zigzag. *)

val put_varint : Buffer.t -> int -> unit
val put_int : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit
val put_float : Buffer.t -> float -> unit

(** Inline label: tag byte (1=int 2=float 3=str 4=bool 5=sym), payload. *)
val put_label : Buffer.t -> Ssd.Label.t -> unit

(** {1 Reader} *)

type reader = {
  data : bytes;
  mutable pos : int;
}

val reader : bytes -> reader
val reader_of_string : string -> reader
val remaining : reader -> int
val byte : reader -> int
val get_varint : reader -> int
val get_int : reader -> int
val get_string : reader -> string
val get_float : reader -> float
val get_label : reader -> Ssd.Label.t

(** [check_count r ~what ~unit_bytes n] rejects a count [n] of items
    each at least [unit_bytes] wide that cannot fit in the bytes left. *)
val check_count : reader -> what:string -> unit_bytes:int -> int -> unit

(** Consume the exact magic string or raise {!Corrupt} at the current
    offset. *)
val expect_magic : reader -> string -> unit

(** Raise {!Corrupt} unless the reader consumed all input. *)
val expect_end : reader -> unit
