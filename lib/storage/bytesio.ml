(* Offset-tracking binary readers and writers, shared by the graph codec
   (Codec), the index/DataGuide serializers (lib/index, lib/schema) and
   the persistent store's page, segment and WAL formats (lib/store).

   The reading side follows parsifal's discipline: every decoder tracks
   the byte offset it is looking at and raises a typed {!Corrupt} (the
   same exception [Codec.Corrupt] re-exports) carrying that offset plus
   expected/found descriptions — no decoder in the tree may raise
   anything else on malformed input, however truncated or bit-flipped.
   Counts are validated against the bytes remaining before any
   allocation, so fuzzed inputs cannot drive huge allocations. *)

exception Corrupt of {
  offset : int;
  expected : string;
  found : string;
}

let () =
  Printexc.register_printer (function
    | Corrupt { offset; expected; found } ->
      Some
        (Printf.sprintf "Codec.Corrupt at byte %d: expected %s, found %s" offset
           expected found)
    | _ -> None)

let corrupt ~offset ~expected ~found = raise (Corrupt { offset; expected; found })

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected), table-driven                         *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc data pos len =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get data i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 data = crc32_update 0 data 0 (Bytes.length data)
let crc32_sub data pos len = crc32_update 0 data pos len
let crc32_string s = crc32 (Bytes.unsafe_of_string s)

(* ------------------------------------------------------------------ *)
(* Writer (a thin layer over Buffer)                                   *)
(* ------------------------------------------------------------------ *)

let put_varint buf n =
  if n < 0 then invalid_arg "Bytesio.put_varint: negative";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let low = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

(* Signed ints: zigzag. *)
let put_int buf n = put_varint buf (if n >= 0 then n lsl 1 else ((-n) lsl 1) lor 1)

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

(* Inline label encoding (no string table): tag byte then payload.
   Segments that want dictionary compression (the store's CSR segment)
   keep their own table and encode Str/Sym as indices themselves. *)
let put_label buf (l : Ssd.Label.t) =
  match l with
  | Ssd.Label.Int i ->
    Buffer.add_char buf '\001';
    put_int buf i
  | Ssd.Label.Float f ->
    Buffer.add_char buf '\002';
    put_float buf f
  | Ssd.Label.Str s ->
    Buffer.add_char buf '\003';
    put_string buf s
  | Ssd.Label.Bool b ->
    Buffer.add_char buf '\004';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Ssd.Label.Sym s ->
    Buffer.add_char buf '\005';
    put_string buf s

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = {
  data : bytes;
  mutable pos : int;
}

let reader data = { data; pos = 0 }
let reader_of_string s = { data = Bytes.unsafe_of_string s; pos = 0 }

let remaining r = Bytes.length r.data - r.pos

let byte r =
  if r.pos >= Bytes.length r.data then
    corrupt ~offset:r.pos ~expected:"one more byte" ~found:"end of input";
  let c = Bytes.get_uint8 r.data r.pos in
  r.pos <- r.pos + 1;
  c

let get_varint r =
  let start = r.pos in
  let rec go shift acc =
    if shift > 62 then
      corrupt ~offset:start ~expected:"a varint of at most 9 bytes"
        ~found:"a longer continuation";
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    (* The last groups shift past bit 62: an adversarial encoding can
       wrap [acc] negative, which would slip through every [>= n] bound
       check downstream. *)
    if acc < 0 then
      corrupt ~offset:start ~expected:"a varint below 2^62" ~found:"an overflow";
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let get_int r =
  let z = get_varint r in
  if z land 1 = 0 then z lsr 1 else -(z lsr 1)

let get_string r =
  let n = get_varint r in
  if n > remaining r then
    corrupt ~offset:r.pos
      ~expected:(Printf.sprintf "%d bytes of string payload" n)
      ~found:(Printf.sprintf "%d bytes left" (remaining r));
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_float r =
  if remaining r < 8 then
    corrupt ~offset:r.pos ~expected:"8 bytes of float payload"
      ~found:(Printf.sprintf "%d bytes left" (remaining r));
  let bits = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits bits

let get_label r =
  let tag_off = r.pos in
  match byte r with
  | 1 -> Ssd.Label.Int (get_int r)
  | 2 -> Ssd.Label.Float (get_float r)
  | 3 -> Ssd.Label.Str (get_string r)
  | 4 -> Ssd.Label.Bool (byte r <> 0)
  | 5 -> Ssd.Label.Sym (get_string r)
  | t -> corrupt ~offset:tag_off ~expected:"a label tag in 1..5" ~found:(string_of_int t)

(* A count of things each at least [unit_bytes] wide cannot exceed the
   bytes left; checking up front keeps fuzzed inputs from driving huge
   allocations before the truncation is even noticed. *)
let check_count r ~what ~unit_bytes n =
  if n > remaining r / unit_bytes then
    corrupt ~offset:r.pos
      ~expected:(Printf.sprintf "%s encodable in the %d bytes left" what (remaining r))
      ~found:(string_of_int n)

let expect_magic r magic =
  let off = r.pos in
  let n = String.length magic in
  if remaining r < n || Bytes.sub_string r.data off n <> magic then
    corrupt ~offset:off
      ~expected:(Printf.sprintf "magic %S" magic)
      ~found:
        (if remaining r < n then Printf.sprintf "%d-byte input" (remaining r)
         else Printf.sprintf "%S" (Bytes.sub_string r.data off n));
  r.pos <- off + n

let expect_end r =
  if r.pos <> Bytes.length r.data then
    corrupt ~offset:r.pos ~expected:"end of input"
      ~found:(Printf.sprintf "%d trailing bytes" (remaining r))
