module Graph = Ssd.Graph
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

(* Buffer-pool instrumentation (lib/obs): an access is one node touch in
   [replay]; a hit found its page resident, a miss faulted it in. *)
let m_accesses = Metrics.counter "pager.accesses"
let m_hits = Metrics.counter "pager.page_hits"
let m_misses = Metrics.counter "pager.page_misses"

type clustering =
  | Insertion
  | Bfs
  | Dfs
  | Scatter of int

let clustering_name = function
  | Insertion -> "insertion"
  | Bfs -> "bfs"
  | Dfs -> "dfs"
  | Scatter _ -> "scatter"

type t = {
  page : int array; (* node -> page *)
  n_pages : int;
}

let order_of clustering g =
  let n = Graph.n_nodes g in
  match clustering with
  | Insertion -> Array.init n Fun.id
  | Scatter seed ->
    let order = Array.init n Fun.id in
    (* Fisher–Yates with a splitmix-ish hash stream *)
    let state = ref (Int64.of_int (seed lxor 0x9E37)) in
    let next_int bound =
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      Int64.to_int (Int64.rem (Int64.shift_right_logical z 3) (Int64.of_int bound))
    in
    for i = n - 1 downto 1 do
      let j = next_int (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    order
  | Bfs ->
    let seen = Array.make n false in
    let out = Array.make n 0 in
    let next = ref 0 in
    let queue = Queue.create () in
    let visit u =
      if not seen.(u) then begin
        seen.(u) <- true;
        Queue.push u queue
      end
    in
    visit (Graph.root g);
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      out.(!next) <- u;
      incr next;
      List.iter (fun (_, v) -> visit v) (Graph.succ g u)
    done;
    (* unreachable nodes trail at the end *)
    for u = 0 to n - 1 do
      if not seen.(u) then begin
        out.(!next) <- u;
        incr next
      end
    done;
    out
  | Dfs ->
    let seen = Array.make n false in
    let out = Array.make n 0 in
    let next = ref 0 in
    let rec visit u =
      if not seen.(u) then begin
        seen.(u) <- true;
        out.(!next) <- u;
        incr next;
        List.iter (fun (_, v) -> visit v) (Graph.succ g u)
      end
    in
    visit (Graph.root g);
    for u = 0 to n - 1 do
      if not seen.(u) then visit u
    done;
    out

let layout clustering ~page_capacity g =
  if page_capacity <= 0 then
    Ssd_diag.error ~code:"SSD542" "Pager.layout: page_capacity must be positive (got %d)"
      page_capacity;
  Trace.with_span "pager.layout"
    ~attrs:
      [
        ("clustering", Trace.Str (clustering_name clustering));
        ("page_capacity", Trace.Int page_capacity);
      ]
  @@ fun () ->
  let order = order_of clustering g in
  let n = Array.length order in
  let page = Array.make n 0 in
  Array.iteri (fun rank u -> page.(u) <- rank / page_capacity) order;
  { page; n_pages = (n + page_capacity - 1) / page_capacity }

let n_pages t = t.n_pages
let page_of t u = t.page.(u)

type sim = {
  accesses : int;
  faults : int;
}

let replay t ~buffer_pages accesses =
  if buffer_pages <= 0 then
    Ssd_diag.error ~code:"SSD542" "Pager.replay: buffer_pages must be positive (got %d)"
      buffer_pages;
  Trace.with_span "pager.replay" ~attrs:[ ("buffer_pages", Trace.Int buffer_pages) ]
  @@ fun () ->
  (* LRU via the O(1) recency list ({!Lru}); the old implementation
     scanned the whole buffer for the oldest tick on every fault. *)
  let cache : unit Lru.t = Lru.create ~size_hint:buffer_pages () in
  let faults = ref 0 in
  let n_accesses = ref 0 in
  List.iter
    (fun node ->
      incr n_accesses;
      let p = t.page.(node) in
      match Lru.use cache p with
      | Some () -> Metrics.incr m_hits
      | None ->
        incr faults;
        Metrics.incr m_misses;
        if Lru.size cache >= buffer_pages then ignore (Lru.evict_lru cache);
        Lru.add cache p ())
    accesses;
  Metrics.add m_accesses !n_accesses;
  if Trace.enabled () then begin
    Trace.bump "page_hits" (!n_accesses - !faults);
    Trace.bump "page_misses" !faults
  end;
  { accesses = !n_accesses; faults = !faults }

let random_walks ~seed ~n_walks ~depth g =
  let state = ref (Int64.of_int (seed lxor 0x51ED)) in
  let next_int bound =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    if bound <= 0 then 0 else Int64.to_int (Int64.rem (Int64.shift_right_logical z 3) (Int64.of_int bound))
  in
  let acc = ref [] in
  for _ = 1 to n_walks do
    let u = ref (Graph.root g) in
    acc := !u :: !acc;
    (try
       for _ = 1 to depth do
         match Graph.labeled_succ g !u with
         | [] -> raise Exit
         | es ->
           let _, v = List.nth es (next_int (List.length es)) in
           u := v;
           acc := v :: !acc
       done
     with Exit -> ())
  done;
  List.rev !acc
