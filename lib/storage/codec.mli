(** Binary serialization of data graphs.

    Section 4 distinguishes using the model as an interface to existing
    data from "building a data structure to represent semistructured data
    directly"; this module is the bottom of the second option: a compact,
    self-contained binary format for graphs.

    Layout (all integers LEB128 varints):

    {v
      magic "SSD1" | n_nodes | root
      string table: n_strings, then length-prefixed bytes
      per node: out-degree, then per edge a label and target
      labels: tag byte (0=ε 1=int 2=float 3=str 4=bool 5=sym),
              payload (varint / 8-byte IEEE / string-table index / byte)
    v}

    Node identities survive a round-trip exactly (not just up to
    bisimilarity): the format stores the graph, not its value. *)

val encode : Ssd.Graph.t -> bytes

(** Malformed input.  [offset] is the byte position of the defect;
    [expected]/[found] describe it ("magic \"SSD1\"" vs a 3-byte input,
    "a label tag in 0..5" vs 9, ...).  {!decode} raises nothing else on
    any input, however truncated or bit-flipped (fuzz-tested): in
    particular, counts are validated against the bytes remaining before
    any allocation, and varints that would overflow the 62-bit range are
    rejected rather than wrapped. *)
exception Corrupt of {
  offset : int;
  expected : string;
  found : string;
}

(** @raise Corrupt on malformed input. *)
val decode : bytes -> Ssd.Graph.t

val write_file : string -> Ssd.Graph.t -> unit

(** @raise Corrupt on malformed file contents. *)
val read_file : string -> Ssd.Graph.t

(** Encoded size in bytes (without building the buffer twice). *)
val encoded_size : Ssd.Graph.t -> int
