module Graph = Ssd.Graph
module Label = Ssd.Label
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

(* Codec instrumentation (lib/obs): total bytes through each direction. *)
let m_encodes = Metrics.counter "codec.encodes"
let m_decodes = Metrics.counter "codec.decodes"
let m_bytes_out = Metrics.counter "codec.bytes_encoded"
let m_bytes_in = Metrics.counter "codec.bytes_decoded"

(* The reader/writer machinery (varints, zigzag, strings, bounds and
   count validation) lives in Bytesio, shared with the index serializers
   and the persistent store's page/WAL formats. *)

exception Corrupt = Bytesio.Corrupt

let corrupt = Bytesio.corrupt
let put_varint = Bytesio.put_varint
let put_int = Bytesio.put_int
let put_string = Bytesio.put_string
let remaining = Bytesio.remaining
let byte = Bytesio.byte
let get_varint = Bytesio.get_varint
let get_int = Bytesio.get_int
let get_string = Bytesio.get_string
let check_count = Bytesio.check_count

(* ------------------------------------------------------------------ *)
(* Graph format                                                        *)
(* ------------------------------------------------------------------ *)

let magic = "SSD1"

let encode g =
  Metrics.incr m_encodes;
  Trace.with_span "codec.encode" @@ fun () ->
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let n = Graph.n_nodes g in
  put_varint buf n;
  put_varint buf (Graph.root g);
  (* String table: all distinct Str/Sym payloads. *)
  let strings = Hashtbl.create 64 in
  let order = ref [] in
  let intern s =
    match Hashtbl.find_opt strings s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length strings in
      Hashtbl.add strings s i;
      order := s :: !order;
      i
  in
  Graph.fold_edges
    (fun () _ l _ ->
      match l with
      | Graph.Lab (Label.Str s) | Graph.Lab (Label.Sym s) -> ignore (intern s)
      | Graph.Lab (Label.Int _ | Label.Float _ | Label.Bool _) | Graph.Eps -> ())
    () g;
  put_varint buf (Hashtbl.length strings);
  List.iter (put_string buf) (List.rev !order);
  let put_label l =
    match l with
    | Graph.Eps -> Buffer.add_char buf '\000'
    | Graph.Lab (Label.Int i) ->
      Buffer.add_char buf '\001';
      put_int buf i
    | Graph.Lab (Label.Float f) ->
      Buffer.add_char buf '\002';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
    | Graph.Lab (Label.Str s) ->
      Buffer.add_char buf '\003';
      put_varint buf (Hashtbl.find strings s)
    | Graph.Lab (Label.Bool b) ->
      Buffer.add_char buf '\004';
      Buffer.add_char buf (if b then '\001' else '\000')
    | Graph.Lab (Label.Sym s) ->
      Buffer.add_char buf '\005';
      put_varint buf (Hashtbl.find strings s)
  in
  for u = 0 to n - 1 do
    let es = Graph.succ g u in
    put_varint buf (List.length es);
    List.iter
      (fun (l, v) ->
        put_label l;
        put_varint buf v)
      es
  done;
  Metrics.add m_bytes_out (Buffer.length buf);
  Trace.annotate "bytes" (Trace.Int (Buffer.length buf));
  Buffer.to_bytes buf

let decode data =
  Metrics.incr m_decodes;
  Metrics.add m_bytes_in (Bytes.length data);
  Trace.with_span "codec.decode"
    ~attrs:[ ("bytes", Trace.Int (Bytes.length data)) ]
  @@ fun () ->
  if Bytes.length data < 4 || Bytes.sub_string data 0 4 <> magic then
    corrupt ~offset:0 ~expected:"magic \"SSD1\""
      ~found:
        (if Bytes.length data < 4 then
           Printf.sprintf "%d-byte input" (Bytes.length data)
         else Printf.sprintf "%S" (Bytes.sub_string data 0 4));
  let r = { Bytesio.data; pos = 4 } in
  let n = get_varint r in
  let root = get_varint r in
  if n = 0 then corrupt ~offset:4 ~expected:"a nonempty graph" ~found:"n_nodes = 0";
  check_count r ~what:"a node count" ~unit_bytes:1 n;
  if root >= n then
    corrupt ~offset:4
      ~expected:(Printf.sprintf "a root below n_nodes = %d" n)
      ~found:(string_of_int root);
  let n_strings = get_varint r in
  check_count r ~what:"a string-table size" ~unit_bytes:1 n_strings;
  let table = Array.init n_strings (fun _ -> get_string r) in
  let string_at off i =
    if i < n_strings then table.(i)
    else
      corrupt ~offset:off
        ~expected:(Printf.sprintf "a string index below %d" n_strings)
        ~found:(string_of_int i)
  in
  let b = Graph.Builder.create () in
  for _ = 1 to n do
    ignore (Graph.Builder.add_node b)
  done;
  Graph.Builder.set_root b root;
  for u = 0 to n - 1 do
    let deg = get_varint r in
    check_count r ~what:"an out-degree" ~unit_bytes:2 deg;
    for _ = 1 to deg do
      let tag_off = r.Bytesio.pos in
      let label =
        match byte r with
        | 0 -> Graph.Eps
        | 1 -> Graph.Lab (Label.Int (get_int r))
        | 2 ->
          if remaining r < 8 then
            corrupt ~offset:r.Bytesio.pos ~expected:"8 bytes of float payload"
              ~found:(Printf.sprintf "%d bytes left" (remaining r));
          let bits = Bytes.get_int64_le r.Bytesio.data r.Bytesio.pos in
          r.Bytesio.pos <- r.Bytesio.pos + 8;
          Graph.Lab (Label.Float (Int64.float_of_bits bits))
        | 3 ->
          let off = r.Bytesio.pos in
          Graph.Lab (Label.Str (string_at off (get_varint r)))
        | 4 -> Graph.Lab (Label.Bool (byte r <> 0))
        | 5 ->
          let off = r.Bytesio.pos in
          Graph.Lab (Label.Sym (string_at off (get_varint r)))
        | t ->
          corrupt ~offset:tag_off ~expected:"a label tag in 0..5" ~found:(string_of_int t)
      in
      let v = get_varint r in
      if v >= n then
        corrupt ~offset:tag_off
          ~expected:(Printf.sprintf "an edge target below n_nodes = %d" n)
          ~found:(string_of_int v);
      match label with
      | Graph.Eps -> Graph.Builder.add_eps b u v
      | Graph.Lab l -> Graph.Builder.add_edge b u l v
    done
  done;
  if r.Bytesio.pos <> Bytes.length data then
    corrupt ~offset:r.Bytesio.pos ~expected:"end of input"
      ~found:(Printf.sprintf "%d trailing bytes" (remaining r));
  Graph.Builder.finish b

let encoded_size g = Bytes.length (encode g)

let write_file path g =
  let oc = open_out_bin path in
  let data = encode g in
  output_bytes oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = Bytes.create n in
  really_input ic data 0 n;
  close_in ic;
  decode data
