(** O(1) amortized LRU map over integer keys (hash table + intrusive
    doubly-linked recency list).  Backs {!Pager.replay} eviction and the
    persistent store's buffer pool. *)

type 'a t

val create : ?size_hint:int -> unit -> 'a t
val size : 'a t -> int
val mem : 'a t -> int -> bool

(** Lookup; a hit becomes the most-recently-used entry. *)
val use : 'a t -> int -> 'a option

(** Insert or overwrite as most-recently-used. *)
val add : 'a t -> int -> 'a -> unit

(** Remove and return the least-recently-used entry. *)
val evict_lru : 'a t -> (int * 'a) option

val remove : 'a t -> int -> unit
val clear : 'a t -> unit

(** Iteration order is unspecified. *)
val iter : (int -> 'a -> unit) -> 'a t -> unit
