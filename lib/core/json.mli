(** JSON as semistructured data.

    Section 1.2 of the paper motivates the model as "an extremely flexible
    format for data exchange between disparate databases"; JSON is the
    format that role eventually standardized on.  This module gives a
    self-contained JSON parser/printer and the encoding into the
    edge-labeled model:

    - an object [{"k": v}] becomes a set of [Sym k] edges;
    - an array [[v0, v1]] becomes [Int 0], [Int 1], ... edges — exactly the
      paper's remark that "arrays may be represented by labeling internal
      edges with integers";
    - a scalar becomes a leaf edge labeled with the base value;
    - [null] becomes the leaf [Sym null].

    The encoding is not injective on all trees (that is the paper's point:
    the model subsumes the format), so {!to_tree} ∘ {!of_tree} = id holds
    while the converse only holds on trees in the image of {!to_tree}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
val to_string : t -> string

(** {!to_string} without line breaks — one line however deep the value,
    for line-oriented sinks (JSONL).  Re-parses to the same value. *)
val to_compact_string : t -> string
val pp : Format.formatter -> t -> unit

(** Encode a JSON document as an edge-labeled tree. *)
val to_tree : t -> Tree.t

(** Decode a tree back into JSON.  Trees outside the image of {!to_tree}
    are decoded by heuristics: integer-labeled edge sets [0..n-1] become
    arrays, symbol-labeled edge sets become objects (duplicate keys keep
    the first), leaf-only base labels become scalars; anything else falls
    back to an object keyed by label text. *)
val of_tree : Tree.t -> t
