type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type lexer = { src : string; mutable pos : int }

let fail lx msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" lx.pos msg))

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    lx.pos <- lx.pos + 1;
    skip_ws lx
  | _ -> ()

let expect lx c =
  skip_ws lx;
  match peek lx with
  | Some c' when c' = c -> lx.pos <- lx.pos + 1
  | _ -> fail lx (Printf.sprintf "expected %C" c)

let parse_literal lx word value =
  if
    lx.pos + String.length word <= String.length lx.src
    && String.sub lx.src lx.pos (String.length word) = word
  then begin
    lx.pos <- lx.pos + String.length word;
    value
  end
  else fail lx ("expected " ^ word)

let parse_string_body lx =
  expect lx '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | None -> fail lx "unterminated string"
    | Some '"' -> lx.pos <- lx.pos + 1
    | Some '\\' ->
      lx.pos <- lx.pos + 1;
      (match peek lx with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some 'r' -> Buffer.add_char buf '\r'
       | Some 'b' -> Buffer.add_char buf '\b'
       | Some 'f' -> Buffer.add_char buf '\012'
       | Some 'u' ->
         (* Keep \uXXXX escapes as literal text; full unicode handling is
            out of scope for the exchange-format demonstration. *)
         Buffer.add_string buf "\\u"
       | Some c -> Buffer.add_char buf c
       | None -> fail lx "unterminated escape");
      lx.pos <- lx.pos + 1;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      lx.pos <- lx.pos + 1;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number lx =
  let start = lx.pos in
  let numchar c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
  while (match peek lx with Some c -> numchar c | None -> false) do
    lx.pos <- lx.pos + 1
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Float f
     | None -> fail lx ("bad number " ^ s))

let rec parse_value lx =
  skip_ws lx;
  match peek lx with
  | None -> fail lx "unexpected end of input"
  | Some 'n' -> parse_literal lx "null" Null
  | Some 't' -> parse_literal lx "true" (Bool true)
  | Some 'f' -> parse_literal lx "false" (Bool false)
  | Some '"' -> String (parse_string_body lx)
  | Some '[' ->
    lx.pos <- lx.pos + 1;
    skip_ws lx;
    if peek lx = Some ']' then begin
      lx.pos <- lx.pos + 1;
      List []
    end
    else begin
      let items = ref [ parse_value lx ] in
      skip_ws lx;
      while peek lx = Some ',' do
        lx.pos <- lx.pos + 1;
        items := parse_value lx :: !items;
        skip_ws lx
      done;
      expect lx ']';
      List (List.rev !items)
    end
  | Some '{' ->
    lx.pos <- lx.pos + 1;
    skip_ws lx;
    if peek lx = Some '}' then begin
      lx.pos <- lx.pos + 1;
      Obj []
    end
    else begin
      let member () =
        skip_ws lx;
        let k = parse_string_body lx in
        expect lx ':';
        let v = parse_value lx in
        (k, v)
      in
      let items = ref [ member () ] in
      skip_ws lx;
      while peek lx = Some ',' do
        lx.pos <- lx.pos + 1;
        items := member () :: !items;
        skip_ws lx
      done;
      expect lx '}';
      Obj (List.rev !items)
    end
  | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number lx else fail lx "unexpected character"

let parse src =
  let lx = { src; pos = 0 } in
  let v = parse_value lx in
  skip_ws lx;
  if peek lx <> None then fail lx "trailing input";
  v

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f ->
    let s = string_of_float f in
    let s = if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s in
    Format.pp_print_string fmt s
  | String s -> Format.pp_print_string fmt (Label.to_string (Label.Str s))
  | List items ->
    Format.fprintf fmt "@[<hv 1>[";
    List.iteri
      (fun i v ->
        if i > 0 then Format.fprintf fmt ",@ ";
        pp fmt v)
      items;
    Format.fprintf fmt "]@]"
  | Obj members ->
    Format.fprintf fmt "@[<hv 1>{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ",@ ";
        Format.fprintf fmt "%s: %a" (Label.to_string (Label.Str k)) pp v)
      members;
    Format.fprintf fmt "}@]"

let to_string v = Format.asprintf "%a" pp v

(* One-line rendering for line-oriented sinks (JSONL event logs): same
   scalar formatting as [pp], no boxes, no newlines. *)
let to_compact_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      let s = string_of_float f in
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s
      in
      Buffer.add_string buf s
    | String s -> Buffer.add_string buf (Label.to_string (Label.Str s))
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          go x)
        items;
      Buffer.add_char buf ']'
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Label.to_string (Label.Str k));
          Buffer.add_string buf ": ";
          go x)
        members;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Encoding into the edge-labeled model                                *)
(* ------------------------------------------------------------------ *)

let rec to_tree = function
  | Null -> Tree.leaf (Label.Sym "null")
  | Bool b -> Tree.leaf (Label.Bool b)
  | Int i -> Tree.leaf (Label.Int i)
  | Float f -> Tree.leaf (Label.Float f)
  | String s -> Tree.leaf (Label.Str s)
  | List items ->
    Tree.of_edges (List.mapi (fun i v -> (Label.Int i, to_tree v)) items)
  | Obj members ->
    Tree.of_edges (List.map (fun (k, v) -> (Label.Sym k, to_tree v)) members)

let scalar_of_label = function
  | Label.Int i -> Some (Int i)
  | Label.Float f -> Some (Float f)
  | Label.Str s -> Some (String s)
  | Label.Bool b -> Some (Bool b)
  | Label.Sym "null" -> Some Null
  | Label.Sym _ -> None

let rec of_tree t =
  match Tree.edges t with
  | [] -> Obj []
  | [ (l, sub) ] when Tree.is_empty sub ->
    (match scalar_of_label l with
     | Some v -> v
     | None -> Obj [ (Label.to_string l, Obj []) ])
  | es ->
    let ints =
      List.for_all (fun (l, _) -> match l with Label.Int _ -> true | _ -> false) es
    in
    let contiguous =
      ints
      && List.for_all2
           (fun i (l, _) -> l = Label.Int i)
           (List.init (List.length es) Fun.id)
           es
    in
    if contiguous then List (List.map (fun (_, sub) -> of_tree sub) es)
    else
      let key l = match l with Label.Sym s -> s | l -> Label.to_string l in
      (* Duplicate labels are legal in the model but not in JSON objects;
         keep the first occurrence of each key. *)
      let seen = Hashtbl.create 8 in
      Obj
        (List.filter_map
           (fun (l, sub) ->
             let k = key l in
             if Hashtbl.mem seen k then None
             else begin
               Hashtbl.add seen k ();
               Some (k, of_tree sub)
             end)
           es)
