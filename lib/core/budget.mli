(** Resource governance for query evaluation: step budgets and deadlines
    with graceful degradation.

    The north star asks the system to handle "as many scenarios as you can
    imagine"; the scenario this module covers is the query that is too
    expensive for its caller's patience.  Instead of raising when a limit
    is hit, every evaluator ({!Unql.Eval}, {!Lorel.Eval},
    {!Relstore.Datalog}, {!Ssd_dist.Decompose}) degrades to a typed
    {e partial} result: evaluation stops expanding new work and returns
    what it has, tagged with the reason.  The contract — property-tested —
    is that a partial answer is a {e sound lower bound}: everything in it
    is also in the complete answer, never the other way around.

    Budgets achieve this by being consulted only at {e generator}
    positions (frontier expansion, binding enumeration, fixpoint rounds),
    never inside conditions: a binding that is produced is always judged
    exactly, so exhaustion can only shrink the answer. *)

type exhaustion =
  | Steps (** the step budget ran out *)
  | Deadline (** the deadline passed *)
  | Stalled
      (** forward progress stopped (distributed evaluation: the round cap
          was hit before quiescence, e.g. under a 100% message-drop fault
          plan) *)

val exhaustion_to_string : exhaustion -> string

(** The result of a budgeted evaluation.  [Partial (a, why)] carries an
    answer [a] that is a subset of (is simulated by) the [Complete]
    answer. *)
type 'a outcome =
  | Complete of 'a
  | Partial of 'a * exhaustion

type t

(** A budget that never exhausts (the default everywhere). *)
val unlimited : unit -> t

(** [create ?deadline_ms ?max_steps ()] exhausts after [max_steps] units
    of generator work or once [deadline_ms] milliseconds of processor
    time have elapsed (checked every 128 steps), whichever comes first. *)
val create : ?deadline_ms:float -> ?max_steps:int -> unit -> t

(** Consume one step.  [false] means the budget is exhausted and the
    caller must stop producing new work (it keeps returning [false]).
    Inside {!exempt} it always returns [true] and consumes nothing.

    Thread-safe: the step counter and exhaustion flag are atomics, so
    the worker domains of a parallel region ({!module:Ssd_par} users)
    may draw from one shared budget.  Under contention the grant count
    can overshoot [max_steps] by at most the number of domains; on a
    single domain exactly [max_steps] steps are granted. *)
val step : t -> bool

(** Has the budget room left?  (Does not consume.) *)
val alive : t -> bool

(** Force exhaustion with the given reason (used by the distributed
    evaluator's round cap). First reason wins. *)
val exhaust : t -> exhaustion -> unit

val exhausted : t -> exhaustion option

(** [exempt t f] runs [f] with the budget suspended: condition evaluation
    must be exact (a mis-judged [where] could {e add} answers, breaking
    the lower-bound contract), so evaluators wrap it in [exempt].
    Unlike {!step}, exemption is {e not} thread-safe — only the
    coordinating domain may enter/leave [exempt]; parallel regions never
    run exempted code. *)
val exempt : t -> (unit -> 'a) -> 'a

(** Tag a finished evaluation's answer: [Complete] if the budget never
    exhausted, [Partial] otherwise. *)
val wrap : t -> 'a -> 'a outcome

(** Steps consumed so far. *)
val steps_used : t -> int
