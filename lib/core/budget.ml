type exhaustion =
  | Steps
  | Deadline
  | Stalled

let exhaustion_to_string = function
  | Steps -> "steps"
  | Deadline -> "deadline"
  | Stalled -> "stalled"

type 'a outcome =
  | Complete of 'a
  | Partial of 'a * exhaustion

(* Steps and the exhaustion flag are Atomics so a budget can be shared by
   the worker domains of a parallel region (lib/par): every domain draws
   from the same counter, so the total amount of work stays bounded and a
   Partial answer is still a sound lower bound.  Concurrent [step] calls
   can overshoot [max_steps] by at most the number of domains (each may
   pass the pre-check before any increments land) — never unboundedly.
   On a single domain the behavior is exactly the pre-atomic one:
   exactly [max_steps] grants, [steps_used] counting grants. *)
type t = {
  max_steps : int;
  deadline : float; (* Sys.time seconds; infinity = no deadline *)
  steps : int Atomic.t;
  stopped : exhaustion option Atomic.t;
  mutable exempt_depth : int; (* coordinator-domain only; see .mli *)
}

let unlimited () =
  {
    max_steps = max_int;
    deadline = infinity;
    steps = Atomic.make 0;
    stopped = Atomic.make None;
    exempt_depth = 0;
  }

let create ?deadline_ms ?max_steps () =
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms -> Sys.time () +. (ms /. 1000.)
  in
  {
    max_steps = Option.value ~default:max_int max_steps;
    deadline;
    steps = Atomic.make 0;
    stopped = Atomic.make None;
    exempt_depth = 0;
  }

(* Exhaustion is recorded with a compare-and-set so the first reason wins
   even under contention. *)
let trip t why = ignore (Atomic.compare_and_set t.stopped None (Some why))

let step t =
  if t.exempt_depth > 0 then true
  else
    match Atomic.get t.stopped with
    | Some _ -> false
    | None ->
      if Atomic.get t.steps >= t.max_steps then begin
        trip t Steps;
        false
      end
      else begin
        let s = Atomic.fetch_and_add t.steps 1 + 1 in
        (* The clock is only read every 128 steps: a deadline costs one
           [land] per step, not a syscall. *)
        if t.deadline < infinity && s land 127 = 0 && Sys.time () > t.deadline
        then begin
          trip t Deadline;
          false
        end
        else true
      end

let alive t = Atomic.get t.stopped = None

let exhaust t why = trip t why

let exhausted t = Atomic.get t.stopped

let exempt t f =
  t.exempt_depth <- t.exempt_depth + 1;
  Fun.protect ~finally:(fun () -> t.exempt_depth <- t.exempt_depth - 1) f

let wrap t v =
  match Atomic.get t.stopped with
  | None -> Complete v
  | Some why -> Partial (v, why)

let steps_used t = min (Atomic.get t.steps) t.max_steps
