type exhaustion =
  | Steps
  | Deadline
  | Stalled

let exhaustion_to_string = function
  | Steps -> "steps"
  | Deadline -> "deadline"
  | Stalled -> "stalled"

type 'a outcome =
  | Complete of 'a
  | Partial of 'a * exhaustion

type t = {
  max_steps : int;
  deadline : float; (* Sys.time seconds; infinity = no deadline *)
  mutable steps : int;
  mutable stopped : exhaustion option;
  mutable exempt_depth : int;
}

let unlimited () =
  { max_steps = max_int; deadline = infinity; steps = 0; stopped = None; exempt_depth = 0 }

let create ?deadline_ms ?max_steps () =
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms -> Sys.time () +. (ms /. 1000.)
  in
  {
    max_steps = Option.value ~default:max_int max_steps;
    deadline;
    steps = 0;
    stopped = None;
    exempt_depth = 0;
  }

let step t =
  if t.exempt_depth > 0 then true
  else
    match t.stopped with
    | Some _ -> false
    | None ->
      if t.steps >= t.max_steps then begin
        t.stopped <- Some Steps;
        false
      end
      else begin
        t.steps <- t.steps + 1;
        (* The clock is only read every 128 steps: a deadline costs one
           [land] per step, not a syscall. *)
        if t.deadline < infinity && t.steps land 127 = 0 && Sys.time () > t.deadline
        then begin
          t.stopped <- Some Deadline;
          false
        end
        else true
      end

let alive t = t.stopped = None

let exhaust t why = if t.stopped = None then t.stopped <- Some why

let exhausted t = t.stopped

let exempt t f =
  t.exempt_depth <- t.exempt_depth + 1;
  Fun.protect ~finally:(fun () -> t.exempt_depth <- t.exempt_depth - 1) f

let wrap t v =
  match t.stopped with
  | None -> Complete v
  | Some why -> Partial (v, why)

let steps_used t = t.steps
