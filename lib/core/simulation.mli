(** Maximal simulation between edge-labeled graphs.

    Simulation is the relationship the paper's section 5 uses between data
    and schema (Buneman, Davidson, Fernandez, Suciu, ICDT'97): data node
    [u] is simulated by schema node [s] if every labeled edge out of [u]
    can be matched by an edge out of [s] whose predicate accepts the label,
    with the targets again in the relation.

    This module computes the maximal simulation for a generic edge-match
    predicate, so it serves both plain graph-graph simulation (match =
    label equality) and data-schema conformance (match = predicate
    satisfaction, used by {!module:Ssd_schema} if linked). *)

(** [maximal ~n1 ~succ1 ~n2 ~succ2 ~matches] computes the maximal relation
    [r] such that [r u s] implies every edge [(l, u')] in [succ1 u] has an
    edge [(m, s')] in [succ2 s] with [matches l m] and [r u' s'].
    Result: [r.(u)] is the list of [s] simulating [u]. *)
val maximal :
  n1:int ->
  succ1:(int -> ('l * int) list) ->
  n2:int ->
  succ2:(int -> ('m * int) list) ->
  matches:('l -> 'm -> bool) ->
  int list array

(** [simulates a b]: is the root of [a] simulated by the root of [b]
    (labels matched by equality)?  Intuitively: every path shape in [a]
    also exists in [b]. *)
val simulates : Graph.t -> Graph.t -> bool

(** [similar a b] = [simulates a b && simulates b a].  Note this is weaker
    than bisimilarity. *)
val similar : Graph.t -> Graph.t -> bool
