(* Write-ahead log: page-level redo records in CRC32-guarded frames.

   File layout: an 8-byte raw header ["SSDW" | version u8 | pad[3]]
   followed by frames:
   {v
     0xF7 | type u8 | lsn u64 LE | arg u64 LE | len u32 LE | payload | crc32 u32 LE
   v}
   The CRC covers everything before it.  Frame types:
   - [Page]   arg = page number, payload = the full framed page image.
   - [Commit] arg = number of page frames in the transaction,
              payload = the new framed superblock page.

   A transaction is a run of [Page] frames sharing one LSN closed by the
   [Commit] frame with that LSN; the commit is acknowledged only after
   the WAL fsync returns.  {!scan} performs the analysis pass: it walks
   frames until the first torn or corrupt one, discards that tail, and
   returns the committed transactions in LSN order — exactly the
   ARIES-style "analysis" half, with redo applied by {!Store}. *)

module B = Ssd_storage.Bytesio

let header_size = 8
let magic = "SSDW"
let version = 1
let frame_magic = 0xF7
let t_page = 1
let t_commit = 2
let frame_overhead = 22 + 4 (* header + trailing crc *)
let max_payload = 1 lsl 26

let encode_header () =
  let b = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  b

let check_header b =
  if Bytes.length b < header_size then
    B.corrupt ~offset:0 ~expected:"an 8-byte WAL header"
      ~found:(Printf.sprintf "%d bytes" (Bytes.length b));
  if Bytes.sub_string b 0 4 <> magic then
    B.corrupt ~offset:0
      ~expected:(Printf.sprintf "WAL magic %S" magic)
      ~found:(Printf.sprintf "%S" (Bytes.sub_string b 0 4));
  let v = Char.code (Bytes.get b 4) in
  if v <> version then
    B.corrupt ~offset:4
      ~expected:(Printf.sprintf "WAL version %d" version)
      ~found:(string_of_int v)

let encode_frame ~typ ~lsn ~arg payload =
  let len = Bytes.length payload in
  let b = Bytes.create (frame_overhead + len) in
  Bytes.set b 0 (Char.chr frame_magic);
  Bytes.set b 1 (Char.chr typ);
  Bytes.set_int64_le b 2 (Int64.of_int lsn);
  Bytes.set_int64_le b 10 (Int64.of_int arg);
  Bytes.set_int32_le b 18 (Int32.of_int len);
  Bytes.blit payload 0 b 22 len;
  let crc = B.crc32_update 0 b 0 (22 + len) in
  Bytes.set_int32_le b (22 + len) (Int32.of_int crc);
  b

type frame = {
  typ : int;
  lsn : int;
  arg : int;
  payload : bytes;
}

(* One committed transaction: its page writes and the superblock image
   its commit frame carried. *)
type txn = {
  txn_lsn : int;
  pages : (int * bytes) list; (* (page_no, framed page image) *)
  sb_page : bytes;
}

type scan_result = {
  txns : txn list; (* committed, in LSN order *)
  torn_bytes : int; (* discarded tail length (0 = clean tail) *)
  in_flight : int; (* page frames after the last commit (uncommitted) *)
  scanned_bytes : int; (* valid frame bytes, excluding the header *)
}

(* Parse one frame at [off]; [None] if the tail from [off] is torn,
   truncated or corrupt. *)
let parse_frame data off =
  let size = Bytes.length data in
  if off + frame_overhead > size then None
  else if Char.code (Bytes.get data off) <> frame_magic then None
  else begin
    let typ = Char.code (Bytes.get data (off + 1)) in
    if typ <> t_page && typ <> t_commit then None
    else begin
      let lsn = Int64.to_int (Bytes.get_int64_le data (off + 2)) in
      let arg = Int64.to_int (Bytes.get_int64_le data (off + 10)) in
      let len = Int32.to_int (Bytes.get_int32_le data (off + 18)) in
      if len < 0 || len > max_payload || off + frame_overhead + len > size then None
      else begin
        let stored =
          Int32.to_int (Bytes.get_int32_le data (off + 22 + len)) land 0xFFFFFFFF
        in
        let computed = B.crc32_update 0 data off (22 + len) in
        if stored <> computed then None
        else Some ({ typ; lsn; arg; payload = Bytes.sub data (off + 22) len }, off + frame_overhead + len)
      end
    end
  end

let scan data =
  check_header data;
  let size = Bytes.length data in
  let txns = ref [] in
  let buffered = ref [] in (* page frames of the current LSN, newest first *)
  let last_lsn = ref (-1) in
  let off = ref header_size in
  let stop = ref false in
  while not !stop do
    if !off >= size then stop := true
    else begin
      match parse_frame data !off with
      | None -> stop := true
      | Some (f, next) ->
        (* LSNs must not decrease; a regression means tail garbage that
           happened to checksum (never produced by the writer). *)
        if f.lsn < !last_lsn then stop := true
        else begin
          if f.lsn > !last_lsn then begin
            (* A new transaction begins; whatever the previous LSN
               buffered without a commit is in-flight — keep buffering
               semantics simple by dropping it now. *)
            if f.lsn <> !last_lsn then buffered := [];
            last_lsn := f.lsn
          end;
          (if f.typ = t_page then buffered := (f.arg, f.payload) :: !buffered
           else begin
             (* Commit: close the buffered page frames of this LSN. *)
             txns :=
               { txn_lsn = f.lsn; pages = List.rev !buffered; sb_page = f.payload }
               :: !txns;
             buffered := []
           end);
          off := next
        end
    end
  done;
  {
    txns = List.rev !txns;
    torn_bytes = size - !off;
    in_flight = List.length !buffered;
    scanned_bytes = !off - header_size;
  }
