(* Buffer pool: an LRU page cache over positional reads of the data
   file.  Reports into the same [pager.*] metrics as the access
   simulator ({!Ssd_storage.Pager}) — registration by name is
   idempotent, so both feed one set of counters. *)

module Metrics = Ssd_obs.Metrics
module Lru = Ssd_storage.Lru

let m_accesses = Metrics.counter "pager.accesses"
let m_hits = Metrics.counter "pager.page_hits"
let m_misses = Metrics.counter "pager.page_misses"

type t = {
  capacity : int;
  cache : bytes Lru.t;
  read_page : int -> bytes; (* faults the framed page in from disk *)
}

let create ~capacity ~read_page =
  { capacity = max 1 capacity; cache = Lru.create ~size_hint:capacity (); read_page }

(* The framed page image (validation is the caller's business — the
   pool caches bytes, not trust). *)
let get pool p =
  Metrics.incr m_accesses;
  match Lru.use pool.cache p with
  | Some page -> Metrics.incr m_hits; page
  | None ->
    Metrics.incr m_misses;
    let page = pool.read_page p in
    if Lru.size pool.cache >= pool.capacity then ignore (Lru.evict_lru pool.cache);
    Lru.add pool.cache p page;
    page

let invalidate pool p = Lru.remove pool.cache p
let clear pool = Lru.clear pool.cache
let occupancy pool = Lru.size pool.cache
let capacity pool = pool.capacity
