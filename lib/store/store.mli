(** Crash-safe persistent graph store: fixed-size pages holding a label
    dictionary and CSR-style adjacency segments, read through an LRU
    buffer pool; a CRC32-guarded write-ahead log with fsync barriers;
    ARIES-style recovery (analysis, then redo of committed transactions,
    discarding torn tails); value/text/path indexes and the DataGuide
    checkpointed as segments and opened lazily — a cold open answers
    indexed queries without rebuilding anything.

    A commit is acknowledged only after the WAL fsync returns; an
    acknowledged commit survives any crash, and recovery always restores
    exactly one committed version (never a mix).  The crash-recovery
    fuzzer ([test/crash_fuzz.ml]) checks this against thousands of
    seeded crash, torn-write and bit-flip schedules. *)

type t

(** What {!open_} found: how many committed transactions it replayed,
    how many torn tail bytes it discarded, and whether the store had
    been closed cleanly (in which case recovery was skipped). *)
type recovery = {
  recovered_txns : int;
  torn_bytes : int;
  was_clean : bool;
}

(** All maintainable index segments: ["value"; "text"; "path"; "guide"]. *)
val all_indexes : string list

(** [create vfs g] initializes a store holding [g] and returns it open.
    [indexes] (default: all) selects which index segments the store
    maintains at every commit. *)
val create :
  ?page_size:int ->
  ?indexes:string list ->
  ?path_depth:int ->
  ?pool_pages:int ->
  ?checkpoint_every:int ->
  Vfs.t ->
  Ssd.Graph.t ->
  t

(** Open an existing store, running recovery if it is needed.
    [checkpoint_every] bounds the transactions between automatic
    checkpoints (default: only on {!close}). *)
val open_ : ?pool_pages:int -> ?checkpoint_every:int -> Vfs.t -> t

(** Durably replace the stored graph: segments are re-encoded, changed
    pages and the new superblock are appended to the WAL, and the WAL is
    fsynced before this returns. *)
val commit : t -> Ssd.Graph.t -> unit

(** Apply logged pages to the data file and truncate the WAL. *)
val checkpoint : t -> unit

(** Apply the log and trim the data file to its live pages (layout is
    re-derived tightly at each commit, so this is a checkpoint). *)
val compact : t -> unit

(** Checkpoint, set the clean-shutdown flag and close the files; a
    subsequent {!open_} skips recovery. *)
val close : t -> unit

val graph : t -> Ssd.Graph.t
val recovery : t -> recovery
val page_size : t -> int

(** Depth the path index was built with (fixed at {!create}). *)
val path_depth : t -> int

val n_pages : t -> int

(** Logged WAL bytes (the file minus its fixed header; 0 right after a
    checkpoint). *)
val wal_size : t -> int

(** Index segments this store maintains. *)
val indexes : t -> string list

(** Lazy index access: the in-memory cache, else the checkpointed
    segment (deserialized, not rebuilt), else a build from the graph. *)
val value_index : t -> Ssd_index.Value_index.t

val text_index : t -> Ssd_index.Text_index.t
val path_index : t -> Ssd_index.Path_index.t
val dataguide : t -> Ssd_schema.Dataguide.t

(** Canonical serialized bytes of one index ("value", "text", "path" or
    "guide") — the byte-identity oracle for the fuzzer. *)
val index_segment_bytes : t -> string -> bytes

(** CRC32 chain over the canonical dict + graph segment payloads; equal
    fingerprints mean byte-identical durable content. *)
val fingerprint : t -> int

(** The fingerprint [commit g] would persist — the committed-prefix
    oracle computes these without a store. *)
val fingerprint_graph : Ssd.Graph.t -> int

type stat = {
  stat_page_size : int;
  stat_n_pages : int;
  stat_wal_bytes : int;
  stat_clean : bool;
  stat_segs : (string * int) list;
  stat_nodes : int;
  stat_edges : int;
}

val stat : t -> stat

(** Offline structural check (read-only).  Stable codes: [SSD560] bad
    magic/version, [SSD561] CRC mismatch, [SSD562] torn WAL tail,
    [SSD563] dangling page reference, [SSD564] malformed segment,
    [SSD565] recovery pending. *)
val fsck : Vfs.t -> Ssd_diag.t list
