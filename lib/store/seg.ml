(* Segment codecs: the label dictionary and the CSR-style graph.

   The dictionary ("SSDD") holds every distinct [Str]/[Sym] payload,
   sorted — canonical, and binary-searchable on disk.  The graph segment
   ("SSDG") is compressed sparse rows: a degrees block (one varint per
   node) followed by an edges block (tagged labels, string payloads as
   dictionary indices, then the target node).  Splitting degrees from
   edges keeps the node → row mapping computable without touching edge
   bytes, and referencing the dictionary keeps repeated labels one
   varint wide.

   Decoders validate everything — magics, sortedness, dictionary and
   node bounds, the edge count, full consumption — and raise only the
   typed [Bytesio.Corrupt]. *)

module B = Ssd_storage.Bytesio
module Graph = Ssd.Graph
module Label = Ssd.Label

let dict_magic = "SSDD"
let graph_magic = "SSDG"

(* ------------------------------------------------------------------ *)
(* Dictionary                                                          *)
(* ------------------------------------------------------------------ *)

(* All distinct string payloads of the graph's labels, sorted. *)
let dict_of_graph g =
  let tbl = Hashtbl.create 64 in
  Graph.fold_edges
    (fun () _ l _ ->
      match l with
      | Graph.Lab (Label.Str s) | Graph.Lab (Label.Sym s) -> Hashtbl.replace tbl s ()
      | Graph.Lab (Label.Int _ | Label.Float _ | Label.Bool _) | Graph.Eps -> ())
    () g;
  let strings = Hashtbl.fold (fun s () acc -> s :: acc) tbl [] in
  Array.of_list (List.sort String.compare strings)

let encode_dict dict =
  let buf = Buffer.create 256 in
  Buffer.add_string buf dict_magic;
  B.put_varint buf (Array.length dict);
  Array.iter (B.put_string buf) dict;
  Buffer.to_bytes buf

let decode_dict data =
  let r = B.reader data in
  B.expect_magic r dict_magic;
  let n = B.get_varint r in
  B.check_count r ~what:"a dictionary size" ~unit_bytes:1 n;
  let dict = Array.make n "" in
  for i = 0 to n - 1 do
    let off = r.B.pos in
    let s = B.get_string r in
    if i > 0 && String.compare dict.(i - 1) s >= 0 then
      B.corrupt ~offset:off ~expected:"strictly ascending dictionary strings"
        ~found:(Printf.sprintf "%S after %S" s dict.(i - 1));
    dict.(i) <- s
  done;
  B.expect_end r;
  dict

(* Binary search; the encoder only ever looks up present strings. *)
let dict_index dict s =
  let lo = ref 0 and hi = ref (Array.length dict) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare dict.(mid) s < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length dict && String.equal dict.(!lo) s then !lo
  else invalid_arg (Printf.sprintf "Seg.dict_index: %S not in dictionary" s)

(* ------------------------------------------------------------------ *)
(* Graph (CSR)                                                         *)
(* ------------------------------------------------------------------ *)

let encode_graph ~dict g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf graph_magic;
  let n = Graph.n_nodes g in
  B.put_varint buf n;
  B.put_varint buf (Graph.root g);
  B.put_varint buf (Graph.n_edges g);
  (* Degrees block. *)
  for u = 0 to n - 1 do
    B.put_varint buf (List.length (Graph.succ g u))
  done;
  (* Edges block: tag, payload (strings as dictionary indices), target. *)
  for u = 0 to n - 1 do
    List.iter
      (fun (l, v) ->
        (match l with
        | Graph.Eps -> Buffer.add_char buf '\000'
        | Graph.Lab (Label.Int i) ->
          Buffer.add_char buf '\001';
          B.put_int buf i
        | Graph.Lab (Label.Float f) ->
          Buffer.add_char buf '\002';
          B.put_float buf f
        | Graph.Lab (Label.Str s) ->
          Buffer.add_char buf '\003';
          B.put_varint buf (dict_index dict s)
        | Graph.Lab (Label.Bool bl) ->
          Buffer.add_char buf '\004';
          Buffer.add_char buf (if bl then '\001' else '\000')
        | Graph.Lab (Label.Sym s) ->
          Buffer.add_char buf '\005';
          B.put_varint buf (dict_index dict s));
        B.put_varint buf v)
      (Graph.succ g u)
  done;
  Buffer.to_bytes buf

let decode_graph ~dict data =
  let r = B.reader data in
  B.expect_magic r graph_magic;
  let n = B.get_varint r in
  if n = 0 then B.corrupt ~offset:4 ~expected:"a nonempty graph" ~found:"n_nodes = 0";
  B.check_count r ~what:"a node count" ~unit_bytes:1 n;
  let root = B.get_varint r in
  if root >= n then
    B.corrupt ~offset:4
      ~expected:(Printf.sprintf "a root below n_nodes = %d" n)
      ~found:(string_of_int root);
  let n_edges = B.get_varint r in
  B.check_count r ~what:"an edge count" ~unit_bytes:2 n_edges;
  let degrees = Array.make n 0 in
  let total = ref 0 in
  for u = 0 to n - 1 do
    let off = r.B.pos in
    let d = B.get_varint r in
    B.check_count r ~what:"an out-degree" ~unit_bytes:2 d;
    if !total + d > n_edges then
      B.corrupt ~offset:off
        ~expected:(Printf.sprintf "degrees summing to n_edges = %d" n_edges)
        ~found:(Printf.sprintf "at least %d" (!total + d));
    degrees.(u) <- d;
    total := !total + d
  done;
  if !total <> n_edges then
    B.corrupt ~offset:r.B.pos
      ~expected:(Printf.sprintf "degrees summing to n_edges = %d" n_edges)
      ~found:(string_of_int !total);
  let n_dict = Array.length dict in
  let string_at off i =
    if i < n_dict then dict.(i)
    else
      B.corrupt ~offset:off
        ~expected:(Printf.sprintf "a dictionary index below %d" n_dict)
        ~found:(string_of_int i)
  in
  let b = Graph.Builder.create () in
  for _ = 1 to n do
    ignore (Graph.Builder.add_node b)
  done;
  Graph.Builder.set_root b root;
  for u = 0 to n - 1 do
    for _ = 1 to degrees.(u) do
      let tag_off = r.B.pos in
      let label =
        match B.byte r with
        | 0 -> Graph.Eps
        | 1 -> Graph.Lab (Label.Int (B.get_int r))
        | 2 -> Graph.Lab (Label.Float (B.get_float r))
        | 3 ->
          let off = r.B.pos in
          Graph.Lab (Label.Str (string_at off (B.get_varint r)))
        | 4 -> Graph.Lab (Label.Bool (B.byte r <> 0))
        | 5 ->
          let off = r.B.pos in
          Graph.Lab (Label.Sym (string_at off (B.get_varint r)))
        | t -> B.corrupt ~offset:tag_off ~expected:"a label tag in 0..5" ~found:(string_of_int t)
      in
      let v = B.get_varint r in
      if v >= n then
        B.corrupt ~offset:tag_off
          ~expected:(Printf.sprintf "an edge target below n_nodes = %d" n)
          ~found:(string_of_int v);
      match label with
      | Graph.Eps -> Graph.Builder.add_eps b u v
      | Graph.Lab l -> Graph.Builder.add_edge b u l v
    done
  done;
  B.expect_end r;
  Graph.Builder.finish b
