(* The virtual file system under the persistent store: positional reads
   and writes, fsync barriers, truncation.  Two implementations:

   - {!real}: a directory of ordinary files via [Unix] — what [ssdql
     --store] runs on.
   - {!mem}: an in-memory disk driven by a {!Ssd_fault.Disk} plan.  It
     distinguishes the durable image (covered by an fsync barrier) from
     volatile writes still in the cache; at a planned crash point it
     raises {!Crash}, and {!crash_images} resolves which volatile writes
     survived (seeded prefix, or independent coins under [reorder]),
     optionally tearing the write the crash landed on.  This is what the
     crash-recovery fuzzer replays thousands of seeded schedules on.

   Both honor the short-transfer contract: [pread]/[pwrite] may move
   fewer bytes than asked, so all callers go through {!really_pread} /
   {!really_pwrite}. *)

module Disk = Ssd_fault.Disk

(* The simulated process death at a planned crash point. *)
exception Crash

type file = {
  pread : bytes -> pos:int -> off:int -> len:int -> int;
  pwrite : bytes -> pos:int -> off:int -> len:int -> int;
  fsync : unit -> unit;
  size : unit -> int;
  truncate : int -> unit;
  close : unit -> unit;
}

type t = {
  open_file : string -> file;
  exists : string -> bool;
}

(* ------------------------------------------------------------------ *)
(* Looping helpers (the only read/write paths the store uses)           *)
(* ------------------------------------------------------------------ *)

let really_pread f buf ~off =
  let len = Bytes.length buf in
  let pos = ref 0 in
  while !pos < len do
    let n = f.pread buf ~pos:!pos ~off:(off + !pos) ~len:(len - !pos) in
    if n <= 0 then
      Ssd_storage.Bytesio.corrupt ~offset:(off + !pos)
        ~expected:(Printf.sprintf "%d more bytes" (len - !pos))
        ~found:"end of file";
    pos := !pos + n
  done

let really_pwrite f data ~off =
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = f.pwrite data ~pos:!pos ~off:(off + !pos) ~len:(len - !pos) in
    if n <= 0 then failwith "Vfs.really_pwrite: no progress";
    pos := !pos + n
  done

let read_all f =
  let n = f.size () in
  let buf = Bytes.create n in
  if n > 0 then really_pread f buf ~off:0;
  buf

(* ------------------------------------------------------------------ *)
(* Real directory-backed VFS                                           *)
(* ------------------------------------------------------------------ *)

let real dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let open_file name =
    let fd = Unix.openfile (Filename.concat dir name) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    {
      pread =
        (fun buf ~pos ~off ~len ->
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          Unix.read fd buf pos len);
      pwrite =
        (fun data ~pos ~off ~len ->
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          Unix.write fd data pos len);
      fsync = (fun () -> Unix.fsync fd);
      size = (fun () -> (Unix.fstat fd).Unix.st_size);
      truncate = (fun n -> Unix.ftruncate fd n);
      close = (fun () -> Unix.close fd);
    }
  in
  { open_file; exists = (fun name -> Sys.file_exists (Filename.concat dir name)) }

(* ------------------------------------------------------------------ *)
(* In-memory faulty VFS                                                *)
(* ------------------------------------------------------------------ *)

type mfile = {
  mutable cur : bytes; (* logical content: durable + volatile applied *)
  mutable durable : bytes; (* content covered by the last fsync *)
}

(* A volatile operation: applied to [cur], not yet to [durable]. *)
type pend =
  | Pwrite of mfile * int * bytes
  | Ptrunc of mfile * int

type mem = {
  inj : Disk.injector;
  files : (string, mfile) Hashtbl.t;
  mutable pending : pend list; (* newest first *)
}

let grow_to b n =
  if Bytes.length b >= n then b
  else begin
    let b' = Bytes.make n '\000' in
    Bytes.blit b 0 b' 0 (Bytes.length b);
    b'
  end

let apply_pend img = function
  | Pwrite (_, off, data) ->
    let img = grow_to img (off + Bytes.length data) in
    Bytes.blit data 0 img off (Bytes.length data);
    img
  | Ptrunc (_, n) -> if n < Bytes.length img then Bytes.sub img 0 n else grow_to img n

let mem_create ?(images = []) plan =
  let files = Hashtbl.create 4 in
  List.iter (fun (name, img) ->
      Hashtbl.replace files name { cur = Bytes.copy img; durable = Bytes.copy img })
    images;
  let m = { inj = Disk.injector plan; files; pending = [] } in
  let get name =
    match Hashtbl.find_opt m.files name with
    | Some f -> f
    | None ->
      let f = { cur = Bytes.empty; durable = Bytes.empty } in
      Hashtbl.replace m.files name f;
      f
  in
  let open_file name =
    let mf = get name in
    {
      pread =
        (fun buf ~pos ~off ~len ->
          let avail = Bytes.length mf.cur - off in
          if avail <= 0 then 0
          else begin
            let n = Disk.transfer_len m.inj (min len avail) in
            Bytes.blit mf.cur off buf pos n;
            (match Disk.bitflip_at m.inj n with
            | None -> ()
            | Some bit ->
              let i = pos + (bit / 8) in
              Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl (bit mod 8)))));
            n
          end);
      pwrite =
        (fun data ~pos ~off ~len ->
          if Disk.tick_op m.inj then begin
            (* Crash lands on this write: a seeded prefix may reach the
               medium (torn write), volatile like any other. *)
            let keep = Disk.torn_len m.inj len in
            if keep > 0 then
              m.pending <- Pwrite (mf, off, Bytes.sub data pos keep) :: m.pending;
            raise Crash
          end;
          let n = Disk.transfer_len m.inj len in
          let chunk = Bytes.sub data pos n in
          let op = Pwrite (mf, off, chunk) in
          m.pending <- op :: m.pending;
          mf.cur <- apply_pend mf.cur op;
          n);
      fsync =
        (fun () ->
          if Disk.tick_op m.inj then raise Crash;
          (* Barrier: everything this file buffered becomes durable. *)
          mf.durable <- Bytes.copy mf.cur;
          m.pending <-
            List.filter
              (function Pwrite (f, _, _) | Ptrunc (f, _) -> f != mf)
              m.pending);
      size = (fun () -> Bytes.length mf.cur);
      truncate =
        (fun n ->
          if Disk.tick_op m.inj then raise Crash;
          let op = Ptrunc (mf, n) in
          m.pending <- op :: m.pending;
          mf.cur <- apply_pend mf.cur op);
      close = (fun () -> ());
    }
  in
  (m, { open_file; exists = (fun name -> Hashtbl.mem m.files name) })

(* Post-crash images: per file, the durable content plus the volatile
   operations the seeded survival mask kept, applied in arrival order. *)
let crash_images m =
  let pending = Array.of_list (List.rev m.pending) in
  let n = Array.length pending in
  let mask = Disk.keep_mask m.inj ~n in
  let survivors = Hashtbl.create 4 in
  Hashtbl.iter (fun name f -> Hashtbl.replace survivors name (Bytes.copy f.durable)) m.files;
  for i = 0 to n - 1 do
    if mask.(i) then begin
      let mf = match pending.(i) with Pwrite (f, _, _) | Ptrunc (f, _) -> f in
      Hashtbl.iter
        (fun name f ->
          if f == mf then
            Hashtbl.replace survivors name (apply_pend (Hashtbl.find survivors name) pending.(i)))
        m.files
    end
  done;
  Hashtbl.fold (fun name img acc -> (name, img) :: acc) survivors []

let ops m = Disk.ops m.inj
