(* Page framing and the superblock.

   Data file layout:
   {v
     offset 0   raw 16-byte header: "SSDP" | version u8 | pad[3] | page_size u32 LE | pad[4]
     offset 16  page 0: the superblock (framed)
     ...        page i at offset 16 + i * page_size
   v}

   Every page is framed [crc32:4 | lsn:8 | len:2 | pad:2 | payload | zeros]:
   the CRC covers everything after itself, so a torn or bit-flipped page
   is detected on read ({!unframe} raises the typed
   [Ssd_storage.Bytesio.Corrupt]).  [lsn] is the WAL sequence number of
   the transaction that last wrote the page.

   The superblock payload carries the clean-shutdown flag, the next WAL
   LSN, the page count and the segment directory: for each segment its
   name, first page, byte length and content CRC. *)

module B = Ssd_storage.Bytesio

let header_size = 16
let frame_overhead = 16
let default_page_size = 4096
let min_page_size = 128
let magic = "SSDP"
let version = 1

let payload_capacity ~page_size = page_size - frame_overhead

(* ------------------------------------------------------------------ *)
(* Raw file header                                                     *)
(* ------------------------------------------------------------------ *)

let encode_header ~page_size =
  let b = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set_int32_le b 8 (Int32.of_int page_size);
  b

let decode_header b =
  if Bytes.length b < header_size then
    B.corrupt ~offset:0 ~expected:"a 16-byte store header"
      ~found:(Printf.sprintf "%d bytes" (Bytes.length b));
  if Bytes.sub_string b 0 4 <> magic then
    B.corrupt ~offset:0
      ~expected:(Printf.sprintf "magic %S" magic)
      ~found:(Printf.sprintf "%S" (Bytes.sub_string b 0 4));
  let v = Char.code (Bytes.get b 4) in
  if v <> version then
    B.corrupt ~offset:4
      ~expected:(Printf.sprintf "format version %d" version)
      ~found:(string_of_int v);
  let page_size = Int32.to_int (Bytes.get_int32_le b 8) in
  if page_size < min_page_size || page_size > 65536 then
    B.corrupt ~offset:8
      ~expected:(Printf.sprintf "a page size in [%d, 65536]" min_page_size)
      ~found:(string_of_int page_size);
  page_size

(* ------------------------------------------------------------------ *)
(* Page frames                                                         *)
(* ------------------------------------------------------------------ *)

let frame ~page_size ~lsn payload =
  let cap = payload_capacity ~page_size in
  let len = Bytes.length payload in
  if len > cap then
    invalid_arg
      (Printf.sprintf "Page.frame: %d-byte payload exceeds capacity %d" len cap);
  let page = Bytes.make page_size '\000' in
  Bytes.set_int64_le page 4 (Int64.of_int lsn);
  Bytes.set_uint16_le page 12 len;
  Bytes.blit payload 0 page frame_overhead len;
  let crc = B.crc32_update 0 page 4 (page_size - 4) in
  Bytes.set_int32_le page 0 (Int32.of_int crc);
  page

(* [unframe ~page_size ~page_no bytes] checks the CRC and returns
   (lsn, payload).  [page_no] only seasons the error message. *)
let unframe ~page_size ?(page_no = -1) page =
  let where = if page_no >= 0 then Printf.sprintf " of page %d" page_no else "" in
  if Bytes.length page <> page_size then
    B.corrupt ~offset:0
      ~expected:(Printf.sprintf "a %d-byte page%s" page_size where)
      ~found:(Printf.sprintf "%d bytes" (Bytes.length page));
  let stored = Int32.to_int (Bytes.get_int32_le page 0) land 0xFFFFFFFF in
  let computed = B.crc32_update 0 page 4 (page_size - 4) in
  if stored <> computed then
    B.corrupt ~offset:0
      ~expected:(Printf.sprintf "page CRC %08x%s" computed where)
      ~found:(Printf.sprintf "%08x" stored);
  let lsn = Int64.to_int (Bytes.get_int64_le page 4) in
  let len = Bytes.get_uint16_le page 12 in
  if len > payload_capacity ~page_size then
    B.corrupt ~offset:12
      ~expected:(Printf.sprintf "a payload length <= %d%s" (payload_capacity ~page_size) where)
      ~found:(string_of_int len);
  (lsn, Bytes.sub page frame_overhead len)

(* ------------------------------------------------------------------ *)
(* Superblock                                                          *)
(* ------------------------------------------------------------------ *)

type seg = {
  name : string;
  first_page : int;
  byte_len : int;
  crc : int;
}

type superblock = {
  clean : bool;
  next_lsn : int;
  n_pages : int; (* total pages including the superblock *)
  path_depth : int; (* depth the "path" segment was built with *)
  segs : seg list;
}

let sb_magic = "SSDS"

let encode_superblock sb =
  let buf = Buffer.create 128 in
  Buffer.add_string buf sb_magic;
  Buffer.add_char buf (if sb.clean then '\001' else '\000');
  B.put_varint buf sb.next_lsn;
  B.put_varint buf sb.n_pages;
  B.put_varint buf sb.path_depth;
  B.put_varint buf (List.length sb.segs);
  List.iter
    (fun s ->
      B.put_string buf s.name;
      B.put_varint buf s.first_page;
      B.put_varint buf s.byte_len;
      B.put_varint buf s.crc)
    sb.segs;
  Buffer.to_bytes buf

let decode_superblock data =
  let r = B.reader data in
  B.expect_magic r sb_magic;
  let clean = B.byte r <> 0 in
  let next_lsn = B.get_varint r in
  let n_pages = B.get_varint r in
  let path_depth = B.get_varint r in
  let n_segs = B.get_varint r in
  B.check_count r ~what:"a segment count" ~unit_bytes:4 n_segs;
  let segs = ref [] in
  for _ = 1 to n_segs do
    let name = B.get_string r in
    let first_page = B.get_varint r in
    let byte_len = B.get_varint r in
    let crc = B.get_varint r in
    segs := { name; first_page; byte_len; crc } :: !segs
  done;
  B.expect_end r;
  { clean; next_lsn; n_pages; path_depth; segs = List.rev !segs }

(* Pages a [len]-byte segment occupies. *)
let pages_for ~page_size len =
  let cap = payload_capacity ~page_size in
  if len = 0 then 1 else (len + cap - 1) / cap

let page_offset ~page_size p = header_size + (p * page_size)
