(* The crash-safe persistent graph store.

   On-disk state is two files under one directory (or one in-memory
   VFS): [data] — raw header, then framed pages; page 0 is the
   superblock, the rest hold segments (label dictionary, CSR graph,
   serialized indexes and DataGuide) — and [wal], the write-ahead log.

   Durability protocol:
   - [commit] never touches the data file.  It encodes the new version's
     segments, diffs the resulting page images against the current ones,
     appends the changed pages plus a commit record (carrying the new
     superblock) to the WAL, and fsyncs.  The commit is acknowledged
     only after that fsync returns; the new pages live in an in-memory
     overlay until a checkpoint.
   - [checkpoint] applies the overlay to the data file, fsyncs it, then
     truncates the WAL.  Every direct write to the data file is covered
     by a durable WAL record first — including the superblock's
     clean/dirty flag flips, which travel as page-less mini-commits — so
     a crash at any single point leaves either the WAL or the data file
     authoritative, never neither.
   - [open_] runs ARIES-style recovery: scan the WAL (analysis),
     discarding a torn tail and uncommitted frames, then redo the
     committed transactions in LSN order onto the data file and truncate
     the log.  A store closed cleanly (clean flag set, empty WAL) skips
     all of this. *)

module B = Ssd_storage.Bytesio
module Graph = Ssd.Graph
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace
module Events = Ssd_obs.Events
module Value_index = Ssd_index.Value_index
module Text_index = Ssd_index.Text_index
module Path_index = Ssd_index.Path_index
module Dataguide = Ssd_schema.Dataguide
module Delta = Ssd_incr.Delta
module Incr_state = Ssd_incr.State

let data_file = "data"
let wal_file = "wal"

let m_commits = Metrics.counter "store.commits"
let m_checkpoints = Metrics.counter "store.checkpoints"
let m_recoveries = Metrics.counter "store.recoveries"
let m_recovered_txns = Metrics.counter "store.recovered_txns"
let m_wal_bytes = Metrics.counter "store.wal_bytes"
let m_pages_logged = Metrics.counter "store.pages_logged"

(* Durability state as gauges, so the admin plane's /metrics and
   /healthz reflect the store's current condition — WAL backlog, dirty
   overlay pages, buffer-pool occupancy, what the last open recovered —
   not just process liveness. *)
let g_wal_backlog = Metrics.gauge "store.wal_backlog_bytes"
let g_pages = Metrics.gauge "store.pages"
let g_dirty = Metrics.gauge "store.dirty_pages"
let g_txns_since_ckpt = Metrics.gauge "store.txns_since_checkpoint"
let g_clean = Metrics.gauge "store.clean"
let g_pool_occupancy = Metrics.gauge "store.bufpool_pages"
let g_pool_capacity = Metrics.gauge "store.bufpool_capacity"
let g_last_recovery_txns = Metrics.gauge "store.last_recovery_txns"
let g_last_recovery_torn = Metrics.gauge "store.last_recovery_torn_bytes"

let all_indexes = [ "value"; "text"; "path"; "guide" ]

type recovery = {
  recovered_txns : int;
  torn_bytes : int;
  was_clean : bool; (* clean shutdown: recovery skipped entirely *)
}

type t = {
  data : Vfs.file;
  wal : Vfs.file;
  page_size : int;
  mutable sb : Page.superblock;
  (* Committed pages not yet checkpointed (framed images), also acting
     as the write-back cache the read path consults before the pool. *)
  images : (int, bytes) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  pool : Bufpool.t;
  mutable wal_size : int;
  mutable graph : Graph.t;
  mutable dict : string array;
  mutable seg_payloads : (string * bytes) list; (* current version's segments *)
  mutable vindex : Value_index.t option;
  mutable tindex : Text_index.t option;
  mutable pindex : Path_index.t option;
  mutable guide : Dataguide.t option;
  (* Live incremental maintainer for the index segments (lib/incr);
     seeded lazily on the first commit from whatever is cached or
     checkpointed, then advanced by the delta of each commit. *)
  mutable incr : Incr_state.t option;
  path_depth : int;
  checkpoint_every : int;
  mutable txns_since_ckpt : int;
  mutable closed : bool;
  recovery : recovery;
}

let fail ?code fmt = Ssd_diag.error ~code:(Option.value ~default:"SSD560" code) fmt

(* ------------------------------------------------------------------ *)
(* Page access                                                         *)
(* ------------------------------------------------------------------ *)

let read_page_from_disk ~page_size data p =
  let buf = Bytes.create page_size in
  Vfs.really_pread data buf ~off:(Page.page_offset ~page_size p);
  buf

(* Current committed image of page [p]: overlay first, then the pool. *)
let page_image st p =
  match Hashtbl.find_opt st.images p with
  | Some img -> img
  | None -> Bufpool.get st.pool p

(* Refresh the durability gauges from the store's state; called after
   every state transition (commit, checkpoint, open, close). *)
let update_gauges st =
  Metrics.set g_wal_backlog (float_of_int (st.wal_size - Wal.header_size));
  Metrics.set g_pages (float_of_int st.sb.Page.n_pages);
  Metrics.set g_dirty (float_of_int (Hashtbl.length st.dirty));
  Metrics.set g_txns_since_ckpt (float_of_int st.txns_since_ckpt);
  Metrics.set g_clean (if st.sb.Page.clean then 1. else 0.);
  Metrics.set g_pool_occupancy (float_of_int (Bufpool.occupancy st.pool));
  Metrics.set g_pool_capacity (float_of_int (Bufpool.capacity st.pool))

(* ------------------------------------------------------------------ *)
(* Segment layout and access                                           *)
(* ------------------------------------------------------------------ *)

(* Fixed order: dict, graph, then the rest sorted — layout is a pure
   function of the segment contents. *)
let order_segs segs =
  let fixed = [ "dict"; "graph" ] in
  let rest =
    List.sort compare (List.filter (fun (n, _) -> not (List.mem n fixed)) segs)
  in
  List.map (fun n -> (n, List.assoc n segs)) fixed @ rest

(* Directory + page count for ordered segment payloads. *)
let layout ~page_size segs =
  let next = ref 1 in
  let dir =
    List.map
      (fun (name, payload) ->
        let len = Bytes.length payload in
        let first = !next in
        next := !next + Page.pages_for ~page_size len;
        { Page.name; first_page = first; byte_len = len; crc = B.crc32 payload })
      segs
  in
  (dir, !next)

(* Framed page images for one segment's payload. *)
let seg_pages ~page_size ~lsn ~first payload =
  let cap = Page.payload_capacity ~page_size in
  let len = Bytes.length payload in
  let k = Page.pages_for ~page_size len in
  List.init k (fun i ->
      let off = i * cap in
      let n = min cap (len - off) in
      (first + i, Page.frame ~page_size ~lsn (Bytes.sub payload off (max 0 n))))

let find_seg st name = List.find_opt (fun s -> s.Page.name = name) st.sb.Page.segs

(* Read a segment's payload through the page layers, verifying length
   and content CRC against the directory. *)
let segment_bytes st (s : Page.seg) =
  let cap = Page.payload_capacity ~page_size:st.page_size in
  let k = Page.pages_for ~page_size:st.page_size s.byte_len in
  let buf = Buffer.create s.byte_len in
  for i = 0 to k - 1 do
    let p = s.first_page + i in
    let _, payload = Page.unframe ~page_size:st.page_size ~page_no:p (page_image st p) in
    let expect = min cap (s.byte_len - (i * cap)) in
    if Bytes.length payload <> max 0 expect then
      B.corrupt ~offset:0
        ~expected:
          (Printf.sprintf "%d payload bytes in page %d of segment %S" expect p s.name)
        ~found:(string_of_int (Bytes.length payload));
    Buffer.add_bytes buf payload
  done;
  let payload = Buffer.to_bytes buf in
  let crc = B.crc32 payload in
  if crc <> s.crc then
    B.corrupt ~offset:0
      ~expected:(Printf.sprintf "segment %S content CRC %08x" s.name s.crc)
      ~found:(Printf.sprintf "%08x" crc);
  payload

(* ------------------------------------------------------------------ *)
(* WAL writing                                                         *)
(* ------------------------------------------------------------------ *)

(* Append one transaction — changed pages plus the new superblock — and
   fsync.  The caller's state is updated only after the fsync returns,
   so an acknowledged commit is durable by construction. *)
let append_txn st ~pages sb' =
  let lsn = st.sb.Page.next_lsn in
  let sb' = { sb' with Page.next_lsn = lsn + 1 } in
  let sb_page = Page.frame ~page_size:st.page_size ~lsn (Page.encode_superblock sb') in
  let frames =
    List.map (fun (p, img) -> Wal.encode_frame ~typ:Wal.t_page ~lsn ~arg:p img) pages
    @ [ Wal.encode_frame ~typ:Wal.t_commit ~lsn ~arg:(List.length pages) sb_page ]
  in
  List.iter
    (fun fr ->
      Vfs.really_pwrite st.wal fr ~off:st.wal_size;
      st.wal_size <- st.wal_size + Bytes.length fr;
      Metrics.add m_wal_bytes (Bytes.length fr))
    frames;
  st.wal.Vfs.fsync ();
  (* Durable: fold the transaction into the overlay. *)
  List.iter
    (fun (p, img) ->
      Hashtbl.replace st.images p img;
      Hashtbl.replace st.dirty p ();
      Bufpool.invalidate st.pool p)
    ((0, sb_page) :: pages);
  Metrics.add m_pages_logged (List.length pages);
  st.sb <- sb';
  update_gauges st

(* ------------------------------------------------------------------ *)
(* Index (re)construction                                              *)
(* ------------------------------------------------------------------ *)

let load_seg st name of_bytes =
  match find_seg st name with
  | None -> None
  | Some s -> Some (of_bytes (segment_bytes st s))

(* Lazy index getters: serve from the in-memory cache, else deserialize
   the checkpointed segment (no rebuild), else build from the graph. *)
let value_index st =
  match st.vindex with
  | Some ix -> ix
  | None ->
    let ix =
      match load_seg st "value" Value_index.of_bytes with
      | Some ix -> ix
      | None -> Value_index.build st.graph
    in
    st.vindex <- Some ix;
    ix

let text_index st =
  match st.tindex with
  | Some ix -> ix
  | None ->
    let ix =
      match load_seg st "text" Text_index.of_bytes with
      | Some ix -> ix
      | None -> Text_index.build st.graph
    in
    st.tindex <- Some ix;
    ix

let path_index st =
  match st.pindex with
  | Some ix -> ix
  | None ->
    let ix =
      match load_seg st "path" Path_index.of_bytes with
      | Some ix -> ix
      | None -> Path_index.build ~depth:st.path_depth st.graph
    in
    st.pindex <- Some ix;
    ix

let dataguide st =
  match st.guide with
  | Some dg -> dg
  | None ->
    let dg =
      match load_seg st "guide" Dataguide.of_bytes with
      | Some dg -> dg
      | None -> Dataguide.build st.graph
    in
    st.guide <- Some dg;
    dg

(* Advance (or lazily seed) the incremental maintainer so the index
   segments for [g] come from delta maintenance instead of full
   rebuilds.  Seeding adopts the cached or checkpointed structures of
   the current version — no rebuild there either.  Monotone deltas
   (Lorel inserts) take the insert-only fast paths; anything else makes
   the maintainer rebuild internally, which it accounts on its own
   [incr.*] instruments. *)
let maintain_indexes st ~index_names g =
  if index_names <> [] then begin
    let state =
      match st.incr with
      | Some state -> state
      | None ->
        let have n = List.mem n index_names in
        let state =
          Incr_state.create ~path_depth:st.path_depth ~names:index_names
            ?vindex:(if have "value" then Some (value_index st) else None)
            ?tindex:(if have "text" then Some (text_index st) else None)
            ?pindex:(if have "path" then Some (path_index st) else None)
            ?guide:(if have "guide" then Some (dataguide st) else None)
            st.graph
        in
        st.incr <- Some state;
        state
    in
    let (_ : Incr_state.outcome) =
      Incr_state.advance state g (Delta.diff (Incr_state.graph state) g)
    in
    (* Refresh the caches from the maintainer (the text index is
       replaced on apply, not mutated in place; the guide materializes
       here). *)
    (match Incr_state.value_index state with
    | Some ix -> st.vindex <- Some ix
    | None -> ());
    (match Incr_state.text_index state with
    | Some ix -> st.tindex <- Some ix
    | None -> ());
    (match Incr_state.path_index state with
    | Some ix -> st.pindex <- Some ix
    | None -> ());
    match Incr_state.dataguide state with
    | Some dg -> st.guide <- Some dg
    | None -> ()
  end

let build_index_payload st name g =
  (* When the maintainer has just advanced to [g], the caches hold its
     structures; otherwise (store creation, maintained set mismatch)
     build from scratch. *)
  let maintained =
    match st.incr with
    | Some state -> Incr_state.graph state == g
    | None -> false
  in
  match name with
  | "value" ->
    let ix =
      match st.vindex with
      | Some ix when maintained -> ix
      | _ -> Value_index.build g
    in
    st.vindex <- Some ix;
    Value_index.to_bytes ix
  | "text" ->
    let ix =
      match st.tindex with
      | Some ix when maintained -> ix
      | _ -> Text_index.build g
    in
    st.tindex <- Some ix;
    Text_index.to_bytes ix
  | "path" ->
    let ix =
      match st.pindex with
      | Some ix when maintained -> ix
      | _ -> Path_index.build ~depth:st.path_depth g
    in
    st.pindex <- Some ix;
    Path_index.to_bytes ix
  | "guide" ->
    let dg =
      match st.guide with
      | Some dg when maintained -> dg
      | _ -> Dataguide.build g
    in
    st.guide <- Some dg;
    Dataguide.to_bytes dg
  | other -> fail "store: unknown index segment %S" other

(* Segment payloads for a graph version: dict, CSR graph, and the
   maintained index segments. *)
let encode_version st ~index_names g =
  let dict = Seg.dict_of_graph g in
  let segs =
    [ ("dict", Seg.encode_dict dict); ("graph", Seg.encode_graph ~dict g) ]
    @ List.map (fun n -> (n, build_index_payload st n g)) index_names
  in
  (dict, order_segs segs)

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

(* CRC32 chain over the canonical dict + graph segment payloads: equal
   fingerprints mean byte-identical durable content. *)
let fingerprint_of_payloads dict_b graph_b =
  let c = B.crc32 dict_b in
  B.crc32_update c graph_b 0 (Bytes.length graph_b)

let fingerprint_graph g =
  let dict = Seg.dict_of_graph g in
  fingerprint_of_payloads (Seg.encode_dict dict) (Seg.encode_graph ~dict g)

let fingerprint st =
  fingerprint_of_payloads
    (List.assoc "dict" st.seg_payloads)
    (List.assoc "graph" st.seg_payloads)

(* ------------------------------------------------------------------ *)
(* Open / recovery                                                     *)
(* ------------------------------------------------------------------ *)

let redo_txns ~page_size data wal (scan : Wal.scan_result) =
  List.iter
    (fun (txn : Wal.txn) ->
      List.iter
        (fun (p, img) -> Vfs.really_pwrite data img ~off:(Page.page_offset ~page_size p))
        txn.Wal.pages)
    scan.Wal.txns;
  (match List.rev scan.Wal.txns with
  | last :: _ ->
    Vfs.really_pwrite data last.Wal.sb_page ~off:(Page.page_offset ~page_size 0);
    let _, sb_payload = Page.unframe ~page_size last.Wal.sb_page in
    let sb = Page.decode_superblock sb_payload in
    data.Vfs.truncate (Page.page_offset ~page_size sb.Page.n_pages)
  | [] -> ());
  data.Vfs.fsync ();
  wal.Vfs.truncate Wal.header_size;
  wal.Vfs.fsync ()

let open_ ?(pool_pages = 64) ?(checkpoint_every = max_int) (vfs : Vfs.t) =
  if not (vfs.Vfs.exists data_file) then
    fail "store: no data file (not a store, or not initialized)";
  let data = vfs.Vfs.open_file data_file in
  let wal = vfs.Vfs.open_file wal_file in
  let hdr = Bytes.create Page.header_size in
  Vfs.really_pread data hdr ~off:0;
  let page_size = Page.decode_header hdr in
  (* Analysis: scan the log, discarding the torn tail. *)
  let wal_bytes = Vfs.read_all wal in
  if Bytes.length wal_bytes = 0 then begin
    Vfs.really_pwrite wal (Wal.encode_header ()) ~off:0;
    wal.Vfs.fsync ()
  end;
  let wal_bytes = if Bytes.length wal_bytes = 0 then Vfs.read_all wal else wal_bytes in
  let scan = Wal.scan wal_bytes in
  let n_txns = List.length scan.Wal.txns in
  let had_tail = scan.Wal.torn_bytes > 0 || scan.Wal.in_flight > 0 in
  (* Redo: replay committed transactions, then clear the log. *)
  if n_txns > 0 then begin
    Metrics.incr m_recoveries;
    Metrics.add m_recovered_txns n_txns;
    redo_txns ~page_size data wal scan
  end
  else if had_tail || scan.Wal.scanned_bytes > 0 then begin
    (* Nothing committed, but stale/torn frames remain: clear them. *)
    wal.Vfs.truncate Wal.header_size;
    wal.Vfs.fsync ()
  end;
  let sb_img = read_page_from_disk ~page_size data 0 in
  let _, sb_payload = Page.unframe ~page_size ~page_no:0 sb_img in
  let sb = Page.decode_superblock sb_payload in
  let was_clean = sb.Page.clean && n_txns = 0 && not had_tail && scan.Wal.scanned_bytes = 0 in
  let recovery = { recovered_txns = n_txns; torn_bytes = scan.Wal.torn_bytes; was_clean } in
  let pool =
    Bufpool.create ~capacity:pool_pages ~read_page:(read_page_from_disk ~page_size data)
  in
  let st =
    {
      data;
      wal;
      page_size;
      sb;
      images = Hashtbl.create 64;
      dirty = Hashtbl.create 64;
      pool;
      wal_size = Wal.header_size;
      graph = Graph.empty;
      dict = [||];
      seg_payloads = [];
      vindex = None;
      tindex = None;
      pindex = None;
      guide = None;
      incr = None;
      path_depth = sb.Page.path_depth;
      checkpoint_every;
      txns_since_ckpt = 0;
      closed = false;
      recovery;
    }
  in
  (* Load the current version (dict + graph) through the page layers. *)
  let dict_seg =
    match find_seg st "dict" with
    | Some s -> s
    | None -> fail "store: superblock has no dict segment"
  in
  let graph_seg =
    match find_seg st "graph" with
    | Some s -> s
    | None -> fail "store: superblock has no graph segment"
  in
  let dict_b = segment_bytes st dict_seg in
  let graph_b = segment_bytes st graph_seg in
  let dict = Seg.decode_dict dict_b in
  let g = Seg.decode_graph ~dict graph_b in
  st.dict <- dict;
  st.graph <- g;
  st.seg_payloads <- [ ("dict", dict_b); ("graph", graph_b) ];
  (* Mark open-for-write: the clean-flag flip travels through the WAL
     like any other superblock change, so a torn write cannot destroy
     page 0 — the log stays authoritative until the next checkpoint. *)
  if sb.Page.clean then append_txn st ~pages:[] { sb with Page.clean = false };
  Metrics.set g_last_recovery_txns (float_of_int recovery.recovered_txns);
  Metrics.set g_last_recovery_torn (float_of_int recovery.torn_bytes);
  update_gauges st;
  if not was_clean then
    Events.emit Events.default "wal.recovery"
      [
        ("recovered_txns", Ssd.Json.Int recovery.recovered_txns);
        ("torn_bytes", Ssd.Json.Int recovery.torn_bytes);
      ];
  st

(* ------------------------------------------------------------------ *)
(* Create                                                              *)
(* ------------------------------------------------------------------ *)

let create ?(page_size = Page.default_page_size) ?(indexes = all_indexes)
    ?(path_depth = 3) ?pool_pages ?checkpoint_every (vfs : Vfs.t) g =
  if page_size < Page.min_page_size || page_size > 65536 then
    fail "store: page size %d out of range [%d, 65536]" page_size Page.min_page_size;
  List.iter
    (fun n -> if not (List.mem n all_indexes) then fail "store: unknown index %S" n)
    indexes;
  let data = vfs.Vfs.open_file data_file in
  let wal = vfs.Vfs.open_file wal_file in
  (* Throwaway shell so the segment encoders can cache into it. *)
  let dict = Seg.dict_of_graph g in
  let scratch_index name =
    match name with
    | "value" -> Value_index.to_bytes (Value_index.build g)
    | "text" -> Text_index.to_bytes (Text_index.build g)
    | "path" -> Path_index.to_bytes (Path_index.build ~depth:path_depth g)
    | "guide" -> Dataguide.to_bytes (Dataguide.build g)
    | other -> fail "store: unknown index segment %S" other
  in
  let segs =
    order_segs
      ([ ("dict", Seg.encode_dict dict); ("graph", Seg.encode_graph ~dict g) ]
      @ List.map (fun n -> (n, scratch_index n)) indexes)
  in
  let dir, n_pages = layout ~page_size segs in
  let sb = { Page.clean = true; next_lsn = 1; n_pages; path_depth; segs = dir } in
  data.Vfs.truncate 0;
  Vfs.really_pwrite data (Page.encode_header ~page_size) ~off:0;
  Vfs.really_pwrite data
    (Page.frame ~page_size ~lsn:0 (Page.encode_superblock sb))
    ~off:(Page.page_offset ~page_size 0);
  List.iter2
    (fun (_, payload) (s : Page.seg) ->
      List.iter
        (fun (p, img) -> Vfs.really_pwrite data img ~off:(Page.page_offset ~page_size p))
        (seg_pages ~page_size ~lsn:0 ~first:s.first_page payload))
    segs dir;
  data.Vfs.fsync ();
  wal.Vfs.truncate 0;
  Vfs.really_pwrite wal (Wal.encode_header ()) ~off:0;
  wal.Vfs.fsync ();
  data.Vfs.close ();
  wal.Vfs.close ();
  open_ ?pool_pages ?checkpoint_every vfs

(* ------------------------------------------------------------------ *)
(* Commit / checkpoint / close                                         *)
(* ------------------------------------------------------------------ *)

let check_open st = if st.closed then fail "store: already closed"

let index_names st =
  List.filter_map
    (fun (s : Page.seg) -> if List.mem s.Page.name all_indexes then Some s.Page.name else None)
    st.sb.Page.segs

let checkpoint st =
  check_open st;
  if Hashtbl.length st.dirty > 0 || st.wal_size > Wal.header_size then begin
    Metrics.incr m_checkpoints;
    Trace.with_span "store.checkpoint" @@ fun () ->
    let n_flushed = Hashtbl.length st.dirty in
    let wal_dropped = st.wal_size - Wal.header_size in
    let pages = Hashtbl.fold (fun p () acc -> p :: acc) st.dirty [] in
    List.iter
      (fun p ->
        Vfs.really_pwrite st.data (Hashtbl.find st.images p)
          ~off:(Page.page_offset ~page_size:st.page_size p))
      (List.sort compare pages);
    st.data.Vfs.truncate (Page.page_offset ~page_size:st.page_size st.sb.Page.n_pages);
    st.data.Vfs.fsync ();
    st.wal.Vfs.truncate Wal.header_size;
    st.wal.Vfs.fsync ();
    st.wal_size <- Wal.header_size;
    Hashtbl.reset st.dirty;
    (* Overlay pages now live on disk; drop them so reads exercise the
       pool again. *)
    Hashtbl.reset st.images;
    st.txns_since_ckpt <- 0;
    update_gauges st;
    Events.emit Events.default "wal.checkpoint"
      [
        ("pages_flushed", Ssd.Json.Int n_flushed);
        ("wal_bytes_dropped", Ssd.Json.Int wal_dropped);
      ]
  end

let commit st g =
  check_open st;
  Metrics.incr m_commits;
  Trace.with_span "store.commit" @@ fun () ->
  let index_names = index_names st in
  maintain_indexes st ~index_names g;
  let dict, segs = encode_version st ~index_names g in
  let dir, n_pages = layout ~page_size:st.page_size segs in
  let lsn = st.sb.Page.next_lsn in
  (* Diff at page granularity: a page is logged if its payload differs
     from the current committed image (or lies past the old end). *)
  let changed = ref [] in
  List.iter2
    (fun (_, payload) (s : Page.seg) ->
      List.iter
        (fun (p, img) ->
          let same =
            p < st.sb.Page.n_pages
            && (try
                  let _, old = Page.unframe ~page_size:st.page_size (page_image st p) in
                  let _, neu = Page.unframe ~page_size:st.page_size img in
                  Bytes.equal old neu
                with B.Corrupt _ -> false)
          in
          if not same then changed := (p, img) :: !changed)
        (seg_pages ~page_size:st.page_size ~lsn ~first:s.Page.first_page payload))
    segs dir;
  let pages = List.sort (fun (a, _) (b, _) -> compare a b) !changed in
  append_txn st ~pages { st.sb with Page.n_pages; segs = dir };
  (* Drop overlay/cache entries past the new end. *)
  Hashtbl.iter
    (fun p _ -> if p >= n_pages then Hashtbl.remove st.dirty p)
    (Hashtbl.copy st.dirty);
  Hashtbl.iter
    (fun p _ -> if p >= n_pages then Hashtbl.remove st.images p)
    (Hashtbl.copy st.images);
  st.graph <- g;
  st.dict <- dict;
  st.seg_payloads <- segs;
  st.txns_since_ckpt <- st.txns_since_ckpt + 1;
  update_gauges st;
  Events.emit Events.default "wal.commit"
    [
      ("lsn", Ssd.Json.Int lsn);
      ("pages_logged", Ssd.Json.Int (List.length pages));
      ("wal_backlog_bytes", Ssd.Json.Int (st.wal_size - Wal.header_size));
    ];
  if st.txns_since_ckpt >= st.checkpoint_every then checkpoint st

let close st =
  if not st.closed then begin
    (* The clean flag flips durably in the WAL before the data file is
       touched; see the protocol note at the top. *)
    append_txn st ~pages:[] { st.sb with Page.clean = true };
    checkpoint st;
    st.closed <- true;
    st.data.Vfs.close ();
    st.wal.Vfs.close ();
    update_gauges st
  end

let compact st =
  (* Layout is re-derived tightly at every commit, so compaction is
     applying the log and trimming the data file to the live pages. *)
  checkpoint st

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let graph st = st.graph
let recovery st = st.recovery
let page_size st = st.page_size
let path_depth st = st.path_depth
let n_pages st = st.sb.Page.n_pages
let wal_size st = st.wal_size - Wal.header_size
let indexes st = index_names st

(* Canonical bytes of an index segment, for byte-identity checks. *)
let index_segment_bytes st name =
  match name with
  | "value" -> Value_index.to_bytes (value_index st)
  | "text" -> Text_index.to_bytes (text_index st)
  | "path" -> Path_index.to_bytes (path_index st)
  | "guide" -> Dataguide.to_bytes (dataguide st)
  | other -> fail "store: unknown index segment %S" other

type stat = {
  stat_page_size : int;
  stat_n_pages : int;
  stat_wal_bytes : int;
  stat_clean : bool;
  stat_segs : (string * int) list;
  stat_nodes : int;
  stat_edges : int;
}

let stat st =
  {
    stat_page_size = st.page_size;
    stat_n_pages = st.sb.Page.n_pages;
    stat_wal_bytes = st.wal.Vfs.size () - Wal.header_size;
    stat_clean = st.sb.Page.clean;
    stat_segs = List.map (fun (s : Page.seg) -> (s.Page.name, s.Page.byte_len)) st.sb.Page.segs;
    stat_nodes = Graph.n_nodes st.graph;
    stat_edges = Graph.n_edges st.graph;
  }

(* ------------------------------------------------------------------ *)
(* Offline checker (fsck)                                              *)
(* ------------------------------------------------------------------ *)

let diag sev code fmt = Printf.ksprintf (fun msg -> Ssd_diag.make sev ~code msg) fmt

(* Offline structural check; read-only.  Codes:
   SSD560 bad magic/version, SSD561 CRC mismatch, SSD562 torn WAL tail,
   SSD563 dangling page reference, SSD564 malformed segment,
   SSD565 recovery pending (note). *)
let fsck (vfs : Vfs.t) =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  if not (vfs.Vfs.exists data_file) then begin
    push (diag Ssd_diag.Error "SSD560" "fsck: no data file");
    List.rev !diags
  end
  else begin
    let data = vfs.Vfs.open_file data_file in
    let size = data.Vfs.size () in
    let page_size =
      if size < Page.header_size then begin
        push
          (diag Ssd_diag.Error "SSD560" "fsck: data file too short for a header (%d bytes)"
             size);
        None
      end
      else begin
        let hdr = Bytes.create Page.header_size in
        Vfs.really_pread data hdr ~off:0;
        try Some (Page.decode_header hdr)
        with B.Corrupt { offset; expected; found } ->
          push
            (diag Ssd_diag.Error "SSD560" "fsck: bad store header at byte %d: expected %s, found %s"
               offset expected found);
          None
      end
    in
    (match page_size with
    | None -> ()
    | Some page_size -> (
      let read_page p =
        let buf = Bytes.create page_size in
        Vfs.really_pread data buf ~off:(Page.page_offset ~page_size p);
        buf
      in
      match
        (try
           let _, payload = Page.unframe ~page_size ~page_no:0 (read_page 0) in
           Some (Page.decode_superblock payload)
         with B.Corrupt { offset; expected; found } ->
           push
             (diag Ssd_diag.Error "SSD561"
                "fsck: superblock unreadable (byte %d: expected %s, found %s)" offset
                expected found);
           None)
      with
      | None -> ()
      | Some sb ->
        let file_pages = (size - Page.header_size) / page_size in
        if file_pages < sb.Page.n_pages then
          push
            (diag Ssd_diag.Error "SSD563"
               "fsck: superblock declares %d pages but the file holds %d" sb.Page.n_pages
               file_pages);
        (* Per-page CRC sweep over the declared extent. *)
        for p = 1 to min sb.Page.n_pages file_pages - 1 do
          try ignore (Page.unframe ~page_size ~page_no:p (read_page p))
          with B.Corrupt { offset; expected; found } ->
            push
              (diag Ssd_diag.Error "SSD561" "fsck: page %d corrupt (byte %d: expected %s, found %s)"
                 p offset expected found)
        done;
        (* Directory: bounds, then segment content CRC and decode. *)
        let dict = ref [||] in
        List.iter
          (fun (s : Page.seg) ->
            let k = Page.pages_for ~page_size s.Page.byte_len in
            if s.Page.first_page < 1 || s.Page.first_page + k > sb.Page.n_pages then
              push
                (diag Ssd_diag.Error "SSD563"
                   "fsck: segment %S spans pages %d..%d, outside 1..%d" s.Page.name
                   s.Page.first_page
                   (s.Page.first_page + k - 1)
                   (sb.Page.n_pages - 1))
            else begin
              try
                let cap = Page.payload_capacity ~page_size in
                let buf = Buffer.create s.Page.byte_len in
                for i = 0 to k - 1 do
                  let _, payload =
                    Page.unframe ~page_size ~page_no:(s.Page.first_page + i)
                      (read_page (s.Page.first_page + i))
                  in
                  ignore cap;
                  Buffer.add_bytes buf payload
                done;
                let payload = Buffer.to_bytes buf in
                if Bytes.length payload <> s.Page.byte_len then
                  push
                    (diag Ssd_diag.Error "SSD564"
                       "fsck: segment %S holds %d bytes, directory says %d" s.Page.name
                       (Bytes.length payload) s.Page.byte_len)
                else if B.crc32 payload <> s.Page.crc then
                  push
                    (diag Ssd_diag.Error "SSD561"
                       "fsck: segment %S content CRC mismatch (expected %08x, found %08x)"
                       s.Page.name s.Page.crc (B.crc32 payload))
                else begin
                  try
                    match s.Page.name with
                    | "dict" -> dict := Seg.decode_dict payload
                    | "graph" -> ignore (Seg.decode_graph ~dict:!dict payload)
                    | "value" -> ignore (Value_index.of_bytes payload)
                    | "text" -> ignore (Text_index.of_bytes payload)
                    | "path" -> ignore (Path_index.of_bytes payload)
                    | "guide" -> ignore (Dataguide.of_bytes payload)
                    | other ->
                      push
                        (diag Ssd_diag.Warning "SSD564" "fsck: unknown segment %S (%d bytes)"
                           other s.Page.byte_len)
                  with B.Corrupt { offset; expected; found } ->
                    push
                      (diag Ssd_diag.Error "SSD564"
                         "fsck: segment %S malformed at byte %d: expected %s, found %s"
                         s.Page.name offset expected found)
                end
              with B.Corrupt _ ->
                (* Page-level damage already reported by the sweep. *)
                ()
            end)
          sb.Page.segs;
        (* WAL: header, frame scan, tail state. *)
        if not (vfs.Vfs.exists wal_file) then
          push (diag Ssd_diag.Warning "SSD562" "fsck: missing WAL file")
        else begin
          let wal = vfs.Vfs.open_file wal_file in
          let wb = Vfs.read_all wal in
          (try
             let scan = Wal.scan wb in
             if scan.Wal.torn_bytes > 0 then
               push
                 (diag Ssd_diag.Warning "SSD562"
                    "fsck: WAL has a torn tail (%d bytes discarded on recovery)"
                    scan.Wal.torn_bytes);
             if scan.Wal.in_flight > 0 then
               push
                 (diag Ssd_diag.Warning "SSD562"
                    "fsck: WAL ends with %d uncommitted page frames (discarded on recovery)"
                    scan.Wal.in_flight);
             if List.length scan.Wal.txns > 0 then
               push
                 (diag Ssd_diag.Note "SSD565"
                    "fsck: %d committed transactions await recovery (open the store to apply)"
                    (List.length scan.Wal.txns))
             else if sb.Page.clean && scan.Wal.scanned_bytes = 0 && scan.Wal.torn_bytes = 0
             then ()
             else if not sb.Page.clean then
               push
                 (diag Ssd_diag.Note "SSD565"
                    "fsck: store was not closed cleanly (recovery will run on open)")
           with B.Corrupt { offset; expected; found } ->
             push
               (diag Ssd_diag.Error "SSD560"
                  "fsck: bad WAL header at byte %d: expected %s, found %s" offset expected
                  found));
          wal.Vfs.close ()
        end));
    data.Vfs.close ();
    List.rev !diags
  end
