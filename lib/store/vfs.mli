(** Virtual file system under the persistent store: positional I/O with
    fsync barriers, in two flavors — a real directory ({!real}) and an
    in-memory faulty disk ({!mem_create}) driven by a seeded
    {!Ssd_fault.Disk} plan, which the crash-recovery fuzzer replays. *)

(** Raised by the faulty VFS at the planned crash point. *)
exception Crash

type file = {
  pread : bytes -> pos:int -> off:int -> len:int -> int;
  pwrite : bytes -> pos:int -> off:int -> len:int -> int;
  fsync : unit -> unit;
  size : unit -> int;
  truncate : int -> unit;
  close : unit -> unit;
}

type t = {
  open_file : string -> file;
  exists : string -> bool;
}

(** Fill the whole buffer from [off]; raises
    [Ssd_storage.Bytesio.Corrupt] on end-of-file. *)
val really_pread : file -> bytes -> off:int -> unit

(** Write all bytes at [off], looping over short transfers. *)
val really_pwrite : file -> bytes -> off:int -> unit

val read_all : file -> bytes

(** A directory of ordinary files (created if missing). *)
val real : string -> t

(** In-memory faulty disk state, inspectable after a {!Crash}. *)
type mem

(** [mem_create ?images plan] builds an in-memory VFS, optionally
    pre-populated with file images (e.g. the survivors of a previous
    crash). *)
val mem_create : ?images:(string * bytes) list -> Ssd_fault.Disk.t -> mem * t

(** The per-file contents surviving the crash: durable data plus the
    seeded subset of volatile writes the plan kept. *)
val crash_images : mem -> (string * bytes) list

(** I/O ops performed so far (crashable ops: writes, truncates, fsyncs). *)
val ops : mem -> int
