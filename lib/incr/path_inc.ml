module Graph = Ssd.Graph
module Label = Ssd.Label
module Path_index = Ssd_index.Path_index

type t = {
  index : Path_index.t;
  paths_to : (int, Label.t list list) Hashtbl.t;
      (* node -> indexed paths of length < depth reaching it, i.e. the
         pairs that may still be extended by a new outgoing edge *)
}

let of_index idx =
  let d = Path_index.depth idx in
  let paths_to = Hashtbl.create 1024 in
  Path_index.fold_pairs
    (fun p nodes () ->
      if List.length p < d then
        List.iter
          (fun v ->
            let ps = Option.value ~default:[] (Hashtbl.find_opt paths_to v) in
            Hashtbl.replace paths_to v (p :: ps))
          nodes)
    idx ();
  { index = idx; paths_to }

let of_graph ~depth g = of_index (Path_index.build ~depth g)
let index t = t.index

let apply t g ~touched =
  let d = Path_index.depth t.index in
  let q = Queue.create () in
  (* Seed: every extendable pair reaching a touched node must re-walk
     that node's (possibly changed) successors. *)
  List.iter
    (fun w ->
      List.iter
        (fun p -> Queue.add (p, w) q)
        (Option.value ~default:[] (Hashtbl.find_opt t.paths_to w)))
    touched;
  while not (Queue.is_empty q) do
    let p, u = Queue.pop q in
    List.iter
      (fun (l, v) ->
        let p' = p @ [ l ] in
        if Path_index.add_pair t.index p' v then
          if List.length p' < d then begin
            let ps =
              Option.value ~default:[] (Hashtbl.find_opt t.paths_to v)
            in
            Hashtbl.replace t.paths_to v (p' :: ps);
            Queue.add (p', v) q
          end)
      (Graph.labeled_succ g u)
  done
