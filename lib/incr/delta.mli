(** Edge-level deltas between two versions of a graph.

    The unit of change is the edge: an update takes the database from
    [old] to [new], and the delta is the multiset difference of their
    edge sets (parallel edges count).  Everything downstream — index
    maintenance, DataGuide maintenance, cache revalidation, result
    subscriptions — consumes this one type, so an update's cost is
    proportional to the delta, not to the database.

    The key split is {!monotone}: a delta that only {e adds} edges (no
    removals, no root move, no node-id remap) admits the insert-only
    fast paths of {!Guide_inc} and {!Path_inc}.  Lorel [insert] updates
    produce exactly this shape — {!Lorel.Update} grafts new structure
    onto the existing builder without renumbering — while [delete] and
    [rename] rebuild and may gc-remap node ids, which surfaces here as a
    non-monotone delta and sends maintainers down the rebuild path. *)

type edge = {
  src : int;
  lab : Ssd.Graph.edge_label;
  dst : int;
}

type t = {
  added : edge list;  (** with multiplicity; order unspecified *)
  removed : edge list;  (** with multiplicity; order unspecified *)
  old_nodes : int;
  new_nodes : int;
  root_moved : bool;
  new_has_eps : bool;  (** does the {e new} graph contain any ε edge? *)
}

(** Multiset edge diff, one O(|E_old| + |E_new|) pass over both graphs.
    This is the delta {e source} for callers that only hold graph
    versions (the store's commit path); callers that know their edits
    can construct {!t} directly. *)
val diff : Ssd.Graph.t -> Ssd.Graph.t -> t

val is_empty : t -> bool

(** No removals, root unmoved, node count did not shrink: every old
    node id still denotes the same node, so insert-only maintenance
    applies. *)
val monotone : t -> bool

(** Labels mentioned by the delta, sorted; [None] means ⊤ (an ε edge
    changed, which can alter the ε-closed successors of any label). *)
val touched_labels : t -> Ssd.Label.t list option

val n_added : t -> int
val n_removed : t -> int
