module Graph = Ssd.Graph
module Value_index = Ssd_index.Value_index
module Text_index = Ssd_index.Text_index
module Path_index = Ssd_index.Path_index
module Dataguide = Ssd_schema.Dataguide
module Metrics = Ssd_obs.Metrics
module Events = Ssd_obs.Events

let m_deltas = Metrics.counter "incr.deltas"
let m_fast = Metrics.counter "incr.fast_path"
let m_fallback = Metrics.counter "incr.fallbacks"
let m_added = Metrics.counter "incr.edges_added"
let m_removed = Metrics.counter "incr.edges_removed"
let m_touched = Metrics.counter "incr.touched_nodes"
let m_maintain = Metrics.timer "incr.maintain"
let g_states = Metrics.gauge "incr.guide_states"

type t = {
  path_depth : int;
  mutable graph : Graph.t;
  mutable vindex : Value_index.t option;
  mutable tindex : Text_index.t option;
  mutable pindex : Path_inc.t option;
  mutable gindex : Guide_inc.t option;
  mutable rev_eps : (int, int list) Hashtbl.t;
      (* reverse ε-adjacency of the current graph, for touched-region
         computation; grown in place on monotone advances *)
  mutable guide_memo : Dataguide.t option;
}

type outcome =
  | Fast_path
  | Rebuilt

let build_rev_eps g =
  let tbl = Hashtbl.create 64 in
  Graph.fold_edges
    (fun () src lab dst ->
      match lab with
      | Graph.Eps ->
        let ps = Option.value ~default:[] (Hashtbl.find_opt tbl dst) in
        Hashtbl.replace tbl dst (src :: ps)
      | Graph.Lab _ -> ())
    () g;
  tbl

(* Nodes whose ε-closed labeled successors may differ after the insert:
   everything that ε-reaches an added edge's source. *)
let rev_eps_closure rev_eps sources =
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  List.iter
    (fun u ->
      if not (Hashtbl.mem seen u) then begin
        Hashtbl.replace seen u ();
        Queue.add u q
      end)
    sources;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun p ->
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.replace seen p ();
          Queue.add p q
        end)
      (Option.value ~default:[] (Hashtbl.find_opt rev_eps u))
  done;
  Hashtbl.fold (fun u () l -> u :: l) seen []

let create ~path_depth ~names ?vindex ?tindex ?pindex ?guide g =
  let want n = List.mem n names in
  let take name provided build =
    if want name then
      Some (match provided with Some x -> x | None -> build ())
    else None
  in
  {
    path_depth;
    graph = g;
    vindex = take "value" vindex (fun () -> Value_index.build g);
    tindex = take "text" tindex (fun () -> Text_index.build g);
    pindex =
      take "path"
        (Option.map Path_inc.of_index pindex)
        (fun () -> Path_inc.of_graph ~depth:path_depth g);
    gindex =
      take "guide"
        (Option.map Guide_inc.of_guide guide)
        (fun () -> Guide_inc.of_graph g);
    rev_eps = build_rev_eps g;
    guide_memo = None;
  }

let graph t = t.graph

let rebuild t g =
  t.graph <- g;
  t.rev_eps <- build_rev_eps g;
  if Option.is_some t.vindex then t.vindex <- Some (Value_index.build g);
  if Option.is_some t.tindex then t.tindex <- Some (Text_index.build g);
  if Option.is_some t.pindex then
    t.pindex <- Some (Path_inc.of_graph ~depth:t.path_depth g);
  if Option.is_some t.gindex then t.gindex <- Some (Guide_inc.of_graph g);
  t.guide_memo <- None

let fast_path t g (d : Delta.t) =
  (* Extend the reverse ε-adjacency first: the touched region must be
     the reverse ε-closure in the *new* graph. *)
  List.iter
    (fun (e : Delta.edge) ->
      match e.lab with
      | Graph.Eps ->
        let ps = Option.value ~default:[] (Hashtbl.find_opt t.rev_eps e.dst) in
        Hashtbl.replace t.rev_eps e.dst (e.src :: ps)
      | Graph.Lab _ -> ())
    d.added;
  let touched =
    rev_eps_closure t.rev_eps
      (List.map (fun (e : Delta.edge) -> e.src) d.added)
  in
  (match t.vindex with
  | None -> ()
  | Some vi ->
    List.iter
      (fun (e : Delta.edge) ->
        match e.lab with
        | Graph.Lab l -> Value_index.add vi l { Value_index.src = e.src; dst = e.dst }
        | Graph.Eps -> ())
      d.added);
  (match t.tindex with
  | None -> ()
  | Some ti ->
    let added =
      List.filter_map
        (fun (e : Delta.edge) ->
          match e.lab with
          | Graph.Lab l -> Some { Text_index.src = e.src; label = l; dst = e.dst }
          | Graph.Eps -> None)
        d.added
    in
    t.tindex <- Some (Text_index.apply ti ~added ~removed:[]));
  (match t.pindex with None -> () | Some pi -> Path_inc.apply pi g ~touched);
  (match t.gindex with None -> () | Some gi -> Guide_inc.apply gi g ~touched);
  t.graph <- g;
  t.guide_memo <- None;
  List.length touched

let advance t g (d : Delta.t) =
  Metrics.incr m_deltas;
  Metrics.add m_added (Delta.n_added d);
  Metrics.add m_removed (Delta.n_removed d);
  let outcome, touched =
    if Delta.monotone d then begin
      let n = Metrics.time m_maintain (fun () -> fast_path t g d) in
      Metrics.incr m_fast;
      Metrics.add m_touched n;
      (Fast_path, n)
    end
    else begin
      Metrics.time m_maintain (fun () -> rebuild t g);
      Metrics.incr m_fallback;
      (Rebuilt, Graph.n_nodes g)
    end
  in
  (match t.gindex with
  | Some gi -> Metrics.set g_states (float_of_int (Guide_inc.n_states gi))
  | None -> ());
  Events.emit Events.default "incr.maintain"
    [
      ("mode", Ssd.Json.String (match outcome with
         | Fast_path -> "fast_path"
         | Rebuilt -> "rebuild"));
      ("added", Ssd.Json.Int (Delta.n_added d));
      ("removed", Ssd.Json.Int (Delta.n_removed d));
      ("touched", Ssd.Json.Int touched);
    ];
  outcome

let value_index t = t.vindex
let text_index t = t.tindex
let path_index t = Option.map Path_inc.index t.pindex

let dataguide t =
  match t.guide_memo with
  | Some dg -> Some dg
  | None -> (
    match t.gindex with
    | None -> None
    | Some gi ->
      let dg = Guide_inc.materialize gi in
      t.guide_memo <- Some dg;
      Some dg)
