(** Incremental bounded-depth path-index maintenance (insert-only).

    The {!Ssd_index.Path_index} table is a set of (root label-path,
    reached node) pairs up to the depth bound.  Inserting edges only
    ever {e adds} pairs, and every new pair extends an existing one
    through a changed node, so maintenance is a worklist fixpoint seeded
    at the touched region: for each touched node, re-extend every
    indexed path that reaches it; each genuinely new pair is recorded
    and extended in turn.  Work is proportional to the new pairs plus
    the touched frontier — not to the database. *)

type t

(** Adopt an index (it is mutated in place by {!apply}) and build the
    reverse map from node to the extendable paths reaching it. *)
val of_index : Ssd_index.Path_index.t -> t

val of_graph : depth:int -> Ssd.Graph.t -> t

(** The maintained index (same object as passed to {!of_index}). *)
val index : t -> Ssd_index.Path_index.t

(** [apply t g ~touched] — [g] is the new graph, [touched] the nodes
    whose ε-closed labeled successors may have changed.  Monotone
    deltas only ({!Delta.monotone}). *)
val apply : t -> Ssd.Graph.t -> touched:int list -> unit
