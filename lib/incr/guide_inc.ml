module Graph = Ssd.Graph
module Label = Ssd.Label
module Dataguide = Ssd_schema.Dataguide

module Label_map = Map.Make (struct
  type t = Label.t

  let compare = Label.compare
end)

(* A live subset-construction state: its target set (sorted, the table
   key) and its transitions, each to the key of the child state. *)
type state = {
  set : int list;
  mutable trans : int list Label_map.t;
}

type t = {
  states : (int list, state) Hashtbl.t;
  member : (int, int list list) Hashtbl.t;
      (* data node -> keys of states containing it; rebuilt on prune *)
  root_key : int list;
}

let n_states t = Hashtbl.length t.states

let register t s =
  List.iter
    (fun u ->
      let ks = Option.value ~default:[] (Hashtbl.find_opt t.member u) in
      Hashtbl.replace t.member u (s.set :: ks))
    s.set

(* Transitions of a target set against the current graph: ε-closed
   labeled successors of the whole set, grouped by label — exactly
   [Dataguide.build]'s by_label grouping, including the sort_uniq that
   makes child keys canonical. *)
let compute_trans g set =
  let by_label =
    List.fold_left
      (fun m u ->
        List.fold_left
          (fun m (l, v) ->
            Label_map.update l
              (fun o -> Some (v :: Option.value ~default:[] o))
              m)
          m (Graph.labeled_succ g u))
      Label_map.empty set
  in
  Label_map.map (List.sort_uniq compare) by_label

(* Create-and-explore a state for a target set not yet in the table. *)
let rec ensure t g key =
  if not (Hashtbl.mem t.states key) then begin
    let s = { set = key; trans = Label_map.empty } in
    Hashtbl.add t.states key s;
    register t s;
    let tr = compute_trans g key in
    s.trans <- tr;
    Label_map.iter (fun _ child -> ensure t g child) tr
  end

let of_guide guide =
  let gg = Dataguide.graph guide in
  let key_of u = List.sort_uniq compare (Dataguide.targets guide u) in
  let t =
    {
      states = Hashtbl.create 64;
      member = Hashtbl.create 256;
      root_key = key_of (Graph.root gg);
    }
  in
  for u = 0 to Graph.n_nodes gg - 1 do
    let s = { set = key_of u; trans = Label_map.empty } in
    Hashtbl.add t.states s.set s;
    register t s
  done;
  for u = 0 to Graph.n_nodes gg - 1 do
    let s = Hashtbl.find t.states (key_of u) in
    s.trans <-
      List.fold_left
        (fun m (l, v) -> Label_map.add l (key_of v) m)
        Label_map.empty
        (Graph.labeled_succ gg u)
  done;
  t

let of_graph g = of_guide (Dataguide.build g)

let apply t g ~touched =
  (* States whose target set meets the touched region are the only ones
     whose by_label grouping can have changed. *)
  let affected : (int list, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun u ->
      List.iter
        (fun key ->
          if Hashtbl.mem t.states key then Hashtbl.replace affected key ())
        (Option.value ~default:[] (Hashtbl.find_opt t.member u)))
    touched;
  Hashtbl.iter
    (fun key () ->
      let s = Hashtbl.find t.states key in
      let tr = compute_trans g s.set in
      s.trans <- tr;
      Label_map.iter (fun _ child -> ensure t g child) tr)
    affected

let materialize t =
  (* Replay Dataguide.build's numbering: intern the root set, then
     depth-first per state in sorted-label order, interning each child
     before adding the edge and recursing into fresh ones. *)
  let b = Graph.Builder.create () in
  let ids : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref [] in
  let intern key =
    match Hashtbl.find_opt ids key with
    | Some id -> (id, false)
    | None ->
      let id = Graph.Builder.add_node b in
      Hashtbl.add ids key id;
      acc := (id, key) :: !acc;
      (id, true)
  in
  let rec emit key id =
    let s = Hashtbl.find t.states key in
    Label_map.iter
      (fun l child ->
        let cid, fresh = intern child in
        Graph.Builder.add_edge b id l cid;
        if fresh then emit child cid)
      s.trans
  in
  let rid, _ = intern t.root_key in
  Graph.Builder.set_root b rid;
  emit t.root_key rid;
  let gg = Graph.Builder.finish b in
  let targets = Array.make (Graph.n_nodes gg) [] in
  List.iter (fun (id, key) -> targets.(id) <- key) !acc;
  (* Prune states retargeting left behind, and rebuild the member index
     so later applies don't fan out to dead states. *)
  let dead =
    Hashtbl.fold
      (fun key _ l -> if Hashtbl.mem ids key then l else key :: l)
      t.states []
  in
  if dead <> [] then begin
    List.iter (Hashtbl.remove t.states) dead;
    Hashtbl.reset t.member;
    Hashtbl.iter (fun _ s -> register t s) t.states
  end;
  Dataguide.make gg targets
