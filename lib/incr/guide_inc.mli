(** Incremental strong-DataGuide maintenance (insert-only fast path).

    {!Dataguide.build} is a subset construction: guide states are sets
    of data nodes, transitions group the set's ε-closed labeled
    successors by label.  This module keeps that construction {e live}:
    states are stored in a table keyed by their (sorted) target set,
    with an inverted member index from data node to the states that
    contain it.  When edges are inserted, only the states whose target
    sets intersect the {e touched} region — the reverse-ε-closure of the
    added edges' sources — can change transitions; those are recomputed
    against the new graph and any newly reachable target sets are
    explored from scratch.  Everything else is untouched, so maintenance
    cost tracks the delta, not the database (Goldman & Widom describe
    the same incremental strategy for their DataGuides).

    Insert-only means transitions never disappear and target sets only
    ever grow or appear; a state can become unreachable (its set was
    retargeted to a larger one), which {!materialize} prunes.

    {!materialize} replays [build]'s canonical depth-first numbering
    over the live state table, so the resulting guide is byte-identical
    ({!Dataguide.to_bytes}) to a fresh [build] of the updated graph —
    the invariant the differential suite ([test_incr]) and the store's
    crash fuzzer check. *)

type t

(** Seed the live table from a guide of the current graph. *)
val of_guide : Ssd_schema.Dataguide.t -> t

(** [of_graph g] = [of_guide (Dataguide.build g)]. *)
val of_graph : Ssd.Graph.t -> t

(** [apply t g ~touched] — [g] is the {e new} graph (old graph plus
    inserted edges; node ids preserved), [touched] the data nodes whose
    ε-closed labeled successors may have changed (the reverse-ε-closure
    of the added edges' sources).  Only valid for monotone deltas
    ({!Delta.monotone}); callers fall back to {!of_graph} otherwise. *)
val apply : t -> Ssd.Graph.t -> touched:int list -> unit

(** Canonically renumber the reachable states into a {!Ssd_schema.Dataguide.t}
    (byte-identical to a fresh build) and drop unreachable states. *)
val materialize : t -> Ssd_schema.Dataguide.t

(** Live states (including any not yet pruned). *)
val n_states : t -> int
