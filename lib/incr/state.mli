(** The incremental maintainer: one live state for all derived
    structures of a graph.

    A {!t} owns the current graph version plus whichever of the four
    persistent index structures the caller asked for (the store's
    segment set): value index, text index, bounded-depth path index and
    strong DataGuide.  {!advance} moves the state to a new graph version
    given its {!Delta.t}: monotone deltas take the insert-only fast
    paths (work proportional to the change); anything else rebuilds the
    affected structures from scratch — same results, honestly accounted
    on the [incr.fallbacks] counter.

    The maintained structures are byte-identical ({!to_bytes}) to fresh
    builds over the current graph at every step — the invariant the
    differential suite and the store crash fuzzer check — so a store
    can serialize them into segments with no rebuild on the commit
    path.

    Telemetry: counters [incr.deltas], [incr.fast_path],
    [incr.fallbacks], [incr.edges_added], [incr.edges_removed],
    [incr.touched_nodes], the [incr.maintain] timer, the
    [incr.guide_states] gauge, and an [incr.maintain] event per
    advance. *)

type t

type outcome =
  | Fast_path  (** insert-only maintenance ran *)
  | Rebuilt  (** non-monotone delta: structures rebuilt *)

(** [create ~path_depth ~names g] — maintain the structures named in
    [names] (any of ["value"], ["text"], ["path"], ["guide"]; unknown
    names are ignored).  Structures the caller already holds for [g]
    can be donated ([?vindex] … [?guide]) and are adopted without a
    rebuild; the value and path indexes are then mutated in place by
    {!advance}. *)
val create :
  path_depth:int ->
  names:string list ->
  ?vindex:Ssd_index.Value_index.t ->
  ?tindex:Ssd_index.Text_index.t ->
  ?pindex:Ssd_index.Path_index.t ->
  ?guide:Ssd_schema.Dataguide.t ->
  Ssd.Graph.t ->
  t

(** The graph version the structures currently describe. *)
val graph : t -> Ssd.Graph.t

(** [advance t g delta] — [delta] must be [Delta.diff (graph t) g] (or
    an equivalent hand-built delta). *)
val advance : t -> Ssd.Graph.t -> Delta.t -> outcome

(** Current structures ([None] when not in [names]).  The guide is
    materialized on demand and memoized until the next {!advance}. *)
val value_index : t -> Ssd_index.Value_index.t option

val text_index : t -> Ssd_index.Text_index.t option
val path_index : t -> Ssd_index.Path_index.t option
val dataguide : t -> Ssd_schema.Dataguide.t option
