module Graph = Ssd.Graph
module Label = Ssd.Label

type edge = {
  src : int;
  lab : Graph.edge_label;
  dst : int;
}

type t = {
  added : edge list;
  removed : edge list;
  old_nodes : int;
  new_nodes : int;
  root_moved : bool;
  new_has_eps : bool;
}

let diff old_g new_g =
  (* Signed multiset count per edge: +1 for each occurrence in the new
     graph, -1 for each in the old; surviving positives are additions,
     negatives removals. *)
  let counts : (edge, int) Hashtbl.t = Hashtbl.create 256 in
  let bump e d =
    let c = d + Option.value ~default:0 (Hashtbl.find_opt counts e) in
    if c = 0 then Hashtbl.remove counts e else Hashtbl.replace counts e c
  in
  let new_has_eps = ref false in
  Graph.fold_edges
    (fun () src lab dst ->
      (match lab with Graph.Eps -> new_has_eps := true | Graph.Lab _ -> ());
      bump { src; lab; dst } 1)
    () new_g;
  Graph.fold_edges (fun () src lab dst -> bump { src; lab; dst } (-1)) () old_g;
  let added = ref [] and removed = ref [] in
  Hashtbl.iter
    (fun e c ->
      if c > 0 then
        for _ = 1 to c do
          added := e :: !added
        done
      else
        for _ = 1 to -c do
          removed := e :: !removed
        done)
    counts;
  {
    added = !added;
    removed = !removed;
    old_nodes = Graph.n_nodes old_g;
    new_nodes = Graph.n_nodes new_g;
    root_moved = Graph.root old_g <> Graph.root new_g;
    new_has_eps = !new_has_eps;
  }

let is_empty d = d.added = [] && d.removed = []

let monotone d =
  d.removed = [] && (not d.root_moved) && d.new_nodes >= d.old_nodes

let touched_labels d =
  let exception Top in
  let collect acc es =
    List.fold_left
      (fun acc e ->
        match e.lab with Graph.Eps -> raise Top | Graph.Lab l -> l :: acc)
      acc es
  in
  match collect (collect [] d.added) d.removed with
  | labs -> Some (List.sort_uniq Label.compare labs)
  | exception Top -> None

let n_added d = List.length d.added
let n_removed d = List.length d.removed
