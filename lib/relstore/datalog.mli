(** Stratified datalog with semi-naive evaluation — the "graph datalog" of
    section 3.

    Some forms of unbounded search (arbitrary-depth paths, transitive
    closure, reachability "from a given root by forward traversal") are
    not expressible in plain relational algebra; the paper points to
    recursive rule languages over the triple encoding.  This engine
    evaluates such programs over an extensional database of
    {!Ssd.Label.t} tuples, typically {!Triple.edb}.

    Concrete syntax:
    {v
      reach(?X)      :- root(?X).
      reach(?Y)      :- reach(?X), edge(?X, ?L, ?Y).
      movie(?M)      :- edge(?E, Movie, ?M).
      bigint(?N)     :- reach(?X), edge(?X, ?N, ?Y), ?N > 65536.
      nonmovie(?X)   :- reach(?X), not movie(?X).
    v}

    Variables are [?name] ([_] is a fresh anonymous variable), constants
    are label literals (bare identifiers are symbols), [not] is stratified
    negation, and infix comparisons [= != < <= > >=] are built-in
    predicates over bound terms. *)

type term =
  | Var of string
  | Const of Ssd.Label.t

type atom = {
  pred : string;
  args : term list;
}

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of cmp * term * term

type rule = {
  head : atom;
  body : literal list;
}

type program = rule list

exception Parse_error of string

exception Unsafe of Ssd_diag.t
(** A head / negated / compared variable does not occur in a positive body
    literal.  The diagnostic's code is SSD201 (head), SSD202 (negated
    literal) or SSD203 (comparison) — the same codes {!Lint} reports. *)

exception Not_stratified of Ssd_diag.t
(** Negation through recursion (code SSD210). *)

val parse : string -> program
val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit

(** An extensional database: predicate name to tuples. *)
type edb = (string * Ssd.Label.t list list) list

(** [eval ?budget ~edb program] computes the least fixpoint (per stratum,
    semi-naive within strata) and returns all derived predicates with
    their tuples.

    A {!Ssd.Budget} is consumed per rule firing and per derived tuple.
    On exhaustion the fixpoint stops and the facts accumulated so far are
    returned — a sound lower bound of the least model: completed strata
    are exact (so negation was decided correctly), and the interrupted
    stratum is monotone.
    @raise Unsafe / @raise Not_stratified on bad programs. *)
val eval : ?budget:Ssd.Budget.t -> edb:edb -> program -> (string * Ssd.Label.t list list) list

(** [eval] plus the completeness verdict (see {!Ssd.Budget.outcome}). *)
val eval_outcome :
  budget:Ssd.Budget.t ->
  edb:edb ->
  program ->
  (string * Ssd.Label.t list list) list Ssd.Budget.outcome

(** [query ~edb program pred] is the tuple set of one predicate (empty if
    never derived). *)
val query : edb:edb -> program -> string -> Ssd.Label.t list list

(** Naive (full re-derivation) fixpoint — the reference implementation the
    tests compare {!eval} against. *)
val eval_naive : edb:edb -> program -> (string * Ssd.Label.t list list) list

(** Number of strata the program splits into. *)
val n_strata : program -> int

(** {2 Incremental maintenance}

    A retained least model that can absorb EDB {e insertions} without
    recomputation from scratch — the relational half of the delta
    pipeline (lib/incr): a monotone graph update turns into new [edge]
    / [root] triples, and a subscription's datalog program re-derives
    only what those new triples entail. *)
module Incremental : sig
  type state

  (** Insertion-only maintenance is exact only for monotone programs:
      negation can retract conclusions when facts arrive, so programs
      with [not] are rejected (comparisons are fine — they filter a
      single tuple, monotonically). *)
  val supported : program -> bool

  (** Evaluate [program] over [edb] and retain the full model.
      @raise Unsafe on safety violations, or (code SSD213) if the
      program is not {!supported}. *)
  val prepare : edb:edb -> program -> state

  (** All derived predicates of the retained model, as {!eval} would
      return them (tuple order may differ; content is equal). *)
  val result : state -> (string * Ssd.Label.t list list) list

  (** [advance st ~edb_delta] inserts the given extensional tuples
      (already-present tuples are ignored) and runs semi-naive delta
      rounds from them.  Returns the {e newly derived} tuples per IDB
      predicate — exactly the difference between the new and old least
      models, since negation-free programs are monotone.  Empty list:
      the update provably changed no derived fact. *)
  val advance : state -> edb_delta:edb -> (string * Ssd.Label.t list list) list
end

(** [reorder ~edb program] — statistics-driven join ordering, applied per
    rule: positive body literals are greedily ordered by estimated
    binding count (extensional relation sizes from [edb], discounted per
    already-bound argument position), and each negation or comparison is
    placed at the earliest point its variables are positively bound.
    Safety is preserved by construction.  Opt-in rather than part of
    {!eval}: reordering changes derivation order, so derived tuple
    {e order} (not content) can differ from the syntactic program's. *)
val reorder : edb:edb -> program -> program
