module Label = Ssd.Label
module Graph = Ssd.Graph

let edge_attrs = [ "src"; "label"; "dst" ]

let edges g =
  let g = Graph.eps_eliminate g in
  Graph.fold_labeled_edges
    (fun acc u l v -> Relation.add acc [| Label.Int u; l; Label.Int v |])
    (Relation.create edge_attrs)
    g

let root g =
  let g = Graph.eps_eliminate g in
  Relation.add (Relation.create [ "node" ]) [| Label.Int (Graph.root g) |]

let to_graph ~edges ~root =
  if Array.to_list (Relation.attrs edges) <> edge_attrs then
    Ssd_diag.error ~code:"SSD521"
      "Triple.to_graph: edge relation must have attrs (src,label,dst)";
  let root_id =
    match Relation.rows root with
    | [ [| Label.Int n |] ] -> n
    | _ ->
      Ssd_diag.error ~code:"SSD521"
        "Triple.to_graph: root relation must be a single Int node"
  in
  let b = Graph.Builder.create () in
  let node_map = Hashtbl.create 64 in
  let intern l =
    match l with
    | Label.Int n ->
      (match Hashtbl.find_opt node_map n with
       | Some id -> id
       | None ->
         let id = Graph.Builder.add_node b in
         Hashtbl.add node_map n id;
         id)
    | _ -> Ssd_diag.error ~code:"SSD521" "Triple.to_graph: node ids must be Int labels"
  in
  let root_node = intern (Label.Int root_id) in
  Relation.iter
    (fun row ->
      match row with
      | [| src; l; dst |] -> Graph.Builder.add_edge b (intern src) l (intern dst)
      | _ -> assert false)
    edges;
  Graph.Builder.set_root b root_node;
  Graph.gc (Graph.Builder.finish b)

let edb g =
  let g = Graph.eps_eliminate g in
  let triples =
    Graph.fold_labeled_edges
      (fun acc u l v -> [ Label.Int u; l; Label.Int v ] :: acc)
      [] g
  in
  [ ("edge", triples); ("root", [ [ Label.Int (Graph.root g) ] ]) ]
