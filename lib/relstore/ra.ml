module Label = Ssd.Label

type pred = Relation.row -> bool

let select p r =
  Relation.fold
    (fun acc row -> if p row then Relation.add acc row else acc)
    (Relation.create (Array.to_list (Relation.attrs r)))
    r

let select_eq r attr v =
  let col = Relation.column r attr in
  select (fun row -> Label.equal row.(col) v) r

let project attr_list r =
  let cols = List.map (Relation.column r) attr_list in
  Relation.fold
    (fun acc row -> Relation.add acc (Array.of_list (List.map (fun c -> row.(c)) cols)))
    (Relation.create attr_list)
    r

let rename (old_name, new_name) r =
  let attrs =
    Array.to_list (Relation.attrs r)
    |> List.map (fun a -> if a = old_name then new_name else a)
  in
  Relation.fold Relation.add (Relation.create attrs) r

let join r1 r2 =
  let attrs1 = Relation.attrs r1 and attrs2 = Relation.attrs r2 in
  let shared =
    Array.to_list attrs1 |> List.filter (fun a -> Array.exists (( = ) a) attrs2)
  in
  let cols1 = List.map (Relation.column r1) shared in
  let cols2 = List.map (Relation.column r2) shared in
  let extra2 =
    Array.to_list attrs2
    |> List.mapi (fun i a -> (i, a))
    |> List.filter (fun (_, a) -> not (List.mem a shared))
  in
  let out_attrs = Array.to_list attrs1 @ List.map snd extra2 in
  (* Hash r2 on its shared columns, probe with r1. *)
  let table = Hashtbl.create (max 16 (Relation.cardinality r2)) in
  Relation.iter
    (fun row ->
      let key = List.map (fun c -> row.(c)) cols2 in
      Hashtbl.add table key row)
    r2;
  Relation.fold
    (fun acc row1 ->
      let key = List.map (fun c -> row1.(c)) cols1 in
      List.fold_left
        (fun acc row2 ->
          let combined =
            Array.append row1 (Array.of_list (List.map (fun (i, _) -> row2.(i)) extra2))
          in
          Relation.add acc combined)
        acc (Hashtbl.find_all table key))
    (Relation.create out_attrs)
    r1

let check_compatible op r1 r2 =
  if Relation.attrs r1 <> Relation.attrs r2 then
    Ssd_diag.error ~code:"SSD520" "Ra.%s: attribute lists differ" op

let union r1 r2 =
  check_compatible "union" r1 r2;
  Relation.fold Relation.add r1 r2

let diff r1 r2 =
  check_compatible "diff" r1 r2;
  Relation.fold
    (fun acc row -> if Relation.mem r2 row then acc else Relation.add acc row)
    (Relation.create (Array.to_list (Relation.attrs r1)))
    r1

let inter r1 r2 =
  check_compatible "inter" r1 r2;
  Relation.fold
    (fun acc row -> if Relation.mem r2 row then Relation.add acc row else acc)
    (Relation.create (Array.to_list (Relation.attrs r1)))
    r1
