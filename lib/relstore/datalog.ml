module Label = Ssd.Label
module Budget = Ssd.Budget
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

(* Execution counters (lib/obs), reported to [Metrics.default]. *)
let m_evals = Metrics.counter "datalog.eval.programs"
let m_rounds = Metrics.counter "datalog.seminaive.rounds"
let m_delta = Metrics.counter "datalog.seminaive.delta_tuples"
let m_facts = Metrics.counter "datalog.facts_derived"
let m_firings = Metrics.counter "datalog.rule_firings"
let t_eval = Metrics.timer "datalog.eval.time"
let h_delta = Metrics.histogram "datalog.seminaive.delta_size"

type term =
  | Var of string
  | Const of Label.t

type atom = {
  pred : string;
  args : term list;
}

type cmp =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of cmp * term * term

type rule = {
  head : atom;
  body : literal list;
}

type program = rule list

exception Parse_error of string
(* Safety and stratification violations carry a diagnostic under the
   analyzer's codes (SSD201/202/203 safety, SSD210 stratification), so a
   runtime rejection and a lint finding for one defect agree. *)
exception Unsafe of Ssd_diag.t
exception Not_stratified of Ssd_diag.t

let unsafe ~code fmt =
  Printf.ksprintf
    (fun msg -> raise (Unsafe (Ssd_diag.make Ssd_diag.Error ~code msg)))
    fmt

let () =
  Printexc.register_printer (function
    | Unsafe d -> Some ("Datalog.Unsafe: " ^ Ssd_diag.to_string d)
    | Not_stratified d -> Some ("Datalog.Not_stratified: " ^ Ssd_diag.to_string d)
    | _ -> None)

type edb = (string * Label.t list list) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_term fmt = function
  | Var v -> Format.fprintf fmt "?%s" v
  | Const l -> Label.pp fmt l

let pp_atom fmt a =
  Format.fprintf fmt "%s(%s)" a.pred
    (String.concat ", " (List.map (Format.asprintf "%a" pp_term) a.args))

let cmp_name = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "not %a" pp_atom a
  | Cmp (op, t1, t2) -> Format.fprintf fmt "%a %s %a" pp_term t1 (cmp_name op) pp_term t2

let pp_rule fmt r =
  match r.body with
  | [] -> Format.fprintf fmt "%a." pp_atom r.head
  | body ->
    Format.fprintf fmt "%a :- %s." pp_atom r.head
      (String.concat ", " (List.map (Format.asprintf "%a" pp_literal) body))

let pp_program fmt p =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%a@," pp_rule r) p;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string
  | Tvar of string
  | Tlabel of Label.t
  | Tlparen
  | Trparen
  | Tcomma
  | Tperiod
  | Tturnstile
  | Tnot
  | Tcmp of cmp
  | Teof

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let anon = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let lex_ident () =
    let start = !pos in
    while !pos < n && Label.is_ident_char src.[!pos] do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  while !pos < n do
    match src.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '%' | '#' ->
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    | '(' ->
      incr pos;
      push Tlparen
    | ')' ->
      incr pos;
      push Trparen
    | ',' ->
      incr pos;
      push Tcomma
    | '.' ->
      incr pos;
      push Tperiod
    | '?' ->
      incr pos;
      let v = lex_ident () in
      if v = "" then fail "expected a variable name after '?'";
      push (Tvar v)
    | '_' when !pos + 1 >= n || not (Label.is_ident_char src.[!pos + 1]) ->
      incr pos;
      incr anon;
      push (Tvar (Printf.sprintf "_anon%d" !anon))
    | ':' ->
      if !pos + 1 < n && src.[!pos + 1] = '-' then begin
        pos := !pos + 2;
        push Tturnstile
      end
      else fail "expected ':-'"
    | '=' ->
      incr pos;
      push (Tcmp Eq)
    | '!' ->
      if !pos + 1 < n && src.[!pos + 1] = '=' then begin
        pos := !pos + 2;
        push (Tcmp Neq)
      end
      else fail "expected '!='"
    | '<' ->
      if !pos + 1 < n && src.[!pos + 1] = '=' then begin
        pos := !pos + 2;
        push (Tcmp Le)
      end
      else begin
        incr pos;
        push (Tcmp Lt)
      end
    | '>' ->
      if !pos + 1 < n && src.[!pos + 1] = '=' then begin
        pos := !pos + 2;
        push (Tcmp Ge)
      end
      else begin
        incr pos;
        push (Tcmp Gt)
      end
    | '"' ->
      let buf = Buffer.create 8 in
      incr pos;
      let rec loop () =
        if !pos >= n then fail "unterminated string"
        else
          match src.[!pos] with
          | '"' -> incr pos
          | '\\' when !pos + 1 < n ->
            (match src.[!pos + 1] with
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | c -> Buffer.add_char buf c);
            pos := !pos + 2;
            loop ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            loop ()
      in
      loop ();
      push (Tlabel (Label.Str (Buffer.contents buf)))
    | '-' | '0' .. '9' ->
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = 'e' || c = 'E' || c = '.'
      in
      (* Lookahead: '.' ends a clause unless followed by a digit. *)
      while
        !pos < n
        && numchar src.[!pos]
        && not (src.[!pos] = '.' && not (!pos + 1 < n && src.[!pos + 1] >= '0' && src.[!pos + 1] <= '9'))
      do
        incr pos
      done;
      let s = String.sub src start (!pos - start) in
      (match int_of_string_opt s with
       | Some i -> push (Tlabel (Label.Int i))
       | None ->
         (match float_of_string_opt s with
          | Some f -> push (Tlabel (Label.Float f))
          | None -> fail ("bad number " ^ s)))
    | c when Label.is_ident_start c ->
      let id = lex_ident () in
      (match id with
       | "not" -> push Tnot
       | "true" -> push (Tlabel (Label.Bool true))
       | "false" -> push (Tlabel (Label.Bool false))
       | _ -> push (Tident id))
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev (Teof :: !toks)

type pstate = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t
let shift st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok msg = if peek st = tok then shift st else raise (Parse_error msg)

let parse_term st =
  match peek st with
  | Tvar v ->
    shift st;
    Var v
  | Tlabel l ->
    shift st;
    Const l
  | Tident id ->
    shift st;
    Const (Label.Sym id)
  | _ -> raise (Parse_error "expected a term")

let parse_atom st =
  match peek st with
  | Tident p ->
    shift st;
    expect st Tlparen ("expected '(' after predicate " ^ p);
    let args = ref [] in
    if peek st <> Trparen then begin
      args := [ parse_term st ];
      while peek st = Tcomma do
        shift st;
        args := parse_term st :: !args
      done
    end;
    expect st Trparen "expected ')'";
    { pred = p; args = List.rev !args }
  | _ -> raise (Parse_error "expected a predicate atom")

let parse_literal st =
  match peek st with
  | Tnot ->
    shift st;
    Neg (parse_atom st)
  | Tident _ -> (
    (* Could be an atom p(...) or a symbol constant in a comparison. *)
    match st.toks with
    | Tident _ :: Tlparen :: _ -> Pos (parse_atom st)
    | _ ->
      let t1 = parse_term st in
      (match peek st with
       | Tcmp op ->
         shift st;
         let t2 = parse_term st in
         Cmp (op, t1, t2)
       | _ -> raise (Parse_error "expected a comparison operator")))
  | _ ->
    let t1 = parse_term st in
    (match peek st with
     | Tcmp op ->
       shift st;
       let t2 = parse_term st in
       Cmp (op, t1, t2)
     | _ -> raise (Parse_error "expected a comparison operator"))

let parse_rule st =
  let head = parse_atom st in
  let body =
    match peek st with
    | Tturnstile ->
      shift st;
      let lits = ref [ parse_literal st ] in
      while peek st = Tcomma do
        shift st;
        lits := parse_literal st :: !lits
      done;
      List.rev !lits
    | _ -> []
  in
  expect st Tperiod "expected '.' at end of rule";
  { head; body }

let parse src =
  let st = { toks = tokenize src } in
  let rules = ref [] in
  while peek st <> Teof do
    rules := parse_rule st :: !rules
  done;
  List.rev !rules

(* ------------------------------------------------------------------ *)
(* Safety and stratification                                           *)
(* ------------------------------------------------------------------ *)

let term_vars = List.filter_map (function Var v -> Some v | Const _ -> None)

let check_safety program =
  List.iter
    (fun r ->
      let positive_vars =
        List.concat_map
          (function Pos a -> term_vars a.args | Neg _ | Cmp _ -> [])
          r.body
      in
      let check_var ~code where v =
        if not (List.mem v positive_vars) then
          unsafe ~code
            "variable ?%s in %s of rule '%s' is not bound by a positive literal" v
            where
            (Format.asprintf "%a" pp_rule r)
      in
      List.iter (check_var ~code:"SSD201" "head") (term_vars r.head.args);
      List.iter
        (function
          | Neg a ->
            List.iter (check_var ~code:"SSD202" "negated literal") (term_vars a.args)
          | Cmp (_, t1, t2) ->
            List.iter (check_var ~code:"SSD203" "comparison") (term_vars [ t1; t2 ])
          | Pos _ -> ())
        r.body)
    program

(* stratum.(p): strata are computed by relaxation; a negative dependency
   forces a strictly higher stratum, so divergence beyond the number of
   predicates means negation through recursion. *)
let stratify program =
  let idb = List.map (fun r -> r.head.pred) program |> List.sort_uniq String.compare in
  let strata = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace strata p 0) idb;
  let stratum_of p = Option.value ~default:0 (Hashtbl.find_opt strata p) in
  let n_idb = List.length idb in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let lower =
          List.fold_left
            (fun acc lit ->
              match lit with
              | Pos a when List.mem a.pred idb -> max acc (stratum_of a.pred)
              | Neg a when List.mem a.pred idb -> max acc (stratum_of a.pred + 1)
              | Pos _ | Neg _ | Cmp _ -> acc)
            0 r.body
        in
        if lower > stratum_of r.head.pred then begin
          if lower > n_idb then
            raise
              (Not_stratified
                 (Ssd_diag.make Ssd_diag.Error ~code:"SSD210"
                    ("predicate " ^ r.head.pred ^ " negates through recursion")));
          Hashtbl.replace strata r.head.pred lower;
          changed := true
        end)
      program
  done;
  strata

let n_strata program =
  check_safety program;
  let strata = stratify program in
  1 + Hashtbl.fold (fun _ s acc -> max acc s) strata 0

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (String)

(* Tuple sets carry per-position hash indexes so that a body literal with
   a bound argument probes instead of scanning — the difference between a
   nested-loop and an indexed join. *)
type tuple_set = {
  table : (Label.t list, unit) Hashtbl.t;
  index : (int * Label.t, Label.t list list ref) Hashtbl.t;
}

let set_create () = { table = Hashtbl.create 64; index = Hashtbl.create 64 }

let set_mem s t = Hashtbl.mem s.table t

let set_add s t =
  if not (Hashtbl.mem s.table t) then begin
    Hashtbl.replace s.table t ();
    List.iteri
      (fun i v ->
        match Hashtbl.find_opt s.index (i, v) with
        | Some r -> r := t :: !r
        | None -> Hashtbl.add s.index (i, v) (ref [ t ]))
      t
  end

let set_to_list s = Hashtbl.fold (fun t () acc -> t :: acc) s.table []

let set_probe s ~pos ~value =
  match Hashtbl.find_opt s.index (pos, value) with
  | Some r -> !r
  | None -> []

let set_size s = Hashtbl.length s.table

let eval_term env = function
  | Const l -> l
  | Var v -> (
    match Env.find_opt v env with
    | Some l -> l
    | None -> unsafe ~code:"SSD203" "unbound variable ?%s" v)

(* Match an atom's args against a concrete tuple under [env]; None on
   mismatch. *)
let match_tuple env args tuple =
  let rec go env args tuple =
    match args, tuple with
    | [], [] -> Some env
    | arg :: args, v :: tuple -> (
      match arg with
      | Const l -> if Label.equal l v then go env args tuple else None
      | Var x -> (
        match Env.find_opt x env with
        | Some l -> if Label.equal l v then go env args tuple else None
        | None -> go (Env.add x v env) args tuple))
    | _ -> None
  in
  go env args tuple

let eval_cmp op l1 l2 =
  let c = Label.compare l1 l2 in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* First argument position whose value is fixed under [env]; probing that
   position's index replaces a relation scan. *)
let bound_position env args =
  let rec go i = function
    | [] -> None
    | Const l :: _ -> Some (i, l)
    | Var x :: rest -> (
      match Env.find_opt x env with
      | Some l -> Some (i, l)
      | None -> go (i + 1) rest)
  in
  go 0 args

(* Evaluate the body left-to-right over environments.  [set_of] maps a
   predicate to its current tuple set; the positive literal at index
   [delta_at] (if given) reads [delta] instead — or, if [delta_list] is
   given, exactly that tuple list in order (used by the chunked parallel
   firing, where the slice stands in for the delta). *)
let eval_rule_raw ~set_of ?delta_at ?delta ?delta_list rule =
  let results = ref [] in
  let rec go i env lits =
    match lits with
    | [] ->
      let tuple = List.map (eval_term env) rule.head.args in
      results := tuple :: !results
    | Pos a :: rest ->
      let candidates =
        match delta_at, delta_list with
        | Some d, Some tuples when d = i -> tuples
        | _ ->
          let set =
            match delta_at, delta with
            | Some d, Some dset when d = i -> dset
            | _ -> set_of a.pred
          in
          (match bound_position env a.args with
          | Some (pos, value) -> set_probe set ~pos ~value
          | None -> set_to_list set)
      in
      List.iter
        (fun t ->
          match match_tuple env a.args t with
          | Some env' -> go (i + 1) env' rest
          | None -> ())
        candidates
    | Neg a :: rest ->
      let tuple = List.map (eval_term env) a.args in
      if not (set_mem (set_of a.pred) tuple) then go (i + 1) env rest
    | Cmp (op, t1, t2) :: rest ->
      if eval_cmp op (eval_term env t1) (eval_term env t2) then go (i + 1) env rest
  in
  go 0 Env.empty rule.body;
  !results

let eval_rule ~set_of ?delta_at ?delta rule =
  Metrics.incr m_firings;
  eval_rule_raw ~set_of ?delta_at ?delta rule

(* Fire [rule] with the delta literal at [delta_at] reading [delta],
   partitioned across the domain pool when the delta literal is the
   outermost enumeration (no positive literal before it — the common
   shape for linear recursion, e.g. [reach(?Y) :- reach(?X), e(?X,?Y)]).
   The delta is materialized once; each chunk fires the rule over its
   slice (pure reads — facts are only added afterwards, on the calling
   domain) and per-chunk derivations are prepended in ascending chunk
   order, which reproduces the whole-list derivation order for every
   chunking.  Derived-tuple order determines set insertion order and so
   the final output order, so this keeps answers byte-identical for
   every --jobs value.  Rules whose delta literal sits under an outer
   enumeration fire sequentially (see DESIGN.md). *)
let eval_rule_delta ~set_of ~delta_at ~delta rule =
  Metrics.incr m_firings;
  let rec no_pos_before i = function
    | _ when i <= 0 -> true
    | [] -> true
    | Pos _ :: _ -> false
    | (Neg _ | Cmp _) :: rest -> no_pos_before (i - 1) rest
  in
  if not (no_pos_before delta_at rule.body) then
    eval_rule_raw ~set_of ~delta_at ~delta rule
  else begin
    let tuples = Array.of_list (set_to_list delta) in
    Ssd_par.Pool.fold_chunks ~n:(Array.length tuples)
      ~chunk:(fun lo hi ->
        let slice = Array.to_list (Array.sub tuples lo (hi - lo)) in
        eval_rule_raw ~set_of ~delta_at ~delta_list:slice rule)
      ~combine:(fun acc part -> part @ acc)
      []
  end

let facts_of_edb edb =
  let facts : (string, tuple_set) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (p, tuples) ->
      let s =
        match Hashtbl.find_opt facts p with
        | Some s -> s
        | None ->
          let s = set_create () in
          Hashtbl.add facts p s;
          s
      in
      List.iter (set_add s) tuples)
    edb;
  facts

let empty_set = set_create ()

let facts_get facts p = Option.value ~default:empty_set (Hashtbl.find_opt facts p)

let facts_set facts p =
  match Hashtbl.find_opt facts p with
  | Some s -> s
  | None ->
    let s = set_create () in
    Hashtbl.add facts p s;
    s

let idb_result program facts =
  let idb = List.map (fun r -> r.head.pred) program |> List.sort_uniq String.compare in
  List.map (fun p -> (p, set_to_list (facts_get facts p))) idb

let strata_order program =
  let strata = stratify program in
  let max_s = Hashtbl.fold (fun _ s acc -> max acc s) strata 0 in
  List.init (max_s + 1) (fun s ->
      List.filter (fun r -> Hashtbl.find strata r.head.pred = s) program)

let eval_naive ~edb program =
  check_safety program;
  Metrics.incr m_evals;
  Metrics.time t_eval @@ fun () ->
  let facts = facts_of_edb edb in
  let set_of = facts_get facts in
  List.iter
    (fun rules ->
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun r ->
            let derived = eval_rule ~set_of r in
            let s = facts_set facts r.head.pred in
            List.iter
              (fun t ->
                if not (set_mem s t) then begin
                  set_add s t;
                  Metrics.incr m_facts;
                  changed := true
                end)
              derived)
          rules
      done)
    (strata_order program);
  idb_result program facts

(* Budget exhaustion aborts the fixpoint from deep inside the derivation
   loops; the catch site returns the facts accumulated so far.  That
   partial model is a sound lower bound: every accumulated fact was
   derived by a rule from accumulated facts, strata below the
   interrupted one are complete (so its negations were decided exactly),
   and derivation within a stratum is monotone. *)
exception Out_of_budget

let check_budget b = if not (Budget.step b) then raise Out_of_budget

let eval ?budget ~edb program =
  check_safety program;
  Metrics.incr m_evals;
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  Metrics.time t_eval @@ fun () ->
  Trace.with_span "datalog.eval" @@ fun () ->
  let facts = facts_of_edb edb in
  let set_of = facts_get facts in
  (try
     List.iteri
       (fun stratum rules ->
      Trace.with_span "datalog.stratum"
        ~attrs:[ ("stratum", Trace.Int stratum); ("rules", Trace.Int (List.length rules)) ]
      @@ fun () ->
      let stratum_preds =
        List.map (fun r -> r.head.pred) rules |> List.sort_uniq String.compare
      in
      (* Round 0: naive evaluation seeds the deltas. *)
      let deltas = Hashtbl.create 8 in
      List.iter (fun p -> Hashtbl.replace deltas p (set_create ())) stratum_preds;
      List.iter
        (fun r ->
          check_budget budget;
          let s = facts_set facts r.head.pred in
          let d = Hashtbl.find deltas r.head.pred in
          List.iter
            (fun t ->
              check_budget budget;
              if not (set_mem s t) then begin
                set_add s t;
                set_add d t;
                Metrics.incr m_facts
              end)
            (eval_rule ~set_of r))
        rules;
      let record_deltas () =
        let total = Hashtbl.fold (fun _ d acc -> acc + set_size d) deltas 0 in
        if total > 0 then begin
          Metrics.add m_delta total;
          Metrics.observe h_delta (float_of_int total);
          Trace.bump "delta_tuples" total
        end
      in
      record_deltas ();
      (* Semi-naive rounds: each rule fires once per positive body literal
         of an in-stratum predicate, with that literal reading the delta. *)
      let any_delta () =
        Hashtbl.fold (fun _ d acc -> acc || set_size d > 0) deltas false
      in
      while any_delta () do
        Metrics.incr m_rounds;
        Trace.bump "rounds" 1;
        let new_deltas = Hashtbl.create 8 in
        List.iter (fun p -> Hashtbl.replace new_deltas p (set_create ())) stratum_preds;
        List.iter
          (fun r ->
            List.iteri
              (fun i lit ->
                match lit with
                | Pos a when List.mem a.pred stratum_preds ->
                  let delta = Hashtbl.find deltas a.pred in
                  if set_size delta > 0 then begin
                    check_budget budget;
                    let derived = eval_rule_delta ~set_of ~delta_at:i ~delta r in
                    let s = facts_set facts r.head.pred in
                    let nd = Hashtbl.find new_deltas r.head.pred in
                    List.iter
                      (fun t ->
                        check_budget budget;
                        if not (set_mem s t) then begin
                          set_add s t;
                          set_add nd t;
                          Metrics.incr m_facts
                        end)
                      derived
                  end
                | Pos _ | Neg _ | Cmp _ -> ())
              r.body)
          rules;
        List.iter (fun p -> Hashtbl.replace deltas p (Hashtbl.find new_deltas p)) stratum_preds;
        record_deltas ()
      done)
       (strata_order program)
   with Out_of_budget -> ());
  idb_result program facts

let eval_outcome ~budget ~edb program = Budget.wrap budget (eval ~budget ~edb program)

let query ~edb program pred =
  match List.assoc_opt pred (eval ~edb program) with
  | Some tuples -> tuples
  | None -> []

(* ------------------------------------------------------------------ *)
(* Incremental (semi-naive) maintenance under EDB insertions           *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* A retained model: the full fact table of a completed evaluation,
     advanced in place when new EDB facts arrive.  Insertion-only and
     negation-free: a negation-free program is monotone in its EDB, so
     the delta rounds below compute exactly the new least model minus
     the old one — the same rounds [eval] runs, just seeded from the
     inserted facts instead of from scratch. *)
  type state = {
    program : program;
    facts : (string, tuple_set) Hashtbl.t;
  }

  let m_advances = Metrics.counter "incr.datalog.advances"
  let m_new_facts = Metrics.counter "incr.datalog.new_facts"

  let supported program =
    List.for_all
      (fun r ->
        List.for_all (function Neg _ -> false | Pos _ | Cmp _ -> true) r.body)
      program

  let prepare ~edb program =
    check_safety program;
    if not (supported program) then
      unsafe ~code:"SSD213"
        "incremental maintenance requires a negation-free program";
    let facts = facts_of_edb edb in
    let set_of = facts_get facts in
    (* Negation-free: one stratum; naive rounds to the fixpoint (the
       retained sets make later advances cheap, prepare itself is a
       one-off). *)
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun r ->
          let derived = eval_rule ~set_of r in
          let s = facts_set facts r.head.pred in
          List.iter
            (fun t ->
              if not (set_mem s t) then begin
                set_add s t;
                Metrics.incr m_facts;
                changed := true
              end)
            derived)
        program
    done;
    { program; facts }

  let result st = idb_result st.program st.facts

  (* [advance st ~edb_delta] adds the given EDB facts and propagates;
     returns the {e new} tuples per IDB predicate (possibly empty). *)
  let advance st ~edb_delta =
    Metrics.incr m_advances;
    let set_of = facts_get st.facts in
    let idb =
      List.map (fun r -> r.head.pred) st.program |> List.sort_uniq String.compare
    in
    let fresh : (string, tuple_set) Hashtbl.t = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.replace fresh p (set_create ())) idb;
    (* Seed: genuinely new EDB facts become the first delta. *)
    let deltas : (string, tuple_set) Hashtbl.t = Hashtbl.create 8 in
    let delta_get p =
      match Hashtbl.find_opt deltas p with
      | Some d -> d
      | None ->
        let d = set_create () in
        Hashtbl.add deltas p d;
        d
    in
    List.iter
      (fun (p, tuples) ->
        let s = facts_set st.facts p in
        List.iter
          (fun t ->
            if not (set_mem s t) then begin
              set_add s t;
              set_add (delta_get p) t
            end)
          tuples)
      edb_delta;
    let any_delta () =
      Hashtbl.fold (fun _ d acc -> acc || set_size d > 0) deltas false
    in
    while any_delta () do
      Metrics.incr m_rounds;
      let new_deltas : (string, tuple_set) Hashtbl.t = Hashtbl.create 8 in
      List.iter (fun p -> Hashtbl.replace new_deltas p (set_create ())) idb;
      List.iter
        (fun r ->
          List.iteri
            (fun i lit ->
              match lit with
              | Pos a -> (
                match Hashtbl.find_opt deltas a.pred with
                | Some delta when set_size delta > 0 ->
                  let derived = eval_rule_delta ~set_of ~delta_at:i ~delta r in
                  let s = facts_set st.facts r.head.pred in
                  let nd = Hashtbl.find new_deltas r.head.pred in
                  let acc = Hashtbl.find fresh r.head.pred in
                  List.iter
                    (fun t ->
                      if not (set_mem s t) then begin
                        set_add s t;
                        set_add nd t;
                        set_add acc t;
                        Metrics.incr m_facts;
                        Metrics.incr m_new_facts
                      end)
                    derived
                | _ -> ())
              | Neg _ | Cmp _ -> ())
            r.body)
        st.program;
      Hashtbl.reset deltas;
      Hashtbl.iter (fun p d -> Hashtbl.replace deltas p d) new_deltas
    done;
    List.filter_map
      (fun p ->
        match set_to_list (Hashtbl.find fresh p) with
        | [] -> None
        | tuples -> Some (p, tuples))
      idb
end

(* ------------------------------------------------------------------ *)
(* Statistics-driven body ordering                                     *)
(* ------------------------------------------------------------------ *)

(* Greedy join ordering per rule: repeatedly place the positive literal
   with the smallest estimated binding count (EDB relation size divided
   by 4 per already-bound argument position — each bound position turns
   the scan into an index probe), flushing negations and comparisons as
   soon as their variables are positively bound.  This is opt-in, not
   part of [eval]: derivation order — and thus tuple order — changes,
   which callers relying on byte-identical output must not see. *)
let reorder ~edb program =
  let edb_sizes = List.map (fun (p, tuples) -> (p, List.length tuples)) edb in
  let default_size =
    max 1 (List.fold_left (fun acc (_, n) -> acc + n) 0 edb_sizes)
  in
  let size pred =
    match List.assoc_opt pred edb_sizes with
    | Some n -> n
    | None -> default_size (* IDB: unknown until evaluated *)
  in
  let reorder_body body =
    let lits = Array.of_list body in
    let n = Array.length lits in
    let placed = Array.make n false in
    let bound = Hashtbl.create 8 in
    let is_bound = function Const _ -> true | Var v -> Hashtbl.mem bound v in
    let out = ref [] in
    let flush_guards () =
      (* Negations/comparisons whose variables are all bound filter
         maximally early; original relative order is kept. *)
      for j = 0 to n - 1 do
        if not placed.(j) then
          match lits.(j) with
          | Neg a when List.for_all (fun v -> Hashtbl.mem bound v) (term_vars a.args) ->
            placed.(j) <- true;
            out := lits.(j) :: !out
          | Cmp (_, t1, t2) when is_bound t1 && is_bound t2 ->
            placed.(j) <- true;
            out := lits.(j) :: !out
          | Pos _ | Neg _ | Cmp _ -> ()
      done
    in
    let estimate a =
      let bound_args =
        List.length (List.filter is_bound a.args)
      in
      float_of_int (size a.pred) /. (4.0 ** float_of_int bound_args)
    in
    flush_guards ();
    let remaining = ref true in
    while !remaining do
      let best = ref None in
      for j = 0 to n - 1 do
        if not placed.(j) then
          match lits.(j) with
          | Pos a -> (
            let e = estimate a in
            match !best with
            | Some (_, be) when be <= e -> ()
            | _ -> best := Some (j, e))
          | Neg _ | Cmp _ -> ()
      done;
      match !best with
      | None ->
        (* Only guards left; a safe rule has all their variables bound
           by now. *)
        for j = 0 to n - 1 do
          if not placed.(j) then begin
            placed.(j) <- true;
            out := lits.(j) :: !out
          end
        done;
        remaining := false
      | Some (j, _) ->
        placed.(j) <- true;
        (match lits.(j) with
        | Pos a -> List.iter (fun v -> Hashtbl.replace bound v ()) (term_vars a.args)
        | Neg _ | Cmp _ -> ());
        out := lits.(j) :: !out;
        flush_guards ()
    done;
    List.rev !out
  in
  List.map (fun r -> { r with body = reorder_body r.body }) program
