module Label = Ssd.Label

type row = Label.t array

let compare_row (a : row) (b : row) =
  let na = Array.length a and nb = Array.length b in
  let c = Stdlib.compare na nb in
  if c <> 0 then c
  else
    let rec go i =
      if i >= na then 0
      else
        let c = Label.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

module Row_set = Set.Make (struct
  type t = row

  let compare = compare_row
end)

type t = {
  attrs : string array;
  set : Row_set.t;
}

let create attr_list =
  let attrs = Array.of_list attr_list in
  let sorted = List.sort_uniq String.compare attr_list in
  if List.length sorted <> Array.length attrs then
    Ssd_diag.error ~code:"SSD520" "Relation.create: duplicate attribute names";
  { attrs; set = Row_set.empty }

let attrs r = Array.copy r.attrs
let arity r = Array.length r.attrs
let cardinality r = Row_set.cardinal r.set

let column r a =
  let rec go i =
    if i >= Array.length r.attrs then raise Not_found
    else if r.attrs.(i) = a then i
    else go (i + 1)
  in
  go 0

let add r row =
  if Array.length row <> Array.length r.attrs then
    Ssd_diag.error ~code:"SSD520" "Relation.add: arity mismatch (%d-tuple into a %d-ary relation)"
      (Array.length row) (Array.length r.attrs);
  { r with set = Row_set.add row r.set }

let of_rows attr_list rows = List.fold_left add (create attr_list) rows

let rows r = Row_set.elements r.set
let mem r row = Row_set.mem row r.set
let is_empty r = Row_set.is_empty r.set
let fold f init r = Row_set.fold (fun row acc -> f acc row) r.set init
let iter f r = Row_set.iter f r.set

let equal a b = a.attrs = b.attrs && Row_set.equal a.set b.set

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "%s@," (String.concat " | " (Array.to_list r.attrs));
  iter
    (fun row ->
      Format.fprintf fmt "%s@,"
        (String.concat " | " (List.map Label.to_string (Array.to_list row))))
    r;
  Format.fprintf fmt "@]"

let to_string r = Format.asprintf "%a" pp r
