(** The admin plane of [ssdql serve]: a minimal HTTP/1.0 listener
    serving the live telemetry of the process.

    Endpoints (GET only, one request per connection,
    [Connection: close]):

    - [/metrics] — OpenMetrics exposition of the registry
      ({!Ssd_obs.Export.openmetrics}); [/metrics?format=json] for the
      JSON form.
    - [/healthz] — the health document from the [healthz] callback;
      HTTP 200 when it reports healthy, 503 otherwise.
    - [/varz] — build info, uptime and config from the [varz] callback.
    - [/events?n=K] — the last K (default 20) structured events as
      JSONL ({!Ssd_obs.Events}).

    The listener runs on its own domain and handles connections
    serially — scrapes are small and rare, and keeping the admin plane
    off the worker pool means a wedged scraper can never delay a query.
    Reads are bounded (8 KiB, 5 s) so a byte-dripping client cannot pin
    the domain either. *)

type addr =
  | Unix_sock of string
  | Tcp of string * int

(** Parse ["unix:PATH"] or ["tcp:HOST:PORT"] (empty host means
    127.0.0.1; port 0 binds a free port, see {!bound}). *)
val addr_of_string : string -> (addr, string) result

val addr_to_string : addr -> string

type t

(** [start ?registry ?events ~healthz ~varz addr] binds and begins
    serving.  [healthz] returns the health document and whether to
    answer 200; callbacks run on the admin domain and must be
    domain-safe.  Exceptions from callbacks become HTTP 500. *)
val start :
  ?registry:Ssd_obs.Metrics.registry ->
  ?events:Ssd_obs.Events.log ->
  healthz:(unit -> Ssd.Json.t * bool) ->
  varz:(unit -> Ssd.Json.t) ->
  addr ->
  t

(** The bound address ([Tcp] reports the actual port when 0 was asked). *)
val bound : t -> addr

(** Stop accepting, join the admin domain, close and (for Unix sockets)
    unlink the listener.  Idempotent. *)
val stop : t -> unit
