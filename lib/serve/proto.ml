(* Wire protocol for `ssdql serve` — see proto.mli for the grammar. *)

type verb =
  | Query
  | Update
  | Subscribe
  | Unsubscribe
  | Ping
  | Stats
  | Events
  | Quit

type options = {
  lang : string;
  format : string;
  deadline_ms : float option;
  max_steps : int option;
  cache : bool;
  req_id : string option;
  tenant : string option;
  n : int option;
}

let default_options =
  {
    lang = "unql";
    format = "text";
    deadline_ms = None;
    max_steps = None;
    cache = true;
    req_id = None;
    tenant = None;
    n = None;
  }

type request = {
  verb : verb;
  opts : options;
  body : string;
}

let verb_to_string = function
  | Query -> "QUERY"
  | Update -> "UPDATE"
  | Subscribe -> "SUBSCRIBE"
  | Unsubscribe -> "UNSUBSCRIBE"
  | Ping -> "PING"
  | Stats -> "STATS"
  | Events -> "EVENTS"
  | Quit -> "QUIT"

let verb_of_string = function
  | "QUERY" -> Some Query
  | "UPDATE" -> Some Update
  | "SUBSCRIBE" -> Some Subscribe
  | "UNSUBSCRIBE" -> Some Unsubscribe
  | "PING" -> Some Ping
  | "STATS" -> Some Stats
  | "EVENTS" -> Some Events
  | "QUIT" -> Some Quit
  | _ -> None

(* Diagnostics for malformed frames.  Messages embed the offending bytes
   escaped and truncated: frames come off the network, so they may be
   arbitrary binary. *)
let snippet s =
  let s = if String.length s > 40 then String.sub s 0 40 ^ "..." else s in
  String.escaped s

let malformed fmt =
  Printf.ksprintf
    (fun m -> Result.Error (Ssd_diag.make Ssd_diag.Error ~code:"SSD550" m))
    fmt

let bad_option fmt =
  Printf.ksprintf
    (fun m -> Result.Error (Ssd_diag.make Ssd_diag.Error ~code:"SSD552" m))
    fmt

let parse_options s =
  let pairs = String.split_on_char ',' s in
  let rec go opts = function
    | [] -> Result.Ok opts
    | kv :: rest -> (
      match String.index_opt kv '=' with
      | None -> bad_option "option %S is not key=value" (snippet kv)
      | Some i -> (
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        match k with
        | "lang" ->
          (* shape only; whether the language is supported is the
             engine's call (SSD555), not the protocol's *)
          if v = "" then bad_option "lang wants a value" else go { opts with lang = v } rest
        | "format" -> (
          match v with
          | "text" | "json" -> go { opts with format = v } rest
          | _ -> bad_option "unknown format %S (text|json)" (snippet v))
        | "deadline-ms" -> (
          match float_of_string_opt v with
          | Some f when f > 0. -> go { opts with deadline_ms = Some f } rest
          | _ -> bad_option "deadline-ms wants a positive number, got %S" (snippet v))
        | "max-steps" -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> go { opts with max_steps = Some n } rest
          | _ -> bad_option "max-steps wants a positive integer, got %S" (snippet v))
        | "cache" -> (
          match v with
          | "on" -> go { opts with cache = true } rest
          | "off" -> go { opts with cache = false } rest
          | _ -> bad_option "cache wants on or off, got %S" (snippet v))
        | "id" -> go { opts with req_id = Some v } rest
        | "tenant" ->
          if v = "" then bad_option "tenant wants a value"
          else go { opts with tenant = Some v } rest
        | "n" -> (
          match int_of_string_opt v with
          | Some k when k > 0 -> go { opts with n = Some k } rest
          | _ -> bad_option "n wants a positive integer, got %S" (snippet v))
        | _ -> bad_option "unknown option %S" (snippet k)))
  in
  go default_options pairs

let parse_request line =
  (* Tolerate a trailing \r so `nc -C` / telnet clients work. *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line = "" then malformed "empty request frame"
  else begin
    let verb_str, rest =
      match String.index_opt line ' ' with
      | Some i ->
        (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
      | None -> (line, "")
    in
    match verb_of_string verb_str with
    | None -> malformed "unknown verb %S" (snippet verb_str)
    | Some verb -> (
      let opts_str, body =
        match String.index_opt rest ' ' with
        | Some i ->
          (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
        | None -> (rest, "")
      in
      let needs_body =
        match verb with
        | Query | Update | Subscribe | Unsubscribe -> true
        | _ -> false
      in
      if needs_body && (opts_str = "" || body = "") then
        malformed "%s wants an options field (use \"-\") and a body" verb_str
      else
        let opts_result =
          if opts_str = "" || opts_str = "-" then Result.Ok default_options
          else parse_options opts_str
        in
        match opts_result with
        | Result.Error _ as e -> e
        | Result.Ok opts -> Result.Ok { verb; opts; body })
  end

let render_options o =
  let kvs =
    List.concat
      [
        (if o.lang = default_options.lang then [] else [ "lang=" ^ o.lang ]);
        (if o.format = default_options.format then [] else [ "format=" ^ o.format ]);
        (match o.deadline_ms with
        | None -> []
        | Some f -> [ Printf.sprintf "deadline-ms=%g" f ]);
        (match o.max_steps with
        | None -> []
        | Some n -> [ Printf.sprintf "max-steps=%d" n ]);
        (if o.cache then [] else [ "cache=off" ]);
        (match o.req_id with None -> [] | Some id -> [ "id=" ^ id ]);
        (match o.tenant with None -> [] | Some t -> [ "tenant=" ^ t ]);
        (match o.n with None -> [] | Some k -> [ Printf.sprintf "n=%d" k ]);
      ]
  in
  match kvs with [] -> "-" | _ -> String.concat "," kvs

let render_request r =
  match r.verb with
  | Ping | Stats | Events | Quit -> (
    match render_options r.opts with
    | "-" -> verb_to_string r.verb
    | opts -> Printf.sprintf "%s %s" (verb_to_string r.verb) opts)
  | Query | Update | Subscribe | Unsubscribe ->
    Printf.sprintf "%s %s %s" (verb_to_string r.verb) (render_options r.opts) r.body

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type status =
  | Complete
  | Partial
  | Shed
  | Error
  | Delta

let status_to_string = function
  | Complete -> "complete"
  | Partial -> "partial"
  | Shed -> "shed"
  | Error -> "error"
  | Delta -> "delta"

let status_of_string = function
  | "complete" -> Some Complete
  | "partial" -> Some Partial
  | "shed" -> Some Shed
  | "error" -> Some Error
  | "delta" -> Some Delta
  | _ -> None

type response = {
  status : status;
  detail : string;
  body : string;
}

let response ?(detail = "-") status body = { status; detail; body }

let render_response r =
  Printf.sprintf "SSDQL1 %s %s %d\n%s" (status_to_string r.status) r.detail
    (String.length r.body) r.body

let parse_response buf pos =
  let len = String.length buf in
  if pos > len then Result.Error (`Malformed "position past end of buffer")
  else
    match String.index_from_opt buf pos '\n' with
    | None -> if len - pos > 256 then Result.Error (`Malformed "header too long") else Result.Error `Incomplete
    | Some nl -> (
      let header = String.sub buf pos (nl - pos) in
      match String.split_on_char ' ' header with
      | [ magic; status_str; detail; len_str ] -> (
        if magic <> "SSDQL1" then Result.Error (`Malformed ("bad magic " ^ snippet magic))
        else
          match (status_of_string status_str, int_of_string_opt len_str) with
          | None, _ -> Result.Error (`Malformed ("bad status " ^ snippet status_str))
          | _, None -> Result.Error (`Malformed ("bad length " ^ snippet len_str))
          | _, Some n when n < 0 -> Result.Error (`Malformed "negative length")
          | Some status, Some n ->
            if nl + 1 + n > len then Result.Error `Incomplete
            else
              Result.Ok ({ status; detail; body = String.sub buf (nl + 1) n }, nl + 1 + n))
      | _ -> Result.Error (`Malformed ("bad header " ^ snippet header)))
