(* The admin plane: a minimal HTTP/1.0 listener exposing the telemetry
   of a running `ssdql serve` — GET /metrics (OpenMetrics or JSON),
   /healthz, /varz, /events.  It is deliberately not the data plane:
   its own listener on its own domain, connections handled serially
   (scrapes are rare and tiny), GET only, one response per connection,
   Connection: close.  A wedged scraper can therefore delay the next
   scrape but never a query. *)

module Metrics = Ssd_obs.Metrics
module Export = Ssd_obs.Export
module Events = Ssd_obs.Events

let m_requests = Metrics.counter "admin.requests"
let m_scrapes = Metrics.counter "admin.scrapes"
let m_errors = Metrics.counter "admin.errors"

type addr =
  | Unix_sock of string
  | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Result.Error (Printf.sprintf "admin address %S wants unix:PATH or tcp:HOST:PORT" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" ->
      if rest = "" then Result.Error "unix: wants a socket path"
      else Result.Ok (Unix_sock rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Result.Error "tcp: wants HOST:PORT"
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 -> Result.Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Result.Error (Printf.sprintf "bad tcp port %S" port)))
    | _ -> Result.Error (Printf.sprintf "unknown admin scheme %S (unix|tcp)" scheme))

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  registry : Metrics.registry;
  events : Events.log;
  (* [healthz ()] returns the health document and whether the process
     should report healthy (HTTP 200) or not (503). *)
  healthz : unit -> Ssd.Json.t * bool;
  varz : unit -> Ssd.Json.t;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  addr : addr;
  stopping : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

(* ------------------------------------------------------------------ *)
(* HTTP plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (status_text status) content_type (String.length body) body

(* Percent-decoding is deliberately omitted: every value we accept is a
   small integer or keyword. *)
let parse_query s =
  List.filter_map
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> None
      | Some i ->
        Some (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1)))
    (String.split_on_char '&' s)

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    ( String.sub target 0 i,
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

let route cfg target =
  let path, query = split_target target in
  match path with
  | "/metrics" ->
    Metrics.incr m_scrapes;
    let snap = Metrics.snapshot cfg.registry in
    if List.assoc_opt "format" query = Some "json" then
      (200, "application/json", Export.json snap ^ "\n")
    else
      ( 200,
        "application/openmetrics-text; version=1.0.0; charset=utf-8",
        Export.openmetrics snap )
  | "/healthz" ->
    let doc, ok = cfg.healthz () in
    ((if ok then 200 else 503), "application/json", Ssd.Json.to_string doc ^ "\n")
  | "/varz" -> (200, "application/json", Ssd.Json.to_string (cfg.varz ()) ^ "\n")
  | "/events" ->
    let n =
      match List.assoc_opt "n" query with
      | Some v -> ( match int_of_string_opt v with Some k when k > 0 -> k | _ -> 20)
      | None -> 20
    in
    (200, "application/x-ndjson", Events.tail_jsonl ~n cfg.events)
  | _ -> (404, "text/plain", Printf.sprintf "no route %s\n" path)

(* Read until the header terminator (we ignore bodies: GET only), bounded
   in size and wall-clock so a byte-at-a-time client cannot pin the
   domain. *)
let read_request fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec go () =
    let s = Buffer.contents buf in
    let have_terminator =
      let rec find i =
        match String.index_from_opt s i '\n' with
        | None -> false
        | Some j ->
          let rest = String.length s - j - 1 in
          (rest >= 1 && s.[j + 1] = '\n')
          || (rest >= 2 && s.[j + 1] = '\r' && s.[j + 2] = '\n')
          || find (j + 1)
      in
      find 0
    in
    if have_terminator then Some s
    else if Buffer.length buf > 8192 || Unix.gettimeofday () > deadline then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf > 0 then Some s else None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> None
  in
  go ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let handle_conn cfg fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5. with Unix.Unix_error _ -> ());
  let resp =
    match read_request fd with
    | None -> http_response ~status:400 ~content_type:"text/plain" "malformed request\n"
    | Some req -> (
      let request_line =
        match String.index_opt req '\n' with
        | None -> req
        | Some i -> String.sub req 0 i
      in
      let request_line = String.trim request_line in
      match String.split_on_char ' ' request_line with
      | [ "GET"; target; _ ] | [ "GET"; target ] -> (
        match route cfg target with
        | status, content_type, body -> http_response ~status ~content_type body
        | exception _ ->
          Metrics.incr m_errors;
          http_response ~status:500 ~content_type:"text/plain" "internal error\n")
      | meth :: _ when meth <> "GET" ->
        http_response ~status:405 ~content_type:"text/plain" "GET only\n"
      | _ -> http_response ~status:400 ~content_type:"text/plain" "malformed request line\n")
  in
  Metrics.incr m_requests;
  (try write_all fd resp with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  (* Same nonblocking poll pattern as the data plane's Server: closing
     an fd a domain is blocked in does not reliably wake it; a select
     timeout does. *)
  Unix.set_nonblock t.listener;
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listener ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listener with
        | fd, _ ->
          Unix.clear_nonblock fd;
          handle_conn t.cfg fd
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          ()
        | exception Unix.Unix_error _ -> Atomic.set t.stopping true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> Atomic.set t.stopping true);
      loop ()
    end
  in
  loop ()

let start ?(registry = Metrics.default) ?(events = Events.default) ~healthz ~varz
    addr =
  let cfg = { registry; events; healthz; varz } in
  let domain, sockaddr =
    match addr with
    | Unix_sock path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener sockaddr;
  Unix.listen listener 16;
  let bound_addr =
    match addr with
    | Unix_sock _ -> addr
    | Tcp (host, _) -> (
      match Unix.getsockname listener with
      | Unix.ADDR_INET (_, port) -> Tcp (host, port)
      | _ -> addr)
  in
  let t =
    { cfg; listener; addr = bound_addr; stopping = Atomic.make false; domain = None }
  in
  t.domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let bound t = t.addr

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    match t.addr with
    | Unix_sock path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end
