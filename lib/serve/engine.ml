(* The request engine: one protocol frame in, one response out.  See
   engine.mli for the shared-store and admission-control story. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Budget = Ssd.Budget
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace
module Events = Ssd_obs.Events

let m_requests = Metrics.counter "serve.requests"
let m_accepted = Metrics.counter "serve.accepted"
let m_shed = Metrics.counter "serve.shed"
let m_partial = Metrics.counter "serve.partial"
let m_errors = Metrics.counter "serve.errors"
let m_updates = Metrics.counter "serve.updates"
let m_cache_hits = Metrics.counter "serve.cache_hits"
let m_slow = Metrics.counter "serve.slow_queries"
let m_latency = Metrics.histogram "serve.latency_ns"

(* Per-tenant accounting: labeled metric families, one series per
   tenant label.  Registration is idempotent, so looking the family up
   on every request is one locked hash probe — no tenant table of our
   own to keep consistent. *)
type tenant_counters = {
  tc_requests : Metrics.counter;
  tc_bytes_in : Metrics.counter;
  tc_bytes_out : Metrics.counter;
  tc_steps : Metrics.counter;
  tc_partials : Metrics.counter;
  tc_shed : Metrics.counter;
}

let tenant_counters tenant =
  let lbl = Ssd_obs.Export.label_set [ ("tenant", tenant) ] in
  let c what = Metrics.counter (Printf.sprintf "serve.tenant.%s%s" what lbl) in
  {
    tc_requests = c "requests";
    tc_bytes_in = c "bytes_in";
    tc_bytes_out = c "bytes_out";
    tc_steps = c "steps";
    tc_partials = c "partials";
    tc_shed = c "shed";
  }

let tenant_of (opts : Proto.options) =
  match opts.Proto.tenant with Some t -> t | None -> "default"

type config = {
  max_frame : int;
  shed_at : int;
  pressure_at : int;
  pressure_max_steps : int;
  slow_query_ms : float;
}

let default_config =
  {
    max_frame = 65536;
    shed_at = 64;
    pressure_at = 8;
    pressure_max_steps = 20_000;
    slow_query_ms = 250.;
  }

type store = {
  m : Mutex.t;
  mutable db : Graph.t;
  cache : Unql.Cache.t;
  inflight : int Atomic.t;
  req_seq : int Atomic.t;
  (* Durability hook: called under the lock with the new graph before
     the in-memory swap, so a failed persist leaves memory unchanged. *)
  mutable persist : (Graph.t -> unit) option;
  (* Annotated DataGuide for slow-query cardinality estimates, cached
     by graph fingerprint (building it walks the whole graph; slow
     queries on the same database should pay once). *)
  mutable ann_cache : (int * Ssd_schema.Annotated.t) option;
}

let store ?(cache_capacity = 128) ~db () =
  {
    m = Mutex.create ();
    db;
    cache = Unql.Cache.create ~capacity:cache_capacity ();
    inflight = Atomic.make 0;
    req_seq = Atomic.make 0;
    persist = None;
    ann_cache = None;
  }

let set_persist store f = store.persist <- Some f

let locked store f =
  Mutex.lock store.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.m) f

let store_db store = locked store (fun () -> store.db)
let cache_stats store = locked store (fun () -> Unql.Cache.stats store.cache)

type stats = {
  requests : int;
  accepted : int;
  shed : int;
  partial : int;
  errors : int;
  updates : int;
}

type t = {
  cfg : config;
  st : store;
  (* engine-local counters, guarded by st.m *)
  mutable n_requests : int;
  mutable n_accepted : int;
  mutable n_shed : int;
  mutable n_partial : int;
  mutable n_errors : int;
  mutable n_updates : int;
}

let create ?(config = default_config) st =
  {
    cfg = config;
    st;
    n_requests = 0;
    n_accepted = 0;
    n_shed = 0;
    n_partial = 0;
    n_errors = 0;
    n_updates = 0;
  }

let config t = t.cfg

let stats t =
  locked t.st (fun () ->
      {
        requests = t.n_requests;
        accepted = t.n_accepted;
        shed = t.n_shed;
        partial = t.n_partial;
        errors = t.n_errors;
        updates = t.n_updates;
      })

(* ------------------------------------------------------------------ *)
(* Rendering (matches the ssdql CLI byte-for-byte in text format)      *)
(* ------------------------------------------------------------------ *)

let render_graph_text g = Graph.to_string g ^ "\n"

let render_relation_text r = Relstore.Relation.to_string r ^ "\n"

let render_datalog_text results =
  let buf = Buffer.create 256 in
  List.iter
    (fun (pred, tuples) ->
      Buffer.add_string buf (Printf.sprintf "%s: %d tuples\n" pred (List.length tuples));
      List.iter
        (fun tuple ->
          Buffer.add_string buf
            (Printf.sprintf "  %s(%s)\n" pred
               (String.concat ", " (List.map Label.to_string tuple))))
        tuples)
    results;
  Buffer.contents buf

(* format=json wraps the text rendering in a JSON envelope (the text
   renderers are total on cyclic results, where a tree conversion would
   not be). *)
let render_body (opts : Proto.options) ~status ~detail text =
  if opts.format = "json" then
    Ssd.Json.to_string
      (Ssd.Json.Obj
         [
           ("status", Ssd.Json.String (Proto.status_to_string status));
           ("detail", Ssd.Json.String detail);
           ("result", Ssd.Json.String text);
         ])
    ^ "\n"
  else text

let result_response (opts : Proto.options) outcome_text =
  let status, detail, text =
    match outcome_text with
    | Budget.Complete text -> (Proto.Complete, "-", text)
    | Budget.Partial (text, why) ->
      (Proto.Partial, Budget.exhaustion_to_string why, text)
  in
  Proto.response ~detail status (render_body opts ~status ~detail text)

let error_response (opts : Proto.options) (d : Ssd_diag.t) =
  let text = Ssd_diag.to_string d ^ "\n" in
  Proto.response ~detail:d.Ssd_diag.code Proto.Error
    (render_body opts ~status:Proto.Error ~detail:d.Ssd_diag.code text)

let shed_response (opts : Proto.options) load =
  let text =
    Printf.sprintf "warning[SSD554] server overloaded (load %d), request shed; retry later\n"
      load
  in
  Proto.response ~detail:"SSD554" Proto.Shed
    (render_body opts ~status:Proto.Shed ~detail:"SSD554" text)

(* Any exception that escapes parsing or evaluation becomes an SSD553
   error response; diagnostics keep their own code. *)
let diag_of_exn = function
  | Ssd_diag.Fail d -> d
  | e ->
    Ssd_diag.make Ssd_diag.Error ~code:"SSD553"
      (Printf.sprintf "request failed: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)
(* ------------------------------------------------------------------ *)

(* Effective budget for this request: the client's own limits, with the
   step budget clamped to [pressure_max_steps] when the server is under
   pressure.  [None] means unbudgeted. *)
let effective_budget cfg (opts : Proto.options) ~pressured =
  let max_steps =
    match (opts.max_steps, pressured) with
    | Some n, true -> Some (min n cfg.pressure_max_steps)
    | Some n, false -> Some n
    | None, true -> Some cfg.pressure_max_steps
    | None, false -> None
  in
  match (opts.deadline_ms, max_steps) with
  | None, None -> None
  | deadline_ms, _ -> Some (Budget.create ?deadline_ms ?max_steps ())

let map_outcome f = function
  | Budget.Complete v -> Budget.Complete (f v)
  | Budget.Partial (v, why) -> Budget.Partial (f v, why)

(* Lint before evaluating: a query the static analyzer rejects gets an
   error frame whose detail token is the concrete diagnostic code (and
   whose body carries the span) — SSD001/002/003 for syntax, the SSDxxx
   hygiene/safety codes otherwise — instead of the generic SSD553 the
   escaping runtime exception would produce.  The check runs without the
   database (no DataGuide build on the request path), so it is cheap and
   purely syntactic/hygienic; zero Error-severity findings means the
   evaluators do not raise on this query (see Ssd_lint). *)
let lint_gate (opts : Proto.options) body =
  let lang =
    match opts.lang with
    | "unql" -> Some Ssd_lint.Unql
    | "lorel" -> Some Ssd_lint.Lorel
    | "datalog" -> Some Ssd_lint.Datalog
    | _ -> None
  in
  match lang with
  | None -> ()
  | Some lang -> (
    let r = Ssd_lint.check_src ~lang body in
    match
      List.find_opt
        (fun d -> d.Ssd_diag.severity = Ssd_diag.Error)
        r.Ssd_lint.diags
    with
    | Some d -> raise (Ssd_diag.Fail d)
    | None -> ())

(* Root fanout of the result — the "actual cardinality" the slow-query
   event reports against the static estimate (same convention as
   [ssdql explain]). *)
let n_rows g = List.length (Graph.labeled_succ g (Graph.root g))

let eval_query ?(rows = ref None) t ~db ~budget (opts : Proto.options) body =
  lint_gate opts body;
  let render_rows g =
    rows := Some (n_rows g);
    render_graph_text g
  in
  match opts.lang with
  | "unql" -> (
    let q = Unql.Parser.parse body in
    match budget with
    | Some b -> map_outcome render_rows (Unql.Eval.eval_outcome ~budget:b ~db q)
    | None ->
      if opts.cache then begin
        match locked t.st (fun () -> Unql.Cache.find t.st.cache ~db q) with
        | Some g ->
          Metrics.incr m_cache_hits;
          Trace.bump "cache_hit" 1;
          Budget.Complete (render_rows g)
        | None ->
          let g = Unql.Eval.eval ~db q in
          locked t.st (fun () -> Unql.Cache.add t.st.cache ~db q g);
          Budget.Complete (render_rows g)
      end
      else Budget.Complete (render_rows (Unql.Eval.eval ~db q)))
  | "lorel" -> (
    let q = Lorel.Parser.parse body in
    match budget with
    | Some b -> map_outcome render_rows (Lorel.Eval.eval_outcome ~budget:b ~db q)
    | None -> Budget.Complete (render_rows (Lorel.Eval.eval ~db q)))
  | "datalog" -> (
    let program = Relstore.Datalog.parse body in
    let edb = Relstore.Triple.edb db in
    let render_tuples results =
      rows :=
        Some (List.fold_left (fun a (_, ts) -> a + List.length ts) 0 results);
      render_datalog_text results
    in
    match budget with
    | Some b ->
      map_outcome render_tuples (Relstore.Datalog.eval_outcome ~budget:b ~edb program)
    | None -> Budget.Complete (render_tuples (Relstore.Datalog.eval ~edb program)))
  | "websql" ->
    (* websql has no budget hooks; budgets are ignored, like the CLI. *)
    Budget.Complete (render_relation_text (Websql.Eval.run ~db body))
  | other ->
    raise
      (Ssd_diag.Fail
         (Ssd_diag.make Ssd_diag.Error ~code:"SSD555"
            (Printf.sprintf "unsupported query language %S" other)))

(* ------------------------------------------------------------------ *)
(* Slow-query telemetry                                                *)
(* ------------------------------------------------------------------ *)

let annotated_for t db =
  let fp = Unql.Cache.fingerprint db in
  locked t.st (fun () ->
      match t.st.ann_cache with
      | Some (fp', ann) when fp' = fp -> ann
      | _ ->
        let ann = Ssd_schema.Annotated.build db in
        t.st.ann_cache <- Some (fp, ann);
        ann)

(* Static estimate + planned form for the slow-query event.  Runs only
   for queries already past the slowness threshold, so re-parsing is
   noise; any failure degrades to "no estimate", never to a failed
   response. *)
let estimate t ~db (opts : Proto.options) body =
  try
    match opts.lang with
    | "unql" ->
      let ann = annotated_for t db in
      let q = Unql.Parser.parse body in
      let card = Ssd_lint.Card.check_unql ann q in
      let plan =
        Unql.Pretty.expr_to_string (Unql.Optimize.reorder_generators ann q)
      in
      (card.Ssd_lint.Card.est_total, Some plan)
    | "lorel" ->
      let ann = annotated_for t db in
      let q = Lorel.Parser.parse body in
      ((Ssd_lint.Card.check_lorel ann q).Ssd_lint.Card.est_total, None)
    | "datalog" ->
      let ann = annotated_for t db in
      let program = Relstore.Datalog.parse body in
      ((Ssd_lint.Card.check_datalog ann program).Ssd_lint.Card.est_total, None)
    | _ -> (None, None)
  with _ -> (None, None)

let truncate_query q =
  if String.length q <= 200 then q else String.sub q 0 200 ^ "..."

let slow_query_event t ~db ~dt_ns ~steps ~rows (opts : Proto.options) body
    (resp : Proto.response) =
  Metrics.incr m_slow;
  let est, plan = estimate t ~db opts body in
  let module J = Ssd.Json in
  let opt_field name = function Some v -> [ (name, v) ] | None -> [] in
  Events.emit Events.default "slow_query"
    (List.concat
       [
         [
           ("tenant", J.String (tenant_of opts));
           ("lang", J.String opts.Proto.lang);
           ("query", J.String (truncate_query body));
           ("latency_ms", J.Float (dt_ns /. 1e6));
           ("status", J.String (Proto.status_to_string resp.Proto.status));
           ("detail", J.String resp.Proto.detail);
         ]
         ;
         opt_field "steps" (Option.map (fun s -> J.Int s) steps);
         opt_field "est_rows" (Option.map (fun e -> J.Float e) est);
         opt_field "actual_rows" (Option.map (fun r -> J.Int r) rows);
         opt_field "plan" (Option.map (fun p -> J.String p) plan);
         opt_field "id"
           (Option.map (fun i -> J.String i) opts.Proto.req_id);
       ])

let do_query t ~queued (opts : Proto.options) body =
  let tc = tenant_counters (tenant_of opts) in
  let load = queued + Atomic.get t.st.inflight in
  if load > t.cfg.shed_at then begin
    locked t.st (fun () -> t.n_shed <- t.n_shed + 1);
    Metrics.incr m_shed;
    Metrics.incr tc.tc_shed;
    Trace.annotate "shed" (Trace.Bool true);
    Events.emit Events.default "admission.shed"
      [
        ("tenant", Ssd.Json.String (tenant_of opts));
        ("load", Ssd.Json.Int load);
        ("shed_at", Ssd.Json.Int t.cfg.shed_at);
      ];
    shed_response opts load
  end
  else begin
    let pressured = load > t.cfg.pressure_at in
    if pressured then
      Events.emit Events.default "admission.clamp"
        [
          ("tenant", Ssd.Json.String (tenant_of opts));
          ("load", Ssd.Json.Int load);
          ("max_steps", Ssd.Json.Int t.cfg.pressure_max_steps);
        ];
    Atomic.incr t.st.inflight;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.st.inflight)
      (fun () ->
        let db = locked t.st (fun () -> t.st.db) in
        let budget = effective_budget t.cfg opts ~pressured in
        let rows = ref None in
        let t0 = Ssd_obs.Clock.now_ns () in
        match eval_query ~rows t ~db ~budget opts body with
        | outcome ->
          let dt_ns = Ssd_obs.Clock.now_ns () -. t0 in
          let steps = Option.map Budget.steps_used budget in
          (match steps with Some s -> Metrics.add tc.tc_steps s | None -> ());
          locked t.st (fun () ->
              t.n_accepted <- t.n_accepted + 1;
              match outcome with
              | Budget.Partial _ -> t.n_partial <- t.n_partial + 1
              | Budget.Complete _ -> ());
          Metrics.incr m_accepted;
          (match outcome with
          | Budget.Partial _ ->
            Metrics.incr m_partial;
            Metrics.incr tc.tc_partials
          | Budget.Complete _ -> ());
          let resp = result_response opts outcome in
          if dt_ns >= t.cfg.slow_query_ms *. 1e6 then
            slow_query_event t ~db ~dt_ns ~steps ~rows:!rows opts body resp;
          resp
        | exception e ->
          locked t.st (fun () -> t.n_errors <- t.n_errors + 1);
          Metrics.incr m_errors;
          error_response opts (diag_of_exn e))
  end

(* UPDATE holds the store lock for the whole parse+apply+swap: updates
   serialize against each other and against cache fills, and the
   database-of-record plus the invalidation are one atomic step — no
   engine over this store can observe the new graph with the old graph's
   cache entries still live. *)
let do_update t (opts : Proto.options) body =
  match
    locked t.st (fun () ->
        let old_db = t.st.db in
        let db' = Lorel.Update.run ~db:old_db body in
        (* Persist before swap: a failed write leaves memory (and the
           cache) exactly as it was, and the error propagates as the
           response.  The persist layer (Store.commit) acknowledges only
           after its WAL fsync, so a successful UPDATE response implies
           the change survives a crash. *)
        (match t.st.persist with Some f -> f db' | None -> ());
        let dropped = Unql.Cache.invalidate t.st.cache old_db in
        t.st.db <- db';
        t.n_updates <- t.n_updates + 1;
        (db', dropped))
  with
  | db', dropped ->
    Metrics.incr m_updates;
    Events.emit Events.default "cache.invalidate"
      [
        ("tenant", Ssd.Json.String (tenant_of opts));
        ("dropped", Ssd.Json.Int dropped);
        ("nodes", Ssd.Json.Int (Graph.n_nodes db'));
        ("edges", Ssd.Json.Int (Graph.n_edges db'));
      ];
    let text =
      Printf.sprintf "updated: %d nodes, %d edges; %d cache entries invalidated\n"
        (Graph.n_nodes db') (Graph.n_edges db') dropped
    in
    Proto.response Proto.Complete (render_body opts ~status:Proto.Complete ~detail:"-" text)
  | exception e ->
    locked t.st (fun () -> t.n_errors <- t.n_errors + 1);
    Metrics.incr m_errors;
    error_response opts (diag_of_exn e)

(* ------------------------------------------------------------------ *)
(* Frame dispatch                                                      *)
(* ------------------------------------------------------------------ *)

(* STATS body: the full registry snapshot (exactly what the admin plane
   serves on GET /metrics?format=json) with an extra "engine" section —
   one source of truth for protocol clients and HTTP scrapers. *)
let stats_body t =
  let module J = Ssd.Json in
  let s = stats t in
  let engine =
    J.Obj
      [
        ("requests", J.Int s.requests);
        ("accepted", J.Int s.accepted);
        ("shed", J.Int s.shed);
        ("partial", J.Int s.partial);
        ("errors", J.Int s.errors);
        ("updates", J.Int s.updates);
      ]
  in
  let snap = Metrics.snapshot_to_json (Metrics.snapshot Metrics.default) in
  let doc =
    match snap with
    | J.Obj fields -> J.Obj (fields @ [ ("engine", engine) ])
    | other -> other
  in
  J.to_string doc ^ "\n"

let dispatch t ~queued raw =
  if String.length raw > t.cfg.max_frame then
    (* The stream cannot be resynchronized reliably past an oversized
       frame, so the transport closes after this response. *)
    ( error_response Proto.default_options
        (Ssd_diag.make Ssd_diag.Error ~code:"SSD551"
           (Printf.sprintf "frame of %d bytes exceeds the %d byte limit"
              (String.length raw) t.cfg.max_frame)),
      true,
      Proto.default_options )
  else
    match Proto.parse_request raw with
    | Result.Error d -> (error_response Proto.default_options d, false, Proto.default_options)
    | Result.Ok { Proto.verb; opts; body } -> (
      (match opts.Proto.req_id with
      | Some id -> Trace.annotate "id" (Trace.Str id)
      | None -> ());
      Trace.annotate "verb" (Trace.Str (Proto.verb_to_string verb));
      match verb with
      | Proto.Query -> (do_query t ~queued opts body, false, opts)
      | Proto.Update -> (do_update t opts body, false, opts)
      | Proto.Ping -> (Proto.response Proto.Complete "pong\n", false, opts)
      | Proto.Stats -> (Proto.response Proto.Complete (stats_body t), false, opts)
      | Proto.Events ->
        ( Proto.response Proto.Complete
            (Events.tail_jsonl ?n:opts.Proto.n Events.default),
          false,
          opts )
      | Proto.Quit -> (Proto.response Proto.Complete "bye\n", true, opts))

let handle ?lane ?(queued = 0) t raw =
  let seq = Atomic.fetch_and_add t.st.req_seq 1 + 1 in
  let t0 = Ssd_obs.Clock.now_ns () in
  let resp, close, opts =
    Trace.with_span ?lane "serve.request" ~attrs:[ ("seq", Trace.Int seq) ] (fun () ->
        let ((resp, _, _) as r) =
          try dispatch t ~queued raw
          with e ->
            (* dispatch catches per-verb; this is the last-resort net so
               the accept loop can never be wedged by a request. *)
            (error_response Proto.default_options (diag_of_exn e), false,
             Proto.default_options)
        in
        Trace.annotate "status" (Trace.Str (Proto.status_to_string resp.Proto.status));
        r)
  in
  let dt = Ssd_obs.Clock.now_ns () -. t0 in
  Metrics.incr m_requests;
  Metrics.observe m_latency dt;
  let tc = tenant_counters (tenant_of opts) in
  Metrics.incr tc.tc_requests;
  Metrics.add tc.tc_bytes_in (String.length raw);
  Metrics.add tc.tc_bytes_out (String.length resp.Proto.body);
  locked t.st (fun () -> t.n_requests <- t.n_requests + 1);
  (resp, close)

let handle_line ?lane ?queued t raw =
  let resp, _close = handle ?lane ?queued t raw in
  Proto.render_response resp
