(* The request engine: one protocol frame in, one response out.  See
   engine.mli for the shared-store and admission-control story. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Budget = Ssd.Budget
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace
module Events = Ssd_obs.Events

let m_requests = Metrics.counter "serve.requests"
let m_accepted = Metrics.counter "serve.accepted"
let m_shed = Metrics.counter "serve.shed"
let m_partial = Metrics.counter "serve.partial"
let m_errors = Metrics.counter "serve.errors"
let m_updates = Metrics.counter "serve.updates"
let m_cache_hits = Metrics.counter "serve.cache_hits"
let m_slow = Metrics.counter "serve.slow_queries"
let m_latency = Metrics.histogram "serve.latency_ns"

(* Live-subscription telemetry (the incr.* family, alongside the
   maintenance counters lib/incr and Unql.Cache register). *)
let g_subs = Metrics.gauge "incr.sub.active"
let m_sub_pushes = Metrics.counter "incr.sub.pushes"
let m_sub_skips = Metrics.counter "incr.sub.skips"
let m_sub_evals = Metrics.counter "incr.sub.evals"
let m_sub_unchanged = Metrics.counter "incr.sub.unchanged"

(* Per-tenant accounting: labeled metric families, one series per
   tenant label.  Registration is idempotent, so looking the family up
   on every request is one locked hash probe — no tenant table of our
   own to keep consistent. *)
type tenant_counters = {
  tc_requests : Metrics.counter;
  tc_bytes_in : Metrics.counter;
  tc_bytes_out : Metrics.counter;
  tc_steps : Metrics.counter;
  tc_partials : Metrics.counter;
  tc_shed : Metrics.counter;
}

let tenant_counters tenant =
  let lbl = Ssd_obs.Export.label_set [ ("tenant", tenant) ] in
  let c what = Metrics.counter (Printf.sprintf "serve.tenant.%s%s" what lbl) in
  {
    tc_requests = c "requests";
    tc_bytes_in = c "bytes_in";
    tc_bytes_out = c "bytes_out";
    tc_steps = c "steps";
    tc_partials = c "partials";
    tc_shed = c "shed";
  }

let tenant_of (opts : Proto.options) =
  match opts.Proto.tenant with Some t -> t | None -> "default"

type config = {
  max_frame : int;
  shed_at : int;
  pressure_at : int;
  pressure_max_steps : int;
  slow_query_ms : float;
}

let default_config =
  {
    max_frame = 65536;
    shed_at = 64;
    pressure_at = 8;
    pressure_max_steps = 20_000;
    slow_query_ms = 250.;
  }

(* A live subscription: a registered query re-checked on every
   committed UPDATE.  [sub_last] is the text rendering of its current
   result — pushes happen exactly when that rendering changes, so the
   stream of frames is the stream of distinct results. *)
type sub = {
  sub_id : int;
  sub_conn : int option; (* owning transport connection, for teardown *)
  sub_opts : Proto.options;
  sub_qtext : string;
  sub_fp : Unql.Footprint.t;
  sub_kind : sub_kind;
  sub_push : string -> unit; (* a rendered frame, written by the transport *)
  mutable sub_seq : int;
  mutable sub_last : string;
}

and sub_kind =
  | Sub_unql of Unql.Ast.expr
  | Sub_datalog of {
      dprog : Relstore.Datalog.program;
      (* retained model, advanced semi-naively on monotone ε-free
         deltas and re-prepared otherwise *)
      mutable dstate : Relstore.Datalog.Incremental.state;
    }

type store = {
  m : Mutex.t;
  mutable db : Graph.t;
  cache : Unql.Cache.t;
  inflight : int Atomic.t;
  req_seq : int Atomic.t;
  (* Durability hook: called under the lock with the new graph before
     the in-memory swap, so a failed persist leaves memory unchanged. *)
  mutable persist : (Graph.t -> unit) option;
  (* Annotated DataGuide for slow-query cardinality estimates, cached
     by graph fingerprint (building it walks the whole graph; slow
     queries on the same database should pay once). *)
  mutable ann_cache : (int * Ssd_schema.Annotated.t) option;
  (* Live subscriptions, shared across engines over this store (an
     UPDATE through any engine notifies them all); guarded by [m]. *)
  subs : (int, sub) Hashtbl.t;
  next_sub : int Atomic.t;
  (* Query-footprint memo for cache revalidation: one analysis per
     distinct normalized query text, not per update. *)
  fp_memo : (string, Unql.Footprint.t) Hashtbl.t;
}

let store ?(cache_capacity = 128) ~db () =
  {
    m = Mutex.create ();
    db;
    cache = Unql.Cache.create ~capacity:cache_capacity ();
    inflight = Atomic.make 0;
    req_seq = Atomic.make 0;
    persist = None;
    ann_cache = None;
    subs = Hashtbl.create 16;
    next_sub = Atomic.make 0;
    fp_memo = Hashtbl.create 64;
  }

let set_persist store f = store.persist <- Some f

let locked store f =
  Mutex.lock store.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock store.m) f

let store_db store = locked store (fun () -> store.db)
let cache_stats store = locked store (fun () -> Unql.Cache.stats store.cache)

type stats = {
  requests : int;
  accepted : int;
  shed : int;
  partial : int;
  errors : int;
  updates : int;
}

type t = {
  cfg : config;
  st : store;
  (* engine-local counters, guarded by st.m *)
  mutable n_requests : int;
  mutable n_accepted : int;
  mutable n_shed : int;
  mutable n_partial : int;
  mutable n_errors : int;
  mutable n_updates : int;
}

let create ?(config = default_config) st =
  {
    cfg = config;
    st;
    n_requests = 0;
    n_accepted = 0;
    n_shed = 0;
    n_partial = 0;
    n_errors = 0;
    n_updates = 0;
  }

let config t = t.cfg

let stats t =
  locked t.st (fun () ->
      {
        requests = t.n_requests;
        accepted = t.n_accepted;
        shed = t.n_shed;
        partial = t.n_partial;
        errors = t.n_errors;
        updates = t.n_updates;
      })

(* ------------------------------------------------------------------ *)
(* Rendering (matches the ssdql CLI byte-for-byte in text format)      *)
(* ------------------------------------------------------------------ *)

let render_graph_text g = Graph.to_string g ^ "\n"

let render_relation_text r = Relstore.Relation.to_string r ^ "\n"

let render_datalog_text results =
  let buf = Buffer.create 256 in
  List.iter
    (fun (pred, tuples) ->
      Buffer.add_string buf (Printf.sprintf "%s: %d tuples\n" pred (List.length tuples));
      List.iter
        (fun tuple ->
          Buffer.add_string buf
            (Printf.sprintf "  %s(%s)\n" pred
               (String.concat ", " (List.map Label.to_string tuple))))
        tuples)
    results;
  Buffer.contents buf

(* format=json wraps the text rendering in a JSON envelope (the text
   renderers are total on cyclic results, where a tree conversion would
   not be). *)
let render_body (opts : Proto.options) ~status ~detail text =
  if opts.format = "json" then
    Ssd.Json.to_string
      (Ssd.Json.Obj
         [
           ("status", Ssd.Json.String (Proto.status_to_string status));
           ("detail", Ssd.Json.String detail);
           ("result", Ssd.Json.String text);
         ])
    ^ "\n"
  else text

let result_response (opts : Proto.options) outcome_text =
  let status, detail, text =
    match outcome_text with
    | Budget.Complete text -> (Proto.Complete, "-", text)
    | Budget.Partial (text, why) ->
      (Proto.Partial, Budget.exhaustion_to_string why, text)
  in
  Proto.response ~detail status (render_body opts ~status ~detail text)

let error_response (opts : Proto.options) (d : Ssd_diag.t) =
  let text = Ssd_diag.to_string d ^ "\n" in
  Proto.response ~detail:d.Ssd_diag.code Proto.Error
    (render_body opts ~status:Proto.Error ~detail:d.Ssd_diag.code text)

let shed_response (opts : Proto.options) load =
  let text =
    Printf.sprintf "warning[SSD554] server overloaded (load %d), request shed; retry later\n"
      load
  in
  Proto.response ~detail:"SSD554" Proto.Shed
    (render_body opts ~status:Proto.Shed ~detail:"SSD554" text)

(* Any exception that escapes parsing or evaluation becomes an SSD553
   error response; diagnostics keep their own code. *)
let diag_of_exn = function
  | Ssd_diag.Fail d
  | Relstore.Datalog.Unsafe d
  | Relstore.Datalog.Not_stratified d ->
    d
  | e ->
    Ssd_diag.make Ssd_diag.Error ~code:"SSD553"
      (Printf.sprintf "request failed: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)
(* ------------------------------------------------------------------ *)

(* Effective budget for this request: the client's own limits, with the
   step budget clamped to [pressure_max_steps] when the server is under
   pressure.  [None] means unbudgeted. *)
let effective_budget cfg (opts : Proto.options) ~pressured =
  let max_steps =
    match (opts.max_steps, pressured) with
    | Some n, true -> Some (min n cfg.pressure_max_steps)
    | Some n, false -> Some n
    | None, true -> Some cfg.pressure_max_steps
    | None, false -> None
  in
  match (opts.deadline_ms, max_steps) with
  | None, None -> None
  | deadline_ms, _ -> Some (Budget.create ?deadline_ms ?max_steps ())

let map_outcome f = function
  | Budget.Complete v -> Budget.Complete (f v)
  | Budget.Partial (v, why) -> Budget.Partial (f v, why)

(* Lint before evaluating: a query the static analyzer rejects gets an
   error frame whose detail token is the concrete diagnostic code (and
   whose body carries the span) — SSD001/002/003 for syntax, the SSDxxx
   hygiene/safety codes otherwise — instead of the generic SSD553 the
   escaping runtime exception would produce.  The check runs without the
   database (no DataGuide build on the request path), so it is cheap and
   purely syntactic/hygienic; zero Error-severity findings means the
   evaluators do not raise on this query (see Ssd_lint). *)
let lint_gate (opts : Proto.options) body =
  let lang =
    match opts.lang with
    | "unql" -> Some Ssd_lint.Unql
    | "lorel" -> Some Ssd_lint.Lorel
    | "datalog" -> Some Ssd_lint.Datalog
    | _ -> None
  in
  match lang with
  | None -> ()
  | Some lang -> (
    let r = Ssd_lint.check_src ~lang body in
    match
      List.find_opt
        (fun d -> d.Ssd_diag.severity = Ssd_diag.Error)
        r.Ssd_lint.diags
    with
    | Some d -> raise (Ssd_diag.Fail d)
    | None -> ())

(* Root fanout of the result — the "actual cardinality" the slow-query
   event reports against the static estimate (same convention as
   [ssdql explain]). *)
let n_rows g = List.length (Graph.labeled_succ g (Graph.root g))

let eval_query ?(rows = ref None) t ~db ~budget (opts : Proto.options) body =
  lint_gate opts body;
  let render_rows g =
    rows := Some (n_rows g);
    render_graph_text g
  in
  match opts.lang with
  | "unql" -> (
    let q = Unql.Parser.parse body in
    match budget with
    | Some b -> map_outcome render_rows (Unql.Eval.eval_outcome ~budget:b ~db q)
    | None ->
      if opts.cache then begin
        match locked t.st (fun () -> Unql.Cache.find t.st.cache ~db q) with
        | Some g ->
          Metrics.incr m_cache_hits;
          Trace.bump "cache_hit" 1;
          Budget.Complete (render_rows g)
        | None ->
          let g = Unql.Eval.eval ~db q in
          locked t.st (fun () -> Unql.Cache.add t.st.cache ~db q g);
          Budget.Complete (render_rows g)
      end
      else Budget.Complete (render_rows (Unql.Eval.eval ~db q)))
  | "lorel" -> (
    let q = Lorel.Parser.parse body in
    match budget with
    | Some b -> map_outcome render_rows (Lorel.Eval.eval_outcome ~budget:b ~db q)
    | None -> Budget.Complete (render_rows (Lorel.Eval.eval ~db q)))
  | "datalog" -> (
    let program = Relstore.Datalog.parse body in
    let edb = Relstore.Triple.edb db in
    let render_tuples results =
      rows :=
        Some (List.fold_left (fun a (_, ts) -> a + List.length ts) 0 results);
      render_datalog_text results
    in
    match budget with
    | Some b ->
      map_outcome render_tuples (Relstore.Datalog.eval_outcome ~budget:b ~edb program)
    | None -> Budget.Complete (render_tuples (Relstore.Datalog.eval ~edb program)))
  | "websql" ->
    (* websql has no budget hooks; budgets are ignored, like the CLI. *)
    Budget.Complete (render_relation_text (Websql.Eval.run ~db body))
  | other ->
    raise
      (Ssd_diag.Fail
         (Ssd_diag.make Ssd_diag.Error ~code:"SSD555"
            (Printf.sprintf "unsupported query language %S" other)))

(* ------------------------------------------------------------------ *)
(* Slow-query telemetry                                                *)
(* ------------------------------------------------------------------ *)

let annotated_for t db =
  let fp = Unql.Cache.fingerprint db in
  locked t.st (fun () ->
      match t.st.ann_cache with
      | Some (fp', ann) when fp' = fp -> ann
      | _ ->
        let ann = Ssd_schema.Annotated.build db in
        t.st.ann_cache <- Some (fp, ann);
        ann)

(* Static estimate + planned form for the slow-query event.  Runs only
   for queries already past the slowness threshold, so re-parsing is
   noise; any failure degrades to "no estimate", never to a failed
   response. *)
let estimate t ~db (opts : Proto.options) body =
  try
    match opts.lang with
    | "unql" ->
      let ann = annotated_for t db in
      let q = Unql.Parser.parse body in
      let card = Ssd_lint.Card.check_unql ann q in
      let plan =
        Unql.Pretty.expr_to_string (Unql.Optimize.reorder_generators ann q)
      in
      (card.Ssd_lint.Card.est_total, Some plan)
    | "lorel" ->
      let ann = annotated_for t db in
      let q = Lorel.Parser.parse body in
      ((Ssd_lint.Card.check_lorel ann q).Ssd_lint.Card.est_total, None)
    | "datalog" ->
      let ann = annotated_for t db in
      let program = Relstore.Datalog.parse body in
      ((Ssd_lint.Card.check_datalog ann program).Ssd_lint.Card.est_total, None)
    | _ -> (None, None)
  with _ -> (None, None)

let truncate_query q =
  if String.length q <= 200 then q else String.sub q 0 200 ^ "..."

let slow_query_event t ~db ~dt_ns ~steps ~rows (opts : Proto.options) body
    (resp : Proto.response) =
  Metrics.incr m_slow;
  let est, plan = estimate t ~db opts body in
  let module J = Ssd.Json in
  let opt_field name = function Some v -> [ (name, v) ] | None -> [] in
  Events.emit Events.default "slow_query"
    (List.concat
       [
         [
           ("tenant", J.String (tenant_of opts));
           ("lang", J.String opts.Proto.lang);
           ("query", J.String (truncate_query body));
           ("latency_ms", J.Float (dt_ns /. 1e6));
           ("status", J.String (Proto.status_to_string resp.Proto.status));
           ("detail", J.String resp.Proto.detail);
         ]
         ;
         opt_field "steps" (Option.map (fun s -> J.Int s) steps);
         opt_field "est_rows" (Option.map (fun e -> J.Float e) est);
         opt_field "actual_rows" (Option.map (fun r -> J.Int r) rows);
         opt_field "plan" (Option.map (fun p -> J.String p) plan);
         opt_field "id"
           (Option.map (fun i -> J.String i) opts.Proto.req_id);
       ])

let do_query t ~queued (opts : Proto.options) body =
  let tc = tenant_counters (tenant_of opts) in
  let load = queued + Atomic.get t.st.inflight in
  if load > t.cfg.shed_at then begin
    locked t.st (fun () -> t.n_shed <- t.n_shed + 1);
    Metrics.incr m_shed;
    Metrics.incr tc.tc_shed;
    Trace.annotate "shed" (Trace.Bool true);
    Events.emit Events.default "admission.shed"
      [
        ("tenant", Ssd.Json.String (tenant_of opts));
        ("load", Ssd.Json.Int load);
        ("shed_at", Ssd.Json.Int t.cfg.shed_at);
      ];
    shed_response opts load
  end
  else begin
    let pressured = load > t.cfg.pressure_at in
    if pressured then
      Events.emit Events.default "admission.clamp"
        [
          ("tenant", Ssd.Json.String (tenant_of opts));
          ("load", Ssd.Json.Int load);
          ("max_steps", Ssd.Json.Int t.cfg.pressure_max_steps);
        ];
    Atomic.incr t.st.inflight;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.st.inflight)
      (fun () ->
        let db = locked t.st (fun () -> t.st.db) in
        let budget = effective_budget t.cfg opts ~pressured in
        let rows = ref None in
        let t0 = Ssd_obs.Clock.now_ns () in
        match eval_query ~rows t ~db ~budget opts body with
        | outcome ->
          let dt_ns = Ssd_obs.Clock.now_ns () -. t0 in
          let steps = Option.map Budget.steps_used budget in
          (match steps with Some s -> Metrics.add tc.tc_steps s | None -> ());
          locked t.st (fun () ->
              t.n_accepted <- t.n_accepted + 1;
              match outcome with
              | Budget.Partial _ -> t.n_partial <- t.n_partial + 1
              | Budget.Complete _ -> ());
          Metrics.incr m_accepted;
          (match outcome with
          | Budget.Partial _ ->
            Metrics.incr m_partial;
            Metrics.incr tc.tc_partials
          | Budget.Complete _ -> ());
          let resp = result_response opts outcome in
          if dt_ns >= t.cfg.slow_query_ms *. 1e6 then
            slow_query_event t ~db ~dt_ns ~steps ~rows:!rows opts body resp;
          resp
        | exception e ->
          locked t.st (fun () -> t.n_errors <- t.n_errors + 1);
          Metrics.incr m_errors;
          error_response opts (diag_of_exn e))
  end

(* ------------------------------------------------------------------ *)
(* Live subscriptions                                                  *)
(* ------------------------------------------------------------------ *)

(* Datalog subscription results are rendered with predicates and tuples
   sorted: the retained incremental model derives tuples in a different
   order than a scratch evaluation, and canonical frames let clients
   (and the differential tests) byte-compare them. *)
let render_datalog_sorted results =
  render_datalog_text
    (results
    |> List.map (fun (p, ts) -> (p, List.sort_uniq compare ts))
    |> List.sort compare)

let footprint_of st qtext =
  match Hashtbl.find_opt st.fp_memo qtext with
  | Some fp -> fp
  | None ->
    let fp = Unql.Footprint.of_string qtext in
    (* the memo is keyed by query text and queries repeat; cap it so a
       hostile client cannot grow it without bound *)
    if Hashtbl.length st.fp_memo > 4096 then Hashtbl.reset st.fp_memo;
    Hashtbl.add st.fp_memo qtext fp;
    fp

let n_subs store = locked store (fun () -> Hashtbl.length store.subs)

(* Tear down every subscription owned by a transport connection (called
   by the server when the connection dies). *)
let drop_conn t conn_id =
  locked t.st (fun () ->
      let doomed =
        Hashtbl.fold
          (fun id s acc -> if s.sub_conn = Some conn_id then id :: acc else acc)
          t.st.subs []
      in
      List.iter (Hashtbl.remove t.st.subs) doomed;
      Metrics.set g_subs (float_of_int (Hashtbl.length t.st.subs)))

(* Current result text of a subscription against [db].  UnQL goes
   through the shared result cache (caller holds the store lock);
   datalog reads its retained model. *)
let sub_eval_text st db kind =
  match kind with
  | Sub_unql q -> (
    match Unql.Cache.find st.cache ~db q with
    | Some g -> render_graph_text g
    | None ->
      let g = Unql.Eval.eval ~db q in
      Unql.Cache.add st.cache ~db q g;
      render_graph_text g)
  | Sub_datalog d ->
    render_datalog_sorted (Relstore.Datalog.Incremental.result d.dstate)

(* Re-check one subscription after a committed update; returns the new
   rendering when the result changed.  Monotone ε-free deltas drive the
   datalog model semi-naively: only the inserted edges' consequences are
   derived, and "no new fact" skips the render entirely. *)
let sub_advance st ~db' ~(d : Ssd_incr.Delta.t) s =
  match s.sub_kind with
  | Sub_unql _ ->
    let text = sub_eval_text st db' s.sub_kind in
    if text = s.sub_last then None else Some text
  | Sub_datalog ds ->
    if Ssd_incr.Delta.monotone d && not d.Ssd_incr.Delta.new_has_eps then begin
      let triples =
        List.filter_map
          (fun (e : Ssd_incr.Delta.edge) ->
            match e.Ssd_incr.Delta.lab with
            | Graph.Eps -> None
            | Graph.Lab l ->
              Some [ Label.Int e.Ssd_incr.Delta.src; l; Label.Int e.Ssd_incr.Delta.dst ])
          d.Ssd_incr.Delta.added
      in
      match
        Relstore.Datalog.Incremental.advance ds.dstate
          ~edb_delta:[ ("edge", triples) ]
      with
      | [] -> None
      | _fresh ->
        let text = render_datalog_sorted (Relstore.Datalog.Incremental.result ds.dstate) in
        if text = s.sub_last then None else Some text
    end
    else begin
      (* non-monotone (or ε-touching) update: node ids may have been
         remapped, so the retained model is re-prepared from scratch *)
      ds.dstate <-
        Relstore.Datalog.Incremental.prepare ~edb:(Relstore.Triple.edb db') ds.dprog;
      let text = sub_eval_text st db' s.sub_kind in
      if text = s.sub_last then None else Some text
    end

(* Notify every live subscription (caller holds the store lock).
   Returns (skipped, pushed).  A subscription whose label footprint is
   disjoint from the delta is skipped without evaluating anything; one
   whose re-evaluation fails is left untouched (the next update retries
   — a push must never take the update down with it). *)
let notify_subs st ~db' ~(d : Ssd_incr.Delta.t) ~delta_labels =
  let skipped = ref 0 and pushed = ref 0 in
  Hashtbl.iter
    (fun _ s ->
      if Unql.Footprint.disjoint s.sub_fp delta_labels then begin
        incr skipped;
        Metrics.incr m_sub_skips
      end
      else begin
        Metrics.incr m_sub_evals;
        match sub_advance st ~db' ~d s with
        | None -> Metrics.incr m_sub_unchanged
        | Some text ->
          s.sub_seq <- s.sub_seq + 1;
          s.sub_last <- text;
          incr pushed;
          Metrics.incr m_sub_pushes;
          let detail = Printf.sprintf "%d.%d" s.sub_id s.sub_seq in
          let resp =
            Proto.response ~detail Proto.Delta
              (render_body s.sub_opts ~status:Proto.Delta ~detail text)
          in
          Events.emit Events.default "incr.push"
            [
              ("sub", Ssd.Json.Int s.sub_id);
              ("seq", Ssd.Json.Int s.sub_seq);
              ("lang", Ssd.Json.String s.sub_opts.Proto.lang);
              ("bytes", Ssd.Json.Int (String.length resp.Proto.body));
            ];
          (try s.sub_push (Proto.render_response resp) with _ -> ())
        | exception _ -> ()
      end)
    st.subs;
  (!skipped, !pushed)

let do_subscribe t ~push ~conn_id (opts : Proto.options) body =
  match push with
  | None ->
    locked t.st (fun () -> t.n_errors <- t.n_errors + 1);
    Metrics.incr m_errors;
    error_response opts
      (Ssd_diag.make Ssd_diag.Error ~code:"SSD557"
         "SUBSCRIBE needs a push-capable transport (a live connection)")
  | Some push -> (
    match
      lint_gate opts body;
      locked t.st (fun () ->
          let db = t.st.db in
          let kind, text =
            match opts.Proto.lang with
            | "unql" ->
              let q = Unql.Parser.parse body in
              let kind = Sub_unql q in
              (kind, sub_eval_text t.st db kind)
            | "datalog" ->
              let dprog = Relstore.Datalog.parse body in
              let dstate =
                Relstore.Datalog.Incremental.prepare
                  ~edb:(Relstore.Triple.edb db) dprog
              in
              ( Sub_datalog { dprog; dstate },
                render_datalog_sorted (Relstore.Datalog.Incremental.result dstate) )
            | other ->
              raise
                (Ssd_diag.Fail
                   (Ssd_diag.make Ssd_diag.Error ~code:"SSD555"
                      (Printf.sprintf
                         "unsupported subscription language %S (unql|datalog)" other)))
          in
          let id = Atomic.fetch_and_add t.st.next_sub 1 + 1 in
          let s =
            {
              sub_id = id;
              sub_conn = conn_id;
              sub_opts = opts;
              sub_qtext = body;
              sub_fp = footprint_of t.st body;
              sub_kind = kind;
              sub_push = push;
              sub_seq = 0;
              sub_last = text;
            }
          in
          Hashtbl.replace t.st.subs id s;
          Metrics.set g_subs (float_of_int (Hashtbl.length t.st.subs));
          (id, text))
    with
    | id, text ->
      Events.emit Events.default "incr.subscribe"
        [
          ("sub", Ssd.Json.Int id);
          ("tenant", Ssd.Json.String (tenant_of opts));
          ("lang", Ssd.Json.String opts.Proto.lang);
          ("query", Ssd.Json.String (truncate_query body));
        ];
      let detail = string_of_int id in
      Proto.response ~detail Proto.Complete
        (render_body opts ~status:Proto.Complete ~detail text)
    | exception e ->
      locked t.st (fun () -> t.n_errors <- t.n_errors + 1);
      Metrics.incr m_errors;
      error_response opts (diag_of_exn e))

let do_unsubscribe t (opts : Proto.options) body =
  match int_of_string_opt (String.trim body) with
  | None ->
    error_response opts
      (Ssd_diag.make Ssd_diag.Error ~code:"SSD556"
         (Printf.sprintf "UNSUBSCRIBE wants a subscription id, got %S"
            (String.trim body)))
  | Some id ->
    let found =
      locked t.st (fun () ->
          match Hashtbl.find_opt t.st.subs id with
          | Some _ ->
            Hashtbl.remove t.st.subs id;
            Metrics.set g_subs (float_of_int (Hashtbl.length t.st.subs));
            true
          | None -> false)
    in
    if found then
      Proto.response Proto.Complete
        (render_body opts ~status:Proto.Complete ~detail:"-"
           (Printf.sprintf "unsubscribed: id=%d\n" id))
    else
      error_response opts
        (Ssd_diag.make Ssd_diag.Error ~code:"SSD556"
           (Printf.sprintf "unknown subscription id %d" id))

(* UPDATE holds the store lock for the whole parse+apply+swap: updates
   serialize against each other and against cache fills, and the
   database-of-record plus the revalidation and subscription pushes are
   one atomic step — no engine over this store can observe the new graph
   with the old graph's cache entries still live, and delta frames carry
   a globally consistent sequence per subscription. *)
let do_update t (opts : Proto.options) body =
  match
    locked t.st (fun () ->
        let old_db = t.st.db in
        let db' = Lorel.Update.run ~db:old_db body in
        (* Persist before swap: a failed write leaves memory (and the
           cache) exactly as it was, and the error propagates as the
           response.  The persist layer (Store.commit) acknowledges only
           after its WAL fsync, so a successful UPDATE response implies
           the change survives a crash. *)
        (match t.st.persist with Some f -> f db' | None -> ());
        (* Delta-driven cache revalidation: entries whose query
           footprint is disjoint from the update's labels are re-keyed
           to the new graph instead of dropped. *)
        let d = Ssd_incr.Delta.diff old_db db' in
        let delta_labels = Ssd_incr.Delta.touched_labels d in
        let keep qtext =
          Unql.Footprint.disjoint (footprint_of t.st qtext) delta_labels
        in
        let kept, dropped =
          Unql.Cache.revalidate t.st.cache ~old_db ~new_db:db' ~keep
        in
        t.st.db <- db';
        t.n_updates <- t.n_updates + 1;
        let skipped, pushed = notify_subs t.st ~db' ~d ~delta_labels in
        (db', d, kept, dropped, skipped, pushed))
  with
  | db', d, kept, dropped, skipped, pushed ->
    Metrics.incr m_updates;
    Events.emit Events.default "incr.update"
      [
        ("tenant", Ssd.Json.String (tenant_of opts));
        ("added", Ssd.Json.Int (Ssd_incr.Delta.n_added d));
        ("removed", Ssd.Json.Int (Ssd_incr.Delta.n_removed d));
        ("monotone", Ssd.Json.Bool (Ssd_incr.Delta.monotone d));
        ("cache_kept", Ssd.Json.Int kept);
        ("cache_dropped", Ssd.Json.Int dropped);
        ("subs_skipped", Ssd.Json.Int skipped);
        ("subs_pushed", Ssd.Json.Int pushed);
        ("nodes", Ssd.Json.Int (Graph.n_nodes db'));
        ("edges", Ssd.Json.Int (Graph.n_edges db'));
      ];
    let text =
      Printf.sprintf
        "updated: %d nodes, %d edges; cache %d kept %d invalidated; %d deltas pushed\n"
        (Graph.n_nodes db') (Graph.n_edges db') kept dropped pushed
    in
    Proto.response Proto.Complete (render_body opts ~status:Proto.Complete ~detail:"-" text)
  | exception e ->
    locked t.st (fun () -> t.n_errors <- t.n_errors + 1);
    Metrics.incr m_errors;
    error_response opts (diag_of_exn e)

(* ------------------------------------------------------------------ *)
(* Frame dispatch                                                      *)
(* ------------------------------------------------------------------ *)

(* STATS body: the full registry snapshot (exactly what the admin plane
   serves on GET /metrics?format=json) with an extra "engine" section —
   one source of truth for protocol clients and HTTP scrapers. *)
let stats_body t =
  let module J = Ssd.Json in
  let s = stats t in
  let engine =
    J.Obj
      [
        ("requests", J.Int s.requests);
        ("accepted", J.Int s.accepted);
        ("shed", J.Int s.shed);
        ("partial", J.Int s.partial);
        ("errors", J.Int s.errors);
        ("updates", J.Int s.updates);
      ]
  in
  let snap = Metrics.snapshot_to_json (Metrics.snapshot Metrics.default) in
  let doc =
    match snap with
    | J.Obj fields -> J.Obj (fields @ [ ("engine", engine) ])
    | other -> other
  in
  J.to_string doc ^ "\n"

let dispatch t ~queued ~push ~conn_id raw =
  if String.length raw > t.cfg.max_frame then
    (* The stream cannot be resynchronized reliably past an oversized
       frame, so the transport closes after this response. *)
    ( error_response Proto.default_options
        (Ssd_diag.make Ssd_diag.Error ~code:"SSD551"
           (Printf.sprintf "frame of %d bytes exceeds the %d byte limit"
              (String.length raw) t.cfg.max_frame)),
      true,
      Proto.default_options )
  else
    match Proto.parse_request raw with
    | Result.Error d -> (error_response Proto.default_options d, false, Proto.default_options)
    | Result.Ok { Proto.verb; opts; body } -> (
      (match opts.Proto.req_id with
      | Some id -> Trace.annotate "id" (Trace.Str id)
      | None -> ());
      Trace.annotate "verb" (Trace.Str (Proto.verb_to_string verb));
      match verb with
      | Proto.Query -> (do_query t ~queued opts body, false, opts)
      | Proto.Update -> (do_update t opts body, false, opts)
      | Proto.Subscribe -> (do_subscribe t ~push ~conn_id opts body, false, opts)
      | Proto.Unsubscribe -> (do_unsubscribe t opts body, false, opts)
      | Proto.Ping -> (Proto.response Proto.Complete "pong\n", false, opts)
      | Proto.Stats -> (Proto.response Proto.Complete (stats_body t), false, opts)
      | Proto.Events ->
        ( Proto.response Proto.Complete
            (Events.tail_jsonl ?n:opts.Proto.n Events.default),
          false,
          opts )
      | Proto.Quit -> (Proto.response Proto.Complete "bye\n", true, opts))

let handle ?lane ?(queued = 0) ?push ?conn_id t raw =
  let seq = Atomic.fetch_and_add t.st.req_seq 1 + 1 in
  let t0 = Ssd_obs.Clock.now_ns () in
  let resp, close, opts =
    Trace.with_span ?lane "serve.request" ~attrs:[ ("seq", Trace.Int seq) ] (fun () ->
        let ((resp, _, _) as r) =
          try dispatch t ~queued ~push ~conn_id raw
          with e ->
            (* dispatch catches per-verb; this is the last-resort net so
               the accept loop can never be wedged by a request. *)
            (error_response Proto.default_options (diag_of_exn e), false,
             Proto.default_options)
        in
        Trace.annotate "status" (Trace.Str (Proto.status_to_string resp.Proto.status));
        r)
  in
  let dt = Ssd_obs.Clock.now_ns () -. t0 in
  Metrics.incr m_requests;
  Metrics.observe m_latency dt;
  let tc = tenant_counters (tenant_of opts) in
  Metrics.incr tc.tc_requests;
  Metrics.add tc.tc_bytes_in (String.length raw);
  Metrics.add tc.tc_bytes_out (String.length resp.Proto.body);
  locked t.st (fun () -> t.n_requests <- t.n_requests + 1);
  (resp, close)

let handle_line ?lane ?queued t raw =
  let resp, _close = handle ?lane ?queued t raw in
  Proto.render_response resp
