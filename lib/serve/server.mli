(** Socket transport for the {!Engine}: a long-running server on a Unix
    or TCP socket.

    One dedicated domain accepts connections and hands each to the
    {!Ssd_par.Pool.task_pool} of [workers] domains; a connection's
    frames are processed strictly in order (responses never interleave
    or reorder within a connection), while distinct connections evaluate
    concurrently.  The per-frame backlog the reader observes (complete
    frames already buffered behind the current one — an open-loop
    client's pipelined burst) is passed to the engine as its [queued]
    load signal, which drives budget clamping and shedding.

    Robustness: a client disconnecting mid-request, a write failing with
    [EPIPE] (SIGPIPE is ignored while a server runs), a malformed or
    oversized frame — all are contained to that connection; the accept
    loop never stops.  {!stop} is graceful and leak-free: it closes the
    listener, shuts down every live connection (waking blocked readers),
    joins every domain, and removes the Unix socket file. *)

type addr =
  | Unix_sock of string (** filesystem path; replaced if it exists *)
  | Tcp of string * int (** host, port; port 0 picks a free port *)

type t

(** [start ~engine ~workers addr] binds, listens and returns
    immediately; serving happens on background domains.  Default
    [workers] is 4. *)
val start : ?workers:int -> engine:Engine.t -> addr -> t

(** The bound address — for [Tcp _] with port 0, the actual port. *)
val bound : t -> addr

(** Live client connections (for tests and the CLI status line). *)
val connections : t -> int

(** Graceful shutdown; idempotent.  Joins the accept domain and every
    worker, closes every fd the server opened, unlinks a Unix socket
    path. *)
val stop : t -> unit
