(** The transport-agnostic request engine behind [ssdql serve].

    An {!Engine.t} turns one protocol frame into one protocol response —
    it knows nothing about sockets, so the property suites drive it
    through an in-process transport (plain function calls from
    concurrent domains) and the socket server ({!Server}) is a thin IO
    loop on top.

    {2 Shared state}

    Several engines may serve the same {!store}: the store owns the
    mutable database-of-record, the shared {!Unql.Cache} (plan/result
    cache keyed by normalized query × graph fingerprint — client B hits
    the entry client A warmed), and the admission-control counters.  All
    store access is guarded by one mutex; query evaluation itself runs
    {e outside} the lock against an immutable snapshot of the graph, so
    requests evaluate concurrently.  An [UPDATE] swaps the
    database-of-record and invalidates the old graph's cache entries
    while holding the lock, so no engine over the store can serve a
    stale result afterwards (regression-tested).

    {2 Admission control and load shedding}

    Each request reports the load it sees: [queued] (frames already
    waiting behind it, supplied by the transport) plus the store-wide
    in-flight count.  Overload degrades in two stages instead of letting
    the queue collapse:

    - load > [pressure_at]: the request is admitted but its step budget
      is clamped to [pressure_max_steps] (tightening any client-supplied
      budget), so it answers quickly with a typed [partial] response — a
      sound lower bound of the complete answer;
    - load > [shed_at]: the request is refused outright with a [shed]
      response carrying SSD554; the client should retry later.

    Every response carries the typed completeness status, and the engine
    never raises: any parse or evaluation failure becomes an [error]
    response (SSD55x).

    {2 Telemetry}

    {2 Live subscriptions}

    [SUBSCRIBE] registers a query (unql or datalog) against the store;
    every committed [UPDATE] then re-checks it and pushes a [delta]
    frame when its result changed (see {!Proto}).  The incremental
    machinery keeps this proportional to the change, not the database:
    updates whose edge delta is label-disjoint from the query's static
    footprint ({!Unql.Footprint}) are skipped without evaluating;
    datalog subscriptions hold a retained model
    ({!Relstore.Datalog.Incremental}) advanced semi-naively from the
    inserted edges on monotone ε-free deltas; and the result cache is
    {e revalidated} ({!Unql.Cache.revalidate}) instead of flushed, so
    footprint-disjoint cached answers survive the update.  Subscription
    activity shows up on the [incr.sub.*] metrics and the
    [incr.subscribe] / [incr.push] / [incr.update] events.

    Every request bills to a tenant — the [tenant=] option, or
    ["default"] — on labeled counter families
    ([serve.tenant.requests{tenant="…"}], [bytes_in], [bytes_out],
    [steps], [partials], [shed]) in the default {!Ssd_obs.Metrics}
    registry.  Admission decisions ([admission.shed],
    [admission.clamp]), cache invalidations ([cache.invalidate]) and
    queries slower than [slow_query_ms] ([slow_query], with plan and
    est-vs-actual cardinality) emit structured events to
    {!Ssd_obs.Events.default}; [STATS] returns the full registry
    snapshot as JSON and [EVENTS] tails the event ring, so protocol
    clients see exactly what the admin plane serves. *)

type config = {
  max_frame : int; (** frames longer than this are refused (SSD551) *)
  shed_at : int; (** load above this sheds (SSD554) *)
  pressure_at : int; (** load above this clamps budgets -> partial *)
  pressure_max_steps : int; (** the clamped step budget under pressure *)
  slow_query_ms : float;
      (** queries slower than this emit a [slow_query] event carrying
          the plan, the static cardinality estimate vs the actual root
          fanout, and the budget outcome *)
}

(** [max_frame = 65536], [shed_at = 64], [pressure_at = 8],
    [pressure_max_steps = 20_000], [slow_query_ms = 250.]. *)
val default_config : config

(** Shared serving state: database-of-record + shared result cache +
    admission counters. *)
type store

val store : ?cache_capacity:int -> db:Ssd.Graph.t -> unit -> store

(** The current database-of-record (snapshot read under the lock). *)
val store_db : store -> Ssd.Graph.t

(** Install a durability hook: on every [UPDATE] it is called under the
    store lock with the new graph {e before} the in-memory swap — if it
    raises, the database-of-record and cache are untouched and the
    client gets the error.  Used by [ssdql serve --store] to route
    updates through {!Ssd_store.Store.commit} (WAL append + fsync), so
    an acknowledged UPDATE survives [kill -9]. *)
val set_persist : store -> (Ssd.Graph.t -> unit) -> unit

(** The shared cache's counters (hits/misses/invalidations). *)
val cache_stats : store -> Unql.Cache.stats

(** Live subscriptions currently registered on the store. *)
val n_subs : store -> int

type t

val create : ?config:config -> store -> t

val config : t -> config

(** Per-engine counters, all guarded by the store lock. *)
type stats = {
  requests : int; (** frames handled, any verb or outcome *)
  accepted : int; (** queries admitted and evaluated *)
  shed : int;
  partial : int;
  errors : int;
  updates : int;
}

val stats : t -> stats

(** [handle t raw] processes one frame ([raw] has no trailing newline)
    and returns the response plus [true] when the connection should
    close afterwards ([QUIT], oversized frame).  [queued] is the
    transport's backlog behind this frame (default 0).  [lane] is the
    trace lane for this request's span (default: the calling domain's
    {!Ssd_obs.Trace.lane}).  Never raises; safe to call from concurrent
    domains.

    [push] makes the connection push-capable: a [SUBSCRIBE] on this
    frame registers a live subscription whose [delta] frames (already
    rendered wire bytes) are delivered through [push] — from whichever
    thread later commits an [UPDATE], so the transport must serialize
    [push] against its own response writes.  Without [push], [SUBSCRIBE]
    answers SSD557.  [conn_id] tags the subscription with its owning
    connection for {!drop_conn}. *)
val handle :
  ?lane:int ->
  ?queued:int ->
  ?push:(string -> unit) ->
  ?conn_id:int ->
  t ->
  string ->
  Proto.response * bool

(** Tear down every subscription owned by [conn_id] (transport calls
    this when the connection closes). *)
val drop_conn : t -> int -> unit

(** {!handle} composed with {!Proto.render_response} (drops the close
    flag) — the one-line in-process transport. *)
val handle_line : ?lane:int -> ?queued:int -> t -> string -> string
