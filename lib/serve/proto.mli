(** The `ssdql serve` wire protocol: line-oriented requests,
    length-prefixed responses.

    {2 Request frames}

    One request is one line (terminated by [\n], an optional [\r] before
    it is tolerated), at most the server's frame limit long:

    {v
      VERB OPTIONS [BODY...]
      QUERY -  select {t: \T} where {entry.movie.title: \T} <- DB
      QUERY lang=lorel,deadline-ms=50 select m.title from DB.entry.movie m
      UPDATE - insert DB.entry := {movie: {title: "New"}}
      PING
      STATS
      EVENTS n=50
      QUIT
    v}

    [VERB] is one of [QUERY], [UPDATE], [SUBSCRIBE], [UNSUBSCRIBE],
    [PING], [STATS], [EVENTS], [QUIT].
    [OPTIONS] is ["-"] or comma-separated [key=value] pairs:
    [lang=unql|lorel|websql|datalog] (default unql), [format=text|json]
    (default text), [deadline-ms=F], [max-steps=N], [cache=on|off]
    (default on), [id=STRING] (echoed into the request's trace span),
    [tenant=STRING] (accounting label: the request bills to this
    tenant's labeled metric families), [n=N] (for [EVENTS]: how many
    trailing events to return, default 20).
    Everything after the options token is the query/update text.
    [PING]/[STATS]/[EVENTS]/[QUIT] may omit the options token.

    [STATS] answers with a full metrics-registry snapshot as JSON (the
    same document the admin plane serves on [GET /metrics?format=json],
    plus an ["engine"] section) — one source of truth for protocol
    clients and HTTP scrapers.  [EVENTS] answers with the last [n]
    structured events as JSONL (see {!Ssd_obs.Events}).

    {2 Response frames}

    A response is a one-line header followed by exactly [LEN] bytes of
    body:

    {v
      SSDQL1 STATUS DETAIL LEN\n
      <LEN bytes>
    v}

    [STATUS] is [complete], [partial], [shed], [error] or [delta] —
    every answer carries the typed completeness verdict.  [DETAIL] is
    ["-"] for [complete]; the {!Ssd.Budget.exhaustion} reason ([steps],
    [deadline], [stalled]) for [partial]; and the [SSD55x] diagnostic
    code for [shed]/[error].  The body of a [complete]/[partial]
    [QUERY] response is byte-identical to what [ssdql query] prints on
    stdout for the same query (text format), so clients and the CLI can
    be diffed directly.

    {2 Subscriptions}

    [SUBSCRIBE OPTIONS QUERY] registers the query for live re-evaluation
    (languages: [unql], [datalog]).  The immediate answer is an ordinary
    [complete] frame whose [DETAIL] is the subscription id and whose
    body is the query's current result.  Afterwards, whenever a
    committed [UPDATE] changes that result, the server {e pushes} an
    unsolicited [delta] frame on the same connection:

    {v
      SSDQL1 delta ID.SEQ LEN\n
      <LEN bytes: the new full result>
    v}

    [ID] is the subscription id, [SEQ] a per-subscription sequence
    number starting at 1; the body is the query's new result (datalog
    results are rendered with predicates and tuples sorted, so frames
    are canonical).  Updates whose delta provably cannot change the
    result (label footprint disjoint, see {!Unql.Footprint}) push
    nothing; datalog subscriptions re-derive semi-naively from the
    update's edge delta ({!Relstore.Datalog.Incremental}).  Pushed
    frames interleave with response frames on the wire but never split
    them; clients demultiplex on the [delta] status.  [UNSUBSCRIBE -
    ID] tears the subscription down (SSD556 when unknown); closing the
    connection tears down all of its subscriptions. *)

type verb =
  | Query
  | Update
  | Subscribe
  | Unsubscribe
  | Ping
  | Stats
  | Events
  | Quit

type options = {
  lang : string;
  format : string;
  deadline_ms : float option;
  max_steps : int option;
  cache : bool;
  req_id : string option;
  tenant : string option;
  n : int option;
}

val default_options : options

type request = {
  verb : verb;
  opts : options;
  body : string;
}

(** [parse_request line] — [line] without its terminating newline.
    Errors carry the SSD550 (malformed frame) / SSD552 (bad option)
    diagnostic that becomes the error response. *)
val parse_request : string -> (request, Ssd_diag.t) result

(** Render a request as its wire line (no newline), for clients. *)
val render_request : request -> string

val verb_to_string : verb -> string

type status =
  | Complete
  | Partial
  | Shed
  | Error
  | Delta  (** an unsolicited push for a live subscription *)

val status_to_string : status -> string

type response = {
  status : status;
  detail : string; (** "-", exhaustion reason, or SSDxxx code *)
  body : string;
}

val response : ?detail:string -> status -> string -> response

(** The full wire form: header line + body bytes. *)
val render_response : response -> string

(** [parse_response buf pos] parses one response frame starting at
    [pos]; returns the response and the position just past it.
    [Error `Incomplete] means more bytes are needed; [Error (`Malformed
    reason)] means the bytes can never be a frame.  The serve test
    harness and the fuzz suite use this to assert every server answer is
    a well-formed frame. *)
val parse_response :
  string -> int -> (response * int, [ `Incomplete | `Malformed of string ]) result
