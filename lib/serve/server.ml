(* Socket transport for the engine.  Accept loop on its own domain,
   connections served by a Ssd_par.Pool.task_pool; see server.mli. *)

module Pool = Ssd_par.Pool
module Trace = Ssd_obs.Trace
module Metrics = Ssd_obs.Metrics

let m_conns = Metrics.counter "serve.connections"
let m_disconnects = Metrics.counter "serve.disconnects"
let g_active = Metrics.gauge "serve.active_connections"

type addr =
  | Unix_sock of string
  | Tcp of string * int

type t = {
  engine : Engine.t;
  listener : Unix.file_descr;
  addr : addr;
  pool : Pool.task_pool;
  mutable accept_domain : unit Domain.t option;
  stopping : bool Atomic.t;
  (* live connection fds, for graceful shutdown *)
  conns_m : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  next_conn : int Atomic.t;
}

let register t id fd =
  Mutex.lock t.conns_m;
  Hashtbl.replace t.conns id fd;
  Metrics.set g_active (float_of_int (Hashtbl.length t.conns));
  Mutex.unlock t.conns_m

(* At most one closer wins: the connection task on EOF/error, or [stop]
   sweeping live connections.  Whoever removes the id from the table
   closes the fd — and tears down the connection's subscriptions, so a
   dead client stops receiving (and costing) delta pushes. *)
let close_conn t id =
  Mutex.lock t.conns_m;
  let fd = Hashtbl.find_opt t.conns id in
  Hashtbl.remove t.conns id;
  Metrics.set g_active (float_of_int (Hashtbl.length t.conns));
  Mutex.unlock t.conns_m;
  Engine.drop_conn t.engine id;
  match fd with
  | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let connections t =
  Mutex.lock t.conns_m;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_m;
  n

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Count complete frames ('\n'-terminated) in [buf] starting at [pos]. *)
let complete_lines buf pos =
  let s = Buffer.contents buf in
  let n = ref 0 in
  String.iteri (fun i c -> if i >= pos && c = '\n' then incr n) s;
  !n

(* One connection, served start-to-finish by one pool task.  Frames are
   split off a growing buffer; each is handled and answered before the
   next, so responses are FIFO per connection. *)
let serve_conn t id fd =
  Trace.set_lane (1 + (id mod 14));
  if Trace.enabled () then Trace.name_lane (1 + (id mod 14)) (Printf.sprintf "conn %d" id);
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let alive = ref true in
  (* Responses are written by this task; delta pushes for this
     connection's subscriptions arrive from whichever task commits an
     UPDATE.  One mutex per connection keeps frames whole on the wire. *)
  let wm = Mutex.create () in
  let send s =
    Mutex.lock wm;
    Fun.protect ~finally:(fun () -> Mutex.unlock wm) (fun () -> write_all fd s)
  in
  let push frame = try send frame with Unix.Unix_error _ -> () in
  (* Extract the first complete line, else None. *)
  let next_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      Some line
  in
  let respond_and_maybe_close line =
    let queued = complete_lines buf 0 in
    let resp, close = Engine.handle ~queued ~push ~conn_id:id t.engine line in
    (match send (Proto.render_response resp) with
    | () -> ()
    | exception Unix.Unix_error _ ->
      Metrics.incr m_disconnects;
      alive := false);
    if close then alive := false
  in
  (try
     while !alive do
       match next_line () with
       | Some line -> respond_and_maybe_close line
       | None ->
         if Buffer.length buf > ((Engine.config t.engine).Engine.max_frame * 2) + 16 then begin
           (* No newline within twice the frame limit: the peer is not
              speaking the protocol; answer SSD551 once and drop it. *)
           respond_and_maybe_close (Buffer.contents buf);
           alive := false
         end
         else begin
           match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> alive := false (* EOF: possibly mid-request; just drop *)
           | n -> Buffer.add_subbytes buf chunk 0 n
           | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF | Unix.EPIPE), _, _)
             ->
             Metrics.incr m_disconnects;
             alive := false
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         end
     done
   with _ -> ());
  close_conn t id

let accept_loop t =
  (* Nonblocking listener + select timeout so [stop] never races a
     blocked accept: closing an fd another domain is blocked in does not
     reliably wake it, polling does. *)
  Unix.set_nonblock t.listener;
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listener ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listener with
        | fd, _ ->
          Unix.clear_nonblock fd;
          Metrics.incr m_conns;
          let id = Atomic.fetch_and_add t.next_conn 1 + 1 in
          register t id fd;
          if not (Pool.submit t.pool (fun () -> serve_conn t id fd)) then close_conn t id
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          ()
        | exception Unix.Unix_error _ -> Atomic.set t.stopping true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> Atomic.set t.stopping true);
      loop ()
    end
  in
  loop ()

let start ?(workers = 4) ~engine addr =
  (* A dying client must not kill the server with SIGPIPE; writes then
     fail with EPIPE, which serve_conn contains per-connection. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain, sockaddr =
    match addr with
    | Unix_sock path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener sockaddr;
  Unix.listen listener 64;
  let bound_addr =
    match addr with
    | Unix_sock _ -> addr
    | Tcp (host, _) -> (
      match Unix.getsockname listener with
      | Unix.ADDR_INET (_, port) -> Tcp (host, port)
      | _ -> addr)
  in
  let t =
    {
      engine;
      listener;
      addr = bound_addr;
      pool = Pool.task_pool ~workers;
      accept_domain = None;
      stopping = Atomic.make false;
      conns_m = Mutex.create ();
      conns = Hashtbl.create 16;
      next_conn = Atomic.make 0;
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let bound t = t.addr

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* 1. stop accepting *)
    (match t.accept_domain with Some d -> Domain.join d | None -> ());
    t.accept_domain <- None;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* 2. wake every connection task blocked in read (shutdown reliably
       interrupts recv; close alone would not) *)
    Mutex.lock t.conns_m;
    let live = Hashtbl.fold (fun id fd acc -> (id, fd) :: acc) t.conns [] in
    Mutex.unlock t.conns_m;
    List.iter
      (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      live;
    (* 3. join workers (their tasks exit on the EOF the shutdown causes) *)
    Pool.task_shutdown t.pool;
    (* 4. close any connection whose task never ran (queued past the
       pool) or that stop raced *)
    List.iter (fun (id, _) -> close_conn t id) live;
    match t.addr with
    | Unix_sock path ->
      if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end
