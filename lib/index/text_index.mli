(** Text index over the string-ish labels of a graph.

    Supports the browsing queries of section 1.3 that exact hashing cannot:
    "What objects in the database have an attribute name that starts with
    "act"?" — prefix search over symbols — and word search inside string
    values.  Backed by a sorted array of (text, occurrence) pairs, so
    prefix queries are binary searches; word search uses an inverted
    word table built at construction. *)

type t

type occurrence = {
  src : int;
  label : Ssd.Label.t;
  dst : int;
}

(** Indexes every [Sym] and [Str] label occurrence. *)
val build : Ssd.Graph.t -> t

(** Occurrences whose full text starts with the prefix. *)
val find_prefix : t -> string -> occurrence list

(** Occurrences whose full text is exactly the given string. *)
val find_exact : t -> string -> occurrence list

(** Occurrences of string/symbol labels containing the given word
    (words are maximal alphanumeric runs, matched case-insensitively). *)
val find_word : t -> string -> occurrence list

(** Number of indexed occurrences. *)
val n_entries : t -> int

(** The no-index baseline for substring search. *)
val scan_contains : Ssd.Graph.t -> string -> occurrence list

(** Apply an edge-level delta (incremental maintenance, lib/incr):
    each removed occurrence drops one matching entry, each added one is
    merged into the sorted array and the word table — no re-tokenizing
    of the untouched corpus.  Non-text labels are ignored, like
    {!build} does.  The input is unchanged; the result is
    byte-identical ({!to_bytes}) to a fresh build over the updated
    data. *)
val apply : t -> added:occurrence list -> removed:occurrence list -> t

(** Canonical bytes (entries fully sorted; the word table is derived and
    not serialized): indexes over the same data serialize identically. *)
val to_bytes : t -> bytes

(** Raises [Ssd_storage.Bytesio.Corrupt] on malformed input. *)
val of_bytes : bytes -> t
