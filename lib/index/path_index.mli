(** Bounded-depth path index.

    Maps each root label-path of length ≤ k to the set of nodes it reaches
    — the "path indices" of section 4.  Exact-path queries (the common
    [select ... from DB where Entry.Movie.Title ...] shape) become a
    single hash lookup instead of a traversal.  Cyclic graphs are fine:
    only paths up to the depth bound are enumerated. *)

type t

val build : depth:int -> Ssd.Graph.t -> t

(** Nodes reached from the root by exactly this label path.  Paths longer
    than the index depth return [None] (the caller must fall back to
    traversal); indexed paths with no match return [Some []]. *)
val find : t -> Ssd.Label.t list -> int list option

val depth : t -> int

(** Number of distinct indexed paths. *)
val n_paths : t -> int

(** The traversal fallback (and baseline): follow the path from the
    root. *)
val traverse : Ssd.Graph.t -> Ssd.Label.t list -> int list

(** {2 Incremental maintenance}

    Pair-level access for the delta maintainer (lib/incr): the table is
    the set of (root label path, reached node) pairs, and an edge insert
    only ever {e adds} pairs, which [add_pair] threads in place.
    Byte-identity with a fresh build is preserved — {!to_bytes} sorts
    canonically. *)

(** Fold over every (path, node list) entry of the table (includes the
    empty path mapped to the root). *)
val fold_pairs : (Ssd.Label.t list -> int list -> 'a -> 'a) -> t -> 'a -> 'a

(** Add one pair; [true] if it was not already present. *)
val add_pair : t -> Ssd.Label.t list -> int -> bool

(** Independent copy. *)
val copy : t -> t

(** Canonical bytes (paths and node lists sorted): indexes over the
    same data serialize identically. *)
val to_bytes : t -> bytes

(** Raises [Ssd_storage.Bytesio.Corrupt] on malformed input. *)
val of_bytes : bytes -> t
