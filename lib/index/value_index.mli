(** Exact-label index.

    Section 4 suggests "the addition of path or text indices on labels and
    strings" to make generic browsing queries (section 1.3) fast.  This is
    the simplest such index: a hash from a label to the edges carrying it.
    The scan baseline it is benchmarked against (experiment E1) is
    {!scan}. *)

type t

(** An edge occurrence: (source node, target node). *)
type occurrence = {
  src : int;
  dst : int;
}

val build : Ssd.Graph.t -> t

(** All edges labeled exactly [l]. *)
val find : t -> Ssd.Label.t -> occurrence list

(** Nodes with an incoming edge labeled [l]. *)
val find_nodes : t -> Ssd.Label.t -> int list

(** Does label [l] occur at all? *)
val mem : t -> Ssd.Label.t -> bool

(** Number of distinct labels indexed. *)
val n_labels : t -> int

(** The no-index baseline: walk every edge of the graph. *)
val scan : Ssd.Graph.t -> Ssd.Label.t -> occurrence list

(** {2 Incremental maintenance}

    The index is a per-label occurrence {e multiset}; edge-level deltas
    apply directly and commute with {!to_bytes} (which sorts), so an
    incrementally maintained index is byte-identical to a fresh
    {!build} over the same data. *)

(** Record one more edge labeled [l]. *)
val add : t -> Ssd.Label.t -> occurrence -> unit

(** Drop one occurrence equal to the given one (no-op if absent). *)
val remove : t -> Ssd.Label.t -> occurrence -> unit

(** Independent copy (mutations on one never show in the other). *)
val copy : t -> t

(** Canonical bytes (labels and occurrences sorted): two indexes over
    the same data serialize identically regardless of build order. *)
val to_bytes : t -> bytes

(** Raises [Ssd_storage.Bytesio.Corrupt] on malformed input. *)
val of_bytes : bytes -> t
