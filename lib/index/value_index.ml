module Label = Ssd.Label
module Graph = Ssd.Graph

type occurrence = {
  src : int;
  dst : int;
}

module Label_tbl = Hashtbl.Make (struct
  type t = Label.t

  let equal = Label.equal
  let hash = Label.hash
end)

type t = occurrence list Label_tbl.t

module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

(* Probe/hit counters (lib/obs): a probe is any [find]/[find_nodes]/[mem];
   a hit is a probe whose label occurs in the data. *)
let m_builds = Metrics.counter "index.value.builds"
let m_probes = Metrics.counter "index.value.probes"
let m_hits = Metrics.counter "index.value.hits"

let build g =
  Metrics.incr m_builds;
  Trace.with_span "index.value.build"
    ~attrs:[ ("edges", Trace.Int (Ssd.Graph.n_edges g)) ]
  @@ fun () ->
  (* Edge-parallel build: each chunk accumulates a local table whose
     per-label lists are in chunk-reversed edge order (prepend, exactly
     like the sequential fold); merging chunks in ascending order with
     [chunk_occs @ earlier] reproduces the sequential result — the
     reverse of the whole edge order — for every chunking, so the built
     index is byte-identical for every --jobs value. *)
  let edges =
    Array.of_list
      (List.rev
         (Graph.fold_labeled_edges (fun acc src l dst -> (src, l, dst) :: acc) [] g))
  in
  let idx = Label_tbl.create 256 in
  Ssd_par.Pool.fold_chunks ~n:(Array.length edges)
    ~chunk:(fun lo hi ->
      let local = Label_tbl.create 64 in
      for i = lo to hi - 1 do
        let src, l, dst = edges.(i) in
        let occs = Option.value ~default:[] (Label_tbl.find_opt local l) in
        Label_tbl.replace local l ({ src; dst } :: occs)
      done;
      local)
    ~combine:(fun () local ->
      Label_tbl.iter
        (fun l occs ->
          let cur = Option.value ~default:[] (Label_tbl.find_opt idx l) in
          Label_tbl.replace idx l (occs @ cur))
        local)
    ();
  idx

let find idx l =
  Metrics.incr m_probes;
  Trace.bump "index_probes" 1;
  match Label_tbl.find_opt idx l with
  | Some occs ->
    Metrics.incr m_hits;
    Trace.bump "index_hits" 1;
    occs
  | None -> []

let find_nodes idx l = List.map (fun o -> o.dst) (find idx l)

(* ------------------------------------------------------------------ *)
(* Incremental maintenance (lib/incr)                                   *)
(* ------------------------------------------------------------------ *)

(* The index is a per-label occurrence multiset, so edge-level deltas
   apply directly: an insert prepends, a delete drops one matching
   occurrence.  Canonical bytes re-sort everything, so maintenance order
   never leaks into segment byte-identity. *)

let add idx l occ =
  let occs = Option.value ~default:[] (Label_tbl.find_opt idx l) in
  Label_tbl.replace idx l (occ :: occs)

let remove idx l occ =
  match Label_tbl.find_opt idx l with
  | None -> ()
  | Some occs ->
    let rec drop_one = function
      | [] -> []
      | o :: rest -> if o = occ then rest else o :: drop_one rest
    in
    (match drop_one occs with
    (* A fresh build never binds a label to zero occurrences; keep that
       invariant or [mem]/[n_labels] and byte-identity would drift. *)
    | [] -> Label_tbl.remove idx l
    | occs -> Label_tbl.replace idx l occs)

let copy idx = Label_tbl.copy idx

let mem idx l =
  Metrics.incr m_probes;
  Trace.bump "index_probes" 1;
  let hit = Label_tbl.mem idx l in
  if hit then begin
    Metrics.incr m_hits;
    Trace.bump "index_hits" 1
  end;
  hit
let n_labels idx = Label_tbl.length idx

let scan g l =
  Graph.fold_labeled_edges
    (fun acc src l' dst -> if Label.equal l l' then { src; dst } :: acc else acc)
    [] g

(* ------------------------------------------------------------------ *)
(* Canonical serialization (persistent store segments)                  *)
(* ------------------------------------------------------------------ *)

module B = Ssd_storage.Bytesio

let magic = "SSDV"

let compare_occ a b =
  match compare a.src b.src with 0 -> compare a.dst b.dst | c -> c

(* Canonical: labels sorted by [Label.compare], each occurrence list
   sorted by (src, dst) — two indexes over the same data serialize to
   the same bytes regardless of build order, so byte equality of
   segments is meaningful. *)
let to_bytes idx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  let entries = Label_tbl.fold (fun l occs acc -> (l, occs) :: acc) idx [] in
  let entries = List.sort (fun (a, _) (b, _) -> Label.compare a b) entries in
  B.put_varint buf (List.length entries);
  List.iter
    (fun (l, occs) ->
      B.put_label buf l;
      let occs = List.sort compare_occ occs in
      B.put_varint buf (List.length occs);
      List.iter
        (fun o ->
          B.put_varint buf o.src;
          B.put_varint buf o.dst)
        occs)
    entries;
  Buffer.to_bytes buf

let of_bytes data =
  let r = B.reader data in
  B.expect_magic r magic;
  let n = B.get_varint r in
  B.check_count r ~what:"a value-index label count" ~unit_bytes:2 n;
  let idx = Label_tbl.create (2 * n) in
  for _ = 1 to n do
    let l = B.get_label r in
    let k = B.get_varint r in
    B.check_count r ~what:"a value-index occurrence count" ~unit_bytes:2 k;
    let occs = ref [] in
    for _ = 1 to k do
      let src = B.get_varint r in
      let dst = B.get_varint r in
      occs := { src; dst } :: !occs
    done;
    Label_tbl.replace idx l (List.rev !occs)
  done;
  B.expect_end r;
  idx
