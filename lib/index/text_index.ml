module Label = Ssd.Label
module Graph = Ssd.Graph

type occurrence = {
  src : int;
  label : Label.t;
  dst : int;
}

type t = {
  (* Sorted by text for binary prefix search. *)
  sorted : (string * occurrence) array;
  words : (string, occurrence list) Hashtbl.t;
}

let text_of = function
  | Label.Sym s | Label.Str s -> Some s
  | Label.Int _ | Label.Float _ | Label.Bool _ -> None

let tokenize s =
  let words = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := String.lowercase_ascii (Buffer.contents buf) :: !words;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then
        Buffer.add_char buf c
      else flush ())
    s;
  flush ();
  !words

let build g =
  (* Edge-parallel, like Value_index.build: chunk-local accumulators in
     chunk-reversed order, merged ascending with [local @ earlier], which
     equals the sequential reverse-of-edge-order lists for any chunking.
     The [sorted] array is then built from the identical entry list, so
     the (unstable) sort sees the same input and the whole index is
     byte-identical for every --jobs value. *)
  let edges =
    Array.of_list
      (List.rev
         (Graph.fold_labeled_edges (fun acc src l dst -> (src, l, dst) :: acc) [] g))
  in
  let entries = ref [] in
  let words = Hashtbl.create 256 in
  Ssd_par.Pool.fold_chunks ~n:(Array.length edges)
    ~chunk:(fun lo hi ->
      let local_entries = ref [] in
      let local_words = Hashtbl.create 64 in
      for i = lo to hi - 1 do
        let src, l, dst = edges.(i) in
        match text_of l with
        | None -> ()
        | Some text ->
          let occ = { src; label = l; dst } in
          local_entries := (text, occ) :: !local_entries;
          List.iter
            (fun w ->
              let occs = Option.value ~default:[] (Hashtbl.find_opt local_words w) in
              Hashtbl.replace local_words w (occ :: occs))
            (List.sort_uniq String.compare (tokenize text))
      done;
      (!local_entries, local_words))
    ~combine:(fun () (local_entries, local_words) ->
      entries := local_entries @ !entries;
      Hashtbl.iter
        (fun w occs ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt words w) in
          Hashtbl.replace words w (occs @ cur))
        local_words)
    ();
  let sorted = Array.of_list !entries in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) sorted;
  { sorted; words }

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* First array position whose text is >= [key]. *)
let lower_bound sorted key =
  let lo = ref 0 and hi = ref (Array.length sorted) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let text, _ = sorted.(mid) in
    if String.compare text key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let find_prefix idx prefix =
  let start = lower_bound idx.sorted prefix in
  let out = ref [] in
  let i = ref start in
  while
    !i < Array.length idx.sorted
    &&
    let text, _ = idx.sorted.(!i) in
    has_prefix ~prefix text
  do
    out := snd idx.sorted.(!i) :: !out;
    incr i
  done;
  List.rev !out

let find_exact idx text =
  List.filter (fun o -> text_of o.label = Some text) (find_prefix idx text)

let find_word idx w =
  Option.value ~default:[] (Hashtbl.find_opt idx.words (String.lowercase_ascii w))

let n_entries idx = Array.length idx.sorted

(* ------------------------------------------------------------------ *)
(* Incremental maintenance (lib/incr)                                   *)
(* ------------------------------------------------------------------ *)

(* Apply an edge-level delta: removed occurrences leave the entry array
   and the word table (one matching entry each — entries are a
   multiset), added ones are merged in.  The array merge keeps the
   by-text sort invariant without re-tokenizing the whole corpus, which
   is where a full [build] spends its time.  Canonical bytes re-sort by
   the full entry order, so maintenance is invisible to byte-identity. *)
let apply idx ~added ~removed =
  let entry_of o = Option.map (fun text -> (text, o)) (text_of o.label) in
  let added = List.filter_map entry_of added in
  let removed = List.filter_map entry_of removed in
  let words = Hashtbl.copy idx.words in
  let drop_word_occ w occ =
    match Hashtbl.find_opt words w with
    | None -> ()
    | Some occs ->
      let rec drop_one = function
        | [] -> []
        | o :: rest -> if o = occ then rest else o :: drop_one rest
      in
      (match drop_one occs with
      | [] -> Hashtbl.remove words w
      | occs -> Hashtbl.replace words w occs)
  in
  List.iter
    (fun (text, occ) ->
      List.iter (fun w -> drop_word_occ w occ) (List.sort_uniq String.compare (tokenize text)))
    removed;
  List.iter
    (fun (text, occ) ->
      List.iter
        (fun w ->
          let occs = Option.value ~default:[] (Hashtbl.find_opt words w) in
          Hashtbl.replace words w (occ :: occs))
        (List.sort_uniq String.compare (tokenize text)))
    added;
  (* Multiset-subtract the removed entries from the sorted array, then
     merge the added ones (sorted by text) back in. *)
  let pending = Hashtbl.create (List.length removed * 2) in
  List.iter
    (fun e -> Hashtbl.replace pending e (1 + Option.value ~default:0 (Hashtbl.find_opt pending e)))
    removed;
  let kept =
    if removed = [] then idx.sorted
    else
      Array.of_seq
        (Seq.filter
           (fun e ->
             match Hashtbl.find_opt pending e with
             | Some n when n > 0 ->
               Hashtbl.replace pending e (n - 1);
               false
             | _ -> true)
           (Array.to_seq idx.sorted))
  in
  let added_arr = Array.of_list added in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) added_arr;
  let merged = Array.make (Array.length kept + Array.length added_arr) ("", { src = 0; label = Label.Int 0; dst = 0 }) in
  let i = ref 0 and j = ref 0 in
  for k = 0 to Array.length merged - 1 do
    let take_added =
      !i >= Array.length kept
      || (!j < Array.length added_arr
         && String.compare (fst added_arr.(!j)) (fst kept.(!i)) < 0)
    in
    if take_added then begin
      merged.(k) <- added_arr.(!j);
      incr j
    end
    else begin
      merged.(k) <- kept.(!i);
      incr i
    end
  done;
  { sorted = merged; words }

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0

(* ------------------------------------------------------------------ *)
(* Canonical serialization (persistent store segments)                  *)
(* ------------------------------------------------------------------ *)

module B = Ssd_storage.Bytesio

let magic = "SSDT"

(* Full order on entries — the in-memory [sorted] array orders only by
   text (unstable among equal texts), so canonical bytes re-sort by
   (text, src, label, dst). *)
let compare_entry (ta, a) (tb, b) =
  match String.compare ta tb with
  | 0 -> (
    match compare a.src b.src with
    | 0 -> (
      match Label.compare a.label b.label with 0 -> compare a.dst b.dst | c -> c)
    | c -> c)
  | c -> c

(* Only the entry list is serialized; the word table is a deterministic
   function of it (tokenize) and is rebuilt on load. *)
let to_bytes idx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  let entries = List.sort compare_entry (Array.to_list idx.sorted) in
  B.put_varint buf (List.length entries);
  List.iter
    (fun (text, o) ->
      B.put_string buf text;
      B.put_varint buf o.src;
      B.put_label buf o.label;
      B.put_varint buf o.dst)
    entries;
  Buffer.to_bytes buf

let index_entries entries =
  let words = Hashtbl.create 256 in
  List.iter
    (fun (text, occ) ->
      List.iter
        (fun w ->
          let occs = Option.value ~default:[] (Hashtbl.find_opt words w) in
          Hashtbl.replace words w (occ :: occs))
        (List.sort_uniq String.compare (tokenize text)))
    entries;
  let sorted = Array.of_list entries in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) sorted;
  { sorted; words }

let of_bytes data =
  let r = B.reader data in
  B.expect_magic r magic;
  let n = B.get_varint r in
  B.check_count r ~what:"a text-index entry count" ~unit_bytes:4 n;
  let entries = ref [] in
  for _ = 1 to n do
    let text = B.get_string r in
    let src = B.get_varint r in
    let label = B.get_label r in
    let dst = B.get_varint r in
    entries := (text, { src; label; dst }) :: !entries
  done;
  B.expect_end r;
  index_entries (List.rev !entries)

let scan_contains g needle =
  Graph.fold_labeled_edges
    (fun acc src l dst ->
      match text_of l with
      | Some text when contains_substring text needle -> { src; label = l; dst } :: acc
      | _ -> acc)
    [] g
