module Label = Ssd.Label
module Graph = Ssd.Graph
module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

(* Probe/hit counters (lib/obs): a probe is any [find]; a hit is a probe
   answered by the table (the path occurs in the data and is within the
   indexed depth). *)
let m_builds = Metrics.counter "index.path.builds"
let m_probes = Metrics.counter "index.path.probes"
let m_hits = Metrics.counter "index.path.hits"

type t = {
  depth : int;
  table : (Label.t list, int list) Hashtbl.t;
}

module Int_set = Set.Make (Int)

let build ~depth g =
  Metrics.incr m_builds;
  Trace.with_span "index.path.build" ~attrs:[ ("depth", Trace.Int depth) ]
  @@ fun () ->
  let table = Hashtbl.create 1024 in
  (* Level-by-level: frontier maps each path of the current length to its
     node set; cycles are harmless because length strictly grows. *)
  let frontier = ref [ ([], Int_set.singleton (Graph.root g)) ] in
  Hashtbl.replace table [] [ Graph.root g ];
  for _ = 1 to depth do
    (* Each frontier entry extends independently (pure graph reads), so
       one level expands across the pool; per-path node sets are merged
       by set union, which is order-insensitive, so the table contents
       are identical for every --jobs value. *)
    let items = Array.of_list !frontier in
    let expanded =
      Ssd_par.Pool.map_range (Array.length items) (fun i ->
          let path, nodes = items.(i) in
          let local = Hashtbl.create 16 in
          Int_set.iter
            (fun u ->
              List.iter
                (fun (l, v) ->
                  let path' = l :: path in
                  let set =
                    Option.value ~default:Int_set.empty (Hashtbl.find_opt local path')
                  in
                  Hashtbl.replace local path' (Int_set.add v set))
                (Graph.labeled_succ g u))
            nodes;
          local)
    in
    let next = Hashtbl.create 64 in
    Array.iter
      (Hashtbl.iter (fun path' set ->
           let cur =
             Option.value ~default:Int_set.empty (Hashtbl.find_opt next path')
           in
           Hashtbl.replace next path' (Int_set.union cur set)))
      expanded;
    frontier :=
      Hashtbl.fold
        (fun path set acc ->
          Hashtbl.replace table (List.rev path) (Int_set.elements set);
          (path, set) :: acc)
        next []
  done;
  { depth; table }

let find idx path =
  Metrics.incr m_probes;
  Trace.bump "index_probes" 1;
  if List.length path > idx.depth then None
  else begin
    match Hashtbl.find_opt idx.table path with
    | Some nodes ->
      Metrics.incr m_hits;
      Trace.bump "index_hits" 1;
      Some nodes
    | None -> Some []
  end

let depth idx = idx.depth
let n_paths idx = Hashtbl.length idx.table

(* ------------------------------------------------------------------ *)
(* Incremental maintenance (lib/incr)                                   *)
(* ------------------------------------------------------------------ *)

let fold_pairs f idx acc = Hashtbl.fold f idx.table acc

(* Add one (path, node) pair; true if it was new.  Node lists lose the
   sorted-ness a fresh [build] leaves ([Int_set.elements]) — harmless:
   [find] answers sets and [to_bytes] re-sorts canonically. *)
let add_pair idx path node =
  match Hashtbl.find_opt idx.table path with
  | None ->
    Hashtbl.replace idx.table path [ node ];
    true
  | Some nodes ->
    if List.mem node nodes then false
    else begin
      Hashtbl.replace idx.table path (node :: nodes);
      true
    end

let copy idx = { depth = idx.depth; table = Hashtbl.copy idx.table }

(* ------------------------------------------------------------------ *)
(* Canonical serialization (persistent store segments)                  *)
(* ------------------------------------------------------------------ *)

module B = Ssd_storage.Bytesio

let magic = "SSDH"

let compare_path = List.compare Label.compare

(* Canonical: paths sorted lexicographically by [Label.compare]; node
   lists are already sorted ([Int_set.elements]) but are re-sorted
   defensively so equality of bytes never depends on build internals. *)
let to_bytes idx =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  B.put_varint buf idx.depth;
  let entries = Hashtbl.fold (fun p ns acc -> (p, ns) :: acc) idx.table [] in
  let entries = List.sort (fun (a, _) (b, _) -> compare_path a b) entries in
  B.put_varint buf (List.length entries);
  List.iter
    (fun (path, nodes) ->
      B.put_varint buf (List.length path);
      List.iter (B.put_label buf) path;
      let nodes = List.sort_uniq compare nodes in
      B.put_varint buf (List.length nodes);
      List.iter (B.put_varint buf) nodes)
    entries;
  Buffer.to_bytes buf

let of_bytes data =
  let r = B.reader data in
  B.expect_magic r magic;
  let depth = B.get_varint r in
  let n = B.get_varint r in
  B.check_count r ~what:"a path-index path count" ~unit_bytes:2 n;
  let table = Hashtbl.create (2 * n) in
  for _ = 1 to n do
    let len = B.get_varint r in
    B.check_count r ~what:"a path length" ~unit_bytes:1 len;
    let path = ref [] in
    for _ = 1 to len do
      path := B.get_label r :: !path
    done;
    let path = List.rev !path in
    let k = B.get_varint r in
    B.check_count r ~what:"a path-index node count" ~unit_bytes:1 k;
    let nodes = ref [] in
    for _ = 1 to k do
      nodes := B.get_varint r :: !nodes
    done;
    Hashtbl.replace table path (List.rev !nodes)
  done;
  B.expect_end r;
  { depth; table }

let traverse g path =
  let step nodes l =
    Int_set.fold
      (fun u acc ->
        List.fold_left
          (fun acc (l', v) -> if Label.equal l l' then Int_set.add v acc else acc)
          acc (Graph.labeled_succ g u))
      nodes Int_set.empty
  in
  Int_set.elements (List.fold_left step (Int_set.singleton (Graph.root g)) path)
