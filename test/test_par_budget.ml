(* Budgets under parallel evaluation.

   Workers consume the (atomic) step budget concurrently, so *which*
   prefix of the work gets done before exhaustion may differ from the
   sequential run — but a parallel [Partial] answer must still be a
   sound lower bound of the sequential [Complete] one, and exhaustion
   must never deadlock the pool or leak worker domains. *)

module Pool = Ssd_par.Pool
module Budget = Ssd.Budget
module Label = Ssd.Label
open Gen

let check = Alcotest.(check bool)

let with_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let unql_parallel_partial_is_lower_bound =
  qtest "unql: parallel partial simulated by sequential complete" ~count:50
    (Q.triple graph unql_query (Q.int_range 1 60))
    (fun (db, q, steps) ->
      let complete = Unql.Eval.eval ~db q in
      with_jobs 4 (fun () ->
          let budget = Budget.create ~max_steps:steps () in
          match Unql.Eval.eval_outcome ~budget ~db q with
          | Budget.Complete g -> Ssd.Bisim.equal g complete
          | Budget.Partial (g, Budget.Steps) -> Ssd.Simulation.simulates g complete
          | Budget.Partial _ -> false))

let datalog_parallel_partial_is_subset =
  let edb =
    [
      ("e", List.init 40 (fun i -> [ Label.int i; Label.int (i + 1) ]));
      ("start", [ [ Label.int 0 ] ]);
      ("node", List.init 41 (fun i -> [ Label.int i ]));
    ]
  in
  let program =
    Relstore.Datalog.parse
      {| reach(?X) :- start(?X).
         reach(?Y) :- reach(?X), e(?X, ?Y).
         unreach(?X) :- node(?X), not reach(?X). |}
  in
  let tuples pred facts = try List.assoc pred facts with Not_found -> [] in
  qtest "datalog: parallel partial facts subset of least model" ~count:60
    (Q.int_range 1 300)
    (fun steps ->
      let complete = Relstore.Datalog.eval ~edb program in
      with_jobs 4 (fun () ->
          let budget = Budget.create ~max_steps:steps () in
          match Relstore.Datalog.eval_outcome ~budget ~edb program with
          | Budget.Complete facts ->
            List.for_all
              (fun (pred, ts) ->
                List.sort compare ts = List.sort compare (tuples pred complete))
              facts
          | Budget.Partial (facts, Budget.Steps) ->
            List.for_all
              (fun (pred, ts) ->
                let full = tuples pred complete in
                List.for_all (fun t -> List.mem t full) ts)
              facts
          | Budget.Partial _ -> false))

let budget_overshoot_is_bounded =
  (* Concurrent Budget.step callers may each win a grant before seeing
     the trip, so the grant count can exceed max_steps — but only by at
     most the number of racing domains. *)
  qtest "budget: concurrent grants overshoot by at most #domains" ~count:30
    (Q.pair (Q.int_range 1 200) (Q.oneofl [ 2; 4; 8 ]))
    (fun (max_steps, domains) ->
      let b = Budget.create ~max_steps () in
      let granted = Atomic.make 0 in
      let worker () =
        for _ = 1 to max_steps do
          if Budget.step b then Atomic.incr granted
        done
      in
      let ds = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join ds;
      let g = Atomic.get granted in
      g >= max_steps && g <= max_steps + domains
      && Budget.exhausted b = Some Budget.Steps
      && Budget.steps_used b <= max_steps)

let exceptions_propagate_and_pool_survives () =
  (* A raising worker function must re-raise on the caller, leave the
     pool reusable, and repeated setup/teardown must neither deadlock
     nor leak domains (the soak would hang or die if it did). *)
  for _ = 1 to 50 do
    let pool = Pool.create ~jobs:4 in
    let raised =
      try
        ignore
          (Pool.map_range ~pool ~min_par:1 64 (fun i ->
               if i = 33 then failwith "boom" else i));
        false
      with Failure m -> m = "boom"
    in
    check "exception propagates to caller" true raised;
    (* the barrier is intact: the next region on the same pool works *)
    let ok = Pool.map_range ~pool ~min_par:1 64 Fun.id = Array.init 64 Fun.id in
    check "pool survives a failed region" true ok;
    Pool.shutdown pool;
    (* shutdown is idempotent *)
    Pool.shutdown pool
  done

let exhaustion_mid_region_terminates () =
  (* Budget exhaustion inside a parallel region must stop cleanly: the
     evaluator returns Partial, never hangs on the barrier. *)
  let db = Ssd_workload.Webgraph.generate ~n_pages:200 () in
  let q =
    Unql.Parser.parse
      {| select {t: \T} where {<host.page.(link)*.title>: \T} <- DB |}
  in
  let complete = Unql.Eval.eval ~db q in
  with_jobs 4 (fun () ->
      List.iter
        (fun steps ->
          let budget = Budget.create ~max_steps:steps () in
          match Unql.Eval.eval_outcome ~budget ~db q with
          | Budget.Complete g ->
            check "complete matches" true (Ssd.Bisim.equal g complete)
          | Budget.Partial (g, _) ->
            check "partial is lower bound" true (Ssd.Simulation.simulates g complete))
        [ 1; 7; 50; 400; 3000 ])

let tests =
  [
    unql_parallel_partial_is_lower_bound;
    datalog_parallel_partial_is_subset;
    budget_overshoot_is_bounded;
    Alcotest.test_case "pool: exceptions propagate, setup/teardown soak" `Quick
      exceptions_propagate_and_pool_survives;
    Alcotest.test_case "budget: exhaustion mid-region terminates" `Quick
      exhaustion_mid_region_terminates;
  ]
