(* Smoke test for the real socket server: a server on a temp Unix
   socket, scripted clients covering the happy path, pipelining,
   malformed and oversized frames, and a mid-request disconnect, then a
   clean shutdown with no leaked fds.  Everything in-process, so the
   engine's store is inspectable alongside the wire traffic. *)

module Engine = Ssd_serve.Engine
module Server = Ssd_serve.Server
module Proto = Ssd_serve.Proto
module Graph = Ssd.Graph

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_serve: FAIL " ^ m); exit 1) fmt

let expect what cond = if not cond then fail "%s" what

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let sock_path = Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ssdql_check_serve_%d.sock" (Unix.getpid ()))

(* ------------------------------------------------------------------ *)
(* A minimal scripted client                                           *)
(* ------------------------------------------------------------------ *)

let connect () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
  | () -> ()
  | exception e ->
    Unix.close fd;
    raise e);
  fd

let send fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Read until [k] complete response frames have arrived (blocking; the
   test harness runs under dune's timeout if the server wedges). *)
let read_frames fd k =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec parse_all pos acc =
    if List.length acc = k then List.rev acc
    else
      match Proto.parse_response (Buffer.contents buf) pos with
      | Ok (r, pos') -> parse_all pos' (r :: acc)
      | Error `Incomplete -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> fail "connection closed with %d of %d frames read" (List.length acc) k
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          parse_all pos acc)
      | Error (`Malformed why) -> fail "malformed frame from server: %s" why
  in
  parse_all 0 []

let rpc k reqs =
  let fd = connect () in
  send fd reqs;
  let frames = read_frames fd k in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  frames

(* Read until EOF, returning the frames seen (for close-after-response
   scenarios). *)
let rpc_until_eof reqs =
  let fd = connect () in
  send fd reqs;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let rec parse_all pos acc =
    match Proto.parse_response (Buffer.contents buf) pos with
    | Ok (r, pos') -> parse_all pos' (r :: acc)
    | Error _ -> List.rev acc
  in
  parse_all 0 []

(* ------------------------------------------------------------------ *)

let () =
  (* Warm up the domain runtime once so its persistent fds (if any) are
     allocated before the leak baseline is taken. *)
  Domain.join (Domain.spawn (fun () -> ()));
  let db = Ssd_workload.Movies.figure1 () in
  let store = Engine.store ~db () in
  let config = { Engine.default_config with Engine.max_frame = 4096 } in
  let engine = Engine.create ~config store in
  let baseline = fd_count () in
  let server = Server.start ~workers:3 ~engine (Server.Unix_sock sock_path) in

  let q = {| select {t: \T} where {entry.movie.title: \T} <- DB |} in
  let expected_body g = Graph.to_string (Unql.Eval.eval ~db:g (Unql.Parser.parse q)) ^ "\n" in

  (* happy path: the response body is byte-identical to the CLI *)
  (match rpc 1 (Printf.sprintf "QUERY - %s\n" q) with
  | [ r ] ->
    expect "happy path complete" (r.Proto.status = Proto.Complete);
    expect "happy path matches the CLI rendering" (String.equal r.Proto.body (expected_body db))
  | _ -> fail "happy path frame count");

  (* pipelining: one burst, responses strictly FIFO *)
  (match rpc 3 (Printf.sprintf "PING\nQUERY - %s\nPING\n" q) with
  | [ a; b; c ] ->
    expect "pipelined FIFO"
      (String.equal a.Proto.body "pong\n"
      && String.equal b.Proto.body (expected_body db)
      && String.equal c.Proto.body "pong\n")
  | _ -> fail "pipelined frame count");

  (* malformed frame: typed SSD550, connection stays usable *)
  (match rpc 2 "BOGUS verb\nPING\n" with
  | [ e; p ] ->
    expect "malformed gets SSD550"
      (e.Proto.status = Proto.Error && String.equal e.Proto.detail "SSD550");
    expect "connection survives a malformed frame" (String.equal p.Proto.body "pong\n")
  | _ -> fail "malformed frame count");

  (* oversized frame: SSD551 and the server closes the connection *)
  (match rpc_until_eof ("QUERY - " ^ String.make 5000 'x' ^ "\n") with
  | [ e ] ->
    expect "oversized gets SSD551"
      (e.Proto.status = Proto.Error && String.equal e.Proto.detail "SSD551")
  | frames -> fail "oversized: got %d frames" (List.length frames));

  (* oversized without any newline at all: reader cuts the flood *)
  (match rpc_until_eof (String.make 9000 'y') with
  | [ e ] -> expect "unframed flood gets SSD551" (String.equal e.Proto.detail "SSD551")
  | frames -> fail "flood: got %d frames" (List.length frames));

  (* mid-request disconnect: dropped without an answer, server unharmed *)
  let fd = connect () in
  send fd "QUERY - select";
  Unix.close fd;
  (match rpc 1 "PING\n" with
  | [ p ] -> expect "server survives a mid-request disconnect" (String.equal p.Proto.body "pong\n")
  | _ -> fail "post-disconnect frame count");

  (* update through the wire, then query reflects it *)
  (match
     rpc 2
       (Printf.sprintf "UPDATE - insert DB.entry := {movie: {title: \"Wire\"}}\nQUERY - %s\n" q)
   with
  | [ u; r ] ->
    expect "update acknowledged" (u.Proto.status = Proto.Complete);
    expect "query after update matches direct eval on the new db"
      (String.equal r.Proto.body (expected_body (Engine.store_db store)));
    expect "and the update is visible"
      (not (String.equal r.Proto.body (expected_body db)))
  | _ -> fail "update frame count");

  (* stats and quit *)
  (match rpc_until_eof "STATS\nQUIT\n" with
  | [ s; b ] ->
    expect "stats is a complete frame" (s.Proto.status = Proto.Complete);
    expect "quit says bye and closes" (String.equal b.Proto.body "bye\n")
  | frames -> fail "stats/quit: got %d frames" (List.length frames));

  (* graceful shutdown: also covers a client still connected *)
  let lingering = connect () in
  send lingering "PING\n";
  ignore (read_frames lingering 1);
  Server.stop server;
  (try Unix.close lingering with Unix.Unix_error _ -> ());
  expect "socket file removed" (not (Sys.file_exists sock_path));
  expect "server refuses new connections"
    (match connect () with
    | fd ->
      Unix.close fd;
      false
    | exception Unix.Unix_error _ -> true);
  let after = fd_count () in
  if after > baseline then fail "leaked %d fds (%d -> %d)" (after - baseline) baseline after;
  let s = Engine.stats engine in
  expect "every request was counted" (s.Engine.requests >= 11);
  expect "no spurious sheds in a quiet run" (s.Engine.shed = 0);
  print_endline "check_serve: ok"
