(* Smoke test for the real socket server: a server on a temp Unix
   socket, scripted clients covering the happy path, pipelining,
   malformed and oversized frames, and a mid-request disconnect, then a
   clean shutdown with no leaked fds.  Everything in-process, so the
   engine's store is inspectable alongside the wire traffic. *)

module Engine = Ssd_serve.Engine
module Server = Ssd_serve.Server
module Proto = Ssd_serve.Proto
module Graph = Ssd.Graph

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_serve: FAIL " ^ m); exit 1) fmt

let expect what cond = if not cond then fail "%s" what

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let sock_path = Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ssdql_check_serve_%d.sock" (Unix.getpid ()))

(* ------------------------------------------------------------------ *)
(* A minimal scripted client                                           *)
(* ------------------------------------------------------------------ *)

let connect_to path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
    Unix.close fd;
    raise e);
  fd

let connect () = connect_to sock_path

let send fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Read until [k] complete response frames have arrived (blocking; the
   test harness runs under dune's timeout if the server wedges). *)
let read_frames fd k =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec parse_all pos acc =
    if List.length acc = k then List.rev acc
    else
      match Proto.parse_response (Buffer.contents buf) pos with
      | Ok (r, pos') -> parse_all pos' (r :: acc)
      | Error `Incomplete -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> fail "connection closed with %d of %d frames read" (List.length acc) k
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          parse_all pos acc)
      | Error (`Malformed why) -> fail "malformed frame from server: %s" why
  in
  parse_all 0 []

let rpc_at path k reqs =
  let fd = connect_to path in
  send fd reqs;
  let frames = read_frames fd k in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  frames

let rpc k reqs = rpc_at sock_path k reqs

(* Read until EOF, returning the frames seen (for close-after-response
   scenarios). *)
let rpc_until_eof reqs =
  let fd = connect () in
  send fd reqs;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let rec parse_all pos acc =
    match Proto.parse_response (Buffer.contents buf) pos with
    | Ok (r, pos') -> parse_all pos' (r :: acc)
    | Error _ -> List.rev acc
  in
  parse_all 0 []

(* ------------------------------------------------------------------ *)

let () =
  (* Warm up the domain runtime once so its persistent fds (if any) are
     allocated before the leak baseline is taken. *)
  Domain.join (Domain.spawn (fun () -> ()));
  let db = Ssd_workload.Movies.figure1 () in
  let store = Engine.store ~db () in
  let config = { Engine.default_config with Engine.max_frame = 4096 } in
  let engine = Engine.create ~config store in
  let baseline = fd_count () in
  let server = Server.start ~workers:3 ~engine (Server.Unix_sock sock_path) in

  let q = {| select {t: \T} where {entry.movie.title: \T} <- DB |} in
  let expected_body g = Graph.to_string (Unql.Eval.eval ~db:g (Unql.Parser.parse q)) ^ "\n" in

  (* happy path: the response body is byte-identical to the CLI *)
  (match rpc 1 (Printf.sprintf "QUERY - %s\n" q) with
  | [ r ] ->
    expect "happy path complete" (r.Proto.status = Proto.Complete);
    expect "happy path matches the CLI rendering" (String.equal r.Proto.body (expected_body db))
  | _ -> fail "happy path frame count");

  (* pipelining: one burst, responses strictly FIFO *)
  (match rpc 3 (Printf.sprintf "PING\nQUERY - %s\nPING\n" q) with
  | [ a; b; c ] ->
    expect "pipelined FIFO"
      (String.equal a.Proto.body "pong\n"
      && String.equal b.Proto.body (expected_body db)
      && String.equal c.Proto.body "pong\n")
  | _ -> fail "pipelined frame count");

  (* malformed frame: typed SSD550, connection stays usable *)
  (match rpc 2 "BOGUS verb\nPING\n" with
  | [ e; p ] ->
    expect "malformed gets SSD550"
      (e.Proto.status = Proto.Error && String.equal e.Proto.detail "SSD550");
    expect "connection survives a malformed frame" (String.equal p.Proto.body "pong\n")
  | _ -> fail "malformed frame count");

  (* oversized frame: SSD551 and the server closes the connection *)
  (match rpc_until_eof ("QUERY - " ^ String.make 5000 'x' ^ "\n") with
  | [ e ] ->
    expect "oversized gets SSD551"
      (e.Proto.status = Proto.Error && String.equal e.Proto.detail "SSD551")
  | frames -> fail "oversized: got %d frames" (List.length frames));

  (* oversized without any newline at all: reader cuts the flood *)
  (match rpc_until_eof (String.make 9000 'y') with
  | [ e ] -> expect "unframed flood gets SSD551" (String.equal e.Proto.detail "SSD551")
  | frames -> fail "flood: got %d frames" (List.length frames));

  (* mid-request disconnect: dropped without an answer, server unharmed *)
  let fd = connect () in
  send fd "QUERY - select";
  Unix.close fd;
  (match rpc 1 "PING\n" with
  | [ p ] -> expect "server survives a mid-request disconnect" (String.equal p.Proto.body "pong\n")
  | _ -> fail "post-disconnect frame count");

  (* update through the wire, then query reflects it *)
  (match
     rpc 2
       (Printf.sprintf "UPDATE - insert DB.entry := {movie: {title: \"Wire\"}}\nQUERY - %s\n" q)
   with
  | [ u; r ] ->
    expect "update acknowledged" (u.Proto.status = Proto.Complete);
    expect "query after update matches direct eval on the new db"
      (String.equal r.Proto.body (expected_body (Engine.store_db store)));
    expect "and the update is visible"
      (not (String.equal r.Proto.body (expected_body db)))
  | _ -> fail "update frame count");

  (* stats and quit *)
  (match rpc_until_eof "STATS\nQUIT\n" with
  | [ s; b ] ->
    expect "stats is a complete frame" (s.Proto.status = Proto.Complete);
    expect "quit says bye and closes" (String.equal b.Proto.body "bye\n")
  | frames -> fail "stats/quit: got %d frames" (List.length frames));

  (* graceful shutdown: also covers a client still connected *)
  let lingering = connect () in
  send lingering "PING\n";
  ignore (read_frames lingering 1);
  Server.stop server;
  (try Unix.close lingering with Unix.Unix_error _ -> ());
  expect "socket file removed" (not (Sys.file_exists sock_path));
  expect "server refuses new connections"
    (match connect () with
    | fd ->
      Unix.close fd;
      false
    | exception Unix.Unix_error _ -> true);
  let after = fd_count () in
  if after > baseline then fail "leaked %d fds (%d -> %d)" (after - baseline) baseline after;
  let s = Engine.stats engine in
  expect "every request was counted" (s.Engine.requests >= 11);
  expect "no spurious sheds in a quiet run" (s.Engine.shed = 0);
  print_endline "check_serve: ok"

(* ------------------------------------------------------------------ *)
(* Store lifecycle through the real binary (only when dune passes the
   ssdql path): SIGTERM closes the store cleanly so the next open skips
   recovery, SIGKILL forces recovery on restart, and every UPDATE that
   was acknowledged on the wire survives both.                         *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1)) in
  go 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

let wait_for ?(timeout = 10.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if not (pred ()) then
      if Unix.gettimeofday () -. t0 > timeout then fail "timed out waiting for %s" what
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let () =
  match Sys.argv with
  | [| _; ssdql |] ->
    let dir = Filename.temp_file "ssdql_store" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let store_sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ssdql_check_store_%d.sock" (Unix.getpid ()))
    in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let init =
      Unix.create_process ssdql
        [| ssdql; "store"; "init"; "--store"; dir; "-d"; "builtin:figure1" |]
        Unix.stdin devnull devnull
    in
    (match Unix.waitpid [] init with
    | _, Unix.WEXITED 0 -> ()
    | _ -> fail "store init failed");
    Unix.close devnull;
    let spawn_serve log =
      let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
      let pid =
        Unix.create_process ssdql
          [| ssdql; "serve"; "--store"; dir; "--socket"; store_sock; "--workers"; "2" |]
          Unix.stdin Unix.stdout logfd
      in
      Unix.close logfd;
      wait_for "serve socket" (fun () -> Sys.file_exists store_sock);
      pid
    in
    let update title =
      match
        rpc_at store_sock 1
          (Printf.sprintf "UPDATE - insert DB.entry := {movie: {title: \"%s\"}}\n" title)
      with
      | [ u ] -> expect (title ^ " acknowledged") (u.Proto.status = Proto.Complete)
      | _ -> fail "update frame count (%s)" title
    in

    (* serve #1: fresh store opens clean; SIGTERM writes a checkpoint *)
    let log1 = Filename.temp_file "ssdql_serve1" ".log" in
    let pid1 = spawn_serve log1 in
    expect "serve #1 opens clean" (contains (read_file log1) "store clean open (no recovery)");
    update "Durable1";
    Unix.kill pid1 Sys.sigterm;
    (match Unix.waitpid [] pid1 with
    | _, Unix.WEXITED 0 -> ()
    | _ -> fail "serve #1 did not exit cleanly on SIGTERM");
    expect "SIGTERM closes the store cleanly"
      (contains (read_file log1) "store closed cleanly (checkpoint written)");

    (* serve #2: the checkpoint means no recovery; then kill -9 *)
    let log2 = Filename.temp_file "ssdql_serve2" ".log" in
    let pid2 = spawn_serve log2 in
    expect "restart after SIGTERM skips recovery"
      (contains (read_file log2) "store clean open (no recovery)");
    update "Durable2";
    Unix.kill pid2 Sys.sigkill;
    (match Unix.waitpid [] pid2 with
    | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
    | _ -> fail "serve #2 not killed as expected");
    if Sys.file_exists store_sock then Sys.remove store_sock;

    (* serve #3: recovery replays the log; both acked updates survive *)
    let log3 = Filename.temp_file "ssdql_serve3" ".log" in
    let pid3 = spawn_serve log3 in
    expect "restart after kill -9 performs recovery"
      (contains (read_file log3) "store recovered (");
    (match rpc_at store_sock 1 "QUERY - select {t: \\T} where {entry.movie.title: \\T} <- DB\n" with
    | [ r ] ->
      expect "query after recovery completes" (r.Proto.status = Proto.Complete);
      expect "update acked before SIGTERM survives" (contains r.Proto.body "Durable1");
      expect "update acked before kill -9 survives" (contains r.Proto.body "Durable2")
    | _ -> fail "post-recovery query frame count");
    (* One more acked update, then kill -9 again: the WAL now holds an
       index version produced by the in-server incremental maintainer
       (the insert above took the monotone fast path).  Recover the
       store in-process and demand every index segment is byte-identical
       to a cold rebuild from the recovered graph — incremental
       maintenance must not be observable in the durable bytes. *)
    update "Durable3";
    Unix.kill pid3 Sys.sigkill;
    (match Unix.waitpid [] pid3 with
    | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
    | _ -> fail "serve #3 not killed as expected");
    if Sys.file_exists store_sock then Sys.remove store_sock;
    let module Store = Ssd_store.Store in
    let st = Store.open_ (Ssd_store.Vfs.real dir) in
    expect "in-process open after kill -9 performs recovery"
      (not (Store.recovery st).Store.was_clean);
    let g = Store.graph st in
    let cold name =
      match name with
      | "value" -> Ssd_index.Value_index.to_bytes (Ssd_index.Value_index.build g)
      | "text" -> Ssd_index.Text_index.to_bytes (Ssd_index.Text_index.build g)
      | "path" ->
        Ssd_index.Path_index.to_bytes
          (Ssd_index.Path_index.build ~depth:(Store.path_depth st) g)
      | "guide" -> Ssd_schema.Dataguide.to_bytes (Ssd_schema.Dataguide.build g)
      | other -> fail "unknown index segment %S" other
    in
    expect "store maintains all four index segments" (List.length (Store.indexes st) = 4);
    List.iter
      (fun name ->
        expect
          (Printf.sprintf "recovered incremental %S segment matches a cold rebuild" name)
          (Bytes.equal (Store.index_segment_bytes st name) (cold name)))
      (Store.indexes st);
    Store.close st;
    print_endline "check_serve: store lifecycle ok"
  | _ -> ()
