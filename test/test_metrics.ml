(* Unit tests for the lib/obs metrics registry and trace spans, plus an
   integration check that evaluation actually feeds the default
   registry. *)

module Metrics = Ssd_obs.Metrics
module Trace = Ssd_obs.Trace

let counters () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.c" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.value c);
  (* registration is idempotent: same name, same instrument *)
  let c' = Metrics.counter ~registry:r "t.c" in
  Metrics.incr c';
  Alcotest.(check int) "same underlying counter" 43 (Metrics.value c);
  (* a name registered as a counter cannot come back as a timer *)
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: t.c already registered as a counter")
    (fun () -> ignore (Metrics.timer ~registry:r "t.c"))

let timers () =
  let r = Metrics.create () in
  let t = Metrics.timer ~registry:r "t.t" in
  let x = Metrics.time t (fun () -> 7) in
  Alcotest.(check int) "time returns the thunk's value" 7 x;
  Metrics.record_ns t 1_000.;
  Alcotest.(check int) "two samples" 2 (Metrics.timer_count t);
  Alcotest.(check bool) "total includes the recorded ns" true
    (Metrics.timer_total_ns t >= 1_000.);
  (* the timer records even when the thunk raises *)
  (try ignore (Metrics.time t (fun () -> failwith "boom")) with Failure _ -> ());
  Alcotest.(check int) "sample recorded on raise" 3 (Metrics.timer_count t)

let histograms () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "t.h" in
  List.iter (Metrics.observe h) [ 1.; 5.; 3.; 100. ];
  Alcotest.(check int) "count" 4 (Metrics.histogram_count h);
  Alcotest.(check (float 0.0)) "sum" 109. (Metrics.histogram_sum h)

let reset_and_isolation () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "t.c" in
  Metrics.add c 5;
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.value c);
  (* fresh registries are independent of the default one *)
  let d = Metrics.counter "t.isolated" in
  Metrics.incr d;
  Alcotest.(check bool) "default registry unaffected by r" true
    (Metrics.value d = 1 && Metrics.value c = 0)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let dumps_parse () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "t.c") 3;
  Metrics.record_ns (Metrics.timer ~registry:r "t.t") 500.;
  Metrics.observe (Metrics.histogram ~registry:r "t.h") 9.;
  let text = Metrics.dump_text r in
  Alcotest.(check bool) "text dump mentions the instruments" true
    (contains text "t.c" && contains text "t.t" && contains text "t.h");
  let json = Metrics.dump_json r in
  match Ssd.Json.parse json with
  | Ssd.Json.Obj kvs ->
    Alcotest.(check bool) "json has the three sections" true
      (List.mem_assoc "counters" kvs && List.mem_assoc "timers" kvs
      && List.mem_assoc "histograms" kvs)
  | _ -> Alcotest.fail "metrics json is not an object"

let percentiles () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "t.p" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let p50 = Metrics.percentile h 0.5 in
  let p90 = Metrics.percentile h 0.9 in
  let p99 = Metrics.percentile h 0.99 in
  Alcotest.(check bool) "percentiles are monotone" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "clamped to observed range" true (p50 >= 1. && p99 <= 100.);
  Alcotest.(check bool) "p50 is a coarse median" true (p50 >= 25. && p50 <= 100.);
  (* a single observation pins every percentile *)
  let h1 = Metrics.histogram ~registry:r "t.p1" in
  Metrics.observe h1 42.;
  Alcotest.(check (float 0.0)) "single sample p50" 42. (Metrics.percentile h1 0.5);
  Alcotest.(check (float 0.0)) "single sample p99" 42. (Metrics.percentile h1 0.99);
  (* and the dumps surface them *)
  let text = Metrics.dump_text r in
  Alcotest.(check bool) "text dump shows p50/p90/p99" true
    (contains text "p50" && contains text "p90" && contains text "p99");
  match Ssd.Json.parse (Metrics.dump_json r) with
  | Ssd.Json.Obj kvs -> (
    match List.assoc "histograms" kvs with
    | Ssd.Json.Obj hs -> (
      match List.assoc "t.p1" hs with
      | Ssd.Json.Obj fields ->
        Alcotest.(check bool) "json histogram has percentile fields" true
          (List.mem_assoc "p50" fields && List.mem_assoc "p90" fields
          && List.mem_assoc "p99" fields)
      | _ -> Alcotest.fail "histogram entry is not an object")
    | _ -> Alcotest.fail "no histograms section")
  | _ -> Alcotest.fail "metrics json is not an object"

let dumps_are_sorted () =
  let r = Metrics.create () in
  List.iter
    (fun name -> Metrics.incr (Metrics.counter ~registry:r name))
    [ "z.last"; "a.first"; "m.middle" ];
  let text = Metrics.dump_text r in
  let pos needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = if i + nn > nh then -1 else if String.sub text i nn = needle then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "text dump lists names in sorted order" true
    (pos "a.first" >= 0 && pos "a.first" < pos "m.middle"
    && pos "m.middle" < pos "z.last");
  match Ssd.Json.parse (Metrics.dump_json r) with
  | Ssd.Json.Obj kvs -> (
    match List.assoc "counters" kvs with
    | Ssd.Json.Obj cs ->
      let names = List.map fst cs in
      Alcotest.(check (list string)) "json counters sorted"
        [ "a.first"; "m.middle"; "z.last" ] names
    | _ -> Alcotest.fail "no counters section")
  | _ -> Alcotest.fail "metrics json is not an object"

let trace_spans () =
  Trace.clear ();
  (* disabled: no spans are collected *)
  Trace.disable ();
  ignore (Trace.with_span "dead" (fun () -> 1));
  Alcotest.(check int) "disabled collects nothing" 0 (List.length (Trace.spans ()));
  Trace.enable ();
  let v =
    Trace.with_span "outer" (fun () ->
        let a = Trace.with_span "inner1" (fun () -> 1) in
        let b = Trace.with_span "inner2" (fun () -> 2) in
        a + b)
  in
  Trace.disable ();
  Alcotest.(check int) "value passes through" 3 v;
  (match Trace.spans () with
  | [ outer ] ->
    Alcotest.(check string) "root span" "outer" outer.Trace.name;
    Alcotest.(check (list string)) "children in execution order"
      [ "inner1"; "inner2" ]
      (List.map (fun s -> s.Trace.name) outer.Trace.children)
  | spans -> Alcotest.fail (Printf.sprintf "expected 1 root span, got %d" (List.length spans)));
  Alcotest.(check bool) "render shows the tree" true
    (String.length (Trace.render ()) > 0);
  Trace.clear ()

let evaluation_feeds_default_registry () =
  let db = Ssd_workload.Movies.figure1 () in
  let q = Metrics.counter "unql.eval.queries" in
  let before = Metrics.value q in
  ignore (Unql.Eval.run ~db {| select {t: \T} where {entry.movie.title: \T} <- DB |});
  Alcotest.(check int) "unql.eval.queries bumped" (before + 1) (Metrics.value q);
  let n = Metrics.counter "unql.eval.nodes_visited" in
  Alcotest.(check bool) "nodes were counted" true (Metrics.value n > 0)

let tests =
  [
    Alcotest.test_case "counters" `Quick counters;
    Alcotest.test_case "timers" `Quick timers;
    Alcotest.test_case "histograms" `Quick histograms;
    Alcotest.test_case "reset and isolation" `Quick reset_and_isolation;
    Alcotest.test_case "dumps parse" `Quick dumps_parse;
    Alcotest.test_case "percentiles" `Quick percentiles;
    Alcotest.test_case "dumps are sorted" `Quick dumps_are_sorted;
    Alcotest.test_case "trace spans" `Quick trace_spans;
    Alcotest.test_case "evaluation feeds the default registry" `Quick
      evaluation_feeds_default_registry;
  ]
