(* Smoke check wired into `dune runtest`: the metrics JSON that
   `ssdql query --stats --stats-format json` emits must parse, contain
   the three registry sections with at least one counter, and hold no
   negative value — a monotonic counter gone negative means an
   instrumentation bug. *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("check_stats: " ^ s);
      exit 1)
    fmt

let () =
  if Array.length Sys.argv < 2 then fail "usage: check_stats METRICS.json";
  let path = Sys.argv.(1) in
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let module J = Ssd.Json in
  let json =
    match J.parse src with
    | j -> j
    | exception J.Parse_error msg -> fail "metrics json does not parse: %s" msg
  in
  let rec check_nonneg ctx = function
    | J.Int n -> if n < 0 then fail "negative counter %s = %d" ctx n
    | J.Float f -> if f < 0. then fail "negative value %s = %g" ctx f
    | J.Obj kvs -> List.iter (fun (k, v) -> check_nonneg (ctx ^ "." ^ k) v) kvs
    | J.List l ->
      List.iteri (fun i v -> check_nonneg (Printf.sprintf "%s[%d]" ctx i) v) l
    | J.Null | J.Bool _ | J.String _ -> ()
  in
  (match json with
  | J.Obj kvs ->
    List.iter
      (fun sect -> if not (List.mem_assoc sect kvs) then fail "missing %S section" sect)
      [ "counters"; "timers"; "histograms" ];
    (match List.assoc "counters" kvs with
    | J.Obj [] -> fail "no counters were recorded"
    | J.Obj cs ->
      (* the instrumented evaluator must have actually counted the query *)
      (match List.assoc_opt "unql.eval.queries" cs with
      | Some (J.Int n) when n >= 1 -> ()
      | Some _ | None -> fail "unql.eval.queries did not record the evaluation")
    | _ -> fail "counters section is not an object")
  | _ -> fail "metrics dump is not a json object");
  check_nonneg "metrics" json;
  print_endline "metrics json ok"
