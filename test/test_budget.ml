(* Budgets and graceful partial answers.

   The contract under test, for every evaluator: a budgeted run either
   returns [Complete] with exactly the unbudgeted answer, or [Partial]
   with a sound lower bound of it — never extra answers, never an
   exception. *)

module Budget = Ssd.Budget
module Graph = Ssd.Graph
module Label = Ssd.Label
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let step_budget_counts () =
  let b = Budget.create ~max_steps:5 () in
  let granted = ref 0 in
  for _ = 1 to 20 do
    if Budget.step b then incr granted
  done;
  check_int "exactly max_steps granted" 5 !granted;
  check_int "steps_used counts grants" 5 (Budget.steps_used b);
  check "exhausted with Steps" true (Budget.exhausted b = Some Budget.Steps);
  check "not alive" false (Budget.alive b);
  (* exhaustion is sticky and the first reason wins *)
  Budget.exhaust b Budget.Stalled;
  check "first reason wins" true (Budget.exhausted b = Some Budget.Steps)

let exempt_suspends () =
  let b = Budget.create ~max_steps:1 () in
  ignore (Budget.step b);
  check "budget spent" false (Budget.step b);
  (* conditions must stay exact even after exhaustion *)
  let inside = Budget.exempt b (fun () -> Budget.step b && Budget.step b) in
  check "steps free inside exempt" true inside;
  check_int "exempt consumed nothing" 1 (Budget.steps_used b);
  check "still exhausted outside" false (Budget.step b)

let unlimited_never_exhausts () =
  let b = Budget.unlimited () in
  for _ = 1 to 10_000 do
    ignore (Budget.step b)
  done;
  check "still alive" true (Budget.alive b);
  check "wrap says Complete" true (Budget.wrap b 42 = Budget.Complete 42)

let deadline_exhausts () =
  (* an already-expired deadline is noticed at the next 128-step check *)
  let b = Budget.create ~deadline_ms:0. () in
  let denied = ref false in
  for _ = 1 to 512 do
    if not (Budget.step b) then denied := true
  done;
  check "deadline denies steps" true !denied;
  check "reason is Deadline" true (Budget.exhausted b = Some Budget.Deadline)

(* ------------------------------------------------------------------ *)
(* Partial answers are sound lower bounds, per evaluator.              *)
(* ------------------------------------------------------------------ *)

let unql_partial_is_lower_bound =
  qtest "unql: partial result simulated by complete" ~count:60
    (Q.triple graph unql_query (Q.int_range 1 60))
    (fun (db, q, steps) ->
      let complete = Unql.Eval.eval ~db q in
      let budget = Budget.create ~max_steps:steps () in
      match Unql.Eval.eval_outcome ~budget ~db q with
      | Budget.Complete g -> Ssd.Bisim.equal g complete
      | Budget.Partial (g, Budget.Steps) -> Ssd.Simulation.simulates g complete
      | Budget.Partial _ -> false)

let lorel_partial_is_lower_bound =
  let db = Ssd_workload.Movies.generate ~n_entries:40 () in
  let queries =
    [
      "select X.title from DB.entry.movie X";
      "select X.title from DB.entry.% X where exists X.cast";
      "select X from DB.entry.movie.cast.# X";
    ]
  in
  qtest "lorel: partial result simulated by complete" ~count:60
    (Q.pair (Q.oneofl queries) (Q.int_range 1 300))
    (fun (src, steps) ->
      let q = Lorel.Parser.parse src in
      let complete = Lorel.Eval.eval ~db q in
      let budget = Budget.create ~max_steps:steps () in
      match Lorel.Eval.eval_outcome ~budget ~db q with
      | Budget.Complete g -> Ssd.Bisim.equal g complete
      | Budget.Partial (g, Budget.Steps) -> Ssd.Simulation.simulates g complete
      | Budget.Partial _ -> false)

let datalog_partial_is_lower_bound =
  let edb =
    [
      ("e", List.init 29 (fun i -> [ Label.int i; Label.int (i + 1) ]));
      ("start", [ [ Label.int 0 ] ]);
      ("node", List.init 30 (fun i -> [ Label.int i ]));
    ]
  in
  let program =
    Relstore.Datalog.parse
      {| reach(?X) :- start(?X).
         reach(?Y) :- reach(?X), e(?X, ?Y).
         unreach(?X) :- node(?X), not reach(?X). |}
  in
  let tuples pred facts = try List.assoc pred facts with Not_found -> [] in
  qtest "datalog: partial facts subset of least model" ~count:80
    (Q.int_range 1 400)
    (fun steps ->
      let complete = Relstore.Datalog.eval ~edb program in
      let budget = Budget.create ~max_steps:steps () in
      match Relstore.Datalog.eval_outcome ~budget ~edb program with
      | Budget.Complete facts ->
        List.for_all
          (fun (pred, ts) ->
            List.sort compare ts = List.sort compare (tuples pred complete))
          facts
      | Budget.Partial (facts, Budget.Steps) ->
        List.for_all
          (fun (pred, ts) ->
            let full = tuples pred complete in
            List.for_all (fun t -> List.mem t full) ts)
          facts
      | Budget.Partial _ -> false)

let tests =
  [
    Alcotest.test_case "step budget counts" `Quick step_budget_counts;
    Alcotest.test_case "exempt suspends the budget" `Quick exempt_suspends;
    Alcotest.test_case "unlimited never exhausts" `Quick unlimited_never_exhausts;
    Alcotest.test_case "deadline exhausts" `Quick deadline_exhausts;
    unql_partial_is_lower_bound;
    lorel_partial_is_lower_bound;
    datalog_partial_is_lower_bound;
  ]
