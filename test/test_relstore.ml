module Label = Ssd.Label
module Relation = Relstore.Relation
module Ra = Relstore.Ra
module Triple = Relstore.Triple
module Graph = Ssd.Graph
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)
(* ------------------------------------------------------------------ *)

let relation_basics () =
  let r = Relation.of_rows [ "a"; "b" ] [ [| Label.int 1; Label.str "x" |] ] in
  check_int "arity" 2 (Relation.arity r);
  check_int "cardinality" 1 (Relation.cardinality r);
  check_int "column" 1 (Relation.column r "b");
  check "mem" true (Relation.mem r [| Label.int 1; Label.str "x" |]);
  check "duplicate attrs rejected" true
    (match Relation.create [ "a"; "a" ] with
     | exception Ssd_diag.Fail d -> d.Ssd_diag.code = "SSD520"
     | _ -> false);
  check "arity mismatch rejected" true
    (match Relation.add (Relation.create [ "a" ]) [| Label.int 1; Label.int 2 |] with
     | exception Ssd_diag.Fail d -> d.Ssd_diag.code = "SSD520"
     | _ -> false)

let relation_set_semantics () =
  let r =
    Relation.of_rows [ "a" ] [ [| Label.int 1 |]; [| Label.int 1 |]; [| Label.int 2 |] ]
  in
  check_int "duplicates absorbed" 2 (Relation.cardinality r)

(* ------------------------------------------------------------------ *)
(* Relational algebra                                                  *)
(* ------------------------------------------------------------------ *)

let join_example () =
  let r = Relation.of_rows [ "a"; "b" ]
      [ [| Label.int 1; Label.str "x" |]; [| Label.int 2; Label.str "y" |] ] in
  let s = Relation.of_rows [ "b"; "c" ]
      [ [| Label.str "x"; Label.bool true |]; [| Label.str "z"; Label.bool false |] ] in
  let j = Ra.join r s in
  check_int "one matching row" 1 (Relation.cardinality j);
  check "combined row" true
    (Relation.mem j [| Label.int 1; Label.str "x"; Label.bool true |])

let cartesian_when_disjoint () =
  let r = Relation.of_rows [ "a" ] [ [| Label.int 1 |]; [| Label.int 2 |] ] in
  let s = Relation.of_rows [ "b" ] [ [| Label.int 3 |]; [| Label.int 4 |] ] in
  check_int "2x2 product" 4 (Relation.cardinality (Ra.join r s))

let rename_and_project () =
  let r = Relation.of_rows [ "a"; "b" ] [ [| Label.int 1; Label.int 2 |] ] in
  let r' = Ra.rename ("a", "z") r in
  check "renamed attr present" true (Array.to_list (Relation.attrs r') = [ "z"; "b" ]);
  let p = Ra.project [ "b" ] r in
  check "projection" true (Relation.mem p [| Label.int 2 |]);
  check "missing attr raises" true
    (match Ra.project [ "zz" ] r with exception Not_found -> true | _ -> false)

let abc = [ "a"; "b" ]

let ra_properties =
  [
    qtest "union commutative" (Q.pair (relation abc) (relation abc)) (fun (r, s) ->
        Relation.equal (Ra.union r s) (Ra.union s r));
    qtest "union/inter/diff partition" (Q.pair (relation abc) (relation abc)) (fun (r, s) ->
        (* r = (r - s) u (r n s) *)
        Relation.equal r (Ra.union (Ra.diff r s) (Ra.inter r s)));
    qtest "selection distributes over union"
      (Q.pair (relation abc) (relation abc))
      (fun (r, s) ->
        let p row = Label.compare row.(0) (Label.int 0) > 0 in
        Relation.equal
          (Ra.select p (Ra.union r s))
          (Ra.union (Ra.select p r) (Ra.select p s)));
    qtest "projection idempotent" (relation abc) (fun r ->
        let p = Ra.project [ "a" ] r in
        Relation.equal p (Ra.project [ "a" ] p));
    qtest "join with self on all attrs is identity" (relation abc) (fun r ->
        Relation.equal r (Ra.join r r));
    qtest "select true is identity" (relation abc) (fun r ->
        Relation.equal r (Ra.select (fun _ -> true) r));
    qtest "join cardinality bounded by product" (Q.pair (relation abc) (relation [ "b"; "c" ]))
      (fun (r, s) ->
        Relation.cardinality (Ra.join r s)
        <= Relation.cardinality r * Relation.cardinality s);
  ]

(* ------------------------------------------------------------------ *)
(* Triple encoding                                                     *)
(* ------------------------------------------------------------------ *)

let triple_roundtrip_fig1 () =
  let g = Ssd_workload.Movies.figure1 () in
  let back = Triple.to_graph ~edges:(Triple.edges g) ~root:(Triple.root g) in
  check "roundtrip bisimilar" true (Ssd.Bisim.equal g back)

let triple_properties =
  [
    qtest "to_graph inverts edges/root (bisim)" graph (fun g ->
        let g' = Triple.to_graph ~edges:(Triple.edges g) ~root:(Triple.root g) in
        Ssd.Bisim.equal g g');
    qtest "edge count matches eps-eliminated graph" graph (fun g ->
        Relation.cardinality (Triple.edges g)
        <= Graph.n_edges (Graph.eps_eliminate g));
    qtest "edb mirrors relations" graph (fun g ->
        let edb = Triple.edb g in
        List.length (List.assoc "edge" edb) >= Relation.cardinality (Triple.edges g)
        && List.length (List.assoc "root" edb) = 1);
  ]

let tests =
  [
    Alcotest.test_case "relation basics" `Quick relation_basics;
    Alcotest.test_case "relation set semantics" `Quick relation_set_semantics;
    Alcotest.test_case "join example" `Quick join_example;
    Alcotest.test_case "cartesian when disjoint" `Quick cartesian_when_disjoint;
    Alcotest.test_case "rename and project" `Quick rename_and_project;
    Alcotest.test_case "triple roundtrip figure1" `Quick triple_roundtrip_fig1;
  ]
  @ ra_properties @ triple_properties
