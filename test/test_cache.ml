(* The plan/result cache (satellite of the observability tentpole) must
   be semantically invisible: cached evaluation is bisimilar to direct
   evaluation on arbitrary graphs and queries, stays so across repeats,
   and an updated database is never answered from a stale entry (its
   fingerprint differs). *)

module Graph = Ssd.Graph
module Bisim = Ssd.Bisim
module Cache = Unql.Cache
module Q = QCheck2.Gen

let print_pair (g, q) =
  Printf.sprintf "query: %s\ndb: %s" (Unql.Pretty.expr_to_string q) (Graph.to_string g)

let props =
  [
    Gen.qtest "cached eval is bisimilar to direct eval (and repeats hit)" ~count:100
      ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let cache = Cache.create ~capacity:8 () in
        let direct = Unql.Eval.eval ~db:g q in
        let first = Cache.eval ~cache ~db:g q in
        let second = Cache.eval ~cache ~db:g q in
        let s = Cache.stats cache in
        Bisim.equal direct first && Bisim.equal direct second
        && s.Cache.misses = 1 && s.Cache.hits = 1);
    Gen.qtest "reordered query shares the normalized cache entry" ~count:60
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let cache = Cache.create () in
        ignore (Cache.eval ~cache ~db:g q);
        ignore (Cache.eval ~cache ~db:g (Unql.Optimize.reorder q));
        (Cache.stats cache).Cache.size = 1);
    Gen.qtest "after an update the cache still agrees with direct eval" ~count:60
      ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let cache = Cache.create () in
        ignore (Cache.eval ~cache ~db:g q);
        (* graft a marker under every a-edge target (may be a no-op when
           the graph has no a-edge — then the fingerprints may legally
           coincide and the hit is still correct) *)
        let g' = Lorel.Update.run ~db:g "insert DB.a := {zzmark: {}}" in
        let direct = Unql.Eval.eval ~db:g' q in
        let cached = Cache.eval ~cache ~db:g' q in
        Bisim.equal direct cached);
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests                                            *)
(* ------------------------------------------------------------------ *)

let q1 = Unql.Parser.parse {| select {t: \T} where {entry.movie.title: \T} <- DB |}
let q2 = Unql.Parser.parse {| select {y: \Y} where {entry.movie.year.\Y} <- DB |}
let q3 = Unql.Parser.parse {| select {c: \C} where {entry.movie.cast: \C} <- DB |}

let update_is_a_miss () =
  let db = Ssd_workload.Movies.figure1 () in
  let cache = Cache.create () in
  ignore (Cache.eval ~cache ~db q1);
  ignore (Cache.eval ~cache ~db q1);
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  (* a real mutation: fingerprint must change, so the lookup misses *)
  let db' = Lorel.Update.run ~db {| insert DB.entry := {seen: true} |} in
  Alcotest.(check bool) "fingerprints differ" true
    (Cache.fingerprint db <> Cache.fingerprint db');
  let direct = Unql.Eval.eval ~db:db' q1 in
  let cached = Cache.eval ~cache ~db:db' q1 in
  Alcotest.(check int) "mutated db misses" 2 (Cache.stats cache).Cache.misses;
  Alcotest.(check bool) "and evaluates correctly" true (Bisim.equal direct cached)

let explicit_invalidation () =
  let db = Ssd_workload.Movies.figure1 () in
  let cache = Cache.create () in
  ignore (Cache.eval ~cache ~db q1);
  ignore (Cache.eval ~cache ~db q2);
  Alcotest.(check int) "two entries" 2 (Cache.stats cache).Cache.size;
  Alcotest.(check int) "invalidate drops both" 2 (Cache.invalidate cache db);
  let s = Cache.stats cache in
  Alcotest.(check int) "cache emptied" 0 s.Cache.size;
  Alcotest.(check int) "invalidations counted" 2 s.Cache.invalidations;
  (* next lookup is a miss but still correct *)
  let direct = Unql.Eval.eval ~db q1 in
  Alcotest.(check bool) "re-evaluation correct" true
    (Bisim.equal direct (Cache.eval ~cache ~db q1));
  Alcotest.(check int) "and was a miss" 3 (Cache.stats cache).Cache.misses

let lru_eviction () =
  let db = Ssd_workload.Movies.figure1 () in
  let cache = Cache.create ~capacity:2 () in
  ignore (Cache.eval ~cache ~db q1);
  ignore (Cache.eval ~cache ~db q2);
  ignore (Cache.eval ~cache ~db q1) (* q1 now more recent than q2 *);
  ignore (Cache.eval ~cache ~db q3) (* evicts q2 *);
  let s = Cache.stats cache in
  Alcotest.(check int) "capacity respected" 2 s.Cache.size;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  (* q1 survived (hit), q2 was evicted (miss) — both still correct *)
  ignore (Cache.eval ~cache ~db q1);
  Alcotest.(check int) "q1 survived as the recently used entry" 2
    (Cache.stats cache).Cache.hits;
  Alcotest.(check bool) "evicted query re-evaluates correctly" true
    (Bisim.equal (Unql.Eval.eval ~db q2) (Cache.eval ~cache ~db q2));
  Alcotest.(check int) "q2 was a miss" 4 (Cache.stats cache).Cache.misses

let clear_resets () =
  let db = Ssd_workload.Movies.figure1 () in
  let cache = Cache.create () in
  ignore (Cache.eval ~cache ~db q1);
  Cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Cache.stats cache).Cache.size

let tests =
  props
  @ [
      Alcotest.test_case "update changes the fingerprint (miss)" `Quick update_is_a_miss;
      Alcotest.test_case "explicit invalidation" `Quick explicit_invalidation;
      Alcotest.test_case "LRU eviction at capacity" `Quick lru_eviction;
      Alcotest.test_case "clear" `Quick clear_resets;
    ]
