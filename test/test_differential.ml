(* Differential testing of the three query strategies (section 3): the
   same path query phrased as an UnQL select, a Lorel path expression,
   and a datalog program over the triple encoding must select the same
   objects.  Results are compared up to bisimulation after wrapping each
   strategy's answer set the same way: a fresh root with an [r]-edge to
   every selected node.  Lorel answers are node ids of the input graph;
   datalog answers are node ids of its ε-elimination (what [Triple.edb]
   encodes) — the wrapped values are what must agree, not the raw ids. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Bisim = Ssd.Bisim
module A = Unql.Ast
module R = Ssd_automata.Regex
module P = Ssd_automata.Lpred
module Q = QCheck2.Gen

(* Fresh root --r--> each selected node, sharing the input graph. *)
let wrap g nodes =
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b in
  Graph.Builder.set_root b r;
  let new_root = Graph.import_into b g in
  let off = new_root - Graph.root g in
  List.iter
    (fun u -> Graph.Builder.add_edge b r (Label.sym "r") (u + off))
    (List.sort_uniq compare nodes);
  Graph.gc (Graph.Builder.finish b)

let unql_of_steps steps =
  A.Select
    ( A.Tree [ (A.Llit (Label.sym "r"), A.Var "t") ],
      [ A.Gen (A.Pedges [ (steps, A.Pbind "t") ], A.Db) ] )

let lorel_nodes g comps =
  Lorel.Eval.eval_path ~db:g ~env:[] { Lorel.Ast.start = None; comps }

let datalog_nodes g prog pred =
  let edb = Relstore.Triple.edb g in
  let program = Relstore.Datalog.parse prog in
  List.filter_map
    (function [ Label.Int n ] -> Some n | _ -> None)
    (Relstore.Datalog.query ~edb program pred)

(* The three answers to one query, wrapped. *)
let answers g ~steps ~comps ~prog ~pred =
  let unql = Unql.Eval.eval ~db:g (unql_of_steps steps) in
  let lorel = wrap g (lorel_nodes g comps) in
  let datalog = wrap (Graph.eps_eliminate g) (datalog_nodes g prog pred) in
  (unql, lorel, datalog)

let agree (a, b, c) = Bisim.equal a b && Bisim.equal b c

(* ------------------------------------------------------------------ *)
(* Query shapes expressible in all three languages                     *)
(* ------------------------------------------------------------------ *)

(* A literal symbol path l1.l2...lk as a datalog chain program. *)
let chain_prog path =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "p0(?N) :- root(?N).\n";
  List.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "p%d(?X) :- p%d(?N), edge(?N, %s, ?X).\n" (i + 1) i
           (Label.to_string l)))
    path;
  Buffer.contents buf

let literal_answers g path =
  answers g
    ~steps:(List.map (fun l -> A.Slit (A.Llit l)) path)
    ~comps:(List.map (fun l -> Lorel.Ast.Clabel l) path)
    ~prog:(chain_prog path)
    ~pred:(Printf.sprintf "p%d" (List.length path))

(* l.# — one l-edge then any path. *)
let descendants_answers g l =
  answers g
    ~steps:[ A.Sregex (R.Seq (R.Atom (P.Exact l), R.Star (R.Atom P.Any)), None) ]
    ~comps:[ Lorel.Ast.Clabel l; Lorel.Ast.Cpath ]
    ~prog:
      (Printf.sprintf
         "s(?X) :- root(?N), edge(?N, %s, ?X).\ns(?Y) :- s(?X), edge(?X, ?A, ?Y).\n"
         (Label.to_string l))
    ~pred:"s"

(* # — every node reachable from the root (including the root). *)
let closure_answers g =
  answers g
    ~steps:[ A.Sregex (R.Star (R.Atom P.Any), None) ]
    ~comps:[ Lorel.Ast.Cpath ]
    ~prog:"d(?N) :- root(?N).\nd(?Y) :- d(?X), edge(?X, ?A, ?Y).\n"
    ~pred:"d"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The cost-based planners must be invisible in the answers: each
   strategy evaluated twice — as written, and through its planner
   (UnQL generator reordering, Lorel from-range reordering, datalog join
   reordering).  Datalog results are compared as tuple SETS: reordering
   legitimately changes derivation (hence tuple) order. *)
let planned_variants_agree (g, path) =
  let ann = Ssd_schema.Annotated.build g in
  let q = unql_of_steps (List.map (fun l -> A.Slit (A.Llit l)) path) in
  let ok_unql =
    Bisim.equal (Unql.Eval.eval ~db:g q)
      (Unql.Eval.eval ~db:g (Unql.Optimize.reorder_generators ann q))
  in
  let ls = List.map Label.to_string path in
  let lq =
    Lorel.Parser.parse
      (Printf.sprintf "select X from DB.%s X, DB.%s Y" (String.concat "." ls)
         (List.hd ls))
  in
  let ok_lorel =
    Bisim.equal (Lorel.Eval.eval ~db:g lq)
      (Lorel.Eval.eval ~db:g (Lorel.Optimize.reorder_from ann lq))
  in
  let edb = Relstore.Triple.edb g in
  let prog = Relstore.Datalog.parse (chain_prog path) in
  let sorted r =
    List.sort compare (List.map (fun (p, ts) -> (p, List.sort compare ts)) r)
  in
  let ok_datalog =
    sorted (Relstore.Datalog.eval ~edb prog)
    = sorted (Relstore.Datalog.eval ~edb (Relstore.Datalog.reorder ~edb prog))
  in
  ok_unql && ok_lorel && ok_datalog

let props =
  [
    Gen.qtest "literal path: unql = lorel = datalog (DAGs)" ~count:80
      (Q.pair Gen.dag Gen.sym_path)
      (fun (g, path) -> agree (literal_answers g path));
    Gen.qtest "literal path: unql = lorel = datalog (cyclic)" ~count:60
      (Q.pair Gen.graph Gen.sym_path)
      (fun (g, path) -> agree (literal_answers g path));
    Gen.qtest "l.# descendants agree (cyclic)" ~count:60
      (Q.pair Gen.graph (Q.map Label.sym Gen.small_symbol))
      (fun (g, l) -> agree (descendants_answers g l));
    Gen.qtest "# closure from the root agrees (cyclic)" ~count:60 Gen.graph
      (fun g -> agree (closure_answers g));
    Gen.qtest "planned variants agree (cyclic)" ~count:60
      (Q.pair Gen.graph Gen.sym_path) planned_variants_agree;
  ]

let figure1_literal () =
  let g = Ssd_workload.Movies.figure1 () in
  let path = List.map Label.sym [ "entry"; "movie"; "title" ] in
  let ((unql, _, _) as ans) = literal_answers g path in
  Alcotest.(check bool) "three strategies agree on figure1 titles" true (agree ans);
  (* and they found something: two movie titles *)
  Alcotest.(check int) "two titles selected" 2
    (List.length (Graph.labeled_succ unql (Graph.root unql)))

let figure1_descendants () =
  let g = Ssd_workload.Movies.figure1 () in
  Alcotest.(check bool) "entry.# agrees on figure1" true
    (agree (descendants_answers g (Label.sym "entry")))

let tests =
  props
  @ [
      Alcotest.test_case "figure1 literal path" `Quick figure1_literal;
      Alcotest.test_case "figure1 descendants" `Quick figure1_descendants;
    ]
