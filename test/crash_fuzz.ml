(* Crash-recovery fuzzer for the persistent store.

   Every seed replays one deterministic fault schedule against the
   in-memory faulty VFS.  The mode is [seed land 3]:

     0  crash at a seeded op, volatile writes survive as a prefix
     1  crash at a seeded op, the crashing write is torn
     2  crash + torn write + reordered survivors + short transfers
     3  no crash; every read may flip one seeded bit

   Oracle for modes 0-2 (the committed-prefix property): after
   recovery the store holds exactly one committed version, no older
   than the last acknowledged commit — checked by fingerprint, graph
   shape, a value-index query, and byte-identity of every canonical
   index segment; a subsequent clean close/reopen must then skip
   recovery and preserve the fingerprint.  For mode 3 the store must
   either open byte-identical or fail with a typed error (Corrupt or a
   diagnostic) — never a wrong answer or an untyped crash; [fsck]
   never raises in any mode.

   Replay one failure:  crash_fuzz --seed S  *)

module Disk = Ssd_fault.Disk
module Vfs = Ssd_store.Vfs
module Store = Ssd_store.Store
module B = Ssd_storage.Bytesio
module G = Ssd.Graph
module Value_index = Ssd_index.Value_index
module Text_index = Ssd_index.Text_index
module Path_index = Ssd_index.Path_index
module Dataguide = Ssd_schema.Dataguide

(* A small page size multiplies the pages per segment, hence the WAL
   frames per commit and the distinct crash points per schedule. *)
let page_size = 256
let path_depth = 2
let indexes = Store.all_indexes
let fail fmt = Printf.ksprintf failwith fmt

(* SplitMix64 of the seed — only used to place the crash op; all other
   randomness comes from the injector inside the VFS. *)
let mix seed =
  let z = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

(* The committed version chain: version 0 is a small movie database and
   each later version extends its predecessor by one freshly inserted
   entry — an id-preserving superset, so the delta between consecutive
   commits is monotone and every commit after the first runs the
   insert-only incremental index maintenance inside [Store.commit]
   under the crash schedules (a rebuilt chain of unrelated graphs would
   only ever exercise the rebuild fallback). *)
let n_versions = 4

let append_entry i g =
  let b = G.Builder.create () in
  let (_ : int) = G.import_into b g in
  G.Builder.set_root b (G.root g);
  let sym = Ssd.Label.sym and str = Ssd.Label.str in
  let node l parent =
    let v = G.Builder.add_node b in
    G.Builder.add_edge b parent (sym l) v;
    v
  in
  let e = node "entry" (G.root g) in
  let m = node "movie" e in
  let t = node "title" m in
  let v = G.Builder.add_node b in
  G.Builder.add_edge b t (str (Printf.sprintf "Sequel %d" i)) v;
  let d = node "director" m in
  let dv = G.Builder.add_node b in
  G.Builder.add_edge b d (str (Printf.sprintf "Auteur %d" i)) dv;
  G.Builder.finish b

let graphs =
  let arr = Array.make n_versions (Ssd_workload.Movies.generate ~seed:101 ~n_entries:2 ()) in
  for i = 1 to n_versions - 1 do
    arr.(i) <- append_entry i arr.(i - 1)
  done;
  arr

let () =
  (* The point of the chain: consecutive deltas must be monotone, or the
     crash schedules silently stop covering the incremental fast path. *)
  for i = 1 to n_versions - 1 do
    if not (Ssd_incr.Delta.monotone (Ssd_incr.Delta.diff graphs.(i - 1) graphs.(i))) then
      failwith "crash_fuzz: version chain delta is not monotone"
  done

let fps = Array.map Store.fingerprint_graph graphs

let () =
  (* The oracle matches recovered bytes against this chain, so the
     versions must be pairwise distinct. *)
  if List.length (List.sort_uniq compare (Array.to_list fps)) <> n_versions then
    failwith "crash_fuzz: version fingerprints collide; pick other workload seeds"

let movie = Ssd.Label.sym "movie"

let movie_nodes =
  Array.map
    (fun g -> List.sort compare (Value_index.find_nodes (Value_index.build g) movie))
    graphs

(* Canonical segment bytes of version [k], memoized across seeds. *)
let expected_seg =
  let tbl = Hashtbl.create 16 in
  fun k name ->
    match Hashtbl.find_opt tbl (k, name) with
    | Some b -> b
    | None ->
      let g = graphs.(k) in
      let b =
        match name with
        | "value" -> Value_index.to_bytes (Value_index.build g)
        | "text" -> Text_index.to_bytes (Text_index.build g)
        | "path" -> Path_index.to_bytes (Path_index.build ~depth:path_depth g)
        | "guide" -> Dataguide.to_bytes (Dataguide.build g)
        | _ -> assert false
      in
      Hashtbl.add tbl (k, name) b;
      b

(* One store lifetime: create version 0, commit versions 1..n-1, close.
   [note i] fires once version [i] is acknowledged (the durable write or
   WAL fsync returned); [note n_versions] after the clean close. *)
let run_sequence vfs ~note =
  let st = Store.create ~page_size ~indexes ~path_depth vfs graphs.(0) in
  note 0;
  for i = 1 to n_versions - 1 do
    Store.commit st graphs.(i);
    note i
  done;
  Store.close st;
  note n_versions

(* Fault-free schedule shape (op counts) and the byte images of a
   cleanly closed store — computed once, shared by every seed. *)
let ops_create, total_ops, clean_images =
  let mem, vfs = Vfs.mem_create Disk.none in
  let after_create = ref 0 in
  run_sequence vfs ~note:(fun i -> if i = 0 then after_create := Vfs.ops mem);
  (!after_create, Vfs.ops mem, Vfs.crash_images mem)

(* [mem_create ~images] adopts the byte images, so reusing a shared one
   across seeds needs a fresh copy each time. *)
let copy_images imgs = List.map (fun (n, b) -> (n, Bytes.copy b)) imgs

(* The recovered store is byte-identical to committed version [k]. *)
let check_version st k =
  let g = Store.graph st in
  if G.n_nodes g <> G.n_nodes graphs.(k) || G.n_edges g <> G.n_edges graphs.(k) then
    fail "recovered graph shape differs from version %d" k;
  let got = List.sort compare (Value_index.find_nodes (Store.value_index st) movie) in
  if got <> movie_nodes.(k) then fail "query answers differ from version %d" k;
  List.iter
    (fun name ->
      let got = Store.index_segment_bytes st name and exp = expected_seg k name in
      if not (Bytes.equal got exp) then
        fail "index segment %S differs from version %d (%d vs %d bytes)" name k
          (Bytes.length got) (Bytes.length exp))
    indexes

let version_of_fp fp =
  let rec go k = if k >= n_versions then None else if fps.(k) = fp then Some k else go (k + 1) in
  go 0

let run_crash seed plan =
  (* Crash somewhere after [create] returns (initialization itself is
     not crash-safe by contract) and no later than the end of [close]. *)
  let c = ops_create + 1 + (mix seed mod (total_ops - ops_create)) in
  let plan = { plan with Disk.seed; crash_at = Some c } in
  let mem, vfs = Vfs.mem_create plan in
  let acked = ref (-1) in
  (match run_sequence vfs ~note:(fun i -> acked := min i (n_versions - 1)) with
  | () -> fail "crash point %d never reached (%d ops)" c (Vfs.ops mem)
  | exception Vfs.Crash -> ());
  let images = Vfs.crash_images mem in
  let _mem2, vfs2 = Vfs.mem_create ~images Disk.none in
  (match Store.fsck vfs2 with
  | (_ : Ssd_diag.t list) -> ()
  | exception e -> fail "fsck raised before recovery: %s" (Printexc.to_string e));
  let st = Store.open_ vfs2 in
  let fp = Store.fingerprint st in
  let k =
    match version_of_fp fp with
    | Some k -> k
    | None -> fail "recovered fingerprint matches no committed version (acked %d)" !acked
  in
  if k < !acked then fail "acknowledged commit lost: recovered version %d < acked %d" k !acked;
  check_version st k;
  (* Recovery must converge: a clean close skips recovery on reopen. *)
  Store.close st;
  let st2 = Store.open_ vfs2 in
  let r = Store.recovery st2 in
  if not r.Store.was_clean then fail "reopen after post-recovery close still needs recovery";
  if Store.fingerprint st2 <> fp then fail "fingerprint changed across close/reopen";
  Store.close st2

let run_bitflip seed =
  (* Low enough that a fair share of opens see no flip at all and must
     land in the byte-identical branch, not just the typed-error one. *)
  let plan = { Disk.none with Disk.seed; bitflip = 0.03 } in
  let last = n_versions - 1 in
  let _mem, vfs = Vfs.mem_create ~images:(copy_images clean_images) plan in
  (try
     let st = Store.open_ vfs in
     check_version st last
   with
  | B.Corrupt _ | Ssd_diag.Fail _ -> () (* typed rejection is the other legal outcome *));
  let _mem2, vfs2 = Vfs.mem_create ~images:(copy_images clean_images) plan in
  match Store.fsck vfs2 with
  | (_ : Ssd_diag.t list) -> ()
  | exception e -> fail "fsck raised under bit-flips: %s" (Printexc.to_string e)

let run_one seed =
  match seed land 3 with
  | 0 -> run_crash seed Disk.none
  | 1 -> run_crash seed { Disk.none with Disk.torn = true }
  | 2 -> run_crash seed { Disk.none with Disk.torn = true; reorder = true; short = 0.1 }
  | _ -> run_bitflip seed

let () =
  let seeds = ref 1000 and first = ref 0 and one = ref None in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: n :: rest ->
      seeds := int_of_string n;
      parse rest
    | "--first" :: n :: rest ->
      first := int_of_string n;
      parse rest
    | "--seed" :: s :: rest ->
      one := Some (int_of_string s);
      parse rest
    | a :: _ -> fail "crash_fuzz: unknown argument %S (try --seeds N | --first N | --seed S)" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  let run_checked seed =
    try
      run_one seed;
      true
    with e ->
      Printf.eprintf "crash_fuzz: FAILED seed=%d mode=%d: %s\n  replay with: crash_fuzz --seed %d\n%!"
        seed (seed land 3) (Printexc.to_string e) seed;
      false
  in
  match !one with
  | Some s ->
    Printexc.record_backtrace true;
    if run_checked s then print_endline "crash_fuzz: seed passed" else exit 1
  | None ->
    let failures = ref 0 in
    for s = !first to !first + !seeds - 1 do
      if not (run_checked s) then incr failures
    done;
    Printf.printf "crash_fuzz: %d seeds, %d failures (schedule: %d ops, crash window %d..%d)\n%!"
      !seeds !failures total_ops (ops_create + 1) total_ops;
    if !failures > 0 then exit 1
