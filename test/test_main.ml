let () =
  Alcotest.run "ssd"
    [
      ("smoke", Test_smoke.tests);
      ("label", Test_label.tests);
      ("tree", Test_tree.tests);
      ("graph", Test_graph.tests);
      ("bisim-sim", Test_bisim.tests);
      ("syntax", Test_syntax.tests);
      ("json", Test_json.tests);
      ("variant", Test_variant.tests);
      ("encode", Test_encode.tests);
      ("automata", Test_automata.tests);
      ("relstore", Test_relstore.tests);
      ("datalog", Test_datalog.tests);
      ("index", Test_index.tests);
      ("schema", Test_schema.tests);
      ("unql", Test_unql.tests);
      ("lorel", Test_lorel.tests);
      ("dist", Test_dist.tests);
      ("workload", Test_workload.tests);
      ("storage", Test_storage.tests);
      ("pathvar", Test_pathvar.tests);
      ("oem", Test_oem.tests);
      ("uncal", Test_uncal.tests);
      ("websql", Test_websql.tests);
      ("views", Test_views.tests);
      ("update", Test_update.tests);
      ("metrics", Test_metrics.tests);
      ("trace", Test_trace.tests);
      ("cache", Test_cache.tests);
      ("differential", Test_differential.tests);
      ("optimize", Test_optimize.tests);
      ("lint", Test_lint.tests);
      ("budget", Test_budget.tests);
      ("par", Test_par.tests);
      ("par-budget", Test_par_budget.tests);
    ]
