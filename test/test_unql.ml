module Label = Ssd.Label
module Tree = Ssd.Tree
module Graph = Ssd.Graph
module Bisim = Ssd.Bisim
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig1 = Ssd_workload.Movies.figure1 ()

let run ?options ?(db = fig1) src = Unql.Eval.run ?options ~db src

let run_tree ?db src = Graph.to_tree (run ?db src)

let expect_tree ?db src expected =
  check (Printf.sprintf "query %s" src) true
    (Tree.equal (run_tree ?db src) (Ssd.Syntax.parse_tree expected))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let constructors () =
  expect_tree "{}" "{}";
  expect_tree "{a: {b}, c: {}}" "{a: {b}, c: {}}";
  expect_tree {| {t: "x", n: 42} |} {| {t: {"x"}, n: {42}} |};
  expect_tree "{a} union {b}" "{a, b}";
  (* union has set semantics *)
  expect_tree "{a} union {a}" "{a}";
  expect_tree "let x = {v} in {a: x, b: x}" "{a: {v}, b: {v}}";
  expect_tree "if 1 < 2 then {yes} else {no}" "{yes}";
  expect_tree "if isempty({}) then {yes} else {no}" "{yes}";
  expect_tree "if equal({a: {b}}, {a: {b}} union {a: {b}}) then {yes} else {no}" "{yes}"

let label_literal_leaves () =
  expect_tree {| "just a string" |} {| {"just a string"} |};
  expect_tree "42" "{42}"

(* ------------------------------------------------------------------ *)
(* Select / where                                                      *)
(* ------------------------------------------------------------------ *)

let select_basics () =
  expect_tree {| select {title: t} where {entry.movie.title: \t} <- DB |}
    {| {title: {"Casablanca"}, title: {"Play it again, Sam"}} |};
  (* label variable binding and reuse in the head *)
  expect_tree {| select {kind: \k} where {entry.\k: _} <- DB |}
    "{kind: {movie}, kind: {tvshow}}";
  (* multiple generators join on shared label variables *)
  expect_tree
    {| select {pair: d}
       where {<entry.movie>: \m} <- DB,
             {director.\d} <- m,
             {<cast._*>.\a} <- m,
             a = d |}
    (* only "Play it again, Sam" has its director acting *)
    {| {pair: {"Allen"}} |}

let select_conditions () =
  expect_tree
    {| select {num: \y} where {<_*>.\y} <- DB, isint(y), y > 2 |}
    "{num: {3}}";
  expect_tree
    {| select {f: \x} where {<_*>.\x} <- DB, isfloat(x) |}
    "{f: {1200000.0}}";
  expect_tree
    {| select {n: \x} where {<_*>.\x} <- DB, isstring(x), startswith(x, "Bac") |}
    {| {n: {"Bacall"}} |};
  expect_tree
    {| select {n: \x} where {<entry._.title>.\x} <- DB, contains(x, "again") |}
    {| {n: {"Play it again, Sam"}} |}

let select_patterns () =
  (* predicate steps *)
  expect_tree
    {| select {hit: \l} where {entry._.cast.<(credit)?>.startswith("act").\l} <- DB |}
    {| {hit: {"Bogart"}, hit: {"Bacall"}, hit: {"Allen"}} |};
  (* nested patterns with conjunctive entries *)
  expect_tree
    {| select {both: {ti: \t, di: \d}}
       where {entry.movie: {title: {\t}, director: {\d}}} <- DB |}
    {| {both: {ti: {"Casablanca"}, di: {"Curtiz"}},
        both: {ti: {"Play it again, Sam"}, di: {"Allen"}}} |}

let select_empty_when_no_match () =
  expect_tree {| select {x} where {nosuch: \t} <- DB |} "{}"

let nested_select () =
  expect_tree
    {| select {movie: (select {title: \t} where {title.\t} <- m)}
       where {<entry.movie>: \m} <- DB |}
    {| {movie: {title: {"Casablanca"}}, movie: {title: {"Play it again, Sam"}}} |}

(* ------------------------------------------------------------------ *)
(* Regular path patterns on cyclic data                                *)
(* ------------------------------------------------------------------ *)

let regex_patterns () =
  (* through the references cycle, bounded by the automaton *)
  expect_tree
    {| select {found: \t}
       where {<entry.movie.(references)*.title>.\t} <- DB, t = "Casablanca" |}
    {| {found: {"Casablanca"}, found: {"Casablanca"}} |};
  (* termination on the cyclic references/is_referenced_in pair *)
  check "star over the full cycle terminates" true
    (Tree.depth (run_tree {| select {n: \t} where {<entry.movie.(references|is_referenced_in)*.title>.\t} <- DB |}) = 2)

let browsing_queries () =
  (* section 1.3, on figure 1: are there integers > 2^16? (episodes are
     1..3, so no) *)
  expect_tree {| select {big: \l} where {<_*>.\l} <- DB, isint(l), l > 65536 |} "{}";
  (* attribute names starting with "act" *)
  expect_tree
    {| select {attr: \l} where {<_*>.\l} <- DB, issymbol(l), startswith(l, "act") |}
    "{attr: {actors}, attr: {actors}}"

(* ------------------------------------------------------------------ *)
(* Structural recursion                                                *)
(* ------------------------------------------------------------------ *)

let sfun_on_finite_data () =
  let db = Ssd.Syntax.parse_graph "{a: {b: {c}}, d}" in
  check "relabel leaves structure" true
    (Tree.equal
       (Graph.to_tree (run ~db "let sfun f({b: T}) = {bb: f(T)} | f({\\L: T}) = {L: f(T)} in f(DB)"))
       (Ssd.Syntax.parse_tree "{a: {bb: {c}}, d}"))

let sfun_well_defined_on_cycles () =
  let db = Ssd.Syntax.parse_graph "&r {a: {b: *r}}" in
  let result = run ~db "let sfun f({a: T}) = {x: f(T)} | f({\\L: T}) = {L: f(T)} in f(DB)" in
  check "cyclic result" false (Graph.is_acyclic result);
  check "relabeled cycle" true (Bisim.equal result (Ssd.Syntax.parse_graph "&r {x: {b: *r}}"))

let sfun_delete_and_collapse () =
  let db = Ssd.Syntax.parse_graph "{keep: {drop: {x}, keep: {y}}, drop: {z}}" in
  check "delete prunes subtrees" true
    (Tree.equal
       (Graph.to_tree (run ~db (Unql.Restructure.As_query.delete ~label:"drop")))
       (Ssd.Syntax.parse_tree "{keep: {keep: {y}}}"));
  check "collapse splices subtrees" true
    (Tree.equal
       (Graph.to_tree (run ~db (Unql.Restructure.As_query.collapse ~label:"drop")))
       (Ssd.Syntax.parse_tree "{keep: {x, keep: {y}}, z}"))

let sfun_case_order () =
  (* first matching case wins *)
  let db = Ssd.Syntax.parse_graph "{a: {}, b: {}}" in
  expect_tree ~db
    "let sfun f({a: T}) = {first} | f({_: T}) = {rest} in f(DB)"
    "{first, rest}"

let sfun_unmatched_edges_vanish () =
  let db = Ssd.Syntax.parse_graph "{a: {}, b: {}}" in
  expect_tree ~db "let sfun f({a: T}) = {a} in f(DB)" "{a}"

let sfun_composition () =
  (* apply a previously-defined sfun inside another: g(f(T)) composes *)
  let db = Ssd.Syntax.parse_graph "{a: {a: {a}}}" in
  expect_tree ~db
    {| let sfun f({a: T}) = {b: f(T)} | f({\L: T}) = {L: f(T)}
       in let sfun g({b: T}) = {c: g(T)} | g({\L: T}) = {L: g(T)}
       in g(f(DB)) |}
    "{c: {c: {c}}}"

let short_circuit () =
  (* "adding new edges to short-circuit various paths" (section 3) *)
  let db = Ssd.Syntax.parse_graph {| {entry: {movie: {title: "Casablanca"}}} |} in
  let g =
    Unql.Restructure.short_circuit ~first:(Label.sym "entry") ~second:(Label.sym "movie")
      ~via:(Label.sym "direct") db
  in
  check "shortcut edge added" true
    (Ssd.Bisim.equal g
       (Ssd.Syntax.parse_graph
          {| {entry: {movie: &m {title: "Casablanca"}}, direct: *m} |}));
  (* original paths survive; the shortcut shares the target node *)
  check "idempotent on re-run" true
    (Ssd.Bisim.equal
       (Unql.Restructure.short_circuit ~first:(Label.sym "entry")
          ~second:(Label.sym "movie") ~via:(Label.sym "direct") g)
       g)

let sfun_ill_formed () =
  let rejects src =
    check (Printf.sprintf "reject %s" src) true
      (match run src with
       | exception Unql.Ast.Ill_formed _ -> true
       | _ -> false)
  in
  (* recursive call on something other than the case variable *)
  rejects "let sfun f({\\L: T}) = {L: f({})} in f(DB)";
  (* free variable in the body *)
  rejects "let x = {v} in let sfun f({\\L: T}) = {L: x} in f(DB)"

let sfun_agrees_with_direct =
  [
    qtest "sfun relabel = direct relabel" ~count:30 graph (fun g ->
        let via_q =
          Unql.Eval.run ~db:g (Unql.Restructure.As_query.relabel ~from_:"a" ~to_:"z")
        in
        let direct =
          Unql.Restructure.relabel
            (fun l -> if Label.equal l (Label.sym "a") then Label.sym "z" else l)
            g
        in
        Bisim.equal via_q direct);
    qtest "sfun delete = direct delete" ~count:30 graph (fun g ->
        Bisim.equal
          (Unql.Eval.run ~db:g (Unql.Restructure.As_query.delete ~label:"a"))
          (Unql.Restructure.delete_edges (Label.equal (Label.sym "a")) g));
    qtest "sfun collapse = direct collapse" ~count:30 graph (fun g ->
        Bisim.equal
          (Unql.Eval.run ~db:g (Unql.Restructure.As_query.collapse ~label:"a"))
          (Unql.Restructure.collapse_edges (Label.equal (Label.sym "a")) g));
    qtest "identity sfun is the identity" ~count:30 graph (fun g ->
        Bisim.equal (Unql.Eval.run ~db:g "let sfun f({\\L: T}) = {L: f(T)} in f(DB)") g);
  ]

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let optimizer_preserves_results () =
  let queries =
    [
      {| select {t: \t} where {<entry.movie>: \m} <- DB, {title.\t} <- m, t != "zzz" |};
      {| select {y: \y} where isint(3), {<_*>.\y} <- DB, isint(y), y > 1 |};
      {| select {x: \a} where {entry._.cast.<(credit)?>.actors.\a} <- DB, startswith(a, "B") |};
    ]
  in
  List.iter
    (fun q ->
      let q = Unql.Parser.parse q in
      check "reorder preserves result" true
        (Bisim.equal (Unql.Eval.eval ~db:fig1 q) (Unql.Eval.eval ~db:fig1 (Unql.Optimize.reorder q))))
    queries

let options_equivalence () =
  let guide = Ssd_schema.Dataguide.build fig1 in
  let q =
    Unql.Parser.parse
      {| select {t: \t} where {entry.movie.title: \x} <- DB, {\t} <- x |}
  in
  let base = Unql.Eval.eval ~db:fig1 q in
  List.iter
    (fun options ->
      check "same result under all option combinations" true
        (Bisim.equal base (Unql.Eval.eval ~options ~db:fig1 q)))
    [
      { Unql.Eval.default_options with reorder_clauses = false; cache_nfa = false };
      { Unql.Eval.default_options with dataguide = Some guide };
      { Unql.Eval.default_options with reorder_clauses = false; dataguide = Some guide };
      { Unql.Eval.default_options with path_index = Some (Ssd_index.Path_index.build ~depth:4 fig1) };
    ]

let guide_pruning () =
  let guide = Ssd_schema.Dataguide.build fig1 in
  let dead = Unql.Parser.parse {| select {x} where {entry.movie.nosuch: \t} <- DB |} in
  let pruned, n = Unql.Optimize.prune_with_guide guide dead in
  check_int "one select pruned" 1 n;
  check "pruned to empty" true (Bisim.equal (Unql.Eval.eval ~db:fig1 pruned) Graph.empty);
  let live = Unql.Parser.parse {| select {x} where {entry.movie.title: \t} <- DB |} in
  let kept, n = Unql.Optimize.prune_with_guide guide live in
  check_int "live select kept" 0 n;
  check "kept query unchanged" true
    (Bisim.equal (Unql.Eval.eval ~db:fig1 kept) (Unql.Eval.eval ~db:fig1 live))

(* ------------------------------------------------------------------ *)
(* Parser round-trips and errors                                       *)
(* ------------------------------------------------------------------ *)

let pretty_roundtrip () =
  List.iter
    (fun src ->
      let q = Unql.Parser.parse src in
      let q' = Unql.Parser.parse (Unql.Pretty.expr_to_string q) in
      check (Printf.sprintf "pretty/parse: %s" src) true
        (Bisim.equal (Unql.Eval.eval ~db:fig1 q) (Unql.Eval.eval ~db:fig1 q')))
    [
      {| select {ti: \t} where {<entry.movie.title>: \t} <- DB |};
      {| let sfun f({movie: T}) = {film: f(T)} | f({\L: T}) = {L: f(T)} in f(DB) |};
      {| if isempty(DB) then {} else {nonempty} |};
      {| select {a: \l, b: t} where {\l: \t} <- DB, {\l2.<(~x)*>} <- DB, l = l2, not (l = title) |};
      {| {lit: "s", n: 42, f: {}} union {g} |};
    ]

let parse_errors () =
  List.iter
    (fun src ->
      check (Printf.sprintf "reject %s" src) true
        (match Unql.Parser.parse src with
         | exception Unql.Parser.Parse_error _ -> true
         | _ -> false))
    [
      "";
      "select {x}";
      (* missing where *)
      "select {x} where";
      "let x = {} in";
      "{a: }";
      "let sfun f({a: T}) = {} | g({b: T}) = {} in f(DB)";
      (* mixed names *)
      "if {} then {a} else {b}";
      (* cond expected *)
    ]

let runtime_errors () =
  let rejects src =
    check (Printf.sprintf "runtime reject %s" src) true
      (match run src with
       | exception Unql.Eval.Runtime_error _ -> true
       | _ -> false)
  in
  rejects "undefined_variable";
  rejects "undefined_fun({})";
  (* head variable never bound by any generator *)
  rejects {| select t where {entry: _} <- DB |}

let tree_var_in_label_position () =
  check "tree variable in label position rejected" true
    (match run {| select {t: {x}} where {entry: \t} <- DB |} with
     | exception Unql.Eval.Runtime_error _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let store_basics () =
  let st = Unql.Store.create () in
  let r1 = Unql.Store.import st fig1 in
  let r2 = Unql.Store.import st fig1 in
  check_int "import memoized on identity" r1 r2;
  let n = Unql.Store.add_node st in
  Unql.Store.add_edge st n (Label.sym "wrap") r1;
  let g = Unql.Store.to_graph st ~root:n in
  check "snapshot contains the db" true
    (Bisim.equal g (Graph.edge (Label.sym "wrap") fig1))

let store_eps () =
  let st = Unql.Store.create () in
  let a = Unql.Store.add_node st in
  let b = Unql.Store.add_node st in
  let c = Unql.Store.add_node st in
  Unql.Store.add_eps st a b;
  Unql.Store.add_edge st b (Label.sym "x") c;
  check_int "labeled_succ through eps" 1 (List.length (Unql.Store.labeled_succ st a))

let tests =
  [
    Alcotest.test_case "constructors" `Quick constructors;
    Alcotest.test_case "label literal leaves" `Quick label_literal_leaves;
    Alcotest.test_case "select basics" `Quick select_basics;
    Alcotest.test_case "select conditions" `Quick select_conditions;
    Alcotest.test_case "select patterns" `Quick select_patterns;
    Alcotest.test_case "select empty when no match" `Quick select_empty_when_no_match;
    Alcotest.test_case "nested select" `Quick nested_select;
    Alcotest.test_case "regex patterns" `Quick regex_patterns;
    Alcotest.test_case "browsing queries" `Quick browsing_queries;
    Alcotest.test_case "sfun on finite data" `Quick sfun_on_finite_data;
    Alcotest.test_case "sfun well-defined on cycles" `Quick sfun_well_defined_on_cycles;
    Alcotest.test_case "sfun delete and collapse" `Quick sfun_delete_and_collapse;
    Alcotest.test_case "sfun case order" `Quick sfun_case_order;
    Alcotest.test_case "sfun unmatched edges vanish" `Quick sfun_unmatched_edges_vanish;
    Alcotest.test_case "sfun composition" `Quick sfun_composition;
    Alcotest.test_case "short circuit" `Quick short_circuit;
    Alcotest.test_case "sfun ill-formed" `Quick sfun_ill_formed;
    Alcotest.test_case "optimizer preserves results" `Quick optimizer_preserves_results;
    Alcotest.test_case "options equivalence" `Quick options_equivalence;
    Alcotest.test_case "guide pruning" `Quick guide_pruning;
    Alcotest.test_case "pretty/parse round-trip" `Quick pretty_roundtrip;
    Alcotest.test_case "parse errors" `Quick parse_errors;
    Alcotest.test_case "runtime errors" `Quick runtime_errors;
    Alcotest.test_case "tree var in label position" `Quick tree_var_in_label_position;
    Alcotest.test_case "store basics" `Quick store_basics;
    Alcotest.test_case "store eps" `Quick store_eps;
  ]
  @ sfun_agrees_with_direct
