(* Property and unit tests for the structured tracer, its Chrome
   trace-event export, and the operator profiler built on the same span
   stream. *)

module Trace = Ssd_obs.Trace
module Profile = Ssd_obs.Profile
module J = Ssd.Json
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test owns the global collector for its duration. *)
let with_fresh_trace f =
  Trace.enable ();
  Trace.clear ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Random span programs                                                *)
(* ------------------------------------------------------------------ *)

type prog =
  | Span of string * int * bool * prog list (* name, lane, raises, body *)
  | Inst of string * int (* instant: name, lane *)
  | Flow of int (* a send/deliver flow pair starting on this lane *)

let prog_gen : prog Q.t =
  let name = Q.oneofl [ "alpha"; "beta"; "gamma"; "alpha.sub"; "beta.io" ] in
  let lane = Q.int_range 0 3 in
  Q.fix
    (fun self depth ->
      let leaf =
        Q.oneof
          [
            Q.map2 (fun n l -> Inst (n, l)) name lane;
            Q.map (fun l -> Flow l) lane;
          ]
      in
      if depth <= 0 then leaf
      else
        Q.oneof
          [
            leaf;
            Q.map2
              (fun (n, l, raises) body -> Span (n, l, raises, body))
              (Q.triple name lane (Q.map (fun i -> i = 0) (Q.int_range 0 9)))
              (Q.list_size (Q.int_range 0 3) (self (depth - 1)));
          ])
    3

let forest_gen = Q.list_size (Q.int_range 1 4) prog_gen

exception Boom

(* Exceptions propagate through enclosing spans and are only caught at
   the top, so raising programs exercise the Fun.protect path on every
   ancestor. *)
let rec run_prog = function
  | Inst (n, l) -> Trace.instant n ~lane:l
  | Flow l ->
    let f = Trace.new_flow () in
    Trace.instant "send" ~lane:l ~flow:(f, false);
    Trace.instant "recv" ~lane:((l + 1) mod 4) ~flow:(f, true)
  | Span (n, l, raises, body) ->
    Trace.with_span n ~lane:l ~attrs:[ ("lane", Trace.Int l) ] (fun () ->
        List.iter run_prog body;
        if raises then raise Boom)

let run_forest progs =
  List.iter (fun p -> try run_prog p with Boom -> ()) progs

(* ------------------------------------------------------------------ *)
(* Chrome-export validation helpers                                    *)
(* ------------------------------------------------------------------ *)

let events_of doc =
  match doc with
  | J.Obj kvs -> (
    match List.assoc_opt "traceEvents" kvs with
    | Some (J.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list")
  | _ -> Alcotest.fail "chrome doc is not an object"

let str_field name ev =
  match ev with
  | J.Obj kvs -> (
    match List.assoc_opt name kvs with Some (J.String s) -> Some s | _ -> None)
  | _ -> None

let num_field name ev =
  match ev with
  | J.Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some (J.Float f) -> Some f
    | Some (J.Int i) -> Some (float_of_int i)
    | _ -> None)
  | _ -> None

(* Per-(pid,tid) B/E stack discipline: every B is closed by an E with the
   same name, and nothing is left open at the end. *)
let well_nested events =
  let stacks : (int * int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of ev =
    let pid = int_of_float (Option.value ~default:0. (num_field "pid" ev)) in
    let tid = int_of_float (Option.value ~default:0. (num_field "tid" ev)) in
    match Hashtbl.find_opt stacks (pid, tid) with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks (pid, tid) s;
      s
  in
  let ok =
    List.for_all
      (fun ev ->
        match (str_field "ph" ev, str_field "name" ev) with
        | Some "B", Some name ->
          let s = stack_of ev in
          s := name :: !s;
          true
        | Some "E", name ->
          let s = stack_of ev in
          (match (!s, name) with
          | top :: rest, Some n when top = n ->
            s := rest;
            true
          | _ -> false)
        | _ -> true)
      events
  in
  ok && Hashtbl.fold (fun _ s acc -> acc && !s = []) stacks true

let export_and_reparse () =
  (* through the string round-trip, like a real trace file *)
  J.parse (J.to_string (Trace.to_chrome ()))

(* ------------------------------------------------------------------ *)
(* Structural span checks                                              *)
(* ------------------------------------------------------------------ *)

let rec span_ok (s : Trace.span) =
  s.Trace.dur_ns >= 0.
  && List.for_all
       (fun (c : Trace.span) ->
         c.Trace.parent = s.Trace.id
         && c.Trace.start_ns >= s.Trace.start_ns -. 1.
         && c.Trace.start_ns +. c.Trace.dur_ns
            <= s.Trace.start_ns +. s.Trace.dur_ns +. 1.
         && span_ok c)
       s.Trace.children

let rec count_spans (s : Trace.span) =
  1 + List.fold_left (fun n c -> n + count_spans c) 0 s.Trace.children

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let properties =
  [
    qtest "chrome export is well-formed JSON with matched B/E" ~count:80
      forest_gen
      (fun progs ->
        with_fresh_trace (fun () ->
            run_forest progs;
            let events = events_of (export_and_reparse ()) in
            well_nested events
            && List.for_all
                 (fun ev ->
                   match num_field "ts" ev with
                   | Some ts -> ts >= 0.
                   | None -> str_field "ph" ev = Some "M")
                 events));
    qtest "flow pairs: every start has exactly one matching finish" ~count:80
      forest_gen
      (fun progs ->
        with_fresh_trace (fun () ->
            run_forest progs;
            let events = events_of (export_and_reparse ()) in
            let flows = Hashtbl.create 8 in
            List.iter
              (fun ev ->
                match (str_field "ph" ev, num_field "id" ev) with
                | Some (("s" | "f") as ph), Some id ->
                  let starts, ends =
                    Option.value ~default:(0, 0) (Hashtbl.find_opt flows id)
                  in
                  if ph = "s" then Hashtbl.replace flows id (starts + 1, ends)
                  else Hashtbl.replace flows id (starts, ends + 1)
                | _ -> ())
              events;
            Hashtbl.fold (fun _ (s, e) acc -> acc && s = 1 && e = 1) flows true));
    qtest "spans have nonneg durations and children nest within parents"
      ~count:80 forest_gen
      (fun progs ->
        with_fresh_trace (fun () ->
            run_forest progs;
            List.for_all span_ok (Trace.spans ())));
    qtest "profiler exclusive times partition the traced wall-clock"
      ~count:80 forest_gen
      (fun progs ->
        with_fresh_trace (fun () ->
            run_forest progs;
            let roots = Trace.spans () in
            let rows = Profile.of_spans roots in
            let total = Profile.total_ns roots in
            let excl =
              List.fold_left (fun t r -> t +. r.Profile.exclusive_ns) 0. rows
            in
            let n = List.fold_left (fun n s -> n + count_spans s) 0 roots in
            Float.abs (excl -. total) <= (2. *. float_of_int n) +. 1.));
  ]

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let raising_thunk_is_recorded () =
  with_fresh_trace (fun () ->
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "inner" (fun () -> raise Boom))
       with Boom -> ());
      match Trace.spans () with
      | [ outer ] ->
        check "outer closed with a duration" true (outer.Trace.dur_ns >= 0.);
        check_int "inner recorded under outer" 1 (List.length outer.Trace.children);
        check "export still well-nested" true
          (well_nested (events_of (export_and_reparse ())))
      | l -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length l)))

let annotations_accumulate () =
  with_fresh_trace (fun () ->
      Trace.with_span "s" (fun () ->
          Trace.annotate "mode" (Trace.Str "fast");
          Trace.annotate "mode" (Trace.Str "slow");
          Trace.bump "hits" 2;
          Trace.bump "hits" 3);
      match Trace.spans () with
      | [ s ] ->
        check "annotate overwrites" true
          (List.assoc "mode" s.Trace.attrs = Trace.Str "slow");
        check "bump accumulates" true
          (List.assoc "hits" s.Trace.attrs = Trace.Int 5)
      | _ -> Alcotest.fail "expected one span")

let recursion_billed_once () =
  with_fresh_trace (fun () ->
      Trace.with_span "r" (fun () -> Trace.with_span "r" (fun () -> ()));
      let roots = Trace.spans () in
      match (roots, Profile.of_spans roots) with
      | [ root ], [ row ] ->
        check_int "both activations counted" 2 row.Profile.count;
        check "inclusive = outer duration only" true
          (Float.abs (row.Profile.inclusive_ns -. root.Trace.dur_ns) <= 1.)
      | _ -> Alcotest.fail "expected one root and one profile row")

let empty_trace_exports () =
  with_fresh_trace (fun () ->
      check_int "no events" 0 (List.length (events_of (export_and_reparse ()))))

let lane_names_become_metadata () =
  with_fresh_trace (fun () ->
      Trace.name_lane 0 "coordinator";
      Trace.name_lane 2 "site 1";
      Trace.with_span "x" (fun () -> ());
      let meta =
        List.filter (fun ev -> str_field "ph" ev = Some "M")
          (events_of (export_and_reparse ()))
      in
      check_int "one metadata event per named lane" 2 (List.length meta))

let tests =
  [
    Alcotest.test_case "raising thunk is recorded" `Quick raising_thunk_is_recorded;
    Alcotest.test_case "annotations accumulate" `Quick annotations_accumulate;
    Alcotest.test_case "recursion billed once" `Quick recursion_billed_once;
    Alcotest.test_case "empty trace exports" `Quick empty_trace_exports;
    Alcotest.test_case "lane names become metadata" `Quick lane_names_become_metadata;
  ]
  @ properties
