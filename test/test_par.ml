(* Parallel-vs-sequential equivalence.

   The contract under test: for every evaluator threaded through
   lib/par, the answer is a pure function of the query and the data —
   [--jobs N] changes wall-clock time only.  Sequential (jobs=1) runs
   are the specification; parallel runs with jobs ∈ {2,4,8} must agree
   exactly (same answer sets, bisimilar result graphs, identical
   stats counters, identical cache fingerprints). *)

module Pool = Ssd_par.Pool
module Graph = Ssd.Graph
module Label = Ssd.Label
module Metrics = Ssd_obs.Metrics
module Nfa = Ssd_automata.Nfa
module Product = Ssd_automata.Product
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] with the shared pool sized to [jobs], restoring jobs=1 after. *)
let with_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let all_jobs = [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let map_range_is_init =
  qtest "pool: map_range = Array.init for any jobs" ~count:60
    (Q.pair (Q.int_range 0 300) (Q.oneofl [ 1; 2; 3; 4; 8 ]))
    (fun (n, jobs) ->
      let pool = Pool.create ~jobs in
      let expect = Array.init n (fun i -> (i * 7) mod 13) in
      let got = Pool.map_range ~pool ~min_par:1 n (fun i -> (i * 7) mod 13) in
      Pool.shutdown pool;
      got = expect)

let fold_chunks_is_seq_fold =
  (* combine is chunking-invariant (list concat in ascending order), so
     every chunking must reproduce the sequential left fold. *)
  qtest "pool: fold_chunks = sequential fold for any jobs" ~count:60
    (Q.pair (Q.int_range 0 200) (Q.oneofl [ 1; 2; 4; 8 ]))
    (fun (n, jobs) ->
      let pool = Pool.create ~jobs in
      let chunk lo hi = List.init (hi - lo) (fun k -> lo + k) in
      let got =
        Pool.fold_chunks ~pool ~n ~chunk ~combine:(fun acc part -> acc @ part) []
      in
      Pool.shutdown pool;
      got = List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* NFA-product path search                                             *)
(* ------------------------------------------------------------------ *)

let product_jobs_invariant =
  qtest "product: accepting_nodes identical for all jobs" ~count:40
    (Q.pair graph small_regex)
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let seq = Product.accepting_nodes g nfa in
      List.for_all
        (fun jobs -> with_jobs jobs (fun () -> Product.accepting_nodes g nfa) = seq)
        all_jobs)

(* ------------------------------------------------------------------ *)
(* UnQL evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let unql_jobs_invariant =
  qtest "unql: parallel eval bisimilar to sequential" ~count:40
    (Q.pair graph unql_query)
    (fun (db, q) ->
      let seq = Unql.Eval.eval ~db q in
      List.for_all
        (fun jobs ->
          let par = with_jobs jobs (fun () -> Unql.Eval.eval ~db q) in
          Ssd.Bisim.equal par seq)
        all_jobs)

let unql_sfun_jobs_invariant =
  (* Structural recursion: the parallel edge scan must leave the result
     graph — including its printed form, which exposes node sharing —
     byte-identical. *)
  let db = Ssd_workload.Webgraph.generate ~n_pages:120 () in
  let q = Unql.Parser.parse {| let sfun f({\l: t}) = {l: f(t)} in f(DB) |} in
  Alcotest.test_case "unql: sfun result printed identically for all jobs" `Quick
    (fun () ->
      let seq = Graph.to_string (Unql.Eval.eval ~db q) in
      List.iter
        (fun jobs ->
          let par =
            with_jobs jobs (fun () -> Graph.to_string (Unql.Eval.eval ~db q))
          in
          check (Printf.sprintf "jobs=%d byte-identical" jobs) true (par = seq))
        all_jobs)

(* ------------------------------------------------------------------ *)
(* Datalog                                                             *)
(* ------------------------------------------------------------------ *)

let datalog_jobs_invariant =
  let edb =
    [
      ("e", List.init 60 (fun i -> [ Label.int i; Label.int ((i * 3 + 1) mod 60) ]));
      ("start", [ [ Label.int 0 ] ]);
      ("node", List.init 60 (fun i -> [ Label.int i ]));
    ]
  in
  let program =
    Relstore.Datalog.parse
      {| reach(?X) :- start(?X).
         reach(?Y) :- reach(?X), e(?X, ?Y).
         unreach(?X) :- node(?X), not reach(?X). |}
  in
  Alcotest.test_case "datalog: least model identical for all jobs" `Quick
    (fun () ->
      let seq = Relstore.Datalog.eval ~edb program in
      List.iter
        (fun jobs ->
          let par = with_jobs jobs (fun () -> Relstore.Datalog.eval ~edb program) in
          check (Printf.sprintf "jobs=%d exact equality" jobs) true (par = seq))
        all_jobs)

(* ------------------------------------------------------------------ *)
(* Indexes                                                             *)
(* ------------------------------------------------------------------ *)

let indexes_jobs_invariant =
  qtest "index: value/text/path builds identical for all jobs" ~count:25 graph
    (fun g ->
      let module V = Ssd_index.Value_index in
      let module T = Ssd_index.Text_index in
      let module P = Ssd_index.Path_index in
      let probe_labels =
        Graph.fold_labeled_edges (fun acc _ l _ -> l :: acc) [] g
      in
      let snapshot () =
        let v = V.build g in
        let t = T.build g in
        let p = P.build ~depth:3 g in
        ( List.map (fun l -> V.find v l) probe_labels,
          V.n_labels v,
          T.find_prefix t "a",
          T.find_word t "movie",
          T.n_entries t,
          P.n_paths p )
      in
      let seq = snapshot () in
      List.for_all (fun jobs -> with_jobs jobs snapshot = seq) all_jobs)

(* ------------------------------------------------------------------ *)
(* Determinism: stats counters                                         *)
(* ------------------------------------------------------------------ *)

let stats_jobs_invariant =
  (* Counter totals — not just answers — must be independent of jobs:
     worker-side increments commute and the work set is deterministic. *)
  let db = Ssd_workload.Webgraph.generate ~n_pages:150 () in
  let q =
    Unql.Parser.parse
      {| select {t: \T} where {<host.page.(link)*.title>: \T} <- DB |}
  in
  let counters_after jobs =
    Metrics.reset Metrics.default;
    let g = with_jobs jobs (fun () -> Unql.Eval.eval ~db q) in
    (Graph.to_string g, Metrics.counters Metrics.default)
  in
  Alcotest.test_case "stats: counters identical for all jobs" `Quick
    (fun () ->
      let seq = counters_after 1 in
      List.iter
        (fun jobs ->
          let par = counters_after jobs in
          check (Printf.sprintf "jobs=%d answer+counters" jobs) true (par = seq))
        all_jobs)

let runs_at_same_jobs_deterministic =
  qtest "determinism: two jobs=4 runs identical" ~count:30
    (Q.pair graph unql_query)
    (fun (db, q) ->
      with_jobs 4 (fun () ->
          let a = Graph.to_string (Unql.Eval.eval ~db q) in
          let b = Graph.to_string (Unql.Eval.eval ~db q) in
          a = b))

(* ------------------------------------------------------------------ *)
(* Cache keys are jobs-free                                            *)
(* ------------------------------------------------------------------ *)

let cache_hits_across_jobs =
  (* Regression: the cache key (query fingerprint × data fingerprint)
     must not incorporate the jobs count — a result computed at jobs=1
     is served from cache at jobs=4 and vice versa. *)
  let db = Ssd_workload.Movies.figure1 () in
  let q =
    Unql.Parser.parse {| select {t: \T} where {entry.movie.title: \T} <- DB |}
  in
  Alcotest.test_case "cache: hits across differing jobs values" `Quick
    (fun () ->
      check_int "fingerprint is jobs-free" (Unql.Cache.query_fingerprint q)
        (with_jobs 4 (fun () -> Unql.Cache.query_fingerprint q));
      let cache = Unql.Cache.create () in
      let g1 = Unql.Cache.eval ~cache ~db q in
      let stats1 = Unql.Cache.stats cache in
      check_int "first run misses" 1 stats1.Unql.Cache.misses;
      let g4 = with_jobs 4 (fun () -> Unql.Cache.eval ~cache ~db q) in
      let stats4 = Unql.Cache.stats cache in
      check_int "jobs=4 run hits the jobs=1 entry" 1 stats4.Unql.Cache.hits;
      check_int "no extra miss" 1 stats4.Unql.Cache.misses;
      check "same result" true (Ssd.Bisim.equal g1 g4))

let tests =
  [
    map_range_is_init;
    fold_chunks_is_seq_fold;
    product_jobs_invariant;
    unql_jobs_invariant;
    unql_sfun_jobs_invariant;
    datalog_jobs_invariant;
    indexes_jobs_invariant;
    stats_jobs_invariant;
    runs_at_same_jobs_deterministic;
    cache_hits_across_jobs;
  ]
