(* Golden-ish check of `ssdql profile --format json` on the Figure 1
   movies workload.  Timings are nondeterministic, so it validates the
   structure instead: the exact operator set the standard select query
   exercises, each entered exactly once, with internally consistent
   inclusive/exclusive times. *)

module J = Ssd.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_profile: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: check_profile PROFILE.json";
      exit 2
  in
  let doc = try J.parse (read_file path) with e -> fail "%s" (Printexc.to_string e) in
  let field name kvs = List.assoc_opt name kvs in
  let num = function
    | Some (J.Float f) -> f
    | Some (J.Int i) -> float_of_int i
    | _ -> fail "expected a number"
  in
  let total, rows =
    match doc with
    | J.Obj kvs -> (
      match (field "total_ns" kvs, field "rows" kvs) with
      | total, Some (J.List rows) -> (num total, rows)
      | _ -> fail "missing total_ns / rows")
    | _ -> fail "document is not an object"
  in
  if total <= 0. then fail "total_ns is not positive";
  let parsed =
    List.map
      (function
        | J.Obj kvs ->
          let name =
            match field "name" kvs with
            | Some (J.String s) -> s
            | _ -> fail "row without name"
          in
          let count =
            match field "count" kvs with Some (J.Int c) -> c | _ -> fail "row without count"
          in
          (name, count, num (field "inclusive_ns" kvs), num (field "exclusive_ns" kvs))
        | _ -> fail "row is not an object")
      rows
  in
  List.iter
    (fun (name, count, incl, excl) ->
      if count < 1 then fail "%s: count %d < 1" name count;
      if excl < 0. then fail "%s: negative exclusive time" name;
      if excl > incl +. 1. then fail "%s: exclusive exceeds inclusive" name)
    parsed;
  (* The golden part: this query walks exactly these operators, once. *)
  let expected =
    [ "unql.eval"; "unql.eval.expr"; "unql.eval.import"; "unql.eval.snapshot" ]
  in
  let names = List.sort compare (List.map (fun (n, _, _, _) -> n) parsed) in
  if names <> expected then
    fail "operator set mismatch: got [%s]" (String.concat "; " names);
  List.iter
    (fun (name, count, _, _) ->
      if count <> 1 then fail "%s: expected count 1, got %d" name count)
    parsed;
  (* The root operator's inclusive time is the whole traced wall-clock. *)
  let root_incl =
    List.find_map
      (fun (n, _, incl, _) -> if n = "unql.eval" then Some incl else None)
      parsed
  in
  (match root_incl with
  | Some incl when Float.abs (incl -. total) <= 1. -> ()
  | Some incl -> fail "root inclusive %.0f != total %.0f" incl total
  | None -> fail "no unql.eval row");
  (* Exclusive times partition the total. *)
  let excl_sum = List.fold_left (fun t (_, _, _, e) -> t +. e) 0. parsed in
  if Float.abs (excl_sum -. total) > 16. then
    fail "exclusive sum %.0f != total %.0f" excl_sum total;
  Printf.printf "check_profile: ok (%d operators, total %.0fns)\n"
    (List.length parsed) total
