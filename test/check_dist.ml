(* Smoke test for fault-tolerant distributed evaluation.  Takes three
   captured `ssdql dist` outputs: a fault-free run, a faulty run
   (seed:1,drop:0.2), and a repeat of the faulty run.  Asserts

   - all three runs print the same accepting set (faults never change
     the answer, only the cost),
   - both faulty runs are byte-identical (seeded fault schedules are
     deterministic, stats included),
   - the faulty run reports a nonzero retry count and a complete
     status (the protocol actually recovered; it did not just get
     lucky). *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_dist: " ^ m); exit 1) fmt

let line_with prefix content =
  let lines = String.split_on_char '\n' content in
  match List.find_opt (fun l -> String.length l >= String.length prefix
                                && String.sub l 0 (String.length prefix) = prefix) lines with
  | Some l -> l
  | None -> fail "no %S line in output" prefix

(* First integer following [key] in the (possibly pretty-printed) stats
   JSON. *)
let int_field key content =
  let needle = Printf.sprintf "\"%s\":" key in
  let nlen = String.length needle in
  let len = String.length content in
  let rec find i =
    if i + nlen > len then fail "no %s field in stats" key
    else if String.sub content i nlen = needle then i + nlen
    else find (i + 1)
  in
  let i = ref (find 0) in
  while !i < len && content.[!i] = ' ' do incr i done;
  let j = ref !i in
  while !j < len && (match content.[!j] with '0' .. '9' | '-' -> true | _ -> false) do
    incr j
  done;
  if !j = !i then fail "%s field is not a number" key
  else int_of_string (String.sub content !i (!j - !i))

let () =
  let free, faulty, faulty2 =
    match Sys.argv with
    | [| _; a; b; c |] -> (read_file a, read_file b, read_file c)
    | _ -> fail "usage: check_dist FREE FAULTY FAULTY2"
  in
  let accepting = line_with "accepting:" in
  if accepting free <> accepting faulty then
    fail "faulty run changed the accepting set:\n  %s\n  %s" (accepting free)
      (accepting faulty);
  if faulty <> faulty2 then fail "faulty runs differ: fault schedule is not deterministic";
  let status = line_with "status:" faulty in
  if status <> "status: complete" then fail "faulty run did not complete: %s" status;
  let retries = int_field "retries" faulty in
  if retries <= 0 then fail "faulty run reports %d retries; expected > 0" retries;
  if int_field "retries" free <> 0 then fail "fault-free run reports retries";
  print_endline "check_dist: ok"
