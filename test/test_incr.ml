(* Differential testing of the incremental maintainer (lib/incr): over
   random graphs and random update sequences, the incrementally
   maintained value/text/path indexes and DataGuide must stay
   byte-identical (canonical [to_bytes]) to structures rebuilt from
   scratch after every single step — and insert-only steps must actually
   take the fast path, or the whole exercise proves nothing. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module Delta = Ssd_incr.Delta
module State = Ssd_incr.State
module Guide_inc = Ssd_incr.Guide_inc
module Value_index = Ssd_index.Value_index
module Text_index = Ssd_index.Text_index
module Path_index = Ssd_index.Path_index
module Dataguide = Ssd_schema.Dataguide
module Q = QCheck2.Gen

let all_names = [ "value"; "text"; "path"; "guide" ]
let path_depth = 3

(* ------------------------------------------------------------------ *)
(* Update operations                                                   *)
(* ------------------------------------------------------------------ *)

type op =
  | Add_edges of (int * Label.t * int) list  (* between existing nodes *)
  | Graft of int * Label.t list  (* chain of fresh nodes off an existing one *)
  | Add_eps of int * int
  | Del_edge of int  (* drop the k-th edge (mod n_edges) *)

let monotone_op = function Del_edge _ -> false | _ -> true

(* Apply an op, preserving every existing node id (inserts reuse the
   builder-import identity; deletion rebuilds all nodes and drops one
   edge — same ids, so only the edge multiset changes). *)
let apply_op g op =
  let n = Graph.n_nodes g in
  match op with
  | Del_edge k ->
    let n_e = Graph.n_edges g in
    if n_e = 0 then g
    else begin
      let k = k mod n_e in
      let b = Graph.Builder.create () in
      for _ = 1 to n do
        ignore (Graph.Builder.add_node b)
      done;
      Graph.Builder.set_root b (Graph.root g);
      let (_ : int) =
        Graph.fold_edges
          (fun i u l v ->
            if i <> k then begin
              match l with
              | Graph.Eps -> Graph.Builder.add_eps b u v
              | Graph.Lab l -> Graph.Builder.add_edge b u l v
            end;
            i + 1)
          0 g
      in
      Graph.Builder.finish b
    end
  | _ ->
    let b = Graph.Builder.create () in
    let (_ : int) = Graph.import_into b g in
    Graph.Builder.set_root b (Graph.root g);
    (match op with
    | Add_edges es ->
      List.iter
        (fun (u, l, v) -> Graph.Builder.add_edge b (u mod n) l (v mod n))
        es
    | Graft (u, labs) ->
      let cur = ref (u mod n) in
      List.iter
        (fun l ->
          let v = Graph.Builder.add_node b in
          Graph.Builder.add_edge b !cur l v;
          cur := v)
        labs
    | Add_eps (u, v) -> Graph.Builder.add_eps b (u mod n) (v mod n)
    | Del_edge _ -> assert false);
    Graph.Builder.finish b

let op_gen : op Q.t =
  let open Q in
  oneof
    [
      map
        (fun es -> Add_edges es)
        (list_size (int_range 1 3)
           (triple (int_range 0 100) Gen.label (int_range 0 100)));
      map2 (fun u labs -> Graft (u, labs))
        (int_range 0 100)
        (list_size (int_range 1 3) Gen.label);
      map2 (fun u v -> Add_eps (u, v)) (int_range 0 100) (int_range 0 100);
      map (fun k -> Del_edge k) (int_range 0 1000);
    ]

let insert_op_gen : op Q.t =
  let open Q in
  oneof
    [
      map (fun es -> Add_edges es)
        (list_size (int_range 1 3)
           (triple (int_range 0 100) Gen.label (int_range 0 100)));
      map2 (fun u labs -> Graft (u, labs))
        (int_range 0 100)
        (list_size (int_range 1 3) Gen.label);
      map2 (fun u v -> Add_eps (u, v)) (int_range 0 100) (int_range 0 100);
    ]

(* ------------------------------------------------------------------ *)
(* The byte-identity oracle                                            *)
(* ------------------------------------------------------------------ *)

let scratch_equal st g =
  let beq a b = Bytes.equal a b in
  (match State.value_index st with
  | None -> true
  | Some vi -> beq (Value_index.to_bytes vi) (Value_index.to_bytes (Value_index.build g)))
  && (match State.text_index st with
     | None -> true
     | Some ti -> beq (Text_index.to_bytes ti) (Text_index.to_bytes (Text_index.build g)))
  && (match State.path_index st with
     | None -> true
     | Some pi ->
       beq (Path_index.to_bytes pi)
         (Path_index.to_bytes (Path_index.build ~depth:path_depth g)))
  && (match State.dataguide st with
     | None -> true
     | Some dg ->
       beq (Dataguide.to_bytes dg) (Dataguide.to_bytes (Dataguide.build g)))

(* Run a sequence of ops through one maintained state, checking the
   oracle after every step; also check that insert-only ops really take
   the fast path (on them the maintainer must not silently rebuild). *)
let run_differential ?(donated = false) g0 ops =
  let st =
    if donated then
      State.create ~path_depth ~names:all_names
        ~vindex:(Value_index.build g0)
        ~tindex:(Text_index.build g0)
        ~pindex:(Path_index.build ~depth:path_depth g0)
        ~guide:(Dataguide.build g0) g0
    else State.create ~path_depth ~names:all_names g0
  in
  List.for_all
    (fun op ->
      let g = State.graph st in
      let g' = apply_op g op in
      let d = Delta.diff g g' in
      let outcome = State.advance st g' d in
      let fast_ok =
        (not (monotone_op op)) || outcome = State.Fast_path
      in
      fast_ok && scratch_equal st g')
    ops

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let props =
  [
    Gen.qtest "mixed update sequences: incremental = scratch" ~count:120
      (Q.pair Gen.graph (Q.list_size (Q.int_range 1 8) op_gen))
      (fun (g, ops) -> run_differential g ops);
    Gen.qtest "insert-only sequences: fast path = scratch" ~count:120
      (Q.pair Gen.graph (Q.list_size (Q.int_range 1 8) insert_op_gen))
      (fun (g, ops) -> run_differential g ops);
    Gen.qtest "donated structures are adopted correctly" ~count:60
      (Q.pair Gen.graph (Q.list_size (Q.int_range 1 5) op_gen))
      (fun (g, ops) -> run_differential ~donated:true g ops);
    Gen.qtest "guide maintenance alone over inserts" ~count:80
      (Q.pair Gen.graph (Q.list_size (Q.int_range 1 6) insert_op_gen))
      (fun (g, ops) ->
        let gi = Guide_inc.of_graph g in
        let cur = ref g in
        List.for_all
          (fun op ->
            let g' = apply_op !cur op in
            let d = Delta.diff !cur g' in
            assert (Delta.monotone d);
            (* touched = reverse-ε-closure of added sources, computed
               here the slow way for independence from State *)
            let sources =
              List.sort_uniq compare
                (List.map (fun (e : Delta.edge) -> e.Delta.src) d.Delta.added)
            in
            let touched =
              List.concat_map
                (fun u ->
                  List.filter
                    (fun w -> List.mem u (Graph.eps_closure g' w))
                    (List.init (Graph.n_nodes g') Fun.id))
                sources
              |> List.sort_uniq compare
            in
            Guide_inc.apply gi g' ~touched;
            cur := g';
            Bytes.equal
              (Dataguide.to_bytes (Guide_inc.materialize gi))
              (Dataguide.to_bytes (Dataguide.build g')))
          ops);
    Gen.qtest "delta diff round-trips: applying ops matches the diff"
      ~count:100
      (Q.pair Gen.graph op_gen)
      (fun (g, op) ->
        let g' = apply_op g op in
        let d = Delta.diff g g' in
        (* reversing the diff on the edge multiset recovers the old one *)
        let count tbl e dlt =
          let c = dlt + Option.value ~default:0 (Hashtbl.find_opt tbl e) in
          if c = 0 then Hashtbl.remove tbl e else Hashtbl.replace tbl e c
        in
        let tbl = Hashtbl.create 64 in
        Graph.fold_edges (fun () u l v -> count tbl (u, l, v) 1) () g;
        List.iter (fun (e : Delta.edge) -> count tbl (e.Delta.src, e.Delta.lab, e.Delta.dst) 1) d.Delta.added;
        List.iter (fun (e : Delta.edge) -> count tbl (e.Delta.src, e.Delta.lab, e.Delta.dst) (-1)) d.Delta.removed;
        Graph.fold_edges (fun () u l v -> count tbl (u, l, v) (-1)) () g';
        Hashtbl.length tbl = 0);
  ]

(* ------------------------------------------------------------------ *)
(* Datalog incremental maintenance                                     *)
(* ------------------------------------------------------------------ *)

module Datalog = Relstore.Datalog

(* Recursive reachability plus a comparison rule: exercises IDB-on-IDB
   delta rounds and the Cmp-in-body path. *)
let incr_prog =
  Datalog.parse
    "reach(?X) :- root(?X).\n\
     reach(?Y) :- reach(?X), edge(?X, ?L, ?Y).\n\
     selfloop(?X) :- edge(?X, ?L, ?Y), ?X = ?Y.\n\
     hop2(?X, ?Z) :- edge(?X, ?L, ?Y), edge(?Y, ?M, ?Z)."

let sorted_model r =
  List.filter_map
    (fun (p, ts) ->
      match List.sort_uniq compare ts with [] -> None | ts -> Some (p, ts))
    r
  |> List.sort compare

let edge_tuple (u, l, v) = [ Label.Int u; l; Label.Int v ]

(* Split a random edge set into a base EDB and insertion batches; the
   retained model advanced batch by batch must equal evaluating from
   scratch over everything inserted so far, and each [advance] must
   return exactly the model difference. *)
let datalog_incremental_differential (edges, cut) =
  let edges = List.map (fun (u, l, v) -> (u mod 6, l, v mod 6)) edges in
  let n = List.length edges in
  let k = if n = 0 then 0 else cut mod (n + 1) in
  let base = List.filteri (fun i _ -> i < k) edges in
  let rest = List.filteri (fun i _ -> i >= k) edges in
  let root = [ ("root", [ [ Label.Int 0 ] ]) ] in
  let edb_of es = ("edge", List.map edge_tuple es) :: root in
  let st = Datalog.Incremental.prepare ~edb:(edb_of base) incr_prog in
  let cur = ref base in
  List.for_all
    (fun e ->
      let before = sorted_model (Datalog.Incremental.result st) in
      let fresh =
        Datalog.Incremental.advance st
          ~edb_delta:[ ("edge", [ edge_tuple e ]) ]
      in
      cur := e :: !cur;
      let after = sorted_model (Datalog.Incremental.result st) in
      let scratch = sorted_model (Datalog.eval ~edb:(edb_of !cur) incr_prog) in
      (* retained model = scratch model *)
      after = scratch
      (* and the reported delta is exactly the difference *)
      && sorted_model fresh
         = List.filter_map
             (fun (p, ts) ->
               let old = Option.value ~default:[] (List.assoc_opt p before) in
               match List.filter (fun t -> not (List.mem t old)) ts with
               | [] -> None
               | ts -> Some (p, ts))
             after)
    rest

let datalog_rejects_negation () =
  let p =
    Datalog.parse
      "reach(?X) :- root(?X).\n\
       reach(?Y) :- reach(?X), edge(?X, ?L, ?Y).\n\
       dead(?X) :- edge(?X, ?L, ?Y), not reach(?X)."
  in
  Alcotest.(check bool) "supported is false" false (Datalog.Incremental.supported p);
  Alcotest.check_raises "prepare raises Unsafe (SSD213)"
    (Datalog.Unsafe
       (Ssd_diag.make Ssd_diag.Error ~code:"SSD213"
          "incremental maintenance requires a negation-free program"))
    (fun () ->
      ignore (Datalog.Incremental.prepare ~edb:[ ("root", [ [ Label.Int 0 ] ]) ] p))

(* ------------------------------------------------------------------ *)
(* Footprints and cache revalidation                                   *)
(* ------------------------------------------------------------------ *)

let footprint_cases () =
  let fp = Unql.Footprint.of_string in
  let labels q = Unql.Footprint.labels (fp q) in
  Alcotest.(check bool)
    "existence query has a finite footprint" true
    (labels {| select {hit: {}} where {entry.movie.title: _} <- DB |}
    = Some
        (List.sort Label.compare
           [ Label.sym "entry"; Label.sym "movie"; Label.sym "title" ]));
  Alcotest.(check bool)
    "subtree binder widens to top" true
    (Unql.Footprint.is_top
       (fp {| select {t: \T} where {entry.movie.title: \T} <- DB |}));
  Alcotest.(check bool)
    "label binder widens to top" true
    (Unql.Footprint.is_top (fp {| select {kind: \k} where {entry.\k: _} <- DB |}));
  Alcotest.(check bool)
    "structural recursion widens to top" true
    (Unql.Footprint.is_top
       (fp "let sfun f({a: T}) = {first} | f({_: T}) = {rest} in f(DB)"));
  Alcotest.(check bool)
    "parse error widens to top" true
    (Unql.Footprint.is_top (fp "select where"));
  (* disjointness: finite vs finite only *)
  let f = fp {| select {hit: {}} where {entry.movie.title: _} <- DB |} in
  Alcotest.(check bool) "disjoint from unrelated labels" true
    (Unql.Footprint.disjoint f (Some [ Label.sym "cast" ]));
  Alcotest.(check bool) "not disjoint from its own label" false
    (Unql.Footprint.disjoint f (Some [ Label.sym "title" ]));
  Alcotest.(check bool) "never disjoint from a top delta" false
    (Unql.Footprint.disjoint f None)

let revalidate_keeps_disjoint () =
  let g0 = Ssd_workload.Movies.figure1 () in
  let g1 =
    (* add an edge under a label no query below touches *)
    let b = Graph.Builder.create () in
    let (_ : int) = Graph.import_into b g0 in
    Graph.Builder.set_root b (Graph.root g0);
    let x = Graph.Builder.add_node b in
    Graph.Builder.add_edge b (Graph.root g0) (Label.sym "annex") x;
    Graph.Builder.finish b
  in
  let c = Unql.Cache.create ~capacity:8 () in
  let q_keep = {| select {hit: {}} where {entry.movie.title: _} <- DB |} in
  let q_drop = {| select {t: \T} where {entry.movie.title: \T} <- DB |} in
  let r_keep = Unql.Cache.run ~cache:c ~db:g0 q_keep in
  let (_ : Graph.t) = Unql.Cache.run ~cache:c ~db:g0 q_drop in
  let d = Delta.diff g0 g1 in
  let delta_labels = Delta.touched_labels d in
  let keep qtext =
    Unql.Footprint.disjoint (Unql.Footprint.of_string qtext) delta_labels
  in
  let kept, dropped = Unql.Cache.revalidate c ~old_db:g0 ~new_db:g1 ~keep in
  Alcotest.(check int) "one entry kept" 1 kept;
  Alcotest.(check int) "one entry dropped" 1 dropped;
  (* the kept entry now answers under the new database without a miss *)
  let stats0 = Unql.Cache.stats c in
  let r_again = Unql.Cache.run ~cache:c ~db:g1 q_keep in
  let stats1 = Unql.Cache.stats c in
  Alcotest.(check int) "revalidated entry hits" (stats0.hits + 1) stats1.hits;
  Alcotest.(check bool) "and it is the cached graph" true (r_again == r_keep);
  (* ... and the answer it serves is the correct one for the new db *)
  Alcotest.(check bool) "kept answer is still correct" true
    (Ssd.Bisim.equal r_again (Unql.Eval.eval ~db:g1 (Unql.Parser.parse q_keep)))

(* ------------------------------------------------------------------ *)
(* Directed cases                                                      *)
(* ------------------------------------------------------------------ *)

(* Deletion then re-insertion of the same edge must land back on the
   same bytes as a fresh build of the final graph (which re-creates the
   original edge multiset). *)
let delete_reinsert_roundtrip () =
  let g0 = Ssd_workload.Movies.figure1 () in
  let st = State.create ~path_depth ~names:all_names g0 in
  (* pick a labeled edge to drop *)
  let some_edge =
    Graph.fold_edges
      (fun acc u l v ->
        match (acc, l) with
        | None, Graph.Lab l -> Some (u, l, v)
        | _ -> acc)
      None g0
  in
  let u, l, v = Option.get some_edge in
  let without =
    let b = Graph.Builder.create () in
    for _ = 1 to Graph.n_nodes g0 do
      ignore (Graph.Builder.add_node b)
    done;
    Graph.Builder.set_root b (Graph.root g0);
    let dropped = ref false in
    Graph.fold_edges
      (fun () s lab d ->
        match lab with
        | Graph.Lab l' when (not !dropped) && s = u && d = v && Label.equal l l' ->
          dropped := true
        | Graph.Eps -> Graph.Builder.add_eps b s d
        | Graph.Lab l' -> Graph.Builder.add_edge b s l' d)
      () g0;
    Graph.Builder.finish b
  in
  let o1 = State.advance st without (Delta.diff g0 without) in
  Alcotest.(check bool) "deletion rebuilds" true (o1 = State.Rebuilt);
  Alcotest.(check bool) "post-delete consistent" true (scratch_equal st without);
  let back =
    let b = Graph.Builder.create () in
    let (_ : int) = Graph.import_into b without in
    Graph.Builder.set_root b (Graph.root without);
    Graph.Builder.add_edge b u l v;
    Graph.Builder.finish b
  in
  let o2 = State.advance st back (Delta.diff without back) in
  Alcotest.(check bool) "re-insert goes fast path" true (o2 = State.Fast_path);
  Alcotest.(check bool) "post-reinsert consistent" true (scratch_equal st back);
  (* and the final bytes equal a fresh build over a graph with the
     original edge multiset *)
  Alcotest.(check bool) "round-trip equals original multiset" true
    (Bytes.equal
       (Value_index.to_bytes (Option.get (State.value_index st)))
       (Value_index.to_bytes (Value_index.build g0)))

(* An ε insert must invalidate label paths that pass through it: graft
   via ε and check the guide/path index see the new labels. *)
let eps_insert_visible () =
  let g0 = Ssd_workload.Movies.figure1 () in
  let st = State.create ~path_depth ~names:all_names g0 in
  let g1 =
    let b = Graph.Builder.create () in
    let (_ : int) = Graph.import_into b g0 in
    Graph.Builder.set_root b (Graph.root g0);
    let x = Graph.Builder.add_node b in
    let y = Graph.Builder.add_node b in
    Graph.Builder.add_eps b (Graph.root g0) x;
    Graph.Builder.add_edge b x (Label.sym "annex") y;
    Graph.Builder.finish b
  in
  let o = State.advance st g1 (Delta.diff g0 g1) in
  Alcotest.(check bool) "ε insert is monotone" true (o = State.Fast_path);
  Alcotest.(check bool) "structures consistent after ε insert" true
    (scratch_equal st g1);
  let pi = Option.get (State.path_index st) in
  Alcotest.(check bool) "new path indexed" true
    (Path_index.find pi [ Label.sym "annex" ] <> Some [] )

let datalog_props =
  [
    Gen.qtest "datalog: incremental advance = scratch eval" ~count:100
      (Q.pair
         (Q.list_size (Q.int_range 0 12)
            (Q.triple (Q.int_range 0 5) Gen.label (Q.int_range 0 5)))
         (Q.int_range 0 1000))
      datalog_incremental_differential;
  ]

let tests =
  props @ datalog_props
  @ [
      Alcotest.test_case "delete/re-insert round-trip" `Quick
        delete_reinsert_roundtrip;
      Alcotest.test_case "ε insert visible through maintenance" `Quick
        eps_insert_visible;
      Alcotest.test_case "datalog: negation rejected" `Quick
        datalog_rejects_negation;
      Alcotest.test_case "query label footprints" `Quick footprint_cases;
      Alcotest.test_case "cache revalidation keeps disjoint entries" `Quick
        revalidate_keeps_disjoint;
    ]
