module Graph = Ssd.Graph
module Nfa = Ssd_automata.Nfa
module Product = Ssd_automata.Product
module Decompose = Ssd_dist.Decompose
module Plan = Ssd_fault.Plan
module Budget = Ssd.Budget
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let single_site_is_centralized () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:100 () in
  let nfa = Nfa.of_string "host.page.(link)*.title._" in
  let partition = Array.make (Graph.n_nodes g) 0 in
  let answers, stats = Decompose.eval g partition nfa in
  check "same answers" true (answers = Product.accepting_nodes g nfa);
  check_int "no cross edges" 0 stats.Decompose.cross_edges;
  check_int "no messages" 0 stats.Decompose.messages;
  check_int "one round" 1 stats.Decompose.rounds

let partitions_cover_sites () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:200 () in
  List.iter
    (fun k ->
      let p = Decompose.partition_bfs ~k g in
      check "site ids in range" true (Array.for_all (fun s -> s >= 0 && s < k) p);
      let p = Decompose.partition_random ~seed:3 ~k g in
      check "random site ids in range" true (Array.for_all (fun s -> s >= 0 && s < k) p))
    [ 1; 2; 5; 16 ]

let bfs_partition_has_locality () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:500 ~locality:0.9 () in
  let cross partition =
    Graph.fold_labeled_edges
      (fun acc u _ v -> if partition.(u) <> partition.(v) then acc + 1 else acc)
      0 g
  in
  check "bfs cuts fewer edges than random" true
    (cross (Decompose.partition_bfs ~k:4 g) < cross (Decompose.partition_random ~seed:1 ~k:4 g))

let queries = [ "host.page.(link)*.title._"; "(~nothing)*"; "host.name._"; "_._._" ]

let bad_site_count_rejected () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:20 () in
  let is_ssd540 f =
    match f () with
    | exception Ssd_diag.Fail d -> d.Ssd_diag.code = "SSD540"
    | _ -> false
  in
  check "bfs k=0" true (is_ssd540 (fun () -> Decompose.partition_bfs ~k:0 g));
  check "random k=-3" true
    (is_ssd540 (fun () -> Decompose.partition_random ~seed:1 ~k:(-3) g))

let bad_fault_spec_rejected () =
  let is_ssd541 spec =
    match Plan.parse spec with
    | exception Ssd_diag.Fail d -> d.Ssd_diag.code = "SSD541"
    | _ -> false
  in
  List.iter
    (fun spec -> check ("rejects " ^ spec) true (is_ssd541 spec))
    [ "drop:2.0"; "drop:x"; "crash:1"; "nonsense:1"; "ckpt:0"; "crash:1@0"; "seed:" ];
  (* and the good ones round-trip through to_string *)
  List.iter
    (fun spec ->
      let p = Plan.parse spec in
      check ("parses " ^ spec) true (Plan.parse (Plan.to_string p) = p))
    [ "seed:7,drop:0.2,dup:0.05,reorder:0.1,crash:2@3+4,slow:0@3,ckpt:2";
      "backoff:fixed@3,rounds:50"; "ackdrop:0.5" ]

let figure1_under_faults () =
  let g = Ssd_workload.Movies.figure1 () in
  let nfa = Nfa.of_string "entry.movie.(cast._*)?.title._" in
  let central = Product.accepting_nodes g nfa in
  List.iter
    (fun k ->
      let partition = Decompose.partition_bfs ~k g in
      List.iter
        (fun spec ->
          match Decompose.run ~plan:(Plan.parse spec) g partition nfa with
          | Budget.Complete answers, _ ->
            check (Printf.sprintf "k=%d %s" k spec) true (answers = central)
          | Budget.Partial _, _ -> Alcotest.fail (spec ^ ": did not complete"))
        [ "seed:1"; "seed:1,drop:0.3,dup:0.1"; "seed:2,drop:0.2,crash:1@2+2,ckpt:2" ])
    [ 1; 2; 3 ]

(* Total message loss can never quiesce: the run must give up at the
   plan's round cap with a Stalled partial answer instead of hanging. *)
let total_loss_stalls () =
  let g = Ssd_workload.Webgraph.generate ~n_pages:50 () in
  let nfa = Nfa.of_string "host.page.(link)*.title._" in
  let partition = Decompose.partition_bfs ~k:3 g in
  let plan = Plan.parse "seed:1,drop:1.0,rounds:20" in
  match Decompose.run ~plan g partition nfa with
  | Budget.Partial (answers, Budget.Stalled), stats ->
    check "no answers got through" true (answers = []);
    check "stopped at the cap" true (stats.Decompose.rounds <= 20);
    check "kept retrying" true (stats.Decompose.retries > 0)
  | Budget.Partial (_, _), _ -> Alcotest.fail "wrong exhaustion reason"
  | Budget.Complete _, _ -> Alcotest.fail "completed without any message delivery"

(* Satellite of the tracing work: a faulty run's trace must contain
   retransmission events, a fault-free run's must contain none — the two
   are distinguishable in the exported timeline. *)
let traces_show_retransmissions () =
  let module Trace = Ssd_obs.Trace in
  let g = Ssd_workload.Webgraph.generate ~n_pages:300 () in
  let nfa = Nfa.of_string "host.page.(link)*.title._" in
  let partition = Decompose.partition_bfs ~k:4 g in
  let count name =
    List.length
      (List.filter (fun i -> i.Trace.i_name = name) (Trace.instants ()))
  in
  Trace.enable ();
  Trace.clear ();
  ignore (Decompose.run g partition nfa);
  let clean_retx = count "dist.retransmit" in
  let clean_sends = count "dist.send" in
  Trace.clear ();
  ignore (Decompose.run ~plan:(Plan.parse "seed:1,drop:0.2") g partition nfa);
  let faulty_retx = count "dist.retransmit" in
  Trace.disable ();
  Trace.clear ();
  check_int "fault-free run traces no retransmissions" 0 clean_retx;
  check "fault-free run still traces first sends" true (clean_sends > 0);
  check "faulty run traces retransmissions" true (faulty_retx > 0)

let fault_properties =
  [
    qtest "any fault plan: answers = centralized" ~count:60
      (Q.triple graph (Q.int_range 1 4) fault_spec)
      (fun (g, k, spec) ->
        let plan = Plan.parse spec in
        let partition = Decompose.partition_bfs ~k g in
        List.for_all
          (fun q ->
            let nfa = Nfa.of_string q in
            match Decompose.run ~plan g partition nfa with
            | Budget.Complete answers, _ -> answers = Product.accepting_nodes g nfa
            | Budget.Partial _, _ -> false)
          queries);
    qtest "fault runs are deterministic: same plan, same stats" ~count:40
      (Q.triple graph (Q.int_range 1 4) fault_spec)
      (fun (g, k, spec) ->
        let run () =
          let plan = Plan.parse spec in
          let partition = Decompose.partition_random ~seed:5 ~k g in
          Decompose.run ~plan g partition (Nfa.of_string "(a|b)*.c?")
        in
        run () = run ());
    qtest "budgeted answers are a subset of complete" ~count:60
      (Q.triple graph (Q.int_range 1 4) (Q.int_range 1 50))
      (fun (g, k, steps) ->
        let partition = Decompose.partition_bfs ~k g in
        let nfa = Nfa.of_string "(a|b)*" in
        let central = Product.accepting_nodes g nfa in
        let budget = Budget.create ~max_steps:steps () in
        match Decompose.run ~budget g partition nfa with
        | Budget.Complete answers, _ -> answers = central
        | Budget.Partial (answers, Budget.Steps), _ ->
          List.for_all (fun u -> List.mem u central) answers
        | Budget.Partial _, _ -> false);
    qtest "faults cost retries, never answers" ~count:40
      (Q.pair graph (Q.int_range 2 4))
      (fun (g, k) ->
        let partition = Decompose.partition_random ~seed:9 ~k g in
        let nfa = Nfa.of_string "_._._" in
        let free = Decompose.run g partition nfa in
        let faulty =
          Decompose.run ~plan:(Plan.parse "seed:3,drop:0.4") g partition nfa
        in
        fst free = fst faulty
        && (snd free).Decompose.messages = (snd faulty).Decompose.messages
        && (snd faulty).Decompose.retries >= (snd faulty).Decompose.dropped);
  ]

let properties =
  [
    qtest "decomposed = centralized (bfs partitions)" ~count:40
      (Q.pair graph (Q.int_range 1 5))
      (fun (g, k) ->
        List.for_all
          (fun q ->
            let nfa = Nfa.of_string q in
            let partition = Decompose.partition_bfs ~k g in
            fst (Decompose.eval g partition nfa) = Product.accepting_nodes g nfa)
          queries);
    qtest "decomposed = centralized (random partitions)" ~count:40
      (Q.triple graph (Q.int_range 1 5) (Q.int_range 0 100))
      (fun (g, k, seed) ->
        let nfa = Nfa.of_string "(a|b)*.c?" in
        let partition = Decompose.partition_random ~seed ~k g in
        fst (Decompose.eval g partition nfa) = Product.accepting_nodes g nfa);
    qtest "work-efficiency: total local work = sequential work" ~count:40
      (Q.pair graph (Q.int_range 1 5))
      (fun (g, k) ->
        let nfa = Nfa.of_string "(a)*.b?" in
        let partition = Decompose.partition_bfs ~k g in
        let _, stats = Decompose.eval g partition nfa in
        Array.fold_left ( + ) 0 stats.Decompose.local_work = stats.Decompose.sequential_work);
    qtest "makespan between max-site and total work" ~count:40
      (Q.pair graph (Q.int_range 1 5))
      (fun (g, k) ->
        let nfa = Nfa.of_string "(a|b)*" in
        let partition = Decompose.partition_bfs ~k g in
        let _, stats = Decompose.eval g partition nfa in
        let total = Array.fold_left ( + ) 0 stats.Decompose.local_work in
        let slowest = Array.fold_left max 0 stats.Decompose.local_work in
        stats.Decompose.makespan >= slowest && stats.Decompose.makespan <= total);
  ]

let tests =
  [
    Alcotest.test_case "single site is centralized" `Quick single_site_is_centralized;
    Alcotest.test_case "partitions cover sites" `Quick partitions_cover_sites;
    Alcotest.test_case "bfs partition has locality" `Quick bfs_partition_has_locality;
    Alcotest.test_case "figure1 under faults" `Quick figure1_under_faults;
    Alcotest.test_case "bad site count rejected" `Quick bad_site_count_rejected;
    Alcotest.test_case "bad fault spec rejected" `Quick bad_fault_spec_rejected;
    Alcotest.test_case "total loss stalls at round cap" `Quick total_loss_stalls;
    Alcotest.test_case "traces show retransmissions" `Quick
      traces_show_retransmissions;
  ]
  @ properties @ fault_properties
