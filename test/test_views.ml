module Views = Unql.Views
module Graph = Ssd.Graph
module Tree = Ssd.Tree
module Label = Ssd.Label

let check = Alcotest.(check bool)

let fig1 = Ssd_workload.Movies.figure1 ()

let basic_view () =
  let reg =
    Views.(empty |> define ~name:"films" {| select {film: m} where {entry.movie: \m} <- DB |})
  in
  let films = Views.materialize reg ~db:fig1 "films" in
  Alcotest.(check int) "two films" 2 (List.length (Graph.labeled_succ films (Graph.root films)));
  (* query over the view *)
  let r = Views.run reg ~db:fig1 {| select {t: \t} where {film.title.\t} <- films |} in
  check "titles via view" true (Tree.mem_label (Graph.to_tree r) (Label.str "Casablanca"))

let chained_views () =
  let reg =
    Views.(
      empty
      |> define ~name:"films" {| select {film: m} where {entry.movie: \m} <- DB |}
      |> define ~name:"titles" {| select {t: \t} where {film.title.\t} <- films |})
  in
  let titles = Views.materialize reg ~db:fig1 "titles" in
  Alcotest.(check int) "two titles" 2
    (List.length (Graph.labeled_succ titles (Graph.root titles)));
  (* a view chain is equivalent to the inlined query *)
  let direct =
    Unql.Eval.run ~db:fig1 {| select {t: \t} where {entry.movie.title.\t} <- DB |}
  in
  check "chain = inline" true (Ssd.Bisim.equal titles direct)

let restructuring_view () =
  (* views can use structural recursion: a cleaned mirror of the db *)
  let reg =
    Views.(
      empty
      |> define ~name:"clean"
           {| let sfun f({budget: T}) = {} | f({\L: T}) = {L: f(T)} in f(DB) |})
  in
  let cleaned = Views.materialize reg ~db:fig1 "clean" in
  check "no budget in the view" true
    (Unql.Eval.run ~db:cleaned {| select {hit} where {<_*.budget>} <- DB |}
    |> Graph.to_tree |> Tree.is_empty);
  check "titles survive" true
    (Tree.mem_label (Graph.unfold ~depth:5 cleaned) (Label.str "Casablanca"))

let shadowing_and_errors () =
  check "duplicate name rejected" true
    (match
       Views.(empty |> define ~name:"v" "{}" |> define ~name:"v" "{a}")
     with
     | exception Ssd_diag.Fail d -> d.Ssd_diag.code = "SSD530"
     | _ -> false);
  check "unknown view" true
    (match Views.materialize Views.empty ~db:fig1 "ghost" with
     | exception Not_found -> true
     | _ -> false);
  check "bad source rejected at define" true
    (match Views.(empty |> define ~name:"v" "select {x} where") with
     | exception Unql.Parser.Parse_error _ -> true
     | _ -> false)

let views_do_not_leak_into_db () =
  (* DB inside a view still refers to the original database *)
  let reg =
    Views.(
      empty
      |> define ~name:"v1" "{marker}"
      |> define ~name:"v2" {| select {found} where {marker} <- DB |})
  in
  let v2 = Views.materialize reg ~db:fig1 "v2" in
  check "DB is not the view" true (Tree.is_empty (Graph.to_tree v2))

let tests =
  [
    Alcotest.test_case "basic view" `Quick basic_view;
    Alcotest.test_case "chained views" `Quick chained_views;
    Alcotest.test_case "restructuring view" `Quick restructuring_view;
    Alcotest.test_case "shadowing and errors" `Quick shadowing_and_errors;
    Alcotest.test_case "views do not leak into DB" `Quick views_do_not_leak_into_db;
  ]
