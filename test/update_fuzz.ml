(* Differential update fuzzer for the incremental-maintenance plane.

   Every seed replays one deterministic schedule of protocol ops against
   an engine over a persistent store: UPDATEs (monotone inserts, grafts,
   deletes, renames), QUERYs (with immediate repeats so the revalidated
   result cache is hit), SUBSCRIBEs/UNSUBSCRIBEs (unql and datalog), and
   — on odd seeds — a kill -9 at a seeded I/O op followed by recovery.

   The oracle is a shadow interpreter with no incremental machinery at
   all: the same Lorel updates applied to a plain graph, every query
   re-evaluated from scratch.  Invariants, checked after every single
   response:

   - a QUERY answer is byte-identical to scratch evaluation on the
     current committed graph — an acked UPDATE is never invisible and a
     stale cache entry is never served;
   - after every acked UPDATE, every live unql subscription's
     last-delivered body equals scratch evaluation on the new graph
     (changed result => a delta frame was pushed; unchanged => silence
     is correct), with densely increasing sequence numbers;
   - a datalog subscription's last-delivered body equals the initial
     body of a freshly registered identical subscription (the fresh one
     re-derives from scratch, the old one advanced semi-naively);
   - after a crash, the recovered store is a committed version no older
     than the last acked UPDATE, its index segments are byte-identical
     to a cold rebuild from the recovered graph, and the schedule's
     remaining ops keep all of the above on the recovered state;
   - a clean close/reopen at the end preserves the fingerprint and the
     cold-rebuild identity of every index segment.

   Replay one failure:  update_fuzz --seed S  *)

module Disk = Ssd_fault.Disk
module Vfs = Ssd_store.Vfs
module Store = Ssd_store.Store
module Engine = Ssd_serve.Engine
module Proto = Ssd_serve.Proto
module Graph = Ssd.Graph

let page_size = 512
let n_ops = 20
let max_subs = 6
let fail fmt = Printf.ksprintf failwith fmt

(* SplitMix64 stream seeded by the fuzzer seed: the only randomness. *)
type rng = { mutable s : int64 }

let rng_make seed = { s = Int64.of_int ((seed * 2) + 1) }

let rand r n =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int mod n

(* ------------------------------------------------------------------ *)
(* The query and update pools                                          *)
(* ------------------------------------------------------------------ *)

(* Mixed footprints on purpose: finite ones exercise the disjointness
   skip and cache revalidation, top ones always re-evaluate. *)
let queries =
  [|
    "select {t: \\T} where {entry.movie.title: \\T} <- DB";
    "select {hit: {}} where {entry.movie.title: _} <- DB";
    "select {z: {}} where {annex.zzz: _} <- DB";
    "select {d: \\D} where {entry.movie.director: \\D} <- DB";
    "select {kind: \\k} where {entry.\\k: _} <- DB";
  |]

let datalog_prog = "reach(?X) :- root(?X). reach(?Y) :- reach(?X), edge(?X, ?L, ?Y)."

(* [k] makes inserted values unique across the schedule. *)
let update_text rng k =
  match rand rng 8 with
  | 0 | 1 ->
    Printf.sprintf "insert DB := {entry: {movie: {title: \"Fuzz%d\", director: \"Dir%d\"}}}" k k
  | 2 -> Printf.sprintf "insert DB := {annex: {zzz: {m: \"Z%d\"}}}" k
  | 3 -> Printf.sprintf "insert DB.entry := {movie: {title: \"Graft%d\"}}" k
  | 4 -> "delete DB.annex"
  | 5 -> "delete DB.entry.movie"
  | 6 -> "rename DB.entry.movie to film"
  | _ -> "rename DB.entry.film to movie"

let render_unql db q = Graph.to_string (Unql.Eval.eval ~db (Unql.Parser.parse q)) ^ "\n"

(* ------------------------------------------------------------------ *)
(* One engine session over a store                                     *)
(* ------------------------------------------------------------------ *)

type sub = {
  sub_id : int;
  sub_q : string; (* query text, or the datalog program *)
  sub_datalog : bool;
  mutable sub_seq : int;
  mutable sub_last : string; (* last delivered body *)
}

type session = {
  engine : Engine.t;
  pushes : string Queue.t;
  mutable subs : sub list;
}

let make_session st =
  let es = Engine.store ~db:(Store.graph st) () in
  Engine.set_persist es (fun g -> Store.commit st g);
  { engine = Engine.create es; pushes = Queue.create (); subs = [] }

let handle s line =
  let r, _ = Engine.handle ~push:(fun f -> Queue.add f s.pushes) ~conn_id:1 s.engine line in
  r

let req verb body = Proto.render_request { Proto.verb; opts = Proto.default_options; body }

let req_datalog body =
  Proto.render_request
    { Proto.verb = Proto.Subscribe;
      opts = { Proto.default_options with Proto.lang = "datalog" };
      body }

(* Fresh-registration oracle: what a brand-new identical subscription
   would deliver right now (scratch derivation inside the engine). *)
let fresh_initial s ~datalog q =
  let r = handle s (if datalog then req_datalog q else req Proto.Subscribe q) in
  if r.Proto.status <> Proto.Complete then
    fail "oracle subscribe failed: %s %s" r.Proto.detail r.Proto.body;
  let r' = handle s (req Proto.Unsubscribe r.Proto.detail) in
  if r'.Proto.status <> Proto.Complete then fail "oracle unsubscribe failed";
  r.Proto.body

(* Drain pushed frames into the subscription records. *)
let drain s =
  let n = ref 0 in
  while not (Queue.is_empty s.pushes) do
    incr n;
    let raw = Queue.pop s.pushes in
    match Proto.parse_response raw 0 with
    | Error _ -> fail "unparsable pushed frame"
    | Ok (r, _) ->
      if r.Proto.status <> Proto.Delta then fail "pushed frame is not a delta";
      let id, seq =
        match String.split_on_char '.' r.Proto.detail with
        | [ id; seq ] -> (int_of_string id, int_of_string seq)
        | _ -> fail "bad delta detail %S" r.Proto.detail
      in
      (match List.find_opt (fun x -> x.sub_id = id) s.subs with
      | None -> fail "delta for unknown subscription %d" id
      | Some x ->
        if seq <> x.sub_seq + 1 then
          fail "subscription %d: push seq %d after %d" id seq x.sub_seq;
        x.sub_seq <- seq;
        x.sub_last <- r.Proto.body)
  done;
  !n

(* After an acked update: no subscription may be left stale. *)
let check_subs s shadow =
  let pushed = drain s in
  if pushed > List.length s.subs then fail "more pushes than live subscriptions";
  List.iter
    (fun x ->
      let expect =
        if x.sub_datalog then fresh_initial s ~datalog:true x.sub_q
        else render_unql shadow x.sub_q
      in
      if not (String.equal x.sub_last expect) then
        fail "stale subscription %d (%s): served body differs from scratch result" x.sub_id
          (if x.sub_datalog then "datalog" else x.sub_q))
    s.subs

let check_query s shadow q =
  let r = handle s (req Proto.Query q) in
  if r.Proto.status <> Proto.Complete then
    fail "query error: %s %s" r.Proto.detail r.Proto.body;
  if not (String.equal r.Proto.body (render_unql shadow q)) then
    fail "stale query answer for %s" q

let cold_segment st g name =
  match name with
  | "value" -> Ssd_index.Value_index.to_bytes (Ssd_index.Value_index.build g)
  | "text" -> Ssd_index.Text_index.to_bytes (Ssd_index.Text_index.build g)
  | "path" ->
    Ssd_index.Path_index.to_bytes
      (Ssd_index.Path_index.build ~depth:(Store.path_depth st) g)
  | "guide" -> Ssd_schema.Dataguide.to_bytes (Ssd_schema.Dataguide.build g)
  | other -> fail "unknown index segment %S" other

let check_segments what st =
  let g = Store.graph st in
  List.iter
    (fun name ->
      if not (Bytes.equal (Store.index_segment_bytes st name) (cold_segment st g name)) then
        fail "%s: index segment %S differs from a cold rebuild" what name)
    (Store.indexes st)

(* ------------------------------------------------------------------ *)
(* One seed                                                            *)
(* ------------------------------------------------------------------ *)

exception Crashed of int (* op index of the update that hit the crash *)

(* Run the op schedule for [seed] against session [s], mirroring every
   acked update into [shadow] and appending every attempted version to
   [chain].  Raises [Crashed] out of the op that hit the planned crash
   point. *)
let run_schedule seed ~from_op s shadow chain acked =
  let rng = rng_make seed in
  (* Burn a fixed slice of the stream per skipped op, so a post-crash
     resume at [from_op] is deterministic in the seed. *)
  for k = 0 to from_op - 1 do
    ignore (rand rng 100);
    ignore (update_text rng k)
  done;
  for k = from_op to n_ops - 1 do
    let pick = rand rng 100 in
    let utext = update_text rng k in
    if pick < 35 then begin
      let q = queries.(rand rng (Array.length queries)) in
      check_query s !shadow q;
      (* immediate repeat: the second answer comes from the cache *)
      if rand rng 2 = 0 then check_query s !shadow q
    end
    else if pick < 70 then begin
      match Lorel.Update.run ~db:!shadow utext with
      | exception _ -> () (* statement invalid against this graph: skip *)
      | shadow' ->
        chain := shadow' :: !chain;
        let r = handle s (req Proto.Update utext) in
        (match r.Proto.status with
        | Proto.Error -> raise (Crashed k)
        | Proto.Complete ->
          acked := List.length !chain - 1;
          shadow := shadow';
          let head =
            Printf.sprintf "updated: %d nodes, %d edges;" (Graph.n_nodes shadow')
              (Graph.n_edges shadow')
          in
          if not (String.length r.Proto.body >= String.length head
                  && String.equal (String.sub r.Proto.body 0 (String.length head)) head)
          then fail "update response %S does not match the shadow graph shape" r.Proto.body;
          check_subs s shadow'
        | _ -> fail "unexpected update status")
    end
    else if pick < 85 && List.length s.subs < max_subs then begin
      let datalog = rand rng 5 = 0 in
      let q = if datalog then datalog_prog else queries.(rand rng (Array.length queries)) in
      let r = handle s (if datalog then req_datalog q else req Proto.Subscribe q) in
      if r.Proto.status <> Proto.Complete then fail "subscribe failed: %s" r.Proto.detail;
      if (not datalog) && not (String.equal r.Proto.body (render_unql !shadow q)) then
        fail "initial subscription result differs from scratch eval";
      s.subs <-
        {
          sub_id = int_of_string r.Proto.detail;
          sub_q = q;
          sub_datalog = datalog;
          sub_seq = 0;
          sub_last = r.Proto.body;
        }
        :: s.subs
    end
    else begin
      match s.subs with
      | [] -> check_query s !shadow queries.(0)
      | subs ->
        let x = List.nth subs (rand rng (List.length subs)) in
        let r = handle s (req Proto.Unsubscribe (string_of_int x.sub_id)) in
        if r.Proto.status <> Proto.Complete then fail "unsubscribe failed";
        s.subs <- List.filter (fun y -> y.sub_id <> x.sub_id) subs
    end
  done

(* Clean close / reopen: fingerprint preserved, segments still cold. *)
let close_and_check vfs st =
  let fp = Store.fingerprint st in
  Store.close st;
  let st2 = Store.open_ vfs in
  if not (Store.recovery st2).Store.was_clean then fail "reopen after clean close recovers";
  if Store.fingerprint st2 <> fp then fail "fingerprint changed across close/reopen";
  check_segments "clean reopen" st2;
  Store.close st2

let base_graph seed = Ssd_workload.Movies.generate ~seed:(7001 + seed) ~n_entries:3 ()

(* Fault-free differential pass; returns the op count of the schedule
   so the crash pass can place its kill -9 inside it. *)
let run_clean seed =
  let mem, vfs = Vfs.mem_create Disk.none in
  let st = Store.create ~page_size ~path_depth:2 vfs (base_graph seed) in
  let ops_create = Vfs.ops mem in
  let s = make_session st in
  let shadow = ref (Store.graph st) in
  let chain = ref [ !shadow ] and acked = ref 0 in
  (match run_schedule seed ~from_op:0 s shadow chain acked with
  | () -> ()
  | exception Crashed _ -> fail "fault-free pass crashed");
  check_segments "fault-free pass" st;
  close_and_check vfs st;
  (ops_create, Vfs.ops mem)

(* Crash pass: same schedule, a crash planned at op [c].  On the crash,
   recover from the surviving images and let the rest of the schedule
   run against the recovered store. *)
let run_crash seed ~crash_at =
  let plan = { Disk.none with Disk.seed; crash_at = Some crash_at } in
  let mem, vfs = Vfs.mem_create plan in
  let st = Store.create ~page_size ~path_depth:2 vfs (base_graph seed) in
  let s = make_session st in
  let shadow = ref (Store.graph st) in
  let chain = ref [ !shadow ] and acked = ref 0 in
  let recover_into ~resume_at =
    let acked_n = !acked in
    let images = Vfs.crash_images mem in
    let _mem2, vfs2 = Vfs.mem_create ~images Disk.none in
    let st2 = Store.open_ vfs2 in
    let fp = Store.fingerprint st2 in
    let versions = List.rev !chain in
    (* No-op updates leave byte-identical consecutive versions, so the
       same fingerprint can occur at several indexes; recovered content
       is the newest of them. *)
    let k =
      let best = ref (-1) in
      List.iteri (fun i g -> if Store.fingerprint_graph g = fp then best := i) versions;
      if !best < 0 then
        fail "recovered fingerprint matches no committed version (acked %d)" acked_n;
      !best
    in
    if k < acked_n then fail "acknowledged update lost: recovered version %d < acked %d" k acked_n;
    check_segments "post-recovery" st2;
    (* resume the remaining schedule on the recovered state *)
    let s2 = make_session st2 in
    let shadow2 = ref (Store.graph st2) in
    let chain2 = ref [ !shadow2 ] and acked2 = ref 0 in
    (match run_schedule seed ~from_op:resume_at s2 shadow2 chain2 acked2 with
    | () -> ()
    | exception Crashed _ -> fail "second crash without a plan");
    check_segments "post-recovery schedule" st2;
    close_and_check vfs2 st2
  in
  match run_schedule seed ~from_op:0 s shadow chain acked with
  | () -> (
    (* the schedule never reached the crash point; the final close or
       checkpoint may still hit it *)
    match close_and_check vfs st with
    | () -> ()
    | exception Vfs.Crash -> recover_into ~resume_at:n_ops)
  | exception Crashed k -> recover_into ~resume_at:(k + 1)

let run_one seed =
  let ops_create, ops_total = run_clean seed in
  if seed land 1 = 1 then begin
    let rng = rng_make (seed lxor 0x5bd1e) in
    let window = max 1 (ops_total - ops_create) in
    run_crash seed ~crash_at:(ops_create + 1 + rand rng window)
  end

(* ------------------------------------------------------------------ *)

let () =
  let seeds = ref 1000 and first = ref 0 and one = ref None in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: n :: rest ->
      seeds := int_of_string n;
      parse rest
    | "--first" :: n :: rest ->
      first := int_of_string n;
      parse rest
    | "--seed" :: s :: rest ->
      one := Some (int_of_string s);
      parse rest
    | a :: _ -> fail "update_fuzz: unknown argument %S (try --seeds N | --first N | --seed S)" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  let run_checked seed =
    try
      run_one seed;
      true
    with e ->
      Printf.eprintf "update_fuzz: FAILED seed=%d: %s\n  replay with: update_fuzz --seed %d\n%!"
        seed (Printexc.to_string e) seed;
      false
  in
  match !one with
  | Some s ->
    Printexc.record_backtrace true;
    if run_checked s then print_endline "update_fuzz: seed passed" else exit 1
  | None ->
    let failures = ref 0 in
    for s = !first to !first + !seeds - 1 do
      if not (run_checked s) then incr failures
    done;
    Printf.printf "update_fuzz: %d seeds, %d failures (%d ops per schedule)\n%!" !seeds
      !failures n_ops;
    if !failures > 0 then exit 1
