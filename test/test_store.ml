(* The persistent store: segment codecs, page frames, WAL scan,
   cold-open byte-identity, recovery after an unclean stop, and the
   stable fsck codes.  The seeded crash schedules live in the separate
   [crash_fuzz] executable; these are the deterministic unit cases. *)

module Graph = Ssd.Graph
module Label = Ssd.Label
module B = Ssd_storage.Bytesio
module Disk = Ssd_fault.Disk
module Vfs = Ssd_store.Vfs
module Page = Ssd_store.Page
module Wal = Ssd_store.Wal
module Seg = Ssd_store.Seg
module Store = Ssd_store.Store
module Metrics = Ssd_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let fig1 () = Ssd_workload.Movies.figure1 ()
let movies n = Ssd_workload.Movies.generate ~seed:7 ~n_entries:n ()

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)
(* ------------------------------------------------------------------ *)

let seg_roundtrip () =
  let g = fig1 () in
  let dict = Seg.dict_of_graph g in
  let dict' = Seg.decode_dict (Seg.encode_dict dict) in
  check "dict round-trip" true (dict = dict');
  let gb = Seg.encode_graph ~dict g in
  let g' = Seg.decode_graph ~dict:dict' gb in
  check_int "nodes" (Graph.n_nodes g) (Graph.n_nodes g');
  check_int "edges" (Graph.n_edges g) (Graph.n_edges g');
  check_int "root" (Graph.root g) (Graph.root g');
  check "same value" true (Ssd.Bisim.equal g g');
  (* Canonical: re-encoding the decode is byte-identical. *)
  check "canonical bytes" true (Bytes.equal gb (Seg.encode_graph ~dict:dict' g'))

let superblock_roundtrip () =
  let sb =
    {
      Page.clean = false;
      next_lsn = 42;
      n_pages = 17;
      path_depth = 5;
      segs =
        [
          { Page.name = "dict"; first_page = 1; byte_len = 100; crc = 0xDEAD };
          { Page.name = "graph"; first_page = 2; byte_len = 999; crc = 0xBEEF };
        ];
    }
  in
  check "superblock round-trip" true (Page.decode_superblock (Page.encode_superblock sb) = sb)

let page_frame () =
  let page_size = 256 in
  let payload = Bytes.of_string "some page payload" in
  let framed = Page.frame ~page_size ~lsn:9 payload in
  check_int "framed to page size" page_size (Bytes.length framed);
  let lsn, payload' = Page.unframe ~page_size framed in
  check_int "lsn survives" 9 lsn;
  check "payload survives" true (Bytes.equal payload payload');
  (* Any flipped bit must be caught by the CRC. *)
  let stomped = Bytes.copy framed in
  Bytes.set stomped 40 (Char.chr (Char.code (Bytes.get stomped 40) lxor 1));
  (match Page.unframe ~page_size stomped with
  | exception B.Corrupt _ -> ()
  | _ -> Alcotest.fail "flipped bit accepted");
  match Page.unframe ~page_size (Bytes.make page_size '\000') with
  | exception B.Corrupt _ -> ()
  | _ -> Alcotest.fail "zero page accepted"

let wal_scan () =
  let sb_page b = Bytes.of_string ("sb" ^ b) in
  let buf = Buffer.create 256 in
  Buffer.add_bytes buf (Wal.encode_header ());
  (* txn 1: two pages + commit; txn 2: one page + commit. *)
  Buffer.add_bytes buf (Wal.encode_frame ~typ:Wal.t_page ~lsn:1 ~arg:3 (Bytes.of_string "p3"));
  Buffer.add_bytes buf (Wal.encode_frame ~typ:Wal.t_page ~lsn:1 ~arg:5 (Bytes.of_string "p5"));
  Buffer.add_bytes buf (Wal.encode_frame ~typ:Wal.t_commit ~lsn:1 ~arg:0 (sb_page "1"));
  Buffer.add_bytes buf (Wal.encode_frame ~typ:Wal.t_page ~lsn:2 ~arg:3 (Bytes.of_string "p3'"));
  Buffer.add_bytes buf (Wal.encode_frame ~typ:Wal.t_commit ~lsn:2 ~arg:0 (sb_page "2"));
  (* an in-flight txn 3 whose commit frame is torn off mid-way; its page
     frame is valid, so it still counts as scanned *)
  let in_flight = Wal.encode_frame ~typ:Wal.t_page ~lsn:3 ~arg:8 (Bytes.of_string "p8") in
  let scanned = Buffer.length buf - Wal.header_size + Bytes.length in_flight in
  Buffer.add_bytes buf in_flight;
  let torn = Wal.encode_frame ~typ:Wal.t_commit ~lsn:3 ~arg:0 (sb_page "3") in
  Buffer.add_bytes buf (Bytes.sub torn 0 (Bytes.length torn - 5));
  let scan = Wal.scan (Buffer.to_bytes buf) in
  check_int "two committed txns" 2 (List.length scan.Wal.txns);
  check_int "valid frames scanned" scanned scan.Wal.scanned_bytes;
  check "tail discarded" true (scan.Wal.torn_bytes > 0);
  check_int "in-flight pages dropped" 1 scan.Wal.in_flight;
  let t1 = List.hd scan.Wal.txns and t2 = List.nth scan.Wal.txns 1 in
  check_int "txn order" 1 t1.Wal.txn_lsn;
  check "txn pages" true
    (List.map fst t1.Wal.pages = [ 3; 5 ] && List.map fst t2.Wal.pages = [ 3 ]);
  check "commit carries the superblock" true (Bytes.equal t2.Wal.sb_page (sb_page "2"))

(* ------------------------------------------------------------------ *)
(* Store lifecycle (fault-free, in-memory VFS)                         *)
(* ------------------------------------------------------------------ *)

let new_mem () = Vfs.mem_create Disk.none

let cold_open () =
  let g = movies 20 in
  let _mem, vfs = new_mem () in
  let st = Store.create ~page_size:512 vfs g in
  let fp = Store.fingerprint st in
  check_int "create fingerprint matches the oracle" (Store.fingerprint_graph g) fp;
  Store.close st;
  let st = Store.open_ vfs in
  check "clean open skips recovery" true (Store.recovery st).Store.was_clean;
  check_int "fingerprint survives" fp (Store.fingerprint st);
  check "graph survives" true (Ssd.Bisim.equal g (Store.graph st));
  (* Indexes come off the checkpointed segments, not a rebuild. *)
  let builds = Metrics.counter "index.value.builds" in
  let before = Metrics.value builds in
  let ix = Store.value_index st in
  check_int "cold open rebuilds nothing" before (Metrics.value builds);
  check "index answers" true
    (Ssd_index.Value_index.find_nodes ix (Label.sym "movie") <> []);
  (* Every checkpointed index segment is byte-identical to a fresh
     canonical build on the same graph. *)
  let oracle = function
    | "value" -> Ssd_index.Value_index.(to_bytes (build g))
    | "text" -> Ssd_index.Text_index.(to_bytes (build g))
    | "path" -> Ssd_index.Path_index.(to_bytes (build ~depth:3 g))
    | "guide" -> Ssd_schema.Dataguide.(to_bytes (build g))
    | _ -> assert false
  in
  List.iter
    (fun name ->
      check (name ^ " segment canonical") true
        (Bytes.equal (Store.index_segment_bytes st name) (oracle name)))
    (Store.indexes st);
  Store.close st

let commit_visibility () =
  let g1 = movies 5 and g2 = movies 9 in
  let _mem, vfs = new_mem () in
  let st = Store.create ~page_size:512 vfs g1 in
  Store.commit st g2;
  check "commit replaces the graph" true (Ssd.Bisim.equal g2 (Store.graph st));
  check_int "fingerprint tracks the commit" (Store.fingerprint_graph g2) (Store.fingerprint st);
  Store.close st;
  let st = Store.open_ vfs in
  check "committed version survives close/open" true (Ssd.Bisim.equal g2 (Store.graph st));
  Store.close st

let kill9_recovery () =
  let g1 = movies 5 and g2 = movies 9 in
  let mem, vfs = new_mem () in
  let st = Store.create ~page_size:512 vfs g1 in
  Store.commit st g2;
  (* kill -9: no close, no checkpoint — reopen from the surviving bytes *)
  let images = Vfs.crash_images mem in
  let _mem2, vfs2 = Vfs.mem_create ~images Disk.none in
  let st2 = Store.open_ vfs2 in
  let r = Store.recovery st2 in
  check "unclean stop needs recovery" true (not r.Store.was_clean);
  check "replays the committed txns" true (r.Store.recovered_txns >= 1);
  check_int "acked commit survives kill -9" (Store.fingerprint_graph g2) (Store.fingerprint st2);
  (* Recovery is idempotent: a second open from the same images agrees. *)
  let _mem3, vfs3 = Vfs.mem_create ~images:(Vfs.crash_images mem) Disk.none in
  let st3 = Store.open_ vfs3 in
  check_int "recovery is deterministic" (Store.fingerprint st2) (Store.fingerprint st3);
  Store.close st2;
  check "close after recovery goes clean" true
    (Store.recovery (Store.open_ vfs2)).Store.was_clean

let compact_preserves () =
  let g1 = movies 12 and g2 = movies 4 in
  let _mem, vfs = new_mem () in
  let st = Store.create ~page_size:512 vfs g1 in
  Store.commit st g2;
  let fp = Store.fingerprint st in
  let wal_before = Store.wal_size st in
  check "commits grow the wal" true (wal_before > 0);
  Store.compact st;
  check_int "compact preserves content" fp (Store.fingerprint st);
  check_int "compact empties the wal" 0 (Store.wal_size st);
  check "shrinking commit reclaims pages" true (Store.n_pages st > 0);
  Store.close st;
  let st = Store.open_ vfs in
  check_int "compacted store reopens identical" fp (Store.fingerprint st);
  Store.close st

(* ------------------------------------------------------------------ *)
(* fsck: the stable SSD56x codes                                       *)
(* ------------------------------------------------------------------ *)

let images_of_clean_store () =
  let mem, vfs = new_mem () in
  let st = Store.create ~page_size:256 vfs (movies 6) in
  Store.commit st (movies 8);
  Store.close st;
  Vfs.crash_images mem

let fsck_with images = Store.fsck (snd (Vfs.mem_create ~images Disk.none))
let has_code c diags = List.exists (fun d -> d.Ssd_diag.code = c) diags

let mutate images name f =
  List.map (fun (n, b) -> if n = name then (n, f (Bytes.copy b)) else (n, b)) images

let fsck_codes () =
  let images = images_of_clean_store () in
  check "clean store fscks clean" true (fsck_with images = []);
  (* SSD560: bad magic *)
  let bad_magic =
    mutate images "data" (fun b ->
        Bytes.blit_string "XXXX" 0 b 0 4;
        b)
  in
  check "SSD560 bad magic" true (has_code "SSD560" (fsck_with bad_magic));
  (* SSD561: a stomped byte inside page 1's frame *)
  let stomped =
    mutate images "data" (fun b ->
        let off = Page.page_offset ~page_size:256 1 + 37 in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
        b)
  in
  check "SSD561 crc mismatch" true (has_code "SSD561" (fsck_with stomped));
  (* SSD562: a torn frame left on the wal tail *)
  let torn =
    mutate images "wal" (fun b ->
        let junk = Wal.encode_frame ~typ:Wal.t_page ~lsn:99 ~arg:1 (Bytes.of_string "x") in
        Bytes.cat b (Bytes.sub junk 0 (Bytes.length junk - 3)))
  in
  check "SSD562 torn wal tail" true (has_code "SSD562" (fsck_with torn));
  (* SSD563: the directory points past the end of a truncated file *)
  let truncated = mutate images "data" (fun b -> Bytes.sub b 0 (Bytes.length b - 300)) in
  check "SSD563 dangling pages" true (has_code "SSD563" (fsck_with truncated));
  (* SSD565: store left open (kill -9), recovery pending *)
  let mem, vfs = new_mem () in
  let st = Store.create ~page_size:256 vfs (movies 6) in
  Store.commit st (movies 8);
  let unclean = Vfs.crash_images mem in
  check "SSD565 recovery pending" true (has_code "SSD565" (fsck_with unclean));
  check "fsck is read-only on pending recovery" true
    (Store.fingerprint_graph (movies 8)
    = Store.fingerprint (Store.open_ (snd (Vfs.mem_create ~images:unclean Disk.none))))

let tests =
  [
    Alcotest.test_case "segment codec round-trip" `Quick seg_roundtrip;
    Alcotest.test_case "superblock round-trip" `Quick superblock_roundtrip;
    Alcotest.test_case "page frame CRC" `Quick page_frame;
    Alcotest.test_case "wal scan and torn tail" `Quick wal_scan;
    Alcotest.test_case "cold open is byte-identical" `Quick cold_open;
    Alcotest.test_case "commit visibility" `Quick commit_visibility;
    Alcotest.test_case "kill -9 recovery" `Quick kill9_recovery;
    Alcotest.test_case "compact preserves content" `Quick compact_preserves;
    Alcotest.test_case "fsck stable codes" `Quick fsck_codes;
  ]
