(* Smoke test for the admin plane on the real binary: `ssdql serve
   --store --admin` must expose valid OpenMetrics (monotone across
   scrapes, tenant-labeled families present), a truthful /healthz, a
   /varz with the running config, and an /events tail in which a slow
   query shows up with its plan and cardinality estimate.  Then the
   crash path: kill -9 the server and check the reopened process's
   /healthz reports the recovery. *)

module Proto = Ssd_serve.Proto
module Export = Ssd_obs.Export

(* Servers spawned so far — killed on failure so an orphaned child can't
   hold the runner's output pipe open after we exit. *)
let spawned : int list ref = ref []

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("check_admin: FAIL " ^ m);
      List.iter (fun p -> try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ()) !spawned;
      exit 1)
    fmt

let expect what cond = if not cond then fail "%s" what

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1)) in
  go 0

let wait_for ?(timeout = 10.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if not (pred ()) then
      if Unix.gettimeofday () -. t0 > timeout then fail "timed out waiting for %s" what
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Clients: SSDQL frames and admin HTTP, both over Unix sockets        *)
(* ------------------------------------------------------------------ *)

let connect_to path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
    Unix.close fd;
    raise e);
  fd

let send fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let read_frames fd k =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec parse_all pos acc =
    if List.length acc = k then List.rev acc
    else
      match Proto.parse_response (Buffer.contents buf) pos with
      | Ok (r, pos') -> parse_all pos' (r :: acc)
      | Error `Incomplete -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> fail "connection closed with %d of %d frames read" (List.length acc) k
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          parse_all pos acc)
      | Error (`Malformed why) -> fail "malformed frame from server: %s" why
  in
  parse_all 0 []

let rpc_at path k reqs =
  let fd = connect_to path in
  send fd reqs;
  let frames = read_frames fd k in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  frames

(* GET over the admin socket: HTTP/1.0, server closes after the
   response, so read to EOF and split headers from body. *)
let http_get path target =
  let fd = connect_to path in
  send fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target);
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let raw = Buffer.contents buf in
  let split sep =
    let n = String.length raw and m = String.length sep in
    let rec go i = if i + m > n then None else if String.sub raw i m = sep then Some i else go (i + 1) in
    go 0
  in
  match split "\r\n\r\n" with
  | Some i ->
    (String.sub raw 0 i, String.sub raw (i + 4) (String.length raw - i - 4))
  | None -> (
    match split "\n\n" with
    | Some i ->
      (String.sub raw 0 i, String.sub raw (i + 2) (String.length raw - i - 2))
    | None -> fail "no header/body split in response to %s" target)

let status_of headers =
  match String.split_on_char ' ' headers with
  | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:(-1)
  | _ -> -1

let get_json path target =
  let headers, body = http_get path target in
  expect (target ^ " returns 200") (status_of headers = 200);
  match Ssd.Json.parse body with
  | v -> v
  | exception Ssd.Json.Parse_error e -> fail "%s body does not parse: %s" target e

let assoc_path doc keys =
  List.fold_left
    (fun acc k ->
      match acc with
      | Ssd.Json.Obj kvs -> (
        match List.assoc_opt k kvs with
        | Some v -> v
        | None -> fail "missing key %S" k)
      | _ -> fail "key %S: not an object" k)
    doc keys

(* ------------------------------------------------------------------ *)

let () =
  match Sys.argv with
  | [| _; ssdql |] ->
    let dir = Filename.temp_file "ssdql_admin_store" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let tmp = Filename.get_temp_dir_name () in
    let pid = Unix.getpid () in
    let serve_sock = Filename.concat tmp (Printf.sprintf "ssdql_adm_srv_%d.sock" pid) in
    let admin_sock = Filename.concat tmp (Printf.sprintf "ssdql_adm_http_%d.sock" pid) in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let init =
      Unix.create_process ssdql
        [| ssdql; "store"; "init"; "--store"; dir; "-d"; "builtin:figure1" |]
        Unix.stdin devnull devnull
    in
    (match Unix.waitpid [] init with
    | _, Unix.WEXITED 0 -> ()
    | _ -> fail "store init failed");
    Unix.close devnull;
    let spawn_serve log =
      let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
      let p =
        Unix.create_process ssdql
          [|
            ssdql; "serve"; "--store"; dir; "--socket"; serve_sock;
            "--workers"; "2"; "--admin"; "unix:" ^ admin_sock;
            (* every query is a "slow" query, so /events must show one *)
            "--slow-query-ms"; "0";
          |]
          Unix.stdin Unix.stdout logfd
      in
      Unix.close logfd;
      spawned := p :: !spawned;
      wait_for "serve socket" (fun () -> Sys.file_exists serve_sock);
      wait_for "admin socket" (fun () -> Sys.file_exists admin_sock);
      p
    in

    let log1 = Filename.temp_file "ssdql_admin1" ".log" in
    let pid1 = spawn_serve log1 in

    (* Traffic with tenant labels, so the per-tenant families exist. *)
    let q = {| select {t: \T} where {entry.movie.title: \T} <- DB |} in
    (match rpc_at serve_sock 2 (Printf.sprintf "QUERY tenant=alice %s\nPING\n" q) with
    | [ r; p ] ->
      expect "alice query completes" (r.Proto.status = Proto.Complete);
      expect "ping answers" (String.equal p.Proto.body "pong\n")
    | _ -> fail "tenant traffic frame count");
    (match rpc_at serve_sock 1 (Printf.sprintf "QUERY - %s\n" q) with
    | [ r ] -> expect "default-tenant query completes" (r.Proto.status = Proto.Complete)
    | _ -> fail "default traffic frame count");

    (* Scrape #1: valid OpenMetrics with the families the issue names. *)
    let headers, scrape1 = http_get admin_sock "/metrics" in
    expect "/metrics returns 200" (status_of headers = 200);
    expect "content-type is the openmetrics media type"
      (contains headers "Content-Type: application/openmetrics-text");
    let parsed1 =
      match Export.parse scrape1 with
      | Ok l -> l
      | Error e -> fail "scrape #1 does not parse: %s" e
    in
    expect "scrape ends with # EOF" (List.mem Export.Eof parsed1);
    expect "serve latency histogram exported"
      (List.exists
         (function
           | Export.Type (f, "histogram") -> f = "ssd_serve_latency_ns"
           | _ -> false)
         parsed1);
    expect "tenant-labeled family exported"
      (List.exists
         (function
           | Export.Sample s ->
             s.Export.family = "ssd_serve_tenant_requests_total"
             && s.Export.labels = [ ("tenant", "alice") ]
           | _ -> false)
         parsed1);
    expect "store gauges exported"
      (Export.counter_total parsed1 "ssd_store_pages" > 0.);

    (* Scrape #2 after more traffic: counters are monotone. *)
    (match rpc_at serve_sock 1 (Printf.sprintf "QUERY tenant=alice %s\n" q) with
    | [ r ] -> expect "second alice query completes" (r.Proto.status = Proto.Complete)
    | _ -> fail "second alice frame count");
    let _, scrape2 = http_get admin_sock "/metrics" in
    let parsed2 =
      match Export.parse scrape2 with
      | Ok l -> l
      | Error e -> fail "scrape #2 does not parse: %s" e
    in
    List.iter
      (fun fam ->
        let a = Export.counter_total parsed1 fam
        and b = Export.counter_total parsed2 fam in
        if b < a then fail "%s went backwards across scrapes (%g -> %g)" fam a b)
      [
        "ssd_serve_requests_total";
        "ssd_serve_tenant_requests_total";
        "ssd_admin_scrapes_total";
      ];

    (* /metrics?format=json *)
    (match get_json admin_sock "/metrics?format=json" with
    | Ssd.Json.Obj kvs ->
      expect "json scrape has the registry sections"
        (List.mem_assoc "counters" kvs && List.mem_assoc "histograms" kvs)
    | _ -> fail "json scrape is not an object");

    (* /healthz on a clean store *)
    let health = get_json admin_sock "/healthz" in
    expect "healthz ok" (assoc_path health [ "status" ] = Ssd.Json.String "ok");
    (* while open-for-write the durable clean flag is down — that is how
       a crash is detected on the next open *)
    expect "healthz shows the store open-for-write"
      (assoc_path health [ "store"; "clean" ] = Ssd.Json.Bool false);
    expect "healthz reports a clean first open"
      (assoc_path health [ "store"; "last_recovery"; "was_clean" ] = Ssd.Json.Bool true);

    (* /varz carries the running config *)
    let varz = get_json admin_sock "/varz" in
    expect "varz names the binary"
      (assoc_path varz [ "name" ] = Ssd.Json.String "ssdql serve");
    (match assoc_path varz [ "config"; "slow_query_ms" ] with
    | Ssd.Json.Float f -> expect "varz shows the slow-query threshold" (f = 0.)
    | Ssd.Json.Int i -> expect "varz shows the slow-query threshold" (i = 0)
    | _ -> fail "varz config.slow_query_ms missing");

    (* /events: the queries above ran with threshold 0, so a slow_query
       event with plan and estimate must be in the tail. *)
    let _, events_body = http_get admin_sock "/events?n=50" in
    let event_lines =
      String.split_on_char '\n' events_body |> List.filter (fun l -> l <> "")
    in
    expect "events tail is nonempty" (event_lines <> []);
    let slow =
      List.filter_map
        (fun l ->
          match Ssd.Json.parse l with
          | Ssd.Json.Obj kvs when List.assoc_opt "event" kvs = Some (Ssd.Json.String "slow_query")
            -> Some kvs
          | Ssd.Json.Obj _ -> None
          | _ -> fail "event line is not a JSON object: %s" l
          | exception Ssd.Json.Parse_error e -> fail "bad event line %S: %s" l e)
        event_lines
    in
    expect "a slow_query event was logged" (slow <> []);
    let last = List.nth slow (List.length slow - 1) in
    expect "slow_query carries the plan" (List.mem_assoc "plan" last);
    expect "slow_query carries the cardinality estimate" (List.mem_assoc "est_rows" last);
    expect "slow_query carries the actual row count" (List.mem_assoc "actual_rows" last);
    expect "slow_query names the tenant" (List.mem_assoc "tenant" last);

    (* The EVENTS verb serves the same tail over the query protocol. *)
    (match rpc_at serve_sock 1 "EVENTS n=5\n" with
    | [ r ] ->
      expect "EVENTS frame completes" (r.Proto.status = Proto.Complete);
      expect "EVENTS body is the JSONL tail" (contains r.Proto.body "\"event\"")
    | _ -> fail "EVENTS frame count");

    (* STATS carries the full registry snapshot (one source of truth
       with the admin plane) plus the engine section. *)
    (match rpc_at serve_sock 1 "STATS\n" with
    | [ s ] -> (
      match Ssd.Json.parse s.Proto.body with
      | Ssd.Json.Obj kvs ->
        expect "STATS has registry sections"
          (List.mem_assoc "counters" kvs && List.mem_assoc "gauges" kvs
          && List.mem_assoc "histograms" kvs);
        expect "STATS has the engine section" (List.mem_assoc "engine" kvs)
      | _ -> fail "STATS body is not a JSON object"
      | exception Ssd.Json.Parse_error e -> fail "STATS body does not parse: %s" e)
    | _ -> fail "STATS frame count");

    (* 404 and method handling *)
    let h404, _ = http_get admin_sock "/nosuch" in
    expect "unknown target is 404" (status_of h404 = 404);

    (* Crash: kill -9, reopen, /healthz must report the recovery. *)
    Unix.kill pid1 Sys.sigkill;
    (match Unix.waitpid [] pid1 with
    | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
    | _ -> fail "server not killed as expected");
    if Sys.file_exists serve_sock then Sys.remove serve_sock;
    if Sys.file_exists admin_sock then Sys.remove admin_sock;

    let log2 = Filename.temp_file "ssdql_admin2" ".log" in
    let pid2 = spawn_serve log2 in
    let health2 = get_json admin_sock "/healthz" in
    expect "healthz ok after recovery"
      (assoc_path health2 [ "status" ] = Ssd.Json.String "ok");
    expect "healthz reports the unclean open"
      (assoc_path health2 [ "store"; "last_recovery"; "was_clean" ] = Ssd.Json.Bool false);
    Unix.kill pid2 Sys.sigterm;
    (match Unix.waitpid [] pid2 with
    | _, Unix.WEXITED 0 -> ()
    | _ -> fail "server did not exit cleanly on SIGTERM");
    print_endline "check_admin: ok"
  | _ -> fail "usage: check_admin SSDQL_BINARY"
