module Graph = Ssd.Graph
module Codec = Ssd_storage.Codec
module Pager = Ssd_storage.Pager
open Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip_fig1 () =
  let g = Ssd_workload.Movies.figure1 () in
  let g' = Codec.decode (Codec.encode g) in
  (* node identities survive exactly, not just up to bisimilarity *)
  check_int "same node count" (Graph.n_nodes g) (Graph.n_nodes g');
  check_int "same root" (Graph.root g) (Graph.root g');
  check "same value" true (Ssd.Bisim.equal g g')

let file_roundtrip () =
  let g = Ssd_workload.Bibdb.generate ~n_papers:30 () in
  let path = Filename.temp_file "ssd" ".bin" in
  Codec.write_file path g;
  let g' = Codec.read_file path in
  Sys.remove path;
  check "file round-trip" true (Ssd.Bisim.equal g g')

let corrupt_input_rejected () =
  let rejects data =
    match Codec.decode data with
    | exception Codec.Corrupt _ -> true
    | _ -> false
  in
  check "bad magic" true (rejects (Bytes.of_string "NOPE"));
  check "empty" true (rejects Bytes.empty);
  let good = Codec.encode (Ssd_workload.Movies.figure1 ()) in
  check "truncated" true (rejects (Bytes.sub good 0 (Bytes.length good - 3)));
  let trailing = Bytes.cat good (Bytes.of_string "xx") in
  check "trailing bytes" true (rejects trailing)

let corrupt_diagnostics () =
  (* The exception carries where and what: offset of the defect plus
     expected/found descriptions. *)
  (match Codec.decode (Bytes.of_string "NOPE") with
  | exception Codec.Corrupt { offset; expected; found } ->
    check_int "magic offset" 0 offset;
    check "mentions magic" true (expected = "magic \"SSD1\"");
    check "shows found bytes" true (found = "\"NOPE\"")
  | _ -> Alcotest.fail "bad magic accepted");
  (* A huge node count must be rejected against the bytes remaining, not
     allocated. *)
  let huge = Buffer.create 16 in
  Buffer.add_string huge "SSD1";
  Buffer.add_string huge "\xff\xff\xff\xff\x07";
  (* n_nodes varint *)
  Buffer.add_char huge '\x00';
  (* root *)
  match Codec.decode (Buffer.to_bytes huge) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized node count accepted"

(* Edge cases the crash-recovery work leans on: the one-node empty
   graph, a node of maximal arity, and labels containing NUL bytes,
   newlines and multi-byte UTF-8 — all must round-trip exactly through
   both the wire codec and the store's segment codec. *)
let edge_case_roundtrips () =
  let seg_roundtrip g =
    let dict = Ssd_store.Seg.dict_of_graph g in
    Ssd_store.Seg.decode_graph ~dict (Ssd_store.Seg.encode_graph ~dict g)
  in
  let roundtrips what g =
    let same g' =
      Graph.n_nodes g = Graph.n_nodes g'
      && Graph.n_edges g = Graph.n_edges g'
      && Graph.root g = Graph.root g'
      && Ssd.Bisim.equal g g'
    in
    check (what ^ " (codec)") true (same (Codec.decode (Codec.encode g)));
    check (what ^ " (segment)") true (same (seg_roundtrip g))
  in
  roundtrips "empty graph" Graph.empty;
  (* one source fanning out to thousands of children *)
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b in
  Graph.Builder.set_root b r;
  for i = 0 to 4999 do
    let v = Graph.Builder.add_node b in
    Graph.Builder.add_edge b r (Ssd.Label.int i) v
  done;
  roundtrips "maximum-arity node" (Graph.Builder.finish b);
  let nasty =
    [
      "with\000nul";
      "new\nline";
      "tab\there";
      "caf\xc3\xa9 \xe2\x9c\x93";
      (* café ✓ *)
      "";
      String.make 300 '\xff';
    ]
  in
  let b = Graph.Builder.create () in
  let r = Graph.Builder.add_node b in
  Graph.Builder.set_root b r;
  List.iter
    (fun s ->
      let v = Graph.Builder.add_node b in
      Graph.Builder.add_edge b r (Ssd.Label.sym s) v;
      let w = Graph.Builder.add_node b in
      Graph.Builder.add_edge b v (Ssd.Label.str s) w)
    nasty;
  roundtrips "NUL/newline/UTF-8 labels" (Graph.Builder.finish b)

let string_table_shares () =
  (* many occurrences of one symbol must be cheaper than distinct ones *)
  let mk labels =
    let b = Graph.Builder.create () in
    let r = Graph.Builder.add_node b in
    Graph.Builder.set_root b r;
    List.iter
      (fun l ->
        let v = Graph.Builder.add_node b in
        Graph.Builder.add_edge b r (Ssd.Label.sym l) v)
      labels;
    Graph.Builder.finish b
  in
  let repeated = mk (List.init 50 (fun _ -> "longish_symbol_name")) in
  let distinct = mk (List.init 50 (fun i -> Printf.sprintf "longish_symbol_%03d" i)) in
  check "shared strings compress" true
    (Codec.encoded_size repeated * 2 < Codec.encoded_size distinct)

let paging_basics () =
  let g = Ssd_workload.Movies.generate ~n_entries:50 () in
  let t = Pager.layout Pager.Bfs ~page_capacity:16 g in
  check_int "pages cover all nodes"
    ((Graph.n_nodes g + 15) / 16)
    (Pager.n_pages t);
  let ok = ref true in
  for u = 0 to Graph.n_nodes g - 1 do
    if Pager.page_of t u < 0 || Pager.page_of t u >= Pager.n_pages t then ok := false
  done;
  check "page ids in range" true !ok

let lru_behaviour () =
  let g = Ssd_workload.Movies.generate ~n_entries:20 () in
  let t = Pager.layout Pager.Insertion ~page_capacity:4 g in
  (* same page twice in a row: second access hits *)
  let s = Pager.replay t ~buffer_pages:2 [ 0; 0; 0 ] in
  check_int "one fault for repeated page" 1 s.Pager.faults;
  (* sequence touching more pages than the buffer: all faults *)
  let nodes = List.init (Graph.n_nodes g) Fun.id in
  let cold = Pager.replay t ~buffer_pages:1 (nodes @ nodes) in
  check "thrashing with tiny buffer" true (cold.Pager.faults > Pager.n_pages t)

let clustering_matters () =
  (* depth-first walks should fault less under DFS clustering than under
     scattered placement *)
  let g = Ssd_workload.Biodb.generate ~n_taxa:800 () in
  let walks = Pager.random_walks ~seed:1 ~n_walks:200 ~depth:12 g in
  let faults c =
    (Pager.replay (Pager.layout c ~page_capacity:32 g) ~buffer_pages:4 walks).Pager.faults
  in
  check "dfs beats scatter on path workloads" true (faults Pager.Dfs < faults (Pager.Scatter 7))

let properties =
  [
    qtest "encode/decode round-trip" graph (fun g ->
        let g' = Codec.decode (Codec.encode g) in
        Graph.n_nodes g = Graph.n_nodes g'
        && Graph.n_edges g = Graph.n_edges g'
        && Ssd.Bisim.equal g g');
    qtest "encoded size monotone-ish in edges" graph (fun g ->
        Codec.encoded_size g >= Graph.n_nodes g);
    qtest "replay faults bounded" (Q.pair graph (Q.int_range 1 4)) (fun (g, buffer) ->
        let t = Pager.layout Pager.Bfs ~page_capacity:4 g in
        let walks = Pager.random_walks ~seed:3 ~n_walks:20 ~depth:6 g in
        let s = Pager.replay t ~buffer_pages:buffer walks in
        s.Pager.faults <= s.Pager.accesses
        && s.Pager.faults >= 1
        && s.Pager.accesses = List.length walks);
    qtest "fuzzed decode round-trips or raises Corrupt" ~count:400 corrupted_encoding
      (fun data ->
        (* Any exception other than Codec.Corrupt escapes and fails the
           property — that is the point. *)
        match Codec.decode data with
        | _ -> true
        | exception Codec.Corrupt _ -> true);
    qtest "layouts are permutations" graph (fun g ->
        List.for_all
          (fun c ->
            let t = Pager.layout c ~page_capacity:3 g in
            let count = Array.make (Pager.n_pages t) 0 in
            for u = 0 to Graph.n_nodes g - 1 do
              count.(Pager.page_of t u) <- count.(Pager.page_of t u) + 1
            done;
            Array.for_all (fun c -> c <= 3) count)
          [ Pager.Insertion; Pager.Bfs; Pager.Dfs; Pager.Scatter 5 ]);
  ]

let tests =
  [
    Alcotest.test_case "codec round-trip figure1" `Quick roundtrip_fig1;
    Alcotest.test_case "file round-trip" `Quick file_roundtrip;
    Alcotest.test_case "corrupt input rejected" `Quick corrupt_input_rejected;
    Alcotest.test_case "corrupt diagnostics" `Quick corrupt_diagnostics;
    Alcotest.test_case "pager rejects nonpositive capacities" `Quick (fun () ->
        let g = Ssd_workload.Movies.figure1 () in
        let is_ssd542 f =
          match f () with
          | exception Ssd_diag.Fail d -> d.Ssd_diag.code = "SSD542"
          | _ -> false
        in
        check "layout capacity" true
          (is_ssd542 (fun () -> Pager.layout Pager.Bfs ~page_capacity:0 g));
        check "replay buffer" true
          (is_ssd542 (fun () ->
               Pager.replay (Pager.layout Pager.Bfs ~page_capacity:4 g) ~buffer_pages:(-1) [ 0 ])));
    Alcotest.test_case "edge-case round-trips" `Quick edge_case_roundtrips;
    Alcotest.test_case "string table shares" `Quick string_table_shares;
    Alcotest.test_case "paging basics" `Quick paging_basics;
    Alcotest.test_case "LRU behaviour" `Quick lru_behaviour;
    Alcotest.test_case "clustering matters" `Quick clustering_matters;
  ]
  @ properties
