(* The serve tentpole, tested transport-free: Engine.handle_line IS the
   protocol (one frame in, one frame out), so concurrency, cache
   sharing, admission control and the adversarial fuzz all run
   in-process — no sockets, no sleeps, deterministic failures.  The
   socket transport itself is exercised by check_serve.ml. *)

module Graph = Ssd.Graph
module Engine = Ssd_serve.Engine
module Proto = Ssd_serve.Proto
module Cache = Unql.Cache
module Q = QCheck2.Gen

let check = Alcotest.(check bool)

(* No admission control: every request admitted, unclamped. *)
let no_pressure =
  { Engine.default_config with Engine.pressure_at = max_int; shed_at = max_int }

(* Parse exactly one response frame covering the whole string. *)
let parse_one s =
  match Proto.parse_response s 0 with
  | Ok (r, pos) when pos = String.length s -> r
  | Ok (_, pos) ->
    Alcotest.failf "trailing bytes after frame (%d of %d)" pos (String.length s)
  | Error `Incomplete -> Alcotest.failf "incomplete frame: %S" s
  | Error (`Malformed why) -> Alcotest.failf "malformed frame (%s): %S" why s

let query_req q = "QUERY - " ^ Unql.Pretty.expr_to_string q

(* What the sequential CLI prints for this query, as a wire frame. *)
let expected_frame ~db q =
  Proto.render_response
    (Proto.response Proto.Complete (Graph.to_string (Unql.Eval.eval ~db q) ^ "\n"))

let print_pair (g, q) =
  Printf.sprintf "query: %s\ndb: %s" (Unql.Pretty.expr_to_string q) (Graph.to_string g)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let props =
  [
    Gen.qtest "concurrent clients are byte-identical to the sequential CLI" ~count:20
      (Q.pair Gen.graph (Q.list_size (Q.int_range 1 4) Gen.unql_query))
      (fun (g, qs) ->
        let engine = Engine.create ~config:no_pressure (Engine.store ~db:g ()) in
        let reqs = List.map query_req qs in
        let expected = List.map (expected_frame ~db:g) qs in
        let client () = List.map (fun r -> Engine.handle_line engine r) reqs in
        let domains = Array.init 4 (fun _ -> Domain.spawn client) in
        let answers = Array.map Domain.join domains in
        Array.for_all (fun got -> List.equal String.equal expected got) answers);
    Gen.qtest "client B hits the entry client A warmed (same frame bytes)" ~count:40
      ~print:print_pair
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let store = Engine.store ~db:g () in
        (* two engines = two "tenants" over one shared store *)
        let a = Engine.create ~config:no_pressure store in
        let b = Engine.create ~config:no_pressure store in
        let r1 = Engine.handle_line a (query_req q) in
        let r2 = Engine.handle_line b (query_req q) in
        let s = Engine.cache_stats store in
        String.equal r1 r2 && s.Cache.misses = 1 && s.Cache.hits = 1);
    Gen.qtest "cache=off never populates the shared cache" ~count:30
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let store = Engine.store ~db:g () in
        let engine = Engine.create ~config:no_pressure store in
        let req = "QUERY cache=off " ^ Unql.Pretty.expr_to_string q in
        let r1 = Engine.handle_line engine req in
        let r2 = Engine.handle_line engine req in
        let s = Engine.cache_stats store in
        String.equal r1 r2 && s.Cache.misses = 0 && s.Cache.hits = 0
        && String.equal r1 (expected_frame ~db:g q));
    Gen.qtest "a saturated server sheds with a well-formed SSD554 frame" ~count:30
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let config = { Engine.default_config with Engine.shed_at = -1 } in
        let engine = Engine.create ~config (Engine.store ~db:g ()) in
        let r = parse_one (Engine.handle_line engine (query_req q)) in
        r.Proto.status = Proto.Shed
        && String.equal r.Proto.detail "SSD554"
        && (Engine.stats engine).Engine.shed = 1
        && (Engine.stats engine).Engine.accepted = 0);
    Gen.qtest "under pressure every answer is a typed complete/partial frame" ~count:30
      (Q.pair Gen.graph Gen.unql_query)
      (fun (g, q) ->
        let config =
          {
            Engine.default_config with
            Engine.pressure_at = -1;
            pressure_max_steps = 1;
            shed_at = max_int;
          }
        in
        let engine = Engine.create ~config (Engine.store ~db:g ()) in
        let r = parse_one (Engine.handle_line engine (query_req q)) in
        match r.Proto.status with
        | Proto.Complete -> String.equal r.Proto.detail "-"
        | Proto.Partial ->
          List.mem r.Proto.detail [ "steps"; "deadline"; "stalled" ]
          && (Engine.stats engine).Engine.partial = 1
        | Proto.Shed | Proto.Error | Proto.Delta -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Protocol fuzz: mangled frames never crash or wedge the engine       *)
(* ------------------------------------------------------------------ *)

(* A request line under attack: a valid frame that was truncated,
   bit-flipped or byte-stomped, or outright junk. *)
let mangled_request : string Q.t =
  let open Q in
  let valid =
    oneof
      [
        Q.map query_req Gen.unql_query;
        pure "PING";
        pure "STATS -";
        pure "UPDATE - insert DB.a := {x: {}}";
        pure "QUERY lang=lorel,max-steps=100 select m from DB.a m";
      ]
  in
  let* s = valid in
  let n = String.length s in
  let* choice = int_range 0 3 in
  match choice with
  | 0 ->
    let* k = int_range 0 n in
    pure (String.sub s 0 k)
  | 1 ->
    let* flips = list_size (int_range 1 4) (pair (int_range 0 (n - 1)) (int_range 0 7)) in
    let b = Bytes.of_string s in
    List.iter
      (fun (i, bit) -> Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl bit)))
      flips;
    pure (Bytes.to_string b)
  | 2 ->
    let* i = int_range 0 (n - 1) in
    let* v = int_range 0 255 in
    let b = Bytes.of_string s in
    Bytes.set_uint8 b i v;
    pure (Bytes.to_string b)
  | _ ->
    let* junk = list_size (int_range 0 40) (int_range 0 255) in
    pure (String.init (List.length junk) (fun i -> Char.chr (List.nth junk i)))

let fuzz =
  [
    Gen.qtest "mangled frames get a typed answer and never kill the engine" ~count:300
      ~print:(fun (_, raw) -> String.escaped raw)
      (Q.pair Gen.graph mangled_request)
      (fun (g, raw) ->
        let engine = Engine.create (Engine.store ~db:g ()) in
        (* must not raise, must answer exactly one well-formed frame *)
        let r = parse_one (Engine.handle_line engine raw) in
        (match r.Proto.status with
        | Proto.Error ->
          (* typed diagnostic, never a bare exception code *)
          String.length r.Proto.detail = 6
          && String.sub r.Proto.detail 0 3 = "SSD"
        | Proto.Complete | Proto.Partial | Proto.Shed | Proto.Delta -> true)
        &&
        (* and the engine still serves afterwards: no wedged lock/state *)
        let pong = parse_one (Engine.handle_line engine "PING") in
        pong.Proto.status = Proto.Complete && String.equal pong.Proto.body "pong\n");
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic regressions                                           *)
(* ------------------------------------------------------------------ *)

let fig1 () = Ssd_workload.Movies.figure1 ()

let q_titles = {| select {t: \T} where {entry.movie.title: \T} <- DB |}

(* Satellite regression: two engines over one shared store — an update
   through engine B must invalidate what engine A cached, atomically. *)
let shared_store_never_stale () =
  let db = fig1 () in
  let store = Engine.store ~db () in
  let a = Engine.create store in
  let b = Engine.create store in
  let req = "QUERY - " ^ q_titles in
  let r_before = Engine.handle_line a req in
  ignore (Engine.handle_line b req);
  check "B hit A's warmed entry" true ((Engine.cache_stats store).Cache.hits = 1);
  let upd =
    parse_one
      (Engine.handle_line b {|UPDATE - insert DB.entry := {movie: {title: "Fresh"}}|})
  in
  check "update acknowledged complete" true (upd.Proto.status = Proto.Complete);
  check "update invalidated the old graph's entries" true
    ((Engine.cache_stats store).Cache.invalidations >= 1);
  let r_after = Engine.handle_line a req in
  let expected =
    expected_frame ~db:(Engine.store_db store) (Unql.Parser.parse q_titles)
  in
  check "post-update answer is fresh, not the stale cache" true
    (String.equal r_after expected);
  check "and differs from the pre-update answer" true
    (not (String.equal r_after r_before));
  check "the fresh answer mentions the inserted title" true
    (contains ~needle:"Fresh" (parse_one r_after).Proto.body)

let oversized_frame_closes () =
  let engine = Engine.create (Engine.store ~db:(fig1 ()) ()) in
  let huge = "QUERY - " ^ String.make (Engine.default_config.Engine.max_frame + 1) 'x' in
  let resp, close = Engine.handle engine huge in
  check "SSD551" true (String.equal resp.Proto.detail "SSD551");
  check "error status" true (resp.Proto.status = Proto.Error);
  check "connection closes" true close;
  (* a fresh request on a new "connection" still works *)
  let pong, close' = Engine.handle engine "PING" in
  check "engine survives" true (pong.Proto.status = Proto.Complete && not close')

let malformed_and_unsupported () =
  let engine = Engine.create (Engine.store ~db:(fig1 ()) ()) in
  let code raw = (parse_one (Engine.handle_line engine raw)).Proto.detail in
  Alcotest.(check string) "unknown verb" "SSD550" (code "FROBNICATE - x");
  Alcotest.(check string) "missing body" "SSD550" (code "QUERY -");
  Alcotest.(check string) "bad option" "SSD552" (code "QUERY max-steps=lots x");
  Alcotest.(check string) "unknown option" "SSD552" (code "QUERY color=red x");
  Alcotest.(check string) "unsupported language" "SSD555" (code "QUERY lang=sparql x");
  (* the lint gate runs before evaluation, so a syntax error carries the
     concrete SSD001 (unql) code in the detail token, not a generic
     runtime SSD553 *)
  Alcotest.(check string) "failed parse" "SSD001" (code "QUERY - select");
  Alcotest.(check string) "failed lorel parse" "SSD002"
    (code "QUERY lang=lorel select");
  (* a statically-detected hygiene error (unbound variable) is rejected
     with its own code before evaluation starts *)
  Alcotest.(check string) "unbound variable" "SSD303"
    (code "QUERY - select {r: x} where {a: \\t} <- DB")

let queued_backlog_sheds () =
  let engine = Engine.create (Engine.store ~db:(fig1 ()) ()) in
  (* default shed_at = 64: a transport reporting a deep backlog sheds *)
  let resp, close = Engine.handle ~queued:1000 engine ("QUERY - " ^ q_titles) in
  check "shed" true (resp.Proto.status = Proto.Shed);
  check "stays open" true (not close);
  let resp', _ = Engine.handle ~queued:0 engine ("QUERY - " ^ q_titles) in
  check "drained backlog is served again" true (resp'.Proto.status = Proto.Complete)

let quit_and_stats () =
  let engine = Engine.create (Engine.store ~db:(fig1 ()) ()) in
  let stats_resp, close = Engine.handle engine "STATS" in
  check "stats complete" true (stats_resp.Proto.status = Proto.Complete && not close);
  check "stats body is the serve metrics dump" true
    (contains ~needle:"serve.requests" stats_resp.Proto.body);
  let bye, close' = Engine.handle engine "QUIT" in
  check "bye closes" true (String.equal bye.Proto.body "bye\n" && close')

(* ------------------------------------------------------------------ *)
(* Live subscriptions                                                  *)
(* ------------------------------------------------------------------ *)

(* One connection subscribes twice (one query the update can touch, one
   whose label footprint is disjoint); an UPDATE through another engine
   pushes exactly one delta frame whose body equals re-running the
   query; teardown by UNSUBSCRIBE and by drop_conn. *)
let subscription_lifecycle () =
  let db = fig1 () in
  let store = Engine.store ~db () in
  let a = Engine.create store in
  let b = Engine.create store in
  let pushes = ref [] in
  let push s = pushes := s :: !pushes in
  (* no push channel -> typed refusal *)
  let refused, _ = Engine.handle a ("SUBSCRIBE - " ^ q_titles) in
  check "SUBSCRIBE without push is refused" true
    (refused.Proto.status = Proto.Error && String.equal refused.Proto.detail "SSD557");
  let sub1, _ = Engine.handle ~push ~conn_id:7 a ("SUBSCRIBE - " ^ q_titles) in
  check "subscribed complete" true (sub1.Proto.status = Proto.Complete);
  let id1 = sub1.Proto.detail in
  check "initial body is the current result" true
    (String.equal sub1.Proto.body
       (parse_one (Engine.handle_line a ("QUERY - " ^ q_titles))).Proto.body);
  let q_disjoint = {| select {hit: {}} where {zzz: _} <- DB |} in
  let sub2, _ = Engine.handle ~push ~conn_id:7 a ("SUBSCRIBE - " ^ q_disjoint) in
  check "second subscription" true (sub2.Proto.status = Proto.Complete);
  check "two live subscriptions" true (Engine.n_subs store = 2);
  (* the update touches entry/movie/title: sub1 (⊤ footprint) re-runs
     and pushes, sub2 ({zzz}) is skipped without evaluating *)
  let upd =
    parse_one
      (Engine.handle_line b {|UPDATE - insert DB.entry := {movie: {title: "Pushed"}}|})
  in
  check "update complete" true (upd.Proto.status = Proto.Complete);
  check "exactly one delta frame pushed" true (List.length !pushes = 1);
  let frame = parse_one (List.hd !pushes) in
  check "delta status" true (frame.Proto.status = Proto.Delta);
  Alcotest.(check string) "delta detail is id.seq" (id1 ^ ".1") frame.Proto.detail;
  check "delta body equals re-running the query" true
    (String.equal frame.Proto.body
       (parse_one (Engine.handle_line a ("QUERY - " ^ q_titles))).Proto.body);
  check "and mentions the inserted title" true
    (contains ~needle:"Pushed" frame.Proto.body);
  (* teardown *)
  let un = parse_one (Engine.handle_line a ("UNSUBSCRIBE - " ^ id1)) in
  check "unsubscribed" true (un.Proto.status = Proto.Complete);
  let un2 = parse_one (Engine.handle_line a ("UNSUBSCRIBE - " ^ id1)) in
  check "double unsubscribe is SSD556" true
    (un2.Proto.status = Proto.Error && String.equal un2.Proto.detail "SSD556");
  pushes := [];
  ignore (Engine.handle_line b {|UPDATE - insert DB.entry := {movie: {title: "Again"}}|});
  check "no frame for a dead subscription" true (!pushes = []);
  Engine.drop_conn a 7;
  check "drop_conn clears the connection's subscriptions" true (Engine.n_subs store = 0)

(* Datalog subscriptions hold a retained model advanced semi-naively.
   Oracle: a freshly created subscription's initial body is by
   construction the query's canonical current result — every pushed
   frame must byte-equal the initial body of a new subscription made
   after the update. *)
let datalog_subscription () =
  let db = fig1 () in
  let store = Engine.store ~db () in
  let a = Engine.create store in
  let pushes = ref [] in
  let push s = pushes := s :: !pushes in
  let prog =
    "reach(?X) :- root(?X). reach(?Y) :- reach(?X), edge(?X, ?L, ?Y)."
  in
  let subscribe () =
    let r, _ = Engine.handle ~push ~conn_id:1 a ("SUBSCRIBE lang=datalog " ^ prog) in
    check "datalog subscribe ok" true (r.Proto.status = Proto.Complete);
    r
  in
  let (_ : Proto.response) = subscribe () in
  (* monotone insert: the retained model advances from the new edges *)
  ignore
    (Engine.handle_line a {|UPDATE - insert DB.entry := {movie: {title: "Zed"}}|});
  check "monotone insert pushed" true (List.length !pushes = 1);
  let frame1 = parse_one (List.hd !pushes) in
  let fresh1 = subscribe () in
  check "semi-naive result equals scratch model" true
    (String.equal frame1.Proto.body fresh1.Proto.body);
  (* non-monotone delete: the model is re-prepared, and still pushes the
     correct new result *)
  pushes := [];
  ignore (Engine.handle_line a {|UPDATE - delete DB.entry|});
  check "both live datalog subs pushed" true (List.length !pushes = 2);
  let frame2 = parse_one (List.hd !pushes) in
  let fresh2 = subscribe () in
  check "rebuilt result equals scratch model" true
    (String.equal frame2.Proto.body fresh2.Proto.body);
  (* a subscription on a program with negation is rejected with the
     incremental-maintenance code *)
  let bad, _ =
    Engine.handle ~push ~conn_id:1 a
      "SUBSCRIBE lang=datalog q(?X) :- edge(?X, ?L, ?Y). p(?X) :- root(?X), not q(?X)."
  in
  check "negation rejected with SSD213" true
    (bad.Proto.status = Proto.Error && String.equal bad.Proto.detail "SSD213")

let tests =
  props
  @ [
      Alcotest.test_case "shared store never serves stale after update" `Quick
        shared_store_never_stale;
      Alcotest.test_case "subscription lifecycle: push, skip, teardown" `Quick
        subscription_lifecycle;
      Alcotest.test_case "datalog subscription: semi-naive = scratch" `Quick
        datalog_subscription;
      Alcotest.test_case "oversized frame: SSD551 then close" `Quick
        oversized_frame_closes;
      Alcotest.test_case "malformed/unsupported get typed SSD55x codes" `Quick
        malformed_and_unsupported;
      Alcotest.test_case "transport backlog drives shedding" `Quick queued_backlog_sheds;
      Alcotest.test_case "STATS and QUIT" `Quick quit_and_stats;
    ]
