(* Smoke check for `ssdql check`: the captured report must contain a
   dead-path diagnostic (SSD101/SSD102 — product-automaton emptiness
   against the DataGuide) with its source span, and the fingerprint line
   the cache shares. *)

let () =
  let ic = open_in_bin Sys.argv.(1) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  let require what cond =
    if not cond then begin
      Printf.eprintf "ssdql check output missing %s:\n%s\n" what s;
      exit 1
    end
  in
  require "a dead-path code (SSD101/SSD102)" (contains "SSD10");
  require "the phrase 'dead path'" (contains "dead path");
  require "a source span" (contains "1:");
  require "the query fingerprint" (contains "query fingerprint:")
