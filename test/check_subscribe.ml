(* Smoke test for live subscriptions on the real binary: one `ssdql
   serve --store` process, a raw-socket subscriber plus a `ssdql
   subscribe` CLI subscriber, and a third client committing UPDATEs.
   Both subscribers must receive typed delta frames for each committed
   change, the event log must record incr.subscribe / incr.push /
   incr.update, the /metrics incr.* counters must move, and closing the
   subscribers must tear their registrations down (active gauge back to
   zero). *)

module Proto = Ssd_serve.Proto
module Export = Ssd_obs.Export

let spawned : int list ref = ref []

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("check_subscribe: FAIL " ^ m);
      List.iter (fun p -> try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ()) !spawned;
      exit 1)
    fmt

let expect what cond = if not cond then fail "%s" what

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1)) in
  go 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

let wait_for ?(timeout = 10.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if not (pred ()) then
      if Unix.gettimeofday () -. t0 > timeout then fail "timed out waiting for %s" what
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Clients: SSDQL frames and admin HTTP, both over Unix sockets        *)
(* ------------------------------------------------------------------ *)

let connect_to path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
    Unix.close fd;
    raise e);
  fd

let send fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Incremental frame reader over one long-lived connection: [take st k]
   blocks until [k] more frames have arrived. *)
type client = { fd : Unix.file_descr; buf : Buffer.t; mutable pos : int }

let client path = { fd = connect_to path; buf = Buffer.create 4096; pos = 0 }

let take st k =
  let chunk = Bytes.create 4096 in
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match Proto.parse_response (Buffer.contents st.buf) st.pos with
      | Ok (r, pos') ->
        st.pos <- pos';
        go (r :: acc) (k - 1)
      | Error `Incomplete -> (
        match Unix.read st.fd chunk 0 (Bytes.length chunk) with
        | 0 -> fail "connection closed with %d frames still expected" k
        | n ->
          Buffer.add_subbytes st.buf chunk 0 n;
          go acc k)
      | Error (`Malformed why) -> fail "malformed frame from server: %s" why
  in
  go [] k

let rpc_at path k reqs =
  let st = client path in
  send st.fd reqs;
  let frames = take st k in
  (try Unix.close st.fd with Unix.Unix_error _ -> ());
  frames

let http_get path target =
  let fd = connect_to path in
  send fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target);
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let raw = Buffer.contents buf in
  match String.index_opt raw '\n' with
  | None -> fail "no response to %s" target
  | Some _ -> (
    let split sep =
      let n = String.length raw and m = String.length sep in
      let rec go i =
        if i + m > n then None else if String.sub raw i m = sep then Some i else go (i + 1)
      in
      go 0
    in
    match split "\r\n\r\n" with
    | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
    | None -> fail "no header/body split in response to %s" target)

(* Sum of one family's samples in the serve process's /metrics. *)
let metric admin_sock family =
  match Export.parse (http_get admin_sock "/metrics") with
  | Ok lines -> Export.counter_total lines family
  | Error e -> fail "/metrics does not parse: %s" e

(* ------------------------------------------------------------------ *)

let q_titles = "select {t: \\T} where {entry.movie.title: \\T} <- DB"

let () =
  match Sys.argv with
  | [| _; ssdql |] ->
    let pid = Unix.getpid () in
    let tmp = Filename.get_temp_dir_name () in
    let dir = Filename.temp_file "ssdql_sub_store" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let sock = Filename.concat tmp (Printf.sprintf "ssdql_sub_%d.sock" pid) in
    let admin_sock = Filename.concat tmp (Printf.sprintf "ssdql_sub_adm_%d.sock" pid) in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let init =
      Unix.create_process ssdql
        [| ssdql; "store"; "init"; "--store"; dir; "-d"; "builtin:figure1" |]
        Unix.stdin devnull devnull
    in
    (match Unix.waitpid [] init with
    | _, Unix.WEXITED 0 -> ()
    | _ -> fail "store init failed");
    Unix.close devnull;
    let log = Filename.temp_file "ssdql_sub_serve" ".log" in
    let logfd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
    let serve_pid =
      Unix.create_process ssdql
        [|
          (* two workers are pinned by the long-lived subscriber
             connections; the updater and EVENTS clients need their own *)
          ssdql; "serve"; "--store"; dir; "--socket"; sock; "--workers"; "4";
          "--admin"; "unix:" ^ admin_sock;
        |]
        Unix.stdin Unix.stdout logfd
    in
    Unix.close logfd;
    spawned := serve_pid :: !spawned;
    wait_for "serve socket" (fun () -> Sys.file_exists sock);
    wait_for "admin socket" (fun () -> Sys.file_exists admin_sock);

    let pushes0 = metric admin_sock "ssd_incr_sub_pushes_total" in
    let evals0 = metric admin_sock "ssd_incr_sub_evals_total" in

    (* Subscriber 1: raw protocol client. *)
    let sub = client sock in
    send sub.fd (Printf.sprintf "SUBSCRIBE - %s\n" q_titles);
    let sub_id =
      match take sub 1 with
      | [ r ] ->
        expect "subscribe acknowledged complete" (r.Proto.status = Proto.Complete);
        expect "initial result carries the current titles"
          (contains r.Proto.body "Casablanca");
        expect "subscribe detail is the subscription id"
          (match int_of_string_opt r.Proto.detail with Some _ -> true | None -> false);
        r.Proto.detail
      | _ -> fail "subscribe frame count"
    in

    (* Subscriber 2: the ssdql subscribe CLI, exiting after two deltas. *)
    let cli_out = Filename.temp_file "ssdql_sub_cli" ".out" in
    let outfd = Unix.openfile cli_out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
    let cli_pid =
      Unix.create_process ssdql
        [| ssdql; "subscribe"; "--socket"; sock; "--count"; "2"; q_titles |]
        Unix.stdin outfd Unix.stderr
    in
    Unix.close outfd;
    spawned := cli_pid :: !spawned;
    wait_for "both subscriptions registered" (fun () ->
        metric admin_sock "ssd_incr_sub_active" >= 2.);

    (* A third client commits two updates; each changes the result. *)
    let update title =
      match
        rpc_at sock 1
          (Printf.sprintf "UPDATE - insert DB.entry := {movie: {title: \"%s\"}}\n" title)
      with
      | [ u ] ->
        expect (title ^ " acknowledged") (u.Proto.status = Proto.Complete);
        expect "update response reports pushed deltas" (contains u.Proto.body "deltas pushed")
      | _ -> fail "update frame count (%s)" title
    in
    update "Live1";
    update "Live2";

    (* Raw subscriber: one delta frame per update, in commit order. *)
    (match take sub 2 with
    | [ d1; d2 ] ->
      expect "first push is a delta frame" (d1.Proto.status = Proto.Delta);
      expect "first push is seq 1" (String.equal d1.Proto.detail (sub_id ^ ".1"));
      expect "first push carries the first insert" (contains d1.Proto.body "Live1");
      expect "second push is a delta frame" (d2.Proto.status = Proto.Delta);
      expect "second push is seq 2" (String.equal d2.Proto.detail (sub_id ^ ".2"));
      expect "second push carries the second insert" (contains d2.Proto.body "Live2")
    | _ -> fail "delta frame count");

    (* CLI subscriber: saw two deltas and exited 0 on its own. *)
    (match Unix.waitpid [] cli_pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> fail "ssdql subscribe did not exit cleanly after --count deltas");
    spawned := List.filter (fun p -> p <> cli_pid) !spawned;
    let cli = read_file cli_out in
    expect "CLI printed delta frames" (contains cli "== delta");
    expect "CLI saw the last insert" (contains cli "Live2");

    (* The event log records the whole exchange. *)
    (match rpc_at sock 1 "EVENTS\n" with
    | [ e ] ->
      expect "events frame completes" (e.Proto.status = Proto.Complete);
      expect "event log records subscriptions" (contains e.Proto.body "incr.subscribe");
      expect "event log records pushes" (contains e.Proto.body "incr.push");
      expect "event log records delta-driven updates" (contains e.Proto.body "incr.update")
    | _ -> fail "events frame count");

    (* Counters moved: 2 updates x 2 live subscriptions = 4 pushes. *)
    expect "incr.sub.pushes moved by the pushes"
      (metric admin_sock "ssd_incr_sub_pushes_total" -. pushes0 >= 4.);
    expect "incr.sub.evals moved"
      (metric admin_sock "ssd_incr_sub_evals_total" -. evals0 >= 4.);

    (* Teardown: closing the raw subscriber drops its registration (the
       CLI one died with its process). *)
    (try Unix.close sub.fd with Unix.Unix_error _ -> ());
    wait_for "subscriptions torn down on close" (fun () ->
        metric admin_sock "ssd_incr_sub_active" = 0.);

    Unix.kill serve_pid Sys.sigterm;
    (match Unix.waitpid [] serve_pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> fail "serve did not exit cleanly on SIGTERM");
    print_endline "check_subscribe: ok"
  | _ -> fail "usage: check_subscribe SSDQL_BINARY"
